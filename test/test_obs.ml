(* Observability layer (lib/obs): metrics registries, the causal span
   tracer, and their wiring into the web/rules layers.

   The tracer tests toggle the global [Obs.set_enabled] switch; every
   test restores [false] and clears the ring so suites stay
   independent. *)

open Xchange

let with_tracing f =
  Obs.Trace.clear ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.Trace.clear ())
    f

(* ---- metrics cells ---- *)

let test_metrics_cells () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "m.count" in
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.incr ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 (Obs.Metrics.Counter.value c);
  let c' = Obs.Metrics.counter m "m.count" in
  Obs.Metrics.Counter.incr c';
  Alcotest.(check int) "same (name, labels) is the same cell" 6 (Obs.Metrics.Counter.value c);
  let g = Obs.Metrics.gauge m "m.gauge" in
  Obs.Metrics.Gauge.set g 2.5;
  Obs.Metrics.Gauge.set_max g 1.0;
  Alcotest.(check (float 0.)) "set_max keeps the max" 2.5 (Obs.Metrics.Gauge.value g);
  let h = Obs.Metrics.histogram m "m.hist" in
  Alcotest.(check (float 0.)) "empty histogram max" 0. (Obs.Metrics.Histogram.max h);
  List.iter (Obs.Metrics.Histogram.observe h) [ 2.; 8.; 5. ];
  Alcotest.(check int) "hist count" 3 (Obs.Metrics.Histogram.count h);
  Alcotest.(check (float 0.)) "hist sum" 15. (Obs.Metrics.Histogram.sum h);
  Alcotest.(check (float 0.)) "hist mean" 5. (Obs.Metrics.Histogram.mean h);
  Alcotest.(check (float 0.)) "hist max" 8. (Obs.Metrics.Histogram.max h);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Obs.Metrics: m.count already registered as a counter, requested as a gauge")
    (fun () -> ignore (Obs.Metrics.gauge m "m.count"))

(* ---- snapshots, labels, merge, aggregation ---- *)

let test_labels_merge_total () =
  let open Obs.Metrics in
  let m_a = create () and m_b = create () in
  Counter.incr ~by:3 (counter m_a ~labels:[ ("kind", "event") ] "net.in");
  Counter.incr ~by:2 (counter m_a ~labels:[ ("kind", "get") ] "net.in");
  Counter.incr ~by:5 (counter m_b ~labels:[ ("kind", "event") ] "net.in");
  (* snapshot-time labels stamp the component's origin before merging *)
  let merged =
    merge
      [ snapshot ~labels:[ ("host", "a") ] m_a; snapshot ~labels:[ ("host", "b") ] m_b ]
  in
  Alcotest.(check int) "three distinct (name, labels) rows" 3 (List.length merged);
  Alcotest.(check (float 0.)) "total aggregates across label sets" 10. (total merged "net.in");
  (match find merged ~labels:[ ("host", "a" ); ("kind", "event") ] "net.in" with
  | Some (Int 3) -> ()
  | _ -> Alcotest.fail "find with labels");
  (* samples agreeing on (name, labels) fold together *)
  let folded = merge [ snapshot m_a; snapshot m_b ] in
  (match find folded ~labels:[ ("kind", "event") ] "net.in" with
  | Some (Int 8) -> ()
  | v ->
      Alcotest.failf "merge folds agreeing samples, got %s"
        (match v with Some _ -> "other value" | None -> "none"));
  (* pull cells are sampled at snapshot time, idempotently registered *)
  let live = ref 7 in
  let m = create () in
  counter_fn m "m.live" (fun () -> !live);
  counter_fn m "m.live" (fun () -> !live);
  gauge_fn m "m.depth" (fun () -> 1.5);
  live := 9;
  let snap = snapshot m in
  Alcotest.(check int) "pull cells registered once" 2 (List.length snap);
  match (find snap "m.live", find snap "m.depth") with
  | Some (Int 9), Some (Float 1.5) -> ()
  | _ -> Alcotest.fail "pull cells sample current values"

(* ---- span tracer: parenting, ordering, virtual clock ---- *)

let test_span_tree () =
  with_tracing @@ fun () ->
  let root = Obs.Trace.begin_span ~cat:"net" ~name:"message" ~vt:10 () in
  Alcotest.(check int) "open span is the ambient parent" root (Obs.Trace.current ());
  let child = Obs.Trace.begin_span ~name:"event" ~vt:10 () in
  ignore (Obs.Trace.instant ~name:"detect" ~vt:12 ());
  Obs.Trace.end_span child ~vt:15;
  Obs.Trace.end_span root ~args:[ ("msgs", "1") ] ~vt:20;
  (* a later root, plus work re-parented under the first via run_under *)
  let late = Obs.Trace.begin_span ~name:"tick" ~vt:30 () in
  Obs.Trace.end_span late ~vt:30;
  Obs.Trace.run_under root (fun () ->
      let d = Obs.Trace.begin_span ~name:"delivery" ~vt:40 () in
      Obs.Trace.end_span d ~vt:41);
  let spans = Obs.Trace.spans () in
  Alcotest.(check (list string))
    "ordered by (vt_begin, id)"
    [ "message"; "event"; "detect"; "tick"; "delivery" ]
    (List.map (fun s -> s.Obs.Trace.name) spans);
  let by_name n = List.find (fun s -> s.Obs.Trace.name = n) spans in
  Alcotest.(check int) "root has no parent" 0 (by_name "message").Obs.Trace.parent;
  Alcotest.(check int) "nesting parents" root (by_name "event").Obs.Trace.parent;
  Alcotest.(check int) "instant under innermost" child (by_name "detect").Obs.Trace.parent;
  Alcotest.(check int) "run_under forces cross-time parent" root
    (by_name "delivery").Obs.Trace.parent;
  Alcotest.(check int) "tick is a fresh root" 0 (by_name "tick").Obs.Trace.parent;
  Alcotest.(check int) "end args appended" 20 (by_name "message").Obs.Trace.vt_end;
  Alcotest.(check (list (pair string string)))
    "completion args retained" [ ("msgs", "1") ] (by_name "message").Obs.Trace.args;
  (* the chrome export is one "X" event per span plus flow links *)
  match Obs.Trace.to_chrome_json () with
  | Json.List evs ->
      let complete =
        List.filter
          (function Json.Obj fs -> List.assoc_opt "ph" fs = Some (Json.Str "X") | _ -> false)
          evs
      in
      Alcotest.(check int) "one complete event per span" 5 (List.length complete)
  | _ -> Alcotest.fail "chrome export is a list"

let test_ring_eviction () =
  with_tracing @@ fun () ->
  Obs.Trace.set_capacity 4;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_capacity 4096) @@ fun () ->
  for i = 1 to 7 do
    ignore (Obs.Trace.instant ~name:(Printf.sprintf "s%d" i) ~vt:i ())
  done;
  Alcotest.(check int) "ring keeps the bound" 4 (List.length (Obs.Trace.spans ()));
  Alcotest.(check int) "evictions counted" 3 (Obs.Trace.dropped ());
  Alcotest.(check (list string))
    "oldest evicted first" [ "s4"; "s5"; "s6"; "s7" ]
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans ()))

let test_disabled_is_free () =
  Obs.Trace.clear ();
  Obs.set_enabled false;
  let id = Obs.Trace.begin_span ~name:"x" ~vt:0 () in
  Alcotest.(check int) "begin_span returns the null span" 0 id;
  Obs.Trace.end_span id ~vt:1;
  ignore (Obs.Trace.instant ~name:"y" ~vt:2 ());
  Alcotest.(check int) "nothing retained" 0 (List.length (Obs.Trace.spans ()));
  Alcotest.(check int) "run_under is identity" 41 (Obs.Trace.run_under 7 (fun () -> 41))

(* ---- tracing never changes observable behaviour (property) ---- *)

let pair_rules () =
  let atom label =
    Event_query.on ~label (Qterm.el label [ Qterm.pos (Qterm.var "K") ])
  in
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"pair"
          ~on:(Event_query.within (Event_query.conj [ atom "a"; atom "b" ]) 200)
          (Action.insert ~doc:"/out" (Construct.cel "hit" [ Construct.cvar "K" ]));
      ]
    "n"

let run_pair_scenario ~traced events =
  Message.reset_ids ();
  Event.reset_ids ();
  Obs.Trace.clear ();
  Obs.set_enabled traced;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let node = node_exn ~host:"n.example" (pair_rules ()) in
  Store.add_doc (Node.store node) "/out" (Term.elem ~ord:Term.Unordered "out" []);
  let net = Network.create () in
  Network.add_node_exn net node;
  List.iter
    (fun (is_a, k) ->
      let label = if is_a then "a" else "b" in
      Network.inject net ~to_:"n.example" ~label
        (Term.elem label [ Term.text (Printf.sprintf "k%d" k) ]))
    events;
  Network.run net ~until:1_000;
  let out = Xml.to_string (Option.get (Store.doc (Node.store node) "/out")) in
  (Node.firings node, out, Node.logs node, List.length (Obs.Trace.spans ()))

let prop_tracing_transparent =
  QCheck.Test.make ~count:30 ~name:"tracing on/off: identical firings, store, logs"
    QCheck.(small_list (pair bool (int_bound 3)))
    (fun events ->
      let f_off, out_off, logs_off, spans_off = run_pair_scenario ~traced:false events in
      let f_on, out_on, logs_on, spans_on = run_pair_scenario ~traced:true events in
      if spans_off <> 0 then QCheck.Test.fail_report "disabled run retained spans";
      if events <> [] && spans_on = 0 then
        QCheck.Test.fail_report "traced run retained no spans";
      f_off = f_on && String.equal out_off out_on && logs_off = logs_on)

(* ---- legacy stats shims report the registry cells ---- *)

let test_shim_equivalence () =
  let f_off, _, _, _ = run_pair_scenario ~traced:false [ (true, 1); (false, 1) ] in
  Alcotest.(check int) "scenario fires" 1 f_off;
  (* re-run keeping the network in scope for the snapshot *)
  Message.reset_ids ();
  Event.reset_ids ();
  let node = node_exn ~host:"n.example" (pair_rules ()) in
  Store.add_doc (Node.store node) "/out" (Term.elem ~ord:Term.Unordered "out" []);
  let net = Network.create () in
  Network.add_node_exn net node;
  List.iter
    (fun label ->
      Network.inject net ~to_:"n.example" ~label (Term.elem label [ Term.text "k1" ]))
    [ "a"; "b" ];
  Network.run net ~until:1_000;
  let snap = Network.metrics_snapshot net in
  let total = Obs.Metrics.total snap in
  let ts = Network.transport_stats net in
  Alcotest.(check (float 0.))
    "transport.messages backs the stats shim"
    (float_of_int ts.Transport.messages) (total "transport.messages");
  Alcotest.(check (float 0.))
    "transport.events backs the stats shim"
    (float_of_int ts.Transport.events) (total "transport.events");
  let ss = Network.sched_stats net in
  Alcotest.(check (float 0.))
    "sched.executed backs the stats shim"
    (float_of_int ss.Sched.executed) (total "sched.executed");
  Alcotest.(check (float 0.))
    "node.firings backs the Node accessor"
    (float_of_int (Node.firings node)) (total "node.firings");
  Alcotest.(check (float 0.))
    "node.events_in counts the injected events" 2. (total "node.events_in");
  (* per-host label stamped onto the node's samples *)
  match Obs.Metrics.find snap ~labels:[ ("host", "n.example") ] "node.firings" with
  | Some (Obs.Metrics.Int 1) -> ()
  | _ -> Alcotest.fail "node samples carry the host label"

let suite =
  ( "obs",
    [
      Alcotest.test_case "metrics cells" `Quick test_metrics_cells;
      Alcotest.test_case "labels, merge, total, pull cells" `Quick test_labels_merge_total;
      Alcotest.test_case "span tree on the virtual clock" `Quick test_span_tree;
      Alcotest.test_case "ring-buffer eviction" `Quick test_ring_eviction;
      Alcotest.test_case "disabled tracer is inert" `Quick test_disabled_is_free;
      QCheck_alcotest.to_alcotest prop_tracing_transparent;
      Alcotest.test_case "legacy stats shims match the registry" `Quick test_shim_equivalence;
    ] )
