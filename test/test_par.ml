(* The sharded parallel scheduler (Partition + Network ?domains): unit
   pins for the PDES building blocks, and the differential property the
   whole design hangs on — a partitioned run is bit-identical to the
   sequential one, fault injection included. *)

open Xchange

(* ---- unit pins: window arithmetic ---- *)

let test_window_stop () =
  Alcotest.(check int) "plain window" 104
    (Partition.window_stop ~next_due:100 ~lookahead:5 ~until:1000);
  Alcotest.(check int) "lookahead 1 = lockstep" 100
    (Partition.window_stop ~next_due:100 ~lookahead:1 ~until:1000);
  Alcotest.(check int) "lookahead 0 clamps to lockstep" 100
    (Partition.window_stop ~next_due:100 ~lookahead:0 ~until:1000);
  Alcotest.(check int) "clipped by until" 1000
    (Partition.window_stop ~next_due:998 ~lookahead:5 ~until:1000);
  Alcotest.(check int) "infinite lookahead does not overflow" 1000
    (Partition.window_stop ~next_due:100 ~lookahead:max_int ~until:1000);
  Alcotest.(check int) "window at the very end" 1000
    (Partition.window_stop ~next_due:1000 ~lookahead:50 ~until:1000)

let test_owner () =
  Alcotest.(check int) "single partition" 0 (Partition.owner ~partitions:1 "x.example");
  List.iter
    (fun h ->
      let o = Partition.owner ~partitions:4 h in
      Alcotest.(check bool) "in range" true (o >= 0 && o < 4);
      Alcotest.(check int) "stable" o (Partition.owner ~partitions:4 h))
    [ "a.example"; "b.example"; "hub.example"; "sink1.example" ]

(* ---- unit pins: delivery ranks ---- *)

let test_rank_order () =
  let open Sched.Rank in
  let lt what a b = Alcotest.(check bool) what true (compare a b < 0) in
  lt "any Local before any Msg at equal time" (Local 99)
    (Msg { origin = "a"; n = 0; dup = 0 });
  lt "Local by sequence" (Local 0) (Local 1);
  lt "Msg by origin host" (Msg { origin = "a"; n = 5; dup = 1 })
    (Msg { origin = "b"; n = 0; dup = 0 });
  lt "Msg by per-origin sequence" (Msg { origin = "a"; n = 1; dup = 0 })
    (Msg { origin = "a"; n = 2; dup = 0 });
  lt "original before its ghost" (Msg { origin = "a"; n = 1; dup = 0 })
    (Msg { origin = "a"; n = 1; dup = 1 });
  Alcotest.(check int) "equal stamps compare equal" 0
    (compare (Msg { origin = "a"; n = 1; dup = 0 }) (Msg { origin = "a"; n = 1; dup = 0 }))

(* the sender stamp, not enqueue order, decides same-instant delivery
   order on one timeline too — pin it through the scheduler itself *)
let test_sched_merges_by_stamp () =
  let s = Sched.create () in
  let seen = ref [] in
  let note tag _now = seen := tag :: !seen in
  Sched.at_msg s ~origin:"b.example" ~n:1 ~dup:0 10 (note "b1");
  Sched.at_msg s ~origin:"a.example" ~n:2 ~dup:0 10 (note "a2");
  Sched.at_msg s ~origin:"a.example" ~n:1 ~dup:0 10 (note "a1");
  Sched.at s 10 (note "local");
  Sched.run_until s 10;
  Alcotest.(check (list string)) "stamp order, locals first"
    [ "local"; "a1"; "a2"; "b1" ]
    (List.rev !seen)

(* ---- unit pins: handoff rings ---- *)

let test_ring () =
  let r = Partition.Ring.create ~capacity:8 () in
  for i = 1 to 20 do
    Partition.Ring.push r i
  done;
  Alcotest.(check (list int)) "fifo across the spill"
    (List.init 20 (fun i -> i + 1))
    (Partition.Ring.drain r);
  Alcotest.(check int) "pushes counted" 20 (Partition.Ring.pushes r);
  Alcotest.(check bool) "overflow spilled" true (Partition.Ring.spills r > 0);
  Alcotest.(check (list int)) "drain empties" [] (Partition.Ring.drain r)

(* ---- unit pins: barrier pool ---- *)

let test_pool () =
  let hits = Array.make 4 0 in
  Partition.Pool.with_pool ~workers:3 (fun pool ->
      Partition.Pool.phase pool (fun i -> hits.(i) <- hits.(i) + 1);
      Partition.Pool.phase pool (fun i -> hits.(i) <- hits.(i) + 10));
  Alcotest.(check (list int)) "every index ran both phases" [ 11; 11; 11; 11 ]
    (Array.to_list hits)

let test_pool_reraises () =
  let boom = Failure "worker exploded" in
  Alcotest.check_raises "worker exception surfaces on the caller" boom (fun () ->
      Partition.Pool.with_pool ~workers:2 (fun pool ->
          Partition.Pool.phase pool (fun i -> if i = 2 then raise boom)))

(* ---- the differential scenario ------------------------------------- *)

(* A small but busy Web: a source fans ticks into a hub, the hub fans
   work out to two sinks (one branch delayed) and mirrors a record into
   sink1's store by remote update.  Enough cross-host traffic, delayed
   raising, store writes, and (optionally) faults to make accidental
   equality implausible. *)

let v = Qterm.var
let cel = Construct.cel
let cvar = Construct.cvar

let src_rules =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"emit"
          ~on:(Event_query.on ~label:"tick" (v "E"))
          (Action.seq
             [
               Action.raise_event ~to_:"hub.example" ~label:"work" (cel "w" [ cvar "E" ]);
               Action.insert ~doc:"/sent" (cel "s" [ cvar "E" ]);
             ]);
      ]
    "src"

let hub_rules =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"fan"
          ~on:(Event_query.on ~label:"work" (v "W"))
          (Action.seq
             [
               Action.raise_event ~to_:"sink1.example" ~label:"fan" (cel "f" [ cvar "W" ]);
               Action.raise_event ~delay:3 ~to_:"sink2.example" ~label:"fan"
                 (cel "f" [ cvar "W" ]);
               Action.insert ~doc:"sink1.example/mirror" (cel "m" [ cvar "W" ]);
             ]);
      ]
    "hub"

let sink_rules name =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"seen"
          ~on:(Event_query.on ~label:"fan" (v "F"))
          (Action.seq
             [
               Action.log "seen %s" [ Builtin.ovar "F" ];
               Action.insert ~doc:"/seen" (cel "x" [ cvar "F" ]);
             ]);
      ]
    name

type obs = {
  o_clock : Clock.time;
  o_transport : Transport.stats;
  o_trace : string list;
  o_hosts : (string * int * int * string list * (string * string) list) list;
      (** host, firings, duplicate events, logs, errors *)
  o_stores : (string * string) list;  (** (host/doc, xml with surrogate ids stripped) *)
}

let observe net nodes =
  {
    o_clock = Network.clock net;
    o_transport = Network.transport_stats net;
    o_trace =
      List.map (fun m -> Xml.to_string (Term.strip_ids (Message.to_term m))) (Network.trace net);
    o_hosts =
      List.map
        (fun n ->
          (Node.host n, Node.firings n, Node.duplicate_events n, Node.logs n, Node.errors n))
        nodes;
    o_stores =
      List.concat_map
        (fun n ->
          let store = Node.store n in
          List.map
            (fun d ->
              ( Node.host n ^ d,
                Xml.to_string (Term.strip_ids (Option.get (Store.doc store d))) ))
            (List.sort compare (Store.doc_names store)))
        nodes;
  }

let run_scenario ~domains ~faulty () =
  (* replay from the same initial state: id lanes are allocated from
     process-global wells in node-creation order *)
  Event.reset_ids ();
  Message.reset_ids ();
  let faults =
    if faulty then
      Transport.fault_profile ~seed:7 ~drop_rate:0.12 ~dup_rate:0.15 ~max_jitter:9 ()
    else Transport.no_faults
  in
  let net = Network.create ~record:true ~faults ~domains () in
  let attach n =
    Network.add_node_exn net n;
    n
  in
  let src = attach (node_exn ~host:"src.example" src_rules) in
  let hub = attach (node_exn ~host:"hub.example" hub_rules) in
  let sink1 = attach (node_exn ~accept_updates:true ~host:"sink1.example" (sink_rules "s1")) in
  let sink2 = attach (node_exn ~host:"sink2.example" (sink_rules "s2")) in
  Store.add_doc (Node.store src) "/sent" (Term.elem ~ord:Term.Unordered "sent" []);
  Store.add_doc (Node.store sink1) "/mirror" (Term.elem ~ord:Term.Unordered "mirror" []);
  Store.add_doc (Node.store sink1) "/seen" (Term.elem ~ord:Term.Unordered "seen" []);
  Store.add_doc (Node.store sink2) "/seen" (Term.elem ~ord:Term.Unordered "seen" []);
  for i = 1 to 20 do
    Network.run net ~until:(i * 7);
    Network.inject net ~to_:"src.example" ~label:"tick" (Term.elem "t" [ Term.int i ])
  done;
  ignore (Network.run_until_quiet net ());
  (observe net [ src; hub; sink1; sink2 ], Network.partitions net, Network.window_crossings net)

let check_same label (a : obs) (b : obs) =
  let i what = Alcotest.(check int) (label ^ ": " ^ what) in
  i "clock" a.o_clock b.o_clock;
  i "messages" a.o_transport.Transport.messages b.o_transport.Transport.messages;
  i "bytes" a.o_transport.Transport.bytes b.o_transport.Transport.bytes;
  i "events" a.o_transport.Transport.events b.o_transport.Transport.events;
  i "updates" a.o_transport.Transport.updates b.o_transport.Transport.updates;
  i "dropped" a.o_transport.Transport.dropped b.o_transport.Transport.dropped;
  i "duplicated" a.o_transport.Transport.duplicated b.o_transport.Transport.duplicated;
  Alcotest.(check (list string)) (label ^ ": full message trace") a.o_trace b.o_trace;
  List.iter2
    (fun (h, f, d, logs, errs) (h', f', d', logs', errs') ->
      Alcotest.(check string) (label ^ ": host") h h';
      i (h ^ " firings") f f';
      i (h ^ " duplicate events") d d';
      Alcotest.(check (list string)) (label ^ ": " ^ h ^ " logs") logs logs';
      Alcotest.(check (list (pair string string))) (label ^ ": " ^ h ^ " errors") errs errs')
    a.o_hosts b.o_hosts;
  Alcotest.(check (list (pair string string))) (label ^ ": stores") a.o_stores b.o_stores

let scenario_hosts = [ "src.example"; "hub.example"; "sink1.example"; "sink2.example" ]

let distinct_owners ~partitions =
  List.sort_uniq compare
    (List.map (fun h -> Partition.owner ~partitions h) scenario_hosts)
  |> List.length

let test_differential ~faulty () =
  let seq, _, _ = run_scenario ~domains:1 ~faulty () in
  List.iter
    (fun domains ->
      let par, partitions, crossings = run_scenario ~domains ~faulty () in
      check_same (Fmt.str "domains=%d" domains) seq par;
      (* when the hosts actually land in several partitions, traffic
         must have crossed through the rings — i.e. we compared a real
         parallel execution, not a degenerate single-shard one.
         (XCHANGE_NO_PAR=1 forces partitions to 1; then the comparison
         is trivially sequential-vs-sequential and that is fine.) *)
      if partitions > 1 && distinct_owners ~partitions > 1 then
        Alcotest.(check bool)
          (Fmt.str "domains=%d: rings were exercised" domains)
          true (crossings > 0))
    [ 2; 4 ]

let test_differential_clean () = test_differential ~faulty:false ()
let test_differential_faulty () = test_differential ~faulty:true ()

(* ---- causality guard ---- *)

let test_causality_on_overstated_lookahead () =
  if Escape.no_par then () (* the hatch disables partitioning — nothing to trip *)
  else begin
  (* two hosts in different partitions of a 2-way split *)
  let cands = List.init 24 (fun i -> Fmt.str "h%d.example" i) in
  let h1 = List.hd cands in
  let h2 =
    List.find
      (fun h -> Partition.owner ~partitions:2 h <> Partition.owner ~partitions:2 h1)
      cands
  in
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"fwd"
            ~on:(Event_query.on ~label:"t" (v "E"))
            (Action.raise_event ~to_:h2 ~label:"u" (cel "u" []));
        ]
      "r"
  in
  let net = Network.create ~domains:2 ~lookahead:1000 () in
  Network.add_node_exn net (node_exn ~host:h1 rules);
  Network.add_node_exn net (node_exn ~host:h2 (Ruleset.make "b"));
  Network.inject net ~to_:h1 ~label:"t" (Term.int 1);
  Alcotest.(check bool) "overstating the link latency trips the guard" true
    (try
       Network.run net ~until:5000;
       false
     with Network.Causality _ -> true)
  end

let suite =
  ( "par",
    [
      Alcotest.test_case "window arithmetic" `Quick test_window_stop;
      Alcotest.test_case "host partition assignment" `Quick test_owner;
      Alcotest.test_case "delivery rank order" `Quick test_rank_order;
      Alcotest.test_case "scheduler merges by sender stamp" `Quick test_sched_merges_by_stamp;
      Alcotest.test_case "handoff ring fifo + spill" `Quick test_ring;
      Alcotest.test_case "barrier pool phases" `Quick test_pool;
      Alcotest.test_case "barrier pool re-raises" `Quick test_pool_reraises;
      Alcotest.test_case "parallel = sequential (clean links)" `Quick test_differential_clean;
      Alcotest.test_case "parallel = sequential (faulty links)" `Quick test_differential_faulty;
      Alcotest.test_case "causality guard" `Quick test_causality_on_overstated_lookahead;
    ] )
