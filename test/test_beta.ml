(* The shared beta network must be a pure acceleration (HACKING.md
   "Cross-rule sharing"): rules whose alpha-renamed composite subtrees
   coincide share one join pipeline, and that sharing may never change
   which rules fire, with which bindings, in which order.  Shared and
   unshared engines are compared end to end over composite-heavy rule
   bases — including alpha-equivalent twins that exercise the
   canonicalization rename, consuming rules, and a crash/recover
   differential through the WAL — plus unit pins on the sharing
   mechanics (digest canonicality, the shareability gate, collision
   safety, fanout accounting, node shedding, engine wiring). *)

open Xchange

(* ---- Engine: shared beta = per-rule pipelines, all dispatch modes ---- *)

let harness () =
  let store = Store.create () in
  Store.add_doc store "/orders" (Term.elem ~ord:Term.Unordered "orders" []);
  let ops =
    {
      Action.update = (fun u -> Result.map fst (Store.apply store u));
      txn_update = (fun u -> Result.map fst (Store.apply store u));
      send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
      log = (fun _ -> ());
      now = (fun () -> 0);
      checkpoint = (fun () -> fun () -> ());
    }
  in
  (store, ops)

let firing_equal (a : Eca.firing) (b : Eca.firing) =
  String.equal a.Eca.rule b.Eca.rule
  && a.Eca.branch = b.Eca.branch
  && Subst.equal a.Eca.bindings b.Eca.bindings
  && a.Eca.outcome = b.Eca.outcome

let outcome_equal (a : Engine.outcome) (b : Engine.outcome) =
  List.equal firing_equal a.Engine.firings b.Engine.firings
  && List.length a.Engine.derived_events = List.length b.Engine.derived_events
  && a.Engine.errors = b.Engine.errors

let final_time events = List.fold_left (fun acc e -> max acc (Event.time e)) 0 events + 10_000

(* alternate plain / consuming / conditional rules so the shared
   pipeline is projected through every per-rule hatch *)
let rules_of queries =
  List.mapi
    (fun i q ->
      let name = Printf.sprintf "r%d" i in
      let action = Action.insert ~doc:"/orders" (Construct.cel "row" [ Construct.ctext name ]) in
      match i mod 3 with
      | 0 -> Eca.make ~name ~on:q action
      | 1 -> Eca.make ~name ~on:q ~consume:true action
      | _ ->
          Eca.make ~name ~on:q
            ~if_:(Condition.In (Condition.Local "/orders", Qterm.el "row" []))
            action)
    queries

let shared_prop (queries, events) =
  let valid = List.filter (fun q -> Result.is_ok (Event_query.validate q)) queries in
  if valid = [] then QCheck.assume_fail ()
  else
    (* pair every query with its canonical (alpha-renamed) twin: the
       beta network must share the two pipelines and rename detections
       back into each rule's own variable names *)
    let twins = List.map (fun q -> fst (Event_query.canonicalize q)) valid in
    let rules = rules_of (valid @ twins) in
    let run ~index ~subindex ~share =
      let engine = Engine.create_exn ~index ~subindex ~share (Ruleset.make ~rules "p") in
      let store, ops = harness () in
      let env = Store.env store in
      let outcomes = List.map (fun e -> Engine.handle_event engine ~env ~ops e) events in
      let closing = Engine.advance engine ~env ~ops (final_time events) in
      (outcomes @ [ closing ], Option.get (Store.doc store "/orders"))
    in
    let oracle, doc_o = run ~index:false ~subindex:false ~share:false in
    let same (a, da) =
      List.length a = List.length oracle
      && List.for_all2 outcome_equal a oracle
      && Term.equal da doc_o
    in
    List.for_all
      (fun (index, subindex) ->
        same (run ~index ~subindex ~share:true)
        || QCheck.Test.fail_reportf
             "shared/unshared divergence (index=%b subindex=%b) on %d rules, %d events"
             index subindex (List.length rules) (List.length events))
      [ (false, false); (true, false); (true, true) ]

let queries_arb =
  QCheck.make
    ~print:(fun qs -> Fmt.str "%a" Fmt.(list ~sep:cut Event_query.pp) qs)
    QCheck.Gen.(list_size (int_range 1 4) Gen.event_query_gen)

let stream_arb =
  QCheck.make
    ~print:(fun evs -> Fmt.str "%a" Fmt.(list ~sep:cut Event.pp) evs)
    (Gen.event_stream_gen ~labels:[ "a"; "b"; "c" ] ~max_len:20 ~max_gap:15)

let prop_shared_modes =
  QCheck.Test.make ~name:"Engine: shared beta = per-rule pipelines (all modes)" ~count:200
    (QCheck.pair queries_arb stream_arb)
    shared_prop

(* ---- building blocks for the unit pins ------------------------------- *)

let on_ l v = Event_query.on ~label:l (Qterm.var v)
let pair_q v1 v2 = Event_query.conj [ on_ "a" v1; on_ "b" v2 ]

let ev ?id ~t ~label payload = Event.make ?id ~occurred_at:t ~label payload

(* ---- composite digest canonicality ----------------------------------- *)

let test_digest_canonical () =
  let d q = Event_query.composite_digest ~ctx:None q in
  (* variable names have no sharing semantics: alpha-equivalent
     subtrees land in the same bucket *)
  Alcotest.(check string) "alpha-equivalent queries share"
    (d (pair_q "X" "Y"))
    (d (pair_q "P" "Q"));
  (* everything that changes evaluation changes the digest *)
  Alcotest.(check bool) "join structure distinguishes" false
    (String.equal (d (pair_q "X" "X")) (d (pair_q "X" "Y")));
  Alcotest.(check bool) "operator distinguishes" false
    (String.equal (d (Event_query.seq [ on_ "a" "X"; on_ "b" "Y" ])) (d (pair_q "X" "Y")));
  Alcotest.(check bool) "window folds into the key" false
    (String.equal
       (d (Event_query.within (pair_q "X" "Y") 10))
       (d (Event_query.within (pair_q "X" "Y") 20)));
  Alcotest.(check bool) "enclosing window context distinguishes" false
    (String.equal (Event_query.composite_digest ~ctx:(Some 10) (pair_q "X" "Y")) (d (pair_q "X" "Y")));
  Alcotest.(check string) "digest deterministic" (d (pair_q "X" "Y")) (d (pair_q "X" "Y"))

(* ---- the shareability gate ------------------------------------------- *)

let test_shareability_gate () =
  let net = Beta.create () in
  let sub q = Beta.subscribe net ~ctx:None q in
  Alcotest.(check bool) "atomic declined (alpha's job)" true (sub (on_ "a" "X") = None);
  Alcotest.(check bool) "timer-bearing subtree declined" true
    (sub (Event_query.absent (on_ "a" "X") ~then_absent:(on_ "b" "X") ~for_:10) = None);
  let agg =
    Event_query.Agg
      { Event_query.over = on_ "a" "V"; var = "V"; window = 2; op = Construct.Avg; bind = "A" }
  in
  Alcotest.(check bool) "accumulator declined" true (sub agg = None);
  Alcotest.(check bool) "plain join accepted" true (sub (pair_q "X" "Y") <> None);
  (* with an engine horizon, only window-bounded subtrees share *)
  let net_h = Beta.create ~horizon:100 () in
  Alcotest.(check bool) "unbounded subtree declined under horizon" true
    (Beta.subscribe net_h ~ctx:None (pair_q "X" "Y") = None);
  Alcotest.(check bool) "window-bounded subtree shares under horizon" true
    (Beta.subscribe net_h ~ctx:None (Event_query.within (pair_q "X" "Y") 50) <> None);
  Alcotest.(check bool) "window wider than the horizon declined" true
    (Beta.subscribe net_h ~ctx:None (Event_query.within (pair_q "X" "Y") 500) = None)

(* ---- sharing, memo and fanout accounting ------------------------------ *)

let test_sharing_and_fanout () =
  let net = Beta.create () in
  let m1 = Option.get (Beta.subscribe net ~ctx:None (pair_q "X" "Y")) in
  let m2 = Option.get (Beta.subscribe net ~ctx:None (pair_q "P" "Q")) in
  let s = Beta.stats net in
  Alcotest.(check int) "one node" 1 s.Beta.distinct_nodes;
  Alcotest.(check int) "two registrations" 2 s.Beta.registrations;
  Beta.begin_batch net;
  let ea = ev ~t:1 ~label:"a" (Term.text "x") in
  Alcotest.(check int) "half a pair (first asker)" 0 (List.length (m1 ea));
  Alcotest.(check int) "half a pair (memo)" 0 (List.length (m2 ea));
  let s = Beta.stats net in
  Alcotest.(check int) "stepped once" 1 s.Beta.steps;
  Alcotest.(check int) "served once from memo" 1 s.Beta.hits;
  Beta.begin_batch net;
  let eb = ev ~t:2 ~label:"b" (Term.text "y") in
  let r1 = m1 eb and r2 = m2 eb in
  Alcotest.(check int) "pair completed" 1 (List.length r1);
  Alcotest.(check int) "pair completed for the twin" 1 (List.length r2);
  (* each subscriber sees its OWN variable names on the same detection *)
  let binding m i = Option.get (Subst.find m (List.hd i).Instance.subst) in
  Alcotest.(check bool) "renamed to X" true (Term.equal (binding "X" r1) (Term.text "x"));
  Alcotest.(check bool) "renamed to Q" true (Term.equal (binding "Q" r2) (Term.text "y"));
  let s = Beta.stats net in
  Alcotest.(check int) "stepped once per event" 2 s.Beta.steps;
  Alcotest.(check int) "memo hit per event" 2 s.Beta.hits;
  Alcotest.(check int) "fanout counts every delivered instance" 2 s.Beta.fanout;
  (* re-asking within the batch is a memo hit, never a re-step (a
     re-step would double-apply the event to the shared join state) *)
  let r1' = m1 eb in
  Alcotest.(check int) "re-ask served" 1 (List.length r1');
  let s = Beta.stats net in
  Alcotest.(check int) "no extra step" 2 s.Beta.steps;
  Alcotest.(check int) "extra hit" 3 s.Beta.hits

(* ---- digest collisions ------------------------------------------------ *)

let test_collision_safety () =
  (* every subtree hashes to the same bucket: structural equality inside
     the bucket must keep the pipelines distinct and the answers
     correct *)
  let net = Beta.create ~digest:(fun _ -> "collide") () in
  let m_and = Option.get (Beta.subscribe net ~ctx:None (pair_q "X" "Y")) in
  let m_seq =
    Option.get (Beta.subscribe net ~ctx:None (Event_query.seq [ on_ "b" "X"; on_ "a" "Y" ]))
  in
  Alcotest.(check int) "collision keeps nodes distinct" 2 (Beta.stats net).Beta.distinct_nodes;
  Beta.begin_batch net;
  ignore (m_and (ev ~t:1 ~label:"a" (Term.text "x")));
  ignore (m_seq (ev ~t:1 ~label:"a" (Term.text "x")));
  Beta.begin_batch net;
  Alcotest.(check int) "And completes" 1
    (List.length (m_and (ev ~t:2 ~label:"b" (Term.text "y"))));
  Alcotest.(check int) "Seq (b before a) does not" 0
    (List.length (m_seq (ev ~t:2 ~label:"b" (Term.text "y"))));
  (* an alpha-equivalent query still shares despite the collision *)
  let (_ : Incremental.subtree_matcher) =
    Option.get (Beta.subscribe net ~ctx:None (pair_q "P" "Q"))
  in
  Alcotest.(check int) "still two nodes" 2 (Beta.stats net).Beta.distinct_nodes

(* ---- node shedding ---------------------------------------------------- *)

let test_release_sheds_nodes () =
  let net = Beta.create () in
  let h1 = Option.get (Beta.register net ~ctx:None (pair_q "X" "Y")) in
  let h2 = Option.get (Beta.register net ~ctx:None (pair_q "P" "Q")) in
  Alcotest.(check int) "shared while alive" 1 (Beta.stats net).Beta.distinct_nodes;
  Beta.release net h1;
  Alcotest.(check int) "survives first release" 1 (Beta.stats net).Beta.distinct_nodes;
  Alcotest.(check int) "registration count drops" 1 (Beta.stats net).Beta.registrations;
  Beta.release net h2;
  Alcotest.(check int) "last release sheds the node" 0 (Beta.stats net).Beta.distinct_nodes;
  Alcotest.check_raises "double release rejected"
    (Invalid_argument "Beta.release: handle already released") (fun () ->
      Beta.release net h2);
  let _ = Beta.register net ~ctx:None (pair_q "X" "Y") in
  Alcotest.(check int) "fresh node after shedding" 1 (Beta.stats net).Beta.distinct_nodes

(* ---- engine wiring: ECA and derivation subtrees share one network ---- *)

let test_engine_beta_stats () =
  let rules =
    List.mapi
      (fun i (v1, v2) ->
        Eca.make ~name:(Printf.sprintf "r%d" i)
          ~on:(pair_q v1 v2)
          (Action.insert ~doc:"/orders" (Construct.cel "row" [ Construct.cvar v1 ])))
      [ ("X", "Y"); ("P", "Q"); ("U", "V") ]
  in
  let derivation =
    Deductive_event.rule ~name:"pair" ~derives:"paired" ~trigger:(pair_q "L" "R")
      ~payload:(Construct.cel "e" [ Construct.cvar "L" ])
  in
  let rs = Ruleset.make ~rules ~event_rules:[ derivation ] "p" in
  let engine = Engine.create_exn ~share:true rs in
  let store, ops = harness () in
  let env = Store.env store in
  (match Engine.beta_stats engine with
  | None -> Alcotest.fail "beta network missing under ~share:true"
  | Some s ->
      (* 3 ECA subtrees + 1 derivation subtree, all alpha-equivalent *)
      Alcotest.(check int) "one shared pipeline" 1 s.Beta.distinct_nodes;
      Alcotest.(check int) "four registrations" 4 s.Beta.registrations);
  ignore (Engine.handle_event engine ~env ~ops (ev ~t:1 ~label:"a" (Term.text "x")));
  let outcome = Engine.handle_event engine ~env ~ops (ev ~t:2 ~label:"b" (Term.text "y")) in
  Alcotest.(check int) "all rules fired" 3 (List.length outcome.Engine.firings);
  Alcotest.(check int) "derivation ran" 1 (List.length outcome.Engine.derived_events);
  (match Engine.beta_stats engine with
  | None -> assert false
  | Some s ->
      Alcotest.(check int) "each event stepped once" 2 s.Beta.steps;
      Alcotest.(check int) "other subscribers served from memo" 6 s.Beta.hits);
  (* the unshared engine reports no network at all *)
  let plain = Engine.create_exn ~share:false rs in
  Alcotest.(check bool) "no stats unshared" true (Engine.beta_stats plain = None)

(* ---- consumption through the shared pipeline -------------------------- *)

let test_consumption_equivalence () =
  (* two consuming rules over alpha-equivalent joins: each rule must
     burn only ITS OWN constituents, even though the join state is one
     shared pipeline (per-rule id filters, never store purges) *)
  let rules =
    [
      Eca.make ~name:"c1" ~consume:true ~on:(pair_q "X" "Y")
        (Action.insert ~doc:"/orders" (Construct.cel "row" [ Construct.ctext "c1" ]));
      Eca.make ~name:"c2" ~consume:true ~on:(pair_q "P" "Q")
        (Action.insert ~doc:"/orders" (Construct.cel "row" [ Construct.ctext "c2" ]));
    ]
  in
  let events =
    [
      ev ~t:1 ~label:"a" (Term.text "x");
      ev ~t:2 ~label:"b" (Term.text "y");
      ev ~t:3 ~label:"b" (Term.text "z");
      ev ~t:4 ~label:"a" (Term.text "w");
    ]
  in
  let run ~share =
    let engine = Engine.create_exn ~share (Ruleset.make ~rules "p") in
    let store, ops = harness () in
    let env = Store.env store in
    let outs = List.map (fun e -> Engine.handle_event engine ~env ~ops e) events in
    (outs, Option.get (Store.doc store "/orders"))
  in
  let shared, doc_s = run ~share:true in
  let unshared, doc_u = run ~share:false in
  Alcotest.(check bool) "same firings" true (List.for_all2 outcome_equal shared unshared);
  Alcotest.(check bool) "same store" true (Term.equal doc_s doc_u);
  (* sanity: consumption actually bit — the (a@1, b@3) pair is burned *)
  let total = List.fold_left (fun acc o -> acc + List.length o.Engine.firings) 0 shared in
  Alcotest.(check int) "each rule fired twice" 4 total

(* ---- crash/recovery: WAL replay re-primes the shared pipelines ------- *)

let beta_wal_rules =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"p1"
          ~on:(pair_q "X" "Y")
          (Action.insert ~doc:"/pairs" (Construct.cel "row" [ Construct.cvar "X"; Construct.cvar "Y" ]));
        Eca.make ~name:"p2"
          ~on:(pair_q "P" "Q")
          (Action.insert ~doc:"/pairs" (Construct.cel "mirror" [ Construct.cvar "Q" ]));
      ]
    "betawal"

let canon_doc t =
  String.concat "|" (List.sort compare (List.map Xml.to_string (Term.children (Term.strip_ids t))))

let run_beta_crash ~crash () =
  Event.reset_ids ();
  Message.reset_ids ();
  let n = node_exn ~snapshot_every:3 ~host:"a.example" beta_wal_rules in
  Store.add_doc (Node.store n) "/pairs" (Term.elem ~ord:Term.Unordered "pairs" []);
  Node.checkpoint n ~at:Clock.origin;
  let net = Network.create () in
  Network.add_node_exn net n;
  (match crash with
  | None -> ()
  | Some (at, recover_at) -> Network.schedule_crash net ~host:"a.example" ~at ~recover_at ());
  for i = 1 to 8 do
    Network.run net ~until:(i * 10);
    Network.inject net ~to_:"a.example"
      ~label:(if i mod 2 = 1 then "a" else "b")
      (Term.elem "v" [ Term.int i ])
  done;
  ignore (Network.run_until_quiet net ());
  (Node.firings n, canon_doc (Option.get (Store.doc (Node.store n) "/pairs")))

let test_crash_recover_identity () =
  if Escape.no_wal then () (* amnesic hatch: nothing to recover from *)
  else begin
    let f0, d0 = run_beta_crash ~crash:None () in
    (* the crash lands mid-stream: join state built before it must be
       re-primed from WAL replay for the post-recovery pairs to fire *)
    let f1, d1 = run_beta_crash ~crash:(Some (35, 55)) () in
    Alcotest.(check int) "firings converge" f0 f1;
    Alcotest.(check string) "stores converge" d0 d1;
    Alcotest.(check bool) "pairs actually fired" true (f0 > 0)
  end

let suite =
  ( "beta",
    [
      QCheck_alcotest.to_alcotest ~long:true prop_shared_modes;
      Alcotest.test_case "composite digest is canonical" `Quick test_digest_canonical;
      Alcotest.test_case "shareability gate" `Quick test_shareability_gate;
      Alcotest.test_case "sharing, memo and fanout accounting" `Quick test_sharing_and_fanout;
      Alcotest.test_case "digest collisions stay correct" `Quick test_collision_safety;
      Alcotest.test_case "release sheds shared pipelines" `Quick test_release_sheds_nodes;
      Alcotest.test_case "engine shares ECA and derivation subtrees" `Quick test_engine_beta_stats;
      Alcotest.test_case "consumption stays per-rule" `Quick test_consumption_equivalence;
      Alcotest.test_case "crash/recover re-primes shared pipelines" `Quick
        test_crash_recover_identity;
    ] )
