(* QCheck generators shared by the property suites. *)

open Xchange

let small_label = QCheck.Gen.oneofl [ "a"; "b"; "c"; "item"; "price"; "news" ]
let small_text = QCheck.Gen.oneofl [ "x"; "y"; "z"; "gold"; "red"; "" ]
let var_name = QCheck.Gen.oneofl [ "X"; "Y"; "Z"; "V"; "W" ]

let ordering = QCheck.Gen.oneofl [ Term.Ordered; Term.Unordered ]

(* data terms, size-bounded *)
let term_gen : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized_size (int_bound 12) @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map Term.text small_text;
            map (fun i -> Term.int i) (int_bound 100);
            map Term.bool_ bool;
          ]
      else
        frequency
          [
            (1, map Term.text small_text);
            (1, map (fun i -> Term.int i) (int_bound 100));
            ( 3,
              map3
                (fun label ord children -> Term.elem ~ord label children)
                small_label ordering
                (list_size (int_bound 3) (self (n / 2))) );
          ])

let term_arb = QCheck.make ~print:Term.to_string term_gen

(* terms that are valid XML roots (element at top) *)
let xml_term_gen =
  QCheck.Gen.(
    map3
      (fun label ord children -> Term.elem ~ord label children)
      small_label ordering
      (list_size (int_bound 4) term_gen))

let xml_term_arb = QCheck.make ~print:Term.to_string xml_term_gen

(* query terms *)
let leaf_pat_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Qterm.Leaf_any;
      QCheck.Gen.map (fun s -> Qterm.Text_is s) small_text;
      QCheck.Gen.map (fun i -> Qterm.Num_is (float_of_int i)) (QCheck.Gen.int_bound 100);
      QCheck.Gen.map (fun b -> Qterm.Bool_is b) QCheck.Gen.bool;
    ]

let qterm_gen : Qterm.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized_size (int_bound 8) @@ fix (fun self n ->
      if n <= 0 then
        oneof [ map (fun v -> Qterm.Var v) var_name; map (fun p -> Qterm.Leaf p) leaf_pat_gen ]
      else
        frequency
          [
            (1, map (fun v -> Qterm.Var v) var_name);
            (1, map (fun p -> Qterm.Leaf p) leaf_pat_gen);
            (1, map2 (fun v q -> Qterm.As (v, q)) var_name (self (n / 2)));
            (1, map (fun q -> Qterm.Desc q) (self (n / 2)));
            ( 4,
              let spec = oneofl [ Qterm.Total; Qterm.Partial ] in
              let child =
                frequency
                  [
                    (4, map Qterm.pos (self (n / 2)));
                    (1, map Qterm.without (self (n / 2)));
                    (1, map Qterm.opt (self (n / 2)));
                  ]
              in
              map3
                (fun label (spec, ord) children ->
                  Qterm.El { Qterm.label = Qterm.L label; attrs = []; ord; spec; children })
                small_label (pair spec ordering)
                (list_size (int_bound 3) child) );
          ])

let qterm_arb = QCheck.make ~print:(Fmt.str "%a" Qterm.pp) qterm_gen

(* ---- full-surface generators (plan differential suite) ----------------
   The compiled-plan oracle test needs the whole query surface: regex
   leaves, label variables / wildcards, attribute patterns — and data
   terms that carry attributes for them to hit. *)

let attr_key = QCheck.Gen.oneofl [ "k"; "id"; "lang" ]

(* all anchored-matchable; "gold|red" exercises whole-string alternation *)
let safe_regex = QCheck.Gen.oneofl [ "x"; "[a-z]+"; "p[0-9]+"; ".*"; "gold|red" ]

let attrs_gen =
  QCheck.Gen.(
    map
      (fun kvs ->
        (* Term.elem rejects duplicate keys *)
        List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) kvs)
      (list_size (int_bound 2) (pair attr_key small_text)))

(* data terms with attributes, size-bounded *)
let term_full_gen : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized_size (int_bound 12) @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map Term.text small_text;
            map (fun i -> Term.int i) (int_bound 100);
            map Term.bool_ bool;
          ]
      else
        frequency
          [
            (1, map Term.text small_text);
            (1, map (fun i -> Term.int i) (int_bound 100));
            ( 3,
              map3
                (fun label (ord, attrs) children -> Term.elem ~ord ~attrs label children)
                small_label (pair ordering attrs_gen)
                (list_size (int_bound 3) (self (n / 2))) );
          ])

let term_full_arb = QCheck.make ~print:Term.to_string term_full_gen

let label_pat_gen =
  QCheck.Gen.frequency
    [
      (4, QCheck.Gen.map (fun l -> Qterm.L l) small_label);
      (1, QCheck.Gen.return Qterm.L_any);
      (1, QCheck.Gen.map (fun v -> Qterm.L_var v) var_name);
    ]

let attr_pat_gen =
  QCheck.Gen.(
    pair attr_key
      (oneof
         [
           map (fun s -> Qterm.A_is s) small_text;
           map (fun v -> Qterm.A_var v) var_name;
           return Qterm.A_any;
         ]))

let leaf_pat_full_gen =
  QCheck.Gen.frequency
    [ (4, leaf_pat_gen); (1, QCheck.Gen.map (fun r -> Qterm.Regex r) safe_regex) ]

(* query terms over the whole surface: ordered/unordered x total/partial
   x optional x without x As/Desc/regex/label-var/attrs *)
let qterm_full_gen : Qterm.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized_size (int_bound 8) @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun v -> Qterm.Var v) var_name; map (fun p -> Qterm.Leaf p) leaf_pat_full_gen ]
      else
        frequency
          [
            (1, map (fun v -> Qterm.Var v) var_name);
            (1, map (fun p -> Qterm.Leaf p) leaf_pat_full_gen);
            (1, map2 (fun v q -> Qterm.As (v, q)) var_name (self (n / 2)));
            (1, map (fun q -> Qterm.Desc q) (self (n / 2)));
            ( 4,
              let spec = oneofl [ Qterm.Total; Qterm.Partial ] in
              let child =
                frequency
                  [
                    (4, map Qterm.pos (self (n / 2)));
                    (1, map Qterm.without (self (n / 2)));
                    (1, map Qterm.opt (self (n / 2)));
                  ]
              in
              map3
                (fun label ((spec, ord), attrs) children ->
                  Qterm.El { Qterm.label; attrs; ord; spec; children })
                label_pat_gen
                (pair (pair spec ordering)
                   (map
                      (List.sort_uniq (fun (a, _) (b, _) -> String.compare a b))
                      (list_size (int_bound 2) attr_pat_gen)))
                (list_size (int_bound 3) child) );
          ])

let qterm_full_arb = QCheck.make ~print:(Fmt.str "%a" Qterm.pp) qterm_full_gen

(* event streams: (time, label, payload) with non-decreasing times *)
let event_stream_gen ~labels ~max_len ~max_gap : Event.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let item =
    triple (int_bound max_gap) (oneofl labels) term_gen
  in
  map
    (fun items ->
      let _, events =
        List.fold_left
          (fun (t, acc) (gap, label, payload) ->
            let t = t + 1 + gap in
            (t, Event.make ~occurred_at:t ~label payload :: acc))
          (0, []) items
      in
      List.rev events)
    (list_size (int_bound max_len) item)

(* small event queries over the labels of [event_stream_gen] *)
let event_query_gen : Event_query.t QCheck.Gen.t =
  let open QCheck.Gen in
  let atomic =
    map2
      (fun label q -> Event_query.on ~label q)
      (oneofl [ "a"; "b"; "c" ])
      (oneof
         [
           return (Qterm.var "P");
           map (fun l -> Qterm.el l [ Qterm.pos (Qterm.var "X") ]) small_label;
           map (fun l -> Qterm.el l []) small_label;
         ])
  in
  sized_size (int_bound 4) @@ fix (fun self n ->
      if n <= 0 then atomic
      else
        frequency
          [
            (2, atomic);
            (1, map (fun qs -> Event_query.And qs) (list_size (int_range 1 2) (self (n / 2))));
            (1, map (fun qs -> Event_query.Or qs) (list_size (int_range 1 2) (self (n / 2))));
            (1, map (fun qs -> Event_query.Seq qs) (list_size (int_range 1 2) (self (n / 2))));
            ( 1,
              map2
                (fun q w -> Event_query.Within (q, 1 + w))
                (self (n / 2)) (int_bound 50) );
            ( 1,
              map3
                (fun q1 q2 w -> Event_query.Absent (q1, q2, 1 + w))
                atomic atomic (int_bound 30) );
            (* absence over a composite start: exercises late-completing
               starts against stored blockers *)
            ( 1,
              map3
                (fun q1 q2 w ->
                  Event_query.Absent (Event_query.And [ q1; q2 ], q1, 1 + w))
                atomic atomic (int_bound 30) );
            ( 1,
              map2 (fun q w -> Event_query.Times (2, q, 1 + w)) atomic (int_bound 50) );
            (* repetition over a composite *)
            ( 1,
              map3
                (fun q1 q2 w ->
                  Event_query.Times (2, Event_query.Within (Event_query.And [ q1; q2 ], 1 + w), 40))
                atomic atomic (int_bound 20) );
          ])

let event_query_arb = QCheck.make ~print:(Fmt.str "%a" Event_query.pp) event_query_gen
