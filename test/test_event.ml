open Xchange

let test_clock () =
  Alcotest.(check int) "units" 3_600_000 (Clock.hours 1);
  Alcotest.(check int) "minutes" 120_000 (Clock.minutes 2);
  Alcotest.(check int) "add" 1500 (Clock.add 500 (Clock.seconds 1));
  Alcotest.(check int) "diff truncates" 0 (Clock.diff 1 5);
  Alcotest.(check string) "pp span hours" "2h" (Fmt.str "%a" Clock.pp_span (Clock.hours 2));
  Alcotest.(check string) "pp span ms" "250ms" (Fmt.str "%a" Clock.pp_span 250)

let test_event_basics () =
  let e = Event.make ~sender:"a.example" ~occurred_at:100 ~label:"ping" (Term.text "x") in
  let e2 = Event.make ~occurred_at:100 ~label:"ping" (Term.text "x") in
  Alcotest.(check bool) "ids unique and increasing" true (e2.Event.id > e.Event.id);
  Alcotest.(check int) "received defaults to occurred" 100 (Event.time e);
  let late = Event.received e 150 in
  Alcotest.(check int) "reception time" 150 (Event.time late)

let test_event_expiry () =
  let e = Event.make ~occurred_at:100 ~ttl:50 ~label:"volatile" (Term.text "x") in
  Alcotest.(check bool) "fresh" false (Event.expired e 140);
  Alcotest.(check bool) "boundary inclusive" false (Event.expired e 150);
  Alcotest.(check bool) "expired" true (Event.expired e 151);
  let forever = Event.make ~occurred_at:100 ~label:"p" (Term.text "x") in
  Alcotest.(check bool) "no ttl never expires" false (Event.expired forever max_int)

let test_event_to_term () =
  let e = Event.make ~sender:"s.example" ~occurred_at:7 ~label:"order" (Term.elem "order" []) in
  let t = Event.to_term e in
  Alcotest.(check int) "header queryable" 1
    (List.length
       (Simulate.matches_anywhere
          (Qterm.el "sender" [ Qterm.pos (Qterm.txt "s.example") ])
          t))

let test_history_retention () =
  let h = History.create ~retention:(History.Keep 100) () in
  for i = 1 to 10 do
    History.add h (Event.make ~occurred_at:(i * 50) ~label:"e" (Term.int i))
  done;
  Alcotest.(check int) "total seen" 10 (History.total_seen h);
  Alcotest.(check bool) "bounded" true (History.length h <= 3);
  History.advance h 10_000;
  Alcotest.(check int) "all dropped after horizon" 0 (History.length h)

let test_history_unbounded () =
  let h = History.create () in
  for i = 1 to 10 do
    History.add h (Event.make ~occurred_at:i ~label:"e" (Term.int i))
  done;
  History.advance h 1_000_000;
  Alcotest.(check int) "shadow web: nothing dropped" 10 (History.length h)

let test_instance_combine () =
  let s1 = Option.get (Subst.of_list [ ("X", Term.int 1) ]) in
  let s2 = Option.get (Subst.of_list [ ("Y", Term.int 2) ]) in
  let i1 = Instance.atomic s1 10 1 and i2 = Instance.atomic s2 20 2 in
  (match Instance.combine [ i1; i2 ] with
  | Some c ->
      Alcotest.(check int) "envelope start" 10 c.Instance.t_start;
      Alcotest.(check int) "envelope end" 20 c.Instance.t_end;
      Alcotest.(check (list int)) "ids merged" [ 1; 2 ] c.Instance.ids
  | None -> Alcotest.fail "compatible instances must combine");
  let s1' = Option.get (Subst.of_list [ ("X", Term.int 9) ]) in
  Alcotest.(check bool) "conflict rejected" true
    (Instance.combine [ i1; Instance.atomic s1' 20 2 ] = None)

let test_strictly_before () =
  let i t id = Instance.atomic Subst.empty t id in
  Alcotest.(check bool) "earlier time" true (Instance.strictly_before (i 1 5) (i 2 1));
  Alcotest.(check bool) "same time, id order" true (Instance.strictly_before (i 5 1) (i 5 2));
  Alcotest.(check bool) "same time, wrong id order" false (Instance.strictly_before (i 5 2) (i 5 1));
  Alcotest.(check bool) "not before itself" false (Instance.strictly_before (i 5 1) (i 5 1))

(* ---- istore: ring-buffer deque and keyed partitions ---- *)

let test_dq_ring () =
  let d = Istore.Dq.create () in
  (* force several grow/wrap cycles *)
  for i = 1 to 5 do
    Istore.Dq.push_back d i
  done;
  Alcotest.(check (option int)) "front" (Some 1) (Istore.Dq.pop_front d);
  Alcotest.(check (option int)) "next" (Some 2) (Istore.Dq.pop_front d);
  for i = 6 to 40 do
    Istore.Dq.push_back d i
  done;
  Alcotest.(check int) "length" 38 (Istore.Dq.length d);
  Alcotest.(check (list int)) "order preserved" (List.init 38 (fun i -> i + 3))
    (Istore.Dq.to_list d);
  Alcotest.(check int) "random access" 10 (Istore.Dq.get d 7);
  Istore.Dq.filter_inplace (fun x -> x mod 2 = 0) d;
  Alcotest.(check int) "filtered" 19 (Istore.Dq.length d)

let inst ?(vars = []) t id =
  Instance.atomic (Option.get (Subst.of_list vars)) t id

let test_istore_prune () =
  let s = Istore.create ~key:[] in
  List.iter (Istore.add s) [ inst 10 1; inst 20 2; inst 30 3 ];
  Istore.prune s ~keep_from:21;
  Alcotest.(check int) "front-popped" 1 (Istore.length s);
  Alcotest.(check int) "pruned counted" 2 (Istore.stats s).Istore.pruned;
  (* boundary: t_end = keep_from survives *)
  let s = Istore.create ~key:[] in
  List.iter (Istore.add s) [ inst 10 1; inst 20 2 ];
  Istore.prune s ~keep_from:20;
  Alcotest.(check int) "boundary kept" 1 (Istore.length s)

let test_istore_probe_keyed () =
  let s = Istore.create ~key:[ "K" ] in
  List.iter (Istore.add s)
    [
      inst ~vars:[ ("K", Term.int 1) ] 10 1;
      inst ~vars:[ ("K", Term.int 2) ] 11 2;
      inst ~vars:[ ("K", Term.int 1) ] 12 3;
      (* misses the key variable: lands in the wildcard partition *)
      inst ~vars:[ ("Z", Term.int 9) ] 13 4;
    ];
  let k1 = Option.get (Subst.of_list [ ("K", Term.int 1) ]) in
  let cands = Istore.probe s k1 in
  Alcotest.(check int) "bucket + wildcard" 3 (List.length cands);
  Alcotest.(check bool) "conflicting key skipped" true
    (List.for_all (fun i -> not (List.mem 2 i.Instance.ids)) cands);
  (* probing substitution missing the key var degrades to a full scan *)
  let unkeyed = Option.get (Subst.of_list [ ("Z", Term.int 9) ]) in
  Alcotest.(check int) "unkeyed probe sees all" 4 (List.length (Istore.probe s unkeyed));
  Alcotest.(check int) "two populated buckets" 2 (Istore.buckets s);
  let st = Istore.stats s in
  Alcotest.(check bool) "skips accounted" true (st.Istore.pairs_skipped > 0)

(* ---- indexed vs naive joins: identical detections, property-tested ---- *)

let run_both q events ~until =
  let run ~index =
    let engine = Incremental.create_exn ~index q in
    List.map (fun e -> Incremental.feed engine e) events
    @ [ Incremental.advance_to engine until ]
  in
  (run ~index:true, run ~index:false)

let prop_index_equivalence =
  let stream_arb =
    QCheck.make
      ~print:(fun evs -> Fmt.str "%a" Fmt.(list ~sep:cut Event.pp) evs)
      (Gen.event_stream_gen ~labels:[ "a"; "b"; "c" ] ~max_len:20 ~max_gap:15)
  in
  QCheck.Test.make ~name:"hash-partitioned joins = naive nested loop (per feed)" ~count:300
    (QCheck.pair Gen.event_query_arb stream_arb)
    (fun (q, events) ->
      match Event_query.validate q with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
          let until = List.fold_left (fun acc e -> max acc (Event.time e)) 0 events + 10_000 in
          let indexed, naive = run_both q events ~until in
          if List.equal (List.equal Instance.equal) indexed naive then true
          else
            QCheck.Test.fail_reportf "query %a@.indexed:@.%a@.naive:@.%a" Event_query.pp q
              Fmt.(list ~sep:cut (list ~sep:comma Instance.pp))
              indexed
              Fmt.(list ~sep:cut (list ~sep:comma Instance.pp))
              naive)

(* aggregates over a variable that never binds a number must stay
   silent — not emit nan/infinity bindings (the empty-reduction guard) *)
let test_agg_no_numeric_values () =
  let q =
    Event_query.Agg
      {
        Event_query.over = Event_query.on ~label:"t" (Qterm.el "t" [ Qterm.pos (Qterm.var "V") ]);
        var = "V";
        window = 1;
        op = Construct.Avg;
        bind = "A";
      }
  in
  let events =
    List.init 3 (fun i ->
        Event.make ~occurred_at:(i + 1) ~label:"t" (Term.elem "t" [ Term.text "not-a-number" ]))
  in
  let engine = Incremental.create_exn q in
  let d = List.concat_map (Incremental.feed engine) events in
  Alcotest.(check int) "incremental: no detections" 0 (List.length d);
  let h = History.create () in
  List.iter (History.add h) events;
  Alcotest.(check int) "backward: no answers" 0 (List.length (Backward.answers q h ~now:100))

let suite =
  ( "event",
    [
      Alcotest.test_case "clock arithmetic" `Quick test_clock;
      Alcotest.test_case "event construction" `Quick test_event_basics;
      Alcotest.test_case "volatility (expiry)" `Quick test_event_expiry;
      Alcotest.test_case "envelope as data term" `Quick test_event_to_term;
      Alcotest.test_case "history retention drops old events" `Quick test_history_retention;
      Alcotest.test_case "unbounded history keeps everything" `Quick test_history_unbounded;
      Alcotest.test_case "instance combination" `Quick test_instance_combine;
      Alcotest.test_case "temporal order with id tie-break" `Quick test_strictly_before;
      Alcotest.test_case "istore ring-buffer deque" `Quick test_dq_ring;
      Alcotest.test_case "istore front-pop pruning" `Quick test_istore_prune;
      Alcotest.test_case "istore keyed probe" `Quick test_istore_probe_keyed;
      Alcotest.test_case "aggregate over non-numeric stream stays silent" `Quick
        test_agg_no_numeric_values;
      QCheck_alcotest.to_alcotest prop_index_equivalence;
    ] )
