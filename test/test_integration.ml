(* End-to-end scenarios: several nodes, surface-syntax programs, the
   full message/firing pipeline — the examples, with assertions. *)

open Xchange

let parse src = match Parser.parse_program src with Ok rs -> rs | Error e -> Alcotest.fail e

let node_of host src =
  match node_of_program ~host src with Ok n -> n | Error e -> Alcotest.fail (host ^ ": " ^ e)

(* ---- the marketplace choreography ---- *)

let test_marketplace_flow () =
  let shop =
    node_of "shop.example"
      {|ruleset shop {
          procedure ship(Item, Who) {
            log "ship %s/%s", $Item, $Who;
            raise to "warehouse.example" pick pick[item[$Item]]
          }
          view gold gold[all name[$N]]
            from in doc("/customers") customers{{customer{{name[var N], status["gold"]}}}}
          rule incoming:
            on order{{item[var Item], customer[var Who]}}
            if in view(gold) gold{{name[var Who]}}
            do call ship($Item, $Who)
            else raise to "bank.example" invoice invoice[customer[$Who], item[$Item]]
          rule paid(consume):
            on seq{order{{item[var Item], customer[var Who]}},
                   payment{{customer[var Who]}}} within 2 h
            do call ship($Item, $Who)
        }|}
  in
  let warehouse =
    node_of "warehouse.example"
      {|ruleset wh {
          rule pick: on pick{{item[var I]}} do insert into "/picks" p[$I]
        }|}
  in
  let bank =
    node_of "bank.example"
      {|ruleset bank {
          rule invoice:
            on invoice{{customer[var W], item[var I]}}
            do raise to "shop.example" payment payment[customer[$W], item[$I]]
        }|}
  in
  Store.add_doc (Node.store shop) "/customers"
    (Xml.parse_exn
       {|<customers xch:unordered="true">
           <customer><name>franz</name><status>gold</status></customer>
           <customer><name>mary</name><status>basic</status></customer>
         </customers>|});
  Store.add_doc (Node.store warehouse) "/picks" (Term.elem ~ord:Term.Unordered "picks" []);
  let net = Network.create () in
  List.iter (Network.add_node_exn net) [ shop; warehouse; bank ];
  let order item who =
    Term.elem "order" [ Term.elem "item" [ Term.text item ]; Term.elem "customer" [ Term.text who ] ]
  in
  Network.inject net ~to_:"shop.example" ~label:"order" (order "ball" "franz");
  Network.inject net ~to_:"shop.example" ~label:"order" (order "whistle" "mary");
  ignore (Network.run_until_quiet net ());
  (* franz shipped directly; mary shipped after the bank's payment *)
  let picks = Option.get (Store.doc (Node.store warehouse) "/picks") in
  Alcotest.(check int) "both items picked" 2 (List.length (Term.children picks));
  Alcotest.(check (list string)) "shipping order" [ "ship ball/franz"; "ship whistle/mary" ]
    (Node.logs shop)

(* ---- trust negotiation end-to-end over the network ---- *)

let test_rules_exchange_then_service () =
  (* a node receives its entire service as a rule-set message, then
     serves — Thesis 11's mutual exchange made concrete *)
  let blank = node_exn ~accept_rules:true ~host:"fresh.example" (Ruleset.make "empty") in
  Store.add_doc (Node.store blank) "/log" (Term.elem ~ord:Term.Unordered "log" []);
  let service =
    parse
      {|ruleset service {
          rule serve: on ping{{var X}} do { insert into "/log" row[$X];
                                            raise to "client.example" pong pong[$X] }
        }|}
  in
  let client =
    node_of "client.example"
      {|ruleset client { rule r: on pong{{var X}} do log "pong %s", $X }|}
  in
  let net = Network.create () in
  Network.add_node_exn net blank;
  Network.add_node_exn net client;
  (* ship the rules, then use the service *)
  Network.inject net ~sender:"client.example" ~to_:"fresh.example" ~label:Node.rules_label
    (Meta.ruleset_to_term service);
  ignore (Network.run_until_quiet net ());
  Network.inject net ~sender:"client.example" ~to_:"fresh.example" ~label:"ping"
    (Term.elem "ping" [ Term.text "42" ]);
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "service built from received rules works" [ "pong 42" ]
    (Node.logs client);
  Alcotest.(check int) "service logged the request" 1
    (List.length (Term.children (Option.get (Store.doc (Node.store blank) "/log"))))

(* ---- accumulation + remote update + atomic, combined ---- *)

let test_metering_pipeline () =
  (* a meter node aggregates readings (Agg), records each window
     atomically in its own store, then mirrors it to a remote collector.
     The mirror update lives outside the atomic block: a remote store
     cannot take part in a local transaction (txn_update rejects it). *)
  let meter =
    node_of "meter.example"
      {|ruleset meter {
          rule window:
            on avg($V) last 3 {reading{{value[var V]}}} as A
            do { atomic { insert into "/windows" w[$A] };
                 insert into "collector.example/all-windows" w[from["meter"], avg[$A]] }
        }|}
  in
  let collector = node_exn ~accept_updates:true ~host:"collector.example" (Ruleset.make "c") in
  Store.add_doc (Node.store meter) "/windows" (Term.elem ~ord:Term.Unordered "ws" []);
  Store.add_doc (Node.store collector) "/all-windows" (Term.elem ~ord:Term.Unordered "all" []);
  let net = Network.create () in
  Network.add_node_exn net meter;
  Network.add_node_exn net collector;
  for i = 1 to 5 do
    Network.run net ~until:(i * 100);
    Network.inject net ~to_:"meter.example" ~label:"reading"
      (Term.elem "reading" [ Term.elem "value" [ Term.num (float_of_int (10 * i)) ] ])
  done;
  ignore (Network.run_until_quiet net ());
  (* windows complete at readings 3, 4, 5 *)
  Alcotest.(check int) "local windows" 3
    (List.length (Term.children (Option.get (Store.doc (Node.store meter) "/windows"))));
  Alcotest.(check int) "collector mirrors them" 3
    (List.length (Term.children (Option.get (Store.doc (Node.store collector) "/all-windows"))));
  Alcotest.(check bool) "updates travelled as messages" true
    ((Network.transport_stats net).Transport.updates = 3)

(* ---- derived events feeding composite queries across the stack ---- *)

let test_derived_events_in_rules () =
  let monitor =
    node_of "mon.example"
      {|ruleset mon {
          # the label prefix matters: it is what the stratification
          # check uses to prove the derivation non-recursive
          derive spike emit anomaly anomaly[v[$V]]
            on reading: reading{{value[var V]}}
          rule alert(consume):
            on times 2 {anomaly{{}}} within 1 h
            do log "two anomalies"
        }|}
  in
  let net = Network.create () in
  Network.add_node_exn net monitor;
  for i = 1 to 2 do
    Network.run net ~until:(i * Clock.minutes 5);
    Network.inject net ~to_:"mon.example" ~label:"reading"
      (Term.elem "reading" [ Term.elem "value" [ Term.num 99. ] ])
  done;
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "derived events drive composite rules" [ "two anomalies" ]
    (Node.logs monitor)

let suite =
  ( "integration",
    [
      Alcotest.test_case "marketplace choreography" `Quick test_marketplace_flow;
      Alcotest.test_case "service shipped as rules, then used" `Quick test_rules_exchange_then_service;
      Alcotest.test_case "metering: agg + atomic + remote update" `Quick test_metering_pipeline;
      Alcotest.test_case "derived events drive composite rules" `Quick test_derived_events_in_rules;
    ] )
