let () =
  Alcotest.run "xchange"
    [
      Test_term.suite;
      Test_path.suite;
      Test_xml.suite;
      Test_rdf.suite;
      Test_query.suite;
      Test_construct.suite;
      Test_condition.suite;
      Test_deductive.suite;
      Test_event.suite;
      Test_event_query.suite;
      Test_equivalence.suite;
      Test_perf_index.suite;
      Test_rules.suite;
      Test_ruleset.suite;
      Test_store.suite;
      Test_web.suite;
      Test_sched.suite;
      Test_lang.suite;
      Test_aaa.suite;
      Test_extensions.suite;
      Test_edge.suite;
      Test_topic_map.suite;
      Test_integration.suite;
      Test_misc.suite;
    ]
