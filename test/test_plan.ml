(* Compiled query plans (lib/query/plan.ml) must be a pure acceleration
   of the interpreting matcher: every property here runs the compiled
   path against the interpreter ([~plan:false], the reference
   implementation) on randomly generated queries x documents over the
   whole query surface — ordered/unordered x total/partial x optional x
   without x As/Desc/regex/label-var/attrs — and demands identical
   answers.  See HACKING.md "Query compilation". *)

open Xchange

let subst_sets_equal a b = List.equal Subst.equal a b

let pp_set = Fmt.str "%a" Subst.pp_set

let seed_x = Option.get (Subst.of_list [ ("X", Term.text "x") ])

(* ---- differential: compiled plan = interpreter ---- *)

let root_prop ~seed (q, t) =
  let interp = Simulate.matches ~plan:false ~seed q t in
  let compiled = Simulate.matches ~plan:true ~seed q t in
  if subst_sets_equal interp compiled then true
  else
    QCheck.Test.fail_reportf "query %a@.doc %s@.interp: %s@.plan: %s" Qterm.pp q
      (Term.to_string t) (pp_set interp) (pp_set compiled)

let prop_plan_root =
  QCheck.Test.make ~name:"plan: matches = interpreter" ~count:2000
    (QCheck.pair Gen.qterm_full_arb Gen.term_full_arb)
    (root_prop ~seed:Subst.empty)

let prop_plan_root_seeded =
  QCheck.Test.make ~name:"plan: matches = interpreter (seeded)" ~count:500
    (QCheck.pair Gen.qterm_full_arb Gen.term_full_arb)
    (root_prop ~seed:seed_x)

(* anywhere-matching: interpreter / plan x unindexed / indexed must all
   agree (the index additionally exercises the anchor pruning, including
   the parent-of-label see-through) *)
let anywhere_prop (q, t) =
  let index = Term_index.build t in
  let reference = Simulate.matches_anywhere ~plan:false q t in
  let variants =
    [
      ("interp+index", Simulate.matches_anywhere ~plan:false ~index q t);
      ("plan", Simulate.matches_anywhere ~plan:true q t);
      ("plan+index", Simulate.matches_anywhere ~plan:true ~index q t);
    ]
  in
  match List.find_opt (fun (_, s) -> not (subst_sets_equal reference s)) variants with
  | None -> true
  | Some (name, s) ->
      QCheck.Test.fail_reportf "query %a@.doc %s@.interp: %s@.%s: %s" Qterm.pp q
        (Term.to_string t) (pp_set reference) name (pp_set s)

let prop_plan_anywhere =
  QCheck.Test.make ~name:"plan: matches_anywhere = interpreter (+/- index)" ~count:2000
    (QCheck.pair Gen.qterm_full_arb Gen.term_full_arb)
    anywhere_prop

(* ---- fingerprint pruning: fires, and prunes only true rejections ---- *)

let test_fingerprint_prune () =
  (* decoys carry the right label but cannot contain the required child
     labels — the fingerprint refutes them before any descent *)
  let hit i =
    Term.elem ~ord:Term.Unordered "rec"
      [
        Term.elem "name" [ Term.text (Printf.sprintf "n%d" i) ];
        Term.elem "price" [ Term.int i ];
      ]
  in
  let decoy i =
    Term.elem ~ord:Term.Unordered "rec"
      [ Term.elem "name" [ Term.text (Printf.sprintf "d%d" i) ]; Term.elem "qty" [ Term.int i ] ]
  in
  let doc =
    Term.elem ~ord:Term.Unordered "db"
      (List.init 20 (fun i -> if i mod 2 = 0 then hit i else decoy i))
  in
  let q =
    Qterm.el ~ord:Term.Unordered "rec"
      [
        Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]);
        Qterm.pos (Qterm.el "price" [ Qterm.pos (Qterm.var "P") ]);
      ]
  in
  let before = Plan.fingerprint_pruned () in
  let compiled = Simulate.matches_anywhere ~plan:true q doc in
  let pruned = Plan.fingerprint_pruned () - before in
  let interp = Simulate.matches_anywhere ~plan:false q doc in
  Alcotest.(check bool) "answers equal" true (subst_sets_equal interp compiled);
  Alcotest.(check int) "10 hits" 10 (List.length compiled);
  Alcotest.(check int) "10 decoys fingerprint-pruned" 10 pruned

(* ---- plan cache: second evaluation hits ---- *)

let test_plan_cache () =
  let q = Qterm.el "cache-probe" [ Qterm.pos (Qterm.var "X") ] in
  let doc = Term.elem "cache-probe" [ Term.text "v" ] in
  let hits_of () =
    match Obs.Metrics.find (Obs.Metrics.snapshot Simulate.metrics) "query.plan_cache_hits" with
    | Some (Obs.Metrics.Int n) -> n
    | _ -> Alcotest.fail "plan_cache_hits cell missing"
  in
  (* [~plan:true] so the test also runs under XCHANGE_NO_PLAN=1 *)
  let (_ : Subst.set) = Simulate.matches ~plan:true q doc in
  let h0 = hits_of () in
  let (_ : Subst.set) = Simulate.matches ~plan:true q doc in
  Alcotest.(check bool) "second evaluation hits the plan cache" true (hits_of () > h0)

(* ---- store coherence: document mutation yields fresh answers ---- *)

let test_store_mutation () =
  let store = Store.create () in
  Store.add_doc store "/db" (Term.elem "db" [ Term.elem "item" [ Term.text "a" ] ]);
  let q = Qterm.el "item" [ Qterm.pos (Qterm.var "X") ] in
  let a1 = Store.query store ~doc:"/db" q in
  Alcotest.(check int) "one answer before mutation" 1 (List.length a1);
  (match
     Store.apply store
       (Action.U_insert
          {
            doc = "/db";
            selector = [];
            at = None;
            content = Term.elem "item" [ Term.text "b" ];
          })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let a2 = Store.query store ~doc:"/db" q in
  Alcotest.(check int) "two answers after mutation" 2 (List.length a2);
  (* and they match a fresh interpreter evaluation of the new version *)
  let fresh =
    Simulate.matches_anywhere ~plan:false q (Option.get (Store.doc store "/db"))
  in
  Alcotest.(check bool) "cached+plan = fresh interpreter" true (subst_sets_equal fresh a2)

(* ---- anchor: see-through and pinned fallback ---- *)

let test_anchor_see_through () =
  (* any-labelled element with an exactly-labelled required child
     anchors at parents of that label *)
  let q =
    Qterm.El
      {
        Qterm.label = Qterm.L_any;
        attrs = [];
        ord = Term.Unordered;
        spec = Qterm.Partial;
        children = [ Qterm.pos (Qterm.el "needle" [ Qterm.pos (Qterm.var "X") ]) ];
      }
  in
  (match Qterm.anchor q with
  | Some (Qterm.A_parent_label "needle") -> ()
  | _ -> Alcotest.fail "expected A_parent_label anchor");
  (* pinned fallback: no exactly-labelled required child -> no anchor *)
  let no_anchor children =
    Qterm.anchor
      (Qterm.El
         {
           Qterm.label = Qterm.L_any;
           attrs = [];
           ord = Term.Unordered;
           spec = Qterm.Partial;
           children;
         })
  in
  Alcotest.(check bool) "var child: full traversal" true
    (no_anchor [ Qterm.pos (Qterm.var "X") ] = None);
  Alcotest.(check bool) "optional exact child: full traversal" true
    (no_anchor [ Qterm.opt (Qterm.el "needle" []) ] = None);
  Alcotest.(check bool) "desc-wrapped exact child: full traversal" true
    (no_anchor [ Qterm.pos (Qterm.desc (Qterm.el "needle" [])) ] = None);
  (* label variables never anchor *)
  Alcotest.(check bool) "label-var root: full traversal" true
    (Qterm.anchor
       (Qterm.El
          {
            Qterm.label = Qterm.L_var "L";
            attrs = [];
            ord = Term.Unordered;
            spec = Qterm.Partial;
            children = [ Qterm.pos (Qterm.el "needle" []) ];
          })
    = None);
  (* equivalence on a document with needles at several depths, including
     directly under the root *)
  let doc =
    Term.elem "db"
      [
        Term.elem "needle" [ Term.text "top" ];
        Term.elem "box" [ Term.elem "needle" [ Term.text "deep" ] ];
        Term.elem "box" [ Term.elem "other" [ Term.text "no" ] ];
      ]
  in
  let index = Term_index.build doc in
  let naive = Simulate.matches_anywhere ~plan:false q doc in
  Alcotest.(check bool) "indexed interp = naive" true
    (subst_sets_equal naive (Simulate.matches_anywhere ~plan:false ~index q doc));
  Alcotest.(check bool) "indexed plan = naive" true
    (subst_sets_equal naive (Simulate.matches_anywhere ~plan:true ~index q doc));
  Alcotest.(check int) "both needle parents found" 2 (List.length naive)

(* ---- anchored regex: whole-leaf semantics on both paths ---- *)

let test_regex_anchored () =
  let q = Qterm.el "a" [ Qterm.pos (Qterm.regex "gold|red") ] in
  let yes = Term.elem "a" [ Term.text "red" ] in
  let no = Term.elem "a" [ Term.text "reddish" ] in
  List.iter
    (fun plan ->
      Alcotest.(check bool) "alternation matches whole leaf" true (Simulate.holds ~plan q yes);
      Alcotest.(check bool) "substring match rejected" false (Simulate.holds ~plan q no))
    [ true; false ]

let suite =
  ( "plan",
    [
      QCheck_alcotest.to_alcotest ~long:true prop_plan_root;
      QCheck_alcotest.to_alcotest prop_plan_root_seeded;
      QCheck_alcotest.to_alcotest ~long:true prop_plan_anywhere;
      Alcotest.test_case "fingerprint pruning" `Quick test_fingerprint_prune;
      Alcotest.test_case "plan cache hits" `Quick test_plan_cache;
      Alcotest.test_case "store mutation coherence" `Quick test_store_mutation;
      Alcotest.test_case "anchor see-through + fallback" `Quick test_anchor_see_through;
      Alcotest.test_case "anchored regex semantics" `Quick test_regex_anchored;
    ] )
