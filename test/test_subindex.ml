(* The subscription index must be a pure acceleration (HACKING.md
   "Subscription index"): candidate selection through the trie plus
   plan confirmation has to produce exactly the answers of a linear
   scan over every registration — under churn, under labels, and when
   wired into [Pubsub.Registry] and [Engine] dispatch. *)

open Xchange

let subst_sets_equal a b = List.equal Subst.equal a b

(* ---- Sub_index.matching = linear Plan.matches scan, with churn ---- *)

let probe_labels = [ "a"; "b" ]

let entry_gen = QCheck.Gen.(pair (option (oneofl probe_labels)) Gen.qterm_gen)

let probe_gen = QCheck.Gen.(pair (option (oneofl probe_labels)) Gen.term_gen)

let case_print ((entries, probes) : _ * _) =
  Fmt.str "%d entries / %d probes:@.%a@.probes: %a"
    (List.length entries) (List.length probes)
    Fmt.(list ~sep:cut (pair (option string) Qterm.pp))
    entries
    Fmt.(list ~sep:cut (pair (option string) (of_to_string Term.to_string)))
    probes

let case_arb =
  QCheck.make ~print:case_print
    QCheck.Gen.(
      pair
        (list_size (int_range 1 8) entry_gen)
        (list_size (int_range 1 6) probe_gen))

(* every registration the label admits, confirmed by its own plan *)
let oracle entries lookup_label term =
  List.filter_map
    (fun (id, elabel, q) ->
      let label_ok =
        match (elabel, lookup_label) with
        | None, _ -> true
        | Some l, Some l' -> String.equal l l'
        | Some _, None -> false
      in
      if not label_ok then None
      else
        match Plan.matches (Simulate.plan_of q) term with
        | [] -> None
        | answers -> Some (id, answers))
    entries

let matching_agrees idx entries (lookup_label, term) =
  let got =
    Sub_index.matching idx ?label:lookup_label term
    |> List.map (fun (id, _, answers) -> (id, answers))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let want = oracle entries lookup_label term in
  List.length got = List.length want
  && List.for_all2
       (fun (gi, ga) (wi, wa) -> gi = wi && subst_sets_equal ga wa)
       got want

let churn_prop (entries, probes) =
  let idx = Sub_index.create () in
  let registered =
    List.map (fun (l, q) -> (Sub_index.register idx ?label:l q q, l, q)) entries
  in
  let check live =
    List.for_all (matching_agrees idx live) probes
    || QCheck.Test.fail_reportf "index/oracle divergence over %d live entries"
         (List.length live)
  in
  (* full set, then remove every other entry, then register them again
     (fresh ids): lookups must track the live set exactly, and removal
     must actually shed trie structure *)
  check registered
  &&
  let removed, kept =
    List.partition (fun (id, _, _) -> id mod 2 = 0) registered
  in
  List.iter (fun (id, _, _) -> assert (Sub_index.remove idx id)) removed;
  check kept
  &&
  let re =
    List.map (fun (_, l, q) -> (Sub_index.register idx ?label:l q q, l, q)) removed
  in
  check (kept @ re)

let prop_churn =
  QCheck.Test.make ~name:"Sub_index.matching = linear plan scan (churn)" ~count:500
    case_arb churn_prop

let seed_x = Option.get (Subst.of_list [ ("X", Term.text "x") ])

let prop_seeded =
  QCheck.Test.make ~name:"Sub_index.matching: seeded = seeded linear scan" ~count:300
    case_arb
    (fun (entries, probes) ->
      let idx = Sub_index.create () in
      let registered =
        List.map (fun (l, q) -> (Sub_index.register idx ?label:l q q, l, q)) entries
      in
      List.for_all
        (fun (lookup_label, term) ->
          let got =
            Sub_index.matching idx ?label:lookup_label ~seed:seed_x term
            |> List.map (fun (id, _, answers) -> (id, answers))
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          let want =
            List.filter_map
              (fun (id, elabel, q) ->
                let label_ok =
                  match (elabel, lookup_label) with
                  | None, _ -> true
                  | Some l, Some l' -> String.equal l l'
                  | Some _, None -> false
                in
                if not label_ok then None
                else
                  match Plan.matches ~seed:seed_x (Simulate.plan_of q) term with
                  | [] -> None
                  | answers -> Some (id, answers))
              registered
          in
          List.length got = List.length want
          && List.for_all2
               (fun (gi, ga) (wi, wa) -> gi = wi && subst_sets_equal ga wa)
               got want)
        probes)

(* ---- Engine: sub-index dispatch = label buckets = full scan ---- *)

let harness () =
  let store = Store.create () in
  Store.add_doc store "/orders" (Term.elem ~ord:Term.Unordered "orders" []);
  let ops =
    {
      Action.update = (fun u -> Result.map fst (Store.apply store u));
      txn_update = (fun u -> Result.map fst (Store.apply store u));
      send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
      log = (fun _ -> ());
      now = (fun () -> 0);
      checkpoint = (fun () -> fun () -> ());
    }
  in
  (store, ops)

let firing_equal (a : Eca.firing) (b : Eca.firing) =
  String.equal a.Eca.rule b.Eca.rule
  && a.Eca.branch = b.Eca.branch
  && Subst.equal a.Eca.bindings b.Eca.bindings
  && a.Eca.outcome = b.Eca.outcome

let outcome_equal (a : Engine.outcome) (b : Engine.outcome) =
  List.equal firing_equal a.Engine.firings b.Engine.firings
  && List.length a.Engine.derived_events = List.length b.Engine.derived_events
  && a.Engine.errors = b.Engine.errors

let final_time events = List.fold_left (fun acc e -> max acc (Event.time e)) 0 events + 10_000

let rules_of queries =
  List.mapi
    (fun i q ->
      let name = Printf.sprintf "r%d" i in
      let action = Action.insert ~doc:"/orders" (Construct.cel "row" [ Construct.ctext name ]) in
      if i mod 2 = 0 then Eca.make ~name ~on:q action
      else
        Eca.make ~name ~on:q
          ~if_:(Condition.In (Condition.Local "/orders", Qterm.el "row" []))
          action)
    queries

let three_mode_prop (queries, events) =
  let valid = List.filter (fun q -> Result.is_ok (Event_query.validate q)) queries in
  if valid = [] then QCheck.assume_fail ()
  else
    let run ~index ~subindex =
      let engine =
        Engine.create_exn ~index ~subindex (Ruleset.make ~rules:(rules_of valid) "p")
      in
      let store, ops = harness () in
      let env = Store.env store in
      let outcomes = List.map (fun e -> Engine.handle_event engine ~env ~ops e) events in
      let closing = Engine.advance engine ~env ~ops (final_time events) in
      (outcomes @ [ closing ], Option.get (Store.doc store "/orders"))
    in
    let scan, doc_s = run ~index:false ~subindex:false in
    let buckets, doc_b = run ~index:true ~subindex:false in
    let sub, doc_sub = run ~index:true ~subindex:true in
    let same (a, da) (b, db) =
      List.length a = List.length b && List.for_all2 outcome_equal a b && Term.equal da db
    in
    if same (scan, doc_s) (buckets, doc_b) && same (scan, doc_s) (sub, doc_sub) then true
    else
      QCheck.Test.fail_reportf "dispatch-mode divergence on %d rules, %d events"
        (List.length valid) (List.length events)

let queries_arb =
  QCheck.make
    ~print:(fun qs -> Fmt.str "%a" Fmt.(list ~sep:cut Event_query.pp) qs)
    QCheck.Gen.(list_size (int_range 1 4) Gen.event_query_gen)

let stream_arb =
  QCheck.make
    ~print:(fun evs -> Fmt.str "%a" Fmt.(list ~sep:cut Event.pp) evs)
    (Gen.event_stream_gen ~labels:[ "a"; "b"; "c" ] ~max_len:20 ~max_gap:15)

let prop_three_modes =
  QCheck.Test.make ~name:"Engine: sub-index = label buckets = full scan" ~count:200
    (QCheck.pair queries_arb stream_arb)
    three_mode_prop

(* ---- Pubsub: attached registry = plain document path, rule-driven ---- *)

let topics = [ "sport"; "news"; "w" ]
let hosts = [ "h1"; "h2"; "h3"; "h4" ]

type step =
  | Ev of (int -> Event.t)  (* subscribe / unsubscribe / publish at time t *)
  | Mut of Action.update  (* direct register mutation, possibly exotic *)

let ev label payload t = Event.make ~occurred_at:t ~label payload

let pair_entry t h =
  Term.elem "sub" [ Term.elem "topic" [ Term.text t ]; Term.elem "host" [ Term.text h ] ]

let root_insert content =
  Action.U_insert { doc = Pubsub.subscribers_doc; selector = []; at = None; content }

(* mutations the incremental mirror cannot interpret: it must degrade
   (dirty resync or exotic fallback) without changing any answer *)
let exotic_mutations =
  [
    (* non-text topic: the register is no longer a plain pair list *)
    root_insert
      (Term.elem "sub"
         [
           Term.elem "topic" [ Term.elem "nested" [] ];
           Term.elem "host" [ Term.text "h9" ];
         ]);
    (* inert junk between the entries *)
    root_insert (Term.text "junk");
    (* insert below the root: could extend an existing entry *)
    Action.U_insert
      {
        doc = Pubsub.subscribers_doc;
        selector = [ (Path.Child, Path.Tag "sub") ];
        at = None;
        content = Term.elem "note" [ Term.text "x" ];
      };
    (* ungrounded delete pattern *)
    Action.U_delete
      {
        doc = Pubsub.subscribers_doc;
        selector = [];
        pattern = Some (Qterm.el "sub" [ Qterm.pos (Qterm.var "Z") ]);
      };
  ]

let step_gen =
  QCheck.Gen.(
    let th = pair (oneofl topics) (oneofl hosts) in
    frequency
      [
        (5, map (fun (t, h) -> Ev (ev "subscribe" (Pubsub.subscribe ~topic:t ~host:h))) th);
        ( 3,
          map (fun (t, h) -> Ev (ev "unsubscribe" (Pubsub.unsubscribe ~topic:t ~host:h))) th
        );
        ( 4,
          map
            (fun t -> Ev (ev "publish" (Pubsub.publish ~topic:t (Term.text "b"))))
            (oneofl topics) );
        (1, map (fun (t, h) -> Mut (root_insert (pair_entry t h))) th);
        (1, oneofl (List.map (fun m -> Mut m) exotic_mutations));
      ])

let step_print = function
  | Ev mk -> Fmt.str "%a" Event.pp (mk 0)
  | Mut u -> Fmt.str "mut %s" (match u with Action.U_insert _ -> "insert" | _ -> "delete")

let steps_arb =
  QCheck.make
    ~print:(fun steps -> String.concat "; " (List.map step_print steps))
    QCheck.Gen.(list_size (int_range 1 25) step_gen)

let run_pubsub ~attach steps =
  let store = Store.create () in
  Store.add_doc store Pubsub.subscribers_doc (Pubsub.empty_register ());
  let reg = if attach then Some (Pubsub.Registry.attach store) else None in
  let sends = ref [] in
  let ops =
    {
      Action.update = (fun u -> Result.map fst (Store.apply store u));
      txn_update = (fun u -> Result.map fst (Store.apply store u));
      send =
        (fun ~recipient ~label ~ttl:_ ~delay:_ p -> sends := (recipient, label, p) :: !sends);
      log = (fun _ -> ());
      now = (fun () -> 0);
      checkpoint = (fun () -> fun () -> ());
    }
  in
  let engine = Engine.create_exn (Pubsub.publisher_ruleset ()) in
  let env = Store.env store in
  List.iteri
    (fun i step ->
      match step with
      | Ev mk -> ignore (Engine.handle_event engine ~env ~ops (mk (i + 1)))
      | Mut u -> ignore (Store.apply store u))
    steps;
  (List.rev !sends, store, reg)

let send_equal (r1, l1, p1) (r2, l2, p2) =
  String.equal r1 r2 && String.equal l1 l2 && Term.equal p1 p2

let pubsub_prop steps =
  let sends_a, store_a, reg = run_pubsub ~attach:true steps in
  let sends_p, store_p, _ = run_pubsub ~attach:false steps in
  let doc s = Option.get (Store.doc s Pubsub.subscribers_doc) in
  (* identical notifications in identical order (the ECA engine fires
     once per answer, in answer order), identical final registers *)
  (List.equal send_equal sends_a sends_p
  || QCheck.Test.fail_reportf "notify divergence: %d indexed sends vs %d plain"
       (List.length sends_a) (List.length sends_p))
  && (Term.equal (doc store_a) (doc store_p)
     || QCheck.Test.fail_reportf "register divergence after %d steps" (List.length steps))
  && List.for_all
       (fun t ->
         let indexed = Pubsub.subscribers store_a ~topic:t in
         let oracle = Pubsub.subscribers ~index:false store_a ~topic:t in
         let direct =
           match reg with
           | Some r -> Pubsub.Registry.match_publish r (Pubsub.publish ~topic:t (Term.text "b"))
           | None -> oracle
         in
         (List.equal String.equal indexed oracle && List.equal String.equal direct oracle)
         || QCheck.Test.fail_reportf "subscriber divergence on topic %s" t)
       topics

let prop_pubsub =
  QCheck.Test.make ~name:"Pubsub: attached registry = document path (rule churn)"
    ~count:150 steps_arb pubsub_prop

(* ---- units ---- *)

let hosts_t = Alcotest.(list string)

(* unanchored registrations land in the wildcard buckets and are
   candidates for every lookup; anchored ones only where they can match *)
let test_wildcard_routing () =
  let idx = Sub_index.create () in
  let anchored = Qterm.el "order" [ Qterm.pos (Qterm.var "X") ] in
  let wild = Qterm.var "P" in
  let desc = Qterm.Desc (Qterm.el "item" []) in
  let id_a = Sub_index.register idx anchored "anchored" in
  let id_w = Sub_index.register idx wild "wild" in
  let id_d = Sub_index.register idx desc "desc" in
  let ids term = List.map fst (Sub_index.lookup idx term) in
  (* the descendant query still requires an [item] somewhere: the
     fingerprint refutes it even from the wildcard bucket *)
  Alcotest.(check (list int))
    "order element: anchored + wildcard" [ id_a; id_w ]
    (ids (Term.elem "order" [ Term.text "x" ]));
  Alcotest.(check (list int))
    "crate with item: wildcard + desc" [ id_w; id_d ]
    (ids (Term.elem "crate" [ Term.elem "item" [] ]));
  Alcotest.(check (list int)) "scalar: wildcard only" [ id_w ] (ids (Term.text "s"));
  (* a labelled registration is only a candidate under its own label *)
  let id_l = Sub_index.register idx ~label:"alpha" wild "labelled" in
  Alcotest.(check (list int))
    "same label sees it" [ id_w; id_l ]
    (List.map fst (Sub_index.lookup idx ~label:"alpha" (Term.text "s")));
  Alcotest.(check (list int))
    "other label does not" [ id_w ]
    (List.map fst (Sub_index.lookup idx ~label:"beta" (Term.text "s")))

(* entries sharing a bucket are refuted by the label fingerprint before
   any matcher runs; entries behind a different pivot are never visited *)
let test_fingerprint_refutation () =
  let idx = Sub_index.create () in
  let q_ab = Qterm.el "rec" [ Qterm.pos (Qterm.el "a" []); Qterm.pos (Qterm.el "b" []) ] in
  let q_ac = Qterm.el "rec" [ Qterm.pos (Qterm.el "a" []); Qterm.pos (Qterm.el "c" []) ] in
  let id_ab = Sub_index.register idx q_ab "ab" in
  let _id_ac = Sub_index.register idx q_ac "ac" in
  let term = Term.elem "rec" [ Term.elem "a" []; Term.elem "b" [] ] in
  Alcotest.(check (list int)) "only rec[a,b] survives" [ id_ab ]
    (List.map fst (Sub_index.lookup idx term));
  let s = Sub_index.stats idx in
  Alcotest.(check int) "one lookup" 1 s.Sub_index.lookups;
  Alcotest.(check int) "one candidate" 1 s.Sub_index.candidates;
  Alcotest.(check int) "rec[a,c] refuted in-bucket" 1 s.Sub_index.refuted;
  (* distinct pivot texts discriminate without visiting at all *)
  let idx2 = Sub_index.create () in
  let q_x = Qterm.el "rec" [ Qterm.pos (Qterm.el "k" [ Qterm.pos (Qterm.txt "x") ]) ] in
  let q_y = Qterm.el "rec" [ Qterm.pos (Qterm.el "k" [ Qterm.pos (Qterm.txt "y") ]) ] in
  let id_x = Sub_index.register idx2 q_x "x" in
  let _id_y = Sub_index.register idx2 q_y "y" in
  let term_x = Term.elem "rec" [ Term.elem "k" [ Term.text "x" ] ] in
  Alcotest.(check (list int)) "pivot x bucket only" [ id_x ]
    (List.map fst (Sub_index.lookup idx2 term_x));
  let s2 = Sub_index.stats idx2 in
  Alcotest.(check int) "y entry never visited" 0 s2.Sub_index.refuted;
  Alcotest.(check int) "exactly the x candidate" 1 s2.Sub_index.candidates

(* removal prunes the trie back to its empty shape — no tombstones *)
let test_remove_sheds_trie () =
  let idx = Sub_index.create () in
  let empty_nodes = Sub_index.trie_nodes idx in
  let q = Qterm.el "rec" [ Qterm.pos (Qterm.el "k" [ Qterm.pos (Qterm.txt "x") ]) ] in
  let id = Sub_index.register idx q "payload" in
  Alcotest.(check bool) "trie grew" true (Sub_index.trie_nodes idx > empty_nodes);
  Alcotest.(check int) "one entry" 1 (Sub_index.size idx);
  Alcotest.(check bool) "remove" true (Sub_index.remove idx id);
  Alcotest.(check int) "empty" 0 (Sub_index.size idx);
  Alcotest.(check int) "trie shed" empty_nodes (Sub_index.trie_nodes idx);
  Alcotest.(check (list int)) "no candidates" []
    (List.map fst (Sub_index.lookup idx (Term.elem "rec" [ Term.elem "k" [ Term.text "x" ] ])));
  Alcotest.(check bool) "idempotent remove" false (Sub_index.remove idx id)

let test_registry_unsubscribe () =
  let reg = Pubsub.Registry.create () in
  Pubsub.Registry.subscribe reg ~topic:"sport" ~host:"h1";
  Pubsub.Registry.subscribe reg ~topic:"sport" ~host:"h1";
  (* idempotent *)
  Pubsub.Registry.subscribe reg ~topic:"news" ~host:"h2";
  Alcotest.check hosts_t "sport" [ "h1" ] (Pubsub.Registry.subscribers reg ~topic:"sport");
  Alcotest.check hosts_t "publish matches" [ "h1" ]
    (Pubsub.Registry.match_publish reg (Pubsub.publish ~topic:"sport" (Term.text "b")));
  Alcotest.(check int) "two pairs" 2 (Pubsub.Registry.size reg);
  Alcotest.(check bool) "unsubscribe" true
    (Pubsub.Registry.unsubscribe reg ~topic:"sport" ~host:"h1");
  Alcotest.check hosts_t "gone from trie" []
    (Pubsub.Registry.match_publish reg (Pubsub.publish ~topic:"sport" (Term.text "b")));
  Alcotest.(check int) "one pair left" 1 (Pubsub.Registry.size reg);
  Alcotest.(check bool) "unknown pair" false
    (Pubsub.Registry.unsubscribe reg ~topic:"sport" ~host:"h1");
  let s = Pubsub.Registry.stats reg in
  Alcotest.(check int) "registrations counted" 2 s.Sub_index.registrations;
  Alcotest.(check int) "removal counted" 1 s.Sub_index.removals

(* an attached registry degrades on exotic registers and recovers when
   the document is clean again — answers never change *)
let test_attach_exotic_recovery () =
  let store = Store.create () in
  Store.add_doc store Pubsub.subscribers_doc (Pubsub.empty_register ());
  let reg = Pubsub.Registry.attach store in
  ignore (Store.apply store (root_insert (pair_entry "sport" "h1")));
  Alcotest.check hosts_t "mirrored insert" [ "h1" ] (Pubsub.subscribers store ~topic:"sport");
  (* query the mirror itself: triggers the lazy (re)sync in either
     dispatch mode, including XCHANGE_NO_SUBINDEX=1 *)
  Alcotest.check hosts_t "mirror serves it" [ "h1" ]
    (Pubsub.Registry.subscribers reg ~topic:"sport");
  Alcotest.(check bool) "synced" true (Pubsub.Registry.synced reg);
  ignore
    (Store.apply store
       (root_insert
          (Term.elem "sub"
             [
               Term.elem "topic" [ Term.elem "nested" [] ];
               Term.elem "host" [ Term.text "h9" ];
             ])));
  let oracle = Pubsub.subscribers ~index:false store ~topic:"sport" in
  Alcotest.check hosts_t "degraded but equal" oracle (Pubsub.subscribers store ~topic:"sport");
  Alcotest.check hosts_t "mirror falls back" oracle
    (Pubsub.Registry.subscribers reg ~topic:"sport");
  Alcotest.(check bool) "exotic" true (Pubsub.Registry.exotic reg);
  (* replacing the document with a clean register recovers the mirror *)
  Store.add_doc store Pubsub.subscribers_doc
    (Term.elem ~ord:Term.Unordered "subscribers" [ pair_entry "news" "h2" ]);
  Alcotest.check hosts_t "recovered" [ "h2" ] (Pubsub.subscribers store ~topic:"news");
  Alcotest.check hosts_t "mirror recovered" [ "h2" ]
    (Pubsub.Registry.subscribers reg ~topic:"news");
  Alcotest.(check bool) "clean again" false (Pubsub.Registry.exotic reg);
  Alcotest.(check int) "one mirrored pair" 1 (Pubsub.Registry.size reg)

let suite =
  ( "subindex",
    [
      QCheck_alcotest.to_alcotest ~long:true prop_churn;
      QCheck_alcotest.to_alcotest prop_seeded;
      QCheck_alcotest.to_alcotest ~long:true prop_three_modes;
      QCheck_alcotest.to_alcotest prop_pubsub;
      Alcotest.test_case "wildcard-bucket routing" `Quick test_wildcard_routing;
      Alcotest.test_case "fingerprint refutation counters" `Quick test_fingerprint_refutation;
      Alcotest.test_case "remove sheds trie structure" `Quick test_remove_sheds_trie;
      Alcotest.test_case "registry unsubscribe" `Quick test_registry_unsubscribe;
      Alcotest.test_case "attached registry: exotic and recovery" `Quick
        test_attach_exotic_recovery;
    ] )
