(* Edge cases and failure injection: nested composite events, timer
   interactions, cascade loops, failing actions, malformed inputs. *)

open Xchange

let el = Term.elem
let txt = Term.text
let ev t label payload = Event.make ~occurred_at:t ~label payload

let feed_all engine events ~until =
  List.concat_map (fun e -> Incremental.feed engine e) events
  @ Incremental.advance_to engine until

let qa = Event_query.on ~label:"a" (Qterm.el "a" [ Qterm.pos (Qterm.var "X") ])
let qb = Event_query.on ~label:"b" (Qterm.el "b" [ Qterm.pos (Qterm.var "Y") ])
let qc = Event_query.on ~label:"c" (Qterm.el "c" [ Qterm.pos (Qterm.var "Z") ])
let ea t v = ev t "a" (el "a" [ Term.int v ])
let eb t v = ev t "b" (el "b" [ Term.int v ])
let ec t v = ev t "c" (el "c" [ Term.int v ])

(* ---- nested composite events ---- *)

let test_nested_seq_in_and () =
  (* and{ seq{a,b}, c } — c may come at any time, a must precede b *)
  let q = Event_query.conj [ Event_query.seq [ qa; qb ]; qc ] in
  let engine = Incremental.create_exn q in
  let d = feed_all engine [ ec 1 0; ea 2 1; eb 3 2 ] ~until:10 in
  Alcotest.(check int) "c first still detects" 1 (List.length d);
  let engine = Incremental.create_exn q in
  let d = feed_all engine [ eb 1 0; ea 2 1; ec 3 2 ] ~until:10 in
  Alcotest.(check int) "b before a never detects" 0 (List.length d)

let test_nested_absent_in_seq () =
  (* seq{ absent{a, b} within 10, c }: the timer instance (at deadline)
     must order correctly before c *)
  let q = Event_query.seq [ Event_query.absent qa ~then_absent:qb ~for_:10; qc ] in
  let engine = Incremental.create_exn q in
  (* note: sequenced lets — OCaml evaluates (@) operands right to left *)
  let d1 = Incremental.feed engine (ea 0 1) in
  let d2 = Incremental.advance_to engine 50 in
  let d3 = Incremental.feed engine (ec 60 2) in
  let d4 = Incremental.advance_to engine 100 in
  let d = d1 @ d2 @ d3 @ d4 in
  Alcotest.(check int) "absence then c detects" 1 (List.length d);
  (* interval: starts at a (t=0), ends at c (t=60) *)
  match d with
  | [ i ] ->
      Alcotest.(check int) "starts at a" 0 i.Instance.t_start;
      Alcotest.(check int) "ends at c" 60 i.Instance.t_end
  | _ -> Alcotest.fail "expected one detection"

let test_within_zero_span () =
  (* within 0: only simultaneous constituents qualify *)
  let q = Event_query.within (Event_query.conj [ qa; qb ]) 0 in
  let engine = Incremental.create_exn q in
  Alcotest.(check int) "same tick" 1 (List.length (feed_all engine [ ea 5 1; eb 5 2 ] ~until:10));
  let engine = Incremental.create_exn q in
  Alcotest.(check int) "one tick apart" 0 (List.length (feed_all engine [ ea 5 1; eb 6 2 ] ~until:10))

let test_times_overlapping_windows () =
  (* events at 0,30,70: the (0,30) pair is 30 apart, (30,70) is 40 apart;
     with window 35 only the first pair counts.  The query must not bind
     payload variables: Times joins constituents on shared variables. *)
  let q = Event_query.times 2 (Event_query.on ~label:"a" (Qterm.el "a" [])) 35 in
  let engine = Incremental.create_exn q in
  let d = feed_all engine [ ea 0 1; ea 30 2; ea 70 3 ] ~until:100 in
  Alcotest.(check int) "only the close pair" 1 (List.length d)

let test_or_of_composites () =
  let q =
    Event_query.disj
      [
        Event_query.within (Event_query.seq [ qa; qb ]) 10;
        Event_query.times 2 (Event_query.on ~label:"c" (Qterm.el "c" [])) 10;
      ]
  in
  let engine = Incremental.create_exn q in
  let d = feed_all engine [ ea 0 1; eb 5 2; ec 6 3; ec 7 4 ] ~until:50 in
  Alcotest.(check int) "both branches detect" 2 (List.length d)

let test_agg_count_op () =
  let q =
    Event_query.Agg
      { Event_query.over = qa; var = "X"; window = 3; op = Construct.Count; bind = "N" }
  in
  let engine = Incremental.create_exn q in
  let d = feed_all engine [ ea 0 1; ea 1 2; ea 2 3; ea 3 4 ] ~until:10 in
  (* windows complete at the 3rd and 4th events *)
  Alcotest.(check int) "two windows" 2 (List.length d);
  List.iter
    (fun (i : Instance.t) ->
      Alcotest.(check (option (float 1e-9))) "count = 3" (Some 3.)
        (Option.bind (Subst.find "N" i.Instance.subst) Term.as_num))
    d

let test_duplicate_feed_rejected_semantics () =
  (* feeding the same event twice yields duplicate instances with the
     same id, but detections remain set-semantics deduplicated *)
  let engine = Incremental.create_exn (Event_query.conj [ qa; qb ]) in
  let a = ea 0 1 in
  ignore (Incremental.feed engine a);
  ignore (Incremental.feed engine a);
  let d = Incremental.feed engine (eb 1 2) in
  Alcotest.(check int) "no duplicate detections" 1 (List.length d)

(* ---- engine failure injection ---- *)

let mk_store_ops () =
  let store = Store.create () in
  Store.add_doc store "/d" (Term.elem ~ord:Term.Unordered "d" []);
  let ops =
    {
      Action.update = (fun u -> Result.map fst (Store.apply store u));
      txn_update = (fun u -> Result.map fst (Store.apply store u));
      send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
      log = (fun _ -> ());
      now = (fun () -> 0);
      checkpoint = (fun () -> fun () -> ());
    }
  in
  (store, ops)

let test_failing_action_reported_not_fatal () =
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"boom" ~on:(Event_query.on ~label:"e" (Qterm.var "E"))
            (Action.Fail "deliberate");
          Eca.make ~name:"fine" ~on:(Event_query.on ~label:"e" (Qterm.var "E"))
            (Action.insert ~doc:"/d" (Construct.cel "ok" []));
        ]
      "s"
  in
  let engine = Engine.create_exn rules in
  let store, ops = mk_store_ops () in
  let outcome =
    Engine.handle_event engine ~env:(Store.env store) ~ops (ev 1 "e" (txt "x"))
  in
  Alcotest.(check int) "error recorded" 1 (List.length outcome.Engine.errors);
  Alcotest.(check int) "other rule still fired" 1 (List.length outcome.Engine.firings);
  Alcotest.(check int) "its update applied" 1
    (List.length (Term.children (Option.get (Store.doc store "/d"))))

let test_unbound_construct_variable_in_action () =
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"r" ~on:(Event_query.on ~label:"e" (Qterm.var "E"))
            (Action.insert ~doc:"/d" (Construct.cel "x" [ Construct.cvar "NotBound" ]));
        ]
      "s"
  in
  let engine = Engine.create_exn rules in
  let store, ops = mk_store_ops () in
  let outcome = Engine.handle_event engine ~env:(Store.env store) ~ops (ev 1 "e" (txt "x")) in
  Alcotest.(check int) "reported as rule error" 1 (List.length outcome.Engine.errors);
  Alcotest.(check int) "store untouched" 0
    (List.length (Term.children (Option.get (Store.doc store "/d"))))

let test_cascade_loop_bounded () =
  (* a rule that reacts to updates of /d by updating /d: the node must
     cut the loop at max_cascade_depth and report it *)
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"loop"
            ~on:(Event_query.on ~label:"update" (Qterm.el "update" ~attrs:[ ("doc", Qterm.A_is "/d") ] []))
            (Action.insert ~doc:"/d" (Construct.cel "more" []));
          Eca.make ~name:"kick" ~on:(Event_query.on ~label:"go" (Qterm.var "E"))
            (Action.insert ~doc:"/d" (Construct.cel "first" []));
        ]
      "s"
  in
  let net = Network.create () in
  let n = node_exn ~host:"n.example" rules in
  Store.add_doc (Node.store n) "/d" (Term.elem ~ord:Term.Unordered "d" []);
  Network.add_node_exn net n;
  Network.inject net ~to_:"n.example" ~label:"go" (txt "!");
  ignore (Network.run_until_quiet net ());
  let d = Option.get (Store.doc (Node.store n) "/d") in
  Alcotest.(check bool) "loop was cut" true
    (List.length (Term.children d) <= Node.max_cascade_depth + 2);
  Alcotest.(check bool) "cascade error recorded" true
    (List.exists (fun (r, _) -> r = "<cascade>") (Node.errors n))

let test_rule_error_isolation_across_events () =
  (* an error on one event must not poison processing of the next *)
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"picky"
            ~on:(Event_query.on ~label:"e" (Qterm.el "e" [ Qterm.pos (Qterm.var "V") ]))
            ~if_:(Condition.Cmp (Builtin.Gt, Builtin.ovar "V", Builtin.onum 0.))
            (Action.insert ~doc:"/d" (Construct.cel "row" [ Construct.cvar "V" ]))
            ~else_:(Action.Fail "negative");
        ]
      "s"
  in
  let engine = Engine.create_exn rules in
  let store, ops = mk_store_ops () in
  let env = Store.env store in
  let o1 = Engine.handle_event engine ~env ~ops (ev 1 "e" (el "e" [ Term.int (-1) ])) in
  Alcotest.(check int) "first event errors" 1 (List.length o1.Engine.errors);
  let o2 = Engine.handle_event engine ~env ~ops (ev 2 "e" (el "e" [ Term.int 5 ])) in
  Alcotest.(check int) "second event clean" 0 (List.length o2.Engine.errors);
  Alcotest.(check int) "second event fired" 1 (List.length o2.Engine.firings)

let test_send_to_unknown_host_is_dropped () =
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"r" ~on:(Event_query.on ~label:"e" (Qterm.var "E"))
            (Action.raise_event ~to_:"ghost.example" ~label:"x" (Construct.cel "x" []));
        ]
      "s"
  in
  let net = Network.create () in
  let n = node_exn ~host:"n.example" rules in
  Network.add_node_exn net n;
  Network.inject net ~to_:"n.example" ~label:"e" (txt "!");
  let (_ : Clock.time) = Network.run_until_quiet net () in
  (* no crash, message accounted, network drains *)
  Alcotest.(check bool) "drained" true (Network.quiescent net);
  Alcotest.(check int) "both messages counted" 2 (Network.transport_stats net).Transport.messages

let test_event_ttl_boundary () =
  let rules =
    Ruleset.make
      ~rules:
        [ Eca.make ~name:"r" ~on:(Event_query.on ~label:"e" (Qterm.var "E")) (Action.log "got" []) ]
      "s"
  in
  let net = Network.create ~latency:(fun ~from:_ ~to_:_ -> 100) () in
  let n = node_exn ~host:"n.example" rules in
  Network.add_node_exn net n;
  (* ttl exactly equals the latency: expired check is strict (>), so it
     is still processed *)
  Network.inject net ~to_:"n.example" ~label:"e" ~ttl:100 (txt "x");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check int) "boundary event processed" 1 (List.length (Node.logs n))

let test_absent_over_late_completing_start () =
  (* regression for a GC bug the equivalence property found: the
     absence window must NOT prune the start query's own constituents.
     Here the composite start spans far longer than the absence window:
     c arrives at t=0, the matching b only at t=50 (window 25). *)
  let q =
    Event_query.absent
      (Event_query.conj [ qb; qc ])
      ~then_absent:(Event_query.on ~label:"d" (Qterm.var "W"))
      ~for_:25
  in
  let engine = Incremental.create_exn q in
  let d1 = Incremental.feed engine (ec 0 1) in
  let d2 = Incremental.feed engine (eb 50 2) in
  let d3 = Incremental.advance_to engine 200 in
  Alcotest.(check int) "late-completing start still detects" 1
    (List.length (d1 @ d2 @ d3));
  match d3 with
  | [ i ] ->
      Alcotest.(check int) "interval start" 0 i.Instance.t_start;
      Alcotest.(check int) "deadline = end of start + window" 75 i.Instance.t_end
  | _ -> Alcotest.fail "expected the timer detection"

(* ---- transactional compound actions ---- *)

let test_atomic_rollback () =
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"tx" ~on:(Event_query.on ~label:"go" (Qterm.var "E"))
            (Action.atomic
               [
                 Action.insert ~doc:"/d" (Construct.cel "one" []);
                 Action.raise_event ~to_:"other.example" ~label:"side" (Construct.cel "x" []);
                 Action.Fail "boom";
               ]);
        ]
      "s"
  in
  let net = Network.create () in
  let n = node_exn ~host:"n.example" rules in
  Store.add_doc (Node.store n) "/d" (Term.elem ~ord:Term.Unordered "d" []);
  Network.add_node_exn net n;
  Network.inject net ~to_:"n.example" ~label:"go" (txt "!");
  ignore (Network.run_until_quiet net ());
  (* the insert was rolled back and the raised event never left *)
  Alcotest.(check int) "store rolled back" 0
    (List.length (Term.children (Option.get (Store.doc (Node.store n) "/d"))));
  Alcotest.(check int) "no side-effect message (only the injection)" 1
    (Network.transport_stats net).Transport.messages;
  Alcotest.(check bool) "failure reported" true (Node.errors n <> []);
  (* exactly one event was processed: the injection — the rolled-back
     insert's update event never cascaded *)
  Alcotest.(check int) "no update cascade" 1 (Engine.events_seen (Node.engine n))

let test_atomic_commit () =
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"tx" ~on:(Event_query.on ~label:"go" (Qterm.var "E"))
            (Action.atomic
               [
                 Action.insert ~doc:"/d" (Construct.cel "one" []);
                 Action.raise_event ~to_:"n.example" ~label:"done" (Construct.cel "x" []);
                 Action.insert ~doc:"/d" (Construct.cel "two" []);
               ]);
          Eca.make ~name:"obs" ~on:(Event_query.on ~label:"done" (Qterm.var "E"))
            (Action.log "committed" []);
        ]
      "s"
  in
  let net = Network.create () in
  let n = node_exn ~host:"n.example" rules in
  Store.add_doc (Node.store n) "/d" (Term.elem ~ord:Term.Unordered "d" []);
  Network.add_node_exn net n;
  Network.inject net ~to_:"n.example" ~label:"go" (txt "!");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check int) "both inserts applied" 2
    (List.length (Term.children (Option.get (Store.doc (Node.store n) "/d"))));
  Alcotest.(check (list string)) "buffered event delivered after commit" [ "committed" ]
    (Node.logs n)

let test_atomic_reads_own_writes () =
  (* optimistic execution: conditions inside the transaction see writes *)
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"tx" ~on:(Event_query.on ~label:"go" (Qterm.var "E"))
            (Action.atomic
               [
                 Action.insert ~doc:"/d" (Construct.cel "flag" []);
                 Action.If
                   ( Condition.In (Condition.Local "/d", Qterm.el "flag" []),
                     Action.log "saw own write" [],
                     Action.Fail "did not see own write" );
               ]);
        ]
      "s"
  in
  let net = Network.create () in
  let n = node_exn ~host:"n.example" rules in
  Store.add_doc (Node.store n) "/d" (Term.elem ~ord:Term.Unordered "d" []);
  Network.add_node_exn net n;
  Network.inject net ~to_:"n.example" ~label:"go" (txt "!");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "read own write" [ "saw own write" ] (Node.logs n)

let test_atomic_syntax () =
  match Parser.parse_action {|atomic { insert into "/d" x[]; fail "no" }|} with
  | Ok (Action.Atomic [ _; _ ] as a) ->
      Alcotest.(check bool) "roundtrip" true (Parser.parse_action (Printer.action_to_string a) = Ok a)
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e

(* ---- delayed event raising ---- *)

let test_delayed_raise () =
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"schedule" ~on:(Event_query.on ~label:"go" (Qterm.var "E"))
            (Action.raise_event ~delay:500 ~to_:"n.example" ~label:"later" (Construct.cel "later" []));
          Eca.make ~name:"receive" ~on:(Event_query.on ~label:"later" (Qterm.var "E"))
            (Action.log "arrived" []);
        ]
      "s"
  in
  let net = Network.create ~latency:(fun ~from:_ ~to_:_ -> 5) () in
  let n = node_exn ~host:"n.example" rules in
  Network.add_node_exn net n;
  Network.inject net ~to_:"n.example" ~label:"go" (txt "!");
  Network.run net ~until:400;
  Alcotest.(check (list string)) "not yet delivered" [] (Node.logs n);
  Network.run net ~until:600;
  Alcotest.(check (list string)) "delivered after the delay" [ "arrived" ] (Node.logs n)

let test_delayed_raise_syntax () =
  match Parser.parse_action {|raise to "x.example" ping ping[] ttl 1 s after 5 min|} with
  | Ok (Action.Raise { ttl = Some t; delay = Some d; _ }) ->
      Alcotest.(check int) "ttl" (Clock.seconds 1) t;
      Alcotest.(check int) "delay" (Clock.minutes 5) d;
      (* and it roundtrips *)
      let a = Action.raise_event ~ttl:(Clock.seconds 1) ~delay:(Clock.minutes 5) ~to_:"x.example" ~label:"ping" (Construct.cel "ping" []) in
      Alcotest.(check bool) "roundtrip" true
        (Parser.parse_action (Printer.action_to_string a) = Ok a)
  | Ok _ -> Alcotest.fail "unexpected action shape"
  | Error e -> Alcotest.fail e

(* ---- label-indexed dispatch ---- *)

let test_index_equivalence () =
  (* the label index must not change observable behaviour, including
     absence timers on rules the index skips *)
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"on-a" ~on:qa (Action.log "a" []);
          Eca.make ~name:"absent-b"
            ~on:(Event_query.absent qb ~then_absent:qc ~for_:10)
            (Action.log "b-unanswered" []);
          Eca.make ~name:"wild" ~on:(Event_query.on (Qterm.var "E")) (Action.log "any" []);
        ]
      "s"
  in
  let run ~index =
    let engine = Engine.create_exn ~index rules in
    let store, ops = mk_store_ops () in
    let logged = ref [] in
    let ops = { ops with Action.log = (fun l -> logged := l :: !logged) } in
    let env = Store.env store in
    List.iter
      (fun e -> ignore (Engine.handle_event engine ~env ~ops e))
      [ ea 0 1; eb 5 2; ea 30 3; ec 40 4 ];
    ignore (Engine.advance engine ~env ~ops 100);
    List.rev !logged
  in
  Alcotest.(check (list string)) "indexed = unindexed" (run ~index:false) (run ~index:true);
  (* and the absence fired despite b/c not being in on-a's labels *)
  Alcotest.(check bool) "absence detected" true (List.mem "b-unanswered" (run ~index:true))

(* ---- message loss and compensation ---- *)

let test_absence_compensates_message_loss () =
  (* the shop expects a payment confirmation; the bank's answer is lost
     in transit; the absence rule compensates — Thesis 5's negation as
     the tool for "errors and exceptional situations" *)
  let shop_rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"ask" ~on:(Event_query.on ~label:"order" (Qterm.var "E"))
            (Action.raise_event ~to_:"bank.example" ~label:"charge" (Construct.cel "charge" []));
          Eca.make ~name:"ok" ~on:(Event_query.on ~label:"charged" (Qterm.var "E"))
            (Action.log "payment confirmed" []);
          Eca.make ~name:"timeout"
            ~on:
              (Event_query.absent
                 (Event_query.on ~label:"order" (Qterm.var "E"))
                 ~then_absent:(Event_query.on ~label:"charged" (Qterm.var "F"))
                 ~for_:(Clock.minutes 5))
            (Action.log "no confirmation: compensating" []);
        ]
      "shop"
  in
  let bank_rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"charge" ~on:(Event_query.on ~label:"charge" (Qterm.var "E"))
            (Action.raise_event ~to_:"shop.example" ~label:"charged" (Construct.cel "charged" []));
        ]
      "bank"
  in
  let run ~lossy =
    let drop m =
      lossy
      &&
      match m.Message.body with
      | Message.Event e -> String.equal e.Event.label "charged"
      | Message.Get _ | Message.Response _ | Message.Update _ -> false
    in
    let net = Network.create ~drop () in
    let shop = node_exn ~host:"shop.example" shop_rules in
    let bank = node_exn ~host:"bank.example" bank_rules in
    Network.add_node_exn net shop;
    Network.add_node_exn net bank;
    Network.inject net ~to_:"shop.example" ~label:"order" (txt "!");
    Network.run net ~until:(Clock.minutes 10);
    (Node.logs shop, (Network.transport_stats net).Transport.dropped)
  in
  let healthy_logs, healthy_drops = run ~lossy:false in
  Alcotest.(check (list string)) "healthy run confirms" [ "payment confirmed" ] healthy_logs;
  Alcotest.(check int) "nothing dropped" 0 healthy_drops;
  let lossy_logs, lossy_drops = run ~lossy:true in
  Alcotest.(check (list string)) "lost confirmation compensated"
    [ "no confirmation: compensating" ] lossy_logs;
  Alcotest.(check int) "the confirmation was dropped" 1 lossy_drops

(* ---- deterministic replay ---- *)

let test_deterministic_replay () =
  let build () =
    (* replay from the same initial state: event-id lanes are allocated
       from a process-global well at node creation, and ids appear in
       serialized envelopes (hence in transport.bytes) *)
    Event.reset_ids ();
    Message.reset_ids ();
    let rules =
      Ruleset.make
        ~rules:
          [
            Eca.make ~name:"fwd" ~on:(Event_query.on ~label:"t" (Qterm.var "E"))
              (Action.raise_event ~to_:"b.example" ~label:"u" (Construct.cel "u" []));
          ]
        "s"
    in
    let net = Network.create () in
    let a = node_exn ~host:"a.example" rules in
    let b = node_exn ~host:"b.example" (Ruleset.make "b") in
    Network.add_node_exn net a;
    Network.add_node_exn net b;
    for i = 1 to 20 do
      Network.inject net ~to_:"a.example" ~label:"t" (Term.int i)
    done;
    ignore (Network.run_until_quiet net ());
    let s = Network.transport_stats net in
    (s.Transport.messages, s.Transport.bytes, Network.clock net)
  in
  let r1 = build () in
  let r2 = build () in
  Alcotest.(check bool) "bit-identical replay" true (r1 = r2)

let suite =
  ( "edge",
    [
      Alcotest.test_case "nested seq inside and" `Quick test_nested_seq_in_and;
      Alcotest.test_case "absence timer inside seq" `Quick test_nested_absent_in_seq;
      Alcotest.test_case "zero-width windows" `Quick test_within_zero_span;
      Alcotest.test_case "times window boundaries" `Quick test_times_overlapping_windows;
      Alcotest.test_case "disjunction of composites" `Quick test_or_of_composites;
      Alcotest.test_case "count aggregation" `Quick test_agg_count_op;
      Alcotest.test_case "duplicate events dedupe" `Quick test_duplicate_feed_rejected_semantics;
      Alcotest.test_case "failing actions are isolated" `Quick test_failing_action_reported_not_fatal;
      Alcotest.test_case "unbound construct variables" `Quick test_unbound_construct_variable_in_action;
      Alcotest.test_case "update cascade loops are bounded" `Quick test_cascade_loop_bounded;
      Alcotest.test_case "errors do not poison later events" `Quick test_rule_error_isolation_across_events;
      Alcotest.test_case "messages to unknown hosts drop" `Quick test_send_to_unknown_host_is_dropped;
      Alcotest.test_case "ttl boundary is inclusive" `Quick test_event_ttl_boundary;
      Alcotest.test_case "absence keeps its start's constituents (GC regression)" `Quick
        test_absent_over_late_completing_start;
      Alcotest.test_case "atomic compounds roll back" `Quick test_atomic_rollback;
      Alcotest.test_case "atomic compounds commit" `Quick test_atomic_commit;
      Alcotest.test_case "transactions read their own writes" `Quick test_atomic_reads_own_writes;
      Alcotest.test_case "atomic surface syntax" `Quick test_atomic_syntax;
      Alcotest.test_case "delayed raising (scheduled events)" `Quick test_delayed_raise;
      Alcotest.test_case "delayed raising syntax" `Quick test_delayed_raise_syntax;
      Alcotest.test_case "label index preserves semantics" `Quick test_index_equivalence;
      Alcotest.test_case "absence compensates message loss" `Quick test_absence_compensates_message_loss;
      Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
    ] )
