open Xchange

let docs =
  [
    ( "/staff",
      Term.elem ~ord:Term.Unordered "staff"
        [
          Term.elem "emp" [ Term.elem "name" [ Term.text "ann" ]; Term.elem "boss" [ Term.text "bob" ] ];
          Term.elem "emp" [ Term.elem "name" [ Term.text "bob" ]; Term.elem "boss" [ Term.text "cio" ] ];
          Term.elem "emp" [ Term.elem "name" [ Term.text "cio" ]; Term.elem "boss" [ Term.text "cio" ] ];
        ] );
  ]

let env = Condition.env_of_docs docs

let reports_to_rule =
  (* base case: direct boss *)
  Deductive.rule ~view:"reports"
    ~head:(Construct.cel "rep" [ Construct.cvar "A"; Construct.cvar "B" ])
    ~body:
      (Condition.In
         ( Condition.Local "/staff",
           Qterm.el "emp"
             [
               Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "A") ]);
               Qterm.pos (Qterm.el "boss" [ Qterm.pos (Qterm.var "B") ]);
             ] ))

let reports_trans_rule =
  (* recursive case: boss's boss *)
  Deductive.rule ~view:"reports"
    ~head:(Construct.cel "rep" [ Construct.cvar "A"; Construct.cvar "C" ])
    ~body:
      (Condition.And
         [
           Condition.In
             ( Condition.View "reports",
               Qterm.el ~ord:Term.Ordered ~spec:Qterm.Total "rep"
                 [ Qterm.pos (Qterm.var "A"); Qterm.pos (Qterm.var "B") ] );
           Condition.In
             ( Condition.View "reports",
               Qterm.el ~ord:Term.Ordered ~spec:Qterm.Total "rep"
                 [ Qterm.pos (Qterm.var "B"); Qterm.pos (Qterm.var "C") ] );
         ])

let test_non_recursive_view () =
  let tables = Deductive.materialize env [ reports_to_rule ] in
  Alcotest.(check int) "3 direct edges" 3 (List.length (Hashtbl.find tables "reports"))

let test_recursive_view_fixpoint () =
  let tables = Deductive.materialize env [ reports_to_rule; reports_trans_rule ] in
  let instances = Hashtbl.find tables "reports" in
  (* direct: (ann,bob) (bob,cio) (cio,cio); derived: (ann,cio); via cio
     self-loop nothing new beyond these *)
  Alcotest.(check int) "transitive closure" 4 (List.length instances)

let test_recursion_detection () =
  Alcotest.(check (list string)) "recursive view detected" [ "reports" ]
    (Deductive.recursive_views [ reports_to_rule; reports_trans_rule ]);
  Alcotest.(check (list string)) "non-recursive clean" []
    (Deductive.recursive_views [ reports_to_rule ])

let test_mutual_recursion_detection () =
  let r v dep =
    Deductive.rule ~view:v ~head:(Construct.cel "x" [])
      ~body:(Condition.In (Condition.View dep, Qterm.el "x" []))
  in
  let views = Deductive.recursive_views [ r "a" "b"; r "b" "a" ] in
  Alcotest.(check (list string)) "mutual cycle" [ "a"; "b" ] views

let test_dependencies () =
  let deps = Deductive.dependencies [ reports_to_rule; reports_trans_rule ] in
  Alcotest.(check (list (pair string (list string)))) "deps" [ ("reports", [ "reports" ]) ] deps

let test_extend_env () =
  let env' = Deductive.extend_env env [ reports_to_rule ] in
  let q =
    Qterm.el ~ord:Term.Ordered ~spec:Qterm.Total "rep"
      [ Qterm.pos (Qterm.txt "ann"); Qterm.pos (Qterm.var "B") ]
  in
  let answers = Condition.eval env' Subst.empty (Condition.In (Condition.View "reports", q)) in
  Alcotest.(check int) "view queryable" 1 (List.length answers);
  (* base documents stay reachable *)
  Alcotest.(check int) "base docs reachable" 1
    (List.length (env'.Condition.fetch (Condition.Local "/staff")))

let test_stratification () =
  (* positive recursion is fine *)
  (match Deductive.check_stratified [ reports_to_rule; reports_trans_rule ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* a view negatively depending on itself is rejected *)
  let bad_self =
    Deductive.rule ~view:"v" ~head:(Construct.cel "x" [])
      ~body:(Condition.Not (Condition.In (Condition.View "v", Qterm.el "x" [])))
  in
  (match Deductive.check_stratified [ bad_self ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative self-recursion accepted");
  (* ... also through an intermediate view *)
  let v_uses_w =
    Deductive.rule ~view:"v" ~head:(Construct.cel "x" [])
      ~body:(Condition.In (Condition.View "w", Qterm.el "x" []))
  in
  let w_negates_v =
    Deductive.rule ~view:"w" ~head:(Construct.cel "x" [])
      ~body:(Condition.Not (Condition.In (Condition.View "v", Qterm.el "x" [])))
  in
  (match Deductive.check_stratified [ v_uses_w; w_negates_v ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative cycle accepted");
  (* non-recursive negation is fine (stratified) *)
  let uses_neg =
    Deductive.rule ~view:"top" ~head:(Construct.cel "x" [])
      ~body:(Condition.Not (Condition.In (Condition.View "reports", Qterm.el "rep" [])))
  in
  match Deductive.check_stratified [ reports_to_rule; uses_neg ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_engine_rejects_unstratified () =
  let bad =
    Deductive.rule ~view:"v" ~head:(Construct.cel "x" [])
      ~body:(Condition.Not (Condition.In (Condition.View "v", Qterm.el "x" [])))
  in
  let rule =
    Eca.make ~name:"r" ~on:(Event_query.on (Qterm.var "E"))
      ~if_:(Condition.In (Condition.View "v", Qterm.el "x" []))
      Action.Nop
  in
  match Engine.create (Ruleset.make ~rules:[ rule ] ~views:[ bad ] "s") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "engine accepted unstratified views"

let test_view_avoids_replication () =
  (* the Thesis 9 point: one view definition, two consumers *)
  let env' = Deductive.extend_env env [ reports_to_rule ] in
  let q b = Qterm.el "rep" [ Qterm.pos (Qterm.txt b) ] in
  let both =
    Condition.And
      [
        Condition.In (Condition.View "reports", q "ann");
        Condition.In (Condition.View "reports", q "bob");
      ]
  in
  Alcotest.(check bool) "both consumers see the view" true (Condition.holds env' Subst.empty both)

let test_goal_directed () =
  (* expensive irrelevant views are not computed when another view is
     queried goal-directed *)
  let touched = ref [] in
  let env =
    {
      Condition.fetch =
        (fun res ->
          (match res with
          | Condition.Local name -> touched := name :: !touched
          | Condition.Remote _ | Condition.View _ -> ());
          env.Condition.fetch res);
      fetch_rdf = (fun _ -> None);
      cached_match = Condition.no_cached_match;
    }
  in
  let irrelevant =
    Deductive.rule ~view:"huge"
      ~head:(Construct.cel "x" [ Construct.cvar "A" ])
      ~body:(Condition.In (Condition.Local "/elsewhere", Qterm.el "y" [ Qterm.pos (Qterm.var "A") ]))
  in
  let program = [ reports_to_rule; irrelevant ] in
  Alcotest.(check (list string)) "reachability" [ "reports" ]
    (Deductive.reachable program [ "reports" ]);
  let env' = Deductive.extend_env env program in
  ignore (Condition.eval env' Subst.empty (Condition.In (Condition.View "reports", Qterm.el "rep" [])));
  Alcotest.(check bool) "goal view's base read" true (List.mem "/staff" !touched);
  Alcotest.(check bool) "irrelevant view's base never read" false
    (List.mem "/elsewhere" !touched)

let suite =
  ( "deductive",
    [
      Alcotest.test_case "non-recursive view" `Quick test_non_recursive_view;
      Alcotest.test_case "recursive view reaches fixpoint" `Quick test_recursive_view_fixpoint;
      Alcotest.test_case "recursion detection" `Quick test_recursion_detection;
      Alcotest.test_case "mutual recursion detection" `Quick test_mutual_recursion_detection;
      Alcotest.test_case "dependency analysis" `Quick test_dependencies;
      Alcotest.test_case "extend_env resolves views" `Quick test_extend_env;
      Alcotest.test_case "views avoid query replication" `Quick test_view_avoids_replication;
      Alcotest.test_case "stratified negation checking" `Quick test_stratification;
      Alcotest.test_case "engine rejects unstratified views" `Quick test_engine_rejects_unstratified;
      Alcotest.test_case "goal-directed materialisation" `Quick test_goal_directed;
    ] )
