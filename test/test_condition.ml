open Xchange

let term = Alcotest.testable Term.pp Term.equal
let mk l = Option.get (Subst.of_list l)

let customers =
  Term.elem ~ord:Term.Unordered "customers"
    [
      Term.elem "customer" [ Term.elem "name" [ Term.text "franz" ]; Term.elem "status" [ Term.text "gold" ] ];
      Term.elem "customer" [ Term.elem "name" [ Term.text "mary" ]; Term.elem "status" [ Term.text "basic" ] ];
    ]

let env = Condition.env_of_docs [ ("/customers", customers) ]

let gold_q =
  Qterm.el "customer"
    [
      Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]);
      Qterm.pos (Qterm.el "status" [ Qterm.pos (Qterm.txt "gold") ]);
    ]

let test_in () =
  let answers = Condition.eval env Subst.empty (Condition.In (Condition.Local "/customers", gold_q)) in
  Alcotest.(check int) "one gold customer" 1 (List.length answers);
  Alcotest.(check (option term)) "franz" (Some (Term.text "franz")) (Subst.find "N" (List.hd answers))

let test_in_missing_doc () =
  Alcotest.(check int) "missing doc yields nothing" 0
    (List.length (Condition.eval env Subst.empty (Condition.In (Condition.Local "/nope", gold_q))))

let test_and_joins () =
  let q2 = Qterm.el "customer" [ Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]) ] in
  let cond =
    Condition.And
      [ Condition.In (Condition.Local "/customers", gold_q); Condition.In (Condition.Local "/customers", q2) ]
  in
  (* N must join: only franz *)
  Alcotest.(check int) "joined" 1 (List.length (Condition.eval env Subst.empty cond))

let test_or_unions () =
  let cond =
    Condition.Or
      [
        Condition.In (Condition.Local "/customers", gold_q);
        Condition.Cmp (Builtin.Eq, Builtin.onum 1., Builtin.onum 1.);
      ]
  in
  Alcotest.(check int) "union" 2 (List.length (Condition.eval env Subst.empty cond))

let test_not () =
  let absent = Condition.Not (Condition.In (Condition.Local "/customers", Qterm.el "robot" [])) in
  Alcotest.(check bool) "negation holds" true (Condition.holds env Subst.empty absent);
  let present = Condition.Not (Condition.In (Condition.Local "/customers", gold_q)) in
  Alcotest.(check bool) "negation fails" false (Condition.holds env Subst.empty present);
  (* Not exports no bindings *)
  match Condition.eval env Subst.empty absent with
  | [ s ] -> Alcotest.(check (list string)) "no bindings" [] (Subst.domain s)
  | _ -> Alcotest.fail "expected exactly the seed"

let test_cmp_with_seed () =
  let seed = mk [ ("P", Term.num 5.) ] in
  let c lo = Condition.Cmp (Builtin.Gt, Builtin.ovar "P", Builtin.onum lo) in
  Alcotest.(check bool) "5 > 3" true (Condition.holds env seed (c 3.));
  Alcotest.(check bool) "5 > 7 fails" false (Condition.holds env seed (c 7.));
  (* evaluation errors make the comparison false, not a crash *)
  Alcotest.(check bool) "unbound var is false" false
    (Condition.holds env Subst.empty (Condition.Cmp (Builtin.Eq, Builtin.ovar "Q", Builtin.onum 1.)))

let test_seed_flows_into_query () =
  let seed = mk [ ("N", Term.text "mary") ] in
  let q = Qterm.el "customer" [ Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]) ] in
  let answers = Condition.eval env seed (Condition.In (Condition.Local "/customers", q)) in
  Alcotest.(check int) "only mary" 1 (List.length answers)

let test_rdf_condition () =
  let g =
    Rdf.of_list
      [
        { Rdf.s = Rdf.Iri "ball"; p = "price"; o = Rdf.Lit_num 10. };
        { Rdf.s = Rdf.Iri "shoe"; p = "price"; o = Rdf.Lit_num 20. };
      ]
  in
  let env =
    {
      Condition.fetch = (fun _ -> []);
      fetch_rdf = (fun _ -> Some g);
      cached_match = Condition.no_cached_match;
    }
  in
  let cond =
    Condition.In_rdf
      ( Condition.Local "/g",
        [ { Rdf.ps = Rdf.Var "X"; pp = Rdf.Exact (Rdf.Iri "price"); po = Rdf.Var "P" } ] )
  in
  let answers = Condition.eval env Subst.empty cond in
  Alcotest.(check int) "two prices" 2 (List.length answers);
  (* a bound variable narrows the BGP *)
  let seed = mk [ ("X", Term.elem "iri" [ Term.text "ball" ]) ] in
  let narrowed = Condition.eval env seed cond in
  Alcotest.(check int) "seeded" 1 (List.length narrowed);
  Alcotest.(check (option term)) "price joined" (Some (Term.num 10.))
    (Subst.find "P" (List.hd narrowed))

let test_vars_analysis () =
  let cond =
    Condition.And
      [
        Condition.In (Condition.Local "/customers", gold_q);
        Condition.Not (Condition.In (Condition.Local "/x", Qterm.var "HIDDEN"));
        Condition.Cmp (Builtin.Lt, Builtin.ovar "P", Builtin.onum 1.);
      ]
  in
  Alcotest.(check (list string)) "vars" [ "N"; "P" ] (Condition.vars cond)

let suite =
  ( "condition",
    [
      Alcotest.test_case "simple In query" `Quick test_in;
      Alcotest.test_case "missing document" `Quick test_in_missing_doc;
      Alcotest.test_case "conjunction joins bindings" `Quick test_and_joins;
      Alcotest.test_case "disjunction unions answers" `Quick test_or_unions;
      Alcotest.test_case "negation as failure" `Quick test_not;
      Alcotest.test_case "comparisons with seeds" `Quick test_cmp_with_seed;
      Alcotest.test_case "event bindings constrain conditions" `Quick test_seed_flows_into_query;
      Alcotest.test_case "RDF BGP conditions" `Quick test_rdf_condition;
      Alcotest.test_case "vars analysis" `Quick test_vars_analysis;
    ] )
