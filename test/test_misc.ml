(* Long-tail coverage: printers, durations, EDSL shorthands, trust
   branch selection, authorization wildcards, network odds and ends. *)

open Xchange

let term = Alcotest.testable Term.pp Term.equal

(* ---- duration and number printing roundtrips ---- *)

let test_duration_printing () =
  let roundtrip span =
    let printed = Fmt.str "%a" Printer.pp_duration span in
    (* reuse the raise-action grammar to re-parse the duration *)
    match Parser.parse_action (Fmt.str "raise to \"x\" e e[] ttl %s" printed) with
    | Ok (Action.Raise { ttl = Some t; _ }) -> t
    | Ok _ | Error _ -> Alcotest.fail ("could not reparse duration " ^ printed)
  in
  List.iter
    (fun s -> Alcotest.(check int) "duration roundtrip" s (roundtrip s))
    [ 1; 250; 1000; 90_000; Clock.minutes 5; Clock.hours 2; Clock.hours 2 + 1 ]

let test_number_printing () =
  let roundtrip f =
    match Parser.parse_construct (Fmt.str "%a" Printer.pp_construct (Construct.C_num f)) with
    | Ok (Construct.C_num f') -> f'
    | Ok _ -> Alcotest.fail "not a number"
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun f -> Alcotest.(check (float 0.)) "float roundtrip exact" f (roundtrip f))
    [ 0.; 1.; -1.; 1.05; 3.14159265358979; 1e-3; 123456789.25; -0.75 ]

let test_quoting_in_printer () =
  (* labels colliding with keywords are quoted and re-read as the same *)
  let q = Qterm.el "within" [ Qterm.pos (Qterm.el "rule" [ Qterm.pos (Qterm.var "X") ]) ] in
  match Parser.parse_qterm (Printer.qterm_to_string q) with
  | Ok q' -> Alcotest.(check bool) "keyword labels roundtrip" true (q = q')
  | Error e -> Alcotest.fail e

(* ---- the EDSL façade ---- *)

let test_edsl () =
  let open Edsl in
  let rule =
    rule ~name:"r"
      ~on:(on ~label:"order" (q_el "order" [ q_pos (q_kv "item" "I") ]))
      (Action.insert ~doc:"/d" (c_el "row" [ c_var "I" ]))
  in
  let engine = Incremental.create_exn rule.Eca.event in
  let e =
    Event.make ~occurred_at:1 ~label:"order" (t_el "order" [ t_el "item" [ t_txt "ball" ] ])
  in
  (match Incremental.feed engine e with
  | [ d ] ->
      Alcotest.check term "binding" (Term.text "ball") (Option.get (Subst.find "I" d.Instance.subst))
  | _ -> Alcotest.fail "expected one detection");
  Alcotest.(check (option (float 1e-9))) "t_num / t_int" (Some 4.) (Term.as_num (t_num 4.));
  Alcotest.(check bool) "q_txt" true (Simulate.holds (q_child "a" (q_txt "x")) (t_el "a" [ t_txt "x" ]));
  Alcotest.(check bool) "c_txt / c_kv" true
    (Construct.instantiate (c_kv "a" "X")
       (Option.get (Subst.of_list [ ("X", t_int 1) ]))
       []
    <> Error "")

(* ---- trust: requirement branches and policy gating ---- *)

let test_trust_multi_branch_requirement () =
  (* the shop accepts credit card OR (student-id AND voucher); the
     customer can only satisfy the second branch... but the negotiation
     deterministically pursues the FIRST branch, so the deal fails —
     documenting the (deliberate) non-exploring strategy *)
  let customer =
    {
      Trust.name = "cust";
      credentials = [ "credit-card" ];
      policies = [ Trust.policy ~item:"credit-card" Trust.freely ];
    }
  in
  let shop =
    {
      Trust.name = "shop";
      credentials = [ "purchase" ];
      policies = [ Trust.policy ~item:"purchase" [ [ "credit-card" ]; [ "student-id"; "voucher" ] ] ];
    }
  in
  let o = Trust.negotiate ~strategy:Trust.Reactive ~requester:customer ~responder:shop ~goal:"purchase" () in
  Alcotest.(check bool) "first branch satisfiable: deal" true o.Trust.granted

let test_trust_policy_gating () =
  (* a policy that is itself locked is not disclosed until the lock
     opens *)
  let customer =
    {
      Trust.name = "cust";
      credentials = [ "credit-card"; "loyalty-card" ];
      policies =
        [
          Trust.policy ~item:"loyalty-card" Trust.freely;
          (* the credit-card policy is only disclosed to shops that
             showed a bbb membership *)
          Trust.policy ~sensitive:true ~unlocked_by:[ [ "bbb-membership" ] ]
            ~item:"credit-card" [ [ "bbb-membership" ] ];
        ];
    }
  in
  let shop =
    {
      Trust.name = "shop";
      credentials = [ "purchase"; "bbb-membership" ];
      policies =
        [
          Trust.policy ~item:"purchase" [ [ "credit-card" ] ];
          Trust.policy ~item:"bbb-membership" Trust.freely;
        ];
    }
  in
  let o = Trust.negotiate ~strategy:Trust.Reactive ~requester:customer ~responder:shop ~goal:"purchase" () in
  Alcotest.(check bool) "gated policy still leads to a deal" true o.Trust.granted;
  (* the gated policy was only sent after the membership arrived *)
  let disclosure_round item =
    let rec go i = function
      | [] -> Alcotest.fail (item ^ " never sent")
      | (s : Trust.step) :: rest ->
          if List.mem item s.Trust.sent_policies then i else go (i + 1) rest
    in
    go 0 o.Trust.transcript
  in
  Alcotest.(check bool) "credit-card policy after membership" true
    (disclosure_round "credit-card" > disclosure_round "bbb-membership")

(* ---- authz corner cases ---- *)

let test_authz_wildcards () =
  let policy = [ Authz.entry ~principal:"*" ~resource:"*" Authz.Allow ] in
  Alcotest.(check bool) "allow-all" true
    (Authz.allowed policy ~principal:"anyone" ~resource:"/x" ~operation:Authz.Read);
  Alcotest.(check bool) "empty policy denies" false
    (Authz.allowed [] ~principal:"anyone" ~resource:"/x" ~operation:Authz.Read);
  (* operation-specific entries do not leak to other operations *)
  let p2 = [ Authz.entry ~operation:Authz.Read ~principal:"*" ~resource:"*" Authz.Allow ] in
  Alcotest.(check bool) "read allowed" true
    (Authz.allowed p2 ~principal:"x" ~resource:"/y" ~operation:Authz.Read);
  Alcotest.(check bool) "write denied" false
    (Authz.allowed p2 ~principal:"x" ~resource:"/y" ~operation:Authz.Write)

(* ---- network odds and ends ---- *)

let test_network_misc () =
  let net = Network.create () in
  let a = node_exn ~host:"a.example" (Ruleset.make "a") in
  Network.add_node_exn net a;
  Alcotest.(check (list string)) "hosts" [ "a.example" ] (Network.hosts net);
  Alcotest.(check bool) "node lookup" true (Network.node net "a.example" <> None);
  Alcotest.(check bool) "missing node" true (Network.node net "b.example" = None);
  (match Network.node_exn net "nope.example" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "node_exn on unknown host");
  (* duplicate host rejected *)
  match Network.add_node_exn net (node_exn ~host:"a.example" (Ruleset.make "dup")) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate host accepted"

let test_ticker_phase () =
  let net = Network.create () in
  let fired = ref [] in
  Network.add_ticker net ~phase:10 ~period:100 (fun now -> fired := now :: !fired);
  Network.run net ~until:250;
  Alcotest.(check (list int)) "phase then period" [ 10; 110; 210 ] (List.rev !fired)

let test_message_pp () =
  let m =
    Message.make ~from_host:"a" ~to_host:"b" ~sent_at:3
      (Message.Get { req_id = 1; path = "/x"; kind = Message.Doc })
  in
  let s = Fmt.str "%a" Message.pp m in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp mentions kind" true (contains s "GET /x")

let suite =
  ( "misc",
    [
      Alcotest.test_case "duration printing roundtrips" `Quick test_duration_printing;
      Alcotest.test_case "number printing roundtrips" `Quick test_number_printing;
      Alcotest.test_case "keyword labels are quoted" `Quick test_quoting_in_printer;
      Alcotest.test_case "EDSL shorthands" `Quick test_edsl;
      Alcotest.test_case "trust requirement branches" `Quick test_trust_multi_branch_requirement;
      Alcotest.test_case "trust policy gating order" `Quick test_trust_policy_gating;
      Alcotest.test_case "authorization wildcards" `Quick test_authz_wildcards;
      Alcotest.test_case "network registry" `Quick test_network_misc;
      Alcotest.test_case "ticker phase" `Quick test_ticker_phase;
      Alcotest.test_case "message printing" `Quick test_message_pp;
    ] )
