(* The shared alpha network must be a pure acceleration (HACKING.md
   "Cross-rule sharing"): deduplicating atomic matchers across the rule
   base — and memoizing their runs — may never change which rules fire,
   with which bindings, in which order.  Shared and unshared engines are
   compared end to end under every dispatch mode; unit pins cover the
   sharing mechanics themselves (digest canonicality, collision safety,
   fanout accounting, node shedding on rule removal, and the production
   engine's generation-guarded condition cache). *)

open Xchange

(* ---- Engine: shared alpha = per-rule matchers, all dispatch modes ---- *)

let harness () =
  let store = Store.create () in
  Store.add_doc store "/orders" (Term.elem ~ord:Term.Unordered "orders" []);
  let ops =
    {
      Action.update = (fun u -> Result.map fst (Store.apply store u));
      txn_update = (fun u -> Result.map fst (Store.apply store u));
      send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
      log = (fun _ -> ());
      now = (fun () -> 0);
      checkpoint = (fun () -> fun () -> ());
    }
  in
  (store, ops)

let firing_equal (a : Eca.firing) (b : Eca.firing) =
  String.equal a.Eca.rule b.Eca.rule
  && a.Eca.branch = b.Eca.branch
  && Subst.equal a.Eca.bindings b.Eca.bindings
  && a.Eca.outcome = b.Eca.outcome

let outcome_equal (a : Engine.outcome) (b : Engine.outcome) =
  List.equal firing_equal a.Engine.firings b.Engine.firings
  && List.length a.Engine.derived_events = List.length b.Engine.derived_events
  && a.Engine.errors = b.Engine.errors

let final_time events = List.fold_left (fun acc e -> max acc (Event.time e)) 0 events + 10_000

let rules_of queries =
  List.mapi
    (fun i q ->
      let name = Printf.sprintf "r%d" i in
      let action = Action.insert ~doc:"/orders" (Construct.cel "row" [ Construct.ctext name ]) in
      if i mod 2 = 0 then Eca.make ~name ~on:q action
      else
        Eca.make ~name ~on:q
          ~if_:(Condition.In (Condition.Local "/orders", Qterm.el "row" []))
          action)
    queries

let shared_prop (queries, events) =
  let valid = List.filter (fun q -> Result.is_ok (Event_query.validate q)) queries in
  if valid = [] then QCheck.assume_fail ()
  else
    (* duplicate every query so the alpha network has atoms to share *)
    let rules = rules_of (valid @ valid) in
    let run ~index ~subindex ~share =
      let engine =
        Engine.create_exn ~index ~subindex ~share (Ruleset.make ~rules "p")
      in
      let store, ops = harness () in
      let env = Store.env store in
      let outcomes = List.map (fun e -> Engine.handle_event engine ~env ~ops e) events in
      let closing = Engine.advance engine ~env ~ops (final_time events) in
      (outcomes @ [ closing ], Option.get (Store.doc store "/orders"))
    in
    let oracle, doc_o = run ~index:false ~subindex:false ~share:false in
    let same (a, da) =
      List.length a = List.length oracle
      && List.for_all2 outcome_equal a oracle
      && Term.equal da doc_o
    in
    List.for_all
      (fun (index, subindex) ->
        same (run ~index ~subindex ~share:true)
        || QCheck.Test.fail_reportf
             "shared/unshared divergence (index=%b subindex=%b) on %d rules, %d events"
             index subindex (List.length rules) (List.length events))
      [ (false, false); (true, false); (true, true) ]

let queries_arb =
  QCheck.make
    ~print:(fun qs -> Fmt.str "%a" Fmt.(list ~sep:cut Event_query.pp) qs)
    QCheck.Gen.(list_size (int_range 1 4) Gen.event_query_gen)

let stream_arb =
  QCheck.make
    ~print:(fun evs -> Fmt.str "%a" Fmt.(list ~sep:cut Event.pp) evs)
    (Gen.event_stream_gen ~labels:[ "a"; "b"; "c" ] ~max_len:20 ~max_gap:15)

let prop_shared_modes =
  QCheck.Test.make ~name:"Engine: shared alpha = per-rule matchers (all modes)" ~count:200
    (QCheck.pair queries_arb stream_arb)
    shared_prop

(* ---- digest canonicality ---- *)

let test_digest_canonical () =
  let q_ab =
    Qterm.el "r" ~attrs:[ ("a", Qterm.A_is "1"); ("b", Qterm.A_var "V") ]
      [ Qterm.pos (Qterm.var "X") ]
  in
  let q_ba =
    Qterm.el "r" ~attrs:[ ("b", Qterm.A_var "V"); ("a", Qterm.A_is "1") ]
      [ Qterm.pos (Qterm.var "X") ]
  in
  (* attribute order has no matching semantics: same digest *)
  Alcotest.(check string) "attr order canonicalised" (Qterm.digest q_ab) (Qterm.digest q_ba);
  (* everything that changes matching changes the digest *)
  let base = Qterm.el "r" [ Qterm.pos (Qterm.var "X") ] in
  let distinct =
    [
      Qterm.el "s" [ Qterm.pos (Qterm.var "X") ];  (* label *)
      Qterm.el "r" [ Qterm.pos (Qterm.var "Y") ];  (* variable name *)
      Qterm.el "r" [ Qterm.without (Qterm.var "X") ];  (* polarity *)
      Qterm.el "r" ~spec:Qterm.Total [ Qterm.pos (Qterm.var "X") ];  (* spec *)
      Qterm.el "r" ~ord:Term.Ordered [ Qterm.pos (Qterm.var "X") ];  (* order *)
      Qterm.el "r" ~attrs:[ ("a", Qterm.A_any) ] [ Qterm.pos (Qterm.var "X") ];
    ]
  in
  List.iteri
    (fun i q ->
      Alcotest.(check bool)
        (Printf.sprintf "variant %d digests differently" i)
        false
        (String.equal (Qterm.digest base) (Qterm.digest q)))
    distinct;
  (* the atomic digest also covers the envelope *)
  let atom ?label ?sender p : Event_query.atomic =
    match Event_query.on ?label ?sender p with
    | Event_query.Atomic a -> a
    | _ -> assert false
  in
  Alcotest.(check bool) "label part of atomic digest" false
    (String.equal
       (Event_query.atomic_digest (atom ~label:"a" base))
       (Event_query.atomic_digest (atom ~label:"b" base)));
  Alcotest.(check string) "atomic digest deterministic"
    (Event_query.atomic_digest (atom ~label:"a" base))
    (Event_query.atomic_digest (atom ~label:"a" base))

(* ---- alpha network mechanics ---- *)

let atom ?label pattern : Event_query.atomic =
  match Event_query.on ?label pattern with Event_query.Atomic a -> a | _ -> assert false

let pat_x = Qterm.el "p" [ Qterm.pos (Qterm.var "X") ]

let ev ?(t = 1) payload = Event.make ~occurred_at:t ~label:"t" payload

let test_sharing_and_fanout () =
  let net = Alpha.create () in
  let a = atom ~label:"t" pat_x in
  let m1 = Alpha.subscribe net a in
  let m2 = Alpha.subscribe net a in
  let m3 = Alpha.subscribe net a in
  let s = Alpha.stats net in
  Alcotest.(check int) "one node" 1 s.Alpha.distinct_nodes;
  Alcotest.(check int) "three registrations" 3 s.Alpha.registrations;
  let e = ev (Term.elem "p" [ Term.text "v" ]) in
  let r1 = m1 e and r2 = m2 e and r3 = m3 e in
  Alcotest.(check bool) "same substitutions" true
    (List.equal Subst.equal r1 r2 && List.equal Subst.equal r2 r3);
  Alcotest.(check int) "one answer" 1 (List.length r1);
  let s = Alpha.stats net in
  Alcotest.(check int) "evaluated once" 1 s.Alpha.evaluations;
  Alcotest.(check int) "served twice from memo" 2 s.Alpha.hits;
  Alcotest.(check int) "fanout counts every delivery" 3 s.Alpha.fanout;
  (* envelope mismatch is refuted before the memo: no counters move *)
  let off = Event.make ~occurred_at:2 ~label:"other" (Term.elem "p" [ Term.text "v" ]) in
  Alcotest.(check int) "wrong label rejected" 0 (List.length (m1 off));
  let s = Alpha.stats net in
  Alcotest.(check int) "no extra evaluation" 1 s.Alpha.evaluations;
  Alcotest.(check int) "no extra hit" 2 s.Alpha.hits

let test_collision_safety () =
  (* every atom hashes to the same bucket: structural equality inside
     the bucket must keep the nodes distinct and the answers correct *)
  let net = Alpha.create ~digest:(fun _ -> "collide") () in
  let m_p = Alpha.subscribe net (atom ~label:"t" pat_x) in
  let m_q = Alpha.subscribe net (atom ~label:"t" (Qterm.el "q" [ Qterm.pos (Qterm.var "X") ])) in
  let s = Alpha.stats net in
  Alcotest.(check int) "collision keeps nodes distinct" 2 s.Alpha.distinct_nodes;
  let e = ev (Term.elem "p" [ Term.text "v" ]) in
  Alcotest.(check int) "p matches" 1 (List.length (m_p e));
  Alcotest.(check int) "q refutes" 0 (List.length (m_q e));
  (* and an equal atom still shares despite the collision *)
  let (_ : Incremental.atom_matcher) = Alpha.subscribe net (atom ~label:"t" pat_x) in
  Alcotest.(check int) "still two nodes" 2 (Alpha.stats net).Alpha.distinct_nodes

let test_memo_lru_retention () =
  (* the memo is a bounded LRU: a burst of fresh event ids past the cap
     evicts only the coldest entries.  The old reset-on-cap wipe
     discarded the whole table, hot ids included — this pin fails on
     that implementation *)
  let net = Alpha.create () in
  let m = Alpha.subscribe net (atom ~label:"t" pat_x) in
  let hot = Event.make ~id:1000 ~occurred_at:1 ~label:"t" (Term.elem "p" [ Term.text "v" ]) in
  ignore (m hot);
  Alcotest.(check int) "hot id evaluated once" 1 (Alpha.stats net).Alpha.evaluations;
  (* 100 distinct ids (cap is 64), touching the hot id every 10 *)
  for i = 1 to 100 do
    ignore (m (Event.make ~id:i ~occurred_at:2 ~label:"t" (Term.elem "p" [ Term.text "w" ])));
    if i mod 10 = 0 then ignore (m hot)
  done;
  let evals = (Alpha.stats net).Alpha.evaluations in
  Alcotest.(check int) "each fresh id evaluated exactly once" 101 evals;
  ignore (m hot);
  Alcotest.(check int) "hot id survived the burst" evals (Alpha.stats net).Alpha.evaluations

let test_release_sheds_nodes () =
  let net = Alpha.create () in
  let a = atom ~label:"t" pat_x in
  let h1 = Alpha.register net a in
  let h2 = Alpha.register net a in
  Alcotest.(check int) "shared while alive" 1 (Alpha.stats net).Alpha.distinct_nodes;
  Alpha.release net h1;
  Alcotest.(check int) "survives first release" 1 (Alpha.stats net).Alpha.distinct_nodes;
  Alcotest.(check int) "registration count drops" 1 (Alpha.stats net).Alpha.registrations;
  Alpha.release net h2;
  Alcotest.(check int) "last release sheds the node" 0 (Alpha.stats net).Alpha.distinct_nodes;
  Alcotest.check_raises "double release rejected"
    (Invalid_argument "Alpha.release: handle already released") (fun () ->
      Alpha.release net h2);
  (* re-registering after shedding builds a fresh node *)
  let _ = Alpha.register net a in
  Alcotest.(check int) "fresh node" 1 (Alpha.stats net).Alpha.distinct_nodes

(* ---- engine wiring: ECA and derivation atoms share one network ---- *)

let test_engine_alpha_stats () =
  let on_order = Event_query.on ~label:"order" pat_x in
  let rules =
    List.map
      (fun name ->
        Eca.make ~name ~on:on_order
          (Action.insert ~doc:"/orders" (Construct.cel "row" [ Construct.cvar "X" ])))
      [ "a"; "b"; "c" ]
  in
  let derivation =
    Deductive_event.rule ~name:"echo" ~derives:"echoed" ~trigger:(Event_query.on ~label:"order" pat_x)
      ~payload:(Construct.cel "e" [ Construct.cvar "X" ])
  in
  let rs = Ruleset.make ~rules ~event_rules:[ derivation ] "p" in
  let engine = Engine.create_exn ~share:true rs in
  let store, ops = harness () in
  let env = Store.env store in
  (match Engine.alpha_stats engine with
  | None -> Alcotest.fail "alpha network missing under ~share:true"
  | Some s ->
      (* 3 ECA atoms + 1 derivation atom, structurally identical *)
      Alcotest.(check int) "one shared node" 1 s.Alpha.distinct_nodes;
      Alcotest.(check int) "four registrations" 4 s.Alpha.registrations);
  let outcome =
    Engine.handle_event engine ~env ~ops
      (Event.make ~occurred_at:1 ~label:"order" (Term.elem "p" [ Term.text "v" ]))
  in
  Alcotest.(check int) "all rules fired" 3 (List.length outcome.Engine.firings);
  Alcotest.(check int) "derivation ran" 1 (List.length outcome.Engine.derived_events);
  (match Engine.alpha_stats engine with
  | None -> assert false
  | Some s ->
      Alcotest.(check int) "occurrence evaluated once" 1 s.Alpha.evaluations;
      Alcotest.(check int) "other subscribers served from memo" 3 s.Alpha.hits;
      Alcotest.(check int) "fanout = one delivery per subscriber" 4 s.Alpha.fanout);
  (* the unshared engine reports no network at all *)
  let plain = Engine.create_exn ~share:false rs in
  Alcotest.(check bool) "no stats unshared" true (Engine.alpha_stats plain = None)

(* ---- production rules: generation-guarded condition cache ---- *)

let log_cond = Condition.In (Condition.Local "/log", Qterm.el "row" [ Qterm.pos (Qterm.var "X") ])

let production_harness () =
  let store = Store.create () in
  Store.add_doc store "/log"
    (Term.elem ~ord:Term.Unordered "log" [ Term.elem "row" [ Term.text "a" ] ]);
  let ops =
    {
      Action.update = (fun u -> Result.map fst (Store.apply store u));
      txn_update = (fun u -> Result.map fst (Store.apply store u));
      send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
      log = (fun _ -> ());
      now = (fun () -> 0);
      checkpoint = (fun () -> fun () -> ());
    }
  in
  (store, ops)

let no_procs _ = None

let test_production_condition_cache () =
  let rules =
    [
      { Production.name = "w"; condition = log_cond; action = Action.Nop };
      { Production.name = "r"; condition = log_cond; action = Action.Nop };
    ]
  in
  let engine = Production.create ~share:true rules in
  let store, ops = production_harness () in
  let poll () = Production.poll ~env:(Store.env store) ~ops ~procs:no_procs engine in
  (* cycle 1: both rules see the fresh answer and fire; the firings
     start new generations, so both evaluate *)
  Alcotest.(check int) "both fire on the new answer" 2 (List.length (poll ()));
  (* cycle 2: nothing fresh, no action runs: the second rule is served
     from the shared group's cache *)
  Alcotest.(check int) "quiet cycle" 0 (List.length (poll ()));
  let s = Production.stats engine in
  Alcotest.(check int) "three evaluations" 3 s.Production.condition_evaluations;
  Alcotest.(check int) "one cache hit" 1 s.Production.condition_hits;
  Alcotest.(check int) "two firings" 2 s.Production.firings;
  (* unshared: same firings, every rule pays its own evaluation *)
  let plain = Production.create ~share:false rules in
  let store2, ops2 = production_harness () in
  let poll2 () = Production.poll ~env:(Store.env store2) ~ops:ops2 ~procs:no_procs plain in
  Alcotest.(check int) "unshared fires the same" 2 (List.length (poll2 ()));
  Alcotest.(check int) "unshared quiet cycle" 0 (List.length (poll2 ()));
  let s2 = Production.stats plain in
  Alcotest.(check int) "four evaluations" 4 s2.Production.condition_evaluations;
  Alcotest.(check int) "no hits" 0 s2.Production.condition_hits

let test_production_share_equivalence () =
  (* rule [w] mutates what the shared condition reads; rule [r] polled
     after it must observe the post-action answers, exactly as when
     evaluating privately *)
  let rules =
    [
      {
        Production.name = "w";
        condition = log_cond;
        action = Action.insert ~doc:"/log" (Construct.cel "row" [ Construct.ctext "w" ]);
      };
      { Production.name = "r"; condition = log_cond; action = Action.Nop };
    ]
  in
  let run share =
    let engine = Production.create ~share rules in
    let store, ops = production_harness () in
    let fired = ref [] in
    for _ = 1 to 3 do
      fired := !fired @ Production.poll ~env:(Store.env store) ~ops ~procs:no_procs engine
    done;
    (!fired, Option.get (Store.doc store "/log"))
  in
  let fired_s, doc_s = run true in
  let fired_u, doc_u = run false in
  Alcotest.(check int) "same firing count" (List.length fired_u) (List.length fired_s);
  Alcotest.(check bool) "same firings" true
    (List.for_all2
       (fun (n1, s1) (n2, s2) -> String.equal n1 n2 && Subst.equal s1 s2)
       fired_s fired_u);
  Alcotest.(check bool) "same final store" true (Term.equal doc_s doc_u);
  Alcotest.(check bool) "writer rule saw stale cache never" true
    (List.exists (fun (n, _) -> String.equal n "r") fired_s)

let suite =
  ( "alpha",
    [
      QCheck_alcotest.to_alcotest ~long:true prop_shared_modes;
      Alcotest.test_case "digest is canonical" `Quick test_digest_canonical;
      Alcotest.test_case "sharing, memo and fanout accounting" `Quick test_sharing_and_fanout;
      Alcotest.test_case "digest collisions stay correct" `Quick test_collision_safety;
      Alcotest.test_case "memo LRU keeps hot ids past the cap" `Quick test_memo_lru_retention;
      Alcotest.test_case "release sheds shared nodes" `Quick test_release_sheds_nodes;
      Alcotest.test_case "engine shares ECA and derivation atoms" `Quick test_engine_alpha_stats;
      Alcotest.test_case "production condition cache accounting" `Quick
        test_production_condition_cache;
      Alcotest.test_case "production sharing = private evaluation" `Quick
        test_production_share_equivalence;
    ] )
