(* Tests for the extension features: optional subterms, publish/
   subscribe, remote updates, and the Turtle subset. *)

open Xchange

let term = Alcotest.testable Term.pp Term.equal

(* ---- optional subterms (Xcerpt's optional) ---- *)

let book ?isbn title =
  Term.elem "book"
    (Term.elem "title" [ Term.text title ]
    :: (match isbn with Some i -> [ Term.elem "isbn" [ Term.text i ] ] | None -> []))

let shelf = Term.elem ~ord:Term.Unordered "shelf" [ book "iliad" ~isbn:"123"; book "notes" ]

let q_book =
  Qterm.el "book"
    [
      Qterm.pos (Qterm.el "title" [ Qterm.pos (Qterm.var "T") ]);
      Qterm.opt (Qterm.el "isbn" [ Qterm.pos (Qterm.var "I") ]);
    ]

let test_optional_binds_when_present () =
  let answers = Simulate.matches_anywhere q_book shelf in
  Alcotest.(check int) "both books answer" 2 (List.length answers);
  let with_isbn =
    List.find (fun s -> Subst.find "T" s = Some (Term.text "iliad")) answers
  in
  Alcotest.(check (option term)) "isbn bound when present" (Some (Term.text "123"))
    (Subst.find "I" with_isbn);
  let without_isbn =
    List.find (fun s -> Subst.find "T" s = Some (Term.text "notes")) answers
  in
  Alcotest.(check (option term)) "isbn unbound when absent" None (Subst.find "I" without_isbn)

let test_optional_is_maximal () =
  (* the iliad must NOT additionally produce an answer without the isbn *)
  let answers = Simulate.matches q_book (book "iliad" ~isbn:"123") in
  Alcotest.(check int) "one (maximal) answer" 1 (List.length answers);
  Alcotest.(check (option term)) "bound" (Some (Term.text "123"))
    (Subst.find "I" (List.hd answers))

let test_optional_in_total_spec () =
  (* total pattern: every data child must be consumed; the optional
     pattern covers the isbn when present and is skippable when not *)
  let q =
    Qterm.el ~ord:Term.Ordered ~spec:Qterm.Total "book"
      [
        Qterm.pos (Qterm.el "title" [ Qterm.pos (Qterm.var "T") ]);
        Qterm.opt (Qterm.el "isbn" [ Qterm.pos (Qterm.var "I") ]);
      ]
  in
  Alcotest.(check int) "with isbn" 1 (List.length (Simulate.matches q (book "a" ~isbn:"1")));
  Alcotest.(check int) "without isbn" 1 (List.length (Simulate.matches q (book "a")));
  (* an unconsumed extra child still fails the total spec *)
  let extra = Term.elem "book" [ Term.elem "title" [ Term.text "a" ]; Term.elem "junk" [] ] in
  Alcotest.(check int) "extra child fails total" 0 (List.length (Simulate.matches q extra))

let test_optional_vars_and_syntax () =
  Alcotest.(check (list string)) "optional vars counted" [ "I"; "T" ] (Qterm.vars q_book);
  let src = {|book{{title{{var T}}, optional isbn{{var I}}}}|} in
  match Parser.parse_qterm src with
  | Ok q ->
      Alcotest.(check bool) "parses to the same pattern" true (q = q_book);
      let printed = Printer.qterm_to_string q in
      Alcotest.(check bool) "roundtrips" true (Parser.parse_qterm printed = Ok q)
  | Error e -> Alcotest.fail e

let test_optional_in_conditions () =
  (* unbound optional variables are simply absent from the answer; using
     them in a construct is then an error the engine reports per rule *)
  let env = Condition.env_of_docs [ ("/shelf", shelf) ] in
  let answers =
    Condition.eval env Subst.empty (Condition.In (Condition.Local "/shelf", q_book))
  in
  Alcotest.(check int) "two answers" 2 (List.length answers);
  let bound = List.filter (fun s -> Subst.find "I" s <> None) answers in
  Alcotest.(check int) "one carries the optional binding" 1 (List.length bound)

(* ---- publish/subscribe ---- *)

let test_pubsub () =
  let net = Network.create () in
  let producer = node_exn ~host:"prod.example" (Pubsub.publisher_ruleset ()) in
  Store.add_doc (Node.store producer) Pubsub.subscribers_doc (Pubsub.empty_register ());
  let consumer_rules host =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"recv"
            ~on:
              (Event_query.on ~label:"notify"
                 (Qterm.el "notify" [ Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.var "T") ]) ]))
            (Action.log "notified about %s" [ Builtin.ovar "T" ]);
        ]
      ("consumer-" ^ host)
  in
  let c1 = node_exn ~host:"c1.example" (consumer_rules "c1") in
  let c2 = node_exn ~host:"c2.example" (consumer_rules "c2") in
  List.iter (Network.add_node_exn net) [ producer; c1; c2 ];
  (* both subscribe to news; only c1 to sports *)
  Network.inject net ~to_:"prod.example" ~label:"subscribe" (Pubsub.subscribe ~topic:"news" ~host:"c1.example");
  Network.inject net ~to_:"prod.example" ~label:"subscribe" (Pubsub.subscribe ~topic:"news" ~host:"c2.example");
  Network.inject net ~to_:"prod.example" ~label:"subscribe" (Pubsub.subscribe ~topic:"sports" ~host:"c1.example");
  (* duplicate subscription must not double-deliver *)
  Network.inject net ~to_:"prod.example" ~label:"subscribe" (Pubsub.subscribe ~topic:"news" ~host:"c1.example");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "register" [ "c1.example"; "c2.example" ]
    (Pubsub.subscribers (Node.store producer) ~topic:"news");
  Network.inject net ~to_:"prod.example" ~label:"publish"
    (Pubsub.publish ~topic:"news" (Term.text "headline"));
  Network.inject net ~to_:"prod.example" ~label:"publish"
    (Pubsub.publish ~topic:"sports" (Term.text "score"));
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "c1 got both topics"
    [ "notified about news"; "notified about sports" ]
    (List.sort String.compare (Node.logs c1));
  Alcotest.(check (list string)) "c2 got news only" [ "notified about news" ] (Node.logs c2);
  (* unsubscribe stops delivery *)
  Network.inject net ~to_:"prod.example" ~label:"unsubscribe"
    (Pubsub.unsubscribe ~topic:"news" ~host:"c2.example");
  ignore (Network.run_until_quiet net ());
  Network.inject net ~to_:"prod.example" ~label:"publish"
    (Pubsub.publish ~topic:"news" (Term.text "more"));
  ignore (Network.run_until_quiet net ());
  Alcotest.(check int) "c2 unchanged after unsubscribe" 1 (List.length (Node.logs c2))

(* ---- remote updates (Thesis 8 over Thesis 2) ---- *)

let test_remote_update () =
  let writer_rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"push-stock"
            ~on:(Event_query.on ~label:"sale" (Qterm.el "sale" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "I") ]) ]))
            (Action.insert ~doc:"warehouse.example/ledger" (Construct.cel "sold" [ Construct.cvar "I" ]));
        ]
      "shop"
  in
  let net = Network.create () in
  let shop = node_exn ~host:"shop.example" writer_rules in
  let warehouse = node_exn ~accept_updates:true ~host:"warehouse.example" (Ruleset.make "wh") in
  Store.add_doc (Node.store warehouse) "/ledger" (Term.elem ~ord:Term.Unordered "ledger" []);
  Network.add_node_exn net shop;
  Network.add_node_exn net warehouse;
  Network.inject net ~to_:"shop.example" ~label:"sale" (Term.elem "sale" [ Term.elem "item" [ Term.text "ball" ] ]);
  ignore (Network.run_until_quiet net ());
  let ledger = Option.get (Store.doc (Node.store warehouse) "/ledger") in
  Alcotest.(check int) "remote insert applied" 1 (List.length (Term.children ledger));
  Alcotest.(check bool) "update message accounted" true
    ((Network.transport_stats net).Transport.updates >= 1)

let test_remote_update_triggers_rules () =
  (* a remote write raises the same local update events: derived rules see it *)
  let monitor =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"audit"
            ~on:(Event_query.on ~label:"update" (Qterm.el "update" ~attrs:[ ("doc", Qterm.A_is "/ledger") ] []))
            (Action.log "ledger touched" []);
        ]
      "monitor"
  in
  let net = Network.create () in
  let shop = node_exn ~host:"shop.example" (Ruleset.make "s") in
  let warehouse = node_exn ~accept_updates:true ~host:"warehouse.example" monitor in
  Store.add_doc (Node.store warehouse) "/ledger" (Term.elem ~ord:Term.Unordered "ledger" []);
  Network.add_node_exn net shop;
  Network.add_node_exn net warehouse;
  (* drive the remote update straight through the shop's action layer *)
  let ctx = Network.context_for net shop in
  let ops_update =
    Action.exec
      ~env:ctx.Node.env
      ~ops:
        {
          Action.update = (fun _ -> Alcotest.fail "should not reach local store");
          txn_update = (fun _ -> Alcotest.fail "should not reach local store");
          send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
          log = (fun _ -> ());
          now = (fun () -> 0);
          checkpoint = (fun () -> fun () -> ());
        }
      ~procs:(fun _ -> None) ~subst:Subst.empty ~answers:[]
  in
  ignore ops_update;
  Network.inject net ~to_:"shop.example" ~label:"noop" (Term.text "x");
  (* use a rule-free path: send the update message directly *)
  let u =
    Action.U_insert { doc = "/ledger"; selector = []; at = None; content = Term.elem "sold" [] }
  in
  let msg = Message.make ~from_host:"shop.example" ~to_host:"warehouse.example" ~sent_at:0 (Message.Update u) in
  let ctx_wh = Network.context_for net warehouse in
  ignore msg;
  ignore (Node.receive_update warehouse ctx_wh ~from:"shop.example" ~msg_id:1 u);
  Alcotest.(check (list string)) "audit rule fired on remote write" [ "ledger touched" ]
    (Node.logs warehouse)

let test_remote_update_rejected_by_default () =
  let net = Network.create () in
  let closed = node_exn ~host:"closed.example" (Ruleset.make "c") in
  Store.add_doc (Node.store closed) "/d" (Term.elem "d" []);
  Network.add_node_exn net closed;
  let u = Action.U_insert { doc = "/d"; selector = []; at = None; content = Term.text "x" } in
  let ctx = Network.context_for net closed in
  ignore (Node.receive_update closed ctx ~from:"evil.example" ~msg_id:1 u);
  Alcotest.(check int) "nothing written" 0
    (List.length (Term.children (Option.get (Store.doc (Node.store closed) "/d"))));
  Alcotest.(check bool) "rejection recorded" true (Node.errors closed <> [])

(* ---- snapshots & tracing ---- *)

let test_store_snapshot_roundtrip () =
  let s = Store.create () in
  Store.add_doc s "/a" (Term.elem "a" [ Term.text "x" ]);
  Store.add_doc s "/b" (Term.elem ~ord:Term.Unordered "b" [ Term.int 1; Term.int 2 ]);
  Store.add_rdf s "/g" (Rdf.of_list [ { Rdf.s = Rdf.Iri "s"; p = "p"; o = Rdf.Lit "o" } ]);
  match Store.restore (Store.snapshot s) with
  | Error e -> Alcotest.fail e
  | Ok s' ->
      Alcotest.(check (list string)) "docs" [ "/a"; "/b" ] (Store.doc_names s');
      Alcotest.(check (list string)) "graphs" [ "/g" ] (Store.rdf_names s');
      Alcotest.check term "doc content" (Term.elem "a" [ Term.text "x" ])
        (Term.strip_ids (Option.get (Store.doc s' "/a")));
      Alcotest.(check int) "graph content" 1 (Rdf.size (Option.get (Store.rdf s' "/g")));
      (* and it survives an XML round trip, as the CLI uses it *)
      let xml = Xml.to_string (Store.snapshot s) in
      match Store.restore (Xml.parse_exn xml) with
      | Ok s'' -> Alcotest.(check (list string)) "xml roundtrip" [ "/a"; "/b" ] (Store.doc_names s'')
      | Error e -> Alcotest.fail e

let test_snapshot_rejects_junk () =
  match Store.restore (Term.text "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk snapshot accepted"

let test_network_trace () =
  let net = Network.create ~record:true () in
  let n = node_exn ~host:"n.example" (Ruleset.make "s") in
  Network.add_node_exn net n;
  Network.inject net ~to_:"n.example" ~label:"x" (Term.text "1");
  Network.inject net ~to_:"n.example" ~label:"y" (Term.text "2");
  ignore (Network.run_until_quiet net ());
  let trace = Network.trace net in
  Alcotest.(check int) "both recorded" 2 (List.length trace);
  (* untraced networks record nothing *)
  let quiet = Network.create () in
  let m = node_exn ~host:"m.example" (Ruleset.make "s") in
  Network.add_node_exn quiet m;
  Network.inject quiet ~to_:"m.example" ~label:"x" (Term.text "1");
  ignore (Network.run_until_quiet quiet ());
  Alcotest.(check int) "no recording by default" 0 (List.length (Network.trace quiet))

(* ---- Turtle ---- *)

let test_turtle_golden () =
  let src =
    {|# a comment
      <alice> <knows> <bob> .
      <alice> a <person> .
      <alice> <age> 30 .
      <alice> <motto> "carpe\n\"diem\"" .
      _:x <p> _:y .
      <s> rdfs:subClassOf <t> .|}
  in
  match Rdf.of_turtle src with
  | Error e -> Alcotest.fail e
  | Ok g ->
      Alcotest.(check int) "six triples" 6 (Rdf.size g);
      Alcotest.(check bool) "a = rdf:type" true
        (Rdf.mem g { Rdf.s = Rdf.Iri "alice"; p = Rdf.rdf_type; o = Rdf.Iri "person" });
      Alcotest.(check bool) "number literal" true
        (Rdf.mem g { Rdf.s = Rdf.Iri "alice"; p = "age"; o = Rdf.Lit_num 30. });
      Alcotest.(check bool) "curie predicate" true
        (Rdf.mem g { Rdf.s = Rdf.Iri "s"; p = Rdf.rdfs_sub_class_of; o = Rdf.Iri "t" })

let test_turtle_errors () =
  let bad s = match Rdf.of_turtle s with Error _ -> () | Ok _ -> Alcotest.fail ("accepted " ^ s) in
  bad "<a> <b>";
  bad "<a> \"lit\" <c> .";
  bad "<a> <b> <c";
  bad "<a> <b> \"unterminated .";
  Alcotest.(check int) "empty input ok" 0 (Rdf.size (Result.get_ok (Rdf.of_turtle "  # only comments\n")))

let triple_gen =
  QCheck.Gen.(
    let name = oneofl [ "alice"; "bob"; "p"; "q"; "rdf:type" ] in
    let node =
      oneof
        [
          map (fun n -> Rdf.Iri n) name;
          map (fun n -> Rdf.Blank n) (oneofl [ "b1"; "b2" ]);
          map (fun s -> Rdf.Lit s) (oneofl [ "x"; "hello world"; "quo\"te"; "" ]);
          map (fun i -> Rdf.Lit_num (float_of_int i)) (int_bound 1000);
        ]
    in
    map Rdf.of_list (list_size (int_bound 15) (map3 (fun s p o -> { Rdf.s; p; o }) node name node)))

let prop_turtle_roundtrip =
  QCheck.Test.make ~name:"turtle print/parse roundtrip" ~count:300
    (QCheck.make ~print:Rdf.to_turtle triple_gen) (fun g ->
      match Rdf.of_turtle (Rdf.to_turtle g) with
      | Ok g' -> Rdf.to_list g = Rdf.to_list g'
      | Error e -> QCheck.Test.fail_reportf "%s on:@.%s" e (Rdf.to_turtle g))

let suite =
  ( "extensions",
    [
      Alcotest.test_case "optional binds when present" `Quick test_optional_binds_when_present;
      Alcotest.test_case "optional answers are maximal" `Quick test_optional_is_maximal;
      Alcotest.test_case "optional in total patterns" `Quick test_optional_in_total_spec;
      Alcotest.test_case "optional vars and surface syntax" `Quick test_optional_vars_and_syntax;
      Alcotest.test_case "optional flows through conditions" `Quick test_optional_in_conditions;
      Alcotest.test_case "publish/subscribe rule set" `Quick test_pubsub;
      Alcotest.test_case "remote updates (Thesis 8)" `Quick test_remote_update;
      Alcotest.test_case "remote updates trigger local rules" `Quick test_remote_update_triggers_rules;
      Alcotest.test_case "remote updates need opt-in" `Quick test_remote_update_rejected_by_default;
      Alcotest.test_case "store snapshot roundtrip" `Quick test_store_snapshot_roundtrip;
      Alcotest.test_case "snapshot rejects junk" `Quick test_snapshot_rejects_junk;
      Alcotest.test_case "network message tracing" `Quick test_network_trace;
      Alcotest.test_case "turtle parsing" `Quick test_turtle_golden;
      Alcotest.test_case "turtle error cases" `Quick test_turtle_errors;
      QCheck_alcotest.to_alcotest prop_turtle_roundtrip;
    ] )
