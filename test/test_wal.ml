(* Durability: the write-ahead log codec and its corruption tolerance
   (pinned against the committed corpus in test/corpus/), transactional
   update semantics (Store.apply_txn, the static and dynamic cross-node
   guards), and the property the whole subsystem hangs on — a node
   killed at an arbitrary virtual time and recovered from WAL+snapshot
   converges with the no-crash differential oracle. *)

open Xchange

(* ---- codec roundtrip ----------------------------------------------- *)

let sample_event ?(id = 11) ?(received_at = 15) () =
  Event.make ~id ~sender:"src.example" ~recipient:"mid.example" ~received_at ~ttl:100
    ~occurred_at:10 ~label:"order"
    (Term.elem "order" [ Term.elem "item" [ Term.text "ball" ]; Term.elem "qty" [ Term.int 2 ] ])

let sample_records () =
  [
    Wal.Event (sample_event ());
    Wal.Update
      (Action.U_insert
         { doc = "/orders"; selector = []; at = Some 0; content = Term.elem "row" [ Term.text "x" ] });
    Wal.Remote_update
      {
        from = "src.example";
        msg_id = 7;
        at = 20;
        update =
          Action.U_replace
            {
              doc = "/status";
              selector = [ (Path.Child, Path.Tag "state"); (Path.Descendant, Path.Any) ];
              content = Term.elem "state" [ Term.text "ok" ];
            };
      };
    Wal.Advance 30;
    Wal.Firing { rule = "take"; at = 30 };
    Wal.Update (Action.U_delete_doc { doc = "/orders" });
    Wal.Update
      (Action.U_rdf_assert
         { doc = "/g"; triple = { Rdf.s = Rdf.Iri "a"; p = "knows"; o = Rdf.Iri "b" } });
    Wal.Snapshot
      {
        Wal.s_at = 40;
        s_store = Term.elem "store" [];
        s_event_n = 3;
        s_msg_n = 2;
        s_req_n = 1;
        s_firings = 5;
        s_seen = [ 11; 12 ];
        s_seen_updates = [ ("src.example", 7) ];
        s_logs = [ "two"; "one" ];
        s_errors = [ ("take", "boom") ];
        s_tail = [ Wal.T_event (sample_event ()); Wal.T_advance 30 ];
      };
  ]

let is_clean = function Wal.Clean -> true | Wal.Corrupt _ -> false

let test_roundtrip () =
  let w = Wal.create () in
  List.iter (Wal.append w) (sample_records ());
  let rs, stop = Wal.records w in
  Alcotest.(check bool) "clean" true (is_clean stop);
  Alcotest.(check int) "all records back" 8 (List.length rs);
  (match List.nth rs 0 with
  | Wal.Event e ->
      Alcotest.(check int) "event id" 11 e.Event.id;
      Alcotest.(check string) "event label" "order" e.Event.label;
      Alcotest.(check int) "reception stamp" 15 (Event.time e);
      Alcotest.(check (option int)) "ttl" (Some 110) e.Event.expires_at;
      Alcotest.(check string) "payload" "<order><item>ball</item><qty>2</qty></order>"
        (Xml.to_string (Term.strip_ids e.Event.payload))
  | _ -> Alcotest.fail "expected Event first");
  (match List.nth rs 2 with
  | Wal.Remote_update { from; msg_id; at; update } ->
      Alcotest.(check string) "update origin" "src.example" from;
      Alcotest.(check int) "msg id" 7 msg_id;
      Alcotest.(check int) "reception time" 20 at;
      Alcotest.(check string) "target doc" "/status" (Action.update_doc update)
  | _ -> Alcotest.fail "expected Remote_update third");
  (match List.nth rs 7 with
  | Wal.Snapshot s ->
      Alcotest.(check int) "counters survive" 3 s.Wal.s_event_n;
      Alcotest.(check (list int)) "dedup set" [ 11; 12 ] s.Wal.s_seen;
      Alcotest.(check (list (pair string int))) "update dedup set"
        [ ("src.example", 7) ] s.Wal.s_seen_updates;
      Alcotest.(check int) "tail length" 2 (List.length s.Wal.s_tail)
  | _ -> Alcotest.fail "expected Snapshot last");
  (* bytes survive a save/load cycle untouched *)
  let rs', stop' = Wal.records (Wal.of_string (Wal.contents w)) in
  Alcotest.(check bool) "reload clean" true (is_clean stop');
  Alcotest.(check int) "reload count" 8 (List.length rs')

let test_mark_truncate () =
  let w = Wal.create () in
  Wal.append w (Wal.Advance 1);
  Wal.append w (Wal.Advance 2);
  let m = Wal.mark w in
  Wal.append w (Wal.Advance 3);
  Wal.append w (Wal.Firing { rule = "r"; at = 3 });
  Wal.truncate w m;
  let rs, stop = Wal.records w in
  Alcotest.(check bool) "clean after truncate" true (is_clean stop);
  Alcotest.(check (list int)) "only pre-mark records remain"
    [ 1; 2 ]
    (List.filter_map (function Wal.Advance t -> Some t | _ -> None) rs);
  Alcotest.(check int) "appended tracks truncation" 2 (Wal.appended w)

let test_drop_corrupt_tail () =
  let w = Wal.create () in
  List.iter (Wal.append w) [ Wal.Advance 1; Wal.Advance 2; Wal.Advance 3 ];
  let garbled = Wal.of_string (Wal.contents w ^ "\xde\xad\xbe") in
  (match Wal.records garbled with
  | _, Wal.Clean -> Alcotest.fail "garbage not detected"
  | rs, Wal.Corrupt _ -> Alcotest.(check int) "valid prefix kept" 3 (List.length rs));
  Wal.drop_corrupt_tail garbled;
  Wal.append garbled (Wal.Advance 4);
  let rs, stop = Wal.records garbled in
  Alcotest.(check bool) "appendable again after drop" true (is_clean stop);
  Alcotest.(check (list int)) "prefix + new record"
    [ 1; 2; 3; 4 ]
    (List.filter_map (function Wal.Advance t -> Some t | _ -> None) rs)

(* ---- corruption corpus pins ----------------------------------------- *)

(* cwd is test/ under `dune runtest`, the workspace root under
   `dune exec test/main.exe` *)
let corpus name =
  let local = Filename.concat "corpus" name in
  if Sys.file_exists local then local else Filename.concat "test/corpus" name

let load name =
  match Wal.of_file (corpus name) with
  | Ok w -> w
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let stop_reason = function Wal.Clean -> "clean" | Wal.Corrupt r -> r

let check_corpus name ~records:n ~reason =
  let rs, stop = Wal.records (load name) in
  Alcotest.(check int) (name ^ ": record count") n (List.length rs);
  let r = stop_reason stop in
  Alcotest.(check bool)
    (Fmt.str "%s: stop reason %S starts with %S" name r reason)
    true
    (String.length r >= String.length reason && String.sub r 0 (String.length reason) = reason)

let test_corpus_pins () =
  check_corpus "base.wal" ~records:6 ~reason:"clean";
  check_corpus "truncated_tail.wal" ~records:6 ~reason:"truncated tail";
  check_corpus "torn_write.wal" ~records:6 ~reason:"torn write";
  check_corpus "bit_flip.wal" ~records:5 ~reason:"checksum mismatch"

let test_corpus_replay () =
  (* physical redo over the valid corpus prefix applies cleanly and
     never raises, corrupt tails included *)
  List.iter
    (fun name ->
      let store = Store.create () in
      Store.add_doc store "/orders" (Term.elem ~ord:Term.Unordered "orders" []);
      Store.add_doc store "/status" (Term.elem "doc" [ Term.elem "state" [ Term.text "new" ] ]);
      match Wal.replay_store (load name) store with
      | Ok n -> Alcotest.(check bool) (name ^ ": some mutations applied") true (n >= 1)
      | Error e -> Alcotest.fail (name ^ ": replay failed: " ^ e))
    [ "base.wal"; "truncated_tail.wal"; "torn_write.wal"; "bit_flip.wal" ]

(* ---- transactional updates ------------------------------------------ *)

let test_apply_txn () =
  let store = Store.create () in
  Store.add_doc store "/a" (Term.elem ~ord:Term.Unordered "a" []);
  Store.add_doc store "/b" (Term.elem ~ord:Term.Unordered "b" []);
  let ins doc = Action.U_insert { doc; selector = []; at = None; content = Term.elem "x" [] } in
  (match Store.apply_txn store [ ins "/a"; ins "/b"; ins "/a" ] with
  | Ok (n, _) -> Alcotest.(check int) "all three applied" 3 n
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "a has both" 2
    (List.length (Term.children (Option.get (Store.doc store "/a"))));
  (* second mutation fails: nothing of the block survives *)
  (match Store.apply_txn store [ ins "/a"; ins "/missing" ] with
  | Ok _ -> Alcotest.fail "expected rollback"
  | Error _ -> ());
  Alcotest.(check int) "a rolled back" 2
    (List.length (Term.children (Option.get (Store.doc store "/a"))));
  Alcotest.(check int) "b untouched" 1
    (List.length (Term.children (Option.get (Store.doc store "/b"))))

(* the static guard: a transactional block whose constant targets span
   several hosts can never be atomic — Ruleset.validate rejects it at
   engine construction, procedure calls included *)
let test_static_cross_node_atomic () =
  (* two *explicit* hosts: provably cross-node whatever node loads the
     rule set.  (A bare "/local" target means "whoever loads me" — that
     mix is only decidable at run time, by ops.txn_update.) *)
  let atomic_two =
    Action.atomic
      [
        Action.insert ~doc:"one.example/a" (Construct.cel "x" []);
        Action.insert ~doc:"two.example/b" (Construct.cel "x" []);
      ]
  in
  let rs name action =
    Ruleset.make ~rules:[ Eca.make ~name:"r" ~on:(Event_query.on ~label:"t" (Qterm.var "E")) action ] name
  in
  let has_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (match node ~host:"a.example" (rs "bad" atomic_two) with
  | Ok _ -> Alcotest.fail "cross-node atomic accepted"
  | Error e ->
      Alcotest.(check bool) ("mentions several nodes: " ^ e) true (has_sub e "several nodes"));
  (* single-host block with several docs is fine *)
  let atomic_local =
    Action.atomic
      [
        Action.insert ~doc:"/one" (Construct.cel "x" []);
        Action.insert ~doc:"/two" (Construct.cel "x" []);
      ]
  in
  (match node ~host:"a.example" (rs "good" atomic_local) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("single-host atomic rejected: " ^ e));
  (* the check follows procedure calls *)
  let via_proc =
    Ruleset.make
      ~procedures:
        [
          ( "mirror",
            {
              Action.params = [];
              body = Action.insert ~doc:"other.example/mirror" (Construct.cel "x" []);
            } );
        ]
      ~rules:
        [
          Eca.make ~name:"r"
            ~on:(Event_query.on ~label:"t" (Qterm.var "E"))
            (Action.atomic
               [
                 Action.insert ~doc:"one.example/local" (Construct.cel "x" []);
                 Action.call "mirror" [];
               ]);
        ]
      "via_proc"
  in
  match node ~host:"a.example" via_proc with
  | Ok _ -> Alcotest.fail "cross-node atomic through a procedure accepted"
  | Error _ -> ()

(* the dynamic guard: a variable target that resolves to a remote store
   at run time slips past the static check; ops.txn_update must reject
   it and the whole block must roll back (including the local insert
   that already applied) *)
let test_runtime_cross_node_atomic () =
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"mix"
            ~on:(Event_query.on ~label:"go" (Qterm.el "go" [ Qterm.pos (Qterm.el "target" [ Qterm.pos (Qterm.var "D") ]) ]))
            (Action.atomic
               [
                 Action.insert ~doc:"/local" (Construct.cel "x" []);
                 Action.Insert
                   { doc = Builtin.ovar "D"; selector = []; at = None; content = Construct.cel "y" [] };
               ]);
        ]
      "dyn"
  in
  let n = node_exn ~host:"a.example" rules in
  Store.add_doc (Node.store n) "/local" (Term.elem ~ord:Term.Unordered "local" []);
  let net = Network.create () in
  Network.add_node_exn net n;
  Network.add_node_exn net (node_exn ~accept_updates:true ~host:"b.example" (Ruleset.make "b"));
  Network.inject net ~to_:"a.example" ~label:"go"
    (Term.elem "go" [ Term.elem "target" [ Term.text "b.example/mirror" ] ]);
  ignore (Network.run_until_quiet net ());
  Alcotest.(check int) "local insert rolled back" 0
    (List.length (Term.children (Option.get (Store.doc (Node.store n) "/local"))));
  Alcotest.(check bool) "transaction failure recorded" true (Node.errors n <> []);
  Alcotest.(check int) "no update shipped" 0 (Network.transport_stats net).Transport.updates

(* ---- node checkpoint / crash / recover ------------------------------ *)

let counting_rules =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"count"
          ~on:(Event_query.on ~label:"ping" (Qterm.var "E"))
          (Action.seq
             [
               Action.insert ~doc:"/seen" (Construct.cel "x" [ Construct.cvar "E" ]);
               Action.log "ping %s" [ Builtin.ovar "E" ];
             ]);
      ]
    "counting"

let test_node_recover_identity () =
  if Escape.no_wal then () (* amnesic hatch: nothing to recover from *)
  else begin
    Event.reset_ids ();
    Message.reset_ids ();
    let n = node_exn ~snapshot_every:3 ~host:"a.example" counting_rules in
    Store.add_doc (Node.store n) "/seen" (Term.elem ~ord:Term.Unordered "seen" []);
    Node.checkpoint n ~at:Clock.origin (* genesis: provisioned docs predate the log *);
    let net = Network.create () in
    Network.add_node_exn net n;
    for i = 1 to 7 do
      Network.run net ~until:(i * 10);
      Network.inject net ~to_:"a.example" ~label:"ping" (Term.elem "p" [ Term.int i ])
    done;
    ignore (Network.run_until_quiet net ());
    let doc () = Xml.to_string (Term.strip_ids (Option.get (Store.doc (Node.store n) "/seen"))) in
    let before = (Node.firings n, Node.logs n, doc ()) in
    Alcotest.(check bool) "wal live" true (Node.wal n <> None);
    Node.crash n;
    Alcotest.(check int) "crash wipes volatile state" 0 (Node.firings n);
    Alcotest.(check (list string)) "crash wipes logs" [] (Node.logs n);
    (match Node.recover n (Network.context_for net n) with
    | Ok replayed -> Alcotest.(check bool) "some records replayed" true (replayed >= 0)
    | Error e -> Alcotest.fail ("recover: " ^ e));
    let after = (Node.firings n, Node.logs n, doc ()) in
    let f0, l0, d0 = before and f1, l1, d1 = after in
    Alcotest.(check int) "firings recovered" f0 f1;
    Alcotest.(check (list string)) "logs recovered" l0 l1;
    Alcotest.(check string) "store recovered" d0 d1;
    (* redelivering an already-processed event is a dedup hit, not a replay *)
    let dups0 = Node.duplicate_events n in
    let ev = Event.make ~id:max_int ~occurred_at:100 ~label:"ping" (Term.elem "p" [ Term.int 1 ]) in
    ignore (Node.receive_event n (Network.context_for net n) ev);
    ignore (Node.receive_event n (Network.context_for net n) ev);
    Alcotest.(check int) "second delivery deduplicated" (dups0 + 1) (Node.duplicate_events n)
  end

(* ---- crash-injection differential ----------------------------------- *)

(* Three hosts: a source fans numbered ticks to a worker; the worker
   records each job, keeps a count-based aggregation window (composite
   event state — exactly what the snapshot tail must re-prime), mirrors
   a record into the sink's store by remote update, and notifies the
   sink; the sink logs and records each notification.  We kill one host
   mid-flight, recover it from its WAL, and require convergence with
   the uninterrupted oracle. *)

let src_prog =
  {|ruleset src {
      rule emit: on tick{{value[var V]}}
        do { insert into "/sent" s[$V];
             raise to "mid.example" job job[value[$V]] }
    }|}

let mid_prog =
  {|ruleset mid {
      rule take: on job{{value[var V]}}
        do { insert into "/jobs" j[$V];
             insert into "sink.example/mirror" m[$V];
             raise to "sink.example" fin fin[value[$V]] }
      rule window: on avg($V) last 2 {job{{value[var V]}}} as A
        do insert into "/pairs" p[$A]
    }|}

let sink_prog =
  {|ruleset sink {
      rule seen: on fin{{value[var V]}}
        do { log "fin %s", $V; insert into "/seen" x[$V] }
    }|}

type obs = {
  o_clock : Clock.time;
  o_hosts : (string * int * string list) list;  (** host, firings, logs *)
  o_stores : (string * string) list;  (** (host/doc, xml, surrogate ids stripped) *)
}

let observe net nodes =
  {
    o_clock = Network.clock net;
    o_hosts = List.map (fun n -> (Node.host n, Node.firings n, Node.logs n)) nodes;
    o_stores =
      List.concat_map
        (fun n ->
          let store = Node.store n in
          List.map
            (fun d ->
              (Node.host n ^ d, Xml.to_string (Term.strip_ids (Option.get (Store.doc store d)))))
            (List.sort compare (Store.doc_names store)))
        nodes;
  }

(* messages held at a dead host's door are redelivered at recovery time,
   so reception *instants* legitimately differ from the oracle's; the
   converged quantities are contents, not timings — compare stores with
   children canonically ordered and logs as multisets *)
let canon_store (name, xml) =
  let t = Xml.parse_exn xml in
  let kids = List.sort compare (List.map Xml.to_string (Term.children t)) in
  (name, String.concat "|" kids)

let check_converged label (oracle : obs) (crashed : obs) =
  List.iter2
    (fun (h, f, logs) (h', f', logs') ->
      Alcotest.(check string) (label ^ ": host") h h';
      Alcotest.(check int) (label ^ ": " ^ h ^ " firings") f f';
      Alcotest.(check (list string))
        (label ^ ": " ^ h ^ " logs")
        (List.sort compare logs) (List.sort compare logs'))
    oracle.o_hosts crashed.o_hosts;
  Alcotest.(check (list (pair string string)))
    (label ^ ": stores")
    (List.map canon_store oracle.o_stores)
    (List.map canon_store crashed.o_stores)

(* sharded and sequential crashed runs must agree *exactly* — crash and
   recovery occurrences live on the owning partition's timeline *)
let check_identical label (a : obs) (b : obs) =
  Alcotest.(check int) (label ^ ": clock") a.o_clock b.o_clock;
  List.iter2
    (fun (h, f, logs) (h', f', logs') ->
      Alcotest.(check string) (label ^ ": host") h h';
      Alcotest.(check int) (label ^ ": " ^ h ^ " firings") f f';
      Alcotest.(check (list string)) (label ^ ": " ^ h ^ " logs") logs logs')
    a.o_hosts b.o_hosts;
  Alcotest.(check (list (pair string string))) (label ^ ": stores") a.o_stores b.o_stores

let run_crash_scenario ~domains ~faulty ~crash () =
  Event.reset_ids ();
  Message.reset_ids ();
  let faults =
    if faulty then
      Transport.fault_profile ~seed:11 ~drop_rate:0.1 ~dup_rate:0.12 ~max_jitter:4 ()
    else Transport.no_faults
  in
  let net = Network.create ~faults ~domains () in
  let mk host prog extra =
    match node_of_program ?accept_updates:extra ~snapshot_every:4 ~host prog with
    | Ok n -> n
    | Error e -> Alcotest.fail (host ^ ": " ^ e)
  in
  let src = mk "src.example" src_prog None in
  let mid = mk "mid.example" mid_prog None in
  let sink = mk "sink.example" sink_prog (Some true) in
  Store.add_doc (Node.store src) "/sent" (Term.elem ~ord:Term.Unordered "sent" []);
  Store.add_doc (Node.store mid) "/jobs" (Term.elem ~ord:Term.Unordered "jobs" []);
  Store.add_doc (Node.store mid) "/pairs" (Term.elem ~ord:Term.Unordered "pairs" []);
  Store.add_doc (Node.store sink) "/mirror" (Term.elem ~ord:Term.Unordered "mirror" []);
  Store.add_doc (Node.store sink) "/seen" (Term.elem ~ord:Term.Unordered "seen" []);
  (* genesis checkpoints: out-of-band provisioning predates the log *)
  List.iter (fun n -> Node.checkpoint n ~at:Clock.origin) [ src; mid; sink ];
  List.iter (Network.add_node_exn net) [ src; mid; sink ];
  (match crash with
  | None -> ()
  | Some (host, at, recover_at) -> Network.schedule_crash net ~host ~at ~recover_at ());
  for i = 1 to 12 do
    Network.run net ~until:(i * 10);
    Network.inject net ~to_:"src.example" ~label:"tick"
      (Term.elem "tick" [ Term.elem "value" [ Term.num (float_of_int i) ] ])
  done;
  ignore (Network.run_until_quiet net ());
  (observe net [ src; mid; sink ], Network.crashes net, Network.recoveries net)

let test_crash_differential ~faulty ~victim () =
  let crash = Some (victim, 57, 83) in
  (* crashed sequential vs crashed sharded: bit-identical *)
  let seq, c1, r1 = run_crash_scenario ~domains:1 ~faulty ~crash () in
  Alcotest.(check int) "one crash" 1 c1;
  Alcotest.(check int) "one recovery" 1 r1;
  let par, _, _ = run_crash_scenario ~domains:4 ~faulty ~crash () in
  check_identical (victim ^ " domains=4") seq par;
  (* crashed vs the uninterrupted oracle: converged — only meaningful
     when the WAL is live; under XCHANGE_NO_WAL the same schedule
     exercises amnesic reboot (no convergence claim, but no wreckage
     either: the runs above must already have completed cleanly) *)
  if not Escape.no_wal then begin
    let oracle, c0, _ = run_crash_scenario ~domains:1 ~faulty ~crash:None () in
    Alcotest.(check int) "oracle saw no crash" 0 c0;
    check_converged (victim ^ " vs oracle") oracle seq
  end

(* the worker holds composite-event window state and outbound effects *)
let test_crash_mid_clean () = test_crash_differential ~faulty:false ~victim:"mid.example" ()
let test_crash_mid_faulty () = test_crash_differential ~faulty:true ~victim:"mid.example" ()

(* the sink exercises the Remote_update log path on recovery *)
let test_crash_sink_clean () = test_crash_differential ~faulty:false ~victim:"sink.example" ()
let test_crash_sink_faulty () = test_crash_differential ~faulty:true ~victim:"sink.example" ()

(* property: convergence holds for *arbitrary* crash/recovery instants,
   not just the hand-picked ones above *)
let crash_times_arb =
  QCheck.make
    ~print:(fun (a, d) -> Fmt.str "crash_at=%d recover_after=%d" a d)
    QCheck.Gen.(pair (int_range 5 110) (int_range 3 50))

let test_crash_property =
  QCheck.Test.make ~count:6 ~name:"recovery converges for arbitrary crash times" crash_times_arb
    (fun (at, delta) ->
      if Escape.no_wal then true
      else begin
        let crash = Some ("mid.example", at, at + delta) in
        let crashed, c, r = run_crash_scenario ~domains:1 ~faulty:false ~crash () in
        let oracle, _, _ = run_crash_scenario ~domains:1 ~faulty:false ~crash:None () in
        check_converged (Fmt.str "crash@%d+%d" at delta) oracle crashed;
        c = 1 && r = 1
      end)

let suite =
  ( "wal",
    [
      Alcotest.test_case "codec roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "mark/truncate rollback" `Quick test_mark_truncate;
      Alcotest.test_case "drop_corrupt_tail" `Quick test_drop_corrupt_tail;
      Alcotest.test_case "corruption corpus pins" `Quick test_corpus_pins;
      Alcotest.test_case "corpus replay never raises" `Quick test_corpus_replay;
      Alcotest.test_case "store transactions roll back" `Quick test_apply_txn;
      Alcotest.test_case "static cross-node atomic rejected" `Quick test_static_cross_node_atomic;
      Alcotest.test_case "runtime cross-node atomic rolls back" `Quick test_runtime_cross_node_atomic;
      Alcotest.test_case "crash/recover restores the node exactly" `Quick test_node_recover_identity;
      Alcotest.test_case "crash differential: worker (clean)" `Quick test_crash_mid_clean;
      Alcotest.test_case "crash differential: worker (faulty)" `Quick test_crash_mid_faulty;
      Alcotest.test_case "crash differential: sink (clean)" `Quick test_crash_sink_clean;
      Alcotest.test_case "crash differential: sink (faulty)" `Quick test_crash_sink_faulty;
      QCheck_alcotest.to_alcotest test_crash_property;
    ] )
