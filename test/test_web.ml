open Xchange

let term = Alcotest.testable Term.pp Term.equal

(* ---- Uri / Message / Transport unit tests ---- *)

let test_uri () =
  let u = Uri.parse "http://shop.example/orders/new" in
  Alcotest.(check string) "host" "shop.example" u.Uri.host;
  Alcotest.(check string) "path" "/orders/new" u.Uri.path;
  Alcotest.(check string) "no scheme" "shop.example" (Uri.host "shop.example/x");
  Alcotest.(check string) "bare host" "/" (Uri.path "shop.example");
  Alcotest.(check string) "roundtrip" "a/b" (Uri.to_string (Uri.parse "a/b"))

let test_message_size () =
  let e = Event.make ~occurred_at:0 ~label:"x" (Term.elem "x" [ Term.text "payload" ]) in
  let m = Message.make ~from_host:"a" ~to_host:"b" ~sent_at:0 (Message.Event e) in
  Alcotest.(check bool) "positive size" true (Message.size_bytes m > 40)

let test_transport_ordering () =
  let sched = Sched.create () in
  let tr = Transport.create ~sched ~latency:(fun ~from:_ ~to_:_ -> 10) () in
  let delivered = ref [] in
  Transport.on_deliver tr (fun m -> delivered := m.Message.msg_id :: !delivered);
  let msg t =
    Message.make ~from_host:"a" ~to_host:"b" ~sent_at:t
      (Message.Get { req_id = t; path = "/"; kind = Message.Doc })
  in
  Transport.send tr (msg 5);
  Transport.send tr (msg 1);
  Alcotest.(check (option int)) "earliest first" (Some 11) (Sched.next_due sched);
  Sched.run_until sched 11;
  (* the message stamped later but due earlier is delivered first *)
  Alcotest.(check int) "only the due one" 1 (List.length !delivered);
  Alcotest.(check int) "one pending" 1 (Transport.pending tr);
  Alcotest.(check int) "stats count both" 2 (Transport.stats tr).Transport.messages;
  Sched.run_until sched 100;
  Alcotest.(check int) "both delivered in due order" 2 (List.length !delivered);
  Alcotest.(check int) "nothing pending" 0 (Transport.pending tr)

(* ---- end-to-end scenarios over the simulated Web ---- *)

let order item = Term.elem "order" [ Term.elem "item" [ Term.text item ] ]

(* A shop that forwards orders to a warehouse (push), which records them. *)
let shop_rules () =
  let on_order =
    Event_query.on ~label:"order" (Qterm.el "order" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "I") ]) ])
  in
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"forward" ~on:on_order
          (Action.raise_event ~to_:"warehouse.example" ~label:"pick"
             (Construct.cel "pick" [ Construct.cel "item" [ Construct.cvar "I" ] ]));
      ]
    "shop"

let warehouse_rules () =
  let on_pick =
    Event_query.on ~label:"pick" (Qterm.el "pick" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "I") ]) ])
  in
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"store-pick" ~on:on_pick
          (Action.insert ~doc:"/picks" (Construct.cel "p" [ Construct.cvar "I" ]));
      ]
    "warehouse"

let test_push_pipeline () =
  let net = Network.create () in
  let shop = node_exn ~host:"shop.example" (shop_rules ()) in
  let warehouse = node_exn ~host:"warehouse.example" (warehouse_rules ()) in
  Store.add_doc (Node.store warehouse) "/picks" (Term.elem ~ord:Term.Unordered "picks" []);
  Network.add_node_exn net shop;
  Network.add_node_exn net warehouse;
  Network.inject net ~to_:"shop.example" ~label:"order" (order "ball");
  Network.inject net ~to_:"shop.example" ~label:"order" (order "shoe");
  ignore (Network.run_until_quiet net ());
  let picks = Option.get (Store.doc (Node.store warehouse) "/picks") in
  Alcotest.(check int) "both orders reached the warehouse" 2 (List.length (Term.children picks));
  Alcotest.(check bool) "network quiescent" true (Network.quiescent net);
  (* 2 injected + 2 forwarded *)
  Alcotest.(check int) "messages" 4 (Network.transport_stats net).Transport.messages

let test_remote_condition_query () =
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"check" ~on:(Event_query.on ~label:"probe" (Qterm.var "E"))
            ~if_:
              (Condition.In
                 ( Condition.Remote "data.example/catalog",
                   Qterm.el "product" [ Qterm.pos (Qterm.var "P") ] ))
            (Action.log "found %s" [ Builtin.ovar "P" ]);
        ]
      "asker"
  in
  let net = Network.create () in
  let asker = node_exn ~host:"asker.example" rules in
  let data = node_exn ~host:"data.example" (Ruleset.make "empty") in
  Store.add_doc (Node.store data) "/catalog"
    (Term.elem ~ord:Term.Unordered "catalog" [ Term.elem "product" [ Term.text "ball" ] ]);
  Network.add_node_exn net asker;
  Network.add_node_exn net data;
  Network.inject net ~to_:"asker.example" ~label:"probe" (Term.text "?");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "remote data reached the condition" [ "found ball" ] (Node.logs asker);
  Alcotest.(check bool) "remote fetch accounted" true (Network.remote_fetches net > 0);
  Alcotest.(check bool) "GET/Response pair accounted" true
    ((Network.transport_stats net).Transport.gets > 0)

let test_update_events_trigger_rules () =
  (* an ECA rule derived from a production rule reacts to local updates *)
  let prod =
    {
      Production.name = "alarm";
      condition =
        Condition.In (Condition.Local "/stock", Qterm.el "low" [ Qterm.pos (Qterm.var "W") ]);
      action = Action.log "low stock: %s" [ Builtin.ovar "W" ];
    }
  in
  let eca = Result.get_ok (Derive.eca_of_production ~update_labels:[ "update" ] prod) in
  let writer =
    Eca.make ~name:"write" ~on:(Event_query.on ~label:"deplete" (Qterm.var "E"))
      (Action.insert ~doc:"/stock" (Construct.cel "low" [ Construct.ctext "widgets" ]))
  in
  let net = Network.create () in
  let n = node_exn ~host:"n.example" (Ruleset.make ~rules:[ writer; eca ] "s") in
  Store.add_doc (Node.store n) "/stock" (Term.elem ~ord:Term.Unordered "stock" []);
  Network.add_node_exn net n;
  Network.inject net ~to_:"n.example" ~label:"deplete" (Term.text "!");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "update event fired derived rule" [ "low stock: widgets" ]
    (Node.logs n)

let test_heartbeat_fires_absence () =
  (* a node with no traffic still detects absence via the heartbeat *)
  let q =
    Event_query.absent
      (Event_query.on ~label:"ping" (Qterm.var "E"))
      ~then_absent:(Event_query.on ~label:"pong" (Qterm.var "F"))
      ~for_:100
  in
  let rules = Ruleset.make ~rules:[ Eca.make ~name:"watch" ~on:q (Action.log "no pong!" []) ] "w" in
  let net = Network.create () in
  let n = node_exn ~host:"w.example" rules in
  Network.add_node_exn net n;
  Network.enable_heartbeat net ~period:50;
  Network.inject net ~to_:"w.example" ~label:"ping" (Term.text "x");
  Network.run net ~until:1000;
  Alcotest.(check (list string)) "absence detected on quiet node" [ "no pong!" ] (Node.logs n)

let test_poll_vs_push_latency () =
  let net = Network.create ~latency:(fun ~from:_ ~to_:_ -> 5) () in
  let producer = node_exn ~host:"prod.example" (Ruleset.make "p") in
  Store.add_doc (Node.store producer) "/feed" (Term.elem "feed" [ Term.int 1 ]);
  let consumer_rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"react" ~on:(Event_query.on ~label:Poll.changed_label (Qterm.var "D"))
            (Action.log "saw change" []);
        ]
      "c"
  in
  let consumer = node_exn ~host:"cons.example" consumer_rules in
  Network.add_node_exn net producer;
  Network.add_node_exn net consumer;
  let stats = Poll.attach net ~poller:"cons.example" ~target:"prod.example/feed" ~period:100 in
  Network.run net ~until:250;
  (* initial snapshot counts as the first change *)
  Alcotest.(check int) "initial snapshot" 1 (Poll.changes_seen stats);
  (* mutate the producer's document *)
  ignore
    (Store.apply (Node.store producer)
       (Action.U_replace { doc = "/feed"; selector = []; content = Term.elem "feed" [ Term.int 2 ] }));
  Network.run net ~until:1000;
  Alcotest.(check int) "change detected by polling" 2 (Poll.changes_seen stats);
  Alcotest.(check bool) "poll traffic happened" true ((Network.transport_stats net).Transport.gets >= 9);
  Alcotest.(check (list string)) "consumer rule ran" [ "saw change"; "saw change" ] (Node.logs consumer)

let test_cookie_roundtrip () =
  let net = Network.create () in
  let client = node_exn ~host:"client.example" (Cookie.client_ruleset ()) in
  Store.add_doc (Node.store client) Cookie.cookies_doc (Cookie.empty_jar ());
  let server_rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"recv" ~on:(Event_query.on ~label:"cookie" (Qterm.el "cookie" [ Qterm.pos (Qterm.el "value" [ Qterm.pos (Qterm.var "V") ]) ]))
            (Action.log "cookie says %s" [ Builtin.ovar "V" ]);
        ]
      "server"
  in
  let server = node_exn ~host:"server.example" server_rules in
  Network.add_node_exn net client;
  Network.add_node_exn net server;
  Network.inject net ~sender:"server.example" ~to_:"client.example" ~label:"set-cookie"
    (Cookie.set_cookie ~name:"basket" ~value:"3 balls");
  ignore (Network.run_until_quiet net ());
  Network.inject net ~sender:"server.example" ~to_:"client.example" ~label:"get-cookie"
    (Cookie.get_cookie ~name:"basket" ~reply_to:"server.example");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "server got the cookie back" [ "cookie says 3 balls" ]
    (Node.logs server);
  (* overwrite semantics *)
  Network.inject net ~sender:"server.example" ~to_:"client.example" ~label:"set-cookie"
    (Cookie.set_cookie ~name:"basket" ~value:"4 balls");
  ignore (Network.run_until_quiet net ());
  let jar = Option.get (Store.doc (Node.store client) Cookie.cookies_doc) in
  Alcotest.(check int) "one cookie per name" 1 (List.length (Term.children jar))

let test_rules_as_messages () =
  (* Thesis 11: ship a rule set to a node as an event *)
  let net = Network.create () in
  let n = node_exn ~accept_rules:true ~host:"n.example" (Ruleset.make "base") in
  Network.add_node_exn net n;
  Alcotest.(check int) "no rules yet" 0 (List.length (Engine.rule_names (Node.engine n)));
  let incoming =
    Result.get_ok
      (Parser.parse_ruleset
         {|ruleset patch { rule greet: on hello{{var X}} do log "hi %s", $X }|})
  in
  Network.inject net ~to_:"n.example" ~label:Node.rules_label (Meta.ruleset_to_term incoming);
  ignore (Network.run_until_quiet net ());
  Alcotest.(check int) "rule installed" 1 (List.length (Engine.rule_names (Node.engine n)));
  Network.inject net ~to_:"n.example" ~label:"hello" (Term.elem "hello" [ Term.text "world" ]);
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "loaded rule fires" [ "hi world" ] (Node.logs n)

let test_rules_rejected_without_optin () =
  let net = Network.create () in
  let n = node_exn ~accept_rules:false ~host:"n.example" (Ruleset.make "base") in
  Network.add_node_exn net n;
  let incoming = Ruleset.make "evil" in
  Network.inject net ~to_:"n.example" ~label:Node.rules_label (Meta.ruleset_to_term incoming);
  ignore (Network.run_until_quiet net ());
  Alcotest.(check int) "not installed" 0 (List.length (Engine.rule_names (Node.engine n)))

let test_volatile_event_dropped_in_transit () =
  let rules =
    Ruleset.make
      ~rules:[ Eca.make ~name:"r" ~on:(Event_query.on ~label:"flash" (Qterm.var "E")) (Action.log "got it" []) ]
      "s"
  in
  let net = Network.create ~latency:(fun ~from:_ ~to_:_ -> 500) () in
  let n = node_exn ~host:"slow.example" rules in
  Network.add_node_exn net n;
  (* ttl 100ms but 500ms latency: expired on arrival (Thesis 4) *)
  Network.inject net ~to_:"slow.example" ~label:"flash" ~ttl:100 (Term.text "x");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "expired event never processed" [] (Node.logs n)

let suite =
  ( "web",
    [
      Alcotest.test_case "uri parsing" `Quick test_uri;
      Alcotest.test_case "message sizing" `Quick test_message_size;
      Alcotest.test_case "transport ordering and stats" `Quick test_transport_ordering;
      Alcotest.test_case "push pipeline shop->warehouse" `Quick test_push_pipeline;
      Alcotest.test_case "remote documents in conditions (Thesis 2)" `Quick test_remote_condition_query;
      Alcotest.test_case "update events trigger derived rules" `Quick test_update_events_trigger_rules;
      Alcotest.test_case "heartbeat fires absence on quiet nodes" `Quick test_heartbeat_fires_absence;
      Alcotest.test_case "polling detects changes (Thesis 3 baseline)" `Quick test_poll_vs_push_latency;
      Alcotest.test_case "cookies via rules (Section 2)" `Quick test_cookie_roundtrip;
      Alcotest.test_case "rule sets as messages (Thesis 11)" `Quick test_rules_as_messages;
      Alcotest.test_case "rule loading requires opt-in" `Quick test_rules_rejected_without_optin;
      Alcotest.test_case "expired events dropped (Thesis 4)" `Quick test_volatile_event_dropped_in_transit;
    ] )

let _ = term
