open Xchange

(* ---- authentication ---- *)

let test_tokens () =
  let reg = Auth.create () in
  Auth.register reg "franz" ~secret:"s3cret";
  let token = Option.get (Auth.token reg "franz" ~message:"order#1") in
  Alcotest.(check bool) "valid token" true (Auth.authenticate reg "franz" ~message:"order#1" ~token);
  Alcotest.(check bool) "wrong message" false (Auth.authenticate reg "franz" ~message:"order#2" ~token);
  Alcotest.(check bool) "wrong token" false
    (Auth.authenticate reg "franz" ~message:"order#1" ~token:"ffff");
  Alcotest.(check bool) "unknown principal" false
    (Auth.authenticate reg "mary" ~message:"order#1" ~token);
  Alcotest.(check bool) "token needs registration" true (Auth.token reg "mary" ~message:"x" = None)

let test_certificates () =
  let reg = Auth.create () in
  Auth.register reg "bbb.org" ~secret:"issuer-key";
  let cert = Option.get (Auth.issue reg ~issuer:"bbb.org" ~subject:"shop" ~claim:"member") in
  Alcotest.(check bool) "verifies" true (Auth.verify reg cert);
  Alcotest.(check bool) "tampered claim fails" false
    (Auth.verify reg { cert with Auth.claim = "gold-member" });
  let strangers = Auth.create () in
  Alcotest.(check bool) "unknown issuer fails" false (Auth.verify strangers cert);
  (* term embedding *)
  match Auth.certificate_of_term (Auth.certificate_to_term cert) with
  | Ok c -> Alcotest.(check bool) "roundtrip verifies" true (Auth.verify reg c)
  | Error e -> Alcotest.fail e

(* ---- authorization ---- *)

let shop_policy =
  [
    Authz.entry ~principal:"banned-*" ~resource:"*" Authz.Deny;
    Authz.entry ~principal:"admin" ~resource:"*" Authz.Allow;
    Authz.entry ~principal:"*" ~resource:"/catalog*" ~operation:Authz.Read Authz.Allow;
    Authz.entry ~principal:"customer-*" ~resource:"/orders/*" ~operation:Authz.Write Authz.Allow;
  ]

let test_authz_decisions () =
  let allowed = Authz.allowed shop_policy in
  Alcotest.(check bool) "public catalog" true
    (allowed ~principal:"anyone" ~resource:"/catalog/balls" ~operation:Authz.Read);
  Alcotest.(check bool) "catalog not writable" false
    (allowed ~principal:"anyone" ~resource:"/catalog/balls" ~operation:Authz.Write);
  Alcotest.(check bool) "customer writes orders" true
    (allowed ~principal:"customer-7" ~resource:"/orders/7" ~operation:Authz.Write);
  Alcotest.(check bool) "default deny" false
    (allowed ~principal:"customer-7" ~resource:"/admin" ~operation:Authz.Read);
  Alcotest.(check bool) "first match wins" false
    (allowed ~principal:"banned-admin" ~resource:"/catalog" ~operation:Authz.Read);
  Alcotest.(check bool) "admin sees all" true
    (allowed ~principal:"admin" ~resource:"/anything" ~operation:Authz.Invoke)

let test_authz_guard_condition () =
  (* the guard compiles into a pure condition on the bound principal *)
  let guard = Authz.guard shop_policy ~principal_var:"P" ~resource:"/catalog/x" ~operation:Authz.Read Condition.True in
  let env = Condition.env_of_docs [] in
  let holds p =
    let subst = Option.get (Subst.of_list [ ("P", Term.text p) ]) in
    Condition.holds env subst guard
  in
  Alcotest.(check bool) "wildcard allows" true (holds "anyone");
  Alcotest.(check bool) "deny prefix blocks" false (holds "banned-guy");
  let strict =
    Authz.guard shop_policy ~principal_var:"P" ~resource:"/orders/1" ~operation:Authz.Write Condition.True
  in
  let holds_strict p =
    let subst = Option.get (Subst.of_list [ ("P", Term.text p) ]) in
    Condition.holds env subst strict
  in
  Alcotest.(check bool) "customer allowed" true (holds_strict "customer-9");
  Alcotest.(check bool) "outsider denied" false (holds_strict "visitor")

(* ---- accounting (double reactivity) ---- *)

let test_accounting_rules () =
  let service =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"serve" ~on:(Event_query.on ~label:"order" (Qterm.var "E"))
            (Action.log "served" []);
        ]
      "service"
  in
  let accounting = Accounting.ruleset ~service_labels:[ "order"; "quote" ] () in
  let net = Network.create () in
  let n =
    node_exn ~host:"shop.example" (Ruleset.make ~children:[ service; accounting ] "root")
  in
  Store.add_doc (Node.store n) Accounting.default_log_doc (Accounting.log_document ());
  Network.add_node_exn net n;
  for _ = 1 to 3 do
    Network.inject net ~to_:"shop.example" ~label:"order" (Term.elem "order" [])
  done;
  Network.inject net ~to_:"shop.example" ~label:"quote" (Term.elem "quote" []);
  Network.inject net ~to_:"shop.example" ~label:"untracked" (Term.elem "x" []);
  ignore (Network.run_until_quiet net ());
  (* the service kept serving *)
  Alcotest.(check int) "service unaffected" 3 (List.length (Node.logs n));
  let usages = Accounting.summary (Node.store n) () in
  Alcotest.(check int) "two services tracked" 2 (List.length usages);
  Alcotest.(check int) "order count" 3
    (List.fold_left (fun acc u -> if u.Accounting.service = "order" then u.Accounting.count else acc) 0 usages);
  Alcotest.(check int) "total" 4 (Accounting.total (Node.store n) ());
  let amount = Accounting.bill ~rates:[ ("order", 2.5); ("quote", 1.) ] usages in
  Alcotest.(check (float 1e-9)) "bill" 8.5 amount

(* ---- trust negotiation (Thesis 11) ---- *)

let customer =
  {
    Trust.name = "franz";
    credentials = [ "credit-card"; "student-id" ];
    policies =
      [
        Trust.policy ~sensitive:true ~item:"credit-card" [ [ "bbb-membership" ] ];
        Trust.policy ~sensitive:true ~item:"student-id" Trust.never;
      ];
  }

let shop =
  {
    Trust.name = "fussbaelle.biz";
    credentials = [ "bbb-membership"; "purchase"; "tax-records" ];
    policies =
      [
        Trust.policy ~item:"purchase" [ [ "credit-card" ] ];
        Trust.policy ~item:"bbb-membership" Trust.freely;
        Trust.policy ~sensitive:true ~item:"tax-records" Trust.never;
      ];
  }

let test_reactive_negotiation_succeeds () =
  let o =
    Trust.negotiate ~strategy:Trust.Reactive ~requester:customer ~responder:shop
      ~goal:"purchase" ()
  in
  Alcotest.(check bool) "deal closed" true o.Trust.granted;
  Alcotest.(check bool) "few rounds" true (o.Trust.rounds <= 5);
  (* only relevant policies travelled: purchase, credit-card, bbb-membership *)
  Alcotest.(check bool) "relevant policies only" true (o.Trust.policies_sent <= 3);
  Alcotest.(check int) "no needless sensitive disclosure" 0 o.Trust.sensitive_policies_leaked;
  (* the credit card was actually disclosed at the end *)
  Alcotest.(check bool) "credential flow" true (o.Trust.credentials_sent >= 3)

let test_eager_leaks_and_costs_more () =
  let reactive =
    Trust.negotiate ~strategy:Trust.Reactive ~requester:customer ~responder:shop
      ~goal:"purchase" ()
  in
  let eager =
    Trust.negotiate ~strategy:Trust.Eager ~requester:customer ~responder:shop ~goal:"purchase" ()
  in
  Alcotest.(check bool) "eager also succeeds" true eager.Trust.granted;
  Alcotest.(check bool) "eager ships more policies" true
    (eager.Trust.policies_sent > reactive.Trust.policies_sent);
  Alcotest.(check bool) "eager ships more bytes" true (eager.Trust.bytes > reactive.Trust.bytes);
  Alcotest.(check bool) "eager leaks sensitive policies" true
    (eager.Trust.sensitive_policies_leaked > 0)

let test_negotiation_stuck () =
  let paranoid =
    {
      Trust.name = "scrooge";
      credentials = [ "gold" ];
      policies = [ Trust.policy ~item:"gold" Trust.never ];
    }
  in
  let o =
    Trust.negotiate ~strategy:Trust.Reactive ~requester:customer ~responder:paranoid
      ~goal:"gold" ()
  in
  Alcotest.(check bool) "no deal" false o.Trust.granted;
  Alcotest.(check bool) "terminates" true (o.Trust.rounds <= 20)

let test_policies_are_rulesets () =
  (* meta-circularity: the wire format of a policy is an XChange ruleset *)
  let rs = Trust.policy_ruleset ~party:"franz" shop.Trust.policies in
  Alcotest.(check int) "one rule per policy" 3 (List.length rs.Ruleset.rules);
  (* and it can be read back *)
  let read = Trust.ruleset_policies rs in
  Alcotest.(check int) "policies recovered" 3 (List.length read);
  Alcotest.(check (option (list (list string)))) "purchase requirement survives"
    (Some [ [ "credit-card" ] ])
    (List.assoc_opt "purchase" read);
  (* ... even after travelling through Meta reification *)
  let rs' = Result.get_ok (Meta.ruleset_of_term (Meta.ruleset_to_term rs)) in
  Alcotest.(check int) "wire roundtrip" 3 (List.length (Trust.ruleset_policies rs'))

let test_policy_ruleset_is_loadable () =
  (* a received policy ruleset is an executable rule set: loading it into
     an engine and requesting an unlocked item raises a disclosure *)
  let rs = Trust.policy_ruleset ~party:"franz" [ Trust.policy ~item:"bbb-membership" Trust.freely ] in
  let net = Network.create () in
  let n = node_exn ~host:"shop.example" rs in
  Store.add_doc (Node.store n) "/disclosed" (Term.elem ~ord:Term.Unordered "disclosed" []);
  Network.add_node_exn net n;
  Network.inject net ~to_:"shop.example" ~label:"request"
    (Term.elem "request" [ Term.elem "item" [ Term.text "bbb-membership" ] ]);
  ignore (Network.run_until_quiet net ());
  (* the disclose event went to party "franz" — host unknown, dropped, but
     the firing happened *)
  Alcotest.(check int) "policy rule fired" 1 (Node.firings n)

let suite =
  ( "aaa",
    [
      Alcotest.test_case "shared-secret tokens" `Quick test_tokens;
      Alcotest.test_case "certificates" `Quick test_certificates;
      Alcotest.test_case "authorization decisions" `Quick test_authz_decisions;
      Alcotest.test_case "authorization as rule condition" `Quick test_authz_guard_condition;
      Alcotest.test_case "accounting is double reactivity" `Quick test_accounting_rules;
      Alcotest.test_case "reactive negotiation closes the deal" `Quick test_reactive_negotiation_succeeds;
      Alcotest.test_case "eager strategy costs more and leaks" `Quick test_eager_leaks_and_costs_more;
      Alcotest.test_case "hopeless negotiation terminates" `Quick test_negotiation_stuck;
      Alcotest.test_case "policies are rule sets (meta-circularity)" `Quick test_policies_are_rulesets;
      Alcotest.test_case "policy rule sets are executable" `Quick test_policy_ruleset_is_loadable;
    ] )
