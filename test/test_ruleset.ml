open Xchange

let nop_rule name =
  Eca.make ~name ~on:(Event_query.on (Qterm.var "E")) Action.Nop

let call_rule name proc =
  Eca.make ~name ~on:(Event_query.on (Qterm.var "E")) (Action.call proc [])

let proc name = (name, { Action.params = []; body = Action.Nop })

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_qualified_names () =
  let child = Ruleset.make ~rules:[ nop_rule "inner" ] "billing" in
  let root = Ruleset.make ~rules:[ nop_rule "outer" ] ~children:[ child ] "shop" in
  let names = List.map (fun (n, _, _) -> n) (Ruleset.scoped_rules root) in
  Alcotest.(check (list string)) "qualified" [ "shop.outer"; "shop.billing.inner" ] names;
  Alcotest.(check int) "count" 2 (Ruleset.rule_count root);
  Alcotest.(check bool) "find by qualified name" true
    (Ruleset.find_rule root "shop.billing.inner" <> None);
  Alcotest.(check bool) "unknown name" true (Ruleset.find_rule root "shop.nope" = None)

let test_lexical_scoping () =
  let child =
    Ruleset.make ~rules:[ call_rule "r" "ship" ] ~procedures:[ proc "ship" ] "inner"
  in
  let root =
    Ruleset.make
      ~procedures:[ ("ship", { Action.params = [ "X" ]; body = Action.Nop }); proc "audit" ]
      ~children:[ child ] "outer"
  in
  let scopes = Ruleset.scoped_rules root in
  let _, scope, _ = List.hd scopes in
  (* inner 'ship' (0 params) shadows the outer one (1 param) *)
  (match Ruleset.lookup_procedure scope "ship" with
  | Some p -> Alcotest.(check int) "inner shadows outer" 0 (List.length p.Action.params)
  | None -> Alcotest.fail "ship not resolved");
  (* ancestors remain visible *)
  Alcotest.(check bool) "ancestor visible" true
    (Ruleset.lookup_procedure scope "audit" <> None);
  Alcotest.(check bool) "unknown rejected" true (Ruleset.lookup_procedure scope "ufo" = None)

let test_name_clash_isolation () =
  (* sibling rule sets may reuse names without interference (Thesis 9:
     scopes alleviate name clashes) *)
  let a = Ruleset.make ~rules:[ call_rule "r" "go" ] ~procedures:[ proc "go" ] "a" in
  let b =
    Ruleset.make ~rules:[ call_rule "r" "go" ]
      ~procedures:[ ("go", { Action.params = [ "X"; "Y" ]; body = Action.Nop }) ]
      "b"
  in
  let root = Ruleset.make ~children:[ a; b ] "root" in
  (match Ruleset.validate root with Ok () -> () | Error e -> Alcotest.fail e);
  let scope_of rule_name =
    let _, scope, _ =
      List.find (fun (n, _, _) -> n = rule_name) (Ruleset.scoped_rules root)
    in
    scope
  in
  let pa = Option.get (Ruleset.lookup_procedure (scope_of "root.a.r") "go") in
  let pb = Option.get (Ruleset.lookup_procedure (scope_of "root.b.r") "go") in
  Alcotest.(check bool) "each sees its own" true
    (List.length pa.Action.params <> List.length pb.Action.params)

let test_validate_duplicates () =
  let dup_rules = Ruleset.make ~rules:[ nop_rule "r"; nop_rule "r" ] "s" in
  (match Ruleset.validate dup_rules with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate rule names accepted");
  let dup_procs = Ruleset.make ~procedures:[ proc "p"; proc "p" ] "s" in
  (match Ruleset.validate dup_procs with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate procedure names accepted");
  (* sibling sets with the same name collide in qualified-id space:
     their rules would shadow each other silently (find_rule, stats and
     removal all address rules by qualified name), so validation must
     reject the tree before the engine builds it *)
  let twin () = Ruleset.make ~rules:[ nop_rule "r" ] "twin" in
  let root = Ruleset.make ~children:[ twin (); twin () ] "root" in
  (match Ruleset.validate root with
  | Error e ->
      Alcotest.(check bool) "names the colliding id" true (contains e "root.twin.r")
  | Ok () -> Alcotest.fail "duplicate qualified rule ids accepted");
  match Engine.create root with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "engine built over shadowed rules"

let test_validate_unknown_procedure () =
  let rs = Ruleset.make ~rules:[ call_rule "r" "ghost" ] "s" in
  (match Ruleset.validate rs with
  | Error e -> Alcotest.(check bool) "mentions the callee" true (contains e "ghost")
  | Ok () -> Alcotest.fail "unknown procedure accepted");
  (* procedure bodies are checked too *)
  let rs2 =
    Ruleset.make
      ~procedures:[ ("p", { Action.params = []; body = Action.call "ghost" [] }) ]
      "s"
  in
  match Ruleset.validate rs2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown procedure in body accepted"

(* ---- Engine ---- *)

let shop_ruleset () =
  let on_order =
    Event_query.on ~label:"order" (Qterm.el "order" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "I") ]) ])
  in
  let record = Action.insert ~doc:"/orders" (Construct.cel "row" [ Construct.cvar "I" ]) in
  Ruleset.make ~rules:[ Eca.make ~name:"record-order" ~on:on_order record ] "shop"

let engine_harness () =
  let store = Store.create () in
  Store.add_doc store "/orders" (Term.elem ~ord:Term.Unordered "orders" []);
  let sent = ref [] in
  let ops =
    {
      Action.update = (fun u -> Result.map fst (Store.apply store u));
      txn_update = (fun u -> Result.map fst (Store.apply store u));
      send = (fun ~recipient ~label ~ttl:_ ~delay:_ payload -> sent := (recipient, label, payload) :: !sent);
      log = (fun _ -> ());
      now = (fun () -> 0);
      checkpoint = (fun () -> fun () -> ());
    }
  in
  (store, sent, ops)

let test_engine_fires_and_updates () =
  let engine = Engine.create_exn (shop_ruleset ()) in
  let store, _, ops = engine_harness () in
  let env = Store.env store in
  let order item =
    Event.make ~occurred_at:1 ~label:"order" (Term.elem "order" [ Term.elem "item" [ Term.text item ] ])
  in
  let outcome = Engine.handle_event engine ~env ~ops (order "ball") in
  Alcotest.(check int) "fired" 1 (List.length outcome.Engine.firings);
  Alcotest.(check int) "no errors" 0 (List.length outcome.Engine.errors);
  let outcome2 = Engine.handle_event engine ~env ~ops (order "shoe") in
  Alcotest.(check int) "fired again" 1 (List.length outcome2.Engine.firings);
  Alcotest.(check int) "both rows" 2
    (List.length (Term.children (Option.get (Store.doc store "/orders"))));
  Alcotest.(check int) "events seen" 2 (Engine.events_seen engine)

let test_engine_rejects_invalid () =
  let bad = Ruleset.make ~rules:[ call_rule "r" "ghost" ] "s" in
  (match Engine.create bad with Error _ -> () | Ok _ -> Alcotest.fail "invalid ruleset accepted");
  let bad_query =
    Ruleset.make ~rules:[ Eca.make ~name:"r" ~on:(Event_query.conj []) Action.Nop ] "s"
  in
  match Engine.create bad_query with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid event query accepted"

let test_engine_expired_events_dropped () =
  let engine = Engine.create_exn (shop_ruleset ()) in
  let store, _, ops = engine_harness () in
  let env = Store.env store in
  let stale =
    Event.make ~occurred_at:(-100) ~ttl:10 ~label:"order"
      (Term.elem "order" [ Term.elem "item" [ Term.text "x" ] ])
  in
  let outcome = Engine.handle_event engine ~env ~ops stale in
  Alcotest.(check int) "expired event ignored" 0 (List.length outcome.Engine.firings)

let test_engine_views_in_conditions () =
  let view =
    Deductive.rule ~view:"items"
      ~head:(Construct.cel "it" [ Construct.cvar "I" ])
      ~body:(Condition.In (Condition.Local "/orders", Qterm.el "row" [ Qterm.pos (Qterm.var "I") ]))
  in
  let rule =
    Eca.make ~name:"check" ~on:(Event_query.on ~label:"probe" (Qterm.var "E"))
      ~if_:(Condition.In (Condition.View "items", Qterm.el "it" [ Qterm.pos (Qterm.var "I") ]))
      (Action.log "have %s" [ Builtin.ovar "I" ])
  in
  let rs = Ruleset.make ~rules:[ rule ] ~views:[ view ] "s" in
  let engine = Engine.create_exn rs in
  let store, _, ops = engine_harness () in
  ignore
    (Store.apply store
       (Action.U_insert { doc = "/orders"; selector = []; at = None; content = Term.elem "row" [ Term.text "ball" ] }));
  let env = Store.env store in
  let outcome =
    Engine.handle_event engine ~env ~ops (Event.make ~occurred_at:1 ~label:"probe" (Term.text "?"))
  in
  Alcotest.(check int) "view answered the condition" 1 (List.length outcome.Engine.firings)

let test_engine_load_ruleset () =
  let engine = Engine.create_exn (shop_ruleset ()) in
  let extra = Ruleset.make ~rules:[ nop_rule "added" ] "patch" in
  match Engine.load_ruleset engine extra with
  | Error e -> Alcotest.fail e
  | Ok engine2 ->
      Alcotest.(check int) "rule added" 2 (List.length (Engine.rule_names engine2));
      Alcotest.(check int) "original untouched" 1 (List.length (Engine.rule_names engine))

let suite =
  ( "ruleset-engine",
    [
      Alcotest.test_case "qualified rule names" `Quick test_qualified_names;
      Alcotest.test_case "lexical procedure scoping" `Quick test_lexical_scoping;
      Alcotest.test_case "sibling name clashes are harmless" `Quick test_name_clash_isolation;
      Alcotest.test_case "duplicate names rejected" `Quick test_validate_duplicates;
      Alcotest.test_case "unresolved procedure calls rejected" `Quick test_validate_unknown_procedure;
      Alcotest.test_case "engine fires rules and updates stores" `Quick test_engine_fires_and_updates;
      Alcotest.test_case "engine rejects invalid rule sets" `Quick test_engine_rejects_invalid;
      Alcotest.test_case "expired events dropped on arrival" `Quick test_engine_expired_events_dropped;
      Alcotest.test_case "deductive views usable in conditions" `Quick test_engine_views_in_conditions;
      Alcotest.test_case "rule sets loadable at runtime (Thesis 11)" `Quick test_engine_load_ruleset;
    ] )
