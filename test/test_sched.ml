(* The discrete-event scheduler and the faulty-network behaviours built
   on it: one timeline for deliveries, tickers, and timer deadlines;
   real Get/Response round-trips with retry; fault injection (drop,
   duplicate, jitter) with eventual delivery and no duplicate firings. *)

open Xchange

(* ---- scheduler unit tests ---- *)

let test_sched_ordering () =
  let s = Sched.create () in
  let order = ref [] in
  let note name now = order := (name, now) :: !order in
  Sched.at s 30 (note "c");
  Sched.at s 10 (fun now ->
      note "a" now;
      (* scheduled from inside a thunk, still due within this run *)
      Sched.at s 20 (note "b"));
  Sched.at s ~holds:false 10 (note "a'");
  Alcotest.(check int) "two holding" 2 (Sched.pending s);
  Sched.run_until s 25;
  Alcotest.(check int) "clock reached" 25 (Sched.now s);
  (* a time in the past is clamped to now *)
  Sched.at s 5 (note "late");
  Sched.run_until s 100;
  Alcotest.(check (list (pair string int)))
    "time order, same-instant in insertion order, past clamped"
    [ ("a", 10); ("a'", 10); ("b", 20); ("late", 25); ("c", 30) ]
    (List.rev !order);
  Alcotest.(check int) "clock at end" 100 (Sched.now s);
  Alcotest.(check int) "nothing pending" 0 (Sched.pending s);
  Alcotest.(check int) "all executed" 5 (Sched.stats s).Sched.executed

let test_sched_cancellable () =
  let s = Sched.create () in
  let fired = ref 0 in
  let cancel = Sched.cancellable s 50 (fun _ -> incr fired) in
  Alcotest.(check int) "holds before cancel" 1 (Sched.pending s);
  cancel ();
  Alcotest.(check int) "released by cancel" 0 (Sched.pending s);
  Sched.run_until s 100;
  Alcotest.(check int) "cancelled thunk never runs" 0 !fired;
  let cancel' = Sched.cancellable s 150 (fun _ -> incr fired) in
  Sched.run_until s 200;
  cancel' ();
  (* cancelling after execution is a no-op *)
  Alcotest.(check int) "ran once" 1 !fired;
  Alcotest.(check int) "holding count intact" 0 (Sched.pending s)

let test_sched_tickers_do_not_hold () =
  let s = Sched.create () in
  let ticks = ref [] in
  Sched.every s ~phase:10 ~period:100 (fun now -> ticks := now :: !ticks);
  Alcotest.(check int) "recurring occurrences never hold" 0 (Sched.pending s);
  Alcotest.(check (option int)) "no holding occurrence queued" None (Sched.next_holding s);
  Alcotest.(check bool) "but one is due" true (Sched.next_due s <> None);
  Sched.run_until s 250;
  Alcotest.(check (list int)) "phase then period" [ 10; 110; 210 ] (List.rev !ticks)

(* ---- remote fetch round-trips under faults ---- *)

let probe_rules () =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"check" ~on:(Event_query.on ~label:"probe" (Qterm.var "E"))
          ~if_:
            (Condition.In
               ( Condition.Remote "data.example/catalog",
                 Qterm.el "product" [ Qterm.pos (Qterm.var "P") ] ))
          (Action.log "found %s" [ Builtin.ovar "P" ]);
      ]
    "asker"

let catalog () =
  Term.elem ~ord:Term.Unordered "catalog" [ Term.elem "product" [ Term.text "ball" ] ]

let probe_net ?faults () =
  let net = Network.create ?faults () in
  let asker = node_exn ~host:"asker.example" (probe_rules ()) in
  let data = node_exn ~host:"data.example" (Ruleset.make "empty") in
  Store.add_doc (Node.store data) "/catalog" (catalog ());
  Network.add_node_exn net asker;
  Network.add_node_exn net data;
  (net, asker)

(* the acceptance scenario: the first Response is lost; the fetch
   timeout retries the Get and the condition still gets its document *)
let test_fetch_survives_dropped_response () =
  let dropped_one = ref false in
  let faults =
    {
      Transport.no_faults with
      drop =
        (fun m ->
          match m.Message.body with
          | Message.Response _ when not !dropped_one ->
              dropped_one := true;
              true
          | _ -> false);
    }
  in
  let net, asker = probe_net ~faults () in
  Network.inject net ~to_:"asker.example" ~label:"probe" (Term.text "?");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "condition answered despite the loss" [ "found ball" ]
    (Node.logs asker);
  let ns = Network.node_stats net "asker.example" in
  Alcotest.(check bool) "a retry happened" true (ns.Network.fetch_retries >= 1);
  Alcotest.(check int) "exactly one completion" 1 ns.Network.fetches_completed;
  Alcotest.(check int) "the loss was accounted" 1 (Network.transport_stats net).Transport.dropped

let test_fetch_gives_up_after_retries () =
  (* every Response is lost: the round-trip times out, retries, then
     reports "no document" — the rule's condition is simply false *)
  let faults =
    {
      Transport.no_faults with
      drop = (fun m -> match m.Message.body with Message.Response _ -> true | _ -> false);
    }
  in
  let net, asker = probe_net ~faults () in
  Network.inject net ~to_:"asker.example" ~label:"probe" (Term.text "?");
  let finished_at = Network.run_until_quiet net () in
  Alcotest.(check (list string)) "condition evaluated as false" [] (Node.logs asker);
  let ns = Network.node_stats net "asker.example" in
  Alcotest.(check int) "abandoned after the last retry" 1 ns.Network.fetch_timeouts;
  Alcotest.(check int) "initial attempt + both retries" 2 ns.Network.fetch_retries;
  Alcotest.(check bool) "the miss is visible" true (Network.fallback_misses net >= 1);
  (* 3 timeouts of 60ms stacked on the probe delivery *)
  Alcotest.(check bool) "terminates" true (finished_at < 1000)

let test_rdf_round_trip_accounted () =
  (* the satellite fix: RDF fetches used to bump remote_fetches without
     accounting any traffic; now they are full Get/Response round-trips *)
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"check" ~on:(Event_query.on ~label:"probe" (Qterm.var "E"))
            ~if_:
              (Condition.In_rdf
                 ( Condition.Remote "data.example/graph",
                   [ { Rdf.ps = Rdf.Var "X"; pp = Rdf.Exact (Rdf.Iri "price"); po = Rdf.Var "P" } ]
                 ))
            (Action.log "priced" []);
        ]
      "asker"
  in
  let net = Network.create () in
  let asker = node_exn ~host:"asker.example" rules in
  let data = node_exn ~host:"data.example" (Ruleset.make "empty") in
  Store.add_rdf (Node.store data) "/graph"
    (Rdf.of_list [ { Rdf.s = Rdf.Iri "ball"; p = "price"; o = Rdf.Lit_num 10. } ]);
  Network.add_node_exn net asker;
  Network.add_node_exn net data;
  Network.inject net ~to_:"asker.example" ~label:"probe" (Term.text "?");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "RDF condition answered" [ "priced" ] (Node.logs asker);
  let s = Network.transport_stats net in
  Alcotest.(check bool) "GET accounted" true (s.Transport.gets > 0);
  Alcotest.(check bool) "Response accounted" true (s.Transport.responses > 0);
  Alcotest.(check bool) "remote fetch counted" true (Network.remote_fetches net > 0)

(* ---- duplication and reordering ---- *)

let test_duplicates_fire_once () =
  (* duplicate every message: the idempotent receiver must not fire
     rules twice for the replayed events *)
  let faults = Transport.fault_profile ~seed:5 ~dup_rate:1.0 () in
  let counter_rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"count" ~on:(Event_query.on ~label:"hit" (Qterm.var "E"))
            (Action.log "hit" []);
        ]
      "sink"
  in
  let net = Network.create ~faults () in
  let sink = node_exn ~host:"sink.example" counter_rules in
  Network.add_node_exn net sink;
  for i = 1 to 5 do
    Network.inject net ~to_:"sink.example" ~label:"hit" (Term.int i)
  done;
  ignore (Network.run_until_quiet net ());
  Alcotest.(check int) "one firing per distinct event" 5 (List.length (Node.logs sink));
  Alcotest.(check int) "ghost copies arrived and were ignored" 5 (Node.duplicate_events sink);
  Alcotest.(check int) "duplication accounted" 5
    (Network.transport_stats net).Transport.duplicated

let test_jitter_reorders_but_delivers_all () =
  let faults = Transport.fault_profile ~seed:11 ~max_jitter:50 () in
  let rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"tag" ~on:(Event_query.on ~label:"seq" (Qterm.el "seq" [ Qterm.pos (Qterm.var "I") ]))
            (Action.log "%s" [ Builtin.ovar "I" ]);
        ]
      "sink"
  in
  let net = Network.create ~faults () in
  let sink = node_exn ~host:"sink.example" rules in
  Network.add_node_exn net sink;
  let n = 20 in
  for i = 1 to n do
    Network.inject net ~to_:"sink.example" ~label:"seq"
      (Term.elem "seq" [ Term.text (Printf.sprintf "%02d" i) ])
  done;
  ignore (Network.run_until_quiet net ());
  let arrived = Node.logs sink in
  Alcotest.(check int) "every message delivered" n (List.length arrived);
  let in_send_order = List.init n (fun i -> Printf.sprintf "%02d" (i + 1)) in
  Alcotest.(check (list string)) "same set" in_send_order (List.sort compare arrived);
  Alcotest.(check bool) "jitter reordered same-pair messages" true (arrived <> in_send_order)

let test_replay_is_deterministic_under_faults () =
  let build () =
    (* fault coins hash message ids, so replay needs the id counters
       reset — exactly what a fresh simulation process would see *)
    Message.reset_ids ();
    Event.reset_ids ();
    let faults = Transport.fault_profile ~seed:3 ~drop_rate:0.3 ~dup_rate:0.3 ~max_jitter:20 () in
    let net, asker = probe_net ~faults () in
    for i = 1 to 10 do
      Network.inject net ~to_:"asker.example" ~label:"probe" (Term.int i)
    done;
    let t = Network.run_until_quiet net () in
    let s = Network.transport_stats net in
    ( s.Transport.messages,
      s.Transport.bytes,
      s.Transport.dropped,
      s.Transport.duplicated,
      t,
      Node.logs asker )
  in
  let r1 = build () in
  let r2 = build () in
  Alcotest.(check bool) "bit-identical degraded replay" true (r1 = r2)

(* ---- precise engine deadlines (no heartbeat) ---- *)

let test_absence_fires_without_heartbeat () =
  let q =
    Event_query.absent
      (Event_query.on ~label:"ping" (Qterm.var "E"))
      ~then_absent:(Event_query.on ~label:"pong" (Qterm.var "F"))
      ~for_:100
  in
  let rules = Ruleset.make ~rules:[ Eca.make ~name:"watch" ~on:q (Action.log "no pong!" []) ] "w" in
  let net = Network.create () in
  let n = node_exn ~host:"w.example" rules in
  Network.add_node_exn net n;
  (* no heartbeat: the deadline is an occurrence of its own *)
  Network.inject net ~to_:"w.example" ~label:"ping" (Term.text "x");
  Network.run net ~until:300;
  Alcotest.(check (list string)) "deadline occurrence fired the rule" [ "no pong!" ] (Node.logs n)

(* ---- Poll and Pubsub under degraded networks ---- *)

let test_poll_under_faults () =
  let faults = Transport.fault_profile ~seed:2 ~drop_rate:0.2 ~dup_rate:0.2 ~max_jitter:5 () in
  let net = Network.create ~latency:(fun ~from:_ ~to_:_ -> 20) ~faults () in
  let producer = node_exn ~host:"prod.example" (Ruleset.make "p") in
  Store.add_doc (Node.store producer) "/feed" (Term.elem "feed" [ Term.int 1 ]);
  let consumer = node_exn ~host:"cons.example" (Ruleset.make "c") in
  Network.add_node_exn net producer;
  Network.add_node_exn net consumer;
  let stats = Poll.attach net ~poller:"cons.example" ~target:"prod.example/feed" ~period:100 in
  Network.run net ~until:500;
  ignore
    (Store.apply (Node.store producer)
       (Action.U_replace { doc = "/feed"; selector = []; content = Term.elem "feed" [ Term.int 2 ] }));
  Network.run net ~until:2000;
  (* eventual detection: lost polls are retried by the fetch policy, and
     later polling rounds re-read the resource anyway *)
  Alcotest.(check int) "initial snapshot + the one change, exactly" 2 (Poll.changes_seen stats);
  Alcotest.(check bool) "change seen after it happened" true
    (Poll.last_change_detected_at stats > 500);
  Alcotest.(check bool) "polling kept going" true (Poll.polls stats >= 15)

let test_pubsub_under_faults () =
  let faults = Transport.fault_profile ~seed:9 ~dup_rate:1.0 ~max_jitter:10 () in
  let net = Network.create ~faults () in
  let producer = node_exn ~host:"prod.example" (Pubsub.publisher_ruleset ()) in
  Store.add_doc (Node.store producer) Pubsub.subscribers_doc (Pubsub.empty_register ());
  let sub_rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"recv" ~on:(Event_query.on ~label:"notify" (Qterm.var "E"))
            (Action.log "notified" []);
        ]
      "sub"
  in
  let s1 = node_exn ~host:"s1.example" sub_rules in
  let s2 = node_exn ~host:"s2.example" sub_rules in
  Network.add_node_exn net producer;
  Network.add_node_exn net s1;
  Network.add_node_exn net s2;
  Network.inject net ~sender:"s1.example" ~to_:"prod.example" ~label:"subscribe"
    (Pubsub.subscribe ~topic:"news" ~host:"s1.example");
  Network.inject net ~sender:"s2.example" ~to_:"prod.example" ~label:"subscribe"
    (Pubsub.subscribe ~topic:"news" ~host:"s2.example");
  ignore (Network.run_until_quiet net ());
  Alcotest.(check (list string)) "register is duplicate-proof" [ "s1.example"; "s2.example" ]
    (Pubsub.subscribers (Node.store producer) ~topic:"news");
  Network.inject net ~to_:"prod.example" ~label:"publish"
    (Pubsub.publish ~topic:"news" (Term.elem "body" [ Term.text "hi" ]));
  ignore (Network.run_until_quiet net ());
  (* every message was duplicated in flight, yet each subscriber reacts
     exactly once per publication *)
  Alcotest.(check (list string)) "s1 notified once" [ "notified" ] (Node.logs s1);
  Alcotest.(check (list string)) "s2 notified once" [ "notified" ] (Node.logs s2);
  Alcotest.(check bool) "duplication really happened" true
    ((Network.transport_stats net).Transport.duplicated > 0)

let suite =
  ( "sched",
    [
      Alcotest.test_case "occurrences run in (time, seq) order" `Quick test_sched_ordering;
      Alcotest.test_case "cancellable occurrences" `Quick test_sched_cancellable;
      Alcotest.test_case "tickers never hold the simulation" `Quick test_sched_tickers_do_not_hold;
      Alcotest.test_case "fetch survives a dropped Response (retry)" `Quick
        test_fetch_survives_dropped_response;
      Alcotest.test_case "fetch gives up after retries" `Quick test_fetch_gives_up_after_retries;
      Alcotest.test_case "RDF fetches are accounted round-trips" `Quick
        test_rdf_round_trip_accounted;
      Alcotest.test_case "duplicated messages fire rules once" `Quick test_duplicates_fire_once;
      Alcotest.test_case "jitter reorders, still delivers all" `Quick
        test_jitter_reorders_but_delivers_all;
      Alcotest.test_case "degraded replay is deterministic" `Quick
        test_replay_is_deterministic_under_faults;
      Alcotest.test_case "absence deadlines fire without heartbeat" `Quick
        test_absence_fires_without_heartbeat;
      Alcotest.test_case "polling under drop/dup/jitter" `Quick test_poll_under_faults;
      Alcotest.test_case "pubsub under duplication" `Quick test_pubsub_under_faults;
    ] )
