(* Regenerates the committed WAL corruption corpus under test/corpus/.

   The corpus pins the on-wire frame format: if the codec changes
   incompatibly, the pins in Test_wal fail and the corpus must be
   regenerated *deliberately* (and the format break called out):

     dune exec test/corpus_gen.exe -- test/corpus

   Every byte written here is deterministic. *)

open Xchange

let base_records =
  [
    Wal.Event
      (Event.make ~id:1 ~sender:"src.example" ~recipient:"mid.example" ~received_at:15
         ~occurred_at:10 ~label:"order"
         (Term.elem "order"
            [ Term.elem "item" [ Term.text "ball" ]; Term.elem "qty" [ Term.int 2 ] ]));
    Wal.Update
      (Action.U_insert
         {
           doc = "/orders";
           selector = [];
           at = None;
           content = Term.elem "row" [ Term.text "ball" ];
         });
    Wal.Remote_update
      {
        from = "src.example";
        msg_id = 7;
        at = 20;
        update =
          Action.U_replace
            {
              doc = "/status";
              selector = [ (Path.Child, Path.Tag "state") ];
              content = Term.elem "state" [ Term.text "shipped" ];
            };
      };
    Wal.Advance 30;
    Wal.Firing { rule = "take"; at = 30 };
    Wal.Update (Action.U_delete { doc = "/orders"; selector = [ (Path.Child, Path.Any) ]; pattern = None });
  ]

let extra_record =
  Wal.Event
    (Event.make ~id:2 ~sender:"src.example" ~recipient:"mid.example" ~received_at:40
       ~occurred_at:35 ~label:"order"
       (Term.elem "order" [ Term.elem "item" [ Term.text "whistle" ] ]))

let write path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/corpus" in
  let log records =
    let w = Wal.create () in
    List.iter (Wal.append w) records;
    Wal.contents w
  in
  let base = log base_records in
  (* valid log: 6 records, Clean *)
  write (Filename.concat dir "base.wal") base;
  (* stray bytes shorter than a frame header *)
  write (Filename.concat dir "truncated_tail.wal") (base ^ "\x05\x00\x00");
  (* a 7th frame whose header promises more payload than was written *)
  let with_extra = log (base_records @ [ extra_record ]) in
  let torn = String.sub with_extra 0 (String.length base + 8 + 11) in
  write (Filename.concat dir "torn_write.wal") torn;
  (* one flipped bit inside the last record's payload *)
  let flipped = Bytes.of_string base in
  let i = Bytes.length flipped - 2 in
  Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x40));
  write (Filename.concat dir "bit_flip.wal") (Bytes.to_string flipped);
  Printf.printf "corpus written to %s/ (base %d bytes)\n" dir (String.length base)
