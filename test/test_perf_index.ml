(* The hot-path indexing layer (term index, dispatch table, query cache)
   must be a pure acceleration: every property here pits an indexed or
   memoized evaluation against the naive reference and demands identical
   answers.  See HACKING.md "Performance architecture". *)

open Xchange

let subst_sets_equal a b = List.equal Subst.equal a b

let pp_set = Fmt.str "%a" Subst.pp_set

(* ---- matches_anywhere: with / without a term index ---- *)

let seed_x = Option.get (Subst.of_list [ ("X", Term.text "x") ])

let match_prop ~seed (q, t) =
  let naive = Simulate.matches_anywhere ~seed q t in
  let indexed = Simulate.matches_anywhere ~index:(Term_index.build t) ~seed q t in
  if subst_sets_equal naive indexed then true
  else
    QCheck.Test.fail_reportf "query %a@.doc %s@.naive: %s@.indexed: %s" Qterm.pp q
      (Term.to_string t) (pp_set naive) (pp_set indexed)

let prop_match_indexed =
  QCheck.Test.make ~name:"matches_anywhere: indexed = naive" ~count:1000
    (QCheck.pair Gen.qterm_arb Gen.xml_term_arb)
    (match_prop ~seed:Subst.empty)

let prop_match_indexed_seeded =
  QCheck.Test.make ~name:"matches_anywhere: indexed = naive (seeded)" ~count:500
    (QCheck.pair Gen.qterm_arb Gen.xml_term_arb)
    (match_prop ~seed:seed_x)

(* ---- Path.select: with / without label-path pruning ---- *)

let selector_gen =
  QCheck.Gen.(
    list_size (int_bound 3)
      (pair
         (oneofl [ Path.Child; Path.Descendant ])
         (oneof [ return Path.Any; map (fun l -> Path.Tag l) Gen.small_label ])))

let selector_print sel =
  String.concat ""
    (List.map
       (fun (ax, st) ->
         (match ax with Path.Child -> "/" | Path.Descendant -> "//")
         ^ match st with Path.Any -> "*" | Path.Tag l -> l)
       sel)

let prop_select_pruned =
  QCheck.Test.make ~name:"Path.select: label_paths pruning = full traversal" ~count:1000
    (QCheck.pair Gen.xml_term_arb (QCheck.make ~print:selector_print selector_gen))
    (fun (t, sel) ->
      let idx = Term_index.build t in
      Path.select t sel = Path.select ~label_paths:(Term_index.paths_with_label idx) t sel)

(* ---- Subst.dedup: bucketed fast path = reference sort_uniq ---- *)

let subst_gen =
  QCheck.Gen.(
    map
      (fun l -> match Subst.of_list l with Some s -> s | None -> Subst.empty)
      (list_size (int_bound 3) (pair Gen.var_name Gen.term_gen)))

let prop_dedup =
  QCheck.Test.make ~name:"Subst.dedup = sort_uniq Subst.compare" ~count:1000
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 60) subst_gen))
    (fun l -> subst_sets_equal (Subst.dedup l) (List.sort_uniq Subst.compare l))

(* ---- Engine: label-dispatched handle_event = full scan ---- *)

let harness () =
  let store = Store.create () in
  Store.add_doc store "/orders" (Term.elem ~ord:Term.Unordered "orders" []);
  let ops =
    {
      Action.update = (fun u -> Result.map fst (Store.apply store u));
      txn_update = (fun u -> Result.map fst (Store.apply store u));
      send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
      log = (fun _ -> ());
      now = (fun () -> 0);
      checkpoint = (fun () -> fun () -> ());
    }
  in
  (store, ops)

let firing_equal (a : Eca.firing) (b : Eca.firing) =
  String.equal a.Eca.rule b.Eca.rule
  && a.Eca.branch = b.Eca.branch
  && Subst.equal a.Eca.bindings b.Eca.bindings
  && a.Eca.outcome = b.Eca.outcome

let outcome_equal (a : Engine.outcome) (b : Engine.outcome) =
  List.equal firing_equal a.Engine.firings b.Engine.firings
  && List.length a.Engine.derived_events = List.length b.Engine.derived_events
  && a.Engine.errors = b.Engine.errors

let final_time events = List.fold_left (fun acc e -> max acc (Event.time e)) 0 events + 10_000

let rules_of queries =
  List.mapi
    (fun i q ->
      let name = Printf.sprintf "r%d" i in
      let action = Action.insert ~doc:"/orders" (Construct.cel "row" [ Construct.ctext name ]) in
      if i mod 2 = 0 then Eca.make ~name ~on:q action
      else
        (* conditional rules exercise the store-memoized condition path *)
        Eca.make ~name ~on:q
          ~if_:(Condition.In (Condition.Local "/orders", Qterm.el "row" []))
          action)
    queries

let dispatch_prop (queries, events) =
  let valid = List.filter (fun q -> Result.is_ok (Event_query.validate q)) queries in
  if valid = [] then QCheck.assume_fail ()
  else
    let run index =
      let engine = Engine.create_exn ~index (Ruleset.make ~rules:(rules_of valid) "p") in
      let store, ops = harness () in
      let env = Store.env store in
      let outcomes = List.map (fun e -> Engine.handle_event engine ~env ~ops e) events in
      let closing = Engine.advance engine ~env ~ops (final_time events) in
      (outcomes @ [ closing ], Option.get (Store.doc store "/orders"))
    in
    let indexed, doc_i = run true in
    let naive, doc_n = run false in
    if List.length indexed = List.length naive
       && List.for_all2 outcome_equal indexed naive
       && Term.equal doc_i doc_n
    then true
    else QCheck.Test.fail_reportf "dispatch divergence on %d rules, %d events"
           (List.length valid) (List.length events)

let queries_arb =
  QCheck.make
    ~print:(fun qs -> Fmt.str "%a" Fmt.(list ~sep:cut Event_query.pp) qs)
    QCheck.Gen.(list_size (int_range 1 4) Gen.event_query_gen)

let stream_arb =
  QCheck.make
    ~print:(fun evs -> Fmt.str "%a" Fmt.(list ~sep:cut Event.pp) evs)
    (Gen.event_stream_gen ~labels:[ "a"; "b"; "c" ] ~max_len:20 ~max_gap:15)

let prop_dispatch =
  QCheck.Test.make ~name:"Engine: dispatch table = full rule scan" ~count:300
    (QCheck.pair queries_arb stream_arb)
    dispatch_prop

(* ---- Store.query: memoized answers stay coherent across updates ---- *)

(* Scripts interleave queries (drawn from a small pool so the cache gets
   hits) with document mutations; after every step the cached answer must
   equal a fresh uncached evaluation of the store's current document. *)
let cache_case_gen =
  QCheck.Gen.(
    pair Gen.xml_term_gen
      (pair
         (array_size (return 3) Gen.qterm_gen)
         (list_size (int_bound 25) (pair (int_bound 5) Gen.term_gen))))

let cache_prop (doc0, (pool, script)) =
  let store = Store.create ~cache_capacity:8 () in
  Store.add_doc store "/d" doc0;
  let check ~seed q =
    let got = Store.query store ~doc:"/d" ~seed q in
    let want = Simulate.matches_anywhere ~seed q (Option.get (Store.doc store "/d")) in
    if subst_sets_equal got want then true
    else
      QCheck.Test.fail_reportf "query %a@.cached: %s@.fresh: %s" Qterm.pp q (pp_set got)
        (pp_set want)
  in
  List.for_all
    (fun (tag, term) ->
      match tag with
      | 0 | 1 | 2 -> check ~seed:Subst.empty pool.(tag)
      | 3 -> check ~seed:seed_x pool.(0)
      | 4 ->
          ignore
            (Store.apply store
               (Action.U_insert { doc = "/d"; selector = []; at = None; content = term }));
          true
      | _ ->
          ignore
            (Store.apply store
               (Action.U_replace
                  { doc = "/d"; selector = [ (Path.Descendant, Path.Tag "item") ]; content = term }));
          true)
    script

let prop_cache_coherent =
  QCheck.Test.make ~name:"Store.query: cache = fresh evaluation across updates" ~count:400
    (QCheck.make cache_case_gen)
    cache_prop

(* ---- units: LRU mechanics and observability counters ---- *)

let test_lru () =
  let l = Lru.create ~cap:2 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Alcotest.(check (option int)) "a hit" (Some 1) (Lru.find l "a");
  Lru.add l "c" 3;
  (* "b" was least recently used *)
  Alcotest.(check (option int)) "b evicted" None (Lru.find l "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find l "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find l "c");
  Alcotest.(check int) "bounded" 2 (Lru.length l);
  Alcotest.(check int) "capacity" 2 (Lru.capacity l);
  Alcotest.(check int) "evictions" 1 (Lru.evictions l);
  Alcotest.(check int) "hits" 3 (Lru.hits l);
  Alcotest.(check int) "misses" 1 (Lru.misses l);
  Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Lru.length l)

let test_store_counters () =
  let s = Store.create () in
  Store.add_doc s "/d" (Term.elem "d" [ Term.elem "item" [ Term.text "x" ] ]);
  let q = Qterm.el "item" [ Qterm.pos (Qterm.var "X") ] in
  let r1 = Store.query s ~doc:"/d" q in
  let r2 = Store.query s ~doc:"/d" q in
  Alcotest.(check bool) "hit = miss answers" true (subst_sets_equal r1 r2);
  Alcotest.(check int) "one answer" 1 (List.length r1);
  let st = Store.stats s in
  Alcotest.(check int) "one miss" 1 st.Store.query_cache_misses;
  Alcotest.(check int) "one hit" 1 st.Store.query_cache_hits;
  Alcotest.(check int) "one index built" 1 st.Store.index_builds;
  Alcotest.(check int) "one live index" 1 st.Store.live_indexes;
  (* a mutation invalidates the index and changes the digest key *)
  ignore
    (Store.apply s
       (Action.U_insert
          { doc = "/d"; selector = []; at = None; content = Term.elem "item" [ Term.text "y" ] }));
  let st = Store.stats s in
  Alcotest.(check bool) "invalidated" true (st.Store.index_invalidations >= 1);
  Alcotest.(check int) "no live index" 0 st.Store.live_indexes;
  let r3 = Store.query s ~doc:"/d" q in
  Alcotest.(check int) "new version answers" 2 (List.length r3);
  let st = Store.stats s in
  Alcotest.(check int) "second miss" 2 st.Store.query_cache_misses;
  Alcotest.(check int) "index rebuilt" 2 st.Store.index_builds

let test_engine_counters () =
  let rule l =
    Eca.make ~name:("r-" ^ l) ~on:(Event_query.on ~label:l (Qterm.var "P")) Action.Nop
  in
  let engine =
    Engine.create_exn (Ruleset.make ~rules:[ rule "a"; rule "b"; rule "c" ] "s")
  in
  let store, ops = harness () in
  let env = Store.env store in
  Alcotest.(check int) "three dispatch labels" 3 (Engine.dispatch_labels engine);
  let outcome =
    Engine.handle_event engine ~env ~ops (Event.make ~occurred_at:1 ~label:"a" (Term.text "x"))
  in
  Alcotest.(check int) "only r-a fires" 1 (List.length outcome.Engine.firings);
  let st = Engine.index_stats engine in
  Alcotest.(check int) "one lookup" 1 st.Engine.dispatch_lookups;
  Alcotest.(check int) "one rule fed" 1 st.Engine.rules_fed;
  Alcotest.(check int) "two rules skipped" 2 st.Engine.rules_skipped

let suite =
  ( "perf-index",
    [
      QCheck_alcotest.to_alcotest ~long:true prop_match_indexed;
      QCheck_alcotest.to_alcotest prop_match_indexed_seeded;
      QCheck_alcotest.to_alcotest prop_select_pruned;
      QCheck_alcotest.to_alcotest prop_dedup;
      QCheck_alcotest.to_alcotest ~long:true prop_dispatch;
      QCheck_alcotest.to_alcotest prop_cache_coherent;
      Alcotest.test_case "LRU bounds and counters" `Quick test_lru;
      Alcotest.test_case "store index/cache counters" `Quick test_store_counters;
      Alcotest.test_case "engine dispatch counters" `Quick test_engine_counters;
    ] )
