open Xchange

let term = Alcotest.testable Term.pp Term.equal
let mk l = Option.get (Subst.of_list l)

(* An in-memory host for actions: a mutable doc table, an outbox, a log. *)
type harness = {
  docs : (string, Term.t) Hashtbl.t;
  mutable sent : (string * string * Term.t) list;  (** (recipient, label, payload) *)
  mutable logged : string list;
  mutable time : Clock.time;
}

let harness ?(docs = []) () =
  let h = { docs = Hashtbl.create 8; sent = []; logged = []; time = 0 } in
  List.iter (fun (name, d) -> Hashtbl.replace h.docs name d) docs;
  h

let ops_of h =
  let apply u =
    (* route through a Store for full fidelity *)
    let store = Store.create () in
    Hashtbl.iter (fun name d -> Store.add_doc store name d) h.docs;
    match Store.apply store u with
    | Error e -> Error e
    | Ok (n, _) ->
        Hashtbl.reset h.docs;
        List.iter (fun name -> Hashtbl.replace h.docs name (Option.get (Store.doc store name))) (Store.doc_names store);
        Ok n
  in
  {
    Action.update = apply;
    txn_update = apply;
    send = (fun ~recipient ~label ~ttl:_ ~delay:_ payload -> h.sent <- (recipient, label, payload) :: h.sent);
    log = (fun line -> h.logged <- line :: h.logged);
    now = (fun () -> h.time);
    checkpoint = (fun () -> fun () -> ());
  }

let env_of h =
  Condition.env_of_docs (Hashtbl.fold (fun name d acc -> (name, d) :: acc) h.docs [])

let no_procs _ = None

let exec ?(procs = no_procs) ?(subst = Subst.empty) h action =
  Action.exec ~env:(env_of h) ~ops:(ops_of h) ~procs ~subst ~answers:[ subst ] action

let test_insert () =
  let h = harness ~docs:[ ("/d", Term.elem "root" []) ] () in
  (match exec h (Action.insert ~doc:"/d" (Construct.cel "x" [])) with
  | Ok o -> Alcotest.(check int) "one update" 1 o.Action.updates
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "child added" 1 (List.length (Term.children (Hashtbl.find h.docs "/d")))

let test_insert_with_bindings () =
  let h = harness ~docs:[ ("/d", Term.elem "root" []) ] () in
  let subst = mk [ ("V", Term.text "hello") ] in
  (match exec ~subst h (Action.insert ~doc:"/d" (Construct.cel "x" [ Construct.cvar "V" ])) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check term "instantiated content"
    (Term.elem "root" [ Term.elem "x" [ Term.text "hello" ] ])
    (Term.strip_ids (Hashtbl.find h.docs "/d"))

let test_delete_matching_seeded () =
  let doc =
    Term.elem "jar"
      [
        Term.elem "cookie" [ Term.text "a" ];
        Term.elem "cookie" [ Term.text "b" ];
      ]
  in
  let h = harness ~docs:[ ("/d", doc) ] () in
  let subst = mk [ ("N", Term.text "a") ] in
  let action =
    Action.delete ~doc:"/d" ~pattern:(Qterm.el "cookie" [ Qterm.pos (Qterm.var "N") ]) ()
  in
  (match exec ~subst h action with Ok _ -> () | Error e -> Alcotest.fail e);
  Alcotest.check term "only a deleted"
    (Term.elem "jar" [ Term.elem "cookie" [ Term.text "b" ] ])
    (Term.strip_ids (Hashtbl.find h.docs "/d"))

let test_replace_at_selector () =
  let doc = Term.elem "r" [ Term.elem "old" [] ] in
  let h = harness ~docs:[ ("/d", doc) ] () in
  let sel = Result.get_ok (Path.parse_selector "/old") in
  (match exec h (Action.replace ~doc:"/d" ~selector:sel (Construct.cel "new" [])) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check term "replaced" (Term.elem "r" [ Term.elem "new" [] ])
    (Term.strip_ids (Hashtbl.find h.docs "/d"))

let test_raise () =
  let h = harness () in
  let subst = mk [ ("Dest", Term.text "ware.example/in") ] in
  let action =
    Action.raise_event_to ~to_:(Builtin.ovar "Dest") ~label:"pick" (Construct.cel "pick" [])
  in
  (match exec ~subst h action with
  | Ok o -> Alcotest.(check int) "event sent" 1 o.Action.events_sent
  | Error e -> Alcotest.fail e);
  match h.sent with
  | [ (recipient, label, _) ] ->
      Alcotest.(check string) "recipient computed" "ware.example/in" recipient;
      Alcotest.(check string) "label" "pick" label
  | _ -> Alcotest.fail "expected one message"

let test_make_persistent () =
  (* Thesis 4: volatile event data must be persisted explicitly *)
  let h = harness () in
  let subst = mk [ ("E", Term.elem "snapshot" [ Term.text "v" ]) ] in
  (match exec ~subst h (Action.make_persistent ~doc:"/archive" "E") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check term "event payload persisted" (Term.elem "snapshot" [ Term.text "v" ])
    (Term.strip_ids (Hashtbl.find h.docs "/archive"))

let test_seq_fail_fast () =
  let h = harness ~docs:[ ("/d", Term.elem "r" []) ] () in
  let action =
    Action.seq
      [
        Action.insert ~doc:"/d" (Construct.cel "one" []);
        Action.Fail "boom";
        Action.insert ~doc:"/d" (Construct.cel "two" []);
      ]
  in
  (match exec h action with Error _ -> () | Ok _ -> Alcotest.fail "failure swallowed");
  (* no rollback, but nothing after the failure runs *)
  Alcotest.(check int) "first insert applied" 1 (List.length (Term.children (Hashtbl.find h.docs "/d")))

let test_alt () =
  let h = harness ~docs:[ ("/d", Term.elem "r" []) ] () in
  let action =
    Action.alt
      [ Action.Fail "no"; Action.insert ~doc:"/d" (Construct.cel "ok" []); Action.Fail "never" ]
  in
  (match exec h action with Ok _ -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "second alternative ran" 1
    (List.length (Term.children (Hashtbl.find h.docs "/d")));
  match exec h (Action.alt [ Action.Fail "a"; Action.Fail "b" ]) with
  | Error msg -> Alcotest.(check bool) "all failures reported" true (String.length msg > 10)
  | Ok _ -> Alcotest.fail "empty alternatives succeeded"

let test_if_branching () =
  let h = harness ~docs:[ ("/d", Term.elem "r" [ Term.elem "flag" [] ]) ] () in
  let cond = Condition.In (Condition.Local "/d", Qterm.el "flag" []) in
  let action = Action.If (cond, Action.log "yes" [], Action.log "no" []) in
  (match exec h action with Ok _ -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "then branch" [ "yes" ] h.logged

let test_call_procedure () =
  let h = harness ~docs:[ ("/d", Term.elem "r" []) ] () in
  let procs name =
    if name = "store" then
      Some
        {
          Action.params = [ "What" ];
          body = Action.insert ~doc:"/d" (Construct.cel "item" [ Construct.cvar "What" ]);
        }
    else None
  in
  let subst = mk [ ("X", Term.text "ball"); ("Secret", Term.text "hidden") ] in
  (match exec ~procs ~subst h (Action.call "store" [ Builtin.ovar "X" ]) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check term "parameter passed"
    (Term.elem "r" [ Term.elem "item" [ Term.text "ball" ] ])
    (Term.strip_ids (Hashtbl.find h.docs "/d"));
  (* lexical isolation: the body must not see caller bindings *)
  let leaky name =
    if name = "leak" then
      Some { Action.params = []; body = Action.insert ~doc:"/d" (Construct.cel "x" [ Construct.cvar "Secret" ]) }
    else None
  in
  match exec ~procs:leaky ~subst h (Action.call "leak" []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "procedure saw caller bindings"

let test_call_arity () =
  let procs _ = Some { Action.params = [ "A"; "B" ]; body = Action.Nop } in
  let h = harness () in
  match exec ~procs h (Action.call "p" [ Builtin.onum 1. ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity mismatch accepted"

let test_log_interpolation () =
  let h = harness () in
  let subst = mk [ ("N", Term.text "franz"); ("Q", Term.int 3) ] in
  (match exec ~subst h (Action.log "%s ordered %s items" [ Builtin.ovar "N"; Builtin.ovar "Q" ]) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "interpolated" [ "franz ordered 3 items" ] h.logged

(* ---- ECA rules ---- *)

let fire_rule ?(docs = []) rule detection =
  let h = harness ~docs () in
  let results = Eca.fire ~env:(env_of h) ~ops:(ops_of h) ~procs:no_procs rule detection in
  (h, results)

let detection subst = Instance.atomic subst 100 1

let test_eca_branch_per_answer () =
  let docs =
    [
      ( "/stock",
        Term.elem ~ord:Term.Unordered "stock"
          [ Term.elem "unit" [ Term.text "u1" ]; Term.elem "unit" [ Term.text "u2" ] ] );
    ]
  in
  let rule =
    Eca.make ~name:"r" ~on:(Event_query.on (Qterm.var "E"))
      ~if_:(Condition.In (Condition.Local "/stock", Qterm.el "unit" [ Qterm.pos (Qterm.var "U") ]))
      (Action.log "unit %s" [ Builtin.ovar "U" ])
  in
  let h, results = fire_rule ~docs rule (detection (mk [ ("E", Term.text "x") ])) in
  Alcotest.(check int) "one firing per answer" 2 (List.length results);
  Alcotest.(check int) "two log lines" 2 (List.length h.logged)

let test_ecaa_else () =
  let rule =
    Eca.make ~name:"r" ~on:(Event_query.on (Qterm.var "E")) ~if_:Condition.False
      (Action.log "then" []) ~else_:(Action.log "else" [])
  in
  let h, results = fire_rule rule (detection Subst.empty) in
  Alcotest.(check int) "one firing" 1 (List.length results);
  Alcotest.(check (list string)) "else branch ran" [ "else" ] h.logged;
  match results with
  | [ Ok [ f ] ] -> Alcotest.(check (option int)) "branch None = else" None f.Eca.branch
  | _ -> Alcotest.fail "unexpected firing shape"

let test_ecnan_first_match () =
  let rule =
    Eca.make_ecnan ~name:"r" ~on:(Event_query.on (Qterm.var "E"))
      [
        { Eca.condition = Condition.False; action = Action.log "b0" [] };
        { Eca.condition = Condition.True; action = Action.log "b1" [] };
        { Eca.condition = Condition.True; action = Action.log "b2" [] };
      ]
  in
  let h, _ = fire_rule rule (detection Subst.empty) in
  Alcotest.(check (list string)) "first holding branch only" [ "b1" ] h.logged

let test_eca_stats () =
  let stats = Eca.fresh_stats () in
  let rule =
    Eca.make ~name:"r" ~on:(Event_query.on (Qterm.var "E")) ~if_:Condition.True (Action.Nop)
  in
  let h = harness () in
  ignore (Eca.fire ~stats ~env:(env_of h) ~ops:(ops_of h) ~procs:no_procs rule (detection Subst.empty));
  ignore (Eca.fire ~stats ~env:(env_of h) ~ops:(ops_of h) ~procs:no_procs rule (detection Subst.empty));
  Alcotest.(check int) "detections" 2 stats.Eca.detections;
  Alcotest.(check int) "condition evals" 2 stats.Eca.condition_evaluations;
  Alcotest.(check int) "firings" 2 stats.Eca.firings

(* ---- production rules (Thesis 1, footnote 4) ---- *)

let test_production_transition_semantics () =
  let store = Store.create () in
  Store.add_doc store "/d" (Term.elem ~ord:Term.Unordered "r" []);
  let fired = ref 0 in
  let ops =
    {
      Action.update = (fun u -> Result.map fst (Store.apply store u));
      txn_update = (fun u -> Result.map fst (Store.apply store u));
      send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
      log = (fun _ -> incr fired);
      now = (fun () -> 0);
      checkpoint = (fun () -> fun () -> ());
    }
  in
  let env () = Store.env store in
  let rule =
    {
      Production.name = "p";
      condition = Condition.In (Condition.Local "/d", Qterm.el "flag" [ Qterm.pos (Qterm.var "V") ]);
      action = Action.log "hit" [];
    }
  in
  let engine = Production.create [ rule ] in
  let poll () = Production.poll ~env:(env ()) ~ops ~procs:no_procs engine in
  Alcotest.(check int) "condition false: no firing" 0 (List.length (poll ()));
  ignore (Store.apply store (Action.U_insert { doc = "/d"; selector = []; at = None; content = Term.elem "flag" [ Term.text "a" ] }));
  Alcotest.(check int) "becomes true: fires once" 1 (List.length (poll ()));
  Alcotest.(check int) "stays true: no refiring" 0 (List.length (poll ()));
  ignore (Store.apply store (Action.U_insert { doc = "/d"; selector = []; at = None; content = Term.elem "flag" [ Term.text "b" ] }));
  Alcotest.(check int) "new answer fires" 1 (List.length (poll ()));
  ignore (Store.apply store (Action.U_delete { doc = "/d"; selector = []; pattern = Some (Qterm.el "flag" [ Qterm.pos (Qterm.txt "a") ]) }));
  Alcotest.(check int) "answer removal is silent" 0 (List.length (poll ()));
  ignore (Store.apply store (Action.U_insert { doc = "/d"; selector = []; at = None; content = Term.elem "flag" [ Term.text "a" ] }));
  Alcotest.(check int) "reappearing answer fires again" 1 (List.length (poll ()));
  Alcotest.(check int) "stats cycles" 6 (Production.stats engine).Production.cycles

let test_footnote4_nonequivalence () =
  (* "on true if C do A" fires on EVERY event while C holds; the
     production rule fires once when C becomes true. *)
  let docs = [ ("/d", Term.elem "r" [ Term.elem "flag" [] ]) ] in
  let eca =
    Eca.make ~name:"naive" ~on:(Event_query.on (Qterm.var "E"))
      ~if_:(Condition.In (Condition.Local "/d", Qterm.el "flag" []))
      (Action.log "fire" [])
  in
  let h = harness ~docs () in
  let fire e = ignore (Eca.fire ~env:(env_of h) ~ops:(ops_of h) ~procs:no_procs eca (detection (mk [ ("E", Term.text e) ]))) in
  fire "e1";
  fire "e2";
  fire "e3";
  Alcotest.(check int) "ECA fired on every event" 3 (List.length h.logged)

(* ---- derivation of ECA from production rules ---- *)

let test_derive_eca () =
  let prod =
    {
      Production.name = "watch";
      condition = Condition.In (Condition.Local "/d", Qterm.el "flag" []);
      action = Action.log "hit" [];
    }
  in
  (match Derive.eca_of_production ~update_labels:[] prod with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty labels accepted");
  match Derive.eca_of_production ~update_labels:[ "update" ] prod with
  | Error e -> Alcotest.fail e
  | Ok eca ->
      Alcotest.(check string) "derived name" "watch:as-eca" eca.Eca.name;
      let docs = [ ("/d", Term.elem "r" [ Term.elem "flag" [] ]) ] in
      let h, results = fire_rule ~docs eca (detection (mk [ ("_update", Term.text "u") ])) in
      Alcotest.(check int) "derived rule fires on update event" 1 (List.length results);
      ignore h

let test_derive_auto () =
  let prod =
    {
      Production.name = "watch";
      condition =
        Condition.And
          [
            Condition.In (Condition.Local "/stock", Qterm.el "low" []);
            Condition.Not (Condition.In (Condition.Local "/orders", Qterm.el "pending" []));
            Condition.In (Condition.Remote "other.example/x", Qterm.el "y" []);
          ];
      action = Action.log "hit" [];
    }
  in
  Alcotest.(check (list string)) "condition docs found (local only, through Not)"
    [ "/orders"; "/stock" ]
    (Derive.condition_docs prod.Production.condition);
  (match Derive.eca_of_production_auto prod with
  | Error e -> Alcotest.fail e
  | Ok eca ->
      (* fires on updates of /stock but not of /elsewhere *)
      let fire doc =
        let subst =
          Instance.atomic Subst.empty 1 1
        in
        ignore subst;
        let payload = Term.elem "update" ~attrs:[ ("doc", doc); ("kind", "insert") ] [] in
        let engine = Incremental.create_exn eca.Eca.event in
        let e = Event.make ~occurred_at:1 ~label:"update" payload in
        List.length (Incremental.feed engine e)
      in
      Alcotest.(check int) "triggered by /stock updates" 1 (fire "/stock");
      Alcotest.(check int) "triggered by /orders updates" 1 (fire "/orders");
      Alcotest.(check int) "not triggered by unrelated docs" 0 (fire "/elsewhere"));
  let no_docs =
    { Production.name = "p"; condition = Condition.True; action = Action.Nop }
  in
  match Derive.eca_of_production_auto no_docs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "derivation without local reads accepted"

let suite =
  ( "rules",
    [
      Alcotest.test_case "insert" `Quick test_insert;
      Alcotest.test_case "insert with bindings" `Quick test_insert_with_bindings;
      Alcotest.test_case "delete matching (seeded pattern)" `Quick test_delete_matching_seeded;
      Alcotest.test_case "replace at selector" `Quick test_replace_at_selector;
      Alcotest.test_case "raise with computed recipient" `Quick test_raise;
      Alcotest.test_case "make_persistent bridges Thesis 4" `Quick test_make_persistent;
      Alcotest.test_case "sequences fail fast" `Quick test_seq_fail_fast;
      Alcotest.test_case "alternatives" `Quick test_alt;
      Alcotest.test_case "conditional actions" `Quick test_if_branching;
      Alcotest.test_case "procedures with lexical isolation" `Quick test_call_procedure;
      Alcotest.test_case "procedure arity checked" `Quick test_call_arity;
      Alcotest.test_case "log interpolation" `Quick test_log_interpolation;
      Alcotest.test_case "ECA fires once per answer" `Quick test_eca_branch_per_answer;
      Alcotest.test_case "ECAA else branch" `Quick test_ecaa_else;
      Alcotest.test_case "ECnAn first-match" `Quick test_ecnan_first_match;
      Alcotest.test_case "rule statistics" `Quick test_eca_stats;
      Alcotest.test_case "production rules: transition semantics" `Quick test_production_transition_semantics;
      Alcotest.test_case "footnote 4: on-true ECA is not a CA rule" `Quick test_footnote4_nonequivalence;
      Alcotest.test_case "derive ECA from production rule" `Quick test_derive_eca;
      Alcotest.test_case "automatic derivation from condition reads" `Quick test_derive_auto;
    ] )
