open Xchange

(* absence rule (needs_clock) whose condition touches a remote resource *)
let rules () =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"watch"
          ~on:
            (Event_query.absent
               (Event_query.on ~label:"ping" (Qterm.var "E"))
               ~then_absent:(Event_query.on ~label:"pong" (Qterm.var "E2"))
               ~for_:100)
          ~if_:
            (Condition.In
               ( Condition.Remote "data.example/catalog",
                 Qterm.el "product" [ Qterm.pos (Qterm.var "P") ] ))
          (Action.log "alarm %s" [ Builtin.ovar "P" ]);
      ]
    "watcher"

let () =
  let net = Network.create () in
  let watcher = node_exn ~host:"watch.example" (rules ()) in
  let data = node_exn ~host:"data.example" (Ruleset.make "empty") in
  Store.add_doc (Node.store data) "/catalog"
    (Term.elem ~ord:Term.Unordered "catalog" [ Term.elem "product" [ Term.text "ball" ] ]);
  Network.add_node_exn net watcher;
  Network.add_node_exn net data;
  Network.inject net ~to_:"watch.example" ~label:"ping" (Term.text "?");
  let t = Network.run_until_quiet net ~limit:10_000 () in
  Printf.printf "final clock=%d remote_fetches=%d sched_executed=%d\n" t
    (Network.remote_fetches net) (Network.sched_stats net).Sched.executed;
  print_string (String.concat "\n" (Node.logs watcher));
  print_newline ()
