examples/news_monitor.ml: Clock Fmt List Network Node Option Path Poll Qterm Result Ruleset Simulate Store Term Transport Xchange Xml
