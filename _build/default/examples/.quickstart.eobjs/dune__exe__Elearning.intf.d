examples/elearning.mli:
