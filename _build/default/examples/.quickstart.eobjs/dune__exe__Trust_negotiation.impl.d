examples/trust_negotiation.ml: Fmt List Printer String Trust Xchange
