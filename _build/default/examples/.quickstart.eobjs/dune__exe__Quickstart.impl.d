examples/quickstart.ml: Fmt List Network Node Option Store Term Transport Xchange Xml
