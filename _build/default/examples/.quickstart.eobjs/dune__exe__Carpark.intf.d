examples/carpark.mli:
