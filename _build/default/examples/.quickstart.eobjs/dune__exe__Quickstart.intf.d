examples/quickstart.mli:
