examples/flight_monitor.ml: Clock Fmt List Network Node Option Store Term Xchange Xml
