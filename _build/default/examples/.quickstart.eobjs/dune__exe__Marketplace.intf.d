examples/marketplace.mli:
