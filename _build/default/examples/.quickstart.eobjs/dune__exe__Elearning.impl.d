examples/elearning.ml: Fmt List Network Node Option Rdf Result Store Term Xchange
