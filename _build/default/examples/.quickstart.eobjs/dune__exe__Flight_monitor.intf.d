examples/flight_monitor.mli:
