examples/marketplace.ml: Accounting Clock Fmt List Network Node Parser Ruleset Store Term Transport Xchange Xml
