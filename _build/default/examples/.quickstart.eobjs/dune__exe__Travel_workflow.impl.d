examples/travel_workflow.ml: Clock Fmt List Network Node Store Term Transport Xchange Xml
