examples/carpark.ml: Clock Engine Fmt List Network Node Option Parser Pubsub Result Ruleset Store Term Xchange Xml
