examples/stock_ticker.ml: Clock Fmt List Network Node Option Store Term Xchange Xml
