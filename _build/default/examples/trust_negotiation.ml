(* The paper's Thesis 11 scenario, verbatim: customer Franz wants ten
   soccer balls from fussbaelle.biz, a shop he has never heard of.
   Neither side trusts the other, so they exchange POLICIES — rule sets
   governing when an item may be disclosed — reactively, a few rules at
   a time:

     1. Franz requests the purchase.
     2. The shop answers with its sales policy (pay by credit card).
     3. Franz's own policy: he only reveals his card to shops that can
        show a Better Business Bureau membership.
     4. The shop evaluates that policy and sends its BBB certificate.
     5. Franz reveals the card; the deal closes.

   The same negotiation is then replayed with the EAGER baseline (all
   policies up front), showing the reactive advantages the thesis
   claims: fewer rules exchanged and no needless disclosure of
   sensitive policies.

   Run with: dune exec examples/trust_negotiation.exe
*)

open Xchange

let franz =
  {
    Trust.name = "franz";
    credentials = [ "credit-card"; "student-id"; "home-address" ];
    policies =
      [
        (* the card is given out only to BBB members *)
        Trust.policy ~sensitive:true ~item:"credit-card" [ [ "bbb-membership" ] ];
        (* these two are never shared — and their policies are private *)
        Trust.policy ~sensitive:true ~item:"student-id" Trust.never;
        Trust.policy ~sensitive:true ~item:"home-address" Trust.never;
      ];
  }

let shop =
  {
    Trust.name = "fussbaelle.biz";
    credentials = [ "purchase"; "bbb-membership"; "supplier-prices"; "tax-records" ];
    policies =
      [
        (* ten soccer balls against a credit card *)
        Trust.policy ~item:"purchase" [ [ "credit-card" ] ];
        (* the BBB certificate is public *)
        Trust.policy ~item:"bbb-membership" Trust.freely;
        (* trade secrets: never disclosed, policies confidential *)
        Trust.policy ~sensitive:true ~item:"supplier-prices" Trust.never;
        Trust.policy ~sensitive:true ~item:"tax-records" Trust.never;
      ];
  }

let show name (o : Trust.outcome) =
  Fmt.pr "=== %s ===@." name;
  List.iter
    (fun (s : Trust.step) ->
      Fmt.pr "  %-14s" s.Trust.actor;
      if s.Trust.sent_policies <> [] then
        Fmt.pr " policies:[%s]" (String.concat ", " s.Trust.sent_policies);
      if s.Trust.sent_credentials <> [] then
        Fmt.pr " discloses:[%s]" (String.concat ", " s.Trust.sent_credentials);
      if s.Trust.requested <> [] then
        Fmt.pr " requests:[%s]" (String.concat ", " s.Trust.requested);
      Fmt.pr "@.")
    o.Trust.transcript;
  Fmt.pr "  -> %s after %d round(s); %d policy rule set(s), %d credential(s), %d bytes;@."
    (if o.Trust.granted then "deal CLOSED" else "NO deal")
    o.Trust.rounds o.Trust.policies_sent o.Trust.credentials_sent o.Trust.bytes;
  Fmt.pr "     sensitive policies disclosed needlessly: %d@.@."
    o.Trust.sensitive_policies_leaked

let () =
  show "reactive policy exchange (the thesis' proposal)"
    (Trust.negotiate ~strategy:Trust.Reactive ~requester:franz ~responder:shop
       ~goal:"purchase" ());
  show "eager all-at-once exchange (baseline)"
    (Trust.negotiate ~strategy:Trust.Eager ~requester:franz ~responder:shop ~goal:"purchase" ());

  (* meta-circularity: what actually travels is an XChange rule set *)
  Fmt.pr "=== a policy on the wire (Thesis 11 meta-circularity) ===@.";
  let rs = Trust.policy_ruleset ~party:"franz" [ List.hd shop.Trust.policies ] in
  Fmt.pr "%s@." (Printer.ruleset_to_string rs)
