(* The evaluation harness: E1..E12 (one experiment per thesis; the
   "tables and figures" the position paper never had — see DESIGN.md §5
   and EXPERIMENTS.md) plus Bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe e3 e6      # selected experiments
     dune exec bench/main.exe micro      # micro-benchmarks only
*)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let wanted name = args = [] || List.mem name args in
  Fmt.pr "# XChange-OCaml evaluation — Twelve Theses on Reactive Rules for the Web@.";
  List.iter
    (fun (name, f) -> if wanted name then f ())
    Experiments.all;
  if wanted "micro" then Micro.run ()
