bench/util.ml: Fmt List Printf String Sys
