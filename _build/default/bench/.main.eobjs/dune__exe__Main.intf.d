bench/main.mli:
