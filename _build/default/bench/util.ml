(* Shared helpers for the experiment harness. *)

let time_ms f =
  let t0 = Sys.time () in
  let r = f () in
  (r, (Sys.time () -. t0) *. 1000.)

(* aligned plain-text tables *)
let print_table ~title ~header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let pad i cell = cell ^ String.make (List.nth widths i - String.length cell) ' ' in
  Fmt.pr "@.## %s@.@." title;
  Fmt.pr "| %s |@." (String.concat " | " (List.mapi pad header));
  Fmt.pr "|%s|@." (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter (fun row -> Fmt.pr "| %s |@." (String.concat " | " (List.mapi pad row))) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let si n =
  if n >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.0fk" (float_of_int n /. 1e3)
  else string_of_int n
