test/test_construct.ml: Alcotest Builtin Construct List Option Result Subst Term Xchange
