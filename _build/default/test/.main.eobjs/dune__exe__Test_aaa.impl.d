test/test_aaa.ml: Accounting Action Alcotest Auth Authz Condition Eca Event_query List Meta Network Node Option Qterm Result Ruleset Store Subst Term Trust Xchange
