test/test_deductive.ml: Action Alcotest Condition Construct Deductive Eca Engine Event_query Hashtbl List Qterm Ruleset Subst Term Xchange
