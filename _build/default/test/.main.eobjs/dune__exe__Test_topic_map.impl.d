test/test_topic_map.ml: Alcotest List Option Qterm Rdf Simulate Subst Term Xchange Xchange_data
