test/test_event_query.ml: Alcotest Clock Construct Deductive_event Event Event_query Incremental Instance List Option Qterm Result String Subst Term Xchange
