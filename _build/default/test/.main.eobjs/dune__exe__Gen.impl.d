test/gen.ml: Event Event_query Fmt List QCheck Qterm Term Xchange
