test/test_term.ml: Alcotest Gen Int64 List QCheck QCheck_alcotest String Term Xchange
