test/test_integration.ml: Alcotest Clock List Meta Network Node Option Parser Ruleset Store Term Transport Xchange Xml
