test/test_condition.ml: Alcotest Builtin Condition List Option Qterm Rdf Subst Term Xchange
