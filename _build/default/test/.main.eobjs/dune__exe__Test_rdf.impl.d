test/test_rdf.ml: Alcotest List Rdf Xchange
