test/test_lang.ml: Action Alcotest Builtin Clock Condition Construct Eca Event_query Fmt Gen Incremental List Meta Parser Printer QCheck QCheck_alcotest Qterm Ruleset Term Xchange
