test/test_path.ml: Alcotest Fmt Gen List Option Path QCheck QCheck_alcotest Term Xchange
