test/test_ruleset.ml: Action Alcotest Builtin Condition Construct Deductive Eca Engine Event Event_query List Option Qterm Result Ruleset Store String Term Xchange
