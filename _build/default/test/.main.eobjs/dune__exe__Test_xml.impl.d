test/test_xml.ml: Alcotest Gen List Option QCheck QCheck_alcotest Result String Term Xchange Xml
