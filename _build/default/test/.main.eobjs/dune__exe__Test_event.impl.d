test/test_event.ml: Alcotest Clock Event Fmt History Instance List Option Qterm Simulate Subst Term Xchange
