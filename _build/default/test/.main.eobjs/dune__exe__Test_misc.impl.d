test/test_misc.ml: Action Alcotest Authz Clock Construct Eca Edsl Event Fmt Incremental Instance List Message Network Option Parser Printer Qterm Ruleset Simulate String Subst Term Trust Xchange
