test/main.mli:
