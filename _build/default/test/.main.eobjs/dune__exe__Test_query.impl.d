test/test_query.ml: Alcotest Fmt Gen List Option QCheck QCheck_alcotest Qterm Simulate Subst Term Xchange
