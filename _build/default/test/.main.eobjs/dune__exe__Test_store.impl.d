test/test_store.ml: Action Alcotest Condition List Option Path Qterm Rdf Result Simulate Store Term Xchange
