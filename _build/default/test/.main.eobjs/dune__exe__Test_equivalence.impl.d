test/test_equivalence.ml: Backward Construct Event Event_query Fmt Gen History Incremental Instance List QCheck QCheck_alcotest Qterm Term Xchange
