open Xchange

let test_clock () =
  Alcotest.(check int) "units" 3_600_000 (Clock.hours 1);
  Alcotest.(check int) "minutes" 120_000 (Clock.minutes 2);
  Alcotest.(check int) "add" 1500 (Clock.add 500 (Clock.seconds 1));
  Alcotest.(check int) "diff truncates" 0 (Clock.diff 1 5);
  Alcotest.(check string) "pp span hours" "2h" (Fmt.str "%a" Clock.pp_span (Clock.hours 2));
  Alcotest.(check string) "pp span ms" "250ms" (Fmt.str "%a" Clock.pp_span 250)

let test_event_basics () =
  let e = Event.make ~sender:"a.example" ~occurred_at:100 ~label:"ping" (Term.text "x") in
  let e2 = Event.make ~occurred_at:100 ~label:"ping" (Term.text "x") in
  Alcotest.(check bool) "ids unique and increasing" true (e2.Event.id > e.Event.id);
  Alcotest.(check int) "received defaults to occurred" 100 (Event.time e);
  let late = Event.received e 150 in
  Alcotest.(check int) "reception time" 150 (Event.time late)

let test_event_expiry () =
  let e = Event.make ~occurred_at:100 ~ttl:50 ~label:"volatile" (Term.text "x") in
  Alcotest.(check bool) "fresh" false (Event.expired e 140);
  Alcotest.(check bool) "boundary inclusive" false (Event.expired e 150);
  Alcotest.(check bool) "expired" true (Event.expired e 151);
  let forever = Event.make ~occurred_at:100 ~label:"p" (Term.text "x") in
  Alcotest.(check bool) "no ttl never expires" false (Event.expired forever max_int)

let test_event_to_term () =
  let e = Event.make ~sender:"s.example" ~occurred_at:7 ~label:"order" (Term.elem "order" []) in
  let t = Event.to_term e in
  Alcotest.(check int) "header queryable" 1
    (List.length
       (Simulate.matches_anywhere
          (Qterm.el "sender" [ Qterm.pos (Qterm.txt "s.example") ])
          t))

let test_history_retention () =
  let h = History.create ~retention:(History.Keep 100) () in
  for i = 1 to 10 do
    History.add h (Event.make ~occurred_at:(i * 50) ~label:"e" (Term.int i))
  done;
  Alcotest.(check int) "total seen" 10 (History.total_seen h);
  Alcotest.(check bool) "bounded" true (History.length h <= 3);
  History.advance h 10_000;
  Alcotest.(check int) "all dropped after horizon" 0 (History.length h)

let test_history_unbounded () =
  let h = History.create () in
  for i = 1 to 10 do
    History.add h (Event.make ~occurred_at:i ~label:"e" (Term.int i))
  done;
  History.advance h 1_000_000;
  Alcotest.(check int) "shadow web: nothing dropped" 10 (History.length h)

let test_instance_combine () =
  let s1 = Option.get (Subst.of_list [ ("X", Term.int 1) ]) in
  let s2 = Option.get (Subst.of_list [ ("Y", Term.int 2) ]) in
  let i1 = Instance.atomic s1 10 1 and i2 = Instance.atomic s2 20 2 in
  (match Instance.combine [ i1; i2 ] with
  | Some c ->
      Alcotest.(check int) "envelope start" 10 c.Instance.t_start;
      Alcotest.(check int) "envelope end" 20 c.Instance.t_end;
      Alcotest.(check (list int)) "ids merged" [ 1; 2 ] c.Instance.ids
  | None -> Alcotest.fail "compatible instances must combine");
  let s1' = Option.get (Subst.of_list [ ("X", Term.int 9) ]) in
  Alcotest.(check bool) "conflict rejected" true
    (Instance.combine [ i1; Instance.atomic s1' 20 2 ] = None)

let test_strictly_before () =
  let i t id = Instance.atomic Subst.empty t id in
  Alcotest.(check bool) "earlier time" true (Instance.strictly_before (i 1 5) (i 2 1));
  Alcotest.(check bool) "same time, id order" true (Instance.strictly_before (i 5 1) (i 5 2));
  Alcotest.(check bool) "same time, wrong id order" false (Instance.strictly_before (i 5 2) (i 5 1));
  Alcotest.(check bool) "not before itself" false (Instance.strictly_before (i 5 1) (i 5 1))

let suite =
  ( "event",
    [
      Alcotest.test_case "clock arithmetic" `Quick test_clock;
      Alcotest.test_case "event construction" `Quick test_event_basics;
      Alcotest.test_case "volatility (expiry)" `Quick test_event_expiry;
      Alcotest.test_case "envelope as data term" `Quick test_event_to_term;
      Alcotest.test_case "history retention drops old events" `Quick test_history_retention;
      Alcotest.test_case "unbounded history keeps everything" `Quick test_history_unbounded;
      Alcotest.test_case "instance combination" `Quick test_instance_combine;
      Alcotest.test_case "temporal order with id tie-break" `Quick test_strictly_before;
    ] )
