open Xchange

let term = Alcotest.testable Term.pp Term.equal
let subst_set = Alcotest.testable Subst.pp_set (fun a b -> Subst.dedup a = Subst.dedup b)

(* ---- Subst ---- *)

let test_subst_add_merge () =
  let s = Option.get (Subst.add "X" (Term.text "a") Subst.empty) in
  Alcotest.(check (option term)) "find" (Some (Term.text "a")) (Subst.find "X" s);
  Alcotest.(check bool) "conflicting add" true (Subst.add "X" (Term.text "b") s = None);
  Alcotest.(check bool) "compatible add" true (Subst.add "X" (Term.text "a") s <> None);
  let s2 = Option.get (Subst.add "Y" (Term.int 1) Subst.empty) in
  let merged = Option.get (Subst.merge s s2) in
  Alcotest.(check (list string)) "domain" [ "X"; "Y" ] (Subst.domain merged)

let test_subst_join () =
  let mk l = Option.get (Subst.of_list l) in
  let a = [ mk [ ("X", Term.text "1") ]; mk [ ("X", Term.text "2") ] ] in
  let b = [ mk [ ("X", Term.text "2"); ("Y", Term.text "q") ] ] in
  let joined = Subst.join a b in
  Alcotest.(check int) "only compatible pairs" 1 (List.length joined);
  Alcotest.(check (option term)) "kept Y" (Some (Term.text "q")) (Subst.find "Y" (List.hd joined))

let test_subst_restrict () =
  let s = Option.get (Subst.of_list [ ("X", Term.int 1); ("Y", Term.int 2) ]) in
  Alcotest.(check (list string)) "restricted" [ "X" ] (Subst.domain (Subst.restrict [ "X" ] s))

(* ---- Simulate ---- *)

let matches q t = Simulate.matches q t
let n_matches q t = List.length (matches q t)

let data =
  Term.elem "order"
    [
      Term.elem "item" [ Term.text "ball" ];
      Term.elem "item" [ Term.text "shoe" ];
      Term.elem "customer" ~attrs:[ ("vip", "yes") ] [ Term.text "franz" ];
    ]

let test_var_binds () =
  let q = Qterm.el ~spec:Qterm.Partial "order" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "I") ]) ] in
  let answers = matches q data in
  Alcotest.(check int) "two items" 2 (List.length answers);
  let values = List.filter_map (Subst.find "I") answers in
  Alcotest.check (Alcotest.list term) "values" [ Term.text "ball"; Term.text "shoe" ]
    (List.sort Term.compare values)

let test_total_vs_partial () =
  let d = Term.elem "a" [ Term.text "x"; Term.text "y" ] in
  Alcotest.(check int) "partial with one child matches" 1
    (n_matches (Qterm.el ~ord:Term.Ordered ~spec:Qterm.Partial "a" [ Qterm.pos (Qterm.txt "x") ]) d);
  Alcotest.(check int) "total with one child fails" 0
    (n_matches (Qterm.el ~ord:Term.Ordered ~spec:Qterm.Total "a" [ Qterm.pos (Qterm.txt "x") ]) d);
  Alcotest.(check int) "total with both children matches" 1
    (n_matches
       (Qterm.el ~ord:Term.Ordered ~spec:Qterm.Total "a"
          [ Qterm.pos (Qterm.txt "x"); Qterm.pos (Qterm.txt "y") ])
       d)

let test_ordered_vs_unordered () =
  let d = Term.elem ~ord:Term.Ordered "a" [ Term.text "x"; Term.text "y" ] in
  let swapped ord spec = Qterm.el ~ord ~spec "a" [ Qterm.pos (Qterm.txt "y"); Qterm.pos (Qterm.txt "x") ] in
  Alcotest.(check int) "ordered pattern respects order" 0
    (n_matches (swapped Term.Ordered Qterm.Total) d);
  Alcotest.(check int) "unordered pattern ignores order" 1
    (n_matches (swapped Term.Unordered Qterm.Total) d);
  (* unordered data makes even ordered patterns order-insensitive *)
  let du = Term.elem ~ord:Term.Unordered "a" [ Term.text "x"; Term.text "y" ] in
  Alcotest.(check int) "unordered data" 1 (n_matches (swapped Term.Ordered Qterm.Total) du)

let test_ordered_partial_subsequence () =
  let d = Term.elem "a" [ Term.text "1"; Term.text "2"; Term.text "3" ] in
  let q13 = Qterm.el ~ord:Term.Ordered ~spec:Qterm.Partial "a" [ Qterm.pos (Qterm.txt "1"); Qterm.pos (Qterm.txt "3") ] in
  let q31 = Qterm.el ~ord:Term.Ordered ~spec:Qterm.Partial "a" [ Qterm.pos (Qterm.txt "3"); Qterm.pos (Qterm.txt "1") ] in
  Alcotest.(check int) "subsequence ok" 1 (n_matches q13 d);
  Alcotest.(check int) "wrong order" 0 (n_matches q31 d)

let test_injectivity () =
  (* two pattern children cannot consume the same data child *)
  let d = Term.elem "a" [ Term.text "x" ] in
  let q =
    Qterm.el ~ord:Term.Unordered ~spec:Qterm.Partial "a"
      [ Qterm.pos (Qterm.txt "x"); Qterm.pos (Qterm.txt "x") ]
  in
  Alcotest.(check int) "injective" 0 (n_matches q d);
  (* with two copies the match succeeds; both embeddings produce the
     same (empty) substitution, so there is one answer *)
  let d2 = Term.elem "a" [ Term.text "x"; Term.text "x" ] in
  Alcotest.(check int) "two copies available" 1 (n_matches q d2)

let test_without () =
  let q_no_vip =
    Qterm.el "order" [ Qterm.without (Qterm.el "customer" ~attrs:[ ("vip", Qterm.A_is "yes") ] []) ]
  in
  Alcotest.(check int) "vip present blocks" 0 (n_matches q_no_vip data);
  let q_no_refund = Qterm.el "order" [ Qterm.without (Qterm.el "refund" []) ] in
  Alcotest.(check int) "absent matches" 1 (n_matches q_no_refund data)

let test_without_with_bindings () =
  (* without sees the bindings of positive siblings *)
  let d =
    Term.elem ~ord:Term.Unordered "r"
      [
        Term.elem "item" [ Term.text "a" ];
        Term.elem "item" [ Term.text "b" ];
        Term.elem "banned" [ Term.text "a" ];
      ]
  in
  let q =
    Qterm.el "r"
      [
        Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "X") ]);
        Qterm.without (Qterm.el "banned" [ Qterm.pos (Qterm.var "X") ]);
      ]
  in
  let answers = matches q d in
  Alcotest.(check int) "only unbanned item" 1 (List.length answers);
  Alcotest.(check (option term)) "b survives" (Some (Term.text "b"))
    (Subst.find "X" (List.hd answers))

let test_desc () =
  let d = Term.elem "a" [ Term.elem "b" [ Term.elem "c" [ Term.text "deep" ] ] ] in
  let q = Qterm.desc (Qterm.el "c" [ Qterm.pos (Qterm.var "X") ]) in
  let answers = matches q d in
  Alcotest.(check int) "found at depth" 1 (List.length answers);
  Alcotest.(check int) "anywhere variant agrees" 1
    (List.length (Simulate.matches_anywhere (Qterm.el "c" [ Qterm.pos (Qterm.var "X") ]) d))

let test_label_var_and_any () =
  let d = Term.elem "thing" [ Term.text "v" ] in
  let q = Qterm.El { Qterm.label = Qterm.L_var "L"; attrs = []; ord = Term.Unordered; spec = Qterm.Partial; children = [] } in
  (match matches q d with
  | [ s ] -> Alcotest.(check (option term)) "label bound" (Some (Term.text "thing")) (Subst.find "L" s)
  | _ -> Alcotest.fail "expected one answer");
  let qany = Qterm.El { Qterm.label = Qterm.L_any; attrs = []; ord = Term.Unordered; spec = Qterm.Partial; children = [] } in
  Alcotest.(check int) "wildcard label" 1 (n_matches qany d)

let test_attrs () =
  let q = Qterm.el "customer" ~attrs:[ ("vip", Qterm.A_var "V") ] [] in
  (match Simulate.matches_anywhere q data with
  | [ s ] -> Alcotest.(check (option term)) "attr bound" (Some (Term.text "yes")) (Subst.find "V" s)
  | _ -> Alcotest.fail "expected one answer");
  Alcotest.(check int) "missing attr" 0
    (List.length (Simulate.matches_anywhere (Qterm.el "customer" ~attrs:[ ("zz", Qterm.A_any) ] []) data))

let test_regex () =
  let d = Term.elem "a" [ Term.text "hello42" ] in
  Alcotest.(check int) "full match required" 1
    (n_matches (Qterm.el "a" [ Qterm.pos (Qterm.regex "[a-z]+\\d+") ]) d);
  Alcotest.(check int) "partial regex rejected" 0
    (n_matches (Qterm.el "a" [ Qterm.pos (Qterm.regex "[a-z]+") ]) d)

let test_seeding () =
  let q = Qterm.el ~spec:Qterm.Partial "order" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "I") ]) ] in
  let seed = Option.get (Subst.of_list [ ("I", Term.text "ball") ]) in
  Alcotest.(check int) "seed constrains" 1 (List.length (Simulate.matches ~seed q data))

let test_shared_var_join () =
  let d =
    Term.elem ~ord:Term.Unordered "db"
      [
        Term.elem "emp" [ Term.text "ann"; Term.text "it" ];
        Term.elem "emp" [ Term.text "bob"; Term.text "hr" ];
        Term.elem "dept" [ Term.text "it" ];
      ]
  in
  let q =
    Qterm.el "db"
      [
        Qterm.pos (Qterm.el ~ord:Term.Ordered ~spec:Qterm.Total "emp" [ Qterm.pos (Qterm.var "N"); Qterm.pos (Qterm.var "D") ]);
        Qterm.pos (Qterm.el "dept" [ Qterm.pos (Qterm.var "D") ]);
      ]
  in
  let answers = matches q d in
  Alcotest.(check int) "join on D" 1 (List.length answers);
  Alcotest.(check (option term)) "ann" (Some (Term.text "ann")) (Subst.find "N" (List.hd answers))

let test_qterm_validate () =
  (match Qterm.validate (Qterm.el "a" [ Qterm.without (Qterm.var "X") ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "without-only variable accepted");
  (match Qterm.validate (Qterm.Leaf (Qterm.Regex "[")) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad regex accepted");
  match
    Qterm.validate
      (Qterm.el "a" [ Qterm.pos (Qterm.var "X"); Qterm.without (Qterm.el "b" [ Qterm.pos (Qterm.var "X") ]) ])
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_qterm_vars () =
  let q =
    Qterm.el "a"
      [ Qterm.pos (Qterm.As ("W", Qterm.var "X")); Qterm.without (Qterm.var "N") ]
  in
  Alcotest.(check (list string)) "vars exclude negated" [ "W"; "X" ] (Qterm.vars q)

let prop_var_matches_everything =
  QCheck.Test.make ~name:"var matches any term, binding it" ~count:200 Gen.term_arb (fun t ->
      match matches (Qterm.var "X") t with
      | [ s ] -> Subst.find "X" s = Some (Term.strip_ids t)
      | _ -> false)

let prop_total_self_match =
  QCheck.Test.make ~name:"a term matches its own exact pattern" ~count:200 Gen.xml_term_arb
    (fun t ->
      (* derive the exact total pattern of a term *)
      let rec pattern_of t =
        match t with
        | Term.Text s -> Qterm.Leaf (Qterm.Text_is s)
        | Term.Num f -> Qterm.Leaf (Qterm.Num_is f)
        | Term.Bool b -> Qterm.Leaf (Qterm.Bool_is b)
        | Term.Elem e ->
            Qterm.El
              {
                Qterm.label = Qterm.L e.Term.label;
                attrs = List.map (fun (k, v) -> (k, Qterm.A_is v)) e.Term.attrs;
                ord = e.Term.ord;
                spec = Qterm.Total;
                children = List.map (fun c -> Qterm.pos (pattern_of c)) e.Term.children;
              }
      in
      matches (pattern_of t) t <> [])

let prop_partial_weaker_than_total =
  QCheck.Test.make ~name:"total match implies partial match" ~count:200
    (QCheck.pair Gen.qterm_arb Gen.term_arb) (fun (q, t) ->
      let rec relax q =
        match q with
        | Qterm.El e -> Qterm.El { e with Qterm.spec = Qterm.Partial; children = List.map relax_child e.Qterm.children }
        | Qterm.As (v, inner) -> Qterm.As (v, relax inner)
        | Qterm.Desc inner -> Qterm.Desc (relax inner)
        | Qterm.Var _ | Qterm.Leaf _ -> q
      and relax_child = function
        | Qterm.Pos p -> Qterm.Pos (relax p)
        | Qterm.Without w -> Qterm.Without w
        | Qterm.Opt p -> Qterm.Opt (relax p)
      in
      let total_answers = matches q t in
      total_answers = [] || matches (relax q) t <> [])

let prop_seed_restricts =
  QCheck.Test.make ~name:"seeded answers are a subset of unseeded" ~count:200
    (QCheck.pair Gen.qterm_arb Gen.term_arb) (fun (q, t) ->
      let all = matches q t in
      match all with
      | [] -> true
      | first :: _ ->
          let seeded = Simulate.matches ~seed:first q t in
          List.for_all (fun s -> List.exists (Subst.equal s) all) seeded
          && List.exists (Subst.equal first) seeded)

let subst_gen =
  QCheck.Gen.(
    map
      (fun pairs ->
        List.fold_left
          (fun s (v, t) -> match Subst.add v t s with Some s' -> s' | None -> s)
          Subst.empty pairs)
      (list_size (int_bound 4) (pair Gen.var_name Gen.term_gen)))

let subst_arb = QCheck.make ~print:(Fmt.str "%a" Subst.pp) subst_gen

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:300 (QCheck.pair subst_arb subst_arb)
    (fun (a, b) ->
      match (Subst.merge a b, Subst.merge b a) with
      | Some x, Some y -> Subst.equal x y
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:300
    (QCheck.triple subst_arb subst_arb subst_arb) (fun (a, b, c) ->
      let lhs = Option.bind (Subst.merge a b) (fun ab -> Subst.merge ab c) in
      let rhs = Option.bind (Subst.merge b c) (fun bc -> Subst.merge a bc) in
      match (lhs, rhs) with
      | Some x, Some y -> Subst.equal x y
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_merge_identity =
  QCheck.Test.make ~name:"empty is a merge identity" ~count:300 subst_arb (fun s ->
      match Subst.merge s Subst.empty with Some s' -> Subst.equal s s' | None -> false)

let prop_restrict_domain =
  QCheck.Test.make ~name:"restrict keeps only named variables" ~count:300 subst_arb (fun s ->
      match Subst.domain s with
      | [] -> true
      | v :: _ ->
          let r = Subst.restrict [ v ] s in
          Subst.domain r = [ v ] && Subst.find v r = Subst.find v s)

let suite =
  ( "query",
    [
      Alcotest.test_case "substitution add/merge" `Quick test_subst_add_merge;
      Alcotest.test_case "binding-set join" `Quick test_subst_join;
      Alcotest.test_case "restriction" `Quick test_subst_restrict;
      Alcotest.test_case "variables bind extracted data" `Quick test_var_binds;
      Alcotest.test_case "total vs partial breadth" `Quick test_total_vs_partial;
      Alcotest.test_case "ordered vs unordered" `Quick test_ordered_vs_unordered;
      Alcotest.test_case "ordered partial = subsequence" `Quick test_ordered_partial_subsequence;
      Alcotest.test_case "children matching is injective" `Quick test_injectivity;
      Alcotest.test_case "without (negated subterms)" `Quick test_without;
      Alcotest.test_case "without sees sibling bindings" `Quick test_without_with_bindings;
      Alcotest.test_case "descendant matching" `Quick test_desc;
      Alcotest.test_case "label variables and wildcards" `Quick test_label_var_and_any;
      Alcotest.test_case "attribute patterns" `Quick test_attrs;
      Alcotest.test_case "regex leaves (full match)" `Quick test_regex;
      Alcotest.test_case "seeded matching" `Quick test_seeding;
      Alcotest.test_case "shared variables join" `Quick test_shared_var_join;
      Alcotest.test_case "qterm validation" `Quick test_qterm_validate;
      Alcotest.test_case "qterm vars analysis" `Quick test_qterm_vars;
      QCheck_alcotest.to_alcotest prop_var_matches_everything;
      QCheck_alcotest.to_alcotest prop_total_self_match;
      QCheck_alcotest.to_alcotest prop_partial_weaker_than_total;
      QCheck_alcotest.to_alcotest prop_seed_restricts;
      QCheck_alcotest.to_alcotest prop_merge_commutative;
      QCheck_alcotest.to_alcotest prop_merge_associative;
      QCheck_alcotest.to_alcotest prop_merge_identity;
      QCheck_alcotest.to_alcotest prop_restrict_domain;
    ] )

let _ = subst_set
