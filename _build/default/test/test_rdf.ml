open Xchange

let iri s = Rdf.Iri s
let tr s p o = { Rdf.s; p; o }

let test_graph_basics () =
  let g = Rdf.create () in
  Alcotest.(check bool) "add fresh" true (Rdf.add g (tr (iri "a") "p" (Rdf.Lit "x")));
  Alcotest.(check bool) "add dup" false (Rdf.add g (tr (iri "a") "p" (Rdf.Lit "x")));
  Alcotest.(check int) "size" 1 (Rdf.size g);
  Alcotest.(check bool) "mem" true (Rdf.mem g (tr (iri "a") "p" (Rdf.Lit "x")));
  Alcotest.(check bool) "remove" true (Rdf.remove g (tr (iri "a") "p" (Rdf.Lit "x")));
  Alcotest.(check bool) "remove absent" false (Rdf.remove g (tr (iri "a") "p" (Rdf.Lit "x")));
  Alcotest.(check int) "empty" 0 (Rdf.size g)

let test_copy_isolated () =
  let g = Rdf.of_list [ tr (iri "a") "p" (iri "b") ] in
  let g2 = Rdf.copy g in
  ignore (Rdf.add g2 (tr (iri "c") "p" (iri "d")));
  Alcotest.(check int) "original untouched" 1 (Rdf.size g)

let sample_graph () =
  Rdf.of_list
    [
      tr (iri "alice") "knows" (iri "bob");
      tr (iri "bob") "knows" (iri "carol");
      tr (iri "alice") "age" (Rdf.Lit_num 30.);
      tr (iri "bob") "age" (Rdf.Lit_num 40.);
    ]

let test_query_single () =
  let g = sample_graph () in
  let answers =
    Rdf.query g [ { Rdf.ps = Rdf.Var "X"; pp = Rdf.Exact (iri "knows"); po = Rdf.Var "Y" } ]
  in
  Alcotest.(check int) "two knows edges" 2 (List.length answers)

let test_query_join () =
  let g = sample_graph () in
  let answers =
    Rdf.query g
      [
        { Rdf.ps = Rdf.Var "X"; pp = Rdf.Exact (iri "knows"); po = Rdf.Var "Y" };
        { Rdf.ps = Rdf.Var "Y"; pp = Rdf.Exact (iri "knows"); po = Rdf.Var "Z" };
      ]
  in
  Alcotest.(check int) "one 2-hop path" 1 (List.length answers);
  match answers with
  | [ binding ] ->
      Alcotest.(check bool) "X=alice" true (Rdf.equal_node (List.assoc "X" binding) (iri "alice"));
      Alcotest.(check bool) "Z=carol" true (Rdf.equal_node (List.assoc "Z" binding) (iri "carol"))
  | _ -> Alcotest.fail "expected exactly one answer"

let test_query_same_var_twice () =
  let g = Rdf.of_list [ tr (iri "a") "p" (iri "a"); tr (iri "a") "p" (iri "b") ] in
  let answers =
    Rdf.query g [ { Rdf.ps = Rdf.Var "X"; pp = Rdf.Exact (iri "p"); po = Rdf.Var "X" } ]
  in
  Alcotest.(check int) "reflexive only" 1 (List.length answers)

let test_rdfs_subclass () =
  let g =
    Rdf.of_list
      [
        tr (iri "dog") Rdf.rdfs_sub_class_of (iri "mammal");
        tr (iri "mammal") Rdf.rdfs_sub_class_of (iri "animal");
        tr (iri "rex") Rdf.rdf_type (iri "dog");
      ]
  in
  let c = Rdf.rdfs_closure g in
  Alcotest.(check bool) "transitivity" true
    (Rdf.mem c (tr (iri "dog") Rdf.rdfs_sub_class_of (iri "animal")));
  Alcotest.(check bool) "type propagation" true (Rdf.mem c (tr (iri "rex") Rdf.rdf_type (iri "animal")));
  Alcotest.(check int) "input untouched" 3 (Rdf.size g)

let test_rdfs_subproperty () =
  let g =
    Rdf.of_list
      [
        tr (iri "hasBoss") Rdf.rdfs_sub_property_of (iri "knows");
        tr (iri "alice") "hasBoss" (iri "bob");
      ]
  in
  let c = Rdf.rdfs_closure g in
  Alcotest.(check bool) "property propagation" true (Rdf.mem c (tr (iri "alice") "knows" (iri "bob")))

let test_rdfs_domain_range () =
  let g =
    Rdf.of_list
      [
        tr (iri "teaches") Rdf.rdfs_domain (iri "teacher");
        tr (iri "teaches") Rdf.rdfs_range (iri "course");
        tr (iri "ann") "teaches" (iri "math");
        tr (iri "ann") "likes" (Rdf.Lit "tea");
        tr (iri "likes") Rdf.rdfs_range (iri "thing");
      ]
  in
  let c = Rdf.rdfs_closure g in
  Alcotest.(check bool) "domain typing" true (Rdf.mem c (tr (iri "ann") Rdf.rdf_type (iri "teacher")));
  Alcotest.(check bool) "range typing" true (Rdf.mem c (tr (iri "math") Rdf.rdf_type (iri "course")));
  Alcotest.(check bool) "no literal typing" false
    (Rdf.mem c (tr (Rdf.Lit "tea") Rdf.rdf_type (iri "thing")))

let test_rdfs_declaration_after_data () =
  (* domain declared in the same graph as pre-existing data must apply *)
  let g =
    Rdf.of_list
      [ tr (iri "x") "p" (iri "y"); tr (iri "p") Rdf.rdfs_domain (iri "c") ]
  in
  let c = Rdf.rdfs_closure g in
  Alcotest.(check bool) "late declaration applies" true (Rdf.mem c (tr (iri "x") Rdf.rdf_type (iri "c")))

let test_term_roundtrip () =
  let t = tr (iri "a") "p" (Rdf.Lit_num 3.5) in
  (match Rdf.triple_of_term (Rdf.triple_to_term t) with
  | Ok t' -> Alcotest.(check int) "triple roundtrip" 0 (Rdf.compare_triple t t')
  | Error e -> Alcotest.fail e);
  let g = sample_graph () in
  match Rdf.graph_of_term (Rdf.graph_to_term g) with
  | Ok g' -> Alcotest.(check int) "graph roundtrip" (Rdf.size g) (Rdf.size g')
  | Error e -> Alcotest.fail e

let test_owl_same_as () =
  let g =
    Rdf.of_list
      [
        tr (iri "clark") Rdf.owl_same_as (iri "superman");
        tr (iri "clark") "worksAt" (iri "planet");
        tr (iri "lois") "loves" (iri "superman");
      ]
  in
  let c = Rdf.owl_closure g in
  Alcotest.(check bool) "symmetric" true (Rdf.mem c (tr (iri "superman") Rdf.owl_same_as (iri "clark")));
  Alcotest.(check bool) "subject substitution" true
    (Rdf.mem c (tr (iri "superman") "worksAt" (iri "planet")));
  Alcotest.(check bool) "object substitution" true (Rdf.mem c (tr (iri "lois") "loves" (iri "clark")))

let test_owl_property_characteristics () =
  let g =
    Rdf.of_list
      [
        tr (iri "marriedTo") Rdf.rdf_type (Rdf.Iri Rdf.owl_symmetric);
        tr (iri "ann") "marriedTo" (iri "bob");
        tr (iri "ancestorOf") Rdf.rdf_type (Rdf.Iri Rdf.owl_transitive);
        tr (iri "x") "ancestorOf" (iri "y");
        tr (iri "y") "ancestorOf" (iri "z");
      ]
  in
  let c = Rdf.owl_closure g in
  Alcotest.(check bool) "symmetry" true (Rdf.mem c (tr (iri "bob") "marriedTo" (iri "ann")));
  Alcotest.(check bool) "transitivity" true (Rdf.mem c (tr (iri "x") "ancestorOf" (iri "z")));
  (* declaration arriving conceptually "after" the data still applies *)
  let g2 =
    Rdf.of_list
      [
        tr (iri "p") "ancestorOf" (iri "q");
        tr (iri "q") "ancestorOf" (iri "r");
        tr (iri "ancestorOf") Rdf.rdf_type (Rdf.Iri Rdf.owl_transitive);
      ]
  in
  Alcotest.(check bool) "late declaration" true
    (Rdf.mem (Rdf.owl_closure g2) (tr (iri "p") "ancestorOf" (iri "r")))

let test_owl_inverse () =
  let g =
    Rdf.of_list
      [
        tr (iri "hasChild") Rdf.owl_inverse_of (iri "hasParent");
        tr (iri "ann") "hasChild" (iri "bob");
        tr (iri "carl") "hasParent" (iri "dora");
      ]
  in
  let c = Rdf.owl_closure g in
  Alcotest.(check bool) "forward" true (Rdf.mem c (tr (iri "bob") "hasParent" (iri "ann")));
  Alcotest.(check bool) "backward" true (Rdf.mem c (tr (iri "dora") "hasChild" (iri "carl")))

let test_owl_closure_includes_rdfs () =
  let g =
    Rdf.of_list
      [
        tr (iri "dog") Rdf.rdfs_sub_class_of (iri "animal");
        tr (iri "rex") Rdf.rdf_type (iri "dog");
        tr (iri "rex") Rdf.owl_same_as (iri "rexy");
      ]
  in
  let c = Rdf.owl_closure g in
  Alcotest.(check bool) "rdfs typing" true (Rdf.mem c (tr (iri "rex") Rdf.rdf_type (iri "animal")));
  Alcotest.(check bool) "owl x rdfs interplay" true
    (Rdf.mem c (tr (iri "rexy") Rdf.rdf_type (iri "animal")))

let test_closure_idempotent () =
  let g =
    Rdf.of_list
      [
        tr (iri "a") Rdf.rdfs_sub_class_of (iri "b");
        tr (iri "b") Rdf.rdfs_sub_class_of (iri "c");
        tr (iri "x") Rdf.rdf_type (iri "a");
      ]
  in
  let c1 = Rdf.rdfs_closure g in
  let c2 = Rdf.rdfs_closure c1 in
  Alcotest.(check int) "closure is a fixpoint" (Rdf.size c1) (Rdf.size c2)

let suite =
  ( "rdf",
    [
      Alcotest.test_case "graph add/remove/mem" `Quick test_graph_basics;
      Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
      Alcotest.test_case "single-pattern query" `Quick test_query_single;
      Alcotest.test_case "join query" `Quick test_query_join;
      Alcotest.test_case "repeated variable in pattern" `Quick test_query_same_var_twice;
      Alcotest.test_case "RDFS subclass closure" `Quick test_rdfs_subclass;
      Alcotest.test_case "RDFS subproperty closure" `Quick test_rdfs_subproperty;
      Alcotest.test_case "RDFS domain/range typing" `Quick test_rdfs_domain_range;
      Alcotest.test_case "declarations after data" `Quick test_rdfs_declaration_after_data;
      Alcotest.test_case "term embedding roundtrip" `Quick test_term_roundtrip;
      Alcotest.test_case "owl:sameAs semantics" `Quick test_owl_same_as;
      Alcotest.test_case "owl symmetric/transitive properties" `Quick test_owl_property_characteristics;
      Alcotest.test_case "owl:inverseOf" `Quick test_owl_inverse;
      Alcotest.test_case "owl closure subsumes RDFS" `Quick test_owl_closure_includes_rdfs;
      Alcotest.test_case "closure idempotent" `Quick test_closure_idempotent;
    ] )
