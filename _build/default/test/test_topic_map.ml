open Xchange
module Tm = Xchange_data.Topic_map

let sample () =
  Tm.empty
  |> fun t ->
  Tm.add_topic t (Tm.topic ~names:[ "Puccini" ] ~topic_type:"composer" "puccini")
  |> fun t ->
  Tm.add_topic t
    (Tm.topic ~names:[ "Tosca" ] ~topic_type:"opera"
       ~occurrences:[ ("premiere-year", "1900") ]
       "tosca")
  |> fun t ->
  Tm.add_association t
    (Tm.association ~assoc_type:"composed-by" [ ("work", "tosca"); ("composer", "puccini") ])

let test_basics () =
  let t = sample () in
  Alcotest.(check int) "two topics" 2 (List.length (Tm.topics t));
  Alcotest.(check int) "one association" 1 (List.length (Tm.associations t));
  (match Tm.find_topic t "tosca" with
  | Some topic ->
      Alcotest.(check (list string)) "names" [ "Tosca" ] topic.Tm.names;
      Alcotest.(check (option string)) "type" (Some "opera") topic.Tm.topic_type
  | None -> Alcotest.fail "tosca missing");
  Alcotest.(check int) "typed lookup" 1 (List.length (Tm.topics_of_type t "opera"));
  Alcotest.(check (list string)) "players" [ "puccini" ]
    (Tm.players t ~assoc_type:"composed-by" ~role:"composer");
  Alcotest.(check int) "associations of a player" 1
    (List.length (Tm.associations_with t ~player:"tosca"))

let test_topic_unification () =
  (* adding the same id merges names/occurrences — no duplicate topics *)
  let t = sample () in
  let t =
    Tm.add_topic t
      (Tm.topic ~names:[ "Giacomo Puccini" ] ~occurrences:[ ("born", "1858") ] "puccini")
  in
  Alcotest.(check int) "still two topics" 2 (List.length (Tm.topics t));
  match Tm.find_topic t "puccini" with
  | Some topic ->
      Alcotest.(check (list string)) "names unioned" [ "Puccini"; "Giacomo Puccini" ] topic.Tm.names;
      Alcotest.(check (option string)) "type kept" (Some "composer") topic.Tm.topic_type;
      Alcotest.(check int) "occurrence added" 1 (List.length topic.Tm.occurrences)
  | None -> Alcotest.fail "puccini missing"

let test_merge_maps () =
  let other =
    Tm.add_topic Tm.empty (Tm.topic ~names:[ "La Bohème" ] ~topic_type:"opera" "boheme")
    |> fun t ->
    Tm.add_topic t (Tm.topic ~occurrences:[ ("died", "1924") ] "puccini")
    |> fun t ->
    Tm.add_association t
      (Tm.association ~assoc_type:"composed-by" [ ("work", "boheme"); ("composer", "puccini") ])
  in
  let merged = Tm.merge (sample ()) other in
  Alcotest.(check int) "three topics" 3 (List.length (Tm.topics merged));
  Alcotest.(check int) "two associations" 2 (List.length (Tm.associations merged));
  Alcotest.(check (list string)) "both works" [ "boheme"; "tosca" ]
    (Tm.players merged ~assoc_type:"composed-by" ~role:"work");
  (* merging is idempotent *)
  let again = Tm.merge merged merged in
  Alcotest.(check int) "idempotent topics" 3 (List.length (Tm.topics again));
  Alcotest.(check int) "idempotent associations" 2 (List.length (Tm.associations again))

let test_term_roundtrip () =
  let t = sample () in
  match Tm.of_term (Tm.to_term t) with
  | Ok t' ->
      Alcotest.(check int) "topics survive" 2 (List.length (Tm.topics t'));
      Alcotest.(check int) "associations survive" 1 (List.length (Tm.associations t'));
      Alcotest.(check bool) "occurrence survives" true
        ((Option.get (Tm.find_topic t' "tosca")).Tm.occurrences
        = [ { Tm.occ_type = "premiere-year"; value = "1900" } ])
  | Error e -> Alcotest.fail e

let test_term_rejects_junk () =
  (match Tm.of_term (Term.text "x") with Error _ -> () | Ok _ -> Alcotest.fail "junk accepted");
  match Tm.of_term (Term.elem "topicMap" [ Term.elem "topic" [] ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "id-less topic accepted"

let test_queryable_as_term () =
  (* the whole point of the embedding: query topic maps with query terms *)
  let q =
    Qterm.el "topic"
      ~attrs:[ ("id", Qterm.A_var "Id") ]
      [ Qterm.pos (Qterm.el "instanceOf" [ Qterm.pos (Qterm.txt "opera") ]) ]
  in
  let answers = Simulate.matches_anywhere q (Tm.to_term (sample ())) in
  Alcotest.(check int) "operas found by pattern" 1 (List.length answers);
  Alcotest.(check (option string)) "id extracted" (Some "tosca")
    (Option.bind (Subst.find "Id" (List.hd answers)) Term.as_text)

let test_rdf_projection () =
  let g = Tm.to_rdf (sample ()) in
  Alcotest.(check bool) "typing triple" true
    (Rdf.mem g { Rdf.s = Rdf.Iri "tosca"; p = Rdf.rdf_type; o = Rdf.Iri "opera" });
  Alcotest.(check bool) "occurrence triple" true
    (Rdf.mem g { Rdf.s = Rdf.Iri "tosca"; p = "premiere-year"; o = Rdf.Lit "1900" });
  (* binary association: subject plays the alphabetically first role
     (composer < work) *)
  Alcotest.(check bool) "association triple" true
    (Rdf.mem g { Rdf.s = Rdf.Iri "puccini"; p = "composed-by"; o = Rdf.Iri "tosca" });
  (* n-ary associations reify *)
  let t3 =
    Tm.add_association (sample ())
      (Tm.association ~assoc_type:"premiere"
         [ ("work", "tosca"); ("city", "rome"); ("year", "y1900") ])
  in
  let g3 = Tm.to_rdf t3 in
  let reified =
    Rdf.query g3
      [ { Rdf.ps = Rdf.Var "A"; pp = Rdf.Exact (Rdf.Iri Rdf.rdf_type); po = Rdf.Exact (Rdf.Iri "premiere") } ]
  in
  Alcotest.(check int) "reification node" 1 (List.length reified)

let suite =
  ( "topic-map",
    [
      Alcotest.test_case "topics, associations, lookups" `Quick test_basics;
      Alcotest.test_case "same-id topics unify" `Quick test_topic_unification;
      Alcotest.test_case "map merging" `Quick test_merge_maps;
      Alcotest.test_case "term embedding roundtrip" `Quick test_term_roundtrip;
      Alcotest.test_case "malformed terms rejected" `Quick test_term_rejects_junk;
      Alcotest.test_case "queryable through query terms" `Quick test_queryable_as_term;
      Alcotest.test_case "RDF projection" `Quick test_rdf_projection;
    ] )
