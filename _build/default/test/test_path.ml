open Xchange

let term = Alcotest.testable Term.pp Term.equal

let doc =
  Term.elem "library"
    [
      Term.elem "shelf" [ Term.elem "book" [ Term.text "iliad" ]; Term.elem "dvd" [] ];
      Term.elem "shelf" [ Term.elem "book" [ Term.text "odyssey" ] ];
      Term.elem "desk" [ Term.elem "book" [ Term.text "notes" ] ];
    ]

let sel s = match Path.parse_selector s with Ok x -> x | Error e -> Alcotest.fail e

let test_parse_selector () =
  Alcotest.(check int) "three steps" 3 (List.length (sel "/a/b/c"));
  Alcotest.(check int) "descendant" 1 (List.length (sel "//book"));
  Alcotest.(check int) "root" 0 (List.length (sel "/"));
  (match Path.parse_selector "/a//" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty step accepted");
  Alcotest.(check string)
    "pp roundtrip" "/a//b/*"
    (Fmt.str "%a" Path.pp_selector (sel "/a//b/*"))

let test_select_child () =
  let hits = Path.select doc (sel "/shelf") in
  Alcotest.(check int) "two shelves" 2 (List.length hits);
  let books = Path.select doc (sel "/shelf/book") in
  Alcotest.(check int) "books on shelves" 2 (List.length books)

let test_select_descendant () =
  let books = Path.select doc (sel "//book") in
  Alcotest.(check int) "all books" 3 (List.length books);
  let any = Path.select doc (sel "/*") in
  Alcotest.(check int) "all top children" 3 (List.length any)

let test_select_excludes_self () =
  let self = Path.select doc (sel "//library") in
  Alcotest.(check int) "descendant axis excludes context" 0 (List.length self)

let test_get () =
  Alcotest.(check (option term)) "get root" (Some doc) (Path.get doc []);
  Alcotest.(check (option term))
    "get nested" (Some (Term.text "odyssey"))
    (Path.get doc [ 1; 0; 0 ]);
  Alcotest.(check (option term)) "out of range" None (Path.get doc [ 9 ])

let test_replace () =
  let t = Term.elem "a" [ Term.text "x" ] in
  let t' = Option.get (Path.replace t [ 0 ] (Term.text "y")) in
  Alcotest.check term "replaced" (Term.elem "a" [ Term.text "y" ]) t';
  Alcotest.check term "replace root" (Term.text "r") (Option.get (Path.replace t [] (Term.text "r")));
  Alcotest.(check (option term)) "invalid path" None (Path.replace t [ 5 ] (Term.text "y"))

let test_delete () =
  let t = Term.elem "a" [ Term.text "x"; Term.text "y" ] in
  Alcotest.check term "delete first" (Term.elem "a" [ Term.text "y" ])
    (Option.get (Path.delete t [ 0 ]));
  Alcotest.(check (option term)) "cannot delete root" None (Path.delete t []);
  Alcotest.(check (option term)) "bad index" None (Path.delete t [ 7 ])

let test_insert_child () =
  let t = Term.elem "a" [ Term.text "x" ] in
  Alcotest.check term "append"
    (Term.elem "a" [ Term.text "x"; Term.text "y" ])
    (Option.get (Path.insert_child t [] (Term.text "y")));
  Alcotest.check term "prepend"
    (Term.elem "a" [ Term.text "y"; Term.text "x" ])
    (Option.get (Path.insert_child ~at:0 t [] (Term.text "y")));
  Alcotest.(check (option term)) "cannot insert into leaf" None
    (Path.insert_child t [ 0 ] (Term.text "y"))

let prop_select_paths_valid =
  QCheck.Test.make ~name:"selected paths resolve to the selected node" ~count:200
    Gen.xml_term_arb (fun t ->
      let hits = Path.select t [ (Path.Descendant, Path.Any) ] in
      List.for_all
        (fun (p, node) ->
          match Path.get t p with Some found -> Term.equal found node | None -> false)
        hits)

let prop_replace_get =
  QCheck.Test.make ~name:"get after replace yields replacement" ~count:200 Gen.xml_term_arb
    (fun t ->
      let hits = Path.select t [ (Path.Descendant, Path.Any) ] in
      match hits with
      | [] -> true
      | (p, _) :: _ -> (
          let marker = Term.text "MARK" in
          match Path.replace t p marker with
          | None -> false
          | Some t' -> (
              match Path.get t' p with Some got -> Term.equal got marker | None -> false)))

let suite =
  ( "path",
    [
      Alcotest.test_case "selector parsing" `Quick test_parse_selector;
      Alcotest.test_case "child selection" `Quick test_select_child;
      Alcotest.test_case "descendant selection" `Quick test_select_descendant;
      Alcotest.test_case "descendant excludes self" `Quick test_select_excludes_self;
      Alcotest.test_case "positional get" `Quick test_get;
      Alcotest.test_case "replace" `Quick test_replace;
      Alcotest.test_case "delete" `Quick test_delete;
      Alcotest.test_case "insert child" `Quick test_insert_child;
      QCheck_alcotest.to_alcotest prop_select_paths_valid;
      QCheck_alcotest.to_alcotest prop_replace_get;
    ] )
