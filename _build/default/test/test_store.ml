open Xchange

let term = Alcotest.testable Term.pp Term.equal

let fresh_store () =
  let s = Store.create () in
  Store.add_doc s "/news"
    (Term.elem ~ord:Term.Unordered "news"
       [
         Term.elem "article" [ Term.elem "title" [ Term.text "rain" ]; Term.elem "body" [ Term.text "wet" ] ];
         Term.elem "article" [ Term.elem "title" [ Term.text "sun" ]; Term.elem "body" [ Term.text "dry" ] ];
       ]);
  s

let apply s u = match Store.apply s u with Ok r -> r | Error e -> Alcotest.fail e

let test_docs () =
  let s = fresh_store () in
  Alcotest.(check (list string)) "names" [ "/news" ] (Store.doc_names s);
  Alcotest.(check bool) "oids assigned" true
    (Term.elem_id (Option.get (Store.doc s "/news")) <> Term.no_id);
  Alcotest.(check bool) "remove" true (Store.remove_doc s "/news");
  Alcotest.(check bool) "remove twice" false (Store.remove_doc s "/news")

let test_insert_notification () =
  let s = fresh_store () in
  let n, notifications =
    apply s (Action.U_insert { doc = "/news"; selector = []; at = None; content = Term.elem "article" [] })
  in
  Alcotest.(check int) "one insertion point" 1 n;
  (match notifications with
  | [ { Store.doc; summary } ] ->
      Alcotest.(check string) "doc named" "/news" doc;
      Alcotest.(check (option string)) "kind attr" (Some "insert") (Term.attr "kind" summary)
  | _ -> Alcotest.fail "expected one notification");
  Alcotest.(check int) "3 articles" 3 (List.length (Term.children (Option.get (Store.doc s "/news"))))

let test_insert_missing_doc () =
  let s = fresh_store () in
  match Store.apply s (Action.U_insert { doc = "/none"; selector = []; at = None; content = Term.text "x" }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "insert into missing doc accepted"

let test_delete_pattern () =
  let s = fresh_store () in
  let rain = Qterm.el "article" [ Qterm.pos (Qterm.el "title" [ Qterm.pos (Qterm.txt "rain") ]) ] in
  let n, _ = apply s (Action.U_delete { doc = "/news"; selector = []; pattern = Some rain }) in
  Alcotest.(check int) "one node affected" 1 n;
  Alcotest.(check int) "one article left" 1
    (List.length (Term.children (Option.get (Store.doc s "/news"))))

let test_replace_keeps_surrogate_identity () =
  let s = fresh_store () in
  let doc = Option.get (Store.doc s "/news") in
  let first_oid = Term.elem_id (List.hd (Term.children doc)) in
  let sel = Result.get_ok (Path.parse_selector "/article") in
  (* replace ALL articles; each replacement inherits the oid it replaces *)
  let n, _ =
    apply s (Action.U_replace { doc = "/news"; selector = sel; content = Term.elem "article" [ Term.text "new" ] })
  in
  Alcotest.(check int) "two replaced" 2 n;
  let doc' = Option.get (Store.doc s "/news") in
  let oids' = List.map Term.elem_id (Term.children doc') in
  Alcotest.(check bool) "identity preserved across value change" true (List.mem first_oid oids')

let test_rdf_updates () =
  let s = Store.create () in
  let t = { Rdf.s = Rdf.Iri "a"; p = "p"; o = Rdf.Lit "x" } in
  let n, _ = apply s (Action.U_rdf_assert { doc = "/g"; triple = t }) in
  Alcotest.(check int) "asserted" 1 n;
  let n2, notifs = apply s (Action.U_rdf_assert { doc = "/g"; triple = t }) in
  Alcotest.(check int) "duplicate is a no-op" 0 n2;
  Alcotest.(check int) "no notification for no-op" 0 (List.length notifs);
  let n3, _ = apply s (Action.U_rdf_retract { doc = "/g"; triple = t }) in
  Alcotest.(check int) "retracted" 1 n3;
  match Store.apply s (Action.U_rdf_retract { doc = "/none"; triple = t }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "retract from missing graph accepted"

let test_env () =
  let s = fresh_store () in
  let env = Store.env s in
  Alcotest.(check int) "local fetch" 1 (List.length (env.Condition.fetch (Condition.Local "/news")));
  Alcotest.(check int) "remote fetch by path" 1
    (List.length (env.Condition.fetch (Condition.Remote "anyhost.example/news")));
  Alcotest.(check int) "views not resolved here" 0
    (List.length (env.Condition.fetch (Condition.View "v")))

(* ---- Thesis 10: watches ---- *)

let article_path store title =
  let doc = Option.get (Store.doc store "/news") in
  let hits =
    Path.select doc [ (Path.Child, Path.Tag "article") ]
    |> List.filter (fun (_, a) ->
           Simulate.holds (Qterm.el "article" [ Qterm.pos (Qterm.el "title" [ Qterm.pos (Qterm.txt title) ]) ]) a)
  in
  match hits with (p, _) :: _ -> p | [] -> Alcotest.fail ("article not found: " ^ title)

let test_surrogate_watch_survives_change () =
  let s = fresh_store () in
  let p = article_path s "rain" in
  let w = Result.get_ok (Store.watch_surrogate s ~doc:"/news" p) in
  Alcotest.(check bool) "initially unchanged" true (Store.poll_watch s w = `Unchanged);
  (* change the article's value through a replace that keeps identity *)
  let sel = Result.get_ok (Path.parse_selector "/article") in
  ignore
    (apply s
       (Action.U_replace { doc = "/news"; selector = sel; content = Term.elem "article" [ Term.text "v2" ] }));
  (match Store.poll_watch s w with
  | `Changed t -> Alcotest.check term "new value visible" (Term.elem "article" [ Term.text "v2" ]) (Term.strip_ids t)
  | `Unchanged -> Alcotest.fail "change missed"
  | `Lost -> Alcotest.fail "surrogate identity lost on value change");
  (* steady state again *)
  Alcotest.(check bool) "quiet after change" true (Store.poll_watch s w = `Unchanged)

let test_surrogate_watch_lost_on_delete () =
  let s = fresh_store () in
  let p = article_path s "rain" in
  let w = Result.get_ok (Store.watch_surrogate s ~doc:"/news" p) in
  let rain = Qterm.el "article" [ Qterm.pos (Qterm.el "title" [ Qterm.pos (Qterm.txt "rain") ]) ] in
  ignore (apply s (Action.U_delete { doc = "/news"; selector = []; pattern = Some rain }));
  Alcotest.(check bool) "deletion loses the object" true (Store.poll_watch s w = `Lost)

let test_extensional_watch_lost_on_change () =
  let s = fresh_store () in
  let doc = Option.get (Store.doc s "/news") in
  let rain_article = List.hd (Term.children doc) in
  let w = Result.get_ok (Store.watch_extensional s ~doc:"/news" (Term.strip_ids rain_article)) in
  Alcotest.(check bool) "initially present" true (Store.poll_watch s w = `Unchanged);
  let sel = Result.get_ok (Path.parse_selector "/article") in
  ignore
    (apply s
       (Action.U_replace { doc = "/news"; selector = sel; content = Term.elem "article" [ Term.text "v2" ] }));
  (* the Thesis 10 point: when the value changes, extensional identity
     cannot find the object any more *)
  Alcotest.(check bool) "identity lost with value" true (Store.poll_watch s w = `Lost)

let test_watch_errors () =
  let s = fresh_store () in
  (match Store.watch_surrogate s ~doc:"/none" [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "watch on missing doc accepted");
  match Store.watch_extensional s ~doc:"/news" (Term.text "not-there") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "watch on absent value accepted"

let suite =
  ( "store",
    [
      Alcotest.test_case "document management" `Quick test_docs;
      Alcotest.test_case "insert + notification" `Quick test_insert_notification;
      Alcotest.test_case "insert into missing doc fails" `Quick test_insert_missing_doc;
      Alcotest.test_case "delete by pattern" `Quick test_delete_pattern;
      Alcotest.test_case "replace preserves surrogate identity" `Quick test_replace_keeps_surrogate_identity;
      Alcotest.test_case "RDF assert/retract" `Quick test_rdf_updates;
      Alcotest.test_case "query environment" `Quick test_env;
      Alcotest.test_case "surrogate watch survives value change" `Quick test_surrogate_watch_survives_change;
      Alcotest.test_case "surrogate watch lost on deletion" `Quick test_surrogate_watch_lost_on_delete;
      Alcotest.test_case "extensional watch lost on change" `Quick test_extensional_watch_lost_on_change;
      Alcotest.test_case "watch error cases" `Quick test_watch_errors;
    ] )
