open Xchange

let term = Alcotest.testable Term.pp Term.equal

let test_parse_basic () =
  let t = Xml.parse_exn "<a k=\"v\"><b>hello</b><c/></a>" in
  Alcotest.(check (option string)) "root" (Some "a") (Term.label t);
  Alcotest.(check (option string)) "attr" (Some "v") (Term.attr "k" t);
  Alcotest.(check int) "children" 2 (List.length (Term.children t))

let test_parse_entities () =
  let t = Xml.parse_exn "<a>x &amp; y &lt;z&gt; &quot;q&quot; &#65;</a>" in
  match Term.children t with
  | [ Term.Text s ] -> Alcotest.(check string) "decoded" "x & y <z> \"q\" A" s
  | _ -> Alcotest.fail "expected one text child"

let test_parse_whitespace () =
  let t = Xml.parse_exn "<a>\n  <b/>\n</a>" in
  Alcotest.(check int) "whitespace dropped" 1 (List.length (Term.children t));
  let t = Xml.parse_exn ~keep_ws:true "<a>\n  <b/>\n</a>" in
  Alcotest.(check int) "whitespace kept" 3 (List.length (Term.children t))

let test_parse_comments_and_pi () =
  let t = Xml.parse_exn "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>" in
  Alcotest.(check int) "comment skipped" 1 (List.length (Term.children t))

let test_parse_errors () =
  let bad s =
    match Xml.parse s with Ok _ -> Alcotest.fail ("accepted: " ^ s) | Error _ -> ()
  in
  bad "<a><b></a>";
  bad "<a>";
  bad "<a></a><b></b>";
  bad "";
  bad "<a foo=bar></a>"

let test_unordered_roundtrip () =
  let t = Term.elem ~ord:Term.Unordered "s" [ Term.text "x" ] in
  let back = Xml.parse_exn (Xml.to_string t) in
  Alcotest.check term "ordering flag survives" t back

let test_escaping () =
  let t = Term.elem "a" ~attrs:[ ("k", "a\"b&c") ] [ Term.text "<tag> & stuff" ] in
  Alcotest.check term "escaped roundtrip" t (Xml.parse_exn (Xml.to_string t))

let test_single_quotes () =
  let t = Xml.parse_exn "<a k='v'/>" in
  Alcotest.(check (option string)) "single-quoted attr" (Some "v") (Term.attr "k" t)

let test_html_mode () =
  let t =
    Result.get_ok
      (Xml.parse_html
         {|<!DOCTYPE html>
           <html>
             <BODY class=main>
               <p>first<p>second
               <ul><li>one<li>two</ul>
               <img src="x.png">
               <input disabled>
               <br>
             </body>
           </html>|})
  in
  Alcotest.(check (option string)) "root lower-cased" (Some "html") (Term.label t);
  let find label = Term.find_all (fun s -> Term.label s = Some label) t in
  Alcotest.(check int) "both paragraphs" 2 (List.length (find "p"));
  Alcotest.(check int) "both list items" 2 (List.length (find "li"));
  Alcotest.(check int) "void img" 1 (List.length (find "img"));
  (match find "body" with
  | [ body ] -> Alcotest.(check (option string)) "unquoted attr" (Some "main") (Term.attr "class" body)
  | _ -> Alcotest.fail "body not found");
  (match find "input" with
  | [ input ] -> Alcotest.(check (option string)) "valueless attr" (Some "") (Term.attr "disabled" input)
  | _ -> Alcotest.fail "input not found");
  (* strict mode still rejects this soup *)
  match Xml.parse "<p>first<p>second</p>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict mode accepted tag soup"

let test_html_unclosed_at_eof () =
  let t = Result.get_ok (Xml.parse_html "<div><span>hi") in
  Alcotest.(check int) "implicitly closed" 1 (List.length (Term.children t))

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (to_string t) = t (modulo leaf text rendering)" ~count:300
    Gen.xml_term_arb (fun t ->
      (* numbers and booleans serialise as text; compare after folding
         scalars to text *)
      let rec textify t =
        match t with
        | Term.Elem e -> Term.Elem { e with Term.children = List.map textify e.Term.children }
        | Term.Text _ -> t
        | Term.Num _ | Term.Bool _ -> Term.Text (Option.get (Term.as_text t))
      in
      (* XML cannot represent: whitespace-only texts (dropped) and
         adjacent scalar siblings (merged into one text node) *)
      let is_scalar = function Term.Elem _ -> false | Term.Text _ | Term.Num _ | Term.Bool _ -> true in
      let representable =
        Term.find_all
          (fun s ->
            (match s with
            | Term.Text x -> String.trim x = ""
            | Term.Num _ | Term.Bool _ | Term.Elem _ -> false)
            ||
            let rec adjacent = function
              | a :: b :: _ when is_scalar a && is_scalar b -> true
              | _ :: rest -> adjacent rest
              | [] -> false
            in
            adjacent (Term.children s))
          t
        = []
      in
      QCheck.assume representable;
      match Xml.parse (Xml.to_string t) with
      | Ok back -> Term.equal (textify (Term.strip_ids t)) back
      | Error _ -> false)

let suite =
  ( "xml",
    [
      Alcotest.test_case "basic parsing" `Quick test_parse_basic;
      Alcotest.test_case "entities" `Quick test_parse_entities;
      Alcotest.test_case "whitespace control" `Quick test_parse_whitespace;
      Alcotest.test_case "comments and declarations skipped" `Quick test_parse_comments_and_pi;
      Alcotest.test_case "malformed inputs rejected" `Quick test_parse_errors;
      Alcotest.test_case "unordered flag roundtrips" `Quick test_unordered_roundtrip;
      Alcotest.test_case "escaping roundtrips" `Quick test_escaping;
      Alcotest.test_case "single-quoted attributes" `Quick test_single_quotes;
      Alcotest.test_case "tolerant HTML mode" `Quick test_html_mode;
      Alcotest.test_case "HTML unclosed elements at EOF" `Quick test_html_unclosed_at_eof;
      QCheck_alcotest.to_alcotest prop_roundtrip;
    ] )
