open Xchange

(* helpers used across the scenario tests *)
let ev t label payload = Event.make ~occurred_at:t ~label payload
let el = Term.elem
let txt = Term.text

let feed_all engine events ~until =
  let detections = List.concat_map (fun e -> Incremental.feed engine e) events in
  detections @ Incremental.advance_to engine until

let q_cancellation =
  Event_query.on ~label:"cancellation"
    (Qterm.el "cancellation" [ Qterm.pos (Qterm.el "passenger" [ Qterm.pos (Qterm.var "P") ]) ])

let q_rebooking =
  Event_query.on ~label:"rebooking"
    (Qterm.el "rebooking" [ Qterm.pos (Qterm.el "passenger" [ Qterm.pos (Qterm.var "P") ]) ])

let cancellation t p = ev t "cancellation" (el "cancellation" [ el "passenger" [ txt p ] ])
let rebooking t p = ev t "rebooking" (el "rebooking" [ el "passenger" [ txt p ] ])

(* ---- validation and analysis ---- *)

let test_validate () =
  let ok q = match Event_query.validate q with Ok () -> () | Error e -> Alcotest.fail e in
  let bad q = match Event_query.validate q with Error _ -> () | Ok () -> Alcotest.fail "accepted" in
  ok (Event_query.within (Event_query.conj [ q_cancellation; q_rebooking ]) 100);
  bad (Event_query.conj []);
  bad (Event_query.Times (0, q_cancellation, 100));
  bad (Event_query.Times (2, q_cancellation, 0));
  bad
    (Event_query.Agg
       { Event_query.over = q_cancellation; var = "NOPE"; window = 3; op = Construct.Avg; bind = "A" });
  bad
    (Event_query.Agg
       { Event_query.over = q_cancellation; var = "P"; window = 3; op = Construct.Avg; bind = "P" })

let test_vars () =
  let q =
    Event_query.Agg
      { Event_query.over = q_cancellation; var = "P"; window = 2; op = Construct.Avg; bind = "A" }
  in
  Alcotest.(check (list string)) "agg adds binder" [ "A"; "P" ] (Event_query.vars q)

let test_max_window () =
  Alcotest.(check (option int)) "atomic" (Some 0) (Event_query.max_window q_cancellation);
  Alcotest.(check (option int)) "bare and unbounded" None
    (Event_query.max_window (Event_query.conj [ q_cancellation; q_rebooking ]));
  Alcotest.(check (option int)) "within bounds" (Some 500)
    (Event_query.max_window
       (Event_query.within (Event_query.conj [ q_cancellation; q_rebooking ]) 500))

(* ---- the paper's flight scenario (Thesis 5) ---- *)

let test_flight_absence () =
  let two_hours = Clock.hours 2 in
  let q = Event_query.absent q_cancellation ~then_absent:q_rebooking ~for_:two_hours in
  let engine = Incremental.create_exn q in
  let events =
    [
      cancellation 0 "franz";
      rebooking (Clock.minutes 30) "franz";
      (* franz is rebooked: no alarm *)
      cancellation (Clock.hours 3) "mary";
      (* mary never rebooked: alarm at +5h *)
      cancellation (Clock.hours 4) "paul";
      rebooking (Clock.hours 10) "paul";
      (* too late for paul: alarm at +6h *)
    ]
  in
  let detections = feed_all engine events ~until:(Clock.hours 12) in
  let passengers =
    List.filter_map (fun (i : Instance.t) -> Option.bind (Subst.find "P" i.Instance.subst) Term.as_text) detections
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "mary and paul alarmed" [ "mary"; "paul" ] passengers;
  (* detection time is the deadline, not the final advance *)
  match List.find_opt (fun (i : Instance.t) -> Subst.find "P" i.Instance.subst = Some (txt "mary")) detections with
  | Some i -> Alcotest.(check int) "deadline timing" (Clock.hours 5) i.Instance.t_end
  | None -> Alcotest.fail "mary detection missing"

let test_absence_join_on_shared_vars () =
  (* a rebooking of ANOTHER passenger must not cancel the absence *)
  let q = Event_query.absent q_cancellation ~then_absent:q_rebooking ~for_:100 in
  let engine = Incremental.create_exn q in
  let detections =
    feed_all engine [ cancellation 0 "franz"; rebooking 50 "other" ] ~until:1000
  in
  Alcotest.(check int) "franz still alarmed" 1 (List.length detections)

(* ---- the paper's SLA scenario: 3 outages within 1 hour ---- *)

let outage t server = ev t "outage" (el "outage" [ el "server" [ txt server ] ])

let q_outages n =
  Event_query.times n
    (Event_query.on ~label:"outage" (Qterm.el "outage" [ Qterm.pos (Qterm.el "server" [ Qterm.pos (Qterm.var "S") ]) ]))
    (Clock.hours 1)

let test_sla_times () =
  let engine = Incremental.create_exn (q_outages 3) in
  let m = Clock.minutes in
  let events =
    [ outage (m 0) "web1"; outage (m 10) "web2"; outage (m 20) "web1"; outage (m 30) "web1" ]
  in
  let detections = feed_all engine events ~until:(Clock.hours 2) in
  (* only web1 reaches 3 outages, exactly one 3-subset *)
  Alcotest.(check int) "one detection" 1 (List.length detections);
  let s = Option.bind (Subst.find "S" (List.hd detections).Instance.subst) Term.as_text in
  Alcotest.(check (option string)) "server joined" (Some "web1") s

let test_times_window_excludes_old () =
  let engine = Incremental.create_exn (q_outages 3) in
  let events =
    [ outage 0 "w"; outage (Clock.minutes 10) "w"; outage (Clock.hours 2) "w" ]
  in
  let detections = feed_all engine events ~until:(Clock.hours 3) in
  Alcotest.(check int) "spread outages do not trigger" 0 (List.length detections)

(* ---- the paper's stock scenario: avg of last 5 rises by 5% ---- *)

let price t stock value =
  ev t "price" (el "price" [ el "stock" [ txt stock ]; el "value" [ Term.num value ] ])

let q_price =
  Event_query.on ~label:"price"
    (Qterm.el "price"
       [
         Qterm.pos (Qterm.el "stock" [ Qterm.pos (Qterm.var "S") ]);
         Qterm.pos (Qterm.el "value" [ Qterm.pos (Qterm.var "P") ]);
       ])

let test_stock_rises () =
  let q =
    Event_query.Rises
      { Event_query.r_over = q_price; r_var = "P"; r_window = 5; r_ratio = 1.05; r_bind = "A" }
  in
  let engine = Incremental.create_exn q in
  (* flat prices then a jump *)
  let values = [ 100.; 100.; 100.; 100.; 100.; 100.; 160. ] in
  let events = List.mapi (fun i v -> price (i * 1000) "ACME" v) values in
  let detections = feed_all engine events ~until:100_000 in
  Alcotest.(check int) "one rise detected" 1 (List.length detections);
  let d = List.hd detections in
  (* new avg = (100+100+100+100+160)/5 = 112 *)
  Alcotest.(check (option (float 1e-6))) "average bound" (Some 112.)
    (Option.bind (Subst.find "A" d.Instance.subst) Term.as_num);
  Alcotest.(check (option string)) "stock joined" (Some "ACME")
    (Option.bind (Subst.find "S" d.Instance.subst) Term.as_text)

let test_agg_groups_by_stock () =
  let q =
    Event_query.Agg
      { Event_query.over = q_price; var = "P"; window = 2; op = Construct.Avg; bind = "A" }
  in
  let engine = Incremental.create_exn q in
  let events =
    [ price 0 "A" 10.; price 1 "B" 100.; price 2 "A" 20.; price 3 "B" 200. ]
  in
  let detections = feed_all engine events ~until:10 in
  Alcotest.(check int) "one window per stock" 2 (List.length detections);
  let avg_of stock =
    List.find_map
      (fun (i : Instance.t) ->
        if Subst.find "S" i.Instance.subst = Some (txt stock) then
          Option.bind (Subst.find "A" i.Instance.subst) Term.as_num
        else None)
      detections
  in
  Alcotest.(check (option (float 1e-6))) "avg A" (Some 15.) (avg_of "A");
  Alcotest.(check (option (float 1e-6))) "avg B" (Some 150.) (avg_of "B")

(* ---- composition basics ---- *)

let qa = Event_query.on ~label:"a" (Qterm.el "a" [ Qterm.pos (Qterm.var "X") ])
let qb = Event_query.on ~label:"b" (Qterm.el "b" [ Qterm.pos (Qterm.var "Y") ])
let ea t v = ev t "a" (el "a" [ Term.int v ])
let eb t v = ev t "b" (el "b" [ Term.int v ])

let test_and_any_order () =
  let engine = Incremental.create_exn (Event_query.conj [ qa; qb ]) in
  let detections = feed_all engine [ eb 1 1; ea 2 2 ] ~until:10 in
  Alcotest.(check int) "b then a still detects and" 1 (List.length detections)

let test_seq_order_enforced () =
  let engine = Incremental.create_exn (Event_query.seq [ qa; qb ]) in
  Alcotest.(check int) "wrong order" 0 (List.length (feed_all engine [ eb 1 1; ea 2 2 ] ~until:10));
  let engine = Incremental.create_exn (Event_query.seq [ qa; qb ]) in
  Alcotest.(check int) "right order" 1 (List.length (feed_all engine [ ea 1 1; eb 2 2 ] ~until:10))

let test_within_filters () =
  let q = Event_query.within (Event_query.conj [ qa; qb ]) 10 in
  let engine = Incremental.create_exn q in
  Alcotest.(check int) "too far apart" 0 (List.length (feed_all engine [ ea 0 1; eb 100 2 ] ~until:200));
  let engine = Incremental.create_exn q in
  Alcotest.(check int) "inside window" 1 (List.length (feed_all engine [ ea 0 1; eb 10 2 ] ~until:200))

let test_or () =
  let engine = Incremental.create_exn (Event_query.disj [ qa; qb ]) in
  Alcotest.(check int) "both alternatives fire" 2 (List.length (feed_all engine [ ea 0 1; eb 1 2 ] ~until:10))

let test_sender_filter () =
  let q = Event_query.on ~sender:"good.example" ~label:"a" (Qterm.var "X") in
  let engine = Incremental.create_exn q in
  let from s = Event.make ~sender:s ~occurred_at:1 ~label:"a" (txt "x") in
  let detections =
    Incremental.feed engine (from "bad.example") @ Incremental.feed engine (from "good.example")
  in
  Alcotest.(check int) "sender filtered" 1 (List.length detections)

(* ---- consumption & selection (Thesis 5 / Zimmer-Unland) ---- *)

let test_consumption () =
  (* without consumption, each b pairs with the single a *)
  let engine = Incremental.create_exn (Event_query.conj [ qa; qb ]) in
  Alcotest.(check int) "unconsumed reuse" 2
    (List.length (feed_all engine [ ea 0 1; eb 1 2; eb 2 3 ] ~until:10));
  (* with consumption the a is used up by the first detection *)
  let engine = Incremental.create_exn ~consume:true (Event_query.conj [ qa; qb ]) in
  Alcotest.(check int) "consumed once" 1
    (List.length (feed_all engine [ ea 0 1; eb 1 2; eb 2 3 ] ~until:10))

let test_selection_first_last () =
  (* two a's, then one b: two simultaneous candidate detections *)
  let run selection =
    let engine = Incremental.create_exn ~selection (Event_query.conj [ qa; qb ]) in
    feed_all engine [ ea 0 1; ea 5 2; eb 10 3 ] ~until:20
  in
  Alcotest.(check int) "each reports both" 2 (List.length (run Incremental.Each));
  (match run Incremental.First with
  | [ d ] -> Alcotest.(check int) "first starts earliest" 0 d.Instance.t_start
  | _ -> Alcotest.fail "first must report one");
  match run Incremental.Last with
  | [ d ] -> Alcotest.(check int) "last starts latest" 5 d.Instance.t_start
  | _ -> Alcotest.fail "last must report one"

(* ---- garbage collection (Thesis 4) ---- *)

let test_gc_bounded_with_window () =
  let q = Event_query.within (Event_query.conj [ qa; qb ]) 10 in
  let engine = Incremental.create_exn q in
  for i = 0 to 999 do
    ignore (Incremental.feed engine (ea (i * 100) i))
  done;
  Alcotest.(check bool) "windowed state stays small" true (Incremental.live_instances engine < 20)

let test_unbounded_growth_without_window () =
  let q = Event_query.conj [ qa; qb ] in
  let engine = Incremental.create_exn q in
  for i = 0 to 999 do
    ignore (Incremental.feed engine (ea (i * 100) i))
  done;
  Alcotest.(check bool) "shadow web growth" true (Incremental.live_instances engine >= 1000)

let test_horizon_caps_unbounded () =
  let q = Event_query.conj [ qa; qb ] in
  let engine = Incremental.create_exn ~horizon:50 q in
  for i = 0 to 999 do
    ignore (Incremental.feed engine (ea (i * 100) i))
  done;
  Alcotest.(check bool) "horizon caps state" true (Incremental.live_instances engine < 20)

(* ---- derived events (Thesis 9) ---- *)

let test_derivation () =
  let rule =
    Deductive_event.rule ~name:"escalate" ~derives:"alarm"
      ~trigger:(Event_query.times 2 qa 100)
      ~payload:(Construct.cel "alarm" [ Construct.cvar "X" ])
  in
  let net = Result.get_ok (Deductive_event.compile [ rule ]) in
  let d1 = Deductive_event.feed net (ea 0 7) in
  Alcotest.(check int) "no alarm yet" 0 (List.length d1);
  let d2 = Deductive_event.feed net (ea 10 7) in
  Alcotest.(check int) "alarm derived" 1 (List.length d2);
  Alcotest.(check string) "label" "alarm" (List.hd d2).Event.label

let test_derivation_cascade () =
  let r1 =
    Deductive_event.rule ~name:"r1" ~derives:"mid" ~trigger:qa
      ~payload:(Construct.cel "mid" [ Construct.cvar "X" ])
  in
  let r2 =
    Deductive_event.rule ~name:"r2" ~derives:"top"
      ~trigger:(Event_query.on ~label:"mid" (Qterm.var "M"))
      ~payload:(Construct.cel "top" [])
  in
  let net = Result.get_ok (Deductive_event.compile [ r2; r1 ]) in
  let derived = Deductive_event.feed net (ea 0 1) in
  Alcotest.(check (list string)) "cascade through strata" [ "mid"; "top" ]
    (List.map (fun e -> e.Event.label) derived)

let test_recursion_rejected () =
  let self_loop =
    Deductive_event.rule ~name:"loop" ~derives:"a" ~trigger:qa
      ~payload:(Construct.cel "a" [ Construct.cvar "X" ])
  in
  (match Deductive_event.compile [ self_loop ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self-recursive derivation accepted");
  let r1 =
    Deductive_event.rule ~name:"r1" ~derives:"y"
      ~trigger:(Event_query.on ~label:"z" (Qterm.var "V"))
      ~payload:(Construct.cel "y" [])
  in
  let r2 =
    Deductive_event.rule ~name:"r2" ~derives:"z"
      ~trigger:(Event_query.on ~label:"y" (Qterm.var "V"))
      ~payload:(Construct.cel "z" [])
  in
  (match Deductive_event.compile [ r1; r2 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mutually recursive derivation accepted");
  let wildcard =
    Deductive_event.rule ~name:"w" ~derives:"any" ~trigger:(Event_query.on (Qterm.var "V"))
      ~payload:(Construct.cel "any" [])
  in
  match Deductive_event.compile [ wildcard ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wildcard trigger accepted (always recursive)"

let suite =
  ( "event-query",
    [
      Alcotest.test_case "validation" `Quick test_validate;
      Alcotest.test_case "vars analysis" `Quick test_vars;
      Alcotest.test_case "window analysis" `Quick test_max_window;
      Alcotest.test_case "flight: absence with deadline" `Quick test_flight_absence;
      Alcotest.test_case "absence joins on shared variables" `Quick test_absence_join_on_shared_vars;
      Alcotest.test_case "SLA: 3 outages within 1 hour" `Quick test_sla_times;
      Alcotest.test_case "times respects its window" `Quick test_times_window_excludes_old;
      Alcotest.test_case "stock: average rises by 5%" `Quick test_stock_rises;
      Alcotest.test_case "aggregation groups by non-aggregated vars" `Quick test_agg_groups_by_stock;
      Alcotest.test_case "conjunction is order-insensitive" `Quick test_and_any_order;
      Alcotest.test_case "sequence enforces order" `Quick test_seq_order_enforced;
      Alcotest.test_case "within filters extents" `Quick test_within_filters;
      Alcotest.test_case "disjunction" `Quick test_or;
      Alcotest.test_case "sender filters" `Quick test_sender_filter;
      Alcotest.test_case "event instance consumption" `Quick test_consumption;
      Alcotest.test_case "instance selection first/last" `Quick test_selection_first_last;
      Alcotest.test_case "windows bound partial-match state" `Quick test_gc_bounded_with_window;
      Alcotest.test_case "window-less queries grow unboundedly" `Quick test_unbounded_growth_without_window;
      Alcotest.test_case "engine horizon caps growth" `Quick test_horizon_caps_unbounded;
      Alcotest.test_case "event derivation" `Quick test_derivation;
      Alcotest.test_case "derivation cascades through strata" `Quick test_derivation_cascade;
      Alcotest.test_case "recursive derivations rejected" `Quick test_recursion_rejected;
    ] )
