open Xchange

(* ---- golden parses ---- *)

let parse_q src = match Parser.parse_qterm src with Ok q -> q | Error e -> Alcotest.fail e
let parse_eq src = match Parser.parse_event_query src with Ok q -> q | Error e -> Alcotest.fail e
let parse_a src = match Parser.parse_action src with Ok a -> a | Error e -> Alcotest.fail e
let parse_c src = match Parser.parse_condition src with Ok c -> c | Error e -> Alcotest.fail e
let parse_rs src = match Parser.parse_ruleset src with Ok r -> r | Error e -> Alcotest.fail e

let test_qterm_syntax () =
  (match parse_q {|order{{item[var I], without refund[[]]}}|} with
  | Qterm.El e ->
      Alcotest.(check bool) "partial unordered" true
        (e.Qterm.spec = Qterm.Partial && e.Qterm.ord = Term.Unordered);
      Alcotest.(check int) "two children" 2 (List.length e.Qterm.children)
  | _ -> Alcotest.fail "not an element pattern");
  (match parse_q {|a[@k = "v", @j = var J, var X]|} with
  | Qterm.El e -> Alcotest.(check int) "attrs separated" 2 (List.length e.Qterm.attrs)
  | _ -> Alcotest.fail "not an element");
  (match parse_q {|var X -> desc b{{}}|} with
  | Qterm.As ("X", Qterm.Desc _) -> ()
  | _ -> Alcotest.fail "as/desc shape");
  match parse_q {|regex "[0-9]+"|} with
  | Qterm.Leaf (Qterm.Regex _) -> ()
  | _ -> Alcotest.fail "regex leaf"

let test_nested_closers () =
  (* ]] and }} must split/merge correctly at every nesting *)
  ignore (parse_q {|a[b[c[var X]]]|});
  ignore (parse_q {|a{{b{{c{{var X}}}}}}|});
  ignore (parse_q {|a[[b[c[[var X]]]]]|});
  ignore (parse_a {|{ {nop; nop}; nop }|});
  ignore (parse_a {|{{nop}}|});
  (* five closers lex as ]] ]] ] — split/merge must recurse *)
  ignore (parse_q {|c[[b[[var X -> any, b{var W, 31, var X}, without c[var Z, any, true]]]]]|});
  ignore (parse_q {|a[b[[c[[var X]]]]]|})

let test_event_query_syntax () =
  (match parse_eq {|and{a{{var X}}, b{{var Y}}} within 2 h|} with
  | Event_query.Within (Event_query.And [ _; _ ], w) ->
      Alcotest.(check int) "2 hours" (Clock.hours 2) w
  | _ -> Alcotest.fail "and-within shape");
  (match parse_eq {|order: var X from "shop.example"|} with
  | Event_query.Atomic a ->
      Alcotest.(check (option string)) "label" (Some "order") a.Event_query.label;
      Alcotest.(check (option string)) "sender" (Some "shop.example") a.Event_query.sender
  | _ -> Alcotest.fail "atomic shape");
  (match parse_eq {|times 3 {outage{{server[var S]}}} within 1 h|} with
  | Event_query.Times (3, _, w) -> Alcotest.(check int) "window" (Clock.hours 1) w
  | _ -> Alcotest.fail "times shape");
  (match parse_eq {|absent{cancel{{var P}}, rebook{{var P}}} within 2 h|} with
  | Event_query.Absent (_, _, _) -> ()
  | _ -> Alcotest.fail "absent shape");
  (match parse_eq {|avg($P) last 5 {price{{var P}}} as A|} with
  | Event_query.Agg spec ->
      Alcotest.(check string) "binder" "A" spec.Event_query.bind;
      Alcotest.(check int) "window" 5 spec.Event_query.window
  | _ -> Alcotest.fail "agg shape");
  match parse_eq {|rises($P, 5, 1.05) {price{{value[var P]}}} as A|} with
  | Event_query.Rises spec -> Alcotest.(check (float 1e-9)) "ratio" 1.05 spec.Event_query.r_ratio
  | _ -> Alcotest.fail "rises shape"

let test_condition_syntax () =
  (match parse_c {|and(in doc("/d") a{{var X}}, $X > 3 + 1)|} with
  | Condition.And [ Condition.In _; Condition.Cmp (Builtin.Gt, _, Builtin.O_add _) ] -> ()
  | _ -> Alcotest.fail "condition shape");
  match parse_c {|rdf uri("h/g") {($S iri("knows") $O)}|} with
  | Condition.In_rdf (Condition.Remote "h/g", [ _ ]) -> ()
  | _ -> Alcotest.fail "rdf condition shape"

let test_action_syntax () =
  (match parse_a {|insert into "/d" at "/list" pos 0 item[$X]|} with
  | Action.Insert { at = Some 0; selector = [ _ ]; _ } -> ()
  | _ -> Alcotest.fail "insert shape");
  (match parse_a {|alt { fail "a" | nop }|} with
  | Action.Alt [ Action.Fail _; Action.Nop ] -> ()
  | _ -> Alcotest.fail "alt shape");
  (match parse_a {|if in doc("/d") a{{}} then nop else fail "x"|} with
  | Action.If (_, Action.Nop, Action.Fail _) -> ()
  | _ -> Alcotest.fail "if shape");
  (match parse_a {|raise to $Who "pick-it" pick[$I] ttl 5 min|} with
  | Action.Raise { ttl = Some t; label = "pick-it"; _ } ->
      Alcotest.(check int) "ttl" (Clock.minutes 5) t
  | _ -> Alcotest.fail "raise shape");
  match parse_a {|persist $E to "/archive"|} with
  | Action.Create_doc { content = Construct.C_var "E"; _ } -> ()
  | _ -> Alcotest.fail "persist shape"

let test_ruleset_syntax () =
  let rs =
    parse_rs
      {|ruleset shop {
          procedure ship(I) { insert into "/out" box[$I] }
          view v row[$X] from in doc("/d") a{{var X}}
          derive d emit alarm alarm[$X] on big{{var X}}
          rule r1(consume, last): on a{{var X}} if true do call ship($X) else nop
          ruleset nested { rule r2: on b{{}} do nop }
        }|}
  in
  Alcotest.(check int) "rules incl nested" 2 (Ruleset.rule_count rs);
  Alcotest.(check int) "procedures" 1 (List.length rs.Ruleset.procedures);
  Alcotest.(check int) "views" 1 (List.length rs.Ruleset.views);
  Alcotest.(check int) "event rules" 1 (List.length rs.Ruleset.event_rules);
  let r1 = List.hd rs.Ruleset.rules in
  Alcotest.(check bool) "consume flag" true r1.Eca.consume;
  Alcotest.(check bool) "selection flag" true (r1.Eca.selection = Incremental.Last);
  Alcotest.(check bool) "else present" true (r1.Eca.else_action <> None)

let test_parse_errors () =
  let bad f src = match f src with Error _ -> () | Ok _ -> Alcotest.fail ("accepted: " ^ src) in
  bad Parser.parse_qterm "order{{";
  bad Parser.parse_qterm "2bad[]";
  bad Parser.parse_event_query "times 0.5 {a{{}}} within 5";
  bad Parser.parse_action "insert \"/d\" x[]";
  bad Parser.parse_ruleset "ruleset s { rule r: on a{{}} }";
  bad Parser.parse_ruleset "ruleset s { rule r: on a{{}} do nop";
  bad Parser.parse_condition "in doc(42) a{{}}";
  (* trailing garbage *)
  bad Parser.parse_qterm "a{{}} extra"

let test_comments_and_strings () =
  let rs = parse_rs "ruleset s { # a comment\n rule r: on a{{}} do log \"hi\\n\\\"there\\\"\" }" in
  Alcotest.(check int) "comment skipped" 1 (Ruleset.rule_count rs)

(* ---- printer round trips ---- *)

let roundtrip_ruleset rs =
  let printed = Printer.ruleset_to_string rs in
  match Parser.parse_ruleset printed with
  | Ok rs' -> rs = rs'
  | Error e -> Alcotest.failf "reparse failed: %s@.--@.%s" e printed

let test_golden_roundtrip () =
  let src =
    {|ruleset shop {
        procedure ship(Item, Dest) {
          insert into "/shipments" shipment[item[$Item], dest[$Dest]];
          raise to $Dest picked pick[item[$Item]] ttl 5 min
        }
        view gold gold[all name[$N]]
          from in doc("/customers") customers{{customer{{name[var N], status["gold"]}}}}
        derive big emit alarm alarm[count($I)] on order{{item[var I]}}
        rule handle(first): on seq{order{{item[var Item]}}, pay{{}}} within 2 h
          if in view(gold) gold{{name[var C]}}
          do call ship($Item, $C)
          else raise to "clerk.example" review review[item[$Item]]
        rule sla: on times 3 {outage{{server[var S]}}} within 1 h
          do { log "storm on %s", $S; assert into "/g" (iri("s"), "status", "down") }
        rule expr-heavy: on m{{v[var V]}}
          if $V * 2 - 1 >= 3 / ($V + 1)
          do insert into "/d" x[expr($V * $V), @k = "v", lvar V []]
      }|}
  in
  let rs = parse_rs src in
  Alcotest.(check bool) "golden roundtrip" true (roundtrip_ruleset rs)

(* random construct/qterm/event-query roundtrips via generated rule sets *)

let small_construct_gen =
  let open QCheck.Gen in
  sized_size (int_bound 6) @@ QCheck.Gen.fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun v -> Construct.C_var v) Gen.var_name;
            map (fun s -> Construct.C_text s) Gen.small_text;
            map (fun i -> Construct.C_num (float_of_int i)) (int_bound 100);
            map (fun b -> Construct.C_bool b) bool;
          ]
      else
        frequency
          [
            (1, map (fun v -> Construct.C_var v) Gen.var_name);
            (1, map (fun v -> Construct.C_agg (Construct.Sum, v)) Gen.var_name);
            (1, map (fun c -> Construct.C_all c) (self 0));
            ( 4,
              map3
                (fun label ord children ->
                  Construct.C_el { Construct.label = `L label; attrs = []; ord; children })
                Gen.small_label Gen.ordering
                (list_size (int_bound 3) (self (n / 2))) );
          ])

let prop_qterm_roundtrip =
  QCheck.Test.make ~name:"print/parse qterm roundtrip" ~count:300 Gen.qterm_arb (fun q ->
      let printed = Printer.qterm_to_string q in
      match Parser.parse_qterm printed with
      | Ok q' -> q = q'
      | Error e -> QCheck.Test.fail_reportf "%s on %s" e printed)

let prop_event_query_roundtrip =
  QCheck.Test.make ~name:"print/parse event query roundtrip" ~count:300 Gen.event_query_arb
    (fun q ->
      let printed = Printer.event_query_to_string q in
      match Parser.parse_event_query printed with
      | Ok q' -> q = q'
      | Error e -> QCheck.Test.fail_reportf "%s on %s" e printed)

let prop_construct_roundtrip =
  QCheck.Test.make ~name:"print/parse construct roundtrip" ~count:300
    (QCheck.make small_construct_gen) (fun c ->
      let printed = Fmt.str "%a" Printer.pp_construct c in
      match Parser.parse_construct printed with
      | Ok c' -> c = c'
      | Error e -> QCheck.Test.fail_reportf "%s on %s" e printed)

let prop_ruleset_roundtrip =
  QCheck.Test.make ~name:"print/parse ruleset roundtrip" ~count:200
    (QCheck.make
       QCheck.Gen.(
         map2
           (fun q c ->
             Ruleset.make
               ~rules:
                 [
                   Eca.make ~name:"r" ~on:q
                     ~if_:(Condition.Cmp (Builtin.Le, Builtin.ovar "X", Builtin.onum 3.))
                     (Action.insert ~doc:"/d" c);
                 ]
               "s")
           Gen.event_query_gen small_construct_gen))
    (fun rs ->
      let printed = Printer.ruleset_to_string rs in
      match Parser.parse_ruleset printed with
      | Ok rs' -> rs = rs'
      | Error e -> QCheck.Test.fail_reportf "%s on@.%s" e printed)

(* actions: generator + roundtrip *)

let small_operand_gen =
  let open QCheck.Gen in
  sized_size (int_bound 3) @@ QCheck.Gen.fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun v -> Builtin.O_var v) Gen.var_name;
            map (fun i -> Builtin.O_const (Term.num (float_of_int i))) (int_bound 50);
            map (fun s -> Builtin.O_const (Term.text s)) Gen.small_text;
          ]
      else
        frequency
          [
            (2, map (fun v -> Builtin.O_var v) Gen.var_name);
            (1, map2 (fun a b -> Builtin.O_add (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Builtin.O_mul (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Builtin.O_concat (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map (fun a -> Builtin.O_neg a) (self (n / 2)));
            (1, map (fun a -> Builtin.O_size a) (self (n / 2)));
            (1, map (fun a -> Builtin.O_iri a) (return (Builtin.O_var "X")));
          ])

let action_gen =
  let open QCheck.Gen in
  let doc = map (fun s -> "/" ^ s) Gen.small_label in
  let base =
    oneof
      [
        return Action.Nop;
        map (fun s -> Action.Fail s) Gen.small_text;
        map2 (fun f args -> Action.Log (f, args)) (oneofl [ "x"; "a %s b"; "%s%s" ])
          (list_size (int_bound 2) small_operand_gen);
        map2 (fun d c -> Action.insert ~doc:d c) doc small_construct_gen;
        map (fun d -> Action.delete ~doc:d ()) doc;
        map2 (fun d q -> Action.delete ~doc:d ~pattern:q ()) doc Gen.qterm_gen;
        map2 (fun d c -> Action.create_doc ~doc:d c) doc small_construct_gen;
        map (fun d -> Action.Delete_doc { doc = Builtin.ostr d }) doc;
        map2
          (fun r c -> Action.raise_event ~to_:r ~label:"msg" c)
          (oneofl [ "a.example"; "b.example" ])
          small_construct_gen;
        map (fun v -> Action.make_persistent ~doc:"/archive" v) Gen.var_name;
        map2 (fun name args -> Action.call name args) (oneofl [ "p"; "q" ])
          (list_size (int_bound 2) small_operand_gen);
        map3
          (fun d s p -> Action.Rdf_assert { doc = Builtin.ostr d; triple = { Action.cs = s; cp = Builtin.ostr p; co = s } })
          doc small_operand_gen Gen.small_label;
      ]
  in
  sized_size (int_bound 4) @@ QCheck.Gen.fix (fun self n ->
      if n <= 0 then base
      else
        frequency
          [
            (3, base);
            (1, map (fun items -> Action.Seq items) (list_size (int_range 1 3) (self (n / 2))));
            (1, map (fun items -> Action.Atomic items) (list_size (int_range 1 3) (self (n / 2))));
            (1, map (fun items -> Action.Alt items) (list_size (int_range 1 3) (self (n / 2))));
            ( 1,
              map3
                (fun c a b -> Action.If (c, a, b))
                (oneofl
                   [
                     Condition.True;
                     Condition.Cmp (Builtin.Le, Builtin.ovar "X", Builtin.onum 3.);
                   ])
                (self (n / 2)) (self (n / 2)) );
          ])

let prop_action_roundtrip =
  QCheck.Test.make ~name:"print/parse action roundtrip" ~count:300 (QCheck.make action_gen)
    (fun a ->
      let printed = Printer.action_to_string a in
      match Parser.parse_action printed with
      | Ok a' -> a = a'
      | Error e -> QCheck.Test.fail_reportf "%s on %s" e printed)

let prop_condition_roundtrip =
  QCheck.Test.make ~name:"print/parse condition roundtrip" ~count:300
    (QCheck.make
       QCheck.Gen.(
         sized_size (int_bound 3) @@ QCheck.Gen.fix (fun self n ->
             let base =
               oneof
                 [
                   return Condition.True;
                   return Condition.False;
                   map2
                     (fun d q -> Condition.In (Condition.Local d, q))
                     (map (fun s -> "/" ^ s) Gen.small_label)
                     Gen.qterm_gen;
                   map2
                     (fun a b -> Condition.Cmp (Builtin.Lt, a, b))
                     small_operand_gen small_operand_gen;
                 ]
             in
             if n <= 0 then base
             else
               frequency
                 [
                   (2, base);
                   (1, map (fun cs -> Condition.And cs) (list_size (int_range 1 2) (self (n / 2))));
                   (1, map (fun cs -> Condition.Or cs) (list_size (int_range 1 2) (self (n / 2))));
                   (1, map (fun c -> Condition.Not c) (self (n / 2)));
                 ])))
    (fun c ->
      let printed = Printer.condition_to_string c in
      match Parser.parse_condition printed with
      | Ok c' -> c = c'
      | Error e -> QCheck.Test.fail_reportf "%s on %s" e printed)

(* ---- meta (Thesis 11) ---- *)

let test_meta_roundtrip () =
  let rs =
    parse_rs
      {|ruleset policy { rule p: on request{{item["cc"]}} if in doc("/disclosed") d{{cred["bbb"]}} do raise to "cust" disclose disclose[item["cc"]] }|}
  in
  match Meta.ruleset_of_term (Meta.ruleset_to_term rs) with
  | Ok rs' -> Alcotest.(check bool) "lossless" true (rs = rs')
  | Error e -> Alcotest.fail e

let test_meta_rejects_junk () =
  (match Meta.ruleset_of_term (Term.text "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted");
  match Meta.ruleset_of_term (Term.elem Meta.ruleset_label [ Term.text "syntax error {" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad program accepted"

let test_meta_size () =
  let rs = Ruleset.make "s" in
  Alcotest.(check bool) "size positive" true (Meta.size_bytes rs > 5)

let suite =
  ( "lang",
    [
      Alcotest.test_case "query term syntax" `Quick test_qterm_syntax;
      Alcotest.test_case "nested bracket splitting" `Quick test_nested_closers;
      Alcotest.test_case "event query syntax" `Quick test_event_query_syntax;
      Alcotest.test_case "condition syntax" `Quick test_condition_syntax;
      Alcotest.test_case "action syntax" `Quick test_action_syntax;
      Alcotest.test_case "ruleset syntax" `Quick test_ruleset_syntax;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "comments and string escapes" `Quick test_comments_and_strings;
      Alcotest.test_case "golden program roundtrip" `Quick test_golden_roundtrip;
      QCheck_alcotest.to_alcotest prop_qterm_roundtrip;
      QCheck_alcotest.to_alcotest prop_event_query_roundtrip;
      QCheck_alcotest.to_alcotest prop_construct_roundtrip;
      QCheck_alcotest.to_alcotest prop_ruleset_roundtrip;
      QCheck_alcotest.to_alcotest prop_action_roundtrip;
      QCheck_alcotest.to_alcotest prop_condition_roundtrip;
      Alcotest.test_case "meta reification roundtrip" `Quick test_meta_roundtrip;
      Alcotest.test_case "meta rejects junk" `Quick test_meta_rejects_junk;
      Alcotest.test_case "meta wire size" `Quick test_meta_size;
    ] )
