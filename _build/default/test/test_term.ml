open Xchange

let term = Alcotest.testable Term.pp Term.equal

let test_constructors () =
  let t = Term.elem "a" ~attrs:[ ("k", "v") ] [ Term.text "x"; Term.int 3 ] in
  Alcotest.(check (option string)) "label" (Some "a") (Term.label t);
  Alcotest.(check (option string)) "attr" (Some "v") (Term.attr "k" t);
  Alcotest.(check (option string)) "missing attr" None (Term.attr "z" t);
  Alcotest.(check int) "children" 2 (List.length (Term.children t));
  Alcotest.(check int) "size" 3 (Term.size t);
  Alcotest.(check int) "depth" 2 (Term.depth t)

let test_duplicate_attr () =
  Alcotest.check_raises "duplicate attribute"
    (Invalid_argument "Term.elem: duplicate attribute k")
    (fun () -> ignore (Term.elem "a" ~attrs:[ ("k", "1"); ("k", "2") ] []))

let test_attr_sorted () =
  let t = Term.elem "a" ~attrs:[ ("z", "1"); ("a", "2") ] [] in
  match t with
  | Term.Elem e -> Alcotest.(check (list (pair string string))) "sorted" [ ("a", "2"); ("z", "1") ] e.Term.attrs
  | _ -> Alcotest.fail "not an element"

let test_unordered_equality () =
  let a = Term.elem ~ord:Term.Unordered "s" [ Term.text "x"; Term.text "y" ] in
  let b = Term.elem ~ord:Term.Unordered "s" [ Term.text "y"; Term.text "x" ] in
  Alcotest.check term "permutation equal" a b;
  let c = Term.elem ~ord:Term.Ordered "s" [ Term.text "y"; Term.text "x" ] in
  Alcotest.(check bool) "ordered differs from unordered" false (Term.equal a c)

let test_ordered_inequality () =
  let a = Term.elem "s" [ Term.text "x"; Term.text "y" ] in
  let b = Term.elem "s" [ Term.text "y"; Term.text "x" ] in
  Alcotest.(check bool) "order significant" false (Term.equal a b)

let test_ids_ignored () =
  let a = Term.elem "a" [ Term.text "x" ] in
  let b = Term.with_id 42 (Term.elem "a" [ Term.text "x" ]) in
  Alcotest.check term "ids extensionally invisible" a b;
  Alcotest.(check bool) "digest agrees" true (Int64.equal (Term.digest a) (Term.digest b));
  Alcotest.(check int) "id readable" 42 (Term.elem_id b);
  Alcotest.(check int) "strip resets" Term.no_id (Term.elem_id (Term.strip_ids b))

let test_as_num () =
  Alcotest.(check (option (float 1e-9))) "num leaf" (Some 3.5) (Term.as_num (Term.num 3.5));
  Alcotest.(check (option (float 1e-9))) "text coerces" (Some 42.) (Term.as_num (Term.text " 42 "));
  Alcotest.(check (option (float 1e-9))) "bool coerces" (Some 1.) (Term.as_num (Term.bool_ true));
  Alcotest.(check (option (float 1e-9))) "elem is not a number" None (Term.as_num (Term.elem "a" []))

let test_as_text () =
  Alcotest.(check (option string)) "int renders without dot" (Some "3") (Term.as_text (Term.int 3));
  Alcotest.(check (option string)) "bool" (Some "true") (Term.as_text (Term.bool_ true));
  Alcotest.(check (option string)) "elem none" None (Term.as_text (Term.elem "a" []))

let test_traversal () =
  let t = Term.elem "a" [ Term.elem "b" [ Term.text "x" ]; Term.text "y" ] in
  Alcotest.(check int) "subterms count" 4 (List.length (Term.subterms t));
  let texts = Term.find_all (fun s -> Term.as_text s <> None) t in
  Alcotest.(check int) "two leaves" 2 (List.length texts);
  let upper =
    Term.map_elements (fun e -> { e with Term.label = String.uppercase_ascii e.Term.label }) t
  in
  Alcotest.(check (option string)) "mapped label" (Some "A") (Term.label upper)

let prop_equal_refl =
  QCheck.Test.make ~name:"equal is reflexive" ~count:200 Gen.term_arb (fun t -> Term.equal t t)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:200
    (QCheck.pair Gen.term_arb Gen.term_arb) (fun (a, b) ->
      let c1 = Term.compare a b and c2 = Term.compare b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let prop_digest_consistent =
  QCheck.Test.make ~name:"equal terms share digest" ~count:200 Gen.term_arb (fun t ->
      (* rebuild the term with children shuffled where unordered *)
      let shuffled =
        Term.map_elements
          (fun e ->
            match e.Term.ord with
            | Term.Unordered -> { e with Term.children = List.rev e.Term.children }
            | Term.Ordered -> e)
          t
      in
      Term.equal t shuffled && Int64.equal (Term.digest t) (Term.digest shuffled))

let prop_size_positive =
  QCheck.Test.make ~name:"size >= 1 and >= depth" ~count:200 Gen.term_arb (fun t ->
      Term.size t >= 1 && Term.size t >= Term.depth t)

let suite =
  ( "term",
    [
      Alcotest.test_case "constructors and accessors" `Quick test_constructors;
      Alcotest.test_case "duplicate attributes rejected" `Quick test_duplicate_attr;
      Alcotest.test_case "attributes sorted" `Quick test_attr_sorted;
      Alcotest.test_case "unordered children compare as multisets" `Quick test_unordered_equality;
      Alcotest.test_case "ordered children order-sensitive" `Quick test_ordered_inequality;
      Alcotest.test_case "surrogate ids are extensionally invisible" `Quick test_ids_ignored;
      Alcotest.test_case "numeric coercions" `Quick test_as_num;
      Alcotest.test_case "textual coercions" `Quick test_as_text;
      Alcotest.test_case "traversal helpers" `Quick test_traversal;
      QCheck_alcotest.to_alcotest prop_equal_refl;
      QCheck_alcotest.to_alcotest prop_compare_antisym;
      QCheck_alcotest.to_alcotest prop_digest_consistent;
      QCheck_alcotest.to_alcotest prop_size_positive;
    ] )
