(* The Thesis 6 cornerstone: the incremental data-driven engine computes
   exactly the answers of the query-driven (backward) reference
   evaluator — it just never redoes work.  Checked on random queries and
   random time-ordered streams. *)

open Xchange

let instances_equal a b =
  let norm l = Instance.dedup l in
  norm a = norm b

let pp_instances ppf l = Fmt.(list ~sep:cut Instance.pp) ppf (Instance.dedup l)

let run_incremental q events ~until =
  let engine = Incremental.create_exn q in
  let detections =
    List.concat_map
      (fun e ->
        let ds = Incremental.feed engine e in
        ds)
      events
  in
  detections @ Incremental.advance_to engine until

let run_backward q events ~until =
  let history = History.create () in
  List.iter (History.add history) events;
  Backward.answers q history ~now:until

let final_time events =
  List.fold_left (fun acc e -> max acc (Event.time e)) 0 events + 10_000

let equiv_prop (q, events) =
  match Event_query.validate q with
  | Error _ -> QCheck.assume_fail ()
  | Ok () ->
      let until = final_time events in
      let inc = run_incremental q events ~until in
      let bw = run_backward q events ~until in
      if instances_equal inc bw then true
      else
        QCheck.Test.fail_reportf "query %a@.incremental:@.%a@.backward:@.%a" Event_query.pp q
          pp_instances inc pp_instances bw

let stream_arb =
  QCheck.make
    ~print:(fun evs -> Fmt.str "%a" Fmt.(list ~sep:cut Event.pp) evs)
    (Gen.event_stream_gen ~labels:[ "a"; "b"; "c" ] ~max_len:20 ~max_gap:15)

let prop_equivalence =
  QCheck.Test.make ~name:"incremental = backward (random queries & streams)" ~count:500
    (QCheck.pair Gen.event_query_arb stream_arb)
    equiv_prop

(* accumulation operators with numeric payloads, tested separately so the
   generator guarantees the variable is numeric *)
let numeric_stream_gen =
  QCheck.Gen.(
    map
      (fun values ->
        List.mapi
          (fun i v ->
            Event.make ~occurred_at:(i * 7) ~label:"m"
              (Term.elem "m" [ Term.elem "v" [ Term.num (float_of_int v) ] ]))
          values)
      (list_size (int_range 1 25) (int_bound 50)))

let q_metric =
  Event_query.on ~label:"m" (Qterm.el "m" [ Qterm.pos (Qterm.el "v" [ Qterm.pos (Qterm.var "V") ]) ])

let prop_agg_equivalence =
  QCheck.Test.make ~name:"incremental = backward (sliding aggregates)" ~count:200
    (QCheck.make numeric_stream_gen)
    (fun events ->
      let qs =
        [
          Event_query.Agg { Event_query.over = q_metric; var = "V"; window = 3; op = Construct.Avg; bind = "A" };
          Event_query.Agg { Event_query.over = q_metric; var = "V"; window = 2; op = Construct.Max; bind = "A" };
          Event_query.Rises { Event_query.r_over = q_metric; r_var = "V"; r_window = 2; r_ratio = 1.1; r_bind = "A" };
        ]
      in
      let until = final_time events in
      List.for_all
        (fun q -> instances_equal (run_incremental q events ~until) (run_backward q events ~until))
        qs)

(* GC must not change the detections of window-bounded queries *)
let prop_gc_safe =
  QCheck.Test.make ~name:"pruning never loses window-bounded detections" ~count:200 stream_arb
    (fun events ->
      let q =
        Event_query.within
          (Event_query.conj
             [
               Event_query.on ~label:"a" (Qterm.var "P");
               Event_query.on ~label:"b" (Qterm.var "Q");
             ])
          40
      in
      let until = final_time events in
      instances_equal (run_incremental q events ~until) (run_backward q events ~until))

let suite =
  ( "equivalence",
    [
      QCheck_alcotest.to_alcotest ~long:true prop_equivalence;
      QCheck_alcotest.to_alcotest prop_agg_equivalence;
      QCheck_alcotest.to_alcotest prop_gc_safe;
    ] )
