open Xchange

let term = Alcotest.testable Term.pp Term.equal
let mk l = Option.get (Subst.of_list l)

let test_simple_instantiation () =
  let c = Construct.cel "greeting" [ Construct.ctext "hi "; Construct.cvar "N" ] in
  let s = mk [ ("N", Term.text "franz") ] in
  match Construct.instantiate c s [ s ] with
  | Ok t -> Alcotest.check term "built" (Term.elem "greeting" [ Term.text "hi "; Term.text "franz" ]) t
  | Error e -> Alcotest.fail e

let test_unbound_variable () =
  match Construct.instantiate (Construct.cvar "Z") Subst.empty [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound variable accepted"

let test_label_and_attr_vars () =
  let c =
    Construct.C_el
      {
        Construct.label = `L_var "L";
        attrs = [ ("k", `A_var "V") ];
        ord = Term.Ordered;
        children = [];
      }
  in
  let s = mk [ ("L", Term.text "dyn"); ("V", Term.text "x") ] in
  (match Construct.instantiate c s [ s ] with
  | Ok t ->
      Alcotest.(check (option string)) "label" (Some "dyn") (Term.label t);
      Alcotest.(check (option string)) "attr" (Some "x") (Term.attr "k" t)
  | Error e -> Alcotest.fail e);
  (* non-textual label is an error *)
  let bad = mk [ ("L", Term.elem "e" []); ("V", Term.text "x") ] in
  match Construct.instantiate c bad [ bad ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "element-valued label accepted"

let answers_over_items =
  [
    mk [ ("I", Term.text "ball"); ("P", Term.num 10.) ];
    mk [ ("I", Term.text "shoe"); ("P", Term.num 20.) ];
    mk [ ("I", Term.text "shoe"); ("P", Term.num 20.) ];
  ]

let test_all_grouping () =
  let c =
    Construct.cel "cart" [ Construct.C_all (Construct.cel "item" [ Construct.cvar "I" ]) ]
  in
  match Construct.instantiate c Subst.empty answers_over_items with
  | Ok t ->
      (* duplicates collapse: ball and shoe *)
      Alcotest.(check int) "grouped instances" 2 (List.length (Term.children t))
  | Error e -> Alcotest.fail e

let test_all_respects_outer_binding () =
  let set =
    [
      mk [ ("C", Term.text "franz"); ("I", Term.text "ball") ];
      mk [ ("C", Term.text "franz"); ("I", Term.text "shoe") ];
      mk [ ("C", Term.text "mary"); ("I", Term.text "hat") ];
    ]
  in
  let c =
    Construct.cel "orders"
      [ Construct.cvar "C"; Construct.C_all (Construct.cel "item" [ Construct.cvar "I" ]) ]
  in
  let outer = mk [ ("C", Term.text "franz") ] in
  match Construct.instantiate c outer set with
  | Ok t ->
      (* only franz's items expand *)
      Alcotest.(check int) "outer binding filters group" 3 (List.length (Term.children t))
  | Error e -> Alcotest.fail e

let test_aggregates () =
  let check_agg op expected =
    let c = Construct.C_agg (op, "P") in
    match Construct.instantiate c Subst.empty answers_over_items with
    | Ok t -> Alcotest.(check (option (float 1e-9))) "agg value" (Some expected) (Term.as_num t)
    | Error e -> Alcotest.fail e
  in
  check_agg Construct.Count 2.;
  (* distinct values: 10 and 20 *)
  check_agg Construct.Sum 30.;
  check_agg Construct.Avg 15.;
  check_agg Construct.Min 10.;
  check_agg Construct.Max 20.

let test_agg_errors () =
  (match Construct.instantiate (Construct.C_agg (Construct.Sum, "P")) Subst.empty [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty aggregate accepted");
  let bad = [ mk [ ("P", Term.elem "e" []) ] ] in
  match Construct.instantiate (Construct.C_agg (Construct.Sum, "P")) Subst.empty bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric aggregate accepted"

let test_all_toplevel_rejected () =
  match Construct.instantiate (Construct.C_all (Construct.cvar "X")) Subst.empty [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "'all' accepted outside children position"

let test_operand_children () =
  let c = Construct.cel "total" [ Construct.C_operand (Builtin.O_mul (Builtin.ovar "P", Builtin.onum 2.)) ] in
  let s = mk [ ("P", Term.num 21.) ] in
  match Construct.instantiate c s [ s ] with
  | Ok t -> Alcotest.check term "computed" (Term.elem "total" [ Term.num 42. ]) t
  | Error e -> Alcotest.fail e

let test_instantiate_all () =
  let c = Construct.cel "row" [ Construct.cvar "I" ] in
  match Construct.instantiate_all c answers_over_items with
  | Ok ts -> Alcotest.(check int) "one instance per distinct projection" 2 (List.length ts)
  | Error e -> Alcotest.fail e

let test_free_vars () =
  let c =
    Construct.cel "a"
      [ Construct.cvar "X"; Construct.C_agg (Construct.Count, "Y"); Construct.C_operand (Builtin.ovar "Z") ]
  in
  Alcotest.(check (list string)) "free vars" [ "X"; "Y"; "Z" ] (Construct.free_vars c)

(* ---- Builtin ---- *)

let test_builtin_arith () =
  let s = mk [ ("X", Term.num 10.); ("Y", Term.text "4") ] in
  let eval op = Result.get_ok (Builtin.eval s op) in
  Alcotest.check term "add coerces text" (Term.num 14.) (eval (Builtin.O_add (Builtin.ovar "X", Builtin.ovar "Y")));
  Alcotest.check term "div" (Term.num 2.5) (eval (Builtin.O_div (Builtin.ovar "X", Builtin.ovar "Y")));
  Alcotest.check term "neg" (Term.num (-10.)) (eval (Builtin.O_neg (Builtin.ovar "X")));
  Alcotest.check term "concat" (Term.text "104") (eval (Builtin.O_concat (Builtin.ovar "X", Builtin.ovar "Y")));
  Alcotest.check term "size" (Term.num 1.) (eval (Builtin.O_size (Builtin.ovar "X")));
  (match Builtin.eval s (Builtin.O_div (Builtin.ovar "X", Builtin.onum 0.)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "division by zero accepted");
  match Builtin.eval s (Builtin.ovar "missing") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound variable accepted"

let test_builtin_cmp () =
  let s = mk [ ("X", Term.num 10.); ("S", Term.text "abc") ] in
  let t cmp a b = Result.get_ok (Builtin.test s cmp a b) in
  Alcotest.(check bool) "numeric lt" true (t Builtin.Lt (Builtin.ovar "X") (Builtin.onum 11.));
  Alcotest.(check bool) "text 9 < 10 numerically" true (t Builtin.Lt (Builtin.ostr "9") (Builtin.ostr "10"));
  Alcotest.(check bool) "lexicographic fallback" true (t Builtin.Lt (Builtin.ovar "S") (Builtin.ostr "abd"));
  Alcotest.(check bool) "eq extensional" true
    (t Builtin.Eq (Builtin.O_const (Term.elem "a" [])) (Builtin.O_const (Term.elem "a" [])));
  Alcotest.(check bool) "neq" true (t Builtin.Neq (Builtin.onum 1.) (Builtin.onum 2.))

let suite =
  ( "construct",
    [
      Alcotest.test_case "simple instantiation" `Quick test_simple_instantiation;
      Alcotest.test_case "unbound variable is an error" `Quick test_unbound_variable;
      Alcotest.test_case "label and attribute variables" `Quick test_label_and_attr_vars;
      Alcotest.test_case "'all' grouping" `Quick test_all_grouping;
      Alcotest.test_case "'all' respects outer bindings" `Quick test_all_respects_outer_binding;
      Alcotest.test_case "aggregates" `Quick test_aggregates;
      Alcotest.test_case "aggregate errors" `Quick test_agg_errors;
      Alcotest.test_case "'all' rejected at top level" `Quick test_all_toplevel_rejected;
      Alcotest.test_case "computed children" `Quick test_operand_children;
      Alcotest.test_case "instantiate_all groups by free vars" `Quick test_instantiate_all;
      Alcotest.test_case "free variables" `Quick test_free_vars;
      Alcotest.test_case "builtin arithmetic" `Quick test_builtin_arith;
      Alcotest.test_case "builtin comparisons" `Quick test_builtin_cmp;
    ] )
