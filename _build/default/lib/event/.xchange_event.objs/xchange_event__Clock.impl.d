lib/event/clock.ml: Fmt
