lib/event/event_query.ml: Clock Construct Fmt List Option Qterm Result String Xchange_query
