lib/event/clock.mli: Fmt
