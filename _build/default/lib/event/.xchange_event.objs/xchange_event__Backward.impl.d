lib/event/backward.ml: Array Clock Construct Event Event_query Float History Instance Int List Option Simulate String Subst Xchange_data Xchange_query
