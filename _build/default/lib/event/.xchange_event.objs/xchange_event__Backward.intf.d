lib/event/backward.mli: Clock Event Event_query History Instance
