lib/event/incremental.mli: Clock Event Event_query Instance
