lib/event/history.ml: Clock Event List
