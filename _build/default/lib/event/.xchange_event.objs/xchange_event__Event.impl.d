lib/event/event.ml: Clock Fmt Option Term Xchange_data
