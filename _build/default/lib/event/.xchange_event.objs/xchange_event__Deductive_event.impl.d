lib/event/deductive_event.ml: Construct Event Event_query Fmt Incremental Instance List Option String Xchange_query
