lib/event/deductive_event.mli: Clock Construct Event Event_query Xchange_query
