lib/event/event_query.mli: Clock Construct Fmt Qterm Xchange_query
