lib/event/event.mli: Clock Fmt Term Xchange_data
