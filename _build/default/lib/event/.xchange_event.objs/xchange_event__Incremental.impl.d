lib/event/incremental.ml: Clock Construct Event Event_query Float Instance Int List Option Simulate String Subst Xchange_data Xchange_query
