lib/event/history.mli: Clock Event
