lib/event/instance.mli: Clock Fmt Subst Xchange_query
