lib/event/instance.ml: Clock Fmt Int List Stdlib Subst Xchange_query
