(** Simulated time.

    The whole system runs on a discrete simulated clock with millisecond
    resolution, which makes every experiment deterministic and lets the
    temporal dimension of event queries (Thesis 5) be tested exactly. *)

type time = int
(** Milliseconds since the start of the simulation. *)

type span = int
(** A duration in milliseconds; always non-negative. *)

val origin : time

val ms : int -> span
val seconds : int -> span
val minutes : int -> span
val hours : int -> span

val add : time -> span -> time
val diff : time -> time -> span
(** [diff later earlier]; negative results are truncated to 0. *)

val pp_time : time Fmt.t
val pp_span : span Fmt.t
