(** Query-driven (backward-chaining) event query evaluation — the
    baseline Thesis 6 argues against.

    [answers q history ~now] re-evaluates the query over the {e entire}
    history from scratch: "a non-incremental, query-driven evaluation
    would have to check the entire history of events for an A when a B
    is detected".  It defines the reference semantics: for every query
    [q] and stream fed in time order, the cumulative detections of
    {!Incremental} equal [answers q] over the full history (property
    tested in the suite, cost compared in E6). *)

val answers : Event_query.t -> History.t -> now:Clock.time -> Instance.t list
(** All instances of the query over the retained history, restricted to
    those detectable by time [now] (absence deadlines must have
    passed). *)

val detections_per_event :
  Event_query.t -> Event.t list -> (Event.t * Instance.t list) list
(** Replays a stream the way a query-driven engine would: after each
    event, re-evaluate over the history so far and report the instances
    not already reported (the per-event work that E6 measures). *)
