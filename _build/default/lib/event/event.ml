open Xchange_data

type t = {
  id : int;
  label : string;
  payload : Term.t;
  sender : string;
  recipient : string;
  occurred_at : Clock.time;
  received_at : Clock.time;
  expires_at : Clock.time option;
}

let next_id = ref 0

let make ?(sender = "") ?(recipient = "") ?received_at ?ttl ~occurred_at ~label payload =
  incr next_id;
  {
    id = !next_id;
    label;
    payload;
    sender;
    recipient;
    occurred_at;
    received_at = Option.value ~default:occurred_at received_at;
    expires_at = Option.map (Clock.add occurred_at) ttl;
  }

let received e at = { e with received_at = at }
let time e = e.received_at

let expired e now = match e.expires_at with Some t -> now > t | None -> false

let to_term e =
  Term.elem "event"
    ~attrs:[ ("id", string_of_int e.id) ]
    [
      Term.elem "header"
        [
          Term.elem "label" [ Term.text e.label ];
          Term.elem "sender" [ Term.text e.sender ];
          Term.elem "recipient" [ Term.text e.recipient ];
          Term.elem "occurred-at" [ Term.int e.occurred_at ];
        ];
      Term.elem "body" [ e.payload ];
    ]

let pp ppf e =
  Fmt.pf ppf "#%d %s@%a %a" e.id e.label Clock.pp_time e.occurred_at Term.pp e.payload

let reset_ids () = next_id := 0
