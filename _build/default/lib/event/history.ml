type retention = Unbounded | Keep of Clock.span

type t = {
  retention : retention;
  mutable items : Event.t list;  (** newest first *)
  mutable now : Clock.time;
  mutable seen : int;
}

let create ?(retention = Unbounded) () =
  { retention; items = []; now = Clock.origin; seen = 0 }

let apply_retention h =
  match h.retention with
  | Unbounded -> ()
  | Keep span ->
      let cutoff = h.now - span in
      h.items <- List.filter (fun e -> Event.time e >= cutoff) h.items

let add h e =
  h.items <- e :: h.items;
  h.seen <- h.seen + 1;
  if Event.time e > h.now then h.now <- Event.time e;
  apply_retention h

let advance h t =
  if t > h.now then begin
    h.now <- t;
    apply_retention h
  end

let now h = h.now
let events h = List.rev h.items
let length h = List.length h.items
let total_seen h = h.seen
