type time = int
type span = int

let origin = 0
let ms n = n
let seconds n = n * 1000
let minutes n = n * 60_000
let hours n = n * 3_600_000
let add t s = t + s
let diff later earlier = max 0 (later - earlier)

let pp_time ppf t = Fmt.pf ppf "t+%dms" t

let pp_span ppf s =
  if s mod 3_600_000 = 0 && s > 0 then Fmt.pf ppf "%dh" (s / 3_600_000)
  else if s mod 60_000 = 0 && s > 0 then Fmt.pf ppf "%dmin" (s / 60_000)
  else if s mod 1000 = 0 && s > 0 then Fmt.pf ppf "%ds" (s / 1000)
  else Fmt.pf ppf "%dms" s
