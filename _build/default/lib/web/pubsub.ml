open Xchange_data
open Xchange_query
open Xchange_rules

let subscribers_doc = "/subscribers"

let empty_register () = Term.elem ~ord:Term.Unordered "subscribers" []

let topic_host_pattern label =
  Qterm.el label
    [
      Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.var "T") ]);
      Qterm.pos (Qterm.el "host" [ Qterm.pos (Qterm.var "H") ]);
    ]

let sub_entry_q =
  Qterm.el "sub"
    [
      Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.var "T") ]);
      Qterm.pos (Qterm.el "host" [ Qterm.pos (Qterm.var "H") ]);
    ]

let sub_entry_c =
  Construct.cel "sub"
    [
      Construct.cel "topic" [ Construct.cvar "T" ];
      Construct.cel "host" [ Construct.cvar "H" ];
    ]

let subscribe_rule =
  (* idempotent: drop any previous entry for (T, H) first *)
  Eca.make ~name:"subscribe"
    ~on:(Xchange_event.Event_query.on ~label:"subscribe" (topic_host_pattern "subscribe"))
    (Action.seq
       [
         Action.delete ~doc:subscribers_doc ~pattern:sub_entry_q ();
         Action.insert ~doc:subscribers_doc sub_entry_c;
       ])

let unsubscribe_rule =
  Eca.make ~name:"unsubscribe"
    ~on:(Xchange_event.Event_query.on ~label:"unsubscribe" (topic_host_pattern "unsubscribe"))
    (Action.delete ~doc:subscribers_doc ~pattern:sub_entry_q ())

let fanout_rule =
  (* one firing per subscriber answer: the per-answer ECA semantics does
     the fan-out *)
  let on_publish =
    Xchange_event.Event_query.on ~label:"publish"
      (Qterm.el "publish"
         [
           Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.var "T") ]);
           Qterm.pos (Qterm.As ("B", Qterm.el "body" []));
         ])
  in
  let subscriber_condition =
    Condition.In
      ( Condition.Local subscribers_doc,
        Qterm.el "sub"
          [
            Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.var "T") ]);
            Qterm.pos (Qterm.el "host" [ Qterm.pos (Qterm.var "H") ]);
          ] )
  in
  Eca.make ~name:"fan-out" ~on:on_publish ~if_:subscriber_condition
    (Action.raise_event_to ~to_:(Builtin.ovar "H") ~label:"notify"
       (Construct.cel "notify"
          [ Construct.cel "topic" [ Construct.cvar "T" ]; Construct.cvar "B" ]))

let publisher_ruleset ?(name = "pubsub") () =
  Ruleset.make ~rules:[ subscribe_rule; unsubscribe_rule; fanout_rule ] name

let subscribe ~topic ~host =
  Term.elem "subscribe" [ Term.elem "topic" [ Term.text topic ]; Term.elem "host" [ Term.text host ] ]

let unsubscribe ~topic ~host =
  Term.elem "unsubscribe" [ Term.elem "topic" [ Term.text topic ]; Term.elem "host" [ Term.text host ] ]

let publish ~topic body =
  Term.elem "publish" [ Term.elem "topic" [ Term.text topic ]; Term.elem "body" [ body ] ]

let subscribers store ~topic =
  match Store.doc store subscribers_doc with
  | None -> []
  | Some register ->
      let q =
        Qterm.el "sub"
          [
            Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.txt topic) ]);
            Qterm.pos (Qterm.el "host" [ Qterm.pos (Qterm.var "H") ]);
          ]
      in
      Simulate.matches_anywhere q register
      |> List.filter_map (fun s -> Option.bind (Subst.find "H" s) Term.as_text)
      |> List.sort_uniq String.compare
