open Xchange_data
open Xchange_query
open Xchange_rules

let cookies_doc = "/cookies"

let empty_jar () = Term.elem ~ord:Term.Unordered "cookies" []

let set_rule =
  let event =
    Xchange_event.Event_query.on ~label:"set-cookie"
      (Qterm.el "set-cookie"
         [
           Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]);
           Qterm.pos (Qterm.el "value" [ Qterm.pos (Qterm.var "V") ]);
         ])
  in
  let drop_old =
    Action.delete ~doc:cookies_doc
      ~pattern:
        (Qterm.el "cookie" [ Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]) ])
      ()
  in
  let insert_new =
    Action.insert ~doc:cookies_doc
      (Construct.cel "cookie"
         [
           Construct.cel "name" [ Construct.cvar "N" ];
           Construct.cel "value" [ Construct.cvar "V" ];
         ])
  in
  Eca.make ~name:"store-cookie" ~on:event (Action.seq [ drop_old; insert_new ])

let get_rule =
  let event =
    Xchange_event.Event_query.on ~label:"get-cookie"
      (Qterm.el "get-cookie"
         [
           Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]);
           Qterm.pos (Qterm.el "reply-to" [ Qterm.pos (Qterm.var "R") ]);
         ])
  in
  let have_cookie =
    Condition.In
      ( Condition.Local cookies_doc,
        Qterm.el "cookies"
          [
            Qterm.pos
              (Qterm.el "cookie"
                 [
                   Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]);
                   Qterm.pos (Qterm.el "value" [ Qterm.pos (Qterm.var "V") ]);
                 ]);
          ] )
  in
  let answer =
    Action.raise_event_to ~to_:(Builtin.ovar "R") ~label:"cookie"
      (Construct.cel "cookie"
         [
           Construct.cel "name" [ Construct.cvar "N" ];
           Construct.cel "value" [ Construct.cvar "V" ];
         ])
  in
  let sorry =
    Action.raise_event_to ~to_:(Builtin.ovar "R") ~label:"no-cookie"
      (Construct.cel "no-cookie" [ Construct.cel "name" [ Construct.cvar "N" ] ])
  in
  Eca.make ~name:"return-cookie" ~on:event ~if_:have_cookie answer ~else_:sorry

let client_ruleset () = Ruleset.make ~rules:[ set_rule; get_rule ] "cookie-client"

let set_cookie ~name ~value =
  Term.elem "set-cookie"
    [ Term.elem "name" [ Term.text name ]; Term.elem "value" [ Term.text value ] ]

let get_cookie ~name ~reply_to =
  Term.elem "get-cookie"
    [ Term.elem "name" [ Term.text name ]; Term.elem "reply-to" [ Term.text reply_to ] ]
