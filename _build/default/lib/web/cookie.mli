(** Cookies as reactive rules (Section 2 of the paper).

    "A server can request a client to store information in a cookie
    [...].  The server can then later retrieve this information."
    The client side is just a small rule set: two ECA rules storing and
    returning cookie data — a nice illustration of servers updating
    client-side persistent data through events. *)

open Xchange_rules

val cookies_doc : string
(** ["/cookies"] — where the client rule set keeps its jar. *)

val empty_jar : unit -> Xchange_data.Term.t
(** The initial jar document; add it to the client's store under
    {!cookies_doc} before delivering cookie events. *)

val client_ruleset : unit -> Ruleset.t
(** Rules:
    - on [set-cookie{name, value}]: replace any cookie of that name in
      the jar and insert the new one;
    - on [get-cookie{name, reply-to}]: if the jar holds the cookie,
      raise [cookie{name, value}] to the requester; otherwise raise
      [no-cookie{name}]. *)

val set_cookie : name:string -> value:string -> Xchange_data.Term.t
(** Payload builder for the server side. *)

val get_cookie : name:string -> reply_to:string -> Xchange_data.Term.t
