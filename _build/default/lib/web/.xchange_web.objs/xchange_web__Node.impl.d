lib/web/node.ml: Action Clock Condition Engine Event Fmt List Message Option Ruleset Store String Term Uri Xchange_data Xchange_event Xchange_query Xchange_rules
