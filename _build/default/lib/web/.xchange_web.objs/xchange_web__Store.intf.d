lib/web/store.mli: Action Condition Path Rdf Term Xchange_data Xchange_query Xchange_rules
