lib/web/cookie.mli: Ruleset Xchange_data Xchange_rules
