lib/web/pubsub.ml: Action Builtin Condition Construct Eca List Option Qterm Ruleset Simulate Store String Subst Term Xchange_data Xchange_event Xchange_query Xchange_rules
