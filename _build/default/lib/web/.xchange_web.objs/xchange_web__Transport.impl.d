lib/web/transport.ml: Clock List Map Message Option Stdlib Xchange_event
