lib/web/message.mli: Clock Event Fmt Term Xchange_data Xchange_event Xchange_rules
