lib/web/network.mli: Clock Message Node Term Transport Xchange_data Xchange_event
