lib/web/pubsub.mli: Ruleset Store Term Xchange_data Xchange_rules
