lib/web/network.ml: Clock Condition Event Hashtbl List Message Node Option Store String Transport Uri Xchange_event Xchange_query
