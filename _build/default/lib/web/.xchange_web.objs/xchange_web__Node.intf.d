lib/web/node.mli: Action Clock Condition Engine Event Message Ruleset Store Term Xchange_data Xchange_event Xchange_query Xchange_rules
