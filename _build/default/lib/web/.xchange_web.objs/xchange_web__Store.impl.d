lib/web/store.ml: Action Condition Fmt Hashtbl Identity Int64 List Option Path Rdf Result Simulate Stdlib String Term Uri Xchange_data Xchange_query Xchange_rules
