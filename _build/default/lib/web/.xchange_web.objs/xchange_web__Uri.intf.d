lib/web/uri.mli: Fmt
