lib/web/transport.mli: Clock Message Xchange_event
