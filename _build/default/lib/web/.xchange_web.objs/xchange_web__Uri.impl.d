lib/web/uri.ml: Fmt String
