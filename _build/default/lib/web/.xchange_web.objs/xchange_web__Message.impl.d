lib/web/message.ml: Clock Event Fmt String Term Xchange_data Xchange_event Xchange_rules Xml
