lib/web/poll.ml: Clock Event Message Network Node Term Uri Xchange_data Xchange_event
