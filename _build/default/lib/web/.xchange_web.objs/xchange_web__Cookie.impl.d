lib/web/cookie.ml: Action Builtin Condition Construct Eca Qterm Ruleset Term Xchange_data Xchange_event Xchange_query Xchange_rules
