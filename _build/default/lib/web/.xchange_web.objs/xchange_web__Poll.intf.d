lib/web/poll.mli: Clock Network Xchange_event
