open Xchange_event

(** Point-to-point message transport (Thesis 3).

    Messages travel directly between nodes — no broker, no super-peer —
    through a deterministic discrete-event queue: each message is
    delivered at [sent_at + latency(from, to)].  The transport keeps the
    traffic statistics (messages, bytes, per-kind counts) that
    experiments E2/E3 report. *)

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable events : int;
  mutable gets : int;
  mutable responses : int;
  mutable updates : int;
  mutable dropped : int;
}

type t

val create :
  ?latency:(from:string -> to_:string -> Clock.span) ->
  ?drop:(Message.t -> bool) ->
  ?record:bool ->
  unit ->
  t
(** [latency] defaults to a constant 5 ms.  [drop] injects message loss:
    dropped messages are accounted in the statistics (they were sent)
    but never delivered — the failure mode absence rules compensate
    for.  With [record] (default false), every message is kept for
    {!trace}. *)

val send : t -> Message.t -> unit
(** Queue a message for delivery at [sent_at + latency]. *)

val account_only : t -> Message.t -> unit
(** Record a message in the statistics without queueing it (used for the
    synchronous GET/Response pairs of remote condition queries). *)

val next_due : t -> Clock.time option
(** Delivery time of the earliest queued message. *)

val pop_due : t -> now:Clock.time -> Message.t list
(** All messages due at or before [now], in delivery order (time, then
    message id). *)

val pending : t -> int
val stats : t -> stats
val latency : t -> from:string -> to_:string -> Clock.span

val trace : t -> Message.t list
(** All recorded messages in send order ([] unless created with
    [record]). *)
