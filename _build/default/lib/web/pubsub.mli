(** Publish/subscribe as plain reactive rules (Thesis 3).

    Push requires the producer to know "other, interested Web sites".
    On an open Web that interest is declared by the consumers: this
    module provides the standard rule set a producer installs to manage
    a subscriber register and fan out notifications — no broker, no
    super-peer, just point-to-point events (the fan-out rule fires once
    per answer of the subscriber query, which is exactly the ECA
    per-answer semantics of {!Xchange_rules.Eca}).

    Protocol (all payloads are ordinary data terms):
    - [subscribe\[topic\[T\], host\[H\]\]] — H wants notifications for T;
    - [unsubscribe\[topic\[T\], host\[H\]\]];
    - [publish\[topic\[T\], body\[...\]\]] — producers publish through their
      own node (often from another rule's action);
    - subscribers receive [notify\[topic\[T\], body\[...\]\]]. *)

open Xchange_data
open Xchange_rules

val subscribers_doc : string
(** ["/subscribers"] — the register document. *)

val empty_register : unit -> Term.t

val publisher_ruleset : ?name:string -> unit -> Ruleset.t
(** The three rules (subscribe, unsubscribe, fan out). *)

val subscribe : topic:string -> host:string -> Term.t
val unsubscribe : topic:string -> host:string -> Term.t
val publish : topic:string -> Term.t -> Term.t

val subscribers : Store.t -> topic:string -> string list
(** Hosts currently subscribed to a topic, sorted. *)
