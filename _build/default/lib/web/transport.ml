open Xchange_event

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable events : int;
  mutable gets : int;
  mutable responses : int;
  mutable updates : int;
  mutable dropped : int;
}

module Queue_key = struct
  type t = Clock.time * int

  let compare = Stdlib.compare
end

module Q = Map.Make (Queue_key)

type t = {
  lat : from:string -> to_:string -> Clock.span;
  drop : Message.t -> bool;
  mutable queue : Message.t Q.t;
  s : stats;
  record : bool;
  mutable log : Message.t list;  (** newest first *)
}

let default_latency ~from:_ ~to_:_ = Clock.ms 5

let create ?(latency = default_latency) ?(drop = fun _ -> false) ?(record = false) () =
  {
    lat = latency;
    drop;
    queue = Q.empty;
    s = { messages = 0; bytes = 0; events = 0; gets = 0; responses = 0; updates = 0; dropped = 0 };
    record;
    log = [];
  }

let account t (m : Message.t) =
  if t.record then t.log <- m :: t.log;
  t.s.messages <- t.s.messages + 1;
  t.s.bytes <- t.s.bytes + Message.size_bytes m;
  match m.Message.body with
  | Message.Event _ -> t.s.events <- t.s.events + 1
  | Message.Get _ -> t.s.gets <- t.s.gets + 1
  | Message.Response _ -> t.s.responses <- t.s.responses + 1
  | Message.Update _ -> t.s.updates <- t.s.updates + 1

let send t m =
  account t m;
  if t.drop m then t.s.dropped <- t.s.dropped + 1
  else
    let deliver_at =
      Clock.add m.Message.sent_at (t.lat ~from:m.Message.from_host ~to_:m.Message.to_host)
    in
    t.queue <- Q.add (deliver_at, m.Message.msg_id) m t.queue

let account_only t m = account t m

let next_due t = Option.map (fun ((time, _), _) -> time) (Q.min_binding_opt t.queue)

let pop_due t ~now =
  let due, rest = Q.partition (fun (time, _) _ -> time <= now) t.queue in
  t.queue <- rest;
  List.map snd (Q.bindings due)

let pending t = Q.cardinal t.queue
let stats t = t.s
let latency t ~from ~to_ = t.lat ~from ~to_
let trace t = List.rev t.log
