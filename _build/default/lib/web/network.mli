(** The simulated Web: nodes + transport + a global clock.

    A deterministic discrete-event simulation.  Messages are processed
    in (delivery time, message id) order; periodic tasks (pollers,
    engine heartbeats for absence rules) interleave at their scheduled
    times.  Determinism is what lets every experiment in EXPERIMENTS.md
    be re-run bit-for-bit.

    Remote condition queries ([Condition.Remote uri]) are answered
    synchronously from the target node's store but accounted as a
    GET/Response message pair in the transport statistics, so that
    "access persistent data from anywhere on the Web" (Thesis 2) has a
    visible network cost. *)

open Xchange_data
open Xchange_event

type t

val create :
  ?latency:(from:string -> to_:string -> Clock.span) ->
  ?drop:(Message.t -> bool) ->
  ?record:bool ->
  unit ->
  t
(** [drop] injects message loss (see {!Transport.create}); [record]
    keeps a full message trace (see {!trace}). *)

val add_node : t -> Node.t -> unit
(** Host names must be unique. *)

val node : t -> string -> Node.t option
val node_exn : t -> string -> Node.t
val hosts : t -> string list

val clock : t -> Clock.time
val transport_stats : t -> Transport.stats

val trace : t -> Message.t list
(** Recorded messages in send order; empty unless created with
    [record:true]. *)

val remote_fetches : t -> int

val context_for : t -> Node.t -> Node.context
(** The capabilities the network grants a node (used internally and by
    tests that drive nodes directly). *)

val inject : t -> ?sender:string -> to_:string -> label:string -> ?ttl:Clock.span -> Term.t -> unit
(** Send an external stimulus event to a node (queued through the
    transport like any other message). *)

val add_ticker : t -> ?phase:Clock.span -> period:Clock.span -> (Clock.time -> unit) -> unit
(** Run a callback every [period] ms, first at [phase] (default:
    [period]). *)

val enable_heartbeat : t -> period:Clock.span -> unit
(** Advance every node's engine each period, so absence deadlines fire
    within [period] of their due time even on quiet nodes. *)

val run : t -> until:Clock.time -> unit
(** Process deliveries and tickers in time order up to (and including)
    [until], then advance all engines to [until]. *)

val run_until_quiet : t -> ?limit:Clock.time -> unit -> Clock.time
(** Run until no messages remain queued (tickers do not hold the
    simulation open); returns the final clock.  [limit] (default 10^9
    ms) bounds runaway rule cascades. *)

val quiescent : t -> bool
