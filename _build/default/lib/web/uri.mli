(** Minimal URIs for the simulated Web.

    A node is addressed by host; a resource by host + path, e.g.
    ["http://shop.example/orders"].  The scheme is accepted and ignored
    (the simulator is the transport). *)

type t = { host : string; path : string }

val parse : string -> t
(** ["http://h/p"], ["h/p"], or just ["h"] (path defaults to ["/"]).
    Never fails; pathological input degrades to a host-only URI. *)

val to_string : t -> string
val host : string -> string
(** Host part of a URI string. *)

val path : string -> string
(** Path part (leading [/] included) of a URI string; ["/"] if none. *)

val equal : t -> t -> bool
val pp : t Fmt.t
