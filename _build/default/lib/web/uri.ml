type t = { host : string; path : string }

let strip_scheme s =
  match String.index_opt s ':' with
  | Some i
    when i + 2 < String.length s && s.[i + 1] = '/' && s.[i + 2] = '/' ->
      String.sub s (i + 3) (String.length s - i - 3)
  | Some _ | None -> s

let parse s =
  let s = strip_scheme (String.trim s) in
  match String.index_opt s '/' with
  | None -> { host = s; path = "/" }
  | Some 0 -> { host = ""; path = s }
  | Some i -> { host = String.sub s 0 i; path = String.sub s i (String.length s - i) }

let to_string u = u.host ^ u.path
let host s = (parse s).host
let path s = (parse s).path
let equal a b = String.equal a.host b.host && String.equal a.path b.path
let pp ppf u = Fmt.string ppf (to_string u)
