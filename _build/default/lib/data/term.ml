type ordering = Ordered | Unordered

type t =
  | Elem of elem
  | Text of string
  | Num of float
  | Bool of bool

and elem = {
  id : int;
  label : string;
  attrs : (string * string) list;
  ord : ordering;
  children : t list;
}

let no_id = 0

let check_attrs attrs =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) attrs in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then invalid_arg ("Term.elem: duplicate attribute " ^ a)
        else dup rest
    | [ _ ] | [] -> ()
  in
  dup sorted;
  sorted

let elem ?(ord = Ordered) ?(attrs = []) label children =
  Elem { id = no_id; label; attrs = check_attrs attrs; ord; children }

let text s = Text s
let num f = Num f
let int i = Num (float_of_int i)
let bool_ b = Bool b

let with_id i = function Elem e -> Elem { e with id = i } | leaf -> leaf

let label = function Elem e -> Some e.label | Text _ | Num _ | Bool _ -> None
let children = function Elem e -> e.children | Text _ | Num _ | Bool _ -> []

let attr key = function
  | Elem e -> List.assoc_opt key e.attrs
  | Text _ | Num _ | Bool _ -> None

let elem_id = function Elem e -> e.id | Text _ | Num _ | Bool _ -> no_id

let float_is_int f = Float.is_integer f && Float.abs f < 1e15

let string_of_num f =
  if float_is_int f then string_of_int (int_of_float f) else string_of_float f

let as_text = function
  | Text s -> Some s
  | Num f -> Some (string_of_num f)
  | Bool b -> Some (string_of_bool b)
  | Elem _ -> None

let as_num = function
  | Num f -> Some f
  | Bool b -> Some (if b then 1. else 0.)
  | Text s -> float_of_string_opt (String.trim s)
  | Elem _ -> None

(* Extensional comparison: ids are ignored and unordered children are
   compared in canonical (sorted) order.  [compare] is the single source
   of truth; [equal] derives from it. *)
let rec compare a b =
  match (a, b) with
  | Text x, Text y -> String.compare x y
  | Num x, Num y -> Float.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Elem x, Elem y -> compare_elems x y
  | Text _, (Num _ | Bool _ | Elem _) -> -1
  | (Num _ | Bool _ | Elem _), Text _ -> 1
  | Num _, (Bool _ | Elem _) -> -1
  | (Bool _ | Elem _), Num _ -> 1
  | Bool _, Elem _ -> -1
  | Elem _, Bool _ -> 1

and compare_elems x y =
  let c = String.compare x.label y.label in
  if c <> 0 then c
  else
    let c = Stdlib.compare x.attrs y.attrs in
    if c <> 0 then c
    else
      let c = Stdlib.compare x.ord y.ord in
      if c <> 0 then c
      else
        let xs = canonical_children x and ys = canonical_children y in
        compare_lists xs ys

and canonical_children e =
  match e.ord with
  | Ordered -> e.children
  | Unordered -> List.sort compare e.children

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs' ys'

let equal a b = compare a b = 0

(* FNV-1a over a canonical byte rendering. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let digest t =
  let h = ref fnv_offset in
  let byte b = h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) fnv_prime in
  let str s = String.iter (fun c -> byte (Char.code c)) s in
  let rec go = function
    | Text s -> byte 1; str s
    | Num f -> byte 2; str (string_of_float f)
    | Bool b -> byte 3; byte (if b then 1 else 0)
    | Elem e ->
        byte 4;
        str e.label;
        byte (match e.ord with Ordered -> 5 | Unordered -> 6);
        List.iter (fun (k, v) -> byte 7; str k; byte 8; str v) e.attrs;
        List.iter (fun c -> byte 9; go c)
          (canonical_children e);
        byte 10
  in
  go t;
  !h

let rec size = function
  | Text _ | Num _ | Bool _ -> 1
  | Elem e -> List.fold_left (fun acc c -> acc + size c) 1 e.children

let rec depth = function
  | Text _ | Num _ | Bool _ -> 1
  | Elem e -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 e.children

let rec fold f acc t =
  let acc = f acc t in
  match t with
  | Elem e -> List.fold_left (fold f) acc e.children
  | Text _ | Num _ | Bool _ -> acc

let subterms t = List.rev (fold (fun acc s -> s :: acc) [] t)
let find_all p t = List.filter p (subterms t)

let rec map_elements f = function
  | Elem e ->
      let children = List.map (map_elements f) e.children in
      Elem (f { e with children })
  | (Text _ | Num _ | Bool _) as leaf -> leaf

let strip_ids t = map_elements (fun e -> { e with id = no_id }) t

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Text s -> Fmt.pf ppf "\"%s\"" (escape s)
  | Num f -> Fmt.string ppf (string_of_num f)
  | Bool b -> Fmt.bool ppf b
  | Elem e ->
      let o, c = match e.ord with Ordered -> ("[", "]") | Unordered -> ("{", "}") in
      let pp_attr ppf (k, v) = Fmt.pf ppf "@%s=\"%s\"" k (escape v) in
      if e.attrs = [] && e.children = [] then Fmt.pf ppf "%s%s%s" e.label o c
      else
        Fmt.pf ppf "@[<hv 2>%s%s%a%s%a%s@]" e.label o
          Fmt.(list ~sep:comma pp_attr)
          e.attrs
          (if e.attrs <> [] && e.children <> [] then ", " else "")
          Fmt.(list ~sep:comma pp)
          e.children c

let to_string t = Fmt.str "%a" pp t
