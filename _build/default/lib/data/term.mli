(** XML-infoset-like data terms.

    This is the data model shared by the whole system (Thesis 7: one data
    model for events, conditions, and actions).  A term is either an
    element with a label, attributes, and children, or a scalar leaf
    (text, number, boolean).  Elements declare whether the order of their
    children is significant ([Ordered], rendered with [\[..\]]) or not
    ([Unordered], rendered with [{..}]), following Xcerpt's data terms.

    Each element additionally carries a {e surrogate identity} field
    [id].  The id is {b excluded} from extensional operations ([equal],
    [compare], [digest], serialisation); it exists so that stores can
    track objects across value changes (Thesis 10).  Terms built with the
    public constructors have [id = no_id]. *)

type ordering = Ordered | Unordered

type t =
  | Elem of elem
  | Text of string
  | Num of float
  | Bool of bool

and elem = {
  id : int;  (** surrogate identity; [no_id] when unassigned *)
  label : string;
  attrs : (string * string) list;  (** sorted by key, keys unique *)
  ord : ordering;
  children : t list;
}

val no_id : int
(** The id value marking an element without surrogate identity. *)

(** {1 Constructors} *)

val elem : ?ord:ordering -> ?attrs:(string * string) list -> string -> t list -> t
(** [elem label children] builds an element.  [ord] defaults to
    [Ordered].  Attributes are sorted by key; a duplicate key raises
    [Invalid_argument]. *)

val text : string -> t
val num : float -> t
val int : int -> t
val bool_ : bool -> t

val with_id : int -> t -> t
(** [with_id i t] sets the surrogate id of the root element of [t].
    Identity on leaves; raises nothing. *)

(** {1 Accessors} *)

val label : t -> string option
(** Root label of an element, [None] for leaves. *)

val children : t -> t list
(** Children of an element, [[]] for leaves. *)

val attr : string -> t -> string option
(** Attribute lookup on the root element. *)

val elem_id : t -> int
(** Surrogate id of the root element; [no_id] for leaves or unassigned. *)

val as_text : t -> string option
(** Scalar leaves rendered as a string; [None] for elements. *)

val as_num : t -> float option
(** Numeric view of a leaf: a [Num], a [Bool] (0/1), or a [Text] that
    parses as a float. *)

(** {1 Extensional operations} — all ignore surrogate ids. *)

val equal : t -> t -> bool
(** Structural equality.  [Unordered] children compare as multisets. *)

val compare : t -> t -> int
(** Total order consistent with [equal] (unordered children are compared
    in canonical order). *)

val digest : t -> int64
(** FNV-1a digest of the canonical form; collision-improbable value
    identity for Thesis 10's extensional mode. *)

(** {1 Traversal and size} *)

val size : t -> int
(** Number of nodes (elements and leaves). *)

val depth : t -> int

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all subterms, including the root. *)

val subterms : t -> t list
(** All subterms in pre-order, including the root. *)

val find_all : (t -> bool) -> t -> t list
(** Subterms satisfying a predicate, in pre-order. *)

val map_elements : (elem -> elem) -> t -> t
(** Bottom-up rewrite of every element. *)

val strip_ids : t -> t
(** Recursively reset all surrogate ids to [no_id]. *)

(** {1 Printing} *)

val pp : t Fmt.t
(** Compact Xcerpt-like rendering: [label\[a\[..\], "text"\]] for ordered,
    [label{..}] for unordered. *)

val to_string : t -> string
