let unordered_attr = "xch:unordered"

exception Error of string
exception Html_value of string

type mode = Strict | Html

type state = { src : string; mutable pos : int; mode : mode }

let fail st msg = raise (Error (Fmt.str "%s at offset %d" msg st.pos))
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip st s = if looking_at st s then st.pos <- st.pos + String.length s else fail st ("expected " ^ s)

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let skip_ws st = while (not (eof st)) && is_ws (peek st) do advance st done

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let name st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do advance st done;
  if st.pos = start then fail st "expected a name";
  let n = String.sub st.src start (st.pos - start) in
  match st.mode with Strict -> n | Html -> String.lowercase_ascii n

(* HTML elements that never have content *)
let html_void =
  [ "area"; "base"; "br"; "col"; "embed"; "hr"; "img"; "input"; "link"; "meta";
    "source"; "track"; "wbr" ]

(* elements implicitly closed by the next sibling of the same tag *)
let html_self_nesting = [ "p"; "li"; "tr"; "td"; "th"; "option" ]

let entity st =
  skip st "&";
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do advance st done;
  if eof st then fail st "unterminated entity";
  let e = String.sub st.src start (st.pos - start) in
  advance st;
  match e with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      if String.length e > 1 && e.[0] = '#' then
        let code =
          if e.[1] = 'x' || e.[1] = 'X' then int_of_string_opt ("0x" ^ String.sub e 2 (String.length e - 2))
          else int_of_string_opt (String.sub e 1 (String.length e - 1))
        in
        match code with
        | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
        | Some _ -> "?" (* non-ASCII code points degraded; fine for our use *)
        | None -> fail st ("bad character reference &" ^ e ^ ";")
      else fail st ("unknown entity &" ^ e ^ ";")

let attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then begin
    match st.mode with
    | Strict -> fail st "expected attribute value"
    | Html ->
        (* unquoted value: read to whitespace or tag end *)
        let buf = Buffer.create 8 in
        while (not (eof st)) && not (is_ws (peek st) || peek st = '>' || peek st = '/') do
          Buffer.add_char buf (peek st);
          advance st
        done;
        raise (Html_value (Buffer.contents buf))
  end;
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then (Buffer.add_string buf (entity st); go ())
    else (Buffer.add_char buf (peek st); advance st; go ())
  in
  go ();
  Buffer.contents buf

let rec skip_misc st =
  skip_ws st;
  if looking_at st "<!" && (not (looking_at st "<!--")) && st.mode = Html then begin
    (* doctype and friends *)
    while (not (eof st)) && peek st <> '>' do advance st done;
    if not (eof st) then advance st;
    skip_misc st
  end
  else if looking_at st "<!--" then begin
    st.pos <- st.pos + 4;
    let rec find () =
      if eof st then fail st "unterminated comment"
      else if looking_at st "-->" then st.pos <- st.pos + 3
      else (advance st; find ())
    in
    find (); skip_misc st
  end
  else if looking_at st "<?" then begin
    let rec find () =
      if eof st then fail st "unterminated processing instruction"
      else if looking_at st "?>" then st.pos <- st.pos + 2
      else (advance st; find ())
    in
    find (); skip_misc st
  end

let rec element ~keep_ws st =
  skip st "<";
  let tag = name st in
  let rec attrs acc =
    skip_ws st;
    if looking_at st "/>" || looking_at st ">" then List.rev acc
    else
      let k = name st in
      skip_ws st;
      if peek st <> '=' then begin
        (* valueless attribute (HTML only) *)
        match st.mode with
        | Html -> attrs ((k, "") :: acc)
        | Strict ->
            skip st "=";
            assert false
      end
      else begin
        skip st "=";
        skip_ws st;
        let v = try attr_value st with Html_value v -> v in
        attrs ((k, v) :: acc)
      end
  in
  let attrs = attrs [] in
  let ord =
    if List.assoc_opt unordered_attr attrs = Some "true" then Term.Unordered else Term.Ordered
  in
  let attrs = List.remove_assoc unordered_attr attrs in
  if looking_at st "/>" then begin
    st.pos <- st.pos + 2;
    Term.elem ~ord ~attrs tag []
  end
  else if st.mode = Html && List.mem tag html_void then begin
    skip st ">";
    Term.elem ~ord ~attrs tag []
  end
  else begin
    skip st ">";
    let children = content ~keep_ws ~enclosing:tag st [] in
    (* implicit closure: the matching </tag> may be missing in HTML *)
    if looking_at st "</" then begin
      let save = st.pos in
      skip st "</";
      let closing = name st in
      if String.equal closing tag then begin
        skip_ws st;
        skip st ">"
      end
      else if st.mode = Html then st.pos <- save
      else fail st (Fmt.str "mismatched closing tag </%s> for <%s>" closing tag)
    end
    else if st.mode = Strict then skip st "</";
    Term.elem ~ord ~attrs tag children
  end

and content ~keep_ws ?enclosing st acc =
  if eof st then
    if st.mode = Html then List.rev acc else fail st "unexpected end of input"
  else if looking_at st "</" then List.rev acc
  else if looking_at st "<!--" || looking_at st "<?" then
    (skip_misc st; content ~keep_ws ?enclosing st acc)
  else if peek st = '<' then begin
    (* HTML: <p>...<p> closes the previous p *)
    match (st.mode, enclosing) with
    | Html, Some tag when List.mem tag html_self_nesting -> (
        let save = st.pos in
        advance st;
        match name st with
        | next when String.equal next tag ->
            st.pos <- save;
            List.rev acc
        | _ | (exception Error _) ->
            st.pos <- save;
            content ~keep_ws ?enclosing st (element ~keep_ws st :: acc))
    | (Html | Strict), _ -> content ~keep_ws ?enclosing st (element ~keep_ws st :: acc)
  end
  else begin
    let buf = Buffer.create 16 in
    while (not (eof st)) && peek st <> '<' do
      if peek st = '&' then Buffer.add_string buf (entity st)
      else (Buffer.add_char buf (peek st); advance st)
    done;
    let s = Buffer.contents buf in
    let keep = keep_ws || String.exists (fun c -> not (is_ws c)) s in
    content ~keep_ws ?enclosing st (if keep then Term.Text s :: acc else acc)
  end

let parse_with mode ?(keep_ws = false) src =
  let st = { src; pos = 0; mode } in
  try
    skip_misc st;
    let t = element ~keep_ws st in
    skip_misc st;
    if not (eof st) then fail st "trailing content after root element";
    Ok t
  with Error msg -> Result.Error msg

let parse ?keep_ws src = parse_with Strict ?keep_ws src
let parse_html ?keep_ws src = parse_with Html ?keep_ws src

let parse_exn ?keep_ws src =
  match parse ?keep_ws src with Ok t -> t | Error msg -> invalid_arg ("Xml.parse: " ^ msg)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_attrs buf attrs ord =
  let attrs =
    match ord with
    | Term.Unordered -> attrs @ [ (unordered_attr, "true") ]
    | Term.Ordered -> attrs
  in
  List.iter (fun (k, v) -> Buffer.add_string buf (Fmt.str " %s=\"%s\"" k (escape_attr v))) attrs

let to_string ?(decl = false) t =
  let buf = Buffer.create 256 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\"?>";
  let rec go = function
    | Term.Text s -> Buffer.add_string buf (escape_text s)
    | Term.Num _ | Term.Bool _ as leaf ->
        Buffer.add_string buf (Option.value ~default:"" (Term.as_text leaf))
    | Term.Elem e ->
        Buffer.add_char buf '<';
        Buffer.add_string buf e.Term.label;
        render_attrs buf e.Term.attrs e.Term.ord;
        if e.Term.children = [] then Buffer.add_string buf "/>"
        else begin
          Buffer.add_char buf '>';
          List.iter go e.Term.children;
          Buffer.add_string buf (Fmt.str "</%s>" e.Term.label)
        end
  in
  go t;
  Buffer.contents buf

let rec pp ppf t =
  match t with
  | Term.Text s -> Fmt.string ppf (escape_text s)
  | Term.Num _ | Term.Bool _ -> Fmt.string ppf (Option.value ~default:"" (Term.as_text t))
  | Term.Elem e ->
      let buf = Buffer.create 32 in
      render_attrs buf e.Term.attrs e.Term.ord;
      if e.Term.children = [] then Fmt.pf ppf "<%s%s/>" e.Term.label (Buffer.contents buf)
      else
        Fmt.pf ppf "@[<v 2><%s%s>@,%a@]@,</%s>" e.Term.label (Buffer.contents buf)
          Fmt.(list ~sep:cut pp)
          e.Term.children e.Term.label
