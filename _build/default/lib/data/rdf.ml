type node =
  | Iri of string
  | Blank of string
  | Lit of string
  | Lit_num of float

type triple = { s : node; p : string; o : node }

let pp_node ppf = function
  | Iri i -> Fmt.pf ppf "<%s>" i
  | Blank b -> Fmt.pf ppf "_:%s" b
  | Lit s -> Fmt.pf ppf "%S" s
  | Lit_num f -> Fmt.float ppf f

let pp_triple ppf t = Fmt.pf ppf "%a <%s> %a ." pp_node t.s t.p pp_node t.o

let equal_node a b =
  match (a, b) with
  | Iri x, Iri y | Blank x, Blank y | Lit x, Lit y -> String.equal x y
  | Lit_num x, Lit_num y -> Float.equal x y
  | (Iri _ | Blank _ | Lit _ | Lit_num _), _ -> false

let compare_triple = Stdlib.compare

let rdf_type = "rdf:type"
let rdfs_sub_class_of = "rdfs:subClassOf"
let rdfs_sub_property_of = "rdfs:subPropertyOf"
let rdfs_domain = "rdfs:domain"
let rdfs_range = "rdfs:range"

module Triple_set = Set.Make (struct
  type t = triple

  let compare = compare_triple
end)

type graph = { mutable triples : Triple_set.t }

let create () = { triples = Triple_set.empty }

let add g t =
  if Triple_set.mem t g.triples then false
  else begin
    g.triples <- Triple_set.add t g.triples;
    true
  end

let of_list l =
  let g = create () in
  List.iter (fun t -> ignore (add g t)) l;
  g

let remove g t =
  if Triple_set.mem t g.triples then begin
    g.triples <- Triple_set.remove t g.triples;
    true
  end
  else false

let mem g t = Triple_set.mem t g.triples
let size g = Triple_set.cardinal g.triples
let to_list g = Triple_set.elements g.triples
let copy g = { triples = g.triples }

type pat = Exact of node | Var of string
type triple_pattern = { ps : pat; pp : pat; po : pat }
type binding = (string * node) list

let bind binding var node =
  match List.assoc_opt var binding with
  | Some existing -> if equal_node existing node then Some binding else None
  | None -> Some (List.sort (fun (a, _) (b, _) -> String.compare a b) ((var, node) :: binding))

let match_pat binding pat node =
  match pat with
  | Exact n -> if equal_node n node then Some binding else None
  | Var v -> bind binding v node

let match_triple binding pattern t =
  let ( let* ) = Option.bind in
  let* binding = match_pat binding pattern.ps t.s in
  let* binding = match_pat binding pattern.pp (Iri t.p) in
  match_pat binding pattern.po t.o

let query g patterns =
  let triples = to_list g in
  let step bindings pattern =
    List.concat_map
      (fun binding -> List.filter_map (fun t -> match_triple binding pattern t) triples)
      bindings
  in
  List.fold_left step [ [] ] patterns |> List.sort_uniq Stdlib.compare

(* RDFS entailment, semi-naive: derive from (delta, full) pairs until no
   new triples appear. *)
let derive_from g delta =
  let out = ref [] in
  let emit t = out := t :: !out in
  let each_delta f = Triple_set.iter f delta in
  let each_full f = Triple_set.iter f g.triples in
  each_delta (fun d ->
      (* subClassOf transitivity, both orders of (delta, full) *)
      if d.p = rdfs_sub_class_of then begin
        each_full (fun t ->
            if t.p = rdfs_sub_class_of && equal_node t.s d.o then emit { s = d.s; p = rdfs_sub_class_of; o = t.o };
            if t.p = rdfs_sub_class_of && equal_node t.o d.s then emit { s = t.s; p = rdfs_sub_class_of; o = d.o };
            if t.p = rdf_type && equal_node t.o d.s then emit { s = t.s; p = rdf_type; o = d.o })
      end;
      if d.p = rdfs_sub_property_of then begin
        each_full (fun t ->
            if t.p = rdfs_sub_property_of && equal_node t.s d.o then
              emit { s = d.s; p = rdfs_sub_property_of; o = t.o };
            if t.p = rdfs_sub_property_of && equal_node t.o d.s then
              emit { s = t.s; p = rdfs_sub_property_of; o = d.o };
            match d.s with
            | Iri sub when t.p = sub -> (
                match d.o with Iri super -> emit { s = t.s; p = super; o = t.o } | _ -> ())
            | _ -> ())
      end;
      if d.p = rdf_type then
        each_full (fun t ->
            if t.p = rdfs_sub_class_of && equal_node t.s d.o then emit { s = d.s; p = rdf_type; o = t.o });
      (* a fresh ordinary triple interacts with subPropertyOf, domain, range *)
      each_full (fun t ->
          (match t.s with
          | Iri sub when sub = d.p && t.p = rdfs_sub_property_of -> (
              match t.o with Iri super -> emit { s = d.s; p = super; o = d.o } | _ -> ())
          | _ -> ());
          if t.p = rdfs_domain && equal_node t.s (Iri d.p) then emit { s = d.s; p = rdf_type; o = t.o };
          if t.p = rdfs_range && equal_node t.s (Iri d.p) then
            match d.o with
            | Iri _ | Blank _ -> emit { s = d.o; p = rdf_type; o = t.o }
            | Lit _ | Lit_num _ -> ());
      (* domain/range declarations arriving after data *)
      if d.p = rdfs_domain then
        each_full (fun t ->
            if equal_node d.s (Iri t.p) then emit { s = t.s; p = rdf_type; o = d.o });
      if d.p = rdfs_range then
        each_full (fun t ->
            if equal_node d.s (Iri t.p) then
              match t.o with
              | Iri _ | Blank _ -> emit { s = t.o; p = rdf_type; o = d.o }
              | Lit _ | Lit_num _ -> ()));
  !out

let fixpoint_of derive g0 =
  let g = copy g0 in
  let rec loop delta =
    if Triple_set.is_empty delta then g
    else
      let derived = derive g delta in
      let fresh =
        List.fold_left
          (fun acc t -> if add g t then Triple_set.add t acc else acc)
          Triple_set.empty derived
      in
      loop fresh
  in
  loop g.triples

let rdfs_closure g0 = fixpoint_of derive_from g0

(* ---- OWL fragment ---------------------------------------------------- *)

let owl_same_as = "owl:sameAs"
let owl_inverse_of = "owl:inverseOf"
let owl_symmetric = "owl:SymmetricProperty"
let owl_transitive = "owl:TransitiveProperty"

let derive_owl g delta =
  let out = ref [] in
  let emit t = out := t :: !out in
  let each_delta f = Triple_set.iter f delta in
  let each_full f = Triple_set.iter f g.triples in
  let is_declared kind p =
    Triple_set.mem { s = Iri p; p = rdf_type; o = Iri kind } g.triples
  in
  each_delta (fun d ->
      (* sameAs: symmetric, transitive *)
      if d.p = owl_same_as then begin
        emit { s = d.o; p = owl_same_as; o = d.s };
        each_full (fun t ->
            if t.p = owl_same_as && equal_node t.s d.o then emit { s = d.s; p = owl_same_as; o = t.o };
            (* substitution of subjects and objects *)
            if equal_node t.s d.s then emit { t with s = d.o };
            if equal_node t.o d.s then emit { t with o = d.o })
      end;
      (* substitution when ordinary triples arrive after sameAs facts *)
      each_full (fun t ->
          if t.p = owl_same_as then begin
            if equal_node d.s t.s then emit { d with s = t.o };
            if equal_node d.o t.s then emit { d with o = t.o }
          end);
      (* declared symmetric properties *)
      if is_declared owl_symmetric d.p then emit { s = d.o; p = d.p; o = d.s };
      (* declared transitive properties *)
      if is_declared owl_transitive d.p then
        each_full (fun t ->
            if t.p = d.p then begin
              if equal_node t.s d.o then emit { s = d.s; p = d.p; o = t.o };
              if equal_node t.o d.s then emit { s = t.s; p = d.p; o = d.o }
            end);
      (* a property freshly declared symmetric/transitive re-processes
         existing edges *)
      (if d.p = rdf_type && equal_node d.o (Iri owl_symmetric) then
         match d.s with
         | Iri p -> each_full (fun t -> if t.p = p then emit { s = t.o; p; o = t.s })
         | Blank _ | Lit _ | Lit_num _ -> ());
      (if d.p = rdf_type && equal_node d.o (Iri owl_transitive) then
         match d.s with
         | Iri p ->
             each_full (fun t1 ->
                 if t1.p = p then
                   each_full (fun t2 ->
                       if t2.p = p && equal_node t1.o t2.s then emit { s = t1.s; p; o = t2.o }))
         | Blank _ | Lit _ | Lit_num _ -> ());
      (* inverseOf, both directions, declarations in either order *)
      (if d.p = owl_inverse_of then
         match (d.s, d.o) with
         | Iri p, Iri q ->
             each_full (fun t ->
                 if t.p = p then emit { s = t.o; p = q; o = t.s };
                 if t.p = q then emit { s = t.o; p = p; o = t.s })
         | _, _ -> ());
      each_full (fun t ->
          if t.p = owl_inverse_of then
            match (t.s, t.o) with
            | Iri p, Iri q ->
                if d.p = p then emit { s = d.o; p = q; o = d.s };
                if d.p = q then emit { s = d.o; p = p; o = d.s }
            | _, _ -> ()));
  !out

let owl_closure g0 =
  fixpoint_of (fun g delta -> derive_from g delta @ derive_owl g delta) g0

(* ---- Turtle subset ---------------------------------------------------- *)

let escape_lit s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let turtle_node = function
  | Iri i -> "<" ^ i ^ ">"
  | Blank b -> "_:" ^ b
  | Lit s -> "\"" ^ escape_lit s ^ "\""
  | Lit_num f ->
      if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
      else Printf.sprintf "%.17g" f

let to_turtle g =
  let buf = Buffer.create 256 in
  List.iter
    (fun t ->
      Buffer.add_string buf (turtle_node t.s);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (turtle_node (Iri t.p));
      Buffer.add_char buf ' ';
      Buffer.add_string buf (turtle_node t.o);
      Buffer.add_string buf " .\n")
    (to_list g);
  Buffer.contents buf

exception Turtle_error of string

let of_turtle src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Turtle_error (Fmt.str "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | Some '#' ->
        while !pos < n && src.[!pos] <> '\n' do incr pos done;
        skip_ws ()
    | Some _ | None -> ()
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = ':' || c = '.' || c = '/' || c = '#'
  in
  let bare_name () =
    let start = !pos in
    while !pos < n && is_name_char src.[!pos] do incr pos done;
    (* a trailing '.' is the statement terminator, not part of the name *)
    while !pos > start && src.[!pos - 1] = '.' do decr pos done;
    if !pos = start then fail "expected a name";
    String.sub src start (!pos - start)
  in
  let node () =
    skip_ws ();
    match peek () with
    | Some '<' ->
        incr pos;
        let start = !pos in
        while !pos < n && src.[!pos] <> '>' do incr pos done;
        if !pos >= n then fail "unterminated IRI";
        let iri = String.sub src start (!pos - start) in
        incr pos;
        Iri iri
    | Some '"' ->
        incr pos;
        let buf = Buffer.create 16 in
        let rec go () =
          if !pos >= n then fail "unterminated literal"
          else
            match src.[!pos] with
            | '"' -> incr pos
            | '\\' when !pos + 1 < n ->
                (match src.[!pos + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | c -> Buffer.add_char buf c);
                pos := !pos + 2;
                go ()
            | c ->
                Buffer.add_char buf c;
                incr pos;
                go ()
        in
        go ();
        Lit (Buffer.contents buf)
    | Some '_' when !pos + 1 < n && src.[!pos + 1] = ':' ->
        pos := !pos + 2;
        Blank (bare_name ())
    | Some c when (c >= '0' && c <= '9') || c = '-' || c = '+' ->
        let start = !pos in
        incr pos;
        while
          !pos < n
          && ((src.[!pos] >= '0' && src.[!pos] <= '9')
             || src.[!pos] = '.' || src.[!pos] = 'e' || src.[!pos] = 'E' || src.[!pos] = '-')
        do
          incr pos
        done;
        (* a trailing '.' terminates the statement *)
        let text = String.sub src start (!pos - start) in
        let text, backtrack =
          if String.length text > 1 && text.[String.length text - 1] = '.' then
            (String.sub text 0 (String.length text - 1), true)
          else (text, false)
        in
        if backtrack then decr pos;
        (match float_of_string_opt text with
        | Some f -> Lit_num f
        | None -> fail (Fmt.str "bad number %S" text))
    | Some 'a' when !pos + 1 >= n || not (is_name_char src.[!pos + 1]) ->
        incr pos;
        Iri rdf_type
    | Some _ -> Iri (bare_name ())
    | None -> fail "unexpected end of input"
  in
  try
    let g = create () in
    let rec statements () =
      skip_ws ();
      if !pos >= n then Ok g
      else
        let s = node () in
        let p =
          match node () with
          | Iri p -> p
          | Blank _ | Lit _ | Lit_num _ -> fail "predicate must be an IRI"
        in
        let o = node () in
        skip_ws ();
        (match peek () with
        | Some '.' -> incr pos
        | Some _ | None -> fail "expected '.'");
        ignore (add g { s; p; o });
        statements ()
    in
    statements ()
  with Turtle_error msg -> Error msg

let node_to_term = function
  | Iri i -> Term.elem "iri" [ Term.text i ]
  | Blank b -> Term.elem "blank" [ Term.text b ]
  | Lit s -> Term.text s
  | Lit_num f -> Term.num f

let node_of_term t =
  match t with
  | Term.Elem { Term.label = "iri"; children = [ Term.Text i ]; _ } -> Ok (Iri i)
  | Term.Elem { Term.label = "blank"; children = [ Term.Text b ]; _ } -> Ok (Blank b)
  | Term.Text s -> Ok (Lit s)
  | Term.Num f -> Ok (Lit_num f)
  | Term.Bool b -> Ok (Lit (string_of_bool b))
  | Term.Elem _ -> Error (Fmt.str "not an RDF node: %a" Term.pp t)

let triple_to_term t =
  Term.elem "triple"
    [ Term.elem "s" [ node_to_term t.s ]; Term.elem "p" [ Term.text t.p ]; Term.elem "o" [ node_to_term t.o ] ]

let triple_of_term t =
  let ( let* ) = Result.bind in
  match t with
  | Term.Elem { Term.label = "triple"; children = [ s_el; p_el; o_el ]; _ } -> (
      match (s_el, p_el, o_el) with
      | ( Term.Elem { Term.label = "s"; children = [ s ]; _ },
          Term.Elem { Term.label = "p"; children = [ Term.Text p ]; _ },
          Term.Elem { Term.label = "o"; children = [ o ]; _ } ) ->
          let* s = node_of_term s in
          let* o = node_of_term o in
          Ok { s; p; o }
      | _, _, _ -> Error (Fmt.str "malformed triple term: %a" Term.pp t))
  | _ -> Error (Fmt.str "not a triple term: %a" Term.pp t)

let graph_to_term g = Term.elem ~ord:Term.Unordered "rdf" (List.map triple_to_term (to_list g))

let graph_of_term t =
  match t with
  | Term.Elem { Term.label = "rdf"; children; _ } ->
      let rec go acc = function
        | [] -> Ok (of_list (List.rev acc))
        | c :: rest -> (
            match triple_of_term c with Ok tr -> go (tr :: acc) rest | Error e -> Error e)
      in
      go [] children
  | _ -> Error (Fmt.str "not an rdf graph term: %a" Term.pp t)
