(** Parsing and printing of an XML subset.

    Supported: elements, attributes (single- or double-quoted),
    self-closing tags, character data, comments ([<!-- -->], skipped),
    processing instructions and XML declarations (skipped), and the five
    predefined entities.  Not supported (out of scope for the paper's
    examples): DTDs, CDATA sections, namespaces (colons are kept as part
    of names).

    All parsed elements are [Ordered] (XML document order is
    significant); whitespace-only text nodes are dropped unless
    [keep_ws:true]. *)

val parse : ?keep_ws:bool -> string -> (Term.t, string) result
(** Parses a single root element. *)

val parse_exn : ?keep_ws:bool -> string -> Term.t
(** @raise Invalid_argument on parse errors. *)

val parse_html : ?keep_ws:bool -> string -> (Term.t, string) result
(** Tolerant HTML mode for scraping Web pages (the paper's applications
    monitor HTML as well as XML): void elements ([<br>], [<img>], ...)
    need no closing tag or slash; attribute values may be unquoted or
    missing ([<input disabled>]); tag and attribute names are
    lower-cased; a [<!DOCTYPE ...>] prelude is skipped; unclosed [<p>]
    and [<li>] elements are closed by the next opening of the same tag.
    Everything else behaves like {!parse}. *)

val to_string : ?decl:bool -> Term.t -> string
(** Serialises a term as XML.  Scalar leaves become character data;
    [Unordered] elements are serialised with their children in the order
    given (with an [xch:unordered="true"] attribute so that parsing round
    trips the ordering flag).  [decl] (default [false]) prepends an XML
    declaration. *)

val pp : Term.t Fmt.t
(** Indented XML rendering (for humans; not round-trip safe with respect
    to whitespace). *)
