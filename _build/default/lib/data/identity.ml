let counter = ref 0

let fresh () =
  incr counter;
  !counter

let assign t =
  Term.map_elements
    (fun e -> if e.Term.id = Term.no_id then { e with Term.id = fresh () } else e)
    t

(* Pre-order traversal carrying the reversed path. *)
let fold_with_paths f acc t =
  let rec go acc rpath t =
    let acc = f acc (List.rev rpath) t in
    List.fold_left
      (fun (i, acc) c -> (i + 1, go acc (i :: rpath) c))
      (0, acc) (Term.children t)
    |> snd
  in
  go acc [] t

let find_by_id t oid =
  let exception Found of Path.t in
  try
    fold_with_paths
      (fun () path sub -> if Term.elem_id sub = oid then raise (Found path))
      () t;
    None
  with Found p -> Some p

let oids t =
  fold_with_paths
    (fun acc path sub ->
      let i = Term.elem_id sub in
      if i <> Term.no_id then (i, path) :: acc else acc)
    [] t
  |> List.rev

let find_equal t value =
  fold_with_paths
    (fun acc path sub -> if Term.equal sub value then path :: acc else acc)
    [] t
  |> List.rev

let digest_index t =
  fold_with_paths (fun acc path sub -> (Term.digest sub, path) :: acc) [] t |> List.rev
