(** RDF triples, graphs, pattern queries, and RDFS inference.

    The Semantic Web side of the data substrate (Section 2 of the
    paper): reactive rules must be able to query and update RDF data and
    to use simple RDFS inference ("inference from RDF triples"). *)

type node =
  | Iri of string
  | Blank of string
  | Lit of string
  | Lit_num of float

type triple = { s : node; p : string; o : node }

val pp_node : node Fmt.t
val pp_triple : triple Fmt.t
val equal_node : node -> node -> bool
val compare_triple : triple -> triple -> int

(** {1 Well-known RDFS vocabulary} *)

val rdf_type : string
val rdfs_sub_class_of : string
val rdfs_sub_property_of : string
val rdfs_domain : string
val rdfs_range : string

(** {1 Graphs} *)

type graph

val create : unit -> graph
val of_list : triple list -> graph
val add : graph -> triple -> bool
(** [true] if the triple was new. *)

val remove : graph -> triple -> bool
val mem : graph -> triple -> bool
val size : graph -> int
val to_list : graph -> triple list
(** Triples in a deterministic order. *)

val copy : graph -> graph

(** {1 Pattern queries} *)

type pat = Exact of node | Var of string
type triple_pattern = { ps : pat; pp : pat; po : pat }

type binding = (string * node) list
(** Variable name to node, sorted by name. *)

val query : graph -> triple_pattern list -> binding list
(** Conjunctive (BGP) matching.  A predicate-position [Exact] pattern
    must be an [Iri]; variables joining across patterns must agree. *)

(** {1 RDFS inference} *)

val rdfs_closure : graph -> graph
(** Semi-naive fixpoint over the RDFS rules: transitivity of
    [subClassOf] and [subPropertyOf], type propagation through
    [subClassOf], property propagation through [subPropertyOf], and
    [domain]/[range] typing.  Returns a new graph; the input is not
    modified. *)

(** {2 OWL vocabulary (fragment)} — the paper's actions cover
    "insertions, deletions, or modifications of [...] OWL facts"; this
    fragment gives those facts inference semantics. *)

val owl_same_as : string
val owl_inverse_of : string
val owl_symmetric : string
(** [owl:SymmetricProperty]: declared as
    [(p rdf:type owl:SymmetricProperty)]. *)

val owl_transitive : string
(** [owl:TransitiveProperty]. *)

val owl_closure : graph -> graph
(** Fixpoint over the RDFS rules plus: symmetry of [owl:sameAs] and of
    declared symmetric properties, transitivity of [owl:sameAs] and of
    declared transitive properties, subject/object substitution under
    [owl:sameAs], and [owl:inverseOf] propagation (both directions). *)

(** {1 Turtle subset} — a textual wire format for graphs.

    Supported: one triple per statement terminated by [.]; IRIs in
    angle brackets or as bare CURIEs ([rdfs:subClassOf]); the [a]
    keyword for [rdf:type]; double-quoted string literals with
    backslash escapes; numeric literals; [_:name] blank nodes; [#]
    comments.  Not supported: prefix declarations (CURIEs are kept as
    opaque names), collections, predicate/object lists. *)

val to_turtle : graph -> string
val of_turtle : string -> (graph, string) result
(** [of_turtle (to_turtle g)] re-reads [g] exactly (property-tested). *)

(** {1 Term embedding} — triples as data terms, for carrying RDF in
    events and documents. *)

val triple_to_term : triple -> Term.t
val triple_of_term : Term.t -> (triple, string) result
val graph_to_term : graph -> Term.t
val graph_of_term : Term.t -> (graph, string) result
