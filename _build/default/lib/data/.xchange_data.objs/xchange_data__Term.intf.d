lib/data/term.mli: Fmt
