lib/data/term.ml: Bool Buffer Char Float Fmt Int64 List Stdlib String
