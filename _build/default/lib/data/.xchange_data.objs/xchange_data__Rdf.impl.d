lib/data/rdf.ml: Buffer Float Fmt List Option Printf Result Set Stdlib String Term
