lib/data/xml.mli: Fmt Term
