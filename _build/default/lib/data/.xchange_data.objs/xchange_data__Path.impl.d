lib/data/path.ml: Fmt List Option Stdlib String Term
