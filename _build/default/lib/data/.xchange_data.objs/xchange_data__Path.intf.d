lib/data/path.mli: Fmt Term
