lib/data/topic_map.ml: Fmt List Map Rdf Result Stdlib String Term
