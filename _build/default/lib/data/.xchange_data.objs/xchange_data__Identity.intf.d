lib/data/identity.mli: Path Term
