lib/data/identity.ml: List Term
