lib/data/xml.ml: Buffer Char Fmt List Option Result String Term
