lib/data/topic_map.mli: Rdf Term
