lib/data/rdf.mli: Fmt Term
