(** Topic Maps (ISO 13250, radically simplified).

    The paper lists Topic Maps among the data formats reactive Web
    applications handle.  This module models the core: {e topics} (with
    names, a type, and typed occurrences) and {e associations} (typed
    relationships whose members play roles), plus the operation that
    defines the technology — {!merge} — and bridges into the rest of
    the system: topic maps embed as data terms (so query terms and
    update actions work on them) and project onto RDF (so BGP
    conditions work on them). *)


type occurrence = { occ_type : string; value : string }

type topic = {
  id : string;
  names : string list;  (** base names; the first is primary *)
  topic_type : string option;
  occurrences : occurrence list;
}

type member = { role : string; player : string  (** topic id *) }

type association = { assoc_type : string; members : member list }

type t

val empty : t

val add_topic : t -> topic -> t
(** Adding a topic with an existing id merges the two (names and
    occurrences are unioned; a [None] type adopts the other's). *)

val add_association : t -> association -> t
(** Duplicate associations collapse. *)

val topic : ?names:string list -> ?topic_type:string -> ?occurrences:(string * string) list ->
  string -> topic

val association : assoc_type:string -> (string * string) list -> association
(** [(role, player)] pairs. *)

(** {1 Access} *)

val find_topic : t -> string -> topic option
val topics : t -> topic list
(** Sorted by id. *)

val associations : t -> association list

val topics_of_type : t -> string -> topic list

val players : t -> assoc_type:string -> role:string -> string list
(** Topic ids playing a role in associations of a type, sorted. *)

val associations_with : t -> player:string -> association list

(** {1 Merging} — the defining Topic Maps operation: topics with the
    same id are unified, everything else is unioned. *)

val merge : t -> t -> t

(** {1 Bridges} *)

val to_term : t -> Term.t
val of_term : Term.t -> (t, string) result
(** [of_term (to_term m)] = [m]. *)

val to_rdf : t -> Rdf.graph
(** Topic types become [rdf:type] triples, names [tm:name], occurrences
    predicate triples ([occ_type] as predicate); binary associations
    become one triple ([assoc_type] as predicate, members in role
    order); wider associations are reified through a blank node with
    one triple per role. *)
