type occurrence = { occ_type : string; value : string }

type topic = {
  id : string;
  names : string list;
  topic_type : string option;
  occurrences : occurrence list;
}

type member = { role : string; player : string }
type association = { assoc_type : string; members : member list }

module Smap = Map.Make (String)

type t = { by_id : topic Smap.t; assocs : association list (* sorted, unique *) }

let empty = { by_id = Smap.empty; assocs = [] }

let union_lists a b =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) a b

let merge_topics a b =
  {
    id = a.id;
    names = union_lists a.names b.names;
    topic_type = (match a.topic_type with Some _ -> a.topic_type | None -> b.topic_type);
    occurrences = union_lists a.occurrences b.occurrences;
  }

let add_topic t topic =
  let merged =
    match Smap.find_opt topic.id t.by_id with
    | Some existing -> merge_topics existing topic
    | None -> topic
  in
  { t with by_id = Smap.add topic.id merged t.by_id }

let add_association t assoc =
  if List.mem assoc t.assocs then t
  else { t with assocs = List.sort Stdlib.compare (assoc :: t.assocs) }

let topic ?(names = []) ?topic_type ?(occurrences = []) id =
  {
    id;
    names;
    topic_type;
    occurrences = List.map (fun (occ_type, value) -> { occ_type; value }) occurrences;
  }

let association ~assoc_type members =
  { assoc_type; members = List.map (fun (role, player) -> { role; player }) members }

let find_topic t id = Smap.find_opt id t.by_id
let topics t = List.map snd (Smap.bindings t.by_id)
let associations t = t.assocs

let topics_of_type t ty =
  List.filter (fun topic -> topic.topic_type = Some ty) (topics t)

let players t ~assoc_type ~role =
  List.concat_map
    (fun a ->
      if String.equal a.assoc_type assoc_type then
        List.filter_map (fun m -> if String.equal m.role role then Some m.player else None) a.members
      else [])
    t.assocs
  |> List.sort_uniq String.compare

let associations_with t ~player =
  List.filter (fun a -> List.exists (fun m -> String.equal m.player player) a.members) t.assocs

let merge a b =
  let with_topics = Smap.fold (fun _ topic acc -> add_topic acc topic) b.by_id a in
  List.fold_left add_association with_topics b.assocs

(* ---- term embedding --------------------------------------------------- *)

let topic_to_term topic =
  Term.elem "topic"
    ~attrs:[ ("id", topic.id) ]
    (List.map (fun n -> Term.elem "name" [ Term.text n ]) topic.names
    @ (match topic.topic_type with
      | Some ty -> [ Term.elem "instanceOf" [ Term.text ty ] ]
      | None -> [])
    @ List.map
        (fun o -> Term.elem "occurrence" ~attrs:[ ("type", o.occ_type) ] [ Term.text o.value ])
        topic.occurrences)

let association_to_term a =
  Term.elem "association"
    ~attrs:[ ("type", a.assoc_type) ]
    (List.map
       (fun m -> Term.elem "member" ~attrs:[ ("role", m.role) ] [ Term.text m.player ])
       a.members)

let to_term t =
  Term.elem ~ord:Term.Unordered "topicMap"
    (List.map topic_to_term (topics t) @ List.map association_to_term (associations t))

let ( let* ) = Result.bind

let topic_of_term term =
  match term with
  | Term.Elem { Term.label = "topic"; attrs; children; _ } -> (
      match List.assoc_opt "id" attrs with
      | None -> Error "topic without id"
      | Some id ->
          let rec gather names ty occs = function
            | [] -> Ok { id; names = List.rev names; topic_type = ty; occurrences = List.rev occs }
            | Term.Elem { Term.label = "name"; children = [ Term.Text n ]; _ } :: rest ->
                gather (n :: names) ty occs rest
            | Term.Elem { Term.label = "instanceOf"; children = [ Term.Text t ]; _ } :: rest ->
                gather names (Some t) occs rest
            | Term.Elem { Term.label = "occurrence"; attrs; children = [ Term.Text v ]; _ } :: rest
              -> (
                match List.assoc_opt "type" attrs with
                | Some ot -> gather names ty ({ occ_type = ot; value = v } :: occs) rest
                | None -> Error "occurrence without type")
            | other :: _ -> Error (Fmt.str "unexpected topic child: %a" Term.pp other)
          in
          gather [] None [] children)
  | _ -> Error (Fmt.str "not a topic term: %a" Term.pp term)

let association_of_term term =
  match term with
  | Term.Elem { Term.label = "association"; attrs; children; _ } -> (
      match List.assoc_opt "type" attrs with
      | None -> Error "association without type"
      | Some assoc_type ->
          let rec gather members = function
            | [] -> Ok { assoc_type; members = List.rev members }
            | Term.Elem { Term.label = "member"; attrs; children = [ Term.Text player ]; _ }
              :: rest -> (
                match List.assoc_opt "role" attrs with
                | Some role -> gather ({ role; player } :: members) rest
                | None -> Error "member without role")
            | other :: _ -> Error (Fmt.str "unexpected association child: %a" Term.pp other)
          in
          gather [] children)
  | _ -> Error (Fmt.str "not an association term: %a" Term.pp term)

let of_term term =
  match term with
  | Term.Elem { Term.label = "topicMap"; children; _ } ->
      List.fold_left
        (fun acc child ->
          let* t = acc in
          match Term.label child with
          | Some "topic" ->
              let* topic = topic_of_term child in
              Ok (add_topic t topic)
          | Some "association" ->
              let* a = association_of_term child in
              Ok (add_association t a)
          | Some _ | None -> Error (Fmt.str "unexpected topic map entry: %a" Term.pp child))
        (Ok empty) children
  | _ -> Error (Fmt.str "not a topic map term: %a" Term.pp term)

(* ---- RDF projection ---------------------------------------------------- *)

let to_rdf t =
  let g = Rdf.create () in
  let add tr = ignore (Rdf.add g tr) in
  List.iter
    (fun topic ->
      let s = Rdf.Iri topic.id in
      (match topic.topic_type with
      | Some ty -> add { Rdf.s; p = Rdf.rdf_type; o = Rdf.Iri ty }
      | None -> ());
      List.iter (fun n -> add { Rdf.s; p = "tm:name"; o = Rdf.Lit n }) topic.names;
      List.iter (fun o -> add { Rdf.s; p = o.occ_type; o = Rdf.Lit o.value }) topic.occurrences)
    (topics t);
  List.iteri
    (fun i a ->
      match a.members with
      | [ m1; m2 ] ->
          (* binary: subject plays the first role in sorted role order *)
          let first, second = if String.compare m1.role m2.role <= 0 then (m1, m2) else (m2, m1) in
          add { Rdf.s = Rdf.Iri first.player; p = a.assoc_type; o = Rdf.Iri second.player }
      | members ->
          let node = Rdf.Blank (Fmt.str "assoc%d" i) in
          add { Rdf.s = node; p = Rdf.rdf_type; o = Rdf.Iri a.assoc_type };
          List.iter (fun m -> add { Rdf.s = node; p = m.role; o = Rdf.Iri m.player }) members)
    (associations t);
  g
