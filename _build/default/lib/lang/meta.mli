(** Meta-programming and meta-circularity (Thesis 11).

    "Programs can have other programs as data and exploit their
    semantics"; in the {e meta-circular} special case "the same language
    is used on both levels".  Rule sets are reified as data terms whose
    payload is the rule set in the {e same surface syntax} the engine
    executes — the rules realising the exchange and the rules being
    exchanged are written in one language.  Because
    [Parser ∘ Printer = id] (property-tested), reification is lossless.

    A reified rule set travels like any other event payload; a node with
    [accept_rules] and a decoder installed (see
    {!Xchange_web.Node.set_rule_decoder}) loads it on arrival.  The
    trust-negotiation scenario of the paper is built on exactly this
    ({!Xchange_aaa.Trust}). *)

open Xchange_data
open Xchange_rules

val ruleset_label : string
(** Root label of reified rule-set terms, ["xchange:ruleset"]. *)

val ruleset_to_term : Ruleset.t -> Term.t
val ruleset_of_term : Term.t -> (Ruleset.t, string) result

val rules_event_payload : Ruleset.t -> Term.t
(** Alias of {!ruleset_to_term}; the payload to send under the event
    label {!Xchange_web.Node.rules_label}. *)

val size_bytes : Ruleset.t -> int
(** Wire size of the reified form (reported by E11). *)
