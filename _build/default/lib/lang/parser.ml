open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules

let keywords =
  [
    "var"; "desc"; "without"; "regex"; "any"; "true"; "false"; "all"; "count"; "sum"; "avg";
    "min"; "max"; "expr"; "and"; "or"; "seq"; "times"; "absent"; "rises"; "within"; "from";
    "as"; "last"; "on"; "if"; "do"; "else"; "rule"; "ruleset"; "procedure"; "view"; "derive";
    "emit"; "in"; "not"; "rdf"; "doc"; "uri"; "iri"; "blank"; "insert"; "into"; "at"; "pos";
    "delete"; "matching"; "replace"; "with"; "create"; "drop"; "raise"; "to"; "ttl";
    "persist"; "call"; "log"; "nop"; "fail"; "assert"; "retract"; "alt"; "atomic"; "then"; "size"; "after";
    "consume"; "first"; "ms"; "s"; "h"; "event"; "lvar"; "labelled"; "optional";
  ]

exception Parse_error of string

type state = { mutable toks : Lexer.located list }

let fail_at (l : Lexer.located) msg =
  raise (Parse_error (Fmt.str "%s at line %d, column %d" msg l.Lexer.line l.Lexer.col))

let peek st =
  match st.toks with [] -> Lexer.{ token = EOF; line = 0; col = 0 } | l :: _ -> l

let peek2 st = match st.toks with _ :: l :: _ -> Some l.Lexer.token | _ -> None
let next st =
  let l = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  l

let expect st token what =
  let l = next st in
  if l.Lexer.token <> token then fail_at l (Fmt.str "expected %s, found %a" what Lexer.pp_token l.Lexer.token)

let accept st token =
  match st.toks with
  | l :: rest when l.Lexer.token = token ->
      st.toks <- rest;
      true
  | _ -> false

(* names: identifiers or quoted strings *)
let name st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.IDENT s | Lexer.STRING s -> s
  | t -> fail_at l (Fmt.str "expected a name, found %a" Lexer.pp_token t)

let ident st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.IDENT s -> s
  | t -> fail_at l (Fmt.str "expected an identifier, found %a" Lexer.pp_token t)

let string_lit st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.STRING s -> s
  | t -> fail_at l (Fmt.str "expected a string, found %a" Lexer.pp_token t)

let number st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.NUMBER f -> f
  | t -> fail_at l (Fmt.str "expected a number, found %a" Lexer.pp_token t)

let int_lit st =
  let f = number st in
  if Float.is_integer f then int_of_float f
  else raise (Parse_error (Fmt.str "expected an integer, found %g" f))

let is_kw st kw = match (peek st).Lexer.token with Lexer.IDENT s -> String.equal s kw | _ -> false

let kw st kw_name =
  let l = next st in
  match l.Lexer.token with
  | Lexer.IDENT s when String.equal s kw_name -> ()
  | t -> fail_at l (Fmt.str "expected '%s', found %a" kw_name Lexer.pp_token t)

let accept_kw st kw_name =
  if is_kw st kw_name then begin
    ignore (next st);
    true
  end
  else false

(* The lexer munches adjacent closing brackets into double tokens
   ([\]\]], [}}]); nested structures must split them back (and,
   symmetrically, merge two singles when a double is required). *)

let replace_head st token =
  match st.toks with
  | l :: rest -> st.toks <- { l with Lexer.token } :: rest
  | [] -> ()

let at_closer st closer =
  let t = (peek st).Lexer.token in
  t = closer
  || (closer = Lexer.RBRACKET && t = Lexer.RRBRACKET)
  || (closer = Lexer.RBRACE && t = Lexer.RRBRACE)

let rec expect_closer st closer what =
  let t = (peek st).Lexer.token in
  match (closer, t) with
  | Lexer.RBRACKET, Lexer.RRBRACKET -> replace_head st Lexer.RBRACKET
  | Lexer.RBRACE, Lexer.RRBRACE -> replace_head st Lexer.RBRACE
  | Lexer.RRBRACKET, Lexer.RBRACKET ->
      ignore (next st);
      expect_closer st Lexer.RBRACKET what
  | Lexer.RRBRACE, Lexer.RBRACE ->
      ignore (next st);
      expect_closer st Lexer.RBRACE what
  | _, _ -> expect st closer what

let accept_open_brace st =
  match (peek st).Lexer.token with
  | Lexer.LBRACE ->
      ignore (next st);
      true
  | Lexer.LLBRACE ->
      replace_head st Lexer.LBRACE;
      true
  | _ -> false

let comma_list st ~stop parse_item =
  if at_closer st stop then []
  else
    let rec go acc =
      let item = parse_item st in
      if accept st Lexer.COMMA then go (item :: acc) else List.rev (item :: acc)
    in
    go []

(* ---- durations ------------------------------------------------------- *)

let duration st =
  let value = int_lit st in
  match (peek st).Lexer.token with
  | Lexer.IDENT "ms" -> ignore (next st); Clock.ms value
  | Lexer.IDENT "s" -> ignore (next st); Clock.seconds value
  | Lexer.IDENT "min" -> ignore (next st); Clock.minutes value
  | Lexer.IDENT "h" -> ignore (next st); Clock.hours value
  | _ -> Clock.ms value

(* ---- query terms ------------------------------------------------------ *)

let spec_of_opener = function
  | Lexer.LBRACKET -> Some (Qterm.Total, Term.Ordered, Lexer.RBRACKET)
  | Lexer.LBRACE -> Some (Qterm.Total, Term.Unordered, Lexer.RBRACE)
  | Lexer.LLBRACKET -> Some (Qterm.Partial, Term.Ordered, Lexer.RRBRACKET)
  | Lexer.LLBRACE -> Some (Qterm.Partial, Term.Unordered, Lexer.RRBRACE)
  | _ -> None

let rec qterm st : Qterm.t =
  let l = peek st in
  match l.Lexer.token with
  | Lexer.IDENT "var" ->
      ignore (next st);
      let v = ident st in
      if accept st Lexer.ARROW then Qterm.As (v, qterm st) else Qterm.Var v
  | Lexer.IDENT "desc" ->
      ignore (next st);
      Qterm.Desc (qterm st)
  | Lexer.IDENT "regex" ->
      ignore (next st);
      Qterm.Leaf (Qterm.Regex (string_lit st))
  | Lexer.IDENT "any" ->
      ignore (next st);
      Qterm.Leaf Qterm.Leaf_any
  | Lexer.IDENT "true" ->
      ignore (next st);
      Qterm.Leaf (Qterm.Bool_is true)
  | Lexer.IDENT "false" ->
      ignore (next st);
      Qterm.Leaf (Qterm.Bool_is false)
  | Lexer.NUMBER f ->
      ignore (next st);
      Qterm.Leaf (Qterm.Num_is f)
  | Lexer.MINUS ->
      ignore (next st);
      Qterm.Leaf (Qterm.Num_is (-.number st))
  | Lexer.IDENT "lvar" ->
      ignore (next st);
      let v = ident st in
      element_pattern st (Qterm.L_var v)
  | Lexer.STAR ->
      ignore (next st);
      element_pattern st Qterm.L_any
  | Lexer.IDENT label -> (
      match peek2 st with
      | Some opener when Option.is_some (spec_of_opener opener) ->
          ignore (next st);
          element_pattern st (Qterm.L label)
      | _ -> fail_at l (Fmt.str "unexpected identifier %s in query term" label))
  | Lexer.STRING s -> (
      match peek2 st with
      | Some opener when Option.is_some (spec_of_opener opener) ->
          ignore (next st);
          element_pattern st (Qterm.L s)
      | _ ->
          ignore (next st);
          Qterm.Leaf (Qterm.Text_is s))
  | t -> fail_at l (Fmt.str "unexpected %a in query term" Lexer.pp_token t)

and element_pattern st label =
  let l = next st in
  match spec_of_opener l.Lexer.token with
  | None -> fail_at l "expected an opening bracket"
  | Some (spec, ord, closer) ->
      let attrs = ref [] in
      let children =
        comma_list st ~stop:closer (fun st ->
            if accept st Lexer.AT then begin
              let key = name st in
              let pat =
                if accept st Lexer.EQ then
                  let l = peek st in
                  match l.Lexer.token with
                  | Lexer.STRING s -> ignore (next st); Qterm.A_is s
                  | Lexer.IDENT "var" -> ignore (next st); Qterm.A_var (ident st)
                  | t -> fail_at l (Fmt.str "expected attribute value, found %a" Lexer.pp_token t)
                else Qterm.A_any
              in
              attrs := (key, pat) :: !attrs;
              None
            end
            else if accept_kw st "without" then Some (Qterm.Without (qterm st))
            else if accept_kw st "optional" then Some (Qterm.Opt (qterm st))
            else Some (Qterm.Pos (qterm st)))
      in
      expect_closer st closer "a closing bracket";
      Qterm.El
        {
          Qterm.label;
          attrs = List.rev !attrs;
          ord;
          spec;
          children = List.filter_map (fun c -> c) children;
        }

(* ---- operands --------------------------------------------------------- *)

let rec operand st : Builtin.operand =
  let lhs = mult_operand st in
  let rec tail lhs =
    match (peek st).Lexer.token with
    | Lexer.PLUS -> ignore (next st); tail (Builtin.O_add (lhs, mult_operand st))
    | Lexer.MINUS -> ignore (next st); tail (Builtin.O_sub (lhs, mult_operand st))
    | Lexer.CARET -> ignore (next st); tail (Builtin.O_concat (lhs, mult_operand st))
    | _ -> lhs
  in
  tail lhs

and mult_operand st =
  let lhs = unary_operand st in
  let rec tail lhs =
    match (peek st).Lexer.token with
    | Lexer.STAR -> ignore (next st); tail (Builtin.O_mul (lhs, unary_operand st))
    | Lexer.SLASH -> ignore (next st); tail (Builtin.O_div (lhs, unary_operand st))
    | _ -> lhs
  in
  tail lhs

and unary_operand st =
  if accept st Lexer.MINUS then Builtin.O_neg (unary_operand st) else prim_operand st

and prim_operand st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.VAR v -> Builtin.O_var v
  | Lexer.NUMBER f -> Builtin.O_const (Term.num f)
  | Lexer.STRING s -> Builtin.O_const (Term.text s)
  | Lexer.IDENT "true" -> Builtin.O_const (Term.bool_ true)
  | Lexer.IDENT "false" -> Builtin.O_const (Term.bool_ false)
  | Lexer.IDENT "size" ->
      expect st Lexer.LPAREN "'('";
      let o = operand st in
      expect st Lexer.RPAREN "')'";
      Builtin.O_size o
  | Lexer.IDENT "iri" -> (
      expect st Lexer.LPAREN "'('";
      match (peek st).Lexer.token with
      | Lexer.STRING str ->
          ignore (next st);
          expect st Lexer.RPAREN "')'";
          Builtin.O_const (Term.elem "iri" [ Term.text str ])
      | _ ->
          let o = operand st in
          expect st Lexer.RPAREN "')'";
          Builtin.O_iri o)
  | Lexer.LPAREN ->
      let o = operand st in
      expect st Lexer.RPAREN "')'";
      o
  | t -> fail_at l (Fmt.str "unexpected %a in expression" Lexer.pp_token t)

(* ---- construct terms --------------------------------------------------- *)

let agg_of_ident = function
  | "count" -> Some Construct.Count
  | "sum" -> Some Construct.Sum
  | "avg" -> Some Construct.Avg
  | "min" -> Some Construct.Min
  | "max" -> Some Construct.Max
  | _ -> None

let rec construct st : Construct.t =
  let l = peek st in
  match l.Lexer.token with
  | Lexer.VAR v ->
      ignore (next st);
      Construct.C_var v
  | Lexer.NUMBER f ->
      ignore (next st);
      Construct.C_num f
  | Lexer.MINUS ->
      ignore (next st);
      Construct.C_num (-.number st)
  | Lexer.IDENT "lvar" ->
      ignore (next st);
      let v = ident st in
      construct_element st (`L_var v)
  | Lexer.IDENT "true" ->
      ignore (next st);
      Construct.C_bool true
  | Lexer.IDENT "false" ->
      ignore (next st);
      Construct.C_bool false
  | Lexer.IDENT "all" ->
      ignore (next st);
      Construct.C_all (construct st)
  | Lexer.IDENT "expr" ->
      ignore (next st);
      expect st Lexer.LPAREN "'('";
      let o = operand st in
      expect st Lexer.RPAREN "')'";
      Construct.C_operand o
  | Lexer.IDENT id when Option.is_some (agg_of_ident id) && peek2 st = Some Lexer.LPAREN ->
      ignore (next st);
      expect st Lexer.LPAREN "'('";
      let l = next st in
      let v =
        match l.Lexer.token with
        | Lexer.VAR v -> v
        | t -> fail_at l (Fmt.str "expected a variable, found %a" Lexer.pp_token t)
      in
      expect st Lexer.RPAREN "')'";
      Construct.C_agg (Option.get (agg_of_ident id), v)
  | Lexer.IDENT label -> (
      match peek2 st with
      | Some (Lexer.LBRACKET | Lexer.LBRACE) ->
          ignore (next st);
          construct_element st (`L label)
      | _ -> fail_at l (Fmt.str "unexpected identifier %s in construct term" label))
  | Lexer.STRING s -> (
      match peek2 st with
      | Some (Lexer.LBRACKET | Lexer.LBRACE) ->
          ignore (next st);
          construct_element st (`L s)
      | _ ->
          ignore (next st);
          Construct.C_text s)
  | t -> fail_at l (Fmt.str "unexpected %a in construct term" Lexer.pp_token t)

and construct_element st label =
  let l = next st in
  let ord, closer =
    match l.Lexer.token with
    | Lexer.LBRACKET -> (Term.Ordered, Lexer.RBRACKET)
    | Lexer.LBRACE -> (Term.Unordered, Lexer.RBRACE)
    | t -> fail_at l (Fmt.str "expected '[' or '{', found %a" Lexer.pp_token t)
  in
  let attrs = ref [] in
  let children =
    comma_list st ~stop:closer (fun st ->
        if accept st Lexer.AT then begin
          let key = name st in
          expect st Lexer.EQ "'='";
          let l = next st in
          let value =
            match l.Lexer.token with
            | Lexer.STRING s -> `A s
            | Lexer.VAR v -> `A_var v
            | t -> fail_at l (Fmt.str "expected attribute value, found %a" Lexer.pp_token t)
          in
          attrs := (key, value) :: !attrs;
          None
        end
        else Some (construct st))
  in
  expect_closer st closer "a closing bracket";
  Construct.C_el
    {
      Construct.label;
      attrs = List.rev !attrs;
      ord;
      children = List.filter_map (fun c -> c) children;
    }

(* ---- conditions -------------------------------------------------------- *)

let resource st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.IDENT "doc" ->
      expect st Lexer.LPAREN "'('";
      let s = string_lit st in
      expect st Lexer.RPAREN "')'";
      Condition.Local s
  | Lexer.IDENT "uri" ->
      expect st Lexer.LPAREN "'('";
      let s = string_lit st in
      expect st Lexer.RPAREN "')'";
      Condition.Remote s
  | Lexer.IDENT "view" ->
      expect st Lexer.LPAREN "'('";
      let s = name st in
      expect st Lexer.RPAREN "')'";
      Condition.View s
  | t -> fail_at l (Fmt.str "expected doc(...), uri(...) or view(...), found %a" Lexer.pp_token t)

let rdf_pat st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.VAR v -> Rdf.Var v
  | Lexer.STRING s -> Rdf.Exact (Rdf.Lit s)
  | Lexer.NUMBER f -> Rdf.Exact (Rdf.Lit_num f)
  | Lexer.IDENT "iri" ->
      expect st Lexer.LPAREN "'('";
      let s = string_lit st in
      expect st Lexer.RPAREN "')'";
      Rdf.Exact (Rdf.Iri s)
  | Lexer.IDENT "blank" ->
      expect st Lexer.LPAREN "'('";
      let s = string_lit st in
      expect st Lexer.RPAREN "')'";
      Rdf.Exact (Rdf.Blank s)
  | t -> fail_at l (Fmt.str "expected an RDF node pattern, found %a" Lexer.pp_token t)

let rec condition st : Condition.t =
  let l = peek st in
  match l.Lexer.token with
  | Lexer.IDENT "true" when peek2 st <> Some Lexer.LPAREN ->
      ignore (next st);
      Condition.True
  | Lexer.IDENT "false" when peek2 st <> Some Lexer.LPAREN ->
      ignore (next st);
      Condition.False
  | Lexer.IDENT "in" ->
      ignore (next st);
      let res = resource st in
      Condition.In (res, qterm st)
  | Lexer.IDENT "rdf" ->
      ignore (next st);
      let res = resource st in
      expect st Lexer.LBRACE "'{'";
      let rec triples acc =
        if at_closer st Lexer.RBRACE then begin
          expect_closer st Lexer.RBRACE "'}'";
          List.rev acc
        end
        else begin
          expect st Lexer.LPAREN "'('";
          let s = rdf_pat st in
          let p = rdf_pat st in
          let o = rdf_pat st in
          expect st Lexer.RPAREN "')'";
          triples ({ Rdf.ps = s; pp = p; po = o } :: acc)
        end
      in
      Condition.In_rdf (res, triples [])
  | Lexer.IDENT "and" ->
      ignore (next st);
      expect st Lexer.LPAREN "'('";
      let cs = comma_list st ~stop:Lexer.RPAREN condition in
      expect st Lexer.RPAREN "')'";
      Condition.And cs
  | Lexer.IDENT "or" ->
      ignore (next st);
      expect st Lexer.LPAREN "'('";
      let cs = comma_list st ~stop:Lexer.RPAREN condition in
      expect st Lexer.RPAREN "')'";
      Condition.Or cs
  | Lexer.IDENT "not" ->
      ignore (next st);
      expect st Lexer.LPAREN "'('";
      let c = condition st in
      expect st Lexer.RPAREN "')'";
      Condition.Not c
  | _ ->
      let lhs = operand st in
      let l = next st in
      let cmp =
        match l.Lexer.token with
        | Lexer.EQ -> Builtin.Eq
        | Lexer.NEQ -> Builtin.Neq
        | Lexer.LT -> Builtin.Lt
        | Lexer.LE -> Builtin.Le
        | Lexer.GT -> Builtin.Gt
        | Lexer.GE -> Builtin.Ge
        | t -> fail_at l (Fmt.str "expected a comparison operator, found %a" Lexer.pp_token t)
      in
      Condition.Cmp (cmp, lhs, operand st)

(* ---- event queries ----------------------------------------------------- *)

let rec event_query st : Event_query.t =
  let q = event_primary st in
  let rec wrap q =
    if accept_kw st "within" then wrap (Event_query.Within (q, duration st)) else q
  in
  wrap q

and event_list st =
  expect st Lexer.LBRACE "'{'";
  let qs = comma_list st ~stop:Lexer.RBRACE event_query in
  expect_closer st Lexer.RBRACE "'}'";
  qs

and event_primary st =
  let l = peek st in
  match l.Lexer.token with
  | Lexer.IDENT "and" when peek2 st = Some Lexer.LBRACE ->
      ignore (next st);
      Event_query.And (event_list st)
  | Lexer.IDENT "or" when peek2 st = Some Lexer.LBRACE ->
      ignore (next st);
      Event_query.Or (event_list st)
  | Lexer.IDENT "seq" when peek2 st = Some Lexer.LBRACE ->
      ignore (next st);
      Event_query.Seq (event_list st)
  | Lexer.IDENT "times" ->
      ignore (next st);
      let n = int_lit st in
      expect st Lexer.LBRACE "'{'";
      let q = event_query st in
      expect_closer st Lexer.RBRACE "'}'";
      kw st "within";
      Event_query.Times (n, q, duration st)
  | Lexer.IDENT "absent" ->
      ignore (next st);
      expect st Lexer.LBRACE "'{'";
      let q1 = event_query st in
      expect st Lexer.COMMA "','";
      let q2 = event_query st in
      expect_closer st Lexer.RBRACE "'}'";
      kw st "within";
      Event_query.Absent (q1, q2, duration st)
  | Lexer.IDENT "rises" ->
      ignore (next st);
      expect st Lexer.LPAREN "'('";
      let l = next st in
      let v =
        match l.Lexer.token with
        | Lexer.VAR v -> v
        | t -> fail_at l (Fmt.str "expected a variable, found %a" Lexer.pp_token t)
      in
      expect st Lexer.COMMA "','";
      let window = int_lit st in
      expect st Lexer.COMMA "','";
      let ratio = number st in
      expect st Lexer.RPAREN "')'";
      expect st Lexer.LBRACE "'{'";
      let over = event_query st in
      expect_closer st Lexer.RBRACE "'}'";
      kw st "as";
      let bind = ident st in
      Event_query.Rises
        { Event_query.r_over = over; r_var = v; r_window = window; r_ratio = ratio; r_bind = bind }
  | Lexer.IDENT id when Option.is_some (agg_of_ident id) && peek2 st = Some Lexer.LPAREN ->
      ignore (next st);
      expect st Lexer.LPAREN "'('";
      let l = next st in
      let v =
        match l.Lexer.token with
        | Lexer.VAR v -> v
        | t -> fail_at l (Fmt.str "expected a variable, found %a" Lexer.pp_token t)
      in
      expect st Lexer.RPAREN "')'";
      kw st "last";
      let window = int_lit st in
      expect st Lexer.LBRACE "'{'";
      let over = event_query st in
      expect_closer st Lexer.RBRACE "'}'";
      kw st "as";
      let bind = ident st in
      Event_query.Agg
        {
          Event_query.over;
          var = v;
          window;
          op = Option.get (agg_of_ident id);
          bind;
        }
  | _ -> atomic_query st

and atomic_query st =
  (* (name ':')? qterm ('from' STRING)? *)
  let label =
    match ((peek st).Lexer.token, peek2 st) with
    | (Lexer.IDENT l | Lexer.STRING l), Some Lexer.COLON ->
        ignore (next st);
        ignore (next st);
        Some l
    | _, _ -> None
  in
  let pattern = qterm st in
  let sender = if accept_kw st "from" then Some (string_lit st) else None in
  Event_query.Atomic { Event_query.label; pattern; sender }

(* ---- actions ----------------------------------------------------------- *)

let selector st =
  if accept_kw st "at" then
    let s = string_lit st in
    match Path.parse_selector s with
    | Ok sel -> sel
    | Error e -> raise (Parse_error ("bad selector: " ^ e))
  else []

let rec action st : Action.t =
  let l = peek st in
  match l.Lexer.token with
  | Lexer.LBRACE | Lexer.LLBRACE ->
      ignore (accept_open_brace st);
      let items =
        if at_closer st Lexer.RBRACE then []
        else
          let rec go acc =
            let a = action st in
            if accept st Lexer.SEMI then go (a :: acc) else List.rev (a :: acc)
          in
          go []
      in
      expect_closer st Lexer.RBRACE "'}'";
      Action.Seq items
  | Lexer.IDENT "atomic" ->
      ignore (next st);
      if not (accept_open_brace st) then expect st Lexer.LBRACE "'{'";
      let items =
        if at_closer st Lexer.RBRACE then []
        else
          let rec go acc =
            let a = action st in
            if accept st Lexer.SEMI then go (a :: acc) else List.rev (a :: acc)
          in
          go []
      in
      expect_closer st Lexer.RBRACE "'}'";
      Action.Atomic items
  | Lexer.IDENT "alt" ->
      ignore (next st);
      if not (accept_open_brace st) then expect st Lexer.LBRACE "'{'";
      let rec go acc =
        let a = action st in
        if accept st Lexer.PIPE then go (a :: acc) else List.rev (a :: acc)
      in
      let items = go [] in
      expect_closer st Lexer.RBRACE "'}'";
      Action.Alt items
  | Lexer.IDENT "if" ->
      ignore (next st);
      let c = condition st in
      kw st "then";
      let a = action st in
      kw st "else";
      let b = action st in
      Action.If (c, a, b)
  | Lexer.IDENT "insert" ->
      ignore (next st);
      kw st "into";
      let doc = operand st in
      let sel = selector st in
      let at = if accept_kw st "pos" then Some (int_lit st) else None in
      let content = construct st in
      Action.Insert { doc; selector = sel; at; content }
  | Lexer.IDENT "delete" ->
      ignore (next st);
      kw st "from";
      let doc = operand st in
      let sel = selector st in
      let pattern = if accept_kw st "matching" then Some (qterm st) else None in
      Action.Delete { doc; selector = sel; pattern }
  | Lexer.IDENT "replace" ->
      ignore (next st);
      kw st "in";
      let doc = operand st in
      let sel = selector st in
      kw st "with";
      let content = construct st in
      Action.Replace { doc; selector = sel; content }
  | Lexer.IDENT "create" ->
      ignore (next st);
      let doc = operand st in
      let content = construct st in
      Action.Create_doc { doc; content }
  | Lexer.IDENT "drop" ->
      ignore (next st);
      Action.Delete_doc { doc = operand st }
  | Lexer.IDENT "raise" ->
      ignore (next st);
      kw st "to";
      let recipient = operand st in
      let label = name st in
      let payload = construct st in
      let ttl = if accept_kw st "ttl" then Some (duration st) else None in
      let delay = if accept_kw st "after" then Some (duration st) else None in
      Action.Raise { recipient; label; payload; ttl; delay }
  | Lexer.IDENT "persist" ->
      ignore (next st);
      let l = next st in
      let v =
        match l.Lexer.token with
        | Lexer.VAR v -> v
        | t -> fail_at l (Fmt.str "expected a variable, found %a" Lexer.pp_token t)
      in
      kw st "to";
      Action.make_persistent ~doc:(string_lit st) v
  | Lexer.IDENT "call" ->
      ignore (next st);
      let pname = name st in
      expect st Lexer.LPAREN "'('";
      let args = comma_list st ~stop:Lexer.RPAREN operand in
      expect st Lexer.RPAREN "')'";
      Action.Call (pname, args)
  | Lexer.IDENT "log" ->
      ignore (next st);
      let fmt = string_lit st in
      let rec args acc = if accept st Lexer.COMMA then args (operand st :: acc) else List.rev acc in
      Action.Log (fmt, args [])
  | Lexer.IDENT "nop" ->
      ignore (next st);
      Action.Nop
  | Lexer.IDENT "fail" ->
      ignore (next st);
      Action.Fail (string_lit st)
  | Lexer.IDENT "assert" ->
      ignore (next st);
      kw st "into";
      let doc = operand st in
      let triple = action_triple st in
      Action.Rdf_assert { doc; triple }
  | Lexer.IDENT "retract" ->
      ignore (next st);
      kw st "from";
      let doc = operand st in
      let triple = action_triple st in
      Action.Rdf_retract { doc; triple }
  | t -> fail_at l (Fmt.str "unexpected %a in action" Lexer.pp_token t)

and action_triple st =
  expect st Lexer.LPAREN "'('";
  let s = operand st in
  expect st Lexer.COMMA "','";
  let p = operand st in
  expect st Lexer.COMMA "','";
  let o = operand st in
  expect st Lexer.RPAREN "')'";
  { Action.cs = s; cp = p; co = o }

(* ---- rules and rule sets ------------------------------------------------ *)

let rule_flags st =
  let consume = ref false in
  let selection = ref Xchange_event.Incremental.Each in
  if accept st Lexer.LPAREN then begin
    let rec go () =
      (if accept_kw st "consume" then consume := true
       else if accept_kw st "first" then selection := Xchange_event.Incremental.First
       else if accept_kw st "last" then selection := Xchange_event.Incremental.Last
       else
         let l = peek st in
         fail_at l "expected 'consume', 'first' or 'last'");
      if accept st Lexer.COMMA then go ()
    in
    go ();
    expect st Lexer.RPAREN "')'"
  end;
  (!consume, !selection)

let rule st =
  kw st "rule";
  let rname = name st in
  let consume, selection = rule_flags st in
  expect st Lexer.COLON "':'";
  kw st "on";
  let event = event_query st in
  let branches = ref [] in
  let else_action = ref None in
  let rec branch_loop () =
    if accept_kw st "if" then begin
      let c = condition st in
      kw st "do";
      let a = action st in
      branches := { Eca.condition = c; action = a } :: !branches;
      branch_loop ()
    end
    else if accept_kw st "do" then begin
      let a = action st in
      branches := { Eca.condition = Condition.True; action = a } :: !branches;
      branch_loop ()
    end
    else if accept_kw st "else" then else_action := Some (action st)
  in
  branch_loop ();
  if !branches = [] then raise (Parse_error (Fmt.str "rule %s has no action" rname));
  {
    Eca.name = rname;
    event;
    branches = List.rev !branches;
    else_action = !else_action;
    consume;
    selection;
  }

let procedure st =
  kw st "procedure";
  let pname = name st in
  expect st Lexer.LPAREN "'('";
  let params = comma_list st ~stop:Lexer.RPAREN ident in
  expect st Lexer.RPAREN "')'";
  let body = action st in
  (pname, { Action.params; body })

let view st =
  kw st "view";
  let vname = name st in
  let head = construct st in
  kw st "from";
  let body = condition st in
  Deductive.rule ~view:vname ~head ~body

let derive_rule st =
  kw st "derive";
  let dname = name st in
  kw st "emit";
  let label = name st in
  let payload = construct st in
  kw st "on";
  let trigger = event_query st in
  Xchange_event.Deductive_event.rule ~name:dname ~derives:label ~trigger ~payload

let rec ruleset st =
  kw st "ruleset";
  let rname = name st in
  expect st Lexer.LBRACE "'{'";
  let rules = ref [] and procs = ref [] and views = ref [] and events = ref [] in
  let children = ref [] in
  let rec items () =
    if is_kw st "ruleset" then begin
      children := ruleset st :: !children;
      items ()
    end
    else if is_kw st "rule" then begin
      rules := rule st :: !rules;
      items ()
    end
    else if is_kw st "procedure" then begin
      procs := procedure st :: !procs;
      items ()
    end
    else if is_kw st "view" then begin
      views := view st :: !views;
      items ()
    end
    else if is_kw st "derive" then begin
      events := derive_rule st :: !events;
      items ()
    end
  in
  items ();
  expect_closer st Lexer.RBRACE "'}'";
  Ruleset.make ~rules:(List.rev !rules) ~procedures:(List.rev !procs)
    ~views:(List.rev !views) ~event_rules:(List.rev !events)
    ~children:(List.rev !children) rname

(* ---- entry points -------------------------------------------------------- *)

let run parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      match parse st with
      | result ->
          let l = peek st in
          if l.Lexer.token = Lexer.EOF then Ok result
          else
            Error
              (Fmt.str "trailing input at line %d, column %d (%a)" l.Lexer.line l.Lexer.col
                 Lexer.pp_token l.Lexer.token)
      | exception Parse_error msg -> Error msg)

let parse_ruleset src = run ruleset src

let parse_program src =
  run
    (fun st ->
      let rec go acc = if is_kw st "ruleset" then go (ruleset st :: acc) else List.rev acc in
      match go [] with
      | [] -> raise (Parse_error "expected at least one ruleset")
      | [ single ] -> single
      | many -> Ruleset.make ~children:many "program")
    src

let parse_event_query src = run event_query src
let parse_qterm src = run qterm src
let parse_condition src = run condition src
let parse_construct src = run construct src
let parse_action src = run action src

let parse_term src =
  match parse_construct src with
  | Error e -> Error e
  | Ok c -> (
      match Construct.instantiate c Subst.empty [] with
      | Ok t -> Ok t
      | Error e -> Error ("not a ground term: " ^ e))
