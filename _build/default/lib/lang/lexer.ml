type token =
  | IDENT of string
  | VAR of string
  | STRING of string
  | NUMBER of float
  | LBRACE
  | RBRACE
  | LLBRACE
  | RRBRACE
  | LBRACKET
  | RBRACKET
  | LLBRACKET
  | RRBRACKET
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | AT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | ARROW
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | PIPE
  | EOF

type located = { token : token; line : int; col : int }

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | VAR s -> Fmt.pf ppf "$%s" s
  | STRING s -> Fmt.pf ppf "%S" s
  | NUMBER f -> Fmt.float ppf f
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LLBRACE -> Fmt.string ppf "{{"
  | RRBRACE -> Fmt.string ppf "}}"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | LLBRACKET -> Fmt.string ppf "[["
  | RRBRACKET -> Fmt.string ppf "]]"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | COMMA -> Fmt.string ppf ","
  | SEMI -> Fmt.string ppf ";"
  | COLON -> Fmt.string ppf ":"
  | AT -> Fmt.string ppf "@"
  | EQ -> Fmt.string ppf "="
  | NEQ -> Fmt.string ppf "!="
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | ARROW -> Fmt.string ppf "->"
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | SLASH -> Fmt.string ppf "/"
  | CARET -> Fmt.string ppf "^"
  | PIPE -> Fmt.string ppf "|"
  | EOF -> Fmt.string ppf "end of input"

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '-' || c = '.'

exception Lex_error of string

let tokenize src =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let tokens = ref [] in
  let emit pos token = tokens := { token; line = !line; col = pos - !bol + 1 } :: !tokens in
  let rec go i =
    if i >= n then emit i EOF
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        bol := i + 1;
        go (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '#' then begin
        let j = ref i in
        while !j < n && src.[!j] <> '\n' do incr j done;
        go !j
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error (Fmt.str "unterminated string at line %d" !line))
          else
            match src.[j] with
            | '"' -> j + 1
            | '\\' when j + 1 < n ->
                (match src.[j + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | c -> Buffer.add_char buf c);
                str (j + 2)
            | c ->
                Buffer.add_char buf c;
                str (j + 1)
        in
        let j = str (i + 1) in
        emit i (STRING (Buffer.contents buf));
        go j
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && (is_digit src.[!j] || src.[!j] = '.') do incr j done;
        let text = String.sub src i (!j - i) in
        match float_of_string_opt text with
        | Some f ->
            emit i (NUMBER f);
            go !j
        | None -> raise (Lex_error (Fmt.str "bad number %S at line %d" text !line))
      end
      else if c = '$' then begin
        let j = ref (i + 1) in
        while !j < n && is_ident_char src.[!j] do incr j done;
        if !j = i + 1 then raise (Lex_error (Fmt.str "empty variable name at line %d" !line));
        emit i (VAR (String.sub src (i + 1) (!j - i - 1)));
        go !j
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        (* trailing '-'/'.' belong to the next token, not the name *)
        while !j > i && (src.[!j - 1] = '-' || src.[!j - 1] = '.') do decr j done;
        emit i (IDENT (String.sub src i (!j - i)));
        go !j
      end
      else
        let two = if i + 1 < n then String.sub src i 2 else "" in
        match two with
        | "{{" -> emit i LLBRACE; go (i + 2)
        | "}}" -> emit i RRBRACE; go (i + 2)
        | "[[" -> emit i LLBRACKET; go (i + 2)
        | "]]" -> emit i RRBRACKET; go (i + 2)
        | "->" -> emit i ARROW; go (i + 2)
        | "!=" -> emit i NEQ; go (i + 2)
        | "<=" -> emit i LE; go (i + 2)
        | ">=" -> emit i GE; go (i + 2)
        | _ -> (
            match c with
            | '{' -> emit i LBRACE; go (i + 1)
            | '}' -> emit i RBRACE; go (i + 1)
            | '[' -> emit i LBRACKET; go (i + 1)
            | ']' -> emit i RBRACKET; go (i + 1)
            | '(' -> emit i LPAREN; go (i + 1)
            | ')' -> emit i RPAREN; go (i + 1)
            | ',' -> emit i COMMA; go (i + 1)
            | ';' -> emit i SEMI; go (i + 1)
            | ':' -> emit i COLON; go (i + 1)
            | '@' -> emit i AT; go (i + 1)
            | '=' -> emit i EQ; go (i + 1)
            | '<' -> emit i LT; go (i + 1)
            | '>' -> emit i GT; go (i + 1)
            | '+' -> emit i PLUS; go (i + 1)
            | '-' -> emit i MINUS; go (i + 1)
            | '*' -> emit i STAR; go (i + 1)
            | '/' -> emit i SLASH; go (i + 1)
            | '^' -> emit i CARET; go (i + 1)
            | '|' -> emit i PIPE; go (i + 1)
            | c -> raise (Lex_error (Fmt.str "unexpected character %C at line %d" c !line)))
  in
  match go 0 with
  | () -> Ok (List.rev !tokens)
  | exception Lex_error msg -> Error msg
