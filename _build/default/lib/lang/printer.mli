(** Pretty-printer for the surface syntax.

    Emits exactly the grammar {!Parser} accepts: for every value [x]
    produced by the parser or built with the library constructors,
    [Parser.parse_* (Printer.*_to_string x) = Ok x] (property-tested).
    This exact round trip is what makes textual rule reification
    ({!Meta}) lossless. *)

open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules

val pp_qterm : Qterm.t Fmt.t
val pp_construct : Construct.t Fmt.t
val pp_condition : Condition.t Fmt.t
val pp_operand : Builtin.operand Fmt.t
val pp_event_query : Event_query.t Fmt.t
val pp_action : Action.t Fmt.t
val pp_rule : Eca.t Fmt.t
val pp_ruleset : Ruleset.t Fmt.t
val pp_duration : Clock.span Fmt.t
val pp_term : Term.t Fmt.t
(** Ground data terms in construct syntax. *)

val ruleset_to_string : Ruleset.t -> string
val rule_to_string : Eca.t -> string
val event_query_to_string : Event_query.t -> string
val qterm_to_string : Qterm.t -> string
val action_to_string : Action.t -> string
val condition_to_string : Condition.t -> string
val term_to_string : Term.t -> string
