lib/lang/printer.mli: Action Builtin Clock Condition Construct Eca Event_query Fmt Qterm Ruleset Term Xchange_data Xchange_event Xchange_query Xchange_rules
