lib/lang/parser.mli: Action Condition Construct Event_query Qterm Ruleset Term Xchange_data Xchange_event Xchange_query Xchange_rules
