lib/lang/meta.mli: Ruleset Term Xchange_data Xchange_rules
