lib/lang/meta.ml: Fmt Parser Printer String Term Xchange_data
