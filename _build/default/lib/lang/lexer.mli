(** Lexer for the XChange-style surface syntax.

    Identifiers may contain [-] and [.] (XML names like [set-cookie]
    are common labels), so binary arithmetic operators must be
    surrounded by spaces.  Labels containing other characters (e.g.
    namespace colons) are written as string literals.  Comments run from
    [#] to end of line. *)

type token =
  | IDENT of string
  | VAR of string  (** [$x] *)
  | STRING of string  (** double-quoted, with backslash escapes *)
  | NUMBER of float
  | LBRACE  (** [{] *)
  | RBRACE
  | LLBRACE  (** [{{] *)
  | RRBRACE
  | LBRACKET  (** [\[] *)
  | RBRACKET
  | LLBRACKET  (** [\[\[] *)
  | RRBRACKET
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | AT
  | EQ  (** [=] *)
  | NEQ  (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | ARROW  (** [->] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET  (** [^], string concatenation *)
  | PIPE
  | EOF

type located = { token : token; line : int; col : int }

val tokenize : string -> (located list, string) result
val pp_token : token Fmt.t
