(** Recursive-descent parser for the XChange-style surface syntax.

    The parser builds the library types directly (rule sets, ECA rules,
    event queries, query and construct terms, conditions, actions) — the
    surface language has no separate AST, which is what makes textual
    meta-circularity (Thesis 11) exact: {!Printer} emits this grammar
    and [parse (print x) = x].

    Grammar sketch (see the test suite and the examples for living
    documentation):
    {v
ruleset shop {
  procedure ship(Item, Dest) {
    insert into "/shipments" shipment[item[$Item], dest[$Dest]];
    raise to $Dest picked pick[item[$Item]]
  }
  view gold gold[all name[$N]]
    from in doc("/customers") customers{{customer{{name[var N], status["gold"]}}}}
  rule handle-order: on order{{item[var Item], customer[var C]}}
    if in view(gold) gold{{name[var C]}}
    do call ship($Item, $C)
    else raise to "clerk.example" review review[item[$Item]]
}
    v} *)

open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules

val parse_program : string -> (Ruleset.t, string) result
(** One or more top-level rule sets; several are wrapped in a root set
    named ["program"]. *)

val parse_ruleset : string -> (Ruleset.t, string) result
val parse_event_query : string -> (Event_query.t, string) result
val parse_qterm : string -> (Qterm.t, string) result
val parse_condition : string -> (Condition.t, string) result
val parse_construct : string -> (Construct.t, string) result
val parse_action : string -> (Action.t, string) result
val parse_term : string -> (Term.t, string) result
(** Ground data terms in the same syntax (constructs without
    variables). *)

val keywords : string list
(** Reserved words; labels colliding with them must be quoted. *)
