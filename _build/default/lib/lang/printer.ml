open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules

(* ---- lexical helpers -------------------------------------------------- *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_plain_ident s =
  String.length s > 0
  && is_ident_start s.[0]
  && String.for_all
       (fun c -> is_ident_start c || (c >= '0' && c <= '9') || c = '-' || c = '.')
       s
  && s.[String.length s - 1] <> '-'
  && s.[String.length s - 1] <> '.'
  && not (List.mem s Parser.keywords)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let pp_name ppf s = Fmt.string ppf (if is_plain_ident s then s else quote s)
let pp_string ppf s = Fmt.string ppf (quote s)

(* shortest representation that parses back to the same float *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
  else
    let rec try_prec p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else try_prec (p + 1)
    in
    try_prec 12

let pp_number ppf f =
  if f < 0. then Fmt.pf ppf "- %s" (float_repr (Float.abs f)) else Fmt.string ppf (float_repr f)

let pp_duration ppf s =
  if s mod 3_600_000 = 0 && s > 0 then Fmt.pf ppf "%d h" (s / 3_600_000)
  else if s mod 60_000 = 0 && s > 0 then Fmt.pf ppf "%d min" (s / 60_000)
  else if s mod 1000 = 0 && s > 0 then Fmt.pf ppf "%d s" (s / 1000)
  else Fmt.pf ppf "%d ms" s

(* ---- operands ---------------------------------------------------------- *)

(* Precedence: additive(1) < multiplicative(2) < atoms(3). *)
let rec pp_operand_prec prec ppf (o : Builtin.operand) =
  let paren level body =
    if level < prec then Fmt.pf ppf "(%t)" body else body ppf
  in
  match o with
  | Builtin.O_var v -> Fmt.pf ppf "$%s" v
  | Builtin.O_const (Term.Num f) ->
      if f < 0. then Fmt.pf ppf "(%a)" pp_number f else pp_number ppf f
  | Builtin.O_const (Term.Text s) -> pp_string ppf s
  | Builtin.O_const (Term.Bool b) -> Fmt.bool ppf b
  | Builtin.O_const (Term.Elem { Term.label = "iri"; children = [ Term.Text i ]; _ }) ->
      Fmt.pf ppf "iri(%s)" (quote i)
  | Builtin.O_const t ->
      (* arbitrary term constants have no literal syntax; degrade to text *)
      pp_string ppf (Term.to_string t)
  | Builtin.O_add (a, b) ->
      paren 1 (fun ppf -> Fmt.pf ppf "%a + %a" (pp_operand_prec 1) a (pp_operand_prec 2) b)
  | Builtin.O_sub (a, b) ->
      paren 1 (fun ppf -> Fmt.pf ppf "%a - %a" (pp_operand_prec 1) a (pp_operand_prec 2) b)
  | Builtin.O_concat (a, b) ->
      paren 1 (fun ppf -> Fmt.pf ppf "%a ^ %a" (pp_operand_prec 1) a (pp_operand_prec 2) b)
  | Builtin.O_mul (a, b) ->
      paren 2 (fun ppf -> Fmt.pf ppf "%a * %a" (pp_operand_prec 2) a (pp_operand_prec 3) b)
  | Builtin.O_div (a, b) ->
      paren 2 (fun ppf -> Fmt.pf ppf "%a / %a" (pp_operand_prec 2) a (pp_operand_prec 3) b)
  | Builtin.O_neg a -> Fmt.pf ppf "(- %a)" (pp_operand_prec 3) a
  | Builtin.O_size a -> Fmt.pf ppf "size(%a)" (pp_operand_prec 1) a
  | Builtin.O_iri a -> Fmt.pf ppf "iri(%a)" (pp_operand_prec 1) a

let pp_operand ppf o = pp_operand_prec 1 ppf o

(* operands appearing where a bare `true`/`false` would be read as a
   condition keyword are parenthesised *)
let pp_operand_guarded ppf o =
  match o with
  | Builtin.O_const (Term.Bool _) -> Fmt.pf ppf "(%a)" pp_operand o
  | _ -> pp_operand ppf o

(* ---- query terms -------------------------------------------------------- *)

let brackets spec ord =
  match (spec, ord) with
  | Qterm.Total, Term.Ordered -> ("[", "]")
  | Qterm.Total, Term.Unordered -> ("{", "}")
  | Qterm.Partial, Term.Ordered -> ("[[", "]]")
  | Qterm.Partial, Term.Unordered -> ("{{", "}}")

let rec pp_qterm ppf (q : Qterm.t) =
  match q with
  | Qterm.Var v -> Fmt.pf ppf "var %s" v
  | Qterm.As (v, inner) -> Fmt.pf ppf "var %s -> %a" v pp_qterm inner
  | Qterm.Leaf Qterm.Leaf_any -> Fmt.string ppf "any"
  | Qterm.Leaf (Qterm.Text_is s) -> pp_string ppf s
  | Qterm.Leaf (Qterm.Num_is f) -> pp_number ppf f
  | Qterm.Leaf (Qterm.Bool_is b) -> Fmt.bool ppf b
  | Qterm.Leaf (Qterm.Regex r) -> Fmt.pf ppf "regex %s" (quote r)
  | Qterm.Desc inner -> Fmt.pf ppf "desc %a" pp_qterm inner
  | Qterm.El e ->
      let o, c = brackets e.Qterm.spec e.Qterm.ord in
      (match e.Qterm.label with
      | Qterm.L s -> pp_name ppf s
      | Qterm.L_var v -> Fmt.pf ppf "lvar %s " v
      | Qterm.L_any -> Fmt.string ppf "*");
      Fmt.string ppf o;
      let items =
        List.map
          (fun (k, ap) ->
            match ap with
            | Qterm.A_is s -> Fmt.str "@%a = %s" pp_name k (quote s)
            | Qterm.A_var v -> Fmt.str "@%a = var %s" pp_name k v
            | Qterm.A_any -> Fmt.str "@%a" pp_name k)
          e.Qterm.attrs
        @ List.map
            (fun child ->
              match child with
              | Qterm.Pos q -> Fmt.str "%a" pp_qterm q
              | Qterm.Without q -> Fmt.str "without %a" pp_qterm q
              | Qterm.Opt q -> Fmt.str "optional %a" pp_qterm q)
            e.Qterm.children
      in
      Fmt.pf ppf "%s%s" (String.concat ", " items) c

(* ---- construct terms ----------------------------------------------------- *)

let agg_name = function
  | Construct.Count -> "count"
  | Construct.Sum -> "sum"
  | Construct.Avg -> "avg"
  | Construct.Min -> "min"
  | Construct.Max -> "max"

let rec pp_construct ppf (c : Construct.t) =
  match c with
  | Construct.C_var v -> Fmt.pf ppf "$%s" v
  | Construct.C_text s -> pp_string ppf s
  | Construct.C_num f -> pp_number ppf f
  | Construct.C_bool b -> Fmt.bool ppf b
  | Construct.C_operand o -> Fmt.pf ppf "expr(%a)" pp_operand o
  | Construct.C_all inner -> Fmt.pf ppf "all %a" pp_construct inner
  | Construct.C_agg (op, v) -> Fmt.pf ppf "%s($%s)" (agg_name op) v
  | Construct.C_el e ->
      let o, c =
        match e.Construct.ord with Term.Ordered -> ("[", "]") | Term.Unordered -> ("{", "}")
      in
      (match e.Construct.label with
      | `L s -> pp_name ppf s
      | `L_var v -> Fmt.pf ppf "lvar %s " v);
      Fmt.string ppf o;
      let items =
        List.map
          (fun (k, a) ->
            match a with
            | `A s -> Fmt.str "@%a = %s" pp_name k (quote s)
            | `A_var v -> Fmt.str "@%a = $%s" pp_name k v)
          e.Construct.attrs
        @ List.map (Fmt.str "%a" pp_construct) e.Construct.children
      in
      Fmt.pf ppf "%s%s" (String.concat ", " items) c

let rec construct_of_term (t : Term.t) : Construct.t =
  match t with
  | Term.Text s -> Construct.C_text s
  | Term.Num f -> Construct.C_num f
  | Term.Bool b -> Construct.C_bool b
  | Term.Elem e ->
      Construct.C_el
        {
          Construct.label = `L e.Term.label;
          attrs = List.map (fun (k, v) -> (k, `A v)) e.Term.attrs;
          ord = e.Term.ord;
          children = List.map construct_of_term e.Term.children;
        }

let pp_term ppf t = pp_construct ppf (construct_of_term t)

(* ---- conditions ------------------------------------------------------------ *)

let pp_resource ppf (r : Condition.resource) =
  match r with
  | Condition.Local s -> Fmt.pf ppf "doc(%s)" (quote s)
  | Condition.Remote s -> Fmt.pf ppf "uri(%s)" (quote s)
  | Condition.View s -> Fmt.pf ppf "view(%a)" pp_name s

let pp_rdf_pat ppf (p : Rdf.pat) =
  match p with
  | Rdf.Var v -> Fmt.pf ppf "$%s" v
  | Rdf.Exact (Rdf.Iri i) -> Fmt.pf ppf "iri(%s)" (quote i)
  | Rdf.Exact (Rdf.Blank b) -> Fmt.pf ppf "blank(%s)" (quote b)
  | Rdf.Exact (Rdf.Lit s) -> pp_string ppf s
  | Rdf.Exact (Rdf.Lit_num f) -> pp_number ppf f

let rec pp_condition ppf (c : Condition.t) =
  match c with
  | Condition.True -> Fmt.string ppf "true"
  | Condition.False -> Fmt.string ppf "false"
  | Condition.In (r, q) -> Fmt.pf ppf "in %a %a" pp_resource r pp_qterm q
  | Condition.In_rdf (r, patterns) ->
      let pp_triple ppf (tp : Rdf.triple_pattern) =
        Fmt.pf ppf "(%a %a %a)" pp_rdf_pat tp.Rdf.ps pp_rdf_pat tp.Rdf.pp pp_rdf_pat tp.Rdf.po
      in
      Fmt.pf ppf "rdf %a {%a}" pp_resource r Fmt.(list ~sep:sp pp_triple) patterns
  | Condition.And cs ->
      Fmt.pf ppf "and(%a)" Fmt.(list ~sep:comma pp_condition) cs
  | Condition.Or cs -> Fmt.pf ppf "or(%a)" Fmt.(list ~sep:comma pp_condition) cs
  | Condition.Not c -> Fmt.pf ppf "not(%a)" pp_condition c
  | Condition.Cmp (cmp, a, b) ->
      let op =
        match cmp with
        | Builtin.Eq -> "="
        | Builtin.Neq -> "!="
        | Builtin.Lt -> "<"
        | Builtin.Le -> "<="
        | Builtin.Gt -> ">"
        | Builtin.Ge -> ">="
      in
      Fmt.pf ppf "%a %s %a" pp_operand_guarded a op pp_operand b

(* ---- event queries ----------------------------------------------------------- *)

let rec pp_event_query ppf (q : Event_query.t) =
  match q with
  | Event_query.Atomic a ->
      (match a.Event_query.label with
      | Some l -> Fmt.pf ppf "%a: " pp_name l
      | None -> ());
      pp_qterm ppf a.Event_query.pattern;
      (match a.Event_query.sender with
      | Some s -> Fmt.pf ppf " from %s" (quote s)
      | None -> ())
  | Event_query.And qs -> Fmt.pf ppf "and{%a}" Fmt.(list ~sep:comma pp_event_query) qs
  | Event_query.Or qs -> Fmt.pf ppf "or{%a}" Fmt.(list ~sep:comma pp_event_query) qs
  | Event_query.Seq qs -> Fmt.pf ppf "seq{%a}" Fmt.(list ~sep:comma pp_event_query) qs
  | Event_query.Within (q, s) ->
      (* postfix 'within' chains associate left in the parser *)
      Fmt.pf ppf "%a within %a" pp_event_query q pp_duration s
  | Event_query.Absent (q1, q2, s) ->
      Fmt.pf ppf "absent{%a, %a} within %a" pp_event_query q1 pp_event_query q2 pp_duration s
  | Event_query.Times (n, q, s) ->
      Fmt.pf ppf "times %d {%a} within %a" n pp_event_query q pp_duration s
  | Event_query.Agg spec ->
      Fmt.pf ppf "%s($%s) last %d {%a} as %s"
        (agg_name spec.Event_query.op)
        spec.Event_query.var spec.Event_query.window pp_event_query spec.Event_query.over
        spec.Event_query.bind
  | Event_query.Rises spec ->
      Fmt.pf ppf "rises($%s, %d, %s) {%a} as %s" spec.Event_query.r_var
        spec.Event_query.r_window
        (float_repr spec.Event_query.r_ratio)
        pp_event_query spec.Event_query.r_over spec.Event_query.r_bind

(* ---- actions -------------------------------------------------------------------- *)

let pp_selector_opt ppf (sel : Path.selector) =
  if sel <> [] then Fmt.pf ppf " at %s" (quote (Fmt.str "%a" Path.pp_selector sel))

let rec pp_action ppf (a : Action.t) =
  match a with
  | Action.Nop -> Fmt.string ppf "nop"
  | Action.Fail m -> Fmt.pf ppf "fail %s" (quote m)
  | Action.Log (fmt, args) ->
      Fmt.pf ppf "log %s%a" (quote fmt)
        Fmt.(list (fun ppf o -> Fmt.pf ppf ", %a" pp_operand o))
        args
  | Action.Insert { doc; selector; at; content } ->
      Fmt.pf ppf "insert into %a%a%a %a" pp_operand_guarded doc pp_selector_opt selector
        Fmt.(option (fun ppf i -> Fmt.pf ppf " pos %d" i))
        at pp_construct content
  | Action.Delete { doc; selector; pattern } ->
      Fmt.pf ppf "delete from %a%a%a" pp_operand_guarded doc pp_selector_opt selector
        Fmt.(option (fun ppf q -> Fmt.pf ppf " matching %a" pp_qterm q))
        pattern
  | Action.Replace { doc; selector; content } ->
      Fmt.pf ppf "replace in %a%a with %a" pp_operand_guarded doc pp_selector_opt selector
        pp_construct content
  | Action.Create_doc
      { doc = Builtin.O_const (Term.Text _) as doc; content = Construct.C_var v } ->
      (* canonical form of make_persistent *)
      Fmt.pf ppf "persist $%s to %a" v pp_doc_string doc
  | Action.Create_doc { doc; content } ->
      Fmt.pf ppf "create %a %a" pp_operand_guarded doc pp_construct content
  | Action.Delete_doc { doc } -> Fmt.pf ppf "drop %a" pp_operand_guarded doc
  | Action.Rdf_assert { doc; triple } ->
      Fmt.pf ppf "assert into %a (%a, %a, %a)" pp_operand_guarded doc pp_operand triple.Action.cs
        pp_operand triple.Action.cp pp_operand triple.Action.co
  | Action.Rdf_retract { doc; triple } ->
      Fmt.pf ppf "retract from %a (%a, %a, %a)" pp_operand_guarded doc pp_operand
        triple.Action.cs pp_operand triple.Action.cp pp_operand triple.Action.co
  | Action.Raise { recipient; label; payload; ttl; delay } ->
      Fmt.pf ppf "raise to %a %a %a%a%a" pp_operand recipient pp_name label pp_construct payload
        Fmt.(option (fun ppf t -> Fmt.pf ppf " ttl %a" pp_duration t))
        ttl
        Fmt.(option (fun ppf t -> Fmt.pf ppf " after %a" pp_duration t))
        delay
  | Action.Seq actions ->
      Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") pp_action) actions
  | Action.Atomic actions ->
      Fmt.pf ppf "atomic {%a}" Fmt.(list ~sep:(any "; ") pp_action) actions
  | Action.Alt actions ->
      Fmt.pf ppf "alt {%a}" Fmt.(list ~sep:(any " | ") pp_action) actions
  | Action.If (c, a, b) ->
      Fmt.pf ppf "if %a then %a else %a" pp_condition c pp_action a pp_action b
  | Action.Call (name, args) ->
      Fmt.pf ppf "call %a(%a)" pp_name name Fmt.(list ~sep:comma pp_operand) args

and pp_doc_string ppf (doc : Builtin.operand) =
  match doc with
  | Builtin.O_const (Term.Text s) -> pp_string ppf s
  | other -> pp_operand ppf other

(* ---- rules, views, procedures, rule sets ------------------------------------------ *)

let pp_rule ppf (r : Eca.t) =
  let flags =
    (if r.Eca.consume then [ "consume" ] else [])
    @
    match r.Eca.selection with
    | Xchange_event.Incremental.Each -> []
    | Xchange_event.Incremental.First -> [ "first" ]
    | Xchange_event.Incremental.Last -> [ "last" ]
  in
  Fmt.pf ppf "@[<v 2>rule %a%s:@ on %a" pp_name r.Eca.name
    (if flags = [] then "" else "(" ^ String.concat ", " flags ^ ")")
    pp_event_query r.Eca.event;
  List.iter
    (fun (b : Eca.branch) ->
      match b.Eca.condition with
      | Condition.True -> Fmt.pf ppf "@ do %a" pp_action b.Eca.action
      | c -> Fmt.pf ppf "@ if %a@ do %a" pp_condition c pp_action b.Eca.action)
    r.Eca.branches;
  (match r.Eca.else_action with
  | Some a -> Fmt.pf ppf "@ else %a" pp_action a
  | None -> ());
  Fmt.pf ppf "@]"

let pp_view ppf (v : Deductive.rule) =
  Fmt.pf ppf "@[<v 2>view %a %a@ from %a@]" pp_name v.Deductive.view pp_construct
    v.Deductive.head pp_condition v.Deductive.body

let pp_derive ppf (d : Deductive_event.rule) =
  Fmt.pf ppf "@[<v 2>derive %a emit %a %a@ on %a@]" pp_name d.Deductive_event.name pp_name
    d.Deductive_event.derived_label pp_construct d.Deductive_event.payload pp_event_query
    d.Deductive_event.trigger

let pp_procedure ppf (name, (p : Action.proc)) =
  Fmt.pf ppf "@[<v 2>procedure %a(%a) %a@]" pp_name name
    Fmt.(list ~sep:comma string)
    p.Action.params pp_action p.Action.body

let rec pp_ruleset ppf (rs : Ruleset.t) =
  Fmt.pf ppf "@[<v 2>ruleset %a {" pp_name rs.Ruleset.name;
  List.iter (fun p -> Fmt.pf ppf "@ %a" pp_procedure p) rs.Ruleset.procedures;
  List.iter (fun v -> Fmt.pf ppf "@ %a" pp_view v) rs.Ruleset.views;
  List.iter (fun d -> Fmt.pf ppf "@ %a" pp_derive d) rs.Ruleset.event_rules;
  List.iter (fun r -> Fmt.pf ppf "@ %a" pp_rule r) rs.Ruleset.rules;
  List.iter (fun c -> Fmt.pf ppf "@ %a" pp_ruleset c) rs.Ruleset.children;
  Fmt.pf ppf "@]@ }"

let to_str pp x = Fmt.str "@[<v>%a@]" pp x
let ruleset_to_string rs = to_str pp_ruleset rs
let rule_to_string r = to_str pp_rule r
let event_query_to_string q = to_str pp_event_query q
let qterm_to_string q = to_str pp_qterm q
let action_to_string a = to_str pp_action a
let condition_to_string c = to_str pp_condition c
let term_to_string t = to_str pp_term t
