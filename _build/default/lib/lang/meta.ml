open Xchange_data

let ruleset_label = "xchange:ruleset"

let ruleset_to_term rs =
  Term.elem ruleset_label [ Term.text (Printer.ruleset_to_string rs) ]

let ruleset_of_term t =
  match t with
  | Term.Elem { Term.label; children = [ Term.Text src ]; _ }
    when String.equal label ruleset_label ->
      Parser.parse_ruleset src
  | Term.Elem _ | Term.Text _ | Term.Num _ | Term.Bool _ ->
      Error (Fmt.str "not a reified rule set: %a" Term.pp t)

let rules_event_payload = ruleset_to_term

let size_bytes rs = String.length (Printer.ruleset_to_string rs)
