lib/aaa/accounting.mli: Ruleset Store Term Xchange_data Xchange_rules Xchange_web
