lib/aaa/trust.mli: Ruleset Xchange_rules
