lib/aaa/trust.ml: Action Condition Construct Eca List Option Qterm Ruleset Set String Term Xchange_data Xchange_event Xchange_lang Xchange_query Xchange_rules Xml
