lib/aaa/authz.ml: Builtin Condition Fmt List String Xchange_query
