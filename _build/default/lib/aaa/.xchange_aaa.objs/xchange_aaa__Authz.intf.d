lib/aaa/authz.mli: Fmt Xchange_query
