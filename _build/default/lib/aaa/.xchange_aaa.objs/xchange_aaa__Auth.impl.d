lib/aaa/auth.ml: Char Fmt Hashtbl Int64 Option Printf Result String Term Xchange_data
