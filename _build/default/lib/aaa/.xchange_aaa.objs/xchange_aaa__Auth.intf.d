lib/aaa/auth.mli: Term Xchange_data
