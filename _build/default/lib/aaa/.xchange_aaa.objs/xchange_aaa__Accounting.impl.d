lib/aaa/accounting.ml: Action Builtin Construct Eca Hashtbl List Option Qterm Ruleset Store String Term Xchange_data Xchange_event Xchange_query Xchange_rules Xchange_web
