(** Accounting (Thesis 12): "double reactivity".

    "On the one hand there is the reactive service itself, on the other
    hand the accounting service, which in turn reacts to uses of the
    reactive service.  Note [...] these are orthogonal axes of
    reactivity and no meta-programming has to be employed."

    Accordingly, accounting here is {e just another rule set}: one ECA
    rule per monitored service event label, appending a usage record to
    a log document.  Install it next to the service rule set on the same
    node — the accounting rules see the same event stream but know
    nothing about the service rules' interiors. *)

open Xchange_data
open Xchange_rules
open Xchange_web

val default_log_doc : string
(** ["/accounting/log"] *)

val log_document : unit -> Term.t
(** Empty log to pre-load into the node's store. *)

val ruleset :
  ?log_doc:string -> ?name:string -> service_labels:string list -> unit -> Ruleset.t
(** One rule per label: on any event with that label, record
    [use{service, sender, at}].  The sender is taken from the event
    envelope via a derivation-free trick: the rule queries the payload
    with a wildcard and stores the label; sender extraction uses the
    engine's event metadata (see implementation note). *)

(** {1 Reading the log} *)

type usage = { service : string; count : int }

val summary : Store.t -> ?log_doc:string -> unit -> usage list
(** Records per service label, sorted by label. *)

val total : Store.t -> ?log_doc:string -> unit -> int

val bill : rates:(string * float) list -> usage list -> float
(** Pay-per-use pricing: sum over services of [rate * count]; services
    without a rate are free. *)
