open Xchange_data

type principal = string

type registry = (string, string) Hashtbl.t

let create () = Hashtbl.create 8
let register reg principal ~secret = Hashtbl.replace reg principal secret
let known reg principal = Hashtbl.mem reg principal

(* keyed FNV-1a in a sponge-ish double pass; a stand-in for HMAC *)
let mac ~secret message =
  let h = ref 0xcbf29ce484222325L in
  let feed s =
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
      s
  in
  feed secret;
  feed "\x01";
  feed message;
  feed "\x02";
  feed secret;
  Printf.sprintf "%016Lx" !h

let token reg principal ~message =
  Option.map (fun secret -> mac ~secret message) (Hashtbl.find_opt reg principal)

let authenticate reg principal ~message ~token:presented =
  match Hashtbl.find_opt reg principal with
  | None -> false
  | Some secret -> String.equal (mac ~secret message) presented

type certificate = {
  subject : principal;
  issuer : principal;
  claim : string;
  signature : string;
}

let cert_payload ~issuer ~subject ~claim = issuer ^ "\x00" ^ subject ^ "\x00" ^ claim

let issue reg ~issuer ~subject ~claim =
  Option.map
    (fun secret ->
      { subject; issuer; claim; signature = mac ~secret (cert_payload ~issuer ~subject ~claim) })
    (Hashtbl.find_opt reg issuer)

let verify reg cert =
  match Hashtbl.find_opt reg cert.issuer with
  | None -> false
  | Some secret ->
      String.equal
        (mac ~secret (cert_payload ~issuer:cert.issuer ~subject:cert.subject ~claim:cert.claim))
        cert.signature

let certificate_to_term c =
  Term.elem "certificate"
    [
      Term.elem "subject" [ Term.text c.subject ];
      Term.elem "issuer" [ Term.text c.issuer ];
      Term.elem "claim" [ Term.text c.claim ];
      Term.elem "signature" [ Term.text c.signature ];
    ]

let certificate_of_term t =
  let field name =
    match
      Term.find_all
        (fun s -> match Term.label s with Some l -> String.equal l name | None -> false)
        t
    with
    | Term.Elem { Term.children = [ Term.Text v ]; _ } :: _ -> Ok v
    | _ -> Error (Fmt.str "certificate term lacks field %s" name)
  in
  let ( let* ) = Result.bind in
  match t with
  | Term.Elem { Term.label = "certificate"; _ } ->
      let* subject = field "subject" in
      let* issuer = field "issuer" in
      let* claim = field "claim" in
      let* signature = field "signature" in
      Ok { subject; issuer; claim; signature }
  | _ -> Error (Fmt.str "not a certificate term: %a" Term.pp t)
