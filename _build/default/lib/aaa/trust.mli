(** Policy-based trust negotiation (Thesis 11).

    The paper's fussbaelle.biz scenario: two parties that do not trust
    each other exchange {e policies} — rule sets governing under what
    conditions an item (a credential, a resource, a payment commitment)
    will be disclosed — {e reactively}, a few rules at a time, instead of
    all at once.  The thesis claims the reactive approach
    (1) exchanges fewer rules, and (2) keeps sensitive policies private
    until the negotiation has reached the stage that unlocks them.
    Experiment E11 measures both against the eager baseline.

    Policies are genuinely meta-circular: {!policy_ruleset} renders a
    party's disclosure policy as an XChange rule set (one ECA rule per
    item), and the negotiation transcript accounts message sizes by the
    reified rule sets that would travel on the wire. *)

open Xchange_rules

type requirement = string list list
(** Disjunctive normal form over opponent credential names: the
    requirement holds when all names of {e some} disjunct have been
    disclosed.  [\[\[\]\]] (one empty disjunct) is "freely available";
    [\[\]] (no disjuncts) is "never". *)

type policy = {
  item : string;  (** the credential/resource this policy governs *)
  requires : requirement;  (** opponent credentials needed to release the item *)
  sensitive : bool;  (** the policy itself is confidential *)
  policy_unlocked_by : requirement;  (** when the policy may be {e disclosed} *)
}

type party = {
  name : string;
  credentials : string list;  (** items this party can disclose as credentials *)
  policies : policy list;  (** one per disclosable item *)
}

val policy :
  ?sensitive:bool -> ?unlocked_by:requirement -> item:string -> requirement -> policy
(** [unlocked_by] defaults to freely-disclosable. *)

val freely : requirement
val never : requirement

type strategy =
  | Reactive  (** disclose policies only for requested items, when unlocked *)
  | Eager  (** send the complete policy set in the first message *)

type step = {
  actor : string;
  sent_policies : string list;  (** items whose policies were disclosed *)
  sent_credentials : string list;
  requested : string list;  (** items newly requested from the opponent *)
}

type outcome = {
  granted : bool;  (** the requester obtained the goal *)
  rounds : int;
  policies_sent : int;
  credentials_sent : int;
  bytes : int;  (** wire size of all reified policy rule sets and credentials *)
  sensitive_policies_leaked : int;
      (** sensitive policies disclosed although never needed for the
          final proof (0 in a successful reactive run) *)
  transcript : step list;
}

val negotiate :
  ?max_rounds:int -> strategy:strategy -> requester:party -> responder:party ->
  goal:string -> unit -> outcome
(** Deterministic alternating negotiation for [goal] (an item of the
    responder).  [max_rounds] defaults to 20. *)

val policy_ruleset : party:string -> policy list -> Ruleset.t
(** The policies as an XChange rule set: for each item, a rule
    [on request{item} if disclosed(requirements) do disclose(item)].
    This is what actually travels in a policy message. *)

val policy_bytes : party:string -> policy list -> int
(** Wire size of the reified rule set ({!Xchange_lang.Meta}). *)

val ruleset_policies : Ruleset.t -> (string * requirement) list
(** Inverse reading: extract (item, requirement) pairs from a received
    policy rule set — the receiver "evaluates the customer's policy". *)
