open Xchange_query

type operation = Read | Write | Invoke
type effect = Allow | Deny

type entry = {
  principal : string;
  resource : string;
  operation : operation option;
  effect : effect;
}

type policy = entry list

let entry ?operation ~principal ~resource effect = { principal; resource; operation; effect }

let glob_matches pattern value =
  let n = String.length pattern in
  if n > 0 && pattern.[n - 1] = '*' then
    let prefix = String.sub pattern 0 (n - 1) in
    String.length value >= String.length prefix
    && String.equal (String.sub value 0 (String.length prefix)) prefix
  else String.equal pattern value

let entry_matches e ~principal ~resource ~operation =
  glob_matches e.principal principal
  && glob_matches e.resource resource
  && match e.operation with None -> true | Some op -> op = operation

let decide policy ~principal ~resource ~operation =
  match List.find_opt (fun e -> entry_matches e ~principal ~resource ~operation) policy with
  | Some e -> e.effect
  | None -> Deny

let allowed policy ~principal ~resource ~operation =
  decide policy ~principal ~resource ~operation = Allow

(* Compile the policy into a pure condition on the principal variable.
   First-match semantics become nested negations: entry i applies only
   if no earlier entry matched. *)
let guard policy ~principal_var ~resource ~operation inner =
  let pvar = Builtin.ovar principal_var in
  let principal_test pattern =
    let n = String.length pattern in
    if n > 0 && pattern.[n - 1] = '*' then
      (* prefix test via regex-free comparison: p >= prefix && p < prefix+maxchar *)
      let prefix = String.sub pattern 0 (n - 1) in
      if prefix = "" then Condition.True
      else
        Condition.And
          [
            Condition.Cmp (Builtin.Ge, pvar, Builtin.ostr prefix);
            Condition.Cmp (Builtin.Lt, pvar, Builtin.ostr (prefix ^ "\xff"));
          ]
    else Condition.Cmp (Builtin.Eq, pvar, Builtin.ostr pattern)
  in
  let relevant =
    List.filter
      (fun e ->
        glob_matches e.resource resource
        && match e.operation with None -> true | Some op -> op = operation)
      policy
  in
  let rec compile = function
    | [] -> Condition.False
    | e :: rest -> (
        let test = principal_test e.principal in
        match e.effect with
        | Allow -> Condition.Or [ test; Condition.And [ Condition.Not test; compile rest ] ]
        | Deny -> Condition.And [ Condition.Not test; compile rest ])
  in
  Condition.And [ compile relevant; inner ]

let pp_operation ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Invoke -> Fmt.string ppf "invoke"

let pp_entry ppf e =
  Fmt.pf ppf "%s %s on %s for %a"
    (match e.effect with Allow -> "allow" | Deny -> "deny")
    e.principal e.resource
    Fmt.(option ~none:(any "any operation") pp_operation)
    e.operation
