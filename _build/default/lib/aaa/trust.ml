open Xchange_data
open Xchange_query
open Xchange_rules

type requirement = string list list

type policy = {
  item : string;
  requires : requirement;
  sensitive : bool;
  policy_unlocked_by : requirement;
}

type party = { name : string; credentials : string list; policies : policy list }

let freely = [ [] ]
let never = []

let policy ?(sensitive = false) ?(unlocked_by = freely) ~item requires =
  { item; requires; sensitive; policy_unlocked_by = unlocked_by }

type strategy = Reactive | Eager

type step = {
  actor : string;
  sent_policies : string list;
  sent_credentials : string list;
  requested : string list;
}

type outcome = {
  granted : bool;
  rounds : int;
  policies_sent : int;
  credentials_sent : int;
  bytes : int;
  sensitive_policies_leaked : int;
  transcript : step list;
}

(* ---- policies as rule sets (meta-circularity) ------------------------- *)

let disclosed_doc = "/disclosed"

let cred_condition name =
  Condition.In
    ( Condition.Local disclosed_doc,
      Qterm.el "disclosed" [ Qterm.pos (Qterm.el "cred" [ Qterm.pos (Qterm.txt name) ]) ] )

let requirement_condition (req : requirement) =
  Condition.Or (List.map (fun conj -> Condition.And (List.map cred_condition conj)) req)

let policy_rule ~party p =
  let event =
    Xchange_event.Event_query.on ~label:"request"
      (Qterm.el "request" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.txt p.item) ]) ])
  in
  let disclose =
    Action.raise_event ~to_:party ~label:"disclose"
      (Construct.cel "disclose" [ Construct.cel "item" [ Construct.ctext p.item ] ])
  in
  Eca.make ~name:("disclose-" ^ p.item) ~on:event ~if_:(requirement_condition p.requires)
    disclose

let policy_ruleset ~party policies =
  Ruleset.make ~rules:(List.map (policy_rule ~party) policies) ("policy-" ^ party)

let policy_bytes ~party policies =
  Xchange_lang.Meta.size_bytes (policy_ruleset ~party policies)

let requirement_of_condition cond =
  let cred_of = function
    | Condition.In (_, Qterm.El { Qterm.children = [ Qterm.Pos (Qterm.El inner) ]; _ }) -> (
        match inner.Qterm.children with
        | [ Qterm.Pos (Qterm.Leaf (Qterm.Text_is name)) ] -> Some name
        | _ -> None)
    | _ -> None
  in
  match cond with
  | Condition.Or disjuncts ->
      Some
        (List.filter_map
           (fun d ->
             match d with
             | Condition.And conjs ->
                 let creds = List.filter_map cred_of conjs in
                 if List.length creds = List.length conjs then Some creds else None
             | _ -> Option.map (fun c -> [ c ]) (cred_of d))
           disjuncts)
  | _ -> None

let ruleset_policies rs =
  List.filter_map
    (fun (rule : Eca.t) ->
      let item =
        match rule.Eca.event with
        | Xchange_event.Event_query.Atomic
            { Xchange_event.Event_query.pattern = Qterm.El { Qterm.children = [ Qterm.Pos (Qterm.El inner) ]; _ }; _ } -> (
            match inner.Qterm.children with
            | [ Qterm.Pos (Qterm.Leaf (Qterm.Text_is item)) ] -> Some item
            | _ -> None)
        | _ -> None
      in
      match (item, rule.Eca.branches) with
      | Some item, [ b ] ->
          Option.map (fun req -> (item, req)) (requirement_of_condition b.Eca.condition)
      | _, _ -> None)
    rs.Ruleset.rules

(* ---- the negotiation ---------------------------------------------------- *)

module S = Set.Make (String)

type side = {
  party : party;
  mutable disclosed : S.t;  (** own credentials already sent *)
  mutable opp_disclosed : S.t;  (** opponent credentials received *)
  mutable opp_policies : (string * requirement) list;  (** received policies *)
  mutable requested_of_me : S.t;
  mutable my_requests : S.t;  (** items requested from the opponent *)
  mutable to_disclose : S.t;  (** own items this side intends to release *)
  mutable policies_sent : S.t;
  mutable first_turn_done : bool;
}

let side party =
  {
    party;
    disclosed = S.empty;
    opp_disclosed = S.empty;
    opp_policies = [];
    requested_of_me = S.empty;
    my_requests = S.empty;
    to_disclose = S.empty;
    policies_sent = S.empty;
    first_turn_done = false;
  }

let satisfied req creds = List.exists (fun conj -> List.for_all (fun c -> S.mem c creds) conj) req

let find_policy party item = List.find_opt (fun p -> String.equal p.item item) party.policies

(* estimated wire sizes *)
let request_bytes item =
  String.length (Xml.to_string (Term.elem "request" [ Term.elem "item" [ Term.text item ] ]))

let credential_bytes item =
  String.length (Xml.to_string (Term.elem "disclose" [ Term.elem "item" [ Term.text item ] ]))

let take_turn strategy me opponent_name =
  (* 1. policies to send *)
  let candidate_policies =
    match strategy with
    | Eager when not me.first_turn_done -> me.party.policies
    | Eager | Reactive ->
        List.filter
          (fun p ->
            S.mem p.item me.requested_of_me
            && (not (S.mem p.item me.policies_sent))
            && satisfied p.policy_unlocked_by me.opp_disclosed)
          me.party.policies
  in
  let fresh_policies =
    List.filter (fun p -> not (S.mem p.item me.policies_sent)) candidate_policies
  in
  me.policies_sent <- List.fold_left (fun s p -> S.add p.item s) me.policies_sent fresh_policies;
  me.first_turn_done <- true;
  (* 2. credentials / grants to release: requested items, and items this
     side decided to disclose to satisfy an opponent policy *)
  let release_candidates = S.union me.requested_of_me me.to_disclose in
  let releasable =
    S.filter
      (fun item ->
        (not (S.mem item me.disclosed))
        &&
        match find_policy me.party item with
        | Some p -> satisfied p.requires me.opp_disclosed
        | None -> List.mem item me.party.credentials)
      release_candidates
  in
  me.disclosed <- S.union me.disclosed releasable;
  (* 3. plan: for items to release whose requirements are unmet, want the
     opponent credentials of the first satisfiable-looking disjunct *)
  let wanted = ref S.empty in
  S.iter
    (fun item ->
      if not (S.mem item me.disclosed) then
        match find_policy me.party item with
        | Some p when p.requires <> [] ->
            let disjunct = List.hd p.requires in
            List.iter (fun c -> if not (S.mem c me.opp_disclosed) then wanted := S.add c !wanted) disjunct
        | Some _ | None -> ())
    release_candidates;
  (* ... and for opponent policies received: to obtain a wanted opponent
     item, commit to disclosing the credentials its first disjunct needs *)
  List.iter
    (fun (item, req) ->
      if S.mem item me.my_requests && (not (S.mem item me.opp_disclosed)) && req <> [] then
        let disjunct = List.hd req in
        List.iter (fun c -> me.to_disclose <- S.add c me.to_disclose) disjunct)
    me.opp_policies;
  let new_requests = S.diff !wanted me.my_requests in
  me.my_requests <- S.union me.my_requests new_requests;
  ignore opponent_name;
  (fresh_policies, S.elements releasable, S.elements new_requests)

let receive me ~policies ~credentials ~requests =
  List.iter
    (fun (p : policy) ->
      if not (List.mem_assoc p.item me.opp_policies) then
        me.opp_policies <- me.opp_policies @ [ (p.item, p.requires) ])
    policies;
  List.iter (fun c -> me.opp_disclosed <- S.add c me.opp_disclosed) credentials;
  List.iter (fun r -> me.requested_of_me <- S.add r me.requested_of_me) requests

let negotiate ?(max_rounds = 20) ~strategy ~requester ~responder ~goal () =
  let req_side = side requester and resp_side = side responder in
  req_side.my_requests <- S.singleton goal;
  resp_side.requested_of_me <- S.singleton goal;
  let transcript = ref [] in
  let policies_sent = ref 0 and credentials_sent = ref 0 and bytes = ref 0 in
  let record actor (policies, credentials, requests) =
    if policies <> [] || credentials <> [] || requests <> [] then begin
      policies_sent := !policies_sent + List.length policies;
      credentials_sent := !credentials_sent + List.length credentials;
      bytes :=
        !bytes
        + (if policies = [] then 0 else policy_bytes ~party:actor.party.name policies)
        + List.fold_left (fun acc c -> acc + credential_bytes c) 0 credentials
        + List.fold_left (fun acc r -> acc + request_bytes r) 0 requests;
      transcript :=
        {
          actor = actor.party.name;
          sent_policies = List.map (fun (p : policy) -> p.item) policies;
          sent_credentials = credentials;
          requested = requests;
        }
        :: !transcript;
      true
    end
    else false
  in
  let rec rounds i =
    if i > max_rounds then i - 1
    else begin
      (* responder speaks first: it received the initial request *)
      let resp_out = take_turn strategy resp_side requester.name in
      let progress1 = record resp_side resp_out in
      let policies, creds, reqs = resp_out in
      receive req_side ~policies ~credentials:creds ~requests:reqs;
      if S.mem goal req_side.opp_disclosed then i
      else begin
        let req_out = take_turn strategy req_side responder.name in
        let progress2 = record req_side req_out in
        let policies, creds, reqs = req_out in
        receive resp_side ~policies ~credentials:creds ~requests:reqs;
        if (not progress1) && not progress2 then i else rounds (i + 1)
      end
    end
  in
  let rounds_used = rounds 1 in
  let granted = S.mem goal req_side.opp_disclosed in
  (* a sensitive policy counts as leaked if its item was sent but the
     item itself was never released by its owner *)
  let leaked_for side_ =
    List.length
      (List.filter
         (fun p ->
           p.sensitive && S.mem p.item side_.policies_sent && not (S.mem p.item side_.disclosed))
         side_.party.policies)
  in
  {
    granted;
    rounds = rounds_used;
    policies_sent = !policies_sent;
    credentials_sent = !credentials_sent;
    bytes = !bytes;
    sensitive_policies_leaked = leaked_for req_side + leaked_for resp_side;
    transcript = List.rev !transcript;
  }
