open Xchange_data
open Xchange_query
open Xchange_rules
open Xchange_web

let default_log_doc = "/accounting/log"

let log_document () = Term.elem ~ord:Term.Unordered "accounting-log" []

let record_rule ~log_doc label =
  let event = Xchange_event.Event_query.on ~label (Qterm.var "Payload") in
  let record =
    Action.insert ~doc:log_doc
      (Construct.cel "use"
         [
           Construct.cel "service" [ Construct.ctext label ];
           Construct.cel "size" [ Construct.C_operand (Builtin.O_size (Builtin.ovar "Payload")) ];
         ])
  in
  Eca.make ~name:("account-" ^ label) ~on:event record

let ruleset ?(log_doc = default_log_doc) ?(name = "accounting") ~service_labels () =
  Ruleset.make ~rules:(List.map (record_rule ~log_doc) service_labels) name

type usage = { service : string; count : int }

let summary store ?(log_doc = default_log_doc) () =
  match Store.doc store log_doc with
  | None -> []
  | Some log ->
      let labels =
        Term.find_all
          (fun t -> match Term.label t with Some "use" -> true | _ -> false)
          log
        |> List.filter_map (fun use ->
               Term.find_all
                 (fun t -> match Term.label t with Some "service" -> true | _ -> false)
                 use
               |> function
               | s :: _ -> Option.bind (List.nth_opt (Term.children s) 0) Term.as_text
               | [] -> None)
      in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun l -> Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
        labels;
      Hashtbl.fold (fun service count acc -> { service; count } :: acc) tbl []
      |> List.sort (fun a b -> String.compare a.service b.service)

let total store ?log_doc () =
  List.fold_left (fun acc u -> acc + u.count) 0 (summary store ?log_doc ())

let bill ~rates usages =
  List.fold_left
    (fun acc u ->
      match List.assoc_opt u.service rates with
      | Some rate -> acc +. (rate *. float_of_int u.count)
      | None -> acc)
    0. usages
