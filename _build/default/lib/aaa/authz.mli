(** Authorization (Thesis 12): "control access to sensitive information
    or services".

    First-match access-control policies over (principal, resource,
    operation) with [*]-suffix glob patterns; default deny.  The paper
    notes authorization "can be treated as a simple condition in ECA
    rules" — {!guard} turns a decision into exactly that, so service
    rule sets can wrap their branches in an access check. *)

type operation = Read | Write | Invoke

type effect = Allow | Deny

type entry = {
  principal : string;  (** exact name or prefix glob like ["customer-*"] *)
  resource : string;  (** path or prefix glob like ["/orders/*"] *)
  operation : operation option;  (** [None] matches every operation *)
  effect : effect;
}

type policy = entry list

val entry : ?operation:operation -> principal:string -> resource:string -> effect -> entry

val decide : policy -> principal:string -> resource:string -> operation:operation -> effect
(** First matching entry wins; no match denies. *)

val allowed : policy -> principal:string -> resource:string -> operation:operation -> bool

val guard :
  policy ->
  principal_var:string ->
  resource:string ->
  operation:operation ->
  Xchange_query.Condition.t ->
  Xchange_query.Condition.t
(** [guard p ~principal_var ~resource ~operation c] is a condition that
    holds iff [c] holds {e and} the principal bound to [principal_var]
    may perform the operation.  Implemented as a condition that tests
    the decision through a comparison on the bound variable — the
    authorization check becomes part of the rule's condition, as the
    paper suggests.  Because conditions are data (not closures), the
    policy is compiled into a disjunction of equality/prefix tests. *)

val pp_entry : entry Fmt.t
