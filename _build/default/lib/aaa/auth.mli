(** Authentication (Thesis 12): "establish that users of the service
    really are who they claim to be".

    Shared-secret tokens and issuer-signed certificates over a toy MAC
    (an FNV-1a keyed hash — {e not} cryptography; the simulation needs
    unforgeability only against honest-but-curious test code, and the
    paper's point is language support, not crypto strength). *)

open Xchange_data

type principal = string

type registry
(** Maps principals to their shared secrets. *)

val create : unit -> registry
val register : registry -> principal -> secret:string -> unit
val known : registry -> principal -> bool

val token : registry -> principal -> message:string -> string option
(** MAC of the message under the principal's secret; [None] for unknown
    principals. *)

val authenticate : registry -> principal -> message:string -> token:string -> bool

(** {1 Certificates} *)

type certificate = {
  subject : principal;
  issuer : principal;
  claim : string;  (** e.g. ["bbb-member"] *)
  signature : string;
}

val issue : registry -> issuer:principal -> subject:principal -> claim:string -> certificate option
(** Signed with the issuer's secret; [None] if the issuer is unknown. *)

val verify : registry -> certificate -> bool
(** Valid iff the registry knows the issuer and the signature checks. *)

val certificate_to_term : certificate -> Term.t
val certificate_of_term : Term.t -> (certificate, string) result
