open Xchange_query
open Xchange_event

type compiled = {
  qualified : string;
  rule : Eca.t;
  scope : Ruleset.scope;
  engine : Incremental.t;
  stats : Eca.stats;
  labels : string list option;
      (** event labels the rule's query can react to; [None] = any
          (some atomic sub-query has no label constraint) *)
  needs_clock : bool;  (** the query contains absence operators *)
}

type t = {
  root : Ruleset.t;
  compiled : compiled list;
  derivation : Deductive_event.t;
  index : bool;
  mutable seen : int;
}

let rule_labels rule =
  let atoms = Xchange_event.Event_query.atoms rule.Eca.event in
  let rec collect acc = function
    | [] -> Some (List.sort_uniq String.compare acc)
    | (a : Xchange_event.Event_query.atomic) :: rest -> (
        match a.Xchange_event.Event_query.label with
        | None -> None
        | Some l -> collect (l :: acc) rest)
  in
  collect [] atoms

let ( let* ) = Result.bind

let create ?horizon ?(index = true) root =
  let* () = Ruleset.validate root in
  let* compiled =
    List.fold_left
      (fun acc (qualified, scope, rule) ->
        let* acc = acc in
        match
          Incremental.create ~consume:rule.Eca.consume ~selection:rule.Eca.selection ?horizon
            rule.Eca.event
        with
        | Error e -> Error (Fmt.str "rule %s: %s" qualified e)
        | Ok engine ->
            Ok
              ({
                 qualified;
                 rule;
                 scope;
                 engine;
                 stats = Eca.fresh_stats ();
                 labels = rule_labels rule;
                 needs_clock = Event_query.has_timers rule.Eca.event;
               }
              :: acc))
      (Ok []) (Ruleset.scoped_rules root)
  in
  (* every scope's visible views must be stratified *)
  let* () =
    List.fold_left
      (fun acc (qualified, scope, _) ->
        let* () = acc in
        match Deductive.check_stratified (Ruleset.views_in_scope scope) with
        | Ok () -> Ok ()
        | Error e -> Error (Fmt.str "rule %s: %s" qualified e))
      (Ok ()) (Ruleset.scoped_rules root)
  in
  let* derivation = Deductive_event.compile ?horizon (Ruleset.all_event_rules root) in
  Ok { root; compiled = List.rev compiled; derivation; index; seen = 0 }

let create_exn ?horizon ?index root =
  match create ?horizon ?index root with
  | Ok t -> t
  | Error e -> invalid_arg ("Engine.create: " ^ e)

type outcome = {
  firings : Eca.firing list;
  derived_events : Event.t list;
  errors : (string * string) list;
}

let empty_outcome = { firings = []; derived_events = []; errors = [] }

let fire_detections ~env ~ops cr detections acc =
  List.fold_left
    (fun acc detection ->
      let scoped_env = Deductive.extend_env env (Ruleset.views_in_scope cr.scope) in
      let procs name = Ruleset.lookup_procedure cr.scope name in
      let results =
        Eca.fire ~stats:cr.stats ~env:scoped_env ~ops ~procs cr.rule detection
      in
      List.fold_left
        (fun acc result ->
          match result with
          | Ok firings -> { acc with firings = acc.firings @ firings }
          | Error e -> { acc with errors = acc.errors @ [ (cr.qualified, e) ] })
        acc results)
    acc detections

let handle_event t ~env ~ops event =
  t.seen <- t.seen + 1;
  if Event.expired event (ops.Action.now ()) then empty_outcome
  else begin
    let derived = Deductive_event.feed t.derivation event in
    let all_events = event :: derived in
    let acc =
      List.fold_left
        (fun acc cr ->
          List.fold_left
            (fun acc ev ->
              let relevant =
                (not t.index)
                ||
                match cr.labels with
                | None -> true
                | Some labels -> List.mem ev.Event.label labels
              in
              if relevant then
                fire_detections ~env ~ops cr (Incremental.feed cr.engine ev) acc
              else if cr.needs_clock then
                (* skipped rules still observe time: resolve absence
                   deadlines strictly before the event, exactly as a
                   non-matching feed would *)
                fire_detections ~env ~ops cr
                  (Incremental.advance_to cr.engine (Event.time ev - 1))
                  acc
              else acc)
            acc all_events)
        { empty_outcome with derived_events = derived }
        t.compiled
    in
    acc
  end

let advance t ~env ~ops time =
  let derived = Deductive_event.advance_to t.derivation time in
  let acc =
    List.fold_left
      (fun acc cr ->
        let detections =
          Incremental.advance_to cr.engine time
          @ List.concat_map (fun ev -> Incremental.feed cr.engine ev) derived
        in
        fire_detections ~env ~ops cr detections acc)
      { empty_outcome with derived_events = derived }
      t.compiled
  in
  acc

let load_ruleset t incoming =
  let merged = { t.root with Ruleset.children = t.root.Ruleset.children @ [ incoming ] } in
  create merged

let ruleset t = t.root
let rule_names t = List.map (fun cr -> cr.qualified) t.compiled
let stats t = List.map (fun cr -> (cr.qualified, cr.stats)) t.compiled

let total_condition_evaluations t =
  List.fold_left (fun acc cr -> acc + cr.stats.Eca.condition_evaluations) 0 t.compiled

let live_instances t =
  List.fold_left (fun acc cr -> acc + Incremental.live_instances cr.engine) 0 t.compiled

let events_seen t = t.seen
