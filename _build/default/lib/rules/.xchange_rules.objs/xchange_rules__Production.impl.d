lib/rules/production.ml: Action Condition List Subst Xchange_query
