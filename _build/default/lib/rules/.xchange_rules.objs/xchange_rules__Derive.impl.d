lib/rules/derive.ml: Condition Eca Event_query List Production Qterm Result String Xchange_event Xchange_query
