lib/rules/ruleset.ml: Action Deductive Eca Fmt List Option String Xchange_event Xchange_query
