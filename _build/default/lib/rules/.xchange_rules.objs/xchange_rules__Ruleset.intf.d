lib/rules/ruleset.mli: Action Deductive Eca Xchange_event Xchange_query
