lib/rules/engine.mli: Action Clock Condition Eca Event Ruleset Xchange_event Xchange_query
