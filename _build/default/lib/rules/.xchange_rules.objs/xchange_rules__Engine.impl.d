lib/rules/engine.ml: Action Deductive Deductive_event Eca Event Event_query Fmt Incremental List Result Ruleset String Xchange_event Xchange_query
