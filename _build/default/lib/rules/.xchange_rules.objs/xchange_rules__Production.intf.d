lib/rules/production.mli: Action Condition Subst Xchange_query
