lib/rules/eca.mli: Action Condition Event_query Fmt Incremental Instance Subst Xchange_event Xchange_query
