lib/rules/derive.mli: Action Condition Eca Production Xchange_query
