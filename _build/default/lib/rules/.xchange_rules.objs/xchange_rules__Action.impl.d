lib/rules/action.ml: Buffer Builtin Clock Condition Construct Fmt List Option Path Qterm Rdf Result String Subst Term Xchange_data Xchange_event Xchange_query
