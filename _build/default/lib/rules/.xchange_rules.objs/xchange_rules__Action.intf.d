lib/rules/action.mli: Builtin Clock Condition Construct Fmt Path Qterm Rdf Subst Term Xchange_data Xchange_event Xchange_query
