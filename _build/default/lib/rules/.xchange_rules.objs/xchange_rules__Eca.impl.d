lib/rules/eca.ml: Action Condition Event_query Fmt Incremental Instance List Subst Xchange_event Xchange_query
