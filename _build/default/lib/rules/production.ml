open Xchange_query

type rule = { name : string; condition : Condition.t; action : Action.t }

type stats = {
  mutable cycles : int;
  mutable condition_evaluations : int;
  mutable firings : int;
  mutable errors : int;
}

type state = { rule : rule; mutable previous : Subst.set }
type t = { rules : state list; s : stats }

let create rules =
  {
    rules = List.map (fun rule -> { rule; previous = [] }) rules;
    s = { cycles = 0; condition_evaluations = 0; firings = 0; errors = 0 };
  }

let stats t = t.s

let poll ~env ~ops ~procs t =
  t.s.cycles <- t.s.cycles + 1;
  List.concat_map
    (fun st ->
      t.s.condition_evaluations <- t.s.condition_evaluations + 1;
      let answers = Condition.eval env Subst.empty st.rule.condition in
      let fresh =
        List.filter (fun a -> not (List.exists (Subst.equal a) st.previous)) answers
      in
      st.previous <- answers;
      List.filter_map
        (fun subst ->
          match Action.exec ~env ~ops ~procs ~subst ~answers st.rule.action with
          | Ok _ ->
              t.s.firings <- t.s.firings + 1;
              Some (st.rule.name, subst)
          | Error _ ->
              t.s.errors <- t.s.errors + 1;
              None)
        fresh)
    t.rules
