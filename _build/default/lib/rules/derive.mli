(** Deriving ECA rules from production rules and integrity constraints
    (Thesis 1).

    "In situations where production rules are more appropriate, it is
    often possible to derive ECA rules automatically or
    semi-automatically from production rules and provide an efficient
    implementation mechanism this way", and "methods for [...]
    transformation into other types of rules (e.g., derive ECA rules
    from integrity constraints) have been well-studied".

    The derivations here are the semi-automatic kind: the caller names
    the update events after which the condition can have changed
    (typically the labels of the events whose actions update the
    condition's documents); the derived ECA rule re-checks the condition
    on exactly those events instead of polling. *)

open Xchange_query

val eca_of_production :
  update_labels:string list -> Production.rule -> (Eca.t, string) result
(** [on (any of the update events) if C do A].  Note footnote 4 of the
    paper: this ECA rule fires once per answer per triggering event; it
    is equivalent to the production rule only when the action is
    idempotent (tested in the suite with both an idempotent and a
    non-idempotent action).  Fails on an empty label list. *)

val eca_of_production_auto : Production.rule -> (Eca.t, string) result
(** Fully automatic variant: the triggering events are derived from the
    condition itself — the rule fires on the [update] events of exactly
    the local documents and graphs the condition reads ("derive ECA
    rules automatically ... from production rules").  Fails when the
    condition reads no local resources (nothing could ever re-trigger
    it). *)

val condition_docs : Condition.t -> string list
(** The local document/graph names a condition reads (through [Not] and
    nested connectives); views contribute nothing (their base documents
    must be listed by the caller or reached via [eca_of_production]). *)

val eca_of_constraint :
  name:string ->
  update_labels:string list ->
  violated:Condition.t ->
  repair:Action.t ->
  (Eca.t, string) result
(** An integrity-maintenance rule: after any of the update events, if
    the constraint is violated, run the repair action. *)
