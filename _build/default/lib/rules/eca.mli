(** Event-Condition-Action rules (Theses 1, 9).

    The rule forms of the paper:
    - ECA — ["on event if condition do action"]: one branch;
    - ECAA — [on E if C do A1 else A2]: one branch plus an alternative
      action fired when the condition does {e not} hold, evaluating the
      condition only once (Thesis 9);
    - ECnAn — several condition/action pairs; the {e first} branch whose
      condition holds fires (Knolmayer et al.).

    Per detection of the event query, the branches are tried in order;
    the first branch with a non-empty answer set executes its action
    {b once per answer}.  If no branch succeeds and an [else_action] is
    present, it executes once with the detection's own bindings. *)

open Xchange_query
open Xchange_event

type branch = { condition : Condition.t; action : Action.t }

type t = {
  name : string;
  event : Event_query.t;
  branches : branch list;
  else_action : Action.t option;
  consume : bool;  (** use up constituent events on firing (Thesis 5) *)
  selection : Incremental.selection;
}

val make :
  ?consume:bool ->
  ?selection:Incremental.selection ->
  ?else_:Action.t ->
  name:string ->
  on:Event_query.t ->
  ?if_:Condition.t ->
  Action.t ->
  t
(** An ECA rule (one branch; [if_] defaults to [Condition.True]); add
    [?else_] for ECAA. *)

val make_ecnan :
  ?consume:bool ->
  ?selection:Incremental.selection ->
  ?else_:Action.t ->
  name:string ->
  on:Event_query.t ->
  branch list ->
  t

type firing = {
  rule : string;
  branch : int option;  (** [None] when the else-action fired *)
  bindings : Subst.t;
  outcome : Action.outcome;
}

type stats = {
  mutable detections : int;
  mutable condition_evaluations : int;
  mutable firings : int;
  mutable errors : int;
}

val fresh_stats : unit -> stats

val fire :
  ?stats:stats ->
  env:Condition.env ->
  ops:Action.ops ->
  procs:(string -> Action.proc option) ->
  t ->
  Instance.t ->
  (firing list, string) result list
(** Processes one detection of the rule's event query: branch selection,
    condition evaluation (counted in [stats]) and action execution. *)

val pp : t Fmt.t
