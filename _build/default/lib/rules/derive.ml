open Xchange_query
open Xchange_event

let ( let* ) = Result.bind

let any_of_labels labels =
  match labels with
  | [] -> Error "derive: at least one update event label is required"
  | [ l ] -> Ok (Event_query.on ~label:l (Qterm.var "_update"))
  | ls ->
      Ok
        (Event_query.disj
           (List.map (fun l -> Event_query.on ~label:l (Qterm.var "_update")) ls))


let rec condition_docs cond =
  match cond with
  | Condition.In (Condition.Local d, _) | Condition.In_rdf (Condition.Local d, _) -> [ d ]
  | Condition.In (_, _) | Condition.In_rdf (_, _) -> []
  | Condition.And cs | Condition.Or cs -> List.concat_map condition_docs cs
  | Condition.Not c -> condition_docs c
  | Condition.True | Condition.False | Condition.Cmp _ -> []

let condition_docs c = List.sort_uniq String.compare (condition_docs c)

let update_trigger docs =
  match docs with
  | [] -> Error "derive: the condition reads no local resources"
  | ds ->
      let atom d =
        Event_query.on ~label:"update"
          (Qterm.el "update" ~attrs:[ ("doc", Qterm.A_is d) ] [])
      in
      Ok (match ds with [ d ] -> atom d | ds -> Event_query.disj (List.map atom ds))

let eca_of_production_auto (rule : Production.rule) =
  let* trigger = update_trigger (condition_docs rule.Production.condition) in
  Ok
    (Eca.make ~name:(rule.Production.name ^ ":as-eca") ~on:trigger
       ~if_:rule.Production.condition rule.Production.action)

let eca_of_production ~update_labels (rule : Production.rule) =
  let* trigger = any_of_labels update_labels in
  Ok
    (Eca.make ~name:(rule.Production.name ^ ":as-eca") ~on:trigger
       ~if_:rule.Production.condition rule.Production.action)

let eca_of_constraint ~name ~update_labels ~violated ~repair =
  let* trigger = any_of_labels update_labels in
  Ok (Eca.make ~name ~on:trigger ~if_:violated repair)
