(** Construct terms: building new data from query answers.

    The output half of the query language (Thesis 7's "newly constructed
    data" notion of answers, and Thesis 8's update payloads): a construct
    term is a term with variables, instantiated with the bindings a
    query produced.

    [C_all] is Xcerpt's grouping construct: inside a parent's children
    list it expands to one instance per distinct projection of the whole
    binding {e set} onto its free variables; [C_agg] aggregates a
    variable over the binding set. *)

open Xchange_data

type agg = Count | Sum | Avg | Min | Max

type t =
  | C_var of string
  | C_text of string
  | C_num of float
  | C_bool of bool
  | C_operand of Builtin.operand  (** computed value *)
  | C_el of elem_c
  | C_all of t  (** one instance per binding of the free variables *)
  | C_agg of agg * string  (** aggregate of a variable over the binding set *)

and elem_c = {
  label : [ `L of string | `L_var of string ];
  attrs : (string * [ `A of string | `A_var of string ]) list;
  ord : Term.ordering;
  children : t list;
}

val cel :
  ?ord:Term.ordering ->
  ?attrs:(string * [ `A of string | `A_var of string ]) list ->
  string ->
  t list ->
  t

val cvar : string -> t
val ctext : string -> t

val free_vars : t -> string list

val instantiate : t -> Subst.t -> Subst.set -> (Term.t, string) result
(** [instantiate c subst set] builds a term: plain variables come from
    [subst]; [C_all] and [C_agg] consult the full answer set [set].
    Errors on unbound variables, on [C_all]/[C_agg] in non-children
    position, and on non-numeric aggregation input. *)

val instantiate_all : t -> Subst.set -> (Term.t list, string) result
(** One instance per distinct projection of the set onto the free
    variables of [c] (the implicit top-level grouping of rule heads).
    An empty answer set yields []. *)

val pp : t Fmt.t
