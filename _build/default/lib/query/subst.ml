open Xchange_data

module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty
let domain s = List.map fst (M.bindings s)
let find v s = M.find_opt v s

let add v term s =
  match M.find_opt v s with
  | Some existing -> if Term.equal existing term then Some s else None
  | None -> Some (M.add v term s)

let merge a b =
  let exception Conflict in
  try
    Some
      (M.union
         (fun _ x y -> if Term.equal x y then Some x else raise Conflict)
         a b)
  with Conflict -> None

let of_list l =
  List.fold_left
    (fun acc (v, t) -> Option.bind acc (add v t))
    (Some empty) l

let to_list s = M.bindings s
let restrict vars s = M.filter (fun v _ -> List.mem v vars) s
let compare a b = M.compare Term.compare a b
let equal a b = compare a b = 0

let pp ppf s =
  let pp_binding ppf (v, t) = Fmt.pf ppf "%s=%a" v Term.pp t in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp_binding) (to_list s)

type set = t list

let set_empty = []
let set_single s = [ s ]
let dedup set = List.sort_uniq compare set
let union a b = dedup (a @ b)

let join a b =
  List.concat_map (fun sa -> List.filter_map (fun sb -> merge sa sb) b) a |> dedup

let pp_set ppf set = Fmt.pf ppf "[%a]" Fmt.(list ~sep:semi pp) set
