lib/query/deductive.mli: Condition Construct Hashtbl Term Xchange_data
