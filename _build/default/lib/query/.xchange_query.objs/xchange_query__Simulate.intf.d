lib/query/simulate.mli: Qterm Subst Term Xchange_data
