lib/query/qterm.ml: Fmt List Re String Term Xchange_data
