lib/query/qterm.mli: Fmt Term Xchange_data
