lib/query/builtin.ml: Float Fmt Option Result String Subst Term Xchange_data
