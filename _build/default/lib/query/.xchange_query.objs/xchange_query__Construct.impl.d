lib/query/construct.ml: Builtin Float Fmt List Result String Subst Term Xchange_data
