lib/query/subst.ml: Fmt List Map Option String Term Xchange_data
