lib/query/builtin.mli: Fmt Subst Term Xchange_data
