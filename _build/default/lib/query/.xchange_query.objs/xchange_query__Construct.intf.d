lib/query/construct.mli: Builtin Fmt Subst Term Xchange_data
