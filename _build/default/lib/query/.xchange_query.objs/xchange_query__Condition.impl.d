lib/query/condition.ml: Builtin Fmt List Option Qterm Rdf Simulate String Subst Term Xchange_data
