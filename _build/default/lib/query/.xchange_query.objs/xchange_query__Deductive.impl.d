lib/query/deductive.ml: Condition Construct Fmt Hashtbl List Option Set String Subst Term Xchange_data
