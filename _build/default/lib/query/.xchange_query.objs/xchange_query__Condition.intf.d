lib/query/condition.mli: Builtin Fmt Qterm Rdf Subst Term Xchange_data
