lib/query/simulate.ml: Bool Float Hashtbl List Qterm Re String Subst Term Xchange_data
