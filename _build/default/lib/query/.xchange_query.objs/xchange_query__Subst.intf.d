lib/query/subst.mli: Fmt Term Xchange_data
