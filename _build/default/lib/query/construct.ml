open Xchange_data

type agg = Count | Sum | Avg | Min | Max

type t =
  | C_var of string
  | C_text of string
  | C_num of float
  | C_bool of bool
  | C_operand of Builtin.operand
  | C_el of elem_c
  | C_all of t
  | C_agg of agg * string

and elem_c = {
  label : [ `L of string | `L_var of string ];
  attrs : (string * [ `A of string | `A_var of string ]) list;
  ord : Term.ordering;
  children : t list;
}

let cel ?(ord = Term.Ordered) ?(attrs = []) label children =
  C_el { label = `L label; attrs; ord; children }

let cvar v = C_var v
let ctext s = C_text s

let rec free_vars = function
  | C_var v -> [ v ]
  | C_text _ | C_num _ | C_bool _ -> []
  | C_operand op -> Builtin.operand_vars op
  | C_el e ->
      let lv = match e.label with `L_var v -> [ v ] | `L _ -> [] in
      let avs =
        List.filter_map (fun (_, a) -> match a with `A_var v -> Some v | `A _ -> None) e.attrs
      in
      lv @ avs @ List.concat_map free_vars e.children
  | C_all c -> free_vars c
  | C_agg (_, v) -> [ v ]

let free_vars c = List.sort_uniq String.compare (free_vars c)

let ( let* ) = Result.bind

let rec results_map f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = results_map f rest in
      Ok (y :: ys)

let lookup subst v =
  match Subst.find v subst with
  | Some t -> Ok t
  | None -> Error (Fmt.str "construct: unbound variable %s" v)

let text_of subst v =
  let* t = lookup subst v in
  match Term.as_text t with
  | Some s -> Ok s
  | None -> Error (Fmt.str "construct: variable %s is not text-valued" v)

let aggregate agg vals =
  match agg with
  | Count -> Ok (Term.int (List.length vals))
  | Sum | Avg | Min | Max -> (
      let* nums =
        results_map
          (fun t ->
            match Term.as_num t with
            | Some f -> Ok f
            | None -> Error (Fmt.str "aggregate over non-number %a" Term.pp t))
          vals
      in
      match (agg, nums) with
      | _, [] -> Error "aggregate over empty answer set"
      | Sum, _ -> Ok (Term.num (List.fold_left ( +. ) 0. nums))
      | Avg, _ ->
          Ok (Term.num (List.fold_left ( +. ) 0. nums /. float_of_int (List.length nums)))
      | Min, n :: rest -> Ok (Term.num (List.fold_left Float.min n rest))
      | Max, n :: rest -> Ok (Term.num (List.fold_left Float.max n rest))
      | Count, _ -> assert false)

let agg_values set v =
  List.filter_map (fun s -> Subst.find v s) set
  |> List.sort_uniq Term.compare

let rec instantiate c subst set =
  match c with
  | C_var v -> lookup subst v
  | C_text s -> Ok (Term.text s)
  | C_num f -> Ok (Term.num f)
  | C_bool b -> Ok (Term.bool_ b)
  | C_operand op -> Builtin.eval subst op
  | C_agg (agg, v) -> aggregate agg (agg_values set v)
  | C_all _ -> Error "construct: 'all' is only allowed in children position"
  | C_el e ->
      let* label =
        match e.label with `L s -> Ok s | `L_var v -> text_of subst v
      in
      let* attrs =
        results_map
          (fun (k, a) ->
            match a with
            | `A s -> Ok (k, s)
            | `A_var v ->
                let* s = text_of subst v in
                Ok (k, s))
          e.attrs
      in
      let* children = instantiate_children e.children subst set in
      Ok (Term.elem ~ord:e.ord ~attrs label children)

and instantiate_children cs subst set =
  let* groups =
    results_map
      (fun c ->
        match c with
        | C_all inner -> expand_all inner subst set
        | c ->
            let* t = instantiate c subst set in
            Ok [ t ])
      cs
  in
  Ok (List.concat groups)

and expand_all inner subst set =
  let fvs = free_vars inner in
  (* group the answer set by its projection on the free variables,
     compatible with the enclosing binding *)
  let compatible = List.filter_map (fun s -> Subst.merge subst s) set in
  let projections = Subst.dedup (List.map (Subst.restrict fvs) compatible) in
  results_map
    (fun proj ->
      match Subst.merge subst proj with
      | Some s -> instantiate inner s set
      | None -> Error "construct: inconsistent grouping projection")
    projections

let instantiate_all c set =
  let fvs = free_vars c in
  let projections = Subst.dedup (List.map (Subst.restrict fvs) set) in
  results_map (fun proj -> instantiate c proj set) projections

let pp_agg ppf a =
  Fmt.string ppf
    (match a with Count -> "count" | Sum -> "sum" | Avg -> "avg" | Min -> "min" | Max -> "max")

let rec pp ppf = function
  | C_var v -> Fmt.pf ppf "$%s" v
  | C_text s -> Fmt.pf ppf "%S" s
  | C_num f -> Fmt.float ppf f
  | C_bool b -> Fmt.bool ppf b
  | C_operand op -> Builtin.pp_operand ppf op
  | C_all c -> Fmt.pf ppf "all %a" pp c
  | C_agg (a, v) -> Fmt.pf ppf "%a($%s)" pp_agg a v
  | C_el e ->
      let o, c = match e.ord with Term.Ordered -> ("[", "]") | Term.Unordered -> ("{", "}") in
      let pp_label ppf = function
        | `L s -> Fmt.string ppf s
        | `L_var v -> Fmt.pf ppf "$%s~" v
      in
      let pp_attr ppf (k, a) =
        match a with
        | `A s -> Fmt.pf ppf "@%s=%S" k s
        | `A_var v -> Fmt.pf ppf "@%s=$%s" k v
      in
      let items =
        List.map (Fmt.str "%a" pp_attr) e.attrs @ List.map (Fmt.str "%a" pp) e.children
      in
      Fmt.pf ppf "@[<hv 2>%a%s%a%s@]" pp_label e.label o
        Fmt.(list ~sep:comma string)
        items c
