open Xchange_data

type operand =
  | O_var of string
  | O_const of Term.t
  | O_add of operand * operand
  | O_sub of operand * operand
  | O_mul of operand * operand
  | O_div of operand * operand
  | O_neg of operand
  | O_concat of operand * operand
  | O_size of operand
  | O_iri of operand

type cmp = Eq | Neq | Lt | Le | Gt | Ge

let ovar v = O_var v
let onum f = O_const (Term.num f)
let ostr s = O_const (Term.text s)

let ( let* ) = Result.bind

let rec eval subst op =
  match op with
  | O_var v -> (
      match Subst.find v subst with
      | Some t -> Ok t
      | None -> Error (Fmt.str "unbound variable %s" v))
  | O_const t -> Ok t
  | O_add (a, b) -> arith subst "+" ( +. ) a b
  | O_sub (a, b) -> arith subst "-" ( -. ) a b
  | O_mul (a, b) -> arith subst "*" ( *. ) a b
  | O_div (a, b) ->
      let* bv = numeric subst b in
      if Float.equal bv 0. then Error "division by zero"
      else
        let* av = numeric subst a in
        Ok (Term.num (av /. bv))
  | O_neg a ->
      let* av = numeric subst a in
      Ok (Term.num (-.av))
  | O_concat (a, b) ->
      let* at = eval subst a in
      let* bt = eval subst b in
      let to_s t = Option.value ~default:(Term.to_string t) (Term.as_text t) in
      Ok (Term.text (to_s at ^ to_s bt))
  | O_size a ->
      let* at = eval subst a in
      Ok (Term.int (Term.size at))
  | O_iri a -> (
      let* at = eval subst a in
      match Term.as_text at with
      | Some s -> Ok (Term.elem "iri" [ Term.text s ])
      | None -> Error (Fmt.str "iri() needs a textual value, got %a" Term.pp at))

and numeric subst op =
  let* t = eval subst op in
  match Term.as_num t with
  | Some f -> Ok f
  | None -> Error (Fmt.str "not a number: %a" Term.pp t)

and arith subst _name f a b =
  let* av = numeric subst a in
  let* bv = numeric subst b in
  Ok (Term.num (f av bv))

let test subst cmp a b =
  let* at = eval subst a in
  let* bt = eval subst b in
  match cmp with
  | Eq -> Ok (Term.equal at bt)
  | Neq -> Ok (not (Term.equal at bt))
  | Lt | Le | Gt | Ge -> (
      let check c = match cmp with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | Eq | Neq -> assert false
      in
      match (Term.as_num at, Term.as_num bt) with
      | Some x, Some y -> Ok (check (Float.compare x y))
      | _, _ -> (
          match (Term.as_text at, Term.as_text bt) with
          | Some x, Some y -> Ok (check (String.compare x y))
          | _, _ ->
              Error
                (Fmt.str "cannot order %a and %a" Term.pp at Term.pp bt)))

let rec operand_vars = function
  | O_var v -> [ v ]
  | O_const _ -> []
  | O_add (a, b) | O_sub (a, b) | O_mul (a, b) | O_div (a, b) | O_concat (a, b) ->
      operand_vars a @ operand_vars b
  | O_neg a | O_size a | O_iri a -> operand_vars a

let rec pp_operand ppf = function
  | O_var v -> Fmt.pf ppf "$%s" v
  | O_const t -> Term.pp ppf t
  | O_add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_operand a pp_operand b
  | O_sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_operand a pp_operand b
  | O_mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_operand a pp_operand b
  | O_div (a, b) -> Fmt.pf ppf "(%a / %a)" pp_operand a pp_operand b
  | O_neg a -> Fmt.pf ppf "(- %a)" pp_operand a
  | O_concat (a, b) -> Fmt.pf ppf "(%a ^ %a)" pp_operand a pp_operand b
  | O_size a -> Fmt.pf ppf "size(%a)" pp_operand a
  | O_iri a -> Fmt.pf ppf "iri(%a)" pp_operand a

let pp_cmp ppf c =
  Fmt.string ppf
    (match c with Eq -> "=" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")
