(** Deductive rules (views) over Web data — Thesis 9.

    A view is a named virtual resource defined by a construct-term head
    and a condition body ("like views in relational databases").  Views
    may reference other views, including recursively; materialisation is
    a semi-naive fixpoint over the produced term instances.

    The event half of the system reuses this module with recursion
    {e rejected} (see {!Xchange_event.Deductive_event}): Thesis 9 allows
    a reactive language to "be more restrictive about rules for events
    for efficiency reasons". *)

open Xchange_data

type rule = {
  view : string;  (** name of the view this rule contributes to *)
  head : Construct.t;
  body : Condition.t;
}

type program = rule list

val rule : view:string -> head:Construct.t -> body:Condition.t -> rule

val dependencies : program -> (string * string list) list
(** For each view name, the view names its bodies reference. *)

val recursive_views : program -> string list
(** View names involved in a dependency cycle (including self-reference). *)

val check_stratified : program -> (unit, string) result
(** Recursion through [Not] is unsound under fixpoint materialisation
    (the classic unstratified-negation problem): this rejects programs
    in which some view depends on itself through at least one negated
    view reference.  Positive recursion remains allowed. *)

val reachable : program -> string list -> string list
(** View names transitively needed to answer queries against the
    given roots, sorted. *)

val materialize : ?roots:string list -> Condition.env -> program -> (string, Term.t list) Hashtbl.t
(** Fixpoint materialisation.  Each view maps to the duplicate-free
    list of its head instances; construct errors in a head (e.g. a head
    variable unbound by the body) skip that instance.

    With [roots], evaluation is {e goal-directed}: only the rules of
    views reachable from the roots run — the backward-chaining answer
    to Thesis 7's "what evaluation methods are possible" (ablation A3
    measures the effect on programs with many irrelevant views). *)

val extend_env : Condition.env -> program -> Condition.env
(** An environment in which [View v] resolves to the materialised
    instances of [v].  Each [View] fetch materialises goal-directed
    from [v] against the base environment, so updates to base documents
    are seen and unrelated views are never computed. *)
