(** Built-in operands, arithmetic, and comparisons over bindings.

    Conditions and actions compute with the values delivered by event
    and condition queries (Thesis 7: answers parameterize further
    queries and the action). *)

open Xchange_data

type operand =
  | O_var of string  (** value of a bound variable *)
  | O_const of Term.t
  | O_add of operand * operand
  | O_sub of operand * operand
  | O_mul of operand * operand
  | O_div of operand * operand
  | O_neg of operand
  | O_concat of operand * operand  (** string concatenation *)
  | O_size of operand  (** node count of a term *)
  | O_iri of operand  (** wrap a textual value as an RDF IRI node term *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

val ovar : string -> operand
val onum : float -> operand
val ostr : string -> operand

val eval : Subst.t -> operand -> (Term.t, string) result
(** Arithmetic coerces through {!Term.as_num}; unbound variables and
    non-numeric arguments of arithmetic are errors. *)

val test : Subst.t -> cmp -> operand -> operand -> (bool, string) result
(** [Eq]/[Neq] compare extensionally when either side is an element;
    otherwise comparison is numeric when both sides coerce to numbers,
    and lexicographic on text otherwise. *)

val operand_vars : operand -> string list

val pp_operand : operand Fmt.t
val pp_cmp : cmp Fmt.t
