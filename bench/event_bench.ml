(* Composite-event hot-path benchmarks (HACKING.md "Event-engine
   internals"): hash-partitioned joins and time-ordered instance stores
   vs the naive nested-loop reference ([Incremental.create ~index:false]).

   Two sweeps, both over windowed composite queries whose constituents
   share a key variable K:

   - scaling: 1k/10k/50k-event streams, And/Seq/Times/Agg, with a
     high-selectivity (many distinct K values) and a low-selectivity
     (few values, fat buckets) key distribution — per-event feed cost
     and join pairs probed, naive vs indexed;
   - window sweep: fixed stream, growing window span — shows per-event
     cost growing sub-linearly with the stored-instance count because a
     probe only enumerates one bucket of the window's instances.

   Prints tables and emits machine-readable BENCH_event.json.  [~smoke]
   runs a fast subset (wired into `dune runtest`) and additionally
   checks, per feed, that both modes report identical detections. *)

open Xchange

let speedup naive indexed = naive /. Float.max indexed 0.001

(* ---- streams: alternating a/b events, key = i mod nkeys ---- *)

let mk_event i ~nkeys =
  let label = if i mod 2 = 0 then "a" else "b" in
  (* key drawn from the a/b pair index, so partners with matching keys
     exist in every window regardless of [nkeys] parity *)
  let key = Term.text (Printf.sprintf "k%d" (i / 2 mod nkeys)) in
  Event.make ~occurred_at:i ~label (Term.elem label [ key; Term.int i ])

let stream ~events ~nkeys = List.init events (fun i -> mk_event i ~nkeys)

(* ---- queries: constituents share the key variable K ---- *)

let atom label payload_var =
  Event_query.on ~label
    (Qterm.el label [ Qterm.pos (Qterm.var "K"); Qterm.pos (Qterm.var payload_var) ])

let q_and ~window = Event_query.within (Event_query.conj [ atom "a" "X"; atom "b" "Y" ]) window
let q_seq ~window = Event_query.within (Event_query.seq [ atom "a" "X"; atom "b" "Y" ]) window

let q_times ~window =
  Event_query.times 3
    (Event_query.on ~label:"a" (Qterm.el "a" [ Qterm.pos (Qterm.var "K") ]))
    window

let q_agg =
  Event_query.Agg
    { Event_query.over = atom "a" "V"; var = "V"; window = 5; op = Construct.Avg; bind = "A" }

let query_of = function
  | "and" -> q_and ~window:256
  | "seq" -> q_seq ~window:256
  | "times" -> q_times ~window:48
  | "agg" -> q_agg
  | q -> invalid_arg q

(* ---- one measured run: feed the whole stream through one engine ---- *)

type run = {
  detections : int;
  ms : float;
  us_per_event : float;
  pairs_probed : int;
  pairs_skipped : int;
  buckets : int;
  per_feed : Instance.t list list;  (** only retained when [check] *)
}

let run_stream ~index ~check q events =
  let engine = Incremental.create_exn ~index q in
  let (per_feed, detections), ms =
    Util.time_ms (fun () ->
        let count = ref 0 in
        let per_feed =
          List.map
            (fun e ->
              let ds = Incremental.feed engine e in
              count := !count + List.length ds;
              if check then ds else [])
            events
        in
        (per_feed, !count))
  in
  let js = Incremental.join_stats engine in
  {
    detections;
    ms;
    us_per_event = ms *. 1000. /. float_of_int (max 1 (List.length events));
    pairs_probed = js.Incremental.pairs_probed;
    pairs_skipped = js.Incremental.pairs_skipped;
    buckets = js.Incremental.buckets;
    per_feed;
  }

let assert_equal_feeds name indexed naive =
  List.iteri
    (fun i (di, dn) ->
      if not (List.equal Instance.equal di dn) then
        failwith
          (Printf.sprintf "event bench %s: feed %d reports %d indexed vs %d naive detections"
             name i (List.length di) (List.length dn)))
    (List.combine indexed.per_feed naive.per_feed)

let scaling_case ~check ~qname ~events ~nkeys =
  let q = query_of qname in
  (* Times counts same-key recurrences: cap the key space so three
     same-key events fit inside its window at every distribution *)
  let nkeys = if String.equal qname "times" then min nkeys 8 else nkeys in
  let evs = stream ~events ~nkeys in
  let indexed = run_stream ~index:true ~check q evs in
  let naive = run_stream ~index:false ~check q evs in
  if check then assert_equal_feeds qname indexed naive
  else if indexed.detections <> naive.detections then
    failwith
      (Printf.sprintf "event bench %s: %d indexed vs %d naive detections" qname
         indexed.detections naive.detections);
  (qname, events, nkeys, naive, indexed)

(* window sweep: same stream, growing window -> growing stored pool *)
let window_case ~check ~qname ~events ~nkeys ~window =
  let q = match qname with "and" -> q_and ~window | _ -> q_seq ~window in
  let evs = stream ~events ~nkeys in
  let indexed = run_stream ~index:true ~check q evs in
  let naive = run_stream ~index:false ~check q evs in
  if check then assert_equal_feeds qname indexed naive;
  (* stored pool proxy: each child retains ~window/2 instances *)
  (qname, window, naive, indexed)

(* ---- JSON emission (hand-rolled; no deps) ---- *)

let obj fields = "{" ^ String.concat ", " fields ^ "}"
let arr elems = "[" ^ String.concat ", " elems ^ "]"
let fi k v = Printf.sprintf "%S: %d" k v
let ff k v = Printf.sprintf "%S: %.3f" k v
let fs k v = Printf.sprintf "%S: %S" k v

let probe_ratio naive indexed =
  float_of_int naive.pairs_probed /. float_of_int (max 1 indexed.pairs_probed)

let run ~smoke () =
  let tiers = if smoke then [ 300 ] else [ 1_000; 10_000; 50_000 ] in
  let key_dists = if smoke then [ ("high", 16) ] else [ ("high", 100); ("low", 2) ] in
  let windows = if smoke then [ 32; 64 ] else [ 64; 256; 1024 ] in
  let sweep_events = if smoke then 300 else 10_000 in
  let check = smoke in
  Obs.Profile.reset ();
  Fmt.pr "@.# Composite-event hot-path benchmarks%s@." (if smoke then " (smoke)" else "");

  let scaling =
    Obs.Profile.phase "scaling" @@ fun () ->
    List.concat_map
      (fun (dist, nkeys) ->
        List.concat_map
          (fun events ->
            List.map
              (fun qname -> (dist, scaling_case ~check ~qname ~events ~nkeys))
              [ "and"; "seq"; "times"; "agg" ])
          tiers)
      key_dists
  in
  Util.print_table ~title:"composite joins: nested loop vs hash-partitioned probe"
    ~header:
      [ "query"; "dist"; "events"; "keys"; "detections"; "naive ms"; "indexed ms";
        "pairs naive"; "pairs indexed"; "probe ratio"; "speedup" ]
    (List.map
       (fun (dist, (qname, events, nkeys, naive, indexed)) ->
         [
           qname; dist; Util.si events; string_of_int nkeys; Util.si naive.detections;
           Util.f2 naive.ms; Util.f2 indexed.ms; Util.si naive.pairs_probed;
           Util.si indexed.pairs_probed; Util.f1 (probe_ratio naive indexed) ^ "x";
           Util.f1 (speedup naive.ms indexed.ms) ^ "x";
         ])
       scaling);

  let sweep =
    Obs.Profile.phase "window_sweep" @@ fun () ->
    List.concat_map
      (fun qname ->
        List.map
          (fun window ->
            window_case ~check ~qname ~events:sweep_events ~nkeys:32 ~window)
          windows)
      [ "and"; "seq" ]
  in
  Util.print_table ~title:"window sweep: per-event feed cost vs stored-instance count"
    ~header:
      [ "query"; "window"; "stored/child"; "naive us/ev"; "indexed us/ev"; "probe ratio" ]
    (List.map
       (fun (qname, window, naive, indexed) ->
         [
           qname; string_of_int window; string_of_int (window / 2);
           Util.f2 naive.us_per_event; Util.f2 indexed.us_per_event;
           Util.f1 (probe_ratio naive indexed) ^ "x";
         ])
       sweep);

  let json =
    obj
      [
        Printf.sprintf "%S: %s" "smoke" (string_of_bool smoke);
        Printf.sprintf "%S: %s" "scaling"
          (arr
             (List.map
                (fun (dist, (qname, events, nkeys, naive, indexed)) ->
                  obj
                    [
                      fs "query" qname; fs "dist" dist; fi "events" events; fi "keys" nkeys;
                      fi "detections" naive.detections; ff "naive_ms" naive.ms;
                      ff "indexed_ms" indexed.ms;
                      ff "us_per_event_naive" naive.us_per_event;
                      ff "us_per_event_indexed" indexed.us_per_event;
                      fi "pairs_probed_naive" naive.pairs_probed;
                      fi "pairs_probed_indexed" indexed.pairs_probed;
                      fi "pairs_skipped_indexed" indexed.pairs_skipped;
                      fi "buckets" indexed.buckets;
                      ff "probe_ratio" (probe_ratio naive indexed);
                      ff "speedup" (speedup naive.ms indexed.ms);
                    ])
                scaling));
        Printf.sprintf "%S: %s" "window_sweep"
          (arr
             (List.map
                (fun (qname, window, naive, indexed) ->
                  obj
                    [
                      fs "query" qname; fi "window" window; fi "stored_per_child" (window / 2);
                      ff "us_per_event_naive" naive.us_per_event;
                      ff "us_per_event_indexed" indexed.us_per_event;
                      fi "pairs_probed_naive" naive.pairs_probed;
                      fi "pairs_probed_indexed" indexed.pairs_probed;
                      ff "probe_ratio" (probe_ratio naive indexed);
                    ])
                sweep));
        Printf.sprintf "%S: %s" "metrics" (Json.to_string (Obs.Profile.to_json ()));
      ]
  in
  let oc = open_out "BENCH_event.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_event.json@."
