(* The evaluation harness: E1..E12 (one experiment per thesis; the
   "tables and figures" the position paper never had — see DESIGN.md §5
   and EXPERIMENTS.md) plus Bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe e3 e6      # selected experiments
     dune exec bench/main.exe micro      # micro-benchmarks only
     dune exec bench/main.exe index      # hot-path indexing benchmarks
     dune exec bench/main.exe sched      # scheduler / degraded-network benchmarks
     dune exec bench/main.exe event      # composite-event join benchmarks
     dune exec bench/main.exe query      # compiled-query-plan benchmarks
     dune exec bench/main.exe pubsub     # subscription-index publish benchmarks
     dune exec bench/main.exe rules      # cross-rule sharing (alpha network) benchmarks
     dune exec bench/main.exe par        # multicore scale-out (sharded scheduler) benchmarks
     dune exec bench/main.exe wal        # durability (WAL append/replay/recovery) benchmarks
     dune exec bench/main.exe --smoke    # fast index+sched+event+query+pubsub+rules+par+wal smoke (runs in `dune runtest`)
*)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let args = List.filter (fun a -> a <> "--smoke") args in
  if smoke then begin
    Index_bench.run ~smoke:true ();
    Sched_bench.run ~smoke:true ();
    Event_bench.run ~smoke:true ();
    Query_bench.run ~smoke:true ();
    Pubsub_bench.run ~smoke:true ();
    Rules_bench.run ~smoke:true ();
    Par_bench.run ~smoke:true ();
    Wal_bench.run ~smoke:true ()
  end
  else begin
    let wanted name = args = [] || List.mem name args in
    Fmt.pr "# XChange-OCaml evaluation — Twelve Theses on Reactive Rules for the Web@.";
    List.iter
      (fun (name, f) -> if wanted name then f ())
      Experiments.all;
    if wanted "index" then Index_bench.run ~smoke:false ();
    if wanted "sched" then Sched_bench.run ~smoke:false ();
    if wanted "event" then Event_bench.run ~smoke:false ();
    if wanted "query" then Query_bench.run ~smoke:false ();
    if wanted "pubsub" then Pubsub_bench.run ~smoke:false ();
    if wanted "rules" then Rules_bench.run ~smoke:false ();
    if wanted "par" then Par_bench.run ~smoke:false ();
    if wanted "wal" then Wal_bench.run ~smoke:false ();
    if wanted "micro" then Micro.run ()
  end
