(* Compiled-query-plan benchmarks (HACKING.md "Query compilation"):
   the one-pass closure-tree compiler ([Plan]) vs the interpreting
   matcher ([Simulate.matches ~plan:false], the reference
   implementation).

   Three sweeps:

   - scaling: unordered/total element matching over 1k/10k/50k-node
     documents in two shapes (flat record list, records nested in
     boxes).  Most records are decoys that agree with the query on
     most child labels — the interpreter explores partial injective
     assignments before failing, while the plan's required-label
     fingerprint refutes them before any descent; short decoys are
     refuted by the arity check alone.  Per case the deterministic
     prune counters ([fingerprint_pruned], [arity_pruned]) are
     reported alongside the timings;
   - regex scan: anchored pre-compiled regex in the plan vs the
     interpreter's per-leaf LRU-cached compilation;
   - plan cache: per-call [Plan.compile] vs the [Simulate] LRU hit
     path on a repeated query.

   Prints tables and emits machine-readable BENCH_query.json.  [~smoke]
   runs a fast subset (wired into `dune runtest`) and additionally
   checks, per case, that both paths produce identical answer sets. *)

open Xchange

let speedup interp plan = interp /. Float.max plan 0.001

(* ---- documents: product records under an unordered root ----
   hit:   rec[name x2; price x2; qty; sku; vendor]        — matches
   swap:  rec[name x2; price x2; qty; sku; seller]        — fingerprint-pruned
   short: rec[name; price; qty]                           — arity-pruned
   long:  rec[name x2; price x2; qty; sku; vendor; note]  — arity-pruned;
          the interpreter only discovers the uncovered extra child after
          exhausting the injective-assignment search *)

let leaf_el label v = Term.elem label [ Term.text v ]

let record i kind =
  let n = string_of_int i in
  match kind with
  | `Hit ->
      Term.elem ~ord:Term.Unordered "rec"
        [
          leaf_el "name" ("a" ^ n); leaf_el "name" ("b" ^ n);
          leaf_el "price" ("10" ^ n); leaf_el "price" ("20" ^ n);
          leaf_el "qty" n; leaf_el "sku" ("s" ^ n); leaf_el "vendor" ("v" ^ n);
        ]
  | `Swap ->
      Term.elem ~ord:Term.Unordered "rec"
        [
          leaf_el "name" ("a" ^ n); leaf_el "name" ("b" ^ n);
          leaf_el "price" ("10" ^ n); leaf_el "price" ("20" ^ n);
          leaf_el "qty" n; leaf_el "sku" ("s" ^ n); leaf_el "seller" ("v" ^ n);
        ]
  | `Short ->
      Term.elem ~ord:Term.Unordered "rec"
        [ leaf_el "name" ("a" ^ n); leaf_el "price" ("10" ^ n); leaf_el "qty" n ]
  | `Long ->
      Term.elem ~ord:Term.Unordered "rec"
        [
          leaf_el "name" ("a" ^ n); leaf_el "name" ("b" ^ n);
          leaf_el "price" ("10" ^ n); leaf_el "price" ("20" ^ n);
          leaf_el "qty" n; leaf_el "sku" ("s" ^ n); leaf_el "vendor" ("v" ^ n);
          leaf_el "note" ("x" ^ n);
        ]

(* a selective query over a big store: 1 hit / 3 swap / 2 short /
   4 long decoys per 10 records *)
let kind_of i =
  match i mod 10 with
  | 0 -> `Hit
  | 1 | 4 | 7 -> `Swap
  | 2 | 5 -> `Short
  | _ -> `Long

let records n = List.init n (fun i -> record i (kind_of i))

let doc ~shape ~nrecords =
  match shape with
  | "flat" -> Term.elem ~ord:Term.Unordered "db" (records nrecords)
  | "nested" ->
      (* records grouped 10 to a box, boxes 10 to a shelf *)
      let rec group size label = function
        | [] -> []
        | items ->
            let rec take k = function
              | x :: rest when k > 0 ->
                  let xs, rest' = take (k - 1) rest in
                  (x :: xs, rest')
              | rest -> ([], rest)
            in
            let chunk, rest = take size items in
            Term.elem label chunk :: group size label rest
      in
      Term.elem ~ord:Term.Unordered "db"
        (group 10 "shelf" (group 10 "box" (records nrecords)))
  | s -> invalid_arg s

let rec nodes t = 1 + List.fold_left (fun acc c -> acc + nodes c) 0 (Term.children t)

(* unordered/total: every data child must be consumed by some pattern *)
let q_record =
  Qterm.el ~ord:Term.Unordered ~spec:Qterm.Total "rec"
    [
      Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N1") ]);
      Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N2") ]);
      Qterm.pos (Qterm.el "price" [ Qterm.pos (Qterm.var "P1") ]);
      Qterm.pos (Qterm.el "price" [ Qterm.pos (Qterm.var "P2") ]);
      Qterm.pos (Qterm.el "qty" [ Qterm.pos (Qterm.var "Q") ]);
      Qterm.pos (Qterm.el "sku" [ Qterm.pos (Qterm.var "S") ]);
      Qterm.pos (Qterm.el "vendor" [ Qterm.pos (Qterm.var "V") ]);
    ]

(* ---- measurement ---- *)

let subst_sets_agree a b =
  List.length a = List.length b
  && List.for_all (fun s -> List.exists (Subst.equal s) b) a
  && List.for_all (fun s -> List.exists (Subst.equal s) a) b

let check_agree name interp plan =
  if not (subst_sets_agree interp plan) then
    failwith
      (Printf.sprintf "query bench %s: %d interpreter vs %d plan answers" name
         (List.length interp) (List.length plan))

(* [iters] evaluations; answers from the first one *)
let timed iters f =
  let r = ref [] in
  let (), ms =
    Util.time_ms (fun () ->
        for i = 1 to iters do
          let a = f () in
          if i = 1 then r := a
        done)
  in
  (!r, ms)

type case = {
  shape : string;
  nrecords : int;
  nnodes : int;
  answers : int;
  interp_ms : float;
  plan_ms : float;
  fingerprint_pruned : int;
  arity_pruned : int;
}

let scaling_case ~check ~shape ~nrecords ~iters =
  let d = doc ~shape ~nrecords in
  let interp, interp_ms =
    timed iters (fun () -> Simulate.matches_anywhere ~plan:false q_record d)
  in
  (* warm the plan cache outside the timed region, then count the
     prunes of exactly the [iters] measured evaluations *)
  let (_ : Plan.t) = Simulate.plan_of q_record in
  let fp0 = Plan.fingerprint_pruned () and ar0 = Plan.arity_pruned () in
  let plan, plan_ms =
    timed iters (fun () -> Simulate.matches_anywhere ~plan:true q_record d)
  in
  if check then check_agree (shape ^ "/" ^ string_of_int nrecords) interp plan;
  {
    shape;
    nrecords;
    nnodes = nodes d;
    answers = List.length plan;
    interp_ms;
    plan_ms;
    fingerprint_pruned = (Plan.fingerprint_pruned () - fp0) / iters;
    arity_pruned = (Plan.arity_pruned () - ar0) / iters;
  }

(* regex scan: one pattern over many text leaves; the plan carries the
   compiled automaton, the interpreter looks it up in an LRU per leaf *)
let q_regex = Qterm.el "p" [ Qterm.pos (Qterm.As ("T", Qterm.regex "p[0-9]+")) ]

let regex_case ~check ~nleaves ~iters =
  let d =
    Term.elem "feed"
      (List.init nleaves (fun i ->
           Term.elem "p"
             [ Term.text ((if i mod 2 = 0 then "p" else "x") ^ string_of_int i) ]))
  in
  let interp, interp_ms =
    timed iters (fun () -> Simulate.matches_anywhere ~plan:false q_regex d)
  in
  let (_ : Plan.t) = Simulate.plan_of q_regex in
  let plan, plan_ms = timed iters (fun () -> Simulate.matches_anywhere ~plan:true q_regex d) in
  if check then check_agree "regex" interp plan;
  (nleaves, List.length plan, interp_ms, plan_ms)

(* plan cache: compiling per call vs the Simulate LRU hit path *)
let cache_case ~repeats =
  let d = doc ~shape:"flat" ~nrecords:20 in
  let (_ : Subst.set), compile_ms =
    timed repeats (fun () -> Plan.matches_anywhere (Plan.compile q_record) d)
  in
  let (_ : Subst.set), cached_ms =
    timed repeats (fun () -> Simulate.matches_anywhere ~plan:true q_record d)
  in
  (repeats, compile_ms, cached_ms)

(* ---- JSON emission (hand-rolled; no deps) ---- *)

let obj fields = "{" ^ String.concat ", " fields ^ "}"
let arr elems = "[" ^ String.concat ", " elems ^ "]"
let fi k v = Printf.sprintf "%S: %d" k v
let ff k v = Printf.sprintf "%S: %.3f" k v
let fs k v = Printf.sprintf "%S: %S" k v

let run ~smoke () =
  let tiers = if smoke then [ 40 ] else [ 80; 800; 4_000 ] in
  let iters = if smoke then 3 else 5 in
  let regex_leaves = if smoke then 200 else 5_000 in
  let repeats = if smoke then 50 else 2_000 in
  let check = smoke in
  Obs.Profile.reset ();
  Fmt.pr "@.# Compiled-query-plan benchmarks%s@." (if smoke then " (smoke)" else "");

  let scaling =
    Obs.Profile.phase "scaling" @@ fun () ->
    List.concat_map
      (fun shape ->
        List.map (fun nrecords -> scaling_case ~check ~shape ~nrecords ~iters) tiers)
      [ "flat"; "nested" ]
  in
  Util.print_table ~title:"unordered/total element matching: interpreter vs compiled plan"
    ~header:
      [ "shape"; "records"; "nodes"; "answers"; "interp ms"; "plan ms"; "fp-pruned";
        "arity-pruned"; "speedup" ]
    (List.map
       (fun c ->
         [
           c.shape; Util.si c.nrecords; Util.si c.nnodes; Util.si c.answers;
           Util.f2 c.interp_ms; Util.f2 c.plan_ms; Util.si c.fingerprint_pruned;
           Util.si c.arity_pruned; Util.f1 (speedup c.interp_ms c.plan_ms) ^ "x";
         ])
       scaling);

  let regexes =
    Obs.Profile.phase "regex" @@ fun () ->
    [ regex_case ~check ~nleaves:regex_leaves ~iters ]
  in
  Util.print_table ~title:"regex leaf scan: LRU-cached interpreter vs pre-compiled plan"
    ~header:[ "leaves"; "answers"; "interp ms"; "plan ms"; "speedup" ]
    (List.map
       (fun (nleaves, answers, interp_ms, plan_ms) ->
         [
           Util.si nleaves; Util.si answers; Util.f2 interp_ms; Util.f2 plan_ms;
           Util.f1 (speedup interp_ms plan_ms) ^ "x";
         ])
       regexes);

  let cache =
    Obs.Profile.phase "plan_cache" @@ fun () -> [ cache_case ~repeats ]
  in
  Util.print_table ~title:"plan cache: compile per call vs LRU hit"
    ~header:[ "repeats"; "compile ms"; "cached ms"; "speedup" ]
    (List.map
       (fun (repeats, compile_ms, cached_ms) ->
         [
           Util.si repeats; Util.f2 compile_ms; Util.f2 cached_ms;
           Util.f1 (speedup compile_ms cached_ms) ^ "x";
         ])
       cache);

  let json =
    obj
      [
        Printf.sprintf "%S: %s" "smoke" (string_of_bool smoke);
        Printf.sprintf "%S: %s" "scaling"
          (arr
             (List.map
                (fun c ->
                  obj
                    [
                      fs "shape" c.shape; fi "records" c.nrecords; fi "nodes" c.nnodes;
                      fi "answers" c.answers; ff "interp_ms" c.interp_ms;
                      ff "plan_ms" c.plan_ms;
                      fi "fingerprint_pruned" c.fingerprint_pruned;
                      fi "arity_pruned" c.arity_pruned;
                      ff "speedup" (speedup c.interp_ms c.plan_ms);
                    ])
                scaling));
        Printf.sprintf "%S: %s" "regex"
          (arr
             (List.map
                (fun (nleaves, answers, interp_ms, plan_ms) ->
                  obj
                    [
                      fi "leaves" nleaves; fi "answers" answers; ff "interp_ms" interp_ms;
                      ff "plan_ms" plan_ms; ff "speedup" (speedup interp_ms plan_ms);
                    ])
                regexes));
        Printf.sprintf "%S: %s" "plan_cache"
          (arr
             (List.map
                (fun (repeats, compile_ms, cached_ms) ->
                  obj
                    [
                      fi "repeats" repeats; ff "compile_ms" compile_ms;
                      ff "cached_ms" cached_ms;
                      ff "speedup" (speedup compile_ms cached_ms);
                    ])
                cache));
        Printf.sprintf "%S: %s" "metrics"
          (Json.to_string
             (Json.Obj
                [
                  (* key names chosen to stay clear of the regression
                     gate's shape_keys: these are informational *)
                  ("phase_profile", Obs.Profile.to_json ());
                  ("query_counters", Obs.Metrics.to_json (Obs.Metrics.snapshot Simulate.metrics));
                ]));
      ]
  in
  let oc = open_out "BENCH_query.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_query.json@."
