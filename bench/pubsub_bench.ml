(* Subscription-index benchmarks (HACKING.md "Subscription index"):
   publish dispatch through the topic-keyed [Sub_index] ([Pubsub.Registry])
   vs the linear scan over all registered subscriptions.

   Two sweeps over the registered-subscriber count, plus one
   store-attached case:

   - selective: the published topic has a {e fixed} subscriber set
     (1000 hosts in the full run — 0.1% of the largest, 10^6, tier)
     while the remaining registrations spread over 999 other topics.
     Publish cost must track the matched set, not the register size:
     the per-publish candidate count stays flat across tiers (asserted,
     and gated in CI by [check_regression]'s candidates-per-publish
     rule), and the full run asserts the 10^6-tier publish latency is
     within 10x of the 10^3 tier;
   - proportional: registrations spread uniformly over 1000 topics, so
     the published topic's audience grows with the tier.  Cost per
     {e match} stays flat — the latency growth is exactly the fan-out;
   - attached: a store-backed registry ([Registry.attach]) serving
     [Pubsub.subscribers] through the [Store.set_dynamic] answerer vs
     [~index:false], the plain document interpreter (the differential
     oracle, same code path as [XCHANGE_NO_SUBINDEX=1]).

   Every case asserts the indexed host set equals the linear-scan
   oracle's before timing is reported.  Prints tables and emits
   machine-readable BENCH_pubsub.json.  [~smoke] runs small tiers
   (wired into `dune runtest`). *)

open Xchange

let speedup scan indexed = scan /. Float.max indexed 0.001

let topic i = "t" ^ string_of_int i
let hot = "news"

(* subscriber [i]'s (topic, host): the first [fanout] land on the hot
   topic, the rest round-robin over [ktopics] background topics *)
let selective_pair ~fanout ~ktopics i =
  if i < fanout then (hot, "h" ^ string_of_int i)
  else (topic (i mod ktopics), "h" ^ string_of_int i)

let proportional_pair ~ktopics i = (topic (i mod ktopics), "h" ^ string_of_int i)

(* the pre-index path in its cheapest form: scan every registration *)
let scan_subscribers pairs t =
  Array.to_list pairs
  |> List.filter_map (fun (t', h) -> if String.equal t' t then Some h else None)
  |> List.sort_uniq String.compare

let check_hosts name indexed oracle =
  if not (List.equal String.equal indexed oracle) then
    failwith
      (Printf.sprintf "pubsub bench %s: %d indexed hosts vs %d oracle" name
         (List.length indexed) (List.length oracle))

let timed_us iters f =
  let (), ms = Util.time_ms (fun () -> for _ = 1 to iters do ignore (f ()) done) in
  ms *. 1000. /. float_of_int iters

type row = {
  subs : int;
  topics : int;
  fanout : int;
  publishes : int;
  reg_us : float;  (* per-subscription incremental registration *)
  idx_us : float;  (* per-publish, through the index *)
  scan_us : float;  (* per-publish, linear scan *)
  cand : float;  (* trie candidates per publish *)
  conf : float;  (* plan-confirmed matches per publish *)
  refut : float;  (* fingerprint-refuted bucket entries per publish *)
  trie : int;
}

let sweep_case ~pair_of ~probe ~subs ~ktopics ~publishes =
  let pairs = Array.init subs pair_of in
  let reg = Pubsub.Registry.create () in
  let reg_us =
    let i = ref (-1) in
    timed_us subs (fun () ->
        incr i;
        let t, h = pairs.(!i) in
        Pubsub.Registry.subscribe reg ~topic:t ~host:h)
  in
  let payload = Pubsub.publish ~topic:probe (Term.text "body") in
  let oracle = scan_subscribers pairs probe in
  check_hosts
    (Printf.sprintf "%d subs / topic %s" subs probe)
    (Pubsub.Registry.match_publish reg payload)
    oracle;
  let s0 = Pubsub.Registry.stats reg in
  let idx_us = timed_us publishes (fun () -> Pubsub.Registry.match_publish reg payload) in
  let s1 = Pubsub.Registry.stats reg in
  let scan_iters = if subs >= 100_000 then 5 else 50 in
  let scan_us = timed_us scan_iters (fun () -> scan_subscribers pairs probe) in
  let per c = float_of_int c /. float_of_int publishes in
  (* churn: removal is incremental too — no rebuild, and the hot bucket
     really empties (then restore it so the reported stats make sense) *)
  let fanout = List.length oracle in
  let hot_pairs = List.filter (fun (t, _) -> String.equal t probe) (Array.to_list pairs) in
  List.iter (fun (t, h) -> ignore (Pubsub.Registry.unsubscribe reg ~topic:t ~host:h)) hot_pairs;
  check_hosts "post-unsubscribe" (Pubsub.Registry.match_publish reg payload) [];
  List.iter (fun (t, h) -> Pubsub.Registry.subscribe reg ~topic:t ~host:h) hot_pairs;
  check_hosts "post-resubscribe" (Pubsub.Registry.match_publish reg payload) oracle;
  {
    subs;
    topics = ktopics + 1;
    fanout;
    publishes;
    reg_us;
    idx_us;
    scan_us;
    cand = per Sub_index.(s1.candidates - s0.candidates);
    conf = per Sub_index.(s1.confirmed - s0.confirmed);
    refut = per Sub_index.(s1.refuted - s0.refuted);
    trie = Pubsub.Registry.(stats reg).Sub_index.nodes;
  }

(* store-attached: the fan-out rule's register query served by the
   change-feed-maintained mirror vs the plain interpreter *)
let attached_case ~subs ~ktopics ~fanout ~queries =
  let entry (t, h) =
    Term.elem "sub" [ Term.elem "topic" [ Term.text t ]; Term.elem "host" [ Term.text h ] ]
  in
  let pairs = Array.init subs (selective_pair ~fanout ~ktopics) in
  let store = Store.create () in
  Store.add_doc store Pubsub.subscribers_doc
    (Term.elem ~ord:Term.Unordered "subscribers"
       (Array.to_list pairs |> List.map entry));
  let reg = Pubsub.Registry.attach store in
  let oracle = Pubsub.subscribers ~index:false store ~topic:hot in
  check_hosts "attached" (Pubsub.subscribers store ~topic:hot) oracle;
  check_hosts "attached scan" oracle (scan_subscribers pairs hot);
  let idx_us = timed_us queries (fun () -> Pubsub.subscribers store ~topic:hot) in
  let scan_iters = max 5 (queries / 20) in
  let scan_us = timed_us scan_iters (fun () -> Pubsub.subscribers ~index:false store ~topic:hot) in
  (reg, store, subs, List.length oracle, queries, idx_us, scan_us)

(* ---- JSON emission (hand-rolled; no deps) ---- *)

let obj fields = "{" ^ String.concat ", " fields ^ "}"
let arr elems = "[" ^ String.concat ", " elems ^ "]"
let fi k v = Printf.sprintf "%S: %d" k v
let ff k v = Printf.sprintf "%S: %.3f" k v

let row_json r =
  obj
    [
      fi "subs" r.subs;
      fi "topics" r.topics;
      fi "fanout" r.fanout;
      fi "publishes" r.publishes;
      ff "register_us_per_event" r.reg_us;
      ff "publish_us_per_event_indexed" r.idx_us;
      ff "publish_us_per_event_scan" r.scan_us;
      ff "candidates_per_publish" r.cand;
      ff "confirmed_per_publish" r.conf;
      ff "refuted_per_publish" r.refut;
      fi "trie_nodes" r.trie;
      ff "speedup" (speedup r.scan_us r.idx_us);
    ]

let row_cells r =
  [
    Util.si r.subs; Util.si r.fanout; Util.f2 r.reg_us; Util.f2 r.idx_us;
    Util.f2 r.scan_us; Util.f1 r.cand; Util.f1 r.conf;
    Util.si r.trie; Util.f1 (speedup r.scan_us r.idx_us) ^ "x";
  ]

let header =
  [ "subs"; "fanout"; "reg us"; "pub us (idx)"; "pub us (scan)"; "cand/pub";
    "conf/pub"; "trie nodes"; "speedup" ]

let run ~smoke () =
  let tiers = if smoke then [ 200; 1_000 ] else [ 1_000; 10_000; 100_000; 1_000_000 ] in
  let fanout = if smoke then 20 else 1_000 in
  let ktopics = if smoke then 50 else 999 in
  let publishes = if smoke then 200 else 1_000 in
  Obs.Profile.reset ();
  Fmt.pr "@.# Subscription-index benchmarks%s@." (if smoke then " (smoke)" else "");

  let selective =
    Obs.Profile.phase "selective" @@ fun () ->
    List.map
      (fun subs ->
        sweep_case ~pair_of:(selective_pair ~fanout ~ktopics) ~probe:hot ~subs
          ~ktopics ~publishes)
      tiers
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "selective publish: fixed %d-host topic, register grows (index vs linear scan)"
         fanout)
    ~header (List.map row_cells selective);

  (* candidates must not scale with registrations: the trie hands back
     the hot bucket, whatever else is registered *)
  (match (selective, List.rev selective) with
  | first :: _, last :: _ when List.length selective > 1 ->
      if last.cand > (2. *. first.cand) +. 8. then
        failwith
          (Printf.sprintf
             "pubsub bench: candidates per publish grew with registrations (%.1f at %d subs vs %.1f at %d)"
             last.cand last.subs first.cand first.subs);
      if (not smoke) && last.idx_us > 10. *. Float.max first.idx_us 5. then
        failwith
          (Printf.sprintf
             "pubsub bench: publish latency at %d subs is %.1fus vs %.1fus at %d (> 10x)"
             last.subs last.idx_us first.idx_us first.subs)
  | _ -> ());

  let proportional =
    Obs.Profile.phase "proportional" @@ fun () ->
    List.map
      (fun subs ->
        sweep_case
          ~pair_of:(proportional_pair ~ktopics:(ktopics + 1))
          ~probe:(topic 0) ~subs ~ktopics ~publishes)
      tiers
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "proportional publish: audience = subs/%d, cost per match stays flat" (ktopics + 1))
    ~header (List.map row_cells proportional);

  let att_subs = if smoke then 300 else 20_000 in
  let att_queries = if smoke then 100 else 500 in
  let reg, store, a_subs, a_fanout, a_queries, a_idx_us, a_scan_us =
    Obs.Profile.phase "attached" @@ fun () ->
    attached_case ~subs:att_subs ~ktopics ~fanout:(min fanout att_subs)
      ~queries:att_queries
  in
  Util.print_table
    ~title:"store-attached registry: Pubsub.subscribers via dynamic answerer vs interpreter"
    ~header:[ "subs"; "fanout"; "query us (idx)"; "query us (scan)"; "speedup" ]
    [
      [
        Util.si a_subs; Util.si a_fanout; Util.f2 a_idx_us; Util.f2 a_scan_us;
        Util.f1 (speedup a_scan_us a_idx_us) ^ "x";
      ];
    ];

  let json =
    obj
      [
        Printf.sprintf "%S: %s" "smoke" (string_of_bool smoke);
        Printf.sprintf "%S: %s" "selective" (arr (List.map row_json selective));
        Printf.sprintf "%S: %s" "proportional" (arr (List.map row_json proportional));
        Printf.sprintf "%S: %s" "attached"
          (obj
             [
               fi "subs" a_subs;
               fi "fanout" a_fanout;
               fi "queries" a_queries;
               ff "subscribers_us_per_event_indexed" a_idx_us;
               ff "subscribers_us_per_event_scan" a_scan_us;
               ff "speedup" (speedup a_scan_us a_idx_us);
             ]);
        Printf.sprintf "%S: %s" "metrics"
          (Json.to_string
             (Json.Obj
                [
                  (* key names chosen to stay clear of the regression
                     gate's shape_keys: these are informational *)
                  ("phase_profile", Obs.Profile.to_json ());
                  ( "registry_counters",
                    Obs.Metrics.to_json
                      (Obs.Metrics.snapshot (Pubsub.Registry.metrics reg)) );
                  ( "store_counters",
                    Obs.Metrics.to_json (Obs.Metrics.snapshot (Store.metrics store)) );
                ]));
      ]
  in
  let oc = open_out "BENCH_pubsub.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_pubsub.json@."
