(* CI bench-regression gate.

   Usage: check_regression <baseline.json> <current.json> [...more pairs]

   Compares a committed baseline BENCH_*.json against the one a smoke
   run just produced and fails (exit 1) when an indexed hot-path metric
   regressed:

   - wall-time fields of the indexed/cached paths ([indexed_ms],
     [cached_ms], [us_per_event_indexed], ...): fail when
     current > TOL * max(baseline, floor).  The floor absorbs
     Sys.time granularity and machine noise on sub-millisecond smoke
     cases; TOL = 2.0 is the ">2x slowdown" contract.
   - deterministic join-work counters ([pairs_probed_indexed],
     [pairs_skipped_indexed]): same stream, same windows — these are
     exactly reproducible, so a small tolerance (1.5x over a 1k floor)
     only allows intentional algorithmic change, which must come with a
     baseline regen.
   - compiled-plan prune counters ([fingerprint_pruned],
     [arity_pruned]): same document, same query — exactly reproducible,
     and they must not DROP below baseline: fewer pruned subtrees means
     the compiler stopped refuting decoys before descent.
   - the subscription-index candidate count ([candidates_per_publish]):
     deterministic for a fixed subscription set, and the whole point of
     the trie is that it does NOT scale with registrations — growth
     beyond 1.5x the baseline (over a small floor) means publish
     dispatch degraded back towards a linear scan.
   - the shared-alpha work counter ([alpha_evals_per_event_shared]):
     deterministic for a fixed ruleset and stream, and the whole point
     of the alpha network is that matcher work tracks {e distinct}
     patterns, not rules — growth beyond 1.5x the baseline (over a
     small floor) means cross-rule sharing degraded back towards
     per-rule evaluation.
   - the shared-beta work counter ([beta_joins_per_event_shared]):
     same contract one level up — join pairs probed per event must
     track distinct composite subtrees, not subscribing rules; growth
     beyond 1.5x the baseline (over a small floor) means composite
     join state stopped being shared.

   Workload-shape fields (rules/events/nodes/window/...) must match
   exactly: comparing timings of different workloads is meaningless, so
   a shape drift is an error telling the author to regenerate the
   baselines (see HACKING.md "Observability"). *)

open Xchange

let tol_time = 2.0
let tol_count = 1.5
let floor_ms = 5.0
let floor_us = 20.0
let floor_pairs = 1000.0
let floor_candidates = 4.0
let floor_alpha_evals = 4.0
let floor_beta_joins = 8.0

let shape_keys =
  [
    "smoke"; "rules"; "events"; "nodes"; "queries"; "repeats"; "keys"; "window";
    "probes"; "orders"; "query"; "dist"; "profile"; "stored_per_child";
    "shape"; "records"; "leaves"; "answers";
    "subs"; "topics"; "fanout"; "publishes"; "overlap"; "kind";
  ]

let is_count_gate key =
  String.length key >= 6 && String.sub key 0 6 = "pairs_"
  && Filename.check_suffix key "_indexed"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let is_time_gate key =
  ((contains key "indexed" || contains key "cached" || contains key "plan")
  && (Filename.check_suffix key "_ms" || contains key "us_per_event"))
  (* WAL throughput phases (BENCH_wal.json): append / decode / physical
     redo / end-to-end node recovery are all hot durability paths *)
  || List.mem key [ "append_ms"; "decode_ms"; "replay_ms"; "recover_ms" ]

let is_prune_gate key = key = "fingerprint_pruned" || key = "arity_pruned"
let is_candidates_gate key = key = "candidates_per_publish"
let is_alpha_gate key = key = "alpha_evals_per_event_shared"
let is_beta_gate key = key = "beta_joins_per_event_shared"

let floor_of key = if contains key "us_per_event" then floor_us else floor_ms

let failures = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

let num = function Json.Num x -> Some x | _ -> None

let rec walk path (base : Json.t) (cur : Json.t) =
  match (base, cur) with
  | Json.Obj bs, Json.Obj cs ->
      List.iter
        (fun (k, bv) ->
          match List.assoc_opt k cs with
          | None -> fail "%s.%s: missing from current run" path k
          | Some cv -> field (path ^ "." ^ k) k bv cv)
        bs
  | Json.List bs, Json.List cs ->
      if List.length bs <> List.length cs then
        fail "%s: %d baseline rows vs %d current (workload changed? regenerate baselines)"
          path (List.length bs) (List.length cs)
      else List.iteri (fun i (b, c) -> walk (Printf.sprintf "%s[%d]" path i) b c)
             (List.combine bs cs)
  | _ -> ()

and field path key bv cv =
  if List.mem key shape_keys then begin
    if bv <> cv then
      fail "%s: workload shape differs from baseline (%s vs %s) — regenerate baselines"
        path (Json.to_string bv) (Json.to_string cv)
  end
  else if is_count_gate key then
    match (num bv, num cv) with
    | Some b, Some c when c > tol_count *. Float.max b floor_pairs ->
        fail "%s: %.0f pairs vs baseline %.0f (> %.1fx)" path c b tol_count
    | _ -> ()
  else if is_time_gate key then (
    match (num bv, num cv) with
    | Some b, Some c when c > tol_time *. Float.max b (floor_of key) ->
        fail "%s: %.3f vs baseline %.3f (> %.1fx slowdown)" path c b tol_time
    | _ -> ())
  else if is_prune_gate key then (
    match (num bv, num cv) with
    | Some b, Some c when b > 0. && c < b ->
        fail "%s: %.0f subtrees pruned vs baseline %.0f (pruning effectiveness lost)" path c b
    | _ -> ())
  else if is_candidates_gate key then (
    match (num bv, num cv) with
    | Some b, Some c when c > tol_count *. Float.max b floor_candidates ->
        fail
          "%s: %.1f candidates per publish vs baseline %.1f (dispatch scaling with registrations?)"
          path c b
    | _ -> ())
  else if is_alpha_gate key then (
    match (num bv, num cv) with
    | Some b, Some c when c > tol_count *. Float.max b floor_alpha_evals ->
        fail
          "%s: %.1f alpha evaluations per event vs baseline %.1f (cross-rule sharing degraded?)"
          path c b
    | _ -> ())
  else if is_beta_gate key then (
    match (num bv, num cv) with
    | Some b, Some c when c > tol_count *. Float.max b floor_beta_joins ->
        fail
          "%s: %.1f join pairs probed per event vs baseline %.1f (composite join sharing degraded?)"
          path c b
    | _ -> ())
  else walk path bv cv

let read_file name =
  let ic = open_in_bin name in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Multicore scaling gate: BENCH_par.json records the wall-clock
   speedup at 4 domains and the core count of the machine that produced
   it.  On a machine with at least 4 real cores, a 4-domain run that
   fails to reach 1.5x the sequential run means the sharded scheduler
   stopped paying for itself; on smaller machines (CI containers are
   often 1-2 cores) wall-clock speedup is meaningless and the gate does
   not apply.  [cores] is deliberately NOT a workload-shape key — the
   same workload measured on different machines must still compare. *)
let min_speedup_4 = 1.5

let top_num key = function
  | Json.Obj fields -> (
      match List.assoc_opt key fields with Some (Json.Num x) -> Some x | _ -> None)
  | _ -> None

let scaling_gate name current =
  match (top_num "cores" current, top_num "speedup_4_domains" current) with
  | Some cores, Some speedup when cores >= 4. && speedup < min_speedup_4 ->
      fail "%s: %.2fx speedup at 4 domains on a %.0f-core machine (< %.1fx)" name speedup
        cores min_speedup_4
  | _ -> ()

let check (baseline, current) =
  (* a silently absent artifact must never pass as "nothing regressed" *)
  let missing = List.filter (fun f -> not (Sys.file_exists f)) [ baseline; current ] in
  if missing <> [] then
    List.iter
      (fun f -> fail "%s: bench artifact missing — expected the smoke run to emit it" f)
      missing
  else
    match (Json.parse (read_file baseline), Json.parse (read_file current)) with
    | Error e, _ -> fail "%s: parse error: %s" baseline e
    | _, Error e -> fail "%s: parse error: %s" current e
    | Ok b, Ok c ->
        let name = Filename.basename current |> Filename.remove_extension in
        Printf.printf "checking %s against %s\n" current baseline;
        walk name b c;
        scaling_gate name c

let () =
  let rec pairs = function
    | [] -> []
    | b :: c :: rest -> (b, c) :: pairs rest
    | [ _ ] ->
        prerr_endline "usage: check_regression <baseline.json> <current.json> [...]";
        exit 2
  in
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: check_regression <baseline.json> <current.json> [...]";
    exit 2
  end;
  List.iter check (pairs args);
  match List.rev !failures with
  | [] -> print_endline "bench regression gate: OK"
  | fs ->
      List.iter (fun f -> Printf.eprintf "REGRESSION %s\n" f) fs;
      Printf.eprintf "bench regression gate: %d failure(s)\n" (List.length fs);
      exit 1
