(* Multicore scale-out benchmarks: the same pulse/ack workload replayed
   with the host set sharded over 1, 2, 4 (and 8 in full runs) OCaml
   domains.  Before timing, every partitioned tier is asserted
   bit-identical to the sequential oracle (firings, traffic, clock) —
   the differential contract test/test_par.ml drives in anger.  Prints
   a table and emits machine-readable BENCH_par.json.

   Wall-clock speedup is only meaningful when real cores back the
   domains; the artifact records [cores] so the regression gate
   (bench/check_regression.ml) applies its scaling check only on
   machines with at least 4 of them.  [~smoke] runs small tiers (wired
   into `dune runtest`). *)

open Xchange

(* [Sys.time] sums CPU time over every domain, which makes a parallel
   run look slower the better it scales; wall clock is the honest
   measure here. *)
let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let host i = Printf.sprintf "w%d.example" i

(* Per-pulse work: a local condition query scanning a [doc_items]-entry
   document, a store insert, and a cross-host ack to the ring
   neighbour — enough CPU per event for sharding to matter, enough
   traffic for the barrier exchange to be exercised. *)
let rules ~next =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"work"
          ~on:(Event_query.on ~label:"pulse" (Qterm.var "E"))
          ~if_:
            (Condition.In
               (Condition.Local "/data", Qterm.el "item" [ Qterm.pos (Qterm.txt "needle") ]))
          (Action.seq
             [
               Action.insert ~doc:"/seen" (Construct.cel "p" [ Construct.cvar "E" ]);
               Action.raise_event ~to_:next ~label:"ack" (Construct.cel "a" []);
             ]);
      ]
    "worker"

type tier = {
  t_domains : int;
  t_firings : int;
  t_messages : int;
  t_bytes : int;
  t_clock : int;
  t_rounds : int;  (** barrier window rounds *)
  t_crossings : int;  (** deliveries through handoff rings *)
  t_wall_ms : float;
}

let run_tier ~hosts ~pulses ~doc_items ~domains =
  (* identical id streams per tier: lanes and message ids replay *)
  Event.reset_ids ();
  Message.reset_ids ();
  let net = Network.create ~domains () in
  let nodes =
    List.init hosts (fun i ->
        let n = node_exn ~host:(host i) (rules ~next:(host ((i + 1) mod hosts))) in
        let data =
          Term.elem ~ord:Term.Unordered "data"
            (List.init doc_items (fun j -> Term.elem "item" [ Term.text (string_of_int j) ])
            @ [ Term.elem "item" [ Term.text "needle" ] ])
        in
        Store.add_doc (Node.store n) "/data" data;
        Store.add_doc (Node.store n) "/seen" (Term.elem ~ord:Term.Unordered "seen" []);
        Network.add_node_exn net n;
        n)
  in
  for r = 1 to pulses do
    Network.run net ~until:(r * 10);
    List.iteri
      (fun i _ -> Network.inject net ~to_:(host i) ~label:"pulse" (Term.int r))
      nodes
  done;
  let clock = Network.run_until_quiet net () in
  let s = Network.transport_stats net in
  {
    t_domains = domains;
    t_firings = List.fold_left (fun acc n -> acc + Node.firings n) 0 nodes;
    t_messages = s.Transport.messages;
    t_bytes = s.Transport.bytes;
    t_clock = clock;
    t_rounds = Network.window_rounds net;
    t_crossings = Network.window_crossings net;
    t_wall_ms = 0.;
  }

(* ---- JSON emission (hand-rolled; no deps) ---- *)

let obj fields = "{" ^ String.concat ", " fields ^ "}"
let arr elems = "[" ^ String.concat ", " elems ^ "]"
let fi k v = Printf.sprintf "%S: %d" k v
let ff k v = Printf.sprintf "%S: %.3f" k v

let run ~smoke () =
  let hosts, pulses, doc_items = if smoke then (4, 25, 60) else (8, 150, 400) in
  let tiers = if smoke then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "@.# Multicore scale-out benchmarks%s@." (if smoke then " (smoke)" else "");
  let rows =
    List.map
      (fun domains ->
        let row, ms = wall_ms (fun () -> run_tier ~hosts ~pulses ~doc_items ~domains) in
        { row with t_wall_ms = ms })
      tiers
  in
  (* differential pin before any number is reported: every sharded tier
     must reproduce the sequential run exactly *)
  let base = List.hd rows in
  List.iter
    (fun r ->
      if
        r.t_firings <> base.t_firings || r.t_messages <> base.t_messages
        || r.t_bytes <> base.t_bytes || r.t_clock <> base.t_clock
      then
        failwith
          (Printf.sprintf
             "par bench: %d-domain run diverged from sequential (firings %d/%d, messages \
              %d/%d, bytes %d/%d, clock %d/%d)"
             r.t_domains r.t_firings base.t_firings r.t_messages base.t_messages r.t_bytes
             base.t_bytes r.t_clock base.t_clock))
    rows;
  if base.t_firings <> hosts * pulses then
    failwith
      (Printf.sprintf "par bench: expected %d firings, got %d" (hosts * pulses) base.t_firings);
  let speedup r = base.t_wall_ms /. Float.max r.t_wall_ms 0.001 in
  let events_per_sec r =
    float_of_int (hosts * pulses) /. Float.max (r.t_wall_ms /. 1000.) 1e-6
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "%d hosts x %d pulses, %d-item condition scans, sharded over domains (%d cores)"
         hosts pulses doc_items cores)
    ~header:
      [ "domains"; "wall ms"; "events/s"; "speedup"; "windows"; "crossings"; "messages" ]
    (List.map
       (fun r ->
         [
           string_of_int r.t_domains; Util.f1 r.t_wall_ms; Util.si (int_of_float (events_per_sec r));
           Util.f2 (speedup r); string_of_int r.t_rounds; Util.si r.t_crossings;
           Util.si r.t_messages;
         ])
       rows);
  let speedup_4 =
    match List.find_opt (fun r -> r.t_domains = 4) rows with
    | Some r -> speedup r
    | None -> 1.0
  in
  let json =
    obj
      [
        Printf.sprintf "%S: %s" "smoke" (string_of_bool smoke);
        fi "hosts" hosts;
        fi "pulses" pulses;
        fi "doc_items" doc_items;
        fi "cores" cores;
        ff "speedup_4_domains" speedup_4;
        Printf.sprintf "%S: %s" "tiers"
          (arr
             (List.map
                (fun r ->
                  obj
                    [
                      fi "domains" r.t_domains;
                      ff "wall_ms" r.t_wall_ms;
                      ff "events_per_sec" (events_per_sec r);
                      ff "speedup" (speedup r);
                      fi "window_rounds" r.t_rounds;
                      fi "window_crossings" r.t_crossings;
                      fi "firings" r.t_firings;
                      fi "messages" r.t_messages;
                      fi "bytes" r.t_bytes;
                      fi "sim_clock_ms" r.t_clock;
                    ])
                rows));
      ]
  in
  let oc = open_out "BENCH_par.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Fmt.pr "@.wrote BENCH_par.json@."
