(* Hot-path indexing benchmarks (the perf companion of HACKING.md
   "Performance architecture"): label dispatch vs full rule scan,
   term-index-pruned matching vs full traversal, and memoized store
   queries vs fresh evaluation.  Prints tables and emits machine-readable
   BENCH_index.json.  [~smoke] runs a fast subset (wired into
   `dune runtest`) that additionally checks indexed = naive answers. *)

open Xchange

let null_ops =
  {
    Action.update = (fun _ -> Ok 0);
    txn_update = (fun _ -> Ok 0);
    send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
    log = (fun _ -> ());
    now = (fun () -> 0);
    checkpoint = (fun () -> fun () -> ());
  }

let empty_env = Condition.env_of_docs []

(* Sys.time has coarse resolution; keep ratios finite on tiny smoke runs *)
let speedup naive indexed = naive /. Float.max indexed 0.001

(* ---- event dispatch: n rules, each on its own label ---- *)

let dispatch_case ~rules:n ~events:m =
  let rules =
    List.init n (fun i ->
        Eca.make ~name:(Printf.sprintf "r%d" i)
          ~on:(Event_query.on ~label:(Printf.sprintf "l%d" i) (Qterm.var "X"))
          Action.Nop)
  in
  let ruleset = Ruleset.make ~rules "bench" in
  let events =
    List.init m (fun j ->
        Event.make ~occurred_at:(j + 1) ~label:(Printf.sprintf "l%d" (j mod n)) (Term.int j))
  in
  let run index =
    let engine = Engine.create_exn ~index ruleset in
    Util.time_ms (fun () ->
        List.fold_left
          (fun acc ev ->
            acc
            + List.length
                (Engine.handle_event engine ~env:empty_env ~ops:null_ops ev).Engine.firings)
          0 events)
  in
  let fired_indexed, indexed_ms = run true in
  let fired_naive, naive_ms = run false in
  if fired_indexed <> fired_naive then
    failwith
      (Printf.sprintf "dispatch bench: %d indexed firings vs %d naive" fired_indexed fired_naive);
  (n, m, fired_naive, naive_ms, indexed_ms)

(* ---- document matching: rare-label query over large documents ---- *)

let needle_query = Qterm.el "needle" [ Qterm.pos (Qterm.var "X") ]

let doc_of_nodes nodes =
  let items = max 2 (nodes / 3) in
  Term.elem ~ord:Term.Unordered "db"
    (List.init items (fun i ->
         if i mod 500 = 250 then Term.elem "needle" [ Term.text (Printf.sprintf "n%d" i) ]
         else Term.elem "item" [ Term.elem "name" [ Term.text (Printf.sprintf "p%d" (i mod 97)) ] ]))

let doc_match_case ~nodes ~queries =
  let doc = doc_of_nodes nodes in
  let naive_answers, naive_ms =
    Util.time_ms (fun () ->
        let last = ref [] in
        for _ = 1 to queries do
          last := Simulate.matches_anywhere needle_query doc
        done;
        !last)
  in
  let index, build_ms = Util.time_ms (fun () -> Term_index.build doc) in
  let indexed_answers, indexed_ms =
    Util.time_ms (fun () ->
        let last = ref [] in
        for _ = 1 to queries do
          last := Simulate.matches_anywhere ~index needle_query doc
        done;
        !last)
  in
  if not (List.equal Subst.equal naive_answers indexed_answers) then
    failwith "doc-match bench: indexed answers differ from naive";
  (Term_index.nodes index, queries, List.length naive_answers, naive_ms, build_ms, indexed_ms)

(* ---- store query cache: repeated queries over an unchanged doc ---- *)

let cache_case ~nodes ~repeats =
  let store = Store.create () in
  Store.add_doc store "/db" (doc_of_nodes nodes);
  let doc = Option.get (Store.doc store "/db") in
  let naive_answers, naive_ms =
    Util.time_ms (fun () ->
        let last = ref [] in
        for _ = 1 to repeats do
          last := Simulate.matches_anywhere needle_query doc
        done;
        !last)
  in
  let cached_answers, cached_ms =
    Util.time_ms (fun () ->
        let last = ref [] in
        for _ = 1 to repeats do
          last := Store.query store ~doc:"/db" needle_query
        done;
        !last)
  in
  if not (List.equal Subst.equal naive_answers cached_answers) then
    failwith "cache bench: cached answers differ from naive";
  let st = Store.stats store in
  ( nodes,
    repeats,
    naive_ms,
    cached_ms,
    st.Store.query_cache_hits,
    st.Store.query_cache_misses )

(* ---- JSON emission (hand-rolled; no deps) ---- *)

let obj fields = "{" ^ String.concat ", " fields ^ "}"
let arr elems = "[" ^ String.concat ", " elems ^ "]"
let fi k v = Printf.sprintf "%S: %d" k v
let ff k v = Printf.sprintf "%S: %.3f" k v

let run ~smoke () =
  let dispatch_sizes, doc_sizes, cache_spec =
    if smoke then ([ (10, 200); (100, 200) ], [ (1_000, 5) ], (1_000, 50))
    else
      ( [ (10, 5_000); (100, 5_000); (1_000, 5_000) ],
        [ (1_000, 20); (10_000, 20); (100_000, 20) ],
        (10_000, 200) )
  in
  Obs.Profile.reset ();
  Fmt.pr "@.# Hot-path indexing benchmarks%s@." (if smoke then " (smoke)" else "");

  let dispatch =
    Obs.Profile.phase "dispatch" (fun () ->
        List.map (fun (n, m) -> dispatch_case ~rules:n ~events:m) dispatch_sizes)
  in
  Util.print_table ~title:"event dispatch: full scan vs label table"
    ~header:[ "rules"; "events"; "firings"; "scan ms"; "indexed ms"; "speedup" ]
    (List.map
       (fun (n, m, fired, naive, indexed) ->
         [
           string_of_int n; Util.si m; Util.si fired; Util.f2 naive; Util.f2 indexed;
           Util.f1 (speedup naive indexed) ^ "x";
         ])
       dispatch);

  let doc_match =
    Obs.Profile.phase "doc_match" (fun () ->
        List.map (fun (nodes, q) -> doc_match_case ~nodes ~queries:q) doc_sizes)
  in
  Util.print_table ~title:"document matching: full traversal vs term index"
    ~header:[ "nodes"; "queries"; "answers"; "naive ms"; "build ms"; "indexed ms"; "speedup" ]
    (List.map
       (fun (nodes, q, answers, naive, build, indexed) ->
         [
           Util.si nodes; string_of_int q; string_of_int answers; Util.f2 naive;
           Util.f2 build; Util.f2 indexed; Util.f1 (speedup naive indexed) ^ "x";
         ])
       doc_match);

  let nodes, repeats = cache_spec in
  let cache = Obs.Profile.phase "query_cache" (fun () -> [ cache_case ~nodes ~repeats ]) in
  Util.print_table ~title:"store queries: fresh evaluation vs digest-keyed memo"
    ~header:[ "nodes"; "repeats"; "naive ms"; "cached ms"; "hits"; "misses"; "speedup" ]
    (List.map
       (fun (nodes, repeats, naive, cached, hits, misses) ->
         [
           Util.si nodes; string_of_int repeats; Util.f2 naive; Util.f2 cached;
           string_of_int hits; string_of_int misses; Util.f1 (speedup naive cached) ^ "x";
         ])
       cache);

  let json =
    obj
      [
        Printf.sprintf "%S: %s" "smoke" (string_of_bool smoke);
        Printf.sprintf "%S: %s" "dispatch"
          (arr
             (List.map
                (fun (n, m, fired, naive, indexed) ->
                  obj
                    [
                      fi "rules" n; fi "events" m; fi "firings" fired; ff "naive_ms" naive;
                      ff "indexed_ms" indexed; ff "speedup" (speedup naive indexed);
                    ])
                dispatch));
        Printf.sprintf "%S: %s" "doc_match"
          (arr
             (List.map
                (fun (nodes, q, answers, naive, build, indexed) ->
                  obj
                    [
                      fi "nodes" nodes; fi "queries" q; fi "answers" answers;
                      ff "naive_ms" naive; ff "build_ms" build; ff "indexed_ms" indexed;
                      ff "speedup" (speedup naive indexed);
                    ])
                doc_match));
        Printf.sprintf "%S: %s" "query_cache"
          (arr
             (List.map
                (fun (nodes, repeats, naive, cached, hits, misses) ->
                  obj
                    [
                      fi "nodes" nodes; fi "repeats" repeats; ff "naive_ms" naive;
                      ff "cached_ms" cached; fi "hits" hits; fi "misses" misses;
                      ff "speedup" (speedup naive cached);
                    ])
                cache));
        Printf.sprintf "%S: %s" "metrics" (Json.to_string (Obs.Profile.to_json ()));
      ]
  in
  let oc = open_out "BENCH_index.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_index.json@."
