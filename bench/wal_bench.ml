(* Durability benchmarks: write-ahead-log append / decode / physical-
   redo replay throughput, plus end-to-end node recovery (crash + WAL
   replay through the engine).  Before timing, the recovered node is
   asserted identical to its pre-crash self — the differential contract
   test/test_wal.ml drives in anger.  Prints a table and emits
   machine-readable BENCH_wal.json (replay_ms / recover_ms are gated by
   bench/check_regression.ml).

   Under XCHANGE_NO_WAL nodes are amnesic: the codec phases still run
   (the log device itself has no hatch), the recovery phase degrades to
   a no-op and the artifact records [wal_enabled]: false. *)

open Xchange

let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

(* ---- codec workload: alternating event and mutation records ----

   Mutations rotate over [docs] target documents so the redo phase
   measures the WAL replay path, not the asymptotics of appending ever
   more children into one growing term. *)

let docs = 32
let doc_name i = Printf.sprintf "/orders-%d" (i mod docs)

let mk_records n =
  List.init n (fun i ->
      if i mod 2 = 0 then
        Wal.Event
          (Event.make ~id:(i + 1) ~sender:"src.example" ~recipient:"a.example"
             ~received_at:(i + 5) ~occurred_at:i ~label:"order"
             (Term.elem "order"
                [ Term.elem "item" [ Term.text "ball" ]; Term.elem "qty" [ Term.int i ] ]))
      else
        Wal.Update
          (Action.U_insert
             { doc = doc_name i; selector = []; at = None; content = Term.elem "row" [ Term.int i ] }))

(* ---- recovery workload: a live node killed and replayed ---- *)

let counting_rules =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"count"
          ~on:(Event_query.on ~label:"ping" (Qterm.var "E"))
          (Action.insert ~doc:"/seen" (Construct.cel "x" [ Construct.cvar "E" ]));
      ]
    "counting"

let run_recovery ~events =
  Event.reset_ids ();
  Message.reset_ids ();
  let n = node_exn ~snapshot_every:max_int ~host:"a.example" counting_rules in
  Store.add_doc (Node.store n) "/seen" (Term.elem ~ord:Term.Unordered "seen" []);
  Node.checkpoint n ~at:Clock.origin;
  let net = Network.create () in
  Network.add_node_exn net n;
  for i = 1 to events / 10 do
    Network.run net ~until:(i * 10);
    for j = 1 to 10 do
      Network.inject net ~to_:"a.example" ~label:"ping" (Term.elem "p" [ Term.int ((10 * i) + j) ])
    done
  done;
  ignore (Network.run_until_quiet net ());
  let doc () = Xml.to_string (Term.strip_ids (Option.get (Store.doc (Node.store n) "/seen"))) in
  let firings0 = Node.firings n and doc0 = doc () in
  Node.crash n;
  let replayed, ms =
    wall_ms (fun () ->
        match Node.recover n (Network.context_for net n) with
        | Ok r -> r
        | Error e -> failwith ("wal bench: recover failed: " ^ e))
  in
  (* differential pin before the number is reported *)
  if not Escape.no_wal then begin
    if Node.firings n <> firings0 then
      failwith
        (Printf.sprintf "wal bench: recovery diverged (%d firings vs %d)" (Node.firings n)
           firings0);
    if doc () <> doc0 then failwith "wal bench: recovered store differs from pre-crash store"
  end;
  (replayed, ms)

(* ---- JSON emission (hand-rolled; no deps) ---- *)

let obj fields = "{" ^ String.concat ", " fields ^ "}"
let fi k v = Printf.sprintf "%S: %d" k v
let ff k v = Printf.sprintf "%S: %.3f" k v
let fb k v = Printf.sprintf "%S: %s" k (string_of_bool v)

let per_sec n ms = float_of_int n /. Float.max (ms /. 1000.) 1e-6

let run ~smoke () =
  let n_records, events = if smoke then (4000, 600) else (80_000, 6000) in
  Fmt.pr "@.# Durability (write-ahead log) benchmarks%s@." (if smoke then " (smoke)" else "");
  let rs = mk_records n_records in
  let w = Wal.create () in
  let (), append_ms = wall_ms (fun () -> List.iter (Wal.append w) rs) in
  let bytes = Wal.size_bytes w in
  let reloaded = Wal.of_string (Wal.contents w) in
  let decoded, decode_ms = wall_ms (fun () -> Wal.records reloaded) in
  (match decoded with
  | ds, Wal.Clean when List.length ds = n_records -> ()
  | ds, Wal.Clean ->
      failwith (Printf.sprintf "wal bench: decoded %d of %d records" (List.length ds) n_records)
  | _, Wal.Corrupt e -> failwith ("wal bench: clean log decoded as corrupt: " ^ e));
  let store = Store.create () in
  for i = 0 to docs - 1 do
    Store.add_doc store (doc_name i) (Term.elem ~ord:Term.Unordered "orders" [])
  done;
  let replayed_updates, replay_ms =
    wall_ms (fun () ->
        match Wal.replay_store reloaded store with
        | Ok n -> n
        | Error e -> failwith ("wal bench: replay_store failed: " ^ e))
  in
  if replayed_updates <> n_records / 2 then
    failwith
      (Printf.sprintf "wal bench: replayed %d of %d mutations" replayed_updates (n_records / 2));
  let recovered, recover_ms = run_recovery ~events in
  Util.print_table
    ~title:
      (Printf.sprintf "%d-record log (%d KiB), %d-event node recovery" n_records (bytes / 1024)
         events)
    ~header:[ "phase"; "wall ms"; "records/s" ]
    [
      [ "append"; Util.f1 append_ms; Util.si (int_of_float (per_sec n_records append_ms)) ];
      [ "decode"; Util.f1 decode_ms; Util.si (int_of_float (per_sec n_records decode_ms)) ];
      [ "replay (redo)"; Util.f1 replay_ms; Util.si (int_of_float (per_sec replayed_updates replay_ms)) ];
      [ "recover (node)"; Util.f1 recover_ms; Util.si (int_of_float (per_sec (max recovered 1) recover_ms)) ];
    ];
  let json =
    obj
      [
        fb "smoke" smoke;
        fb "wal_enabled" (not Escape.no_wal);
        fi "records" n_records;
        fi "events" events;
        fi "bytes" bytes;
        ff "append_ms" append_ms;
        ff "decode_ms" decode_ms;
        ff "replay_ms" replay_ms;
        ff "recover_ms" recover_ms;
        fi "updates_replayed" replayed_updates;
        fi "records_recovered" recovered;
        ff "replay_updates_per_sec" (per_sec replayed_updates replay_ms);
        ff "decode_records_per_sec" (per_sec n_records decode_ms);
      ]
  in
  let oc = open_out "BENCH_wal.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Fmt.pr "@.wrote BENCH_wal.json@."
