(* Cross-rule sharing benchmarks (the perf companion of HACKING.md
   "Cross-rule sharing"): ruleset-size sweep comparing atomic matcher
   work with the shared alpha network against per-rule matchers
   (XCHANGE_NO_SHARE semantics, here [~share:false]).

   Two overlap profiles bracket the real-world range: [high] draws every
   rule's event pattern from a small pool (large rule bases are mostly
   variations on few patterns — the Rete assumption), [low] gives every
   rule its own label so nothing can be shared.  The headline metric is
   {e atomic matcher runs per event}: with sharing it should track the
   number of distinct patterns an event can touch (flat in ruleset
   size), without sharing it tracks the number of subscribed rules.
   Prints tables and emits machine-readable BENCH_rules.json.  [~smoke]
   runs a fast subset (wired into `dune runtest`) that additionally
   checks shared firings equal unshared firings. *)

open Xchange

let null_ops =
  {
    Action.update = (fun _ -> Ok 0);
    txn_update = (fun _ -> Ok 0);
    send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
    log = (fun _ -> ());
    now = (fun () -> 0);
    checkpoint = (fun () -> fun () -> ());
  }

let empty_env = Condition.env_of_docs []

(* [high] overlap: patterns cycle through a small pool, so [rules/pool]
   rules subscribe to each distinct pattern; [low]: one pattern per rule *)
let pool_size = 16

(* the label carries the distinctness: atoms differing only in label
   already digest apart, so the payload pattern can stay constant *)
let pattern = Qterm.el "rec" [ Qterm.pos (Qterm.el "k" [ Qterm.pos (Qterm.var "X") ]) ]

let rules_for ~overlap n =
  let distinct = match overlap with `High -> pool_size | `Low -> n in
  List.init n (fun i ->
      Eca.make ~name:(Printf.sprintf "r%d" i)
        ~on:(Event_query.on ~label:(Printf.sprintf "l%d" (i mod distinct)) pattern)
        Action.Nop)

let events_for ~overlap ~rules:n m =
  let distinct = match overlap with `High -> pool_size | `Low -> n in
  List.init m (fun j ->
      Event.make ~occurred_at:(j + 1)
        ~label:(Printf.sprintf "l%d" (j mod distinct))
        (Term.elem "rec" [ Term.elem "k" [ Term.text (Printf.sprintf "v%d" j) ] ]))

type row = {
  rules : int;
  overlap : string;
  events : int;
  firings : int;
  distinct_nodes : int;
  registrations : int;
  hit_rate : float;
  runs_shared : int;  (* atomic matcher executions over the stream *)
  runs_unshared : int;
  shared_ms : float;
  unshared_ms : float;
}

let case ~overlap ~rules:n ~events:m =
  let ruleset = Ruleset.make ~rules:(rules_for ~overlap n) "bench" in
  let events = events_for ~overlap ~rules:n m in
  let run share =
    let engine = Engine.create_exn ~share ruleset in
    Incremental.reset_atomic_matcher_runs ();
    let fired, ms =
      Util.time_ms (fun () ->
          List.fold_left
            (fun acc ev ->
              acc
              + List.length
                  (Engine.handle_event engine ~env:empty_env ~ops:null_ops ev).Engine.firings)
            0 events)
    in
    (fired, Incremental.atomic_matcher_runs (), ms, Engine.alpha_stats engine)
  in
  let fired_s, runs_shared, shared_ms, alpha = run true in
  let fired_u, runs_unshared, unshared_ms, _ = run false in
  if fired_s <> fired_u then
    failwith
      (Printf.sprintf "rules bench: %d shared firings vs %d unshared" fired_s fired_u);
  let alpha = Option.get alpha in
  let hit_rate =
    let total = alpha.Alpha.evaluations + alpha.Alpha.hits in
    if total = 0 then 0. else float_of_int alpha.Alpha.hits /. float_of_int total
  in
  {
    rules = n;
    overlap = (match overlap with `High -> "high" | `Low -> "low");
    events = m;
    firings = fired_u;
    distinct_nodes = alpha.Alpha.distinct_nodes;
    registrations = alpha.Alpha.registrations;
    hit_rate;
    runs_shared;
    runs_unshared;
    shared_ms;
    unshared_ms;
  }

let per_event runs m = float_of_int runs /. float_of_int (max m 1)

let ratio r =
  float_of_int r.runs_unshared /. float_of_int (max r.runs_shared 1)

(* ---- JSON emission (hand-rolled; no deps) ---- *)

let obj fields = "{" ^ String.concat ", " fields ^ "}"
let arr elems = "[" ^ String.concat ", " elems ^ "]"
let fi k v = Printf.sprintf "%S: %d" k v
let ff k v = Printf.sprintf "%S: %.3f" k v
let fs k v = Printf.sprintf "%S: %S" k v

let run ~smoke () =
  let sizes = if smoke then [ 100; 400 ] else [ 100; 1_000; 10_000 ] in
  let m = if smoke then 60 else 100 in
  Obs.Profile.reset ();
  Fmt.pr "@.# Cross-rule sharing benchmarks%s@." (if smoke then " (smoke)" else "");
  let rows =
    Obs.Profile.phase "rules_sweep" (fun () ->
        List.concat_map
          (fun n ->
            [ case ~overlap:`High ~rules:n ~events:m; case ~overlap:`Low ~rules:n ~events:m ])
          sizes)
  in
  Util.print_table ~title:"atomic matcher runs: shared alpha vs per-rule"
    ~header:
      [
        "rules"; "overlap"; "events"; "nodes"; "regs"; "hit rate"; "runs/ev shared";
        "runs/ev unshared"; "ratio"; "shared ms"; "unshared ms";
      ]
    (List.map
       (fun r ->
         [
           Util.si r.rules; r.overlap; string_of_int r.events;
           string_of_int r.distinct_nodes; Util.si r.registrations;
           Printf.sprintf "%.0f%%" (100. *. r.hit_rate);
           Util.f1 (per_event r.runs_shared r.events);
           Util.f1 (per_event r.runs_unshared r.events);
           Util.f1 (ratio r) ^ "x"; Util.f2 r.shared_ms; Util.f2 r.unshared_ms;
         ])
       rows);
  let json =
    obj
      [
        Printf.sprintf "%S: %s" "smoke" (string_of_bool smoke);
        Printf.sprintf "%S: %s" "sweep"
          (arr
             (List.map
                (fun r ->
                  obj
                    [
                      fi "rules" r.rules; fs "overlap" r.overlap; fi "events" r.events;
                      fi "firings" r.firings; fi "distinct_nodes" r.distinct_nodes;
                      fi "registrations" r.registrations; ff "hit_rate" r.hit_rate;
                      ff "alpha_evals_per_event_shared" (per_event r.runs_shared r.events);
                      ff "evals_per_event_unshared" (per_event r.runs_unshared r.events);
                      ff "sharing_ratio" (ratio r); ff "shared_run_ms" r.shared_ms;
                      ff "unshared_run_ms" r.unshared_ms;
                    ])
                rows));
        Printf.sprintf "%S: %s" "metrics" (Json.to_string (Obs.Profile.to_json ()));
      ]
  in
  let oc = open_out "BENCH_rules.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_rules.json@."
