(* Cross-rule sharing benchmarks (the perf companion of HACKING.md
   "Cross-rule sharing"): ruleset-size sweeps comparing shared-network
   work against per-rule evaluation (XCHANGE_NO_SHARE semantics, here
   [~share:false]) — the alpha network on atomic matcher runs, the beta
   network on composite join pairs probed.

   Two overlap profiles bracket the real-world range: [high] draws every
   rule's event pattern from a small pool (large rule bases are mostly
   variations on few patterns — the Rete assumption), [low] gives every
   rule its own label so nothing can be shared.  The headline metrics
   are {e atomic matcher runs per event} (alpha) and {e join pairs
   probed per event} (beta): with sharing both should track the number
   of distinct patterns an event can touch (flat in ruleset size),
   without sharing they track the number of subscribed rules.  The
   composite sweep gives every rule its own variable names, so sharing
   only happens through the canonicalization rename.  Prints tables and
   emits machine-readable BENCH_rules.json.  [~smoke] runs a fast
   subset (wired into `dune runtest`); every case checks shared firings
   equal unshared firings, and the full composite sweep additionally
   asserts the >=20x probe reduction at 10^4 heavily-overlapping
   rules. *)

open Xchange

let null_ops =
  {
    Action.update = (fun _ -> Ok 0);
    txn_update = (fun _ -> Ok 0);
    send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
    log = (fun _ -> ());
    now = (fun () -> 0);
    checkpoint = (fun () -> fun () -> ());
  }

let empty_env = Condition.env_of_docs []

(* [high] overlap: patterns cycle through a small pool, so [rules/pool]
   rules subscribe to each distinct pattern; [low]: one pattern per rule *)
let pool_size = 16

(* the label carries the distinctness: atoms differing only in label
   already digest apart, so the payload pattern can stay constant *)
let pattern = Qterm.el "rec" [ Qterm.pos (Qterm.el "k" [ Qterm.pos (Qterm.var "X") ]) ]

let rules_for ~overlap n =
  let distinct = match overlap with `High -> pool_size | `Low -> n in
  List.init n (fun i ->
      Eca.make ~name:(Printf.sprintf "r%d" i)
        ~on:(Event_query.on ~label:(Printf.sprintf "l%d" (i mod distinct)) pattern)
        Action.Nop)

let events_for ~overlap ~rules:n m =
  let distinct = match overlap with `High -> pool_size | `Low -> n in
  List.init m (fun j ->
      Event.make ~occurred_at:(j + 1)
        ~label:(Printf.sprintf "l%d" (j mod distinct))
        (Term.elem "rec" [ Term.elem "k" [ Term.text (Printf.sprintf "v%d" j) ] ]))

type row = {
  rules : int;
  overlap : string;
  events : int;
  firings : int;
  distinct_nodes : int;
  registrations : int;
  hit_rate : float;
  runs_shared : int;  (* atomic matcher executions over the stream *)
  runs_unshared : int;
  shared_ms : float;
  unshared_ms : float;
}

let case ~overlap ~rules:n ~events:m =
  let ruleset = Ruleset.make ~rules:(rules_for ~overlap n) "bench" in
  let events = events_for ~overlap ~rules:n m in
  let run share =
    let engine = Engine.create_exn ~share ruleset in
    Incremental.reset_atomic_matcher_runs ();
    let fired, ms =
      Util.time_ms (fun () ->
          List.fold_left
            (fun acc ev ->
              acc
              + List.length
                  (Engine.handle_event engine ~env:empty_env ~ops:null_ops ev).Engine.firings)
            0 events)
    in
    (fired, Incremental.atomic_matcher_runs (), ms, Engine.alpha_stats engine)
  in
  let fired_s, runs_shared, shared_ms, alpha = run true in
  let fired_u, runs_unshared, unshared_ms, _ = run false in
  if fired_s <> fired_u then
    failwith
      (Printf.sprintf "rules bench: %d shared firings vs %d unshared" fired_s fired_u);
  let alpha = Option.get alpha in
  let hit_rate =
    let total = alpha.Alpha.evaluations + alpha.Alpha.hits in
    if total = 0 then 0. else float_of_int alpha.Alpha.hits /. float_of_int total
  in
  {
    rules = n;
    overlap = (match overlap with `High -> "high" | `Low -> "low");
    events = m;
    firings = fired_u;
    distinct_nodes = alpha.Alpha.distinct_nodes;
    registrations = alpha.Alpha.registrations;
    hit_rate;
    runs_shared;
    runs_unshared;
    shared_ms;
    unshared_ms;
  }

let per_event runs m = float_of_int runs /. float_of_int (max m 1)

let ratio r =
  float_of_int r.runs_unshared /. float_of_int (max r.runs_shared 1)

(* ---- composite sweep: shared beta vs per-rule join pipelines --------- *)

let comp_pool = 16

let comp_rules ~kind ~overlap n =
  let distinct = match overlap with `High -> comp_pool | `Low -> n in
  List.init n (fun i ->
      (* per-rule variable names: sharing must come from the
         canonicalization rename, never from lexical luck *)
      let atom l v = Event_query.on ~label:l (Qterm.el "rec" [ Qterm.pos (Qterm.var v) ]) in
      let q1 = atom (Printf.sprintf "a%d" (i mod distinct)) (Printf.sprintf "L%d" i)
      and q2 = atom (Printf.sprintf "b%d" (i mod distinct)) (Printf.sprintf "R%d" i) in
      let on =
        match kind with
        | `And -> Event_query.conj [ q1; q2 ]
        | `Seq -> Event_query.seq [ q1; q2 ]
      in
      Eca.make ~name:(Printf.sprintf "r%d" i) ~on Action.Nop)

let comp_events ~overlap ~rules:n m =
  let distinct = match overlap with `High -> comp_pool | `Low -> n in
  List.init m (fun j ->
      let side = if j mod 2 = 0 then "a" else "b" in
      Event.make ~occurred_at:(j + 1)
        ~label:(Printf.sprintf "%s%d" side (j / 2 mod distinct))
        (Term.elem "rec" [ Term.text (Printf.sprintf "v%d" j) ]))

type comp_row = {
  c_kind : string;
  c_rules : int;
  c_overlap : string;
  c_events : int;
  c_firings : int;
  c_nodes : int;  (* distinct shared pipelines *)
  c_registrations : int;
  c_hit_rate : float;
  c_joins_shared : int;  (* join pairs probed over the stream *)
  c_joins_unshared : int;
  c_shared_ms : float;
  c_unshared_ms : float;
}

let comp_case ~kind ~overlap ~rules:n ~events:m =
  let ruleset = Ruleset.make ~rules:(comp_rules ~kind ~overlap n) "bench" in
  let events = comp_events ~overlap ~rules:n m in
  let run share =
    let engine = Engine.create_exn ~share ruleset in
    let fired, ms =
      Util.time_ms (fun () ->
          List.fold_left
            (fun acc ev ->
              acc
              + List.length
                  (Engine.handle_event engine ~env:empty_env ~ops:null_ops ev).Engine.firings)
            0 events)
    in
    (fired, (Engine.join_stats engine).Incremental.pairs_probed, ms, Engine.beta_stats engine)
  in
  let fired_s, joins_shared, shared_ms, beta = run true in
  let fired_u, joins_unshared, unshared_ms, _ = run false in
  if fired_s <> fired_u then
    failwith
      (Printf.sprintf "composite bench: %d shared firings vs %d unshared" fired_s fired_u);
  let beta = Option.get beta in
  let hit_rate =
    let total = beta.Beta.steps + beta.Beta.hits in
    if total = 0 then 0. else float_of_int beta.Beta.hits /. float_of_int total
  in
  {
    c_kind = (match kind with `And -> "and" | `Seq -> "seq");
    c_rules = n;
    c_overlap = (match overlap with `High -> "high" | `Low -> "low");
    c_events = m;
    c_firings = fired_u;
    c_nodes = beta.Beta.distinct_nodes;
    c_registrations = beta.Beta.registrations;
    c_hit_rate = hit_rate;
    c_joins_shared = joins_shared;
    c_joins_unshared = joins_unshared;
    c_shared_ms = shared_ms;
    c_unshared_ms = unshared_ms;
  }

let comp_ratio r =
  float_of_int r.c_joins_unshared /. float_of_int (max r.c_joins_shared 1)

(* ---- JSON emission (hand-rolled; no deps) ---- *)

let obj fields = "{" ^ String.concat ", " fields ^ "}"
let arr elems = "[" ^ String.concat ", " elems ^ "]"
let fi k v = Printf.sprintf "%S: %d" k v
let ff k v = Printf.sprintf "%S: %.3f" k v
let fs k v = Printf.sprintf "%S: %S" k v

let run ~smoke () =
  let sizes = if smoke then [ 100; 400 ] else [ 100; 1_000; 10_000 ] in
  let m = if smoke then 60 else 100 in
  Obs.Profile.reset ();
  Fmt.pr "@.# Cross-rule sharing benchmarks%s@." (if smoke then " (smoke)" else "");
  let rows =
    Obs.Profile.phase "rules_sweep" (fun () ->
        List.concat_map
          (fun n ->
            [ case ~overlap:`High ~rules:n ~events:m; case ~overlap:`Low ~rules:n ~events:m ])
          sizes)
  in
  Util.print_table ~title:"atomic matcher runs: shared alpha vs per-rule"
    ~header:
      [
        "rules"; "overlap"; "events"; "nodes"; "regs"; "hit rate"; "runs/ev shared";
        "runs/ev unshared"; "ratio"; "shared ms"; "unshared ms";
      ]
    (List.map
       (fun r ->
         [
           Util.si r.rules; r.overlap; string_of_int r.events;
           string_of_int r.distinct_nodes; Util.si r.registrations;
           Printf.sprintf "%.0f%%" (100. *. r.hit_rate);
           Util.f1 (per_event r.runs_shared r.events);
           Util.f1 (per_event r.runs_unshared r.events);
           Util.f1 (ratio r) ^ "x"; Util.f2 r.shared_ms; Util.f2 r.unshared_ms;
         ])
       rows);
  let comp_rows =
    Obs.Profile.phase "composite_sweep" (fun () ->
        List.concat_map
          (fun n ->
            List.concat_map
              (fun kind ->
                [
                  comp_case ~kind ~overlap:`High ~rules:n ~events:m;
                  comp_case ~kind ~overlap:`Low ~rules:n ~events:m;
                ])
              [ `Seq; `And ])
          sizes)
  in
  (* the headline claim: at 10^4 heavily-overlapping rules the shared
     beta network probes at least 20x fewer join pairs per event *)
  if not smoke then
    List.iter
      (fun r ->
        if r.c_rules >= 10_000 && String.equal r.c_overlap "high" && comp_ratio r < 20. then
          failwith
            (Printf.sprintf "composite bench: sharing ratio %.1fx < 20x at %d %s rules"
               (comp_ratio r) r.c_rules r.c_kind))
      comp_rows;
  Util.print_table ~title:"join pairs probed: shared beta vs per-rule pipelines"
    ~header:
      [
        "kind"; "rules"; "overlap"; "events"; "nodes"; "regs"; "hit rate";
        "joins/ev shared"; "joins/ev unshared"; "ratio"; "shared ms"; "unshared ms";
      ]
    (List.map
       (fun r ->
         [
           r.c_kind; Util.si r.c_rules; r.c_overlap; string_of_int r.c_events;
           string_of_int r.c_nodes; Util.si r.c_registrations;
           Printf.sprintf "%.0f%%" (100. *. r.c_hit_rate);
           Util.f1 (per_event r.c_joins_shared r.c_events);
           Util.f1 (per_event r.c_joins_unshared r.c_events);
           Util.f1 (comp_ratio r) ^ "x"; Util.f2 r.c_shared_ms; Util.f2 r.c_unshared_ms;
         ])
       comp_rows);
  let json =
    obj
      [
        Printf.sprintf "%S: %s" "smoke" (string_of_bool smoke);
        Printf.sprintf "%S: %s" "sweep"
          (arr
             (List.map
                (fun r ->
                  obj
                    [
                      fi "rules" r.rules; fs "overlap" r.overlap; fi "events" r.events;
                      fi "firings" r.firings; fi "distinct_nodes" r.distinct_nodes;
                      fi "registrations" r.registrations; ff "hit_rate" r.hit_rate;
                      ff "alpha_evals_per_event_shared" (per_event r.runs_shared r.events);
                      ff "evals_per_event_unshared" (per_event r.runs_unshared r.events);
                      ff "sharing_ratio" (ratio r); ff "shared_run_ms" r.shared_ms;
                      ff "unshared_run_ms" r.unshared_ms;
                    ])
                rows));
        Printf.sprintf "%S: %s" "composite_sweep"
          (arr
             (List.map
                (fun r ->
                  obj
                    [
                      fs "kind" r.c_kind; fi "rules" r.c_rules; fs "overlap" r.c_overlap;
                      fi "events" r.c_events; fi "firings" r.c_firings;
                      fi "distinct_nodes" r.c_nodes; fi "registrations" r.c_registrations;
                      ff "hit_rate" r.c_hit_rate;
                      ff "beta_joins_per_event_shared" (per_event r.c_joins_shared r.c_events);
                      ff "joins_per_event_unshared" (per_event r.c_joins_unshared r.c_events);
                      ff "sharing_ratio" (comp_ratio r); ff "shared_run_ms" r.c_shared_ms;
                      ff "unshared_run_ms" r.c_unshared_ms;
                    ])
                comp_rows));
        Printf.sprintf "%S: %s" "metrics" (Json.to_string (Obs.Profile.to_json ()));
      ]
  in
  let oc = open_out "BENCH_rules.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote BENCH_rules.json@."
