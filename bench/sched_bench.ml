(* Scheduler / faulty-network benchmarks: the same reactive workload
   (remote-condition probes + a push pipeline + a poller, all on the one
   discrete-event timeline) replayed under several fault profiles.
   Prints a table and emits machine-readable BENCH_sched.json with the
   traffic and latency accounting per profile.  [~smoke] runs a fast
   subset (wired into `dune runtest`). *)

open Xchange

type profile = {
  pname : string;
  faults : Transport.faults;
}

let profiles =
  [
    { pname = "clean"; faults = Transport.no_faults };
    { pname = "lossy-10"; faults = Transport.fault_profile ~seed:1 ~drop_rate:0.1 () };
    {
      pname = "chaotic";
      faults = Transport.fault_profile ~seed:2 ~drop_rate:0.15 ~dup_rate:0.15 ~max_jitter:25 ();
    };
  ]

let probe_rules () =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"check" ~on:(Event_query.on ~label:"probe" (Qterm.var "E"))
          ~if_:
            (Condition.In
               ( Condition.Remote "data.example/catalog",
                 Qterm.el "product" [ Qterm.pos (Qterm.var "P") ] ))
          (Action.insert ~doc:"/hits" (Construct.cel "hit" [ Construct.cvar "P" ]));
      ]
    "asker"

let forward_rules () =
  Ruleset.make
    ~rules:
      [
        Eca.make ~name:"fwd"
          ~on:(Event_query.on ~label:"order" (Qterm.var "E"))
          (Action.raise_event ~to_:"sink.example" ~label:"pick" (Construct.cel "pick" []));
      ]
    "shop"

type row = {
  r_profile : string;
  r_probes : int;
  r_reactions : int;
  r_messages : int;
  r_bytes : int;
  r_dropped : int;
  r_duplicated : int;
  r_retries : int;
  r_timeouts : int;
  r_mean_rtt : float;
  r_max_rtt : int;
  r_clock : int;
  r_occurrences : int;
  r_max_queue : int;
}

let run_profile ~probes ~orders p =
  (* fault coins hash message ids: reset counters so each profile sees
     the same id stream and runs are replayable in isolation *)
  Message.reset_ids ();
  Event.reset_ids ();
  let net = Network.create ~faults:p.faults () in
  let asker = node_exn ~host:"asker.example" (probe_rules ()) in
  Store.add_doc (Node.store asker) "/hits" (Term.elem ~ord:Term.Unordered "hits" []);
  let data = node_exn ~host:"data.example" (Ruleset.make "data") in
  Store.add_doc (Node.store data) "/catalog"
    (Term.elem ~ord:Term.Unordered "catalog" [ Term.elem "product" [ Term.text "ball" ] ]);
  let shop = node_exn ~host:"shop.example" (forward_rules ()) in
  let sink = node_exn ~host:"sink.example" (Ruleset.make "sink") in
  List.iter (Network.add_node_exn net) [ asker; data; shop; sink ];
  ignore (Poll.attach net ~poller:"sink.example" ~target:"data.example/catalog" ~period:50);
  for i = 1 to probes do
    Network.inject net ~to_:"asker.example" ~label:"probe" (Term.int i)
  done;
  for i = 1 to orders do
    Network.inject net ~to_:"shop.example" ~label:"order" (Term.int i)
  done;
  (* a fixed observation window so the (non-holding) poll ticker gets
     its rounds in, then drain the in-flight tail *)
  Network.run net ~until:300;
  let clock = Network.run_until_quiet net ~limit:2_000 () in
  let s = Network.transport_stats net in
  let ns = Network.node_stats net "asker.example" in
  let ss = Network.sched_stats net in
  let reactions =
    List.length (Term.children (Option.get (Store.doc (Node.store asker) "/hits")))
  in
  {
    r_profile = p.pname;
    r_probes = probes;
    r_reactions = reactions;
    r_messages = s.Transport.messages;
    r_bytes = s.Transport.bytes;
    r_dropped = s.Transport.dropped;
    r_duplicated = s.Transport.duplicated;
    r_retries = ns.Network.fetch_retries;
    r_timeouts = ns.Network.fetch_timeouts;
    r_mean_rtt =
      (if ns.Network.fetches_completed = 0 then 0.
       else float_of_int ns.Network.fetch_latency_total /. float_of_int ns.Network.fetches_completed);
    r_max_rtt = ns.Network.fetch_latency_max;
    r_clock = clock;
    r_occurrences = ss.Sched.executed;
    r_max_queue = ss.Sched.max_queue;
  }

(* ---- JSON emission (hand-rolled; no deps) ---- *)

let obj fields = "{" ^ String.concat ", " fields ^ "}"
let arr elems = "[" ^ String.concat ", " elems ^ "]"
let fi k v = Printf.sprintf "%S: %d" k v
let ff k v = Printf.sprintf "%S: %.3f" k v
let fs k v = Printf.sprintf "%S: %S" k v

let run ~smoke () =
  let probes, orders = if smoke then (25, 25) else (400, 400) in
  Obs.Profile.reset ();
  Fmt.pr "@.# Scheduler / degraded-network benchmarks%s@." (if smoke then " (smoke)" else "");
  let rows =
    List.map
      (fun p ->
        let row, ms = Util.time_ms (fun () -> run_profile ~probes ~orders p) in
        (* wall time of the whole replay, virtual time it simulated *)
        Obs.Profile.record ~vt_span:row.r_clock ~name:("profile:" ^ p.pname) ~wall_ms:ms ();
        row)
      profiles
  in
  (* under loss, reactions may trail probes (a condition answered "no
     document" after retries is an honest degraded answer, not a bug);
     the clean profile must react to every probe *)
  (match List.find_opt (fun r -> r.r_profile = "clean") rows with
  | Some r when r.r_reactions <> probes ->
      failwith
        (Printf.sprintf "sched bench: clean profile reacted %d/%d" r.r_reactions probes)
  | _ -> ());
  Util.print_table
    ~title:
      (Printf.sprintf
         "one timeline, %d remote-condition probes + %d pushed orders + a 50ms poller" probes
         orders)
    ~header:
      [
        "profile"; "reactions"; "messages"; "bytes"; "dropped"; "dup"; "retries"; "timeouts";
        "mean rtt ms"; "max rtt"; "sim ms"; "occurrences"; "max queue";
      ]
    (List.map
       (fun r ->
         [
           r.r_profile; Printf.sprintf "%d/%d" r.r_reactions r.r_probes; Util.si r.r_messages;
           Util.si r.r_bytes; string_of_int r.r_dropped; string_of_int r.r_duplicated;
           string_of_int r.r_retries; string_of_int r.r_timeouts; Util.f1 r.r_mean_rtt;
           string_of_int r.r_max_rtt; string_of_int r.r_clock; Util.si r.r_occurrences;
           string_of_int r.r_max_queue;
         ])
       rows);
  let json =
    obj
      [
        Printf.sprintf "%S: %s" "smoke" (string_of_bool smoke);
        fi "probes" probes;
        fi "orders" orders;
        Printf.sprintf "%S: %s" "profiles"
          (arr
             (List.map
                (fun r ->
                  obj
                    [
                      fs "profile" r.r_profile; fi "reactions" r.r_reactions;
                      fi "messages" r.r_messages; fi "bytes" r.r_bytes; fi "dropped" r.r_dropped;
                      fi "duplicated" r.r_duplicated; fi "fetch_retries" r.r_retries;
                      fi "fetch_timeouts" r.r_timeouts; ff "mean_fetch_rtt_ms" r.r_mean_rtt;
                      fi "max_fetch_rtt_ms" r.r_max_rtt; fi "sim_clock_ms" r.r_clock;
                      fi "occurrences_executed" r.r_occurrences; fi "max_queue" r.r_max_queue;
                    ])
                rows));
        Printf.sprintf "%S: %s" "metrics" (Json.to_string (Obs.Profile.to_json ()));
      ]
  in
  let oc = open_out "BENCH_sched.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Fmt.pr "@.wrote BENCH_sched.json@."
