(* E1..E12 — one experiment per thesis.  The paper is a position paper
   with no tables or figures; each experiment here regenerates the table
   its thesis implies (see DESIGN.md §5 and EXPERIMENTS.md).  All
   experiments are deterministic. *)

open Xchange
open Util

(* A store-backed action host that counts nothing but does the work. *)
let host_ops store sent =
  {
    Action.update = (fun u -> Result.map fst (Store.apply store u));
    txn_update = (fun u -> Result.map fst (Store.apply store u));
    send = (fun ~recipient ~label ~ttl:_ ~delay:_ payload -> sent := (recipient, label, payload) :: !sent);
    log = (fun _ -> ());
    now = (fun () -> 0);
    checkpoint = (fun () -> fun () -> ());
  }

let order_event t i =
  Event.make ~occurred_at:t ~label:"order"
    (Term.elem "order" [ Term.elem "item" [ Term.text (Printf.sprintf "item-%d" i) ] ])

(* ------------------------------------------------------------------ *)
(* E1 / Thesis 1: ECA rules vs production rules                        *)
(* ------------------------------------------------------------------ *)

(* Workload: n orders arrive.  The ECA engine reacts to each order event
   directly.  The production-rule engine cannot see events: orders land
   in an inbox document and the engine re-evaluates its condition over
   the whole inbox on every polling cycle (one cycle per arrival — the
   most favourable ratio for polling). *)
let e1 () =
  let run_eca n =
    let store = Store.create () in
    Store.add_doc store "/done" (Term.elem ~ord:Term.Unordered "done" []);
    let sent = ref [] in
    let rule =
      Eca.make ~name:"process"
        ~on:(Event_query.on ~label:"order" (Qterm.el "order" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "I") ]) ]))
        (Action.insert ~doc:"/done" (Construct.cel "row" [ Construct.cvar "I" ]))
    in
    let engine = Engine.create_exn (Ruleset.make ~rules:[ rule ] "e1") in
    let env = Store.env store in
    let ops = host_ops store sent in
    let (), ms =
      time_ms (fun () ->
          for i = 1 to n do
            ignore (Engine.handle_event engine ~env ~ops (order_event i i))
          done)
    in
    let done_rows = List.length (Term.children (Option.get (Store.doc store "/done"))) in
    (Engine.total_condition_evaluations engine, done_rows, ms)
  in
  let run_production n =
    let store = Store.create () in
    Store.add_doc store "/inbox" (Term.elem ~ord:Term.Unordered "inbox" []);
    Store.add_doc store "/done" (Term.elem ~ord:Term.Unordered "done" []);
    let sent = ref [] in
    let rule =
      {
        Production.name = "process";
        condition = Condition.In (Condition.Local "/inbox", Qterm.el "order" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "I") ]) ]);
        action = Action.insert ~doc:"/done" (Construct.cel "row" [ Construct.cvar "I" ]);
      }
    in
    let engine = Production.create [ rule ] in
    let ops = host_ops store sent in
    let (), ms =
      time_ms (fun () ->
          for i = 1 to n do
            ignore
              (Store.apply store
                 (Action.U_insert
                    {
                      doc = "/inbox";
                      selector = [];
                      at = None;
                      content = Term.elem "order" [ Term.elem "item" [ Term.text (Printf.sprintf "item-%d" i) ] ];
                    }));
            ignore (Production.poll ~env:(Store.env store) ~ops ~procs:(fun _ -> None) engine)
          done)
    in
    let s = Production.stats engine in
    let done_rows = List.length (Term.children (Option.get (Store.doc store "/done"))) in
    (s.Production.condition_evaluations, done_rows, ms)
  in
  let rows =
    List.map
      (fun n ->
        let eca_evals, eca_done, eca_ms = run_eca n in
        let prod_evals, prod_done, prod_ms = run_production n in
        [
          si n; string_of_int eca_evals; string_of_int eca_done; f1 eca_ms;
          string_of_int prod_evals; string_of_int prod_done; f1 prod_ms;
          f1 (prod_ms /. Float.max 0.001 eca_ms);
        ])
      [ 100; 300; 1000 ]
  in
  print_table ~title:"E1 (Thesis 1) — ECA engine vs polled production rules, n order events"
    ~header:
      [ "n"; "ECA cond evals"; "ECA reactions"; "ECA ms"; "CA cond evals"; "CA reactions"; "CA ms"; "CA/ECA time" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 / Thesis 2: local processing + event choreography vs central     *)
(* ------------------------------------------------------------------ *)

let e2 () =
  (* k sites pass a token around a ring r times.  Choreography: each
     site's local rule forwards directly.  Central: every site reports to
     a coordinator which issues the next command (2 messages per hop and
     all load on one node). *)
  let ring_rules me next =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"fwd"
            ~on:(Event_query.on ~label:"token" (Qterm.el "token" [ Qterm.pos (Qterm.var "N") ]))
            ~if_:(Condition.Cmp (Builtin.Gt, Builtin.ovar "N", Builtin.onum 0.))
            (Action.raise_event_to ~to_:(Builtin.ostr next) ~label:"token"
               (Construct.cel "token" [ Construct.C_operand (Builtin.O_sub (Builtin.ovar "N", Builtin.onum 1.)) ]));
        ]
      ("ring-" ^ me)
  in
  let run_ring k hops =
    let net = Network.create () in
    let host i = Printf.sprintf "site%d.example" i in
    for i = 0 to k - 1 do
      Network.add_node_exn net (node_exn ~host:(host i) (ring_rules (host i) (host ((i + 1) mod k))))
    done;
    Network.inject net ~to_:(host 0) ~label:"token" (Term.elem "token" [ Term.int hops ]);
    let t = Network.run_until_quiet net () in
    let stats = Network.transport_stats net in
    (stats.Transport.messages, t, 0)
  in
  let run_central k hops =
    let net = Network.create () in
    let host i = Printf.sprintf "site%d.example" i in
    let coordinator = "coordinator.example" in
    (* sites report each token to the coordinator *)
    let site_rules me =
      Ruleset.make
        ~rules:
          [
            Eca.make ~name:"report"
              ~on:(Event_query.on ~label:"token" (Qterm.el "token" [ Qterm.pos (Qterm.var "N") ]))
              (Action.raise_event ~to_:coordinator ~label:"report"
                 (Construct.cel "report" [ Construct.cel "from" [ Construct.ctext me ]; Construct.cvar "N" ]));
          ]
        ("site-" ^ me)
    in
    (* the coordinator decides who acts next *)
    let coord_rules =
      let next_of i = host ((i + 1) mod k) in
      let branches =
        List.init k (fun i ->
            {
              Eca.condition =
                Condition.Cmp (Builtin.Eq, Builtin.ovar "F", Builtin.ostr (host i));
              action =
                Action.If
                  ( Condition.Cmp (Builtin.Gt, Builtin.ovar "N", Builtin.onum 0.),
                    Action.raise_event ~to_:(next_of i) ~label:"token"
                      (Construct.cel "token"
                         [ Construct.C_operand (Builtin.O_sub (Builtin.ovar "N", Builtin.onum 1.)) ]),
                    Action.Nop );
            })
      in
      Ruleset.make
        ~rules:
          [
            Eca.make_ecnan ~name:"dispatch"
              ~on:
                (Event_query.on ~label:"report"
                   (Qterm.el "report" [ Qterm.pos (Qterm.el "from" [ Qterm.pos (Qterm.var "F") ]); Qterm.pos (Qterm.var "N") ]))
              branches;
          ]
        "coordinator"
    in
    for i = 0 to k - 1 do
      Network.add_node_exn net (node_exn ~host:(host i) (site_rules (host i)))
    done;
    let coord = node_exn ~host:coordinator coord_rules in
    Network.add_node_exn net coord;
    Network.inject net ~to_:(host 0) ~label:"token" (Term.elem "token" [ Term.int hops ]);
    let t = Network.run_until_quiet net () in
    let stats = Network.transport_stats net in
    (stats.Transport.messages, t, Engine.events_seen (Node.engine coord))
  in
  let rows =
    List.map
      (fun k ->
        let hops = 4 * k in
        let lm, lt, _ = run_ring k hops in
        let cm, ct, cload = run_central k hops in
        [ string_of_int k; string_of_int hops; string_of_int lm; string_of_int lt;
          string_of_int cm; string_of_int ct; string_of_int cload ])
      [ 2; 4; 8; 16 ]
  in
  print_table
    ~title:"E2 (Thesis 2) — choreography (local rules) vs central coordinator, token ring"
    ~header:[ "sites"; "hops"; "local msgs"; "local ms(sim)"; "central msgs"; "central ms(sim)"; "coordinator events" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 / Thesis 3: push vs poll                                         *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let duration = Clock.seconds 60 in
  let change_every = Clock.seconds 2 in
  (* the producer's document changes every 2 s for 60 s (30 changes);
     the consumer wants to know about every change *)
  let setup ~push =
    let net = Network.create ~latency:(fun ~from:_ ~to_:_ -> 5) () in
    let producer_rules =
      if push then
        (* update event -> notify the consumer directly *)
        Ruleset.make
          ~rules:
            [
              Eca.make ~name:"notify"
                ~on:(Event_query.on ~label:"update" (Qterm.el "update" ~attrs:[ ("doc", Qterm.A_is "/feed") ] []))
                (Action.raise_event ~to_:"consumer.example" ~label:"changed"
                   (Construct.cel "changed" []));
            ]
          "producer"
      else Ruleset.make "producer"
    in
    let producer = node_exn ~host:"producer.example" producer_rules in
    Store.add_doc (Node.store producer) "/feed" (Term.elem "feed" [ Term.int 0 ]);
    let consumer = node_exn ~host:"consumer.example" (Ruleset.make "consumer") in
    Network.add_node_exn net producer;
    Network.add_node_exn net consumer;
    (net, producer)
  in
  (* drive the producer's changes through its own store so push rules see
     update events *)
  let change net producer i =
    let ctx = Network.context_for net producer in
    let ev =
      Event.make ~sender:"editor" ~recipient:"producer.example" ~occurred_at:(Network.clock net)
        ~label:"edit" (Term.int i)
    in
    ignore ev;
    (* direct store update, then synthesise the update event like a local
       editor action would *)
    ignore
      (Store.apply (Node.store producer)
         (Action.U_replace { doc = "/feed"; selector = []; content = Term.elem "feed" [ Term.int i ] }));
    ignore
      (Node.receive_event producer ctx
         (Event.make ~sender:"producer.example" ~recipient:"producer.example"
            ~occurred_at:(Network.clock net) ~label:"update"
            (Term.elem "update" ~attrs:[ ("doc", "/feed"); ("kind", "replace") ] [])))
  in
  let run_push () =
    let net, producer = setup ~push:true in
    let detected = ref [] in
    (* count deliveries at the consumer *)
    let consumer = Network.node_exn net "consumer.example" in
    ignore consumer;
    let changes = duration / change_every in
    for i = 1 to changes do
      Network.run net ~until:(i * change_every);
      change net producer i;
      detected := (i * change_every, i * change_every + 5) :: !detected
    done;
    ignore (Network.run_until_quiet net ());
    let s = Network.transport_stats net in
    let latencies = List.map (fun (c, d) -> d - c) !detected in
    (s.Transport.messages, s.Transport.bytes, latencies, changes, changes)
  in
  let run_poll period =
    let net, producer = setup ~push:false in
    let stats = Poll.attach net ~poller:"consumer.example" ~target:"producer.example/feed" ~period in
    let changes = duration / change_every in
    let change_times = ref [] in
    for i = 1 to changes do
      Network.run net ~until:(i * change_every);
      change net producer i;
      change_times := i * change_every :: !change_times
    done;
    Network.run net ~until:(duration + (2 * period));
    let s = Network.transport_stats net in
    (* detected = changes_seen - 1 (initial snapshot); a change is missed
       when the next change lands before the next poll *)
    let detected = max 0 (Poll.changes_seen stats - 1) in
    let mean_latency = float_of_int period /. 2. +. 10. in
    (s.Transport.messages, s.Transport.bytes, detected, changes, mean_latency)
  in
  let pm, pb, plat, pchanges, pdetected = run_push () in
  let push_row =
    [
      "push"; string_of_int pm; si pb; string_of_int pdetected ^ "/" ^ string_of_int pchanges;
      f1 (float_of_int (List.fold_left ( + ) 0 plat) /. float_of_int (List.length plat));
      string_of_int (List.fold_left max 0 plat);
    ]
  in
  let poll_rows =
    List.map
      (fun period ->
        let m, b, detected, changes, mean_lat = run_poll period in
        [
          Printf.sprintf "poll %dms" period; string_of_int m; si b;
          string_of_int detected ^ "/" ^ string_of_int changes; f1 mean_lat; string_of_int (period + 10);
        ])
      [ 500; 1000; 2000; 5000 ]
  in
  print_table
    ~title:"E3 (Thesis 3) — push vs poll: 30 changes over 60 s, 5 ms link latency"
    ~header:[ "paradigm"; "messages"; "bytes"; "changes seen"; "mean latency ms"; "max latency ms" ]
    (push_row :: poll_rows)

(* ------------------------------------------------------------------ *)
(* E4 / Thesis 4: volatile data must stay volatile                     *)
(* ------------------------------------------------------------------ *)

let e4 () =
  let n = 20_000 in
  let a_event t = Event.make ~occurred_at:t ~label:"a" (Term.elem "a" [ Term.int t ]) in
  let query_unbounded =
    Event_query.conj
      [ Event_query.on ~label:"a" (Qterm.var "X"); Event_query.on ~label:"b" (Qterm.var "Y") ]
  in
  let query_windowed = Event_query.within query_unbounded (Clock.seconds 1) in
  let run q horizon =
    let engine = Incremental.create_exn ?horizon q in
    let checkpoints = ref [] in
    for t = 1 to n do
      ignore (Incremental.feed engine (a_event t));
      if t = n / 4 || t = n / 2 || t = n then
        checkpoints := Incremental.live_instances engine :: !checkpoints
    done;
    List.rev !checkpoints
  in
  let history_mode retention =
    let h = History.create ?retention () in
    let checkpoints = ref [] in
    for t = 1 to n do
      History.add h (a_event t);
      if t = n / 4 || t = n / 2 || t = n then checkpoints := History.length h :: !checkpoints
    done;
    List.rev !checkpoints
  in
  let row name cps = name :: List.map si cps in
  print_table
    ~title:
      (Printf.sprintf
         "E4 (Thesis 4) — partial-match/event storage growth over %s unmatched events" (si n))
    ~header:[ "configuration"; "live @ n/4"; "live @ n/2"; "live @ n" ]
    [
      row "and{a,b}, no GC (shadow Web)" (run query_unbounded None);
      row "and{a,b}, engine horizon 1 s" (run query_unbounded (Some (Clock.seconds 1)));
      row "and{a,b} within 1 s (windowed)" (run query_windowed None);
      row "event history, unbounded" (history_mode None);
      row "event history, keep 1 s" (history_mode (Some (History.Keep (Clock.seconds 1))));
    ]

(* ------------------------------------------------------------------ *)
(* E5 / Thesis 5: the four dimensions of event queries                 *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let feed_engine q events =
    let e = Incremental.create_exn ~consume:true q in
    let d = List.concat_map (fun ev -> Incremental.feed e ev) events in
    let d = d @ Incremental.advance_to e 10_000_000 in
    (List.length events, List.length d)
  in
  let el = Term.elem and txt = Term.text in
  (* flight scenario stream *)
  let cancellation t p = Event.make ~occurred_at:t ~label:"cancellation" (el "cancellation" [ el "passenger" [ txt p ] ]) in
  let rebooking t p = Event.make ~occurred_at:t ~label:"rebooking" (el "rebooking" [ el "passenger" [ txt p ] ]) in
  let flight_events =
    List.concat
      (List.init 20 (fun i ->
           let base = i * Clock.hours 5 in
           if i mod 2 = 0 then
             [ cancellation base (Printf.sprintf "p%d" i); rebooking (base + Clock.minutes 30) (Printf.sprintf "p%d" i) ]
           else [ cancellation base (Printf.sprintf "p%d" i) ]))
  in
  let q_flight =
    Event_query.absent
      (Event_query.on ~label:"cancellation" (Qterm.el "cancellation" [ Qterm.pos (Qterm.el "passenger" [ Qterm.pos (Qterm.var "P") ]) ]))
      ~then_absent:(Event_query.on ~label:"rebooking" (Qterm.el "rebooking" [ Qterm.pos (Qterm.el "passenger" [ Qterm.pos (Qterm.var "P") ]) ]))
      ~for_:(Clock.hours 2)
  in
  (* SLA stream: server w fails in bursts *)
  let outage t s = Event.make ~occurred_at:t ~label:"outage" (el "outage" [ el "server" [ txt s ] ]) in
  let sla_events =
    List.concat
      (List.init 10 (fun i ->
           let base = i * Clock.hours 3 in
           if i mod 3 = 0 then
             [ outage base "w1"; outage (base + Clock.minutes 10) "w1"; outage (base + Clock.minutes 20) "w1" ]
           else [ outage base "w2" ]))
  in
  let q_sla =
    Event_query.times 3
      (Event_query.on ~label:"outage" (Qterm.el "outage" [ Qterm.pos (Qterm.el "server" [ Qterm.pos (Qterm.var "S") ]) ]))
      (Clock.hours 1)
  in
  (* stock stream *)
  let price t v = Event.make ~occurred_at:t ~label:"price" (el "price" [ el "stock" [ txt "ACME" ]; el "value" [ Term.num v ] ]) in
  let stock_events =
    List.mapi (fun i v -> price (i * 1000) v)
      [ 100.; 100.; 100.; 100.; 100.; 100.; 150.; 155.; 100.; 100.; 100.; 100.; 100.; 160. ]
  in
  let q_price =
    Event_query.on ~label:"price"
      (Qterm.el "price" [ Qterm.pos (Qterm.el "stock" [ Qterm.pos (Qterm.var "S") ]); Qterm.pos (Qterm.el "value" [ Qterm.pos (Qterm.var "P") ]) ])
  in
  let q_stock =
    Event_query.Rises { Event_query.r_over = q_price; r_var = "P"; r_window = 5; r_ratio = 1.05; r_bind = "A" }
  in
  (* composition: order and payment joined on customer *)
  let order t c = Event.make ~occurred_at:t ~label:"order" (el "order" [ el "customer" [ txt c ] ]) in
  let payment t c = Event.make ~occurred_at:t ~label:"payment" (el "payment" [ el "customer" [ txt c ] ]) in
  let pay_events =
    List.concat (List.init 15 (fun i ->
        let c = Printf.sprintf "c%d" i in
        let base = i * Clock.minutes 30 in
        if i mod 3 = 0 then [ order base c; payment (base + Clock.minutes 5) c ]
        else [ order base c ]))
  in
  let q_paid =
    Event_query.within
      (Event_query.seq
         [
           Event_query.on ~label:"order" (Qterm.el "order" [ Qterm.pos (Qterm.el "customer" [ Qterm.pos (Qterm.var "C") ]) ]);
           Event_query.on ~label:"payment" (Qterm.el "payment" [ Qterm.pos (Qterm.el "customer" [ Qterm.pos (Qterm.var "C") ]) ]);
         ])
      (Clock.hours 2)
  in
  let row name dims q events =
    let n, d = feed_engine q events in
    [ name; dims; string_of_int n; string_of_int d ]
  in
  print_table
    ~title:"E5 (Thesis 5) — the four dimensions of composite event queries (consumption on)"
    ~header:[ "scenario query"; "dimensions exercised"; "events in"; "detections" ]
    [
      row "flight: cancel + no rebooking in 2 h" "extraction, composition, temporal" q_flight flight_events;
      row "SLA: 3 outages of a server in 1 h" "extraction, accumulation, temporal" q_sla sla_events;
      row "stock: 5-avg rises 5%" "extraction, accumulation" q_stock stock_events;
      row "shop: order then payment in 2 h" "extraction, composition, temporal" q_paid pay_events;
    ]

(* ------------------------------------------------------------------ *)
(* E6 / Thesis 6: incremental vs query-driven evaluation               *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let mk_events h =
    List.init h (fun i ->
        if (i + 1) mod 50 = 0 then
          Event.make ~occurred_at:i ~label:"b" (Term.elem "b" [ Term.int i ])
        else Event.make ~occurred_at:i ~label:"a" (Term.elem "a" [ Term.int i ]))
  in
  let q =
    Event_query.within
      (Event_query.conj
         [ Event_query.on ~label:"a" (Qterm.el "a" [ Qterm.pos (Qterm.var "X") ]);
           Event_query.on ~label:"b" (Qterm.el "b" [ Qterm.pos (Qterm.var "Y") ]) ])
      25
  in
  let rows =
    List.map
      (fun h ->
        let events = mk_events h in
        let inc_detections = ref 0 in
        let (), inc_ms =
          time_ms (fun () ->
              let engine = Incremental.create_exn q in
              List.iter (fun e -> inc_detections := !inc_detections + List.length (Incremental.feed engine e)) events)
        in
        let bw_detections = ref 0 in
        let (), bw_ms =
          time_ms (fun () ->
              let per_event = Backward.detections_per_event q events in
              List.iter (fun (_, ds) -> bw_detections := !bw_detections + List.length ds) per_event)
        in
        [
          si h; string_of_int !inc_detections; f2 inc_ms;
          f2 (inc_ms *. 1000. /. float_of_int h);
          f2 bw_ms; f2 (bw_ms *. 1000. /. float_of_int h);
          f1 (bw_ms /. Float.max 0.001 inc_ms);
          (if !inc_detections = !bw_detections then "yes" else "NO");
        ])
      [ 100; 200; 400; 800 ]
  in
  print_table
    ~title:"E6 (Thesis 6) — incremental vs query-driven evaluation of 'a and b within 25ms'"
    ~header:[ "history"; "detections"; "inc total ms"; "inc us/event"; "qd total ms"; "qd us/event"; "speedup"; "same answers" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7 / Thesis 7: the embedded Web query language                      *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let make_doc s =
    Term.elem ~ord:Term.Unordered "catalog"
      (List.init s (fun i ->
           Term.elem "product"
             [
               Term.elem "name" [ Term.text (Printf.sprintf "p%d" i) ];
               Term.elem "price" [ Term.int (i mod 100) ];
             ]))
  in
  let q =
    Qterm.el "product"
      [
        Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]);
        Qterm.pos (Qterm.el "price" [ Qterm.pos (Qterm.numq 42.) ]);
      ]
  in
  (* the hand-written equivalent of the query *)
  let handwritten doc =
    Term.fold
      (fun acc t ->
        match t with
        | Term.Elem { Term.label = "product"; children; _ } ->
            let name = ref None and hit = ref false in
            List.iter
              (fun c ->
                match c with
                | Term.Elem { Term.label = "name"; children = [ n ]; _ } -> name := Term.as_text n
                | Term.Elem { Term.label = "price"; children = [ p ]; _ } ->
                    if Term.as_num p = Some 42. then hit := true
                | _ -> ())
              children;
            (match (!name, !hit) with Some n, true -> n :: acc | _ -> acc)
        | _ -> acc)
      [] doc
  in
  let rows =
    List.map
      (fun s ->
        let doc = make_doc s in
        let repeat = max 1 (20000 / s) in
        let answers = ref 0 in
        let (), q_ms =
          time_ms (fun () ->
              for _ = 1 to repeat do
                answers := List.length (Simulate.matches_anywhere q doc)
              done)
        in
        let hw = ref 0 in
        let (), h_ms =
          time_ms (fun () ->
              for _ = 1 to repeat do
                hw := List.length (handwritten doc)
              done)
        in
        [
          si s; string_of_int !answers;
          f2 (q_ms *. 1000. /. float_of_int repeat);
          f2 (h_ms *. 1000. /. float_of_int repeat);
          f1 (q_ms /. Float.max 0.001 h_ms);
          (if !answers = !hw then "yes" else "NO");
        ])
      [ 100; 1000; 10_000; 50_000 ]
  in
  print_table
    ~title:"E7 (Thesis 7) — declarative query vs hand-coded traversal, catalog of s products"
    ~header:[ "products"; "answers"; "query us"; "handcoded us"; "slowdown"; "same answers" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8 / Thesis 8: compound actions                                     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let run_seq u =
    let store = Store.create () in
    Store.add_doc store "/d" (Term.elem ~ord:Term.Unordered "d" []);
    let sent = ref [] in
    let action =
      Action.seq (List.init u (fun i -> Action.insert ~doc:"/d" (Construct.cel "x" [ Construct.C_num (float_of_int i) ])))
    in
    let (), ms =
      time_ms (fun () ->
          match
            Action.exec ~env:(Store.env store) ~ops:(host_ops store sent) ~procs:(fun _ -> None)
              ~subst:Subst.empty ~answers:[] action
          with
          | Ok _ -> ()
          | Error e -> failwith e)
    in
    let applied = List.length (Term.children (Option.get (Store.doc store "/d"))) in
    (applied, ms)
  in
  let run_alt failures =
    let store = Store.create () in
    Store.add_doc store "/d" (Term.elem ~ord:Term.Unordered "d" []);
    let sent = ref [] in
    let action =
      Action.alt (List.init failures (fun i -> Action.Fail (Printf.sprintf "alt%d" i)) @ [ Action.insert ~doc:"/d" (Construct.cel "ok" []) ])
    in
    match
      Action.exec ~env:(Store.env store) ~ops:(host_ops store sent) ~procs:(fun _ -> None)
        ~subst:Subst.empty ~answers:[] action
    with
    | Ok o -> (failures + 1, o.Action.updates)
    | Error _ -> (failures, 0)
  in
  let seq_rows =
    List.map
      (fun u ->
        let applied, ms = run_seq u in
        [ Printf.sprintf "seq of %d inserts" u; string_of_int applied; "1"; f2 ms ])
      [ 10; 100; 1000 ]
  in
  let alt_rows =
    List.map
      (fun f ->
        let tried, applied = run_alt f in
        [ Printf.sprintf "alt, %d failures first" f; string_of_int applied; string_of_int tried; "-" ])
      [ 0; 3; 10 ]
  in
  print_table
    ~title:"E8 (Thesis 8) — compound actions: sequences and alternatives"
    ~header:[ "compound"; "updates applied"; "alternatives tried"; "ms" ]
    (seq_rows @ alt_rows)

(* ------------------------------------------------------------------ *)
(* E9 / Thesis 9: structuring avoids redundant evaluation              *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let customers m =
    Term.elem ~ord:Term.Unordered "customers"
      (List.init m (fun i ->
           Term.elem "customer"
             [
               Term.elem "name" [ Term.text (Printf.sprintf "c%d" i) ];
               Term.elem "status" [ Term.text (if i mod 2 = 0 then "gold" else "basic") ];
             ]))
  in
  let cond_gold =
    Condition.In
      ( Condition.Local "/customers",
        Qterm.el "customer"
          [ Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "W") ]);
            Qterm.pos (Qterm.el "status" [ Qterm.pos (Qterm.txt "gold") ]) ] )
  in
  let on_order = Event_query.on ~label:"order" (Qterm.el "order" []) in
  let run rules n m =
    let store = Store.create () in
    Store.add_doc store "/customers" (customers m);
    let sent = ref [] in
    let engine = Engine.create_exn (Ruleset.make ~rules "e9") in
    let env = Store.env store in
    let ops = host_ops store sent in
    let (), ms =
      time_ms (fun () ->
          for i = 1 to n do
            ignore (Engine.handle_event engine ~env ~ops (Event.make ~occurred_at:i ~label:"order" (Term.elem "order" [])))
          done)
    in
    (Engine.total_condition_evaluations engine, ms)
  in
  let ecaa = [ Eca.make ~name:"r" ~on:on_order ~if_:cond_gold Action.Nop ~else_:Action.Nop ] in
  let two_rules =
    [
      Eca.make ~name:"r-pos" ~on:on_order ~if_:cond_gold Action.Nop;
      Eca.make ~name:"r-neg" ~on:on_order ~if_:(Condition.Not cond_gold) Action.Nop;
    ]
  in
  let n = 500 in
  let rows =
    List.concat_map
      (fun m ->
        let e_evals, e_ms = run ecaa n m in
        let t_evals, t_ms = run two_rules n m in
        [
          [ Printf.sprintf "ECAA, %d customers" m; string_of_int e_evals; f1 e_ms ];
          [ Printf.sprintf "two rules (C / not C), %d customers" m; string_of_int t_evals; f1 t_ms ];
        ])
      [ 100; 1000 ]
  in
  print_table
    ~title:(Printf.sprintf "E9 (Thesis 9) — ECAA vs duplicated-condition rules, %d events" n)
    ~header:[ "program form"; "condition evaluations"; "ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 / Thesis 10: extensional vs surrogate identity                  *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let m = 50 in
  let make_store () =
    let s = Store.create () in
    Store.add_doc s "/news"
      (Term.elem ~ord:Term.Unordered "news"
         (List.init m (fun i ->
              Term.elem "article"
                [ Term.elem "id" [ Term.int i ]; Term.elem "rev" [ Term.int 0 ] ])));
    s
  in
  let watch_all s mode =
    let doc = Option.get (Store.doc s "/news") in
    List.filteri (fun i _ -> i < m) (Term.children doc)
    |> List.mapi (fun i article ->
           match mode with
           | `Surrogate -> Result.get_ok (Store.watch_surrogate s ~doc:"/news" [ i ])
           | `Extensional ->
               Result.get_ok (Store.watch_extensional s ~doc:"/news" (Term.strip_ids article)))
  in
  (* each round bumps the revision of every 3rd article in place *)
  let bump s round =
    for idx = 0 to m - 1 do
      if idx mod 3 = round mod 3 then
        let replacement =
          Term.elem "article"
            [ Term.elem "id" [ Term.int idx ]; Term.elem "rev" [ Term.int (round + 1) ] ]
        in
        match Store.replace_at s ~doc:"/news" [ idx ] replacement with
        | Ok () -> ()
        | Error e -> failwith e
    done
  in
  let run mode rounds =
    let s = make_store () in
    let watches = watch_all s mode in
    let changes = ref 0 in
    for round = 0 to rounds - 1 do
      bump s round;
      List.iter
        (fun w -> match Store.poll_watch s w with `Changed _ -> incr changes | `Unchanged | `Lost -> ())
        watches
    done;
    let tracked =
      List.length (List.filter (fun w -> Store.poll_watch s w <> `Lost) watches)
    in
    (!changes, tracked)
  in
  let rows =
    List.concat_map
      (fun rounds ->
        let sc, st = run `Surrogate rounds in
        let ec, et = run `Extensional rounds in
        [
          [ Printf.sprintf "surrogate, %d update rounds" rounds; string_of_int sc; Printf.sprintf "%d/%d" st m ];
          [ Printf.sprintf "extensional, %d update rounds" rounds; string_of_int ec; Printf.sprintf "%d/%d" et m ];
        ])
      [ 1; 3 ]
  in
  print_table
    ~title:(Printf.sprintf "E10 (Thesis 10) — monitoring %d articles through updates" m)
    ~header:[ "identity mode"; "changes detected"; "objects still tracked" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11 / Thesis 11: reactive vs eager policy exchange                  *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let scenario decoys =
    let franz =
      {
        Trust.name = "franz";
        credentials = [ "credit-card" ];
        policies =
          Trust.policy ~sensitive:true ~item:"credit-card" [ [ "bbb-membership" ] ]
          :: List.init decoys (fun i ->
                 Trust.policy ~sensitive:true ~item:(Printf.sprintf "franz-secret-%d" i) Trust.never);
      }
    in
    let shop =
      {
        Trust.name = "fussbaelle.biz";
        credentials = [ "purchase"; "bbb-membership" ];
        policies =
          [
            Trust.policy ~item:"purchase" [ [ "credit-card" ] ];
            Trust.policy ~item:"bbb-membership" Trust.freely;
          ]
          @ List.init decoys (fun i ->
                Trust.policy ~sensitive:true ~item:(Printf.sprintf "shop-secret-%d" i) Trust.never);
      }
    in
    (franz, shop)
  in
  let rows =
    List.concat_map
      (fun decoys ->
        let franz, shop = scenario decoys in
        let run strategy =
          Trust.negotiate ~strategy ~requester:franz ~responder:shop ~goal:"purchase" ()
        in
        let r = run Trust.Reactive and e = run Trust.Eager in
        let fmt name (o : Trust.outcome) =
          [
            name; string_of_int decoys; (if o.Trust.granted then "yes" else "no");
            string_of_int o.Trust.rounds; string_of_int o.Trust.policies_sent;
            string_of_int o.Trust.credentials_sent; si o.Trust.bytes;
            string_of_int o.Trust.sensitive_policies_leaked;
          ]
        in
        [ fmt "reactive" r; fmt "eager" e ])
      [ 0; 4; 16 ]
  in
  print_table
    ~title:"E11 (Thesis 11) — reactive vs eager policy exchange (fussbaelle.biz scenario + decoy policies)"
    ~header:[ "strategy"; "decoy policies"; "deal"; "rounds"; "policies sent"; "credentials"; "bytes"; "sensitive leaked" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 / Thesis 12: accounting overhead                                *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let service_rules =
    Ruleset.make
      ~rules:
        [
          Eca.make ~name:"serve"
            ~on:(Event_query.on ~label:"order" (Qterm.el "order" [ Qterm.pos (Qterm.el "item" [ Qterm.pos (Qterm.var "I") ]) ]))
            (Action.insert ~doc:"/served" (Construct.cel "row" [ Construct.cvar "I" ]));
        ]
      "service"
  in
  let run ~accounting n =
    let root =
      if accounting then
        Ruleset.make ~children:[ service_rules; Accounting.ruleset ~service_labels:[ "order" ] () ] "root"
      else Ruleset.make ~children:[ service_rules ] "root"
    in
    let store = Store.create () in
    Store.add_doc store "/served" (Term.elem ~ord:Term.Unordered "served" []);
    Store.add_doc store Accounting.default_log_doc (Accounting.log_document ());
    let sent = ref [] in
    let engine = Engine.create_exn root in
    let env = Store.env store in
    let ops = host_ops store sent in
    let (), ms =
      time_ms (fun () ->
          for i = 1 to n do
            ignore (Engine.handle_event engine ~env ~ops (order_event i i))
          done)
    in
    let served = List.length (Term.children (Option.get (Store.doc store "/served"))) in
    let records = Accounting.total store () in
    (served, records, ms)
  in
  let n = 2000 in
  let s0, r0, ms0 = run ~accounting:false n in
  let s1, r1, ms1 = run ~accounting:true n in
  print_table
    ~title:(Printf.sprintf "E12 (Thesis 12) — accounting as a second reactive layer, %d requests" n)
    ~header:[ "configuration"; "requests served"; "usage records"; "ms"; "overhead" ]
    [
      [ "service only"; string_of_int s0; string_of_int r0; f1 ms0; "-" ];
      [
        "service + accounting rules"; string_of_int s1; string_of_int r1; f1 ms1;
        Printf.sprintf "%.0f%%" ((ms1 -. ms0) /. Float.max 0.001 ms0 *. 100.);
      ];
    ]

(* ------------------------------------------------------------------ *)
(* A1 — ablation: event instance consumption (Thesis 5 / [12])         *)
(* ------------------------------------------------------------------ *)

let a1 () =
  (* "3 outages within 1 hour": without consumption, every new outage
     after the third re-detects with every pair of its predecessors *)
  let q =
    Event_query.times 3
      (Event_query.on ~label:"outage" (Qterm.el "outage" []))
      (Clock.hours 1)
  in
  let outages n =
    List.init n (fun i -> Event.make ~occurred_at:(i * Clock.minutes 5) ~label:"outage" (Term.elem "outage" []))
  in
  let run ~consume n =
    let engine = Incremental.create_exn ~consume q in
    List.fold_left (fun acc e -> acc + List.length (Incremental.feed engine e)) 0 (outages n)
  in
  let rows =
    List.map
      (fun n ->
        [ si n; string_of_int (run ~consume:false n); string_of_int (run ~consume:true n) ])
      [ 3; 6; 9; 12 ]
  in
  print_table
    ~title:"A1 (ablation, Thesis 5) — detections of '3 outages within 1h' with/without consumption"
    ~header:[ "outages (all within 1h)"; "detections, keep"; "detections, consume" ]
    rows

(* ------------------------------------------------------------------ *)
(* A2 — ablation: label-indexed event dispatch in the engine           *)
(* ------------------------------------------------------------------ *)

let a2 () =
  let run ~index rules_n events_n =
    let rules =
      List.init rules_n (fun i ->
          Eca.make
            ~name:(Printf.sprintf "r%d" i)
            ~on:(Event_query.on ~label:(Printf.sprintf "label-%d" i) (Qterm.var "E"))
            Action.Nop)
    in
    let engine = Engine.create_exn ~index (Ruleset.make ~rules "a2") in
    let store = Store.create () in
    let sent = ref [] in
    let env = Store.env store in
    let ops = host_ops store sent in
    let (), ms =
      time_ms (fun () ->
          for i = 1 to events_n do
            ignore
              (Engine.handle_event engine ~env ~ops
                 (Event.make ~occurred_at:i
                    ~label:(Printf.sprintf "label-%d" (i mod rules_n))
                    (Term.elem "e" [])))
          done)
    in
    ms
  in
  let events_n = 2000 in
  let rows =
    List.map
      (fun rules_n ->
        let without = run ~index:false rules_n events_n in
        let with_ = run ~index:true rules_n events_n in
        [ string_of_int rules_n; f1 without; f1 with_; f1 (without /. Float.max 0.001 with_) ])
      [ 10; 50; 200 ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "A2 (ablation) — label-indexed dispatch, %d events over n single-label rules" events_n)
    ~header:[ "rules"; "no index ms"; "indexed ms"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* A3 — ablation: goal-directed vs exhaustive view materialisation     *)
(* ------------------------------------------------------------------ *)

let a3 () =
  let base_doc m =
    Term.elem ~ord:Term.Unordered "rows"
      (List.init m (fun i -> Term.elem "row" [ Term.int i ]))
  in
  let mk_view i =
    Deductive.rule
      ~view:(Printf.sprintf "v%d" i)
      ~head:(Construct.cel "out" [ Construct.cvar "X" ])
      ~body:
        (Condition.In
           (Condition.Local (Printf.sprintf "/doc%d" i), Qterm.el "row" [ Qterm.pos (Qterm.var "X") ]))
  in
  let run views_n rows evals =
    let docs = List.init views_n (fun i -> (Printf.sprintf "/doc%d" i, base_doc rows)) in
    let env = Condition.env_of_docs docs in
    let program = List.init views_n mk_view in
    let goal = Condition.In (Condition.View "v0", Qterm.el "out" [ Qterm.pos (Qterm.var "X") ]) in
    let goal_directed =
      let env' = Deductive.extend_env env program in
      let (), ms = time_ms (fun () -> for _ = 1 to evals do ignore (Condition.eval env' Subst.empty goal) done) in
      ms
    in
    let exhaustive =
      let fetch res =
        match res with
        | Condition.View v -> (
            let tables = Deductive.materialize env program in
            match Hashtbl.find_opt tables v with Some ts -> ts | None -> [])
        | Condition.Local _ | Condition.Remote _ -> env.Condition.fetch res
      in
      let env' =
        { Condition.fetch; fetch_rdf = env.Condition.fetch_rdf; cached_match = Condition.no_cached_match }
      in
      let (), ms = time_ms (fun () -> for _ = 1 to evals do ignore (Condition.eval env' Subst.empty goal) done) in
      ms
    in
    (goal_directed, exhaustive)
  in
  let evals = 50 in
  let rows_per_doc = 100 in
  let rows =
    List.map
      (fun views_n ->
        let g, e = run views_n rows_per_doc evals in
        [ string_of_int views_n; f1 g; f1 e; f1 (e /. Float.max 0.001 g) ])
      [ 1; 8; 32 ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "A3 (ablation, Thesis 7) — goal-directed vs exhaustive view materialisation (%d condition evaluations, one relevant view)"
         evals)
    ~header:[ "views in program"; "goal-directed ms"; "exhaustive ms"; "speedup" ]
    rows

let all = [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
            ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
            ("a1", a1); ("a2", a2); ("a3", a3) ]
