(* Micro-benchmarks (Bechamel): the inner loops the experiments rest on,
   plus the DESIGN.md ablation (ordered vs unordered matching). *)

open Xchange
open Bechamel
open Toolkit

let catalog =
  Term.elem ~ord:Term.Unordered "catalog"
    (List.init 200 (fun i ->
         Term.elem "product"
           [
             Term.elem "name" [ Term.text (Printf.sprintf "p%d" i) ];
             Term.elem "price" [ Term.int (i mod 100) ];
           ]))

let ordered_catalog =
  Term.elem ~ord:Term.Ordered "catalog" (Term.children catalog)

let product_query =
  Qterm.el "product"
    [
      Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]);
      Qterm.pos (Qterm.el "price" [ Qterm.pos (Qterm.numq 42.) ]);
    ]

let ordered_query =
  Qterm.el ~ord:Term.Ordered ~spec:Qterm.Partial "product"
    [
      Qterm.pos (Qterm.el "name" [ Qterm.pos (Qterm.var "N") ]);
      Qterm.pos (Qterm.el "price" [ Qterm.pos (Qterm.numq 42.) ]);
    ]

let bench_simulate_unordered =
  Test.make ~name:"simulate: unordered partial (200 products)"
    (Staged.stage (fun () -> Simulate.matches_anywhere product_query catalog))

let bench_simulate_ordered =
  Test.make ~name:"simulate: ordered partial (200 products)"
    (Staged.stage (fun () -> Simulate.matches_anywhere ordered_query ordered_catalog))

let catalog_index = Term_index.build catalog

let bench_simulate_indexed =
  Test.make ~name:"simulate: unordered partial, term-indexed (200 products)"
    (Staged.stage (fun () -> Simulate.matches_anywhere ~index:catalog_index product_query catalog))

let sample_program =
  {|ruleset s {
      rule r: on seq{a{{item[var I]}}, b{{item[var I]}}} within 2 h
        if in doc("/d") c{{x[var I]}}
        do { insert into "/out" row[$I]; raise to "x.example" done done[$I] }
    }|}

let bench_parse =
  Test.make ~name:"parser: rule set (1 rule)"
    (Staged.stage (fun () -> Result.get_ok (Parser.parse_ruleset sample_program)))

let sample_xml =
  Xml.to_string catalog

let bench_xml_parse =
  Test.make ~name:"xml: parse 200-product catalog"
    (Staged.stage (fun () -> Xml.parse_exn sample_xml))

let feed_events =
  Array.init 64 (fun i ->
      Event.make ~occurred_at:i
        ~label:(if i mod 8 = 0 then "b" else "a")
        (Term.elem (if i mod 8 = 0 then "b" else "a") [ Term.int i ]))

let incremental_query =
  Event_query.within
    (Event_query.conj
       [ Event_query.on ~label:"a" (Qterm.el "a" [ Qterm.pos (Qterm.var "X") ]);
         Event_query.on ~label:"b" (Qterm.el "b" [ Qterm.pos (Qterm.var "Y") ]) ])
    16

let bench_incremental =
  Test.make ~name:"incremental: feed 64 events (and-within)"
    (Staged.stage (fun () ->
         let e = Incremental.create_exn incremental_query in
         Array.iter (fun ev -> ignore (Incremental.feed e ev)) feed_events))

let rdf_graph =
  Rdf.of_list
    (List.concat
       (List.init 30 (fun i ->
            [
              { Rdf.s = Rdf.Iri (Printf.sprintf "c%d" i); p = Rdf.rdfs_sub_class_of; o = Rdf.Iri (Printf.sprintf "c%d" (i + 1)) };
              { Rdf.s = Rdf.Iri (Printf.sprintf "x%d" i); p = Rdf.rdf_type; o = Rdf.Iri (Printf.sprintf "c%d" i) };
            ])))

let bench_rdfs =
  Test.make ~name:"rdf: RDFS closure (30-deep class chain)"
    (Staged.stage (fun () -> Rdf.rdfs_closure rdf_graph))

let tests =
  [
    bench_simulate_unordered;
    bench_simulate_ordered;
    bench_simulate_indexed;
    bench_parse;
    bench_xml_parse;
    bench_incremental;
    bench_rdfs;
  ]

let run () =
  Fmt.pr "@.## Micro-benchmarks (Bechamel, monotonic clock)@.@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with Some [ est ] -> est | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  Util.print_table ~title:"time per run" ~header:[ "benchmark"; "ns/run"; "us/run" ]
    (List.map
       (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.2f" (ns /. 1000.) ])
       rows)
