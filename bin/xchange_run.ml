(* xchange-run: command-line front end for XChange-OCaml programs.

   Subcommands:
     check   <program.xch>                      parse + validate
     print   <program.xch>                      parse and pretty-print
     run     <program.xch> [options]            run on a one-node Web
     reify   <program.xch>                      print the Thesis 11 wire form

   `run` loads documents (--doc NAME=FILE.xml), injects events from an
   events file (--events FILE.xml, root <events> with <event label="..">
   children wrapping one payload element each, optional at="ms"
   attributes), advances the simulated clock (--until MS) and prints the
   node's log, firing count, and final documents. *)

open Xchange

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_program path =
  match Parser.parse_program (read_file path) with
  | Ok rs -> Ok rs
  | Error e -> Error (Fmt.str "%s: %s" path e)

let or_die = function
  | Ok v -> v
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1

(* ---- check ---- *)

let check_cmd path =
  let rs = or_die (load_program path) in
  (match Engine.create rs with
  | Ok engine ->
      Fmt.pr "OK: %d rule(s): %s@."
        (List.length (Engine.rule_names engine))
        (String.concat ", " (Engine.rule_names engine))
  | Error e ->
      Fmt.epr "invalid program: %s@." e;
      exit 1);
  0

(* ---- print ---- *)

let print_cmd path =
  let rs = or_die (load_program path) in
  Fmt.pr "%s@." (Printer.ruleset_to_string rs);
  0

(* ---- reify ---- *)

let reify_cmd path =
  let rs = or_die (load_program path) in
  Fmt.pr "%s@." (Xml.to_string ~decl:true (Meta.ruleset_to_term rs));
  0

(* ---- run ---- *)

let parse_events path =
  let doc = Xml.parse_exn (read_file path) in
  match Term.label doc with
  | Some "events" ->
      List.filter_map
        (fun child ->
          match (Term.label child, Term.children child) with
          | Some "event", [ payload ] ->
              let label =
                match Term.attr "label" child with
                | Some l -> l
                | None -> Option.value ~default:"event" (Term.label payload)
              in
              let at =
                match Term.attr "at" child with
                | Some s -> int_of_string_opt s
                | None -> None
              in
              Some (Option.value ~default:0 at, label, payload)
          | _, _ -> None)
        (Term.children doc)
  | _ -> failwith "events file must have an <events> root"

let run_cmd path docs events_file until host verbose load save show_messages trace_out metrics =
  let rs = or_die (load_program path) in
  if trace_out <> None then begin
    Obs.set_enabled true;
    Obs.Trace.clear ()
  end;
  let node = or_die (node ~host rs) in
  (match load with
  | Some file -> (
      match Store.restore (Xml.parse_exn (read_file file)) with
      | Ok restored ->
          List.iter
            (fun name -> Store.add_doc (Node.store node) name (Option.get (Store.doc restored name)))
            (Store.doc_names restored);
          List.iter
            (fun name -> Store.add_rdf (Node.store node) name (Option.get (Store.rdf restored name)))
            (Store.rdf_names restored)
      | Error e -> or_die (Error e))
  | None -> ());
  List.iter
    (fun (name, file) -> Store.add_doc (Node.store node) name (Xml.parse_exn (read_file file)))
    docs;
  let net = Network.create ~record:show_messages () in
  Network.add_node_exn net node;
  Network.enable_heartbeat net ~period:(max 1 (until / 100));
  let events =
    match events_file with
    | Some f -> List.sort (fun (a, _, _) (b, _, _) -> compare a b) (parse_events f)
    | None -> []
  in
  List.iter
    (fun (at, label, payload) ->
      if at > Network.clock net then Network.run net ~until:at;
      Network.inject net ~to_:host ~label payload)
    events;
  Network.run net ~until;
  Fmt.pr "== log of %s ==@." host;
  List.iter (Fmt.pr "  %s@.") (Node.logs node);
  Fmt.pr "== %d firing(s), %d error(s), %d message(s) ==@." (Node.firings node)
    (List.length (Node.errors node))
    (Network.transport_stats net).Transport.messages;
  if verbose then begin
    List.iter
      (fun (rule, msg) -> Fmt.pr "  error in %s: %s@." rule msg)
      (Node.errors node);
    List.iter
      (fun name ->
        Fmt.pr "== %s ==@.%s@." name
          (Xml.to_string (Option.get (Store.doc (Node.store node) name))))
      (Store.doc_names (Node.store node))
  end;
  if show_messages then begin
    Fmt.pr "== message trace ==@.";
    List.iter (fun m -> Fmt.pr "  %a@." Message.pp m) (Network.trace net)
  end;
  if metrics then Fmt.pr "== metrics ==@.%s@." (Network.metrics_json net);
  (match trace_out with
  | Some file ->
      let oc = open_out file in
      output_string oc (Json.to_string ~pretty:true (Obs.Trace.to_chrome_json ()));
      output_char oc '\n';
      close_out oc;
      Fmt.pr "== causal trace (%d span(s), %d evicted) ==@."
        (List.length (Obs.Trace.spans ()))
        (Obs.Trace.dropped ());
      Obs.Trace.pp_tree Fmt.stdout ();
      Fmt.pr "trace written to %s (load in chrome://tracing or Perfetto)@." file
  | None -> ());
  (match save with
  | Some file ->
      let oc = open_out file in
      output_string oc (Xml.to_string ~decl:true (Store.snapshot (Node.store node)));
      close_out oc;
      Fmt.pr "store saved to %s@." file
  | None -> ());
  0

(* ---- cmdliner wiring ---- *)

open Cmdliner

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"XChange program file")

let check_t = Term.(const check_cmd $ program_arg)

let check_info = Cmd.info "check" ~doc:"Parse and validate a program"

let print_t = Term.(const print_cmd $ program_arg)
let print_info = Cmd.info "print" ~doc:"Parse and pretty-print a program"

let reify_t = Term.(const reify_cmd $ program_arg)

let reify_info =
  Cmd.info "reify" ~doc:"Print the program as a rules-as-data XML message (Thesis 11)"

let docs_arg =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string file) []
    & info [ "doc" ] ~docv:"NAME=FILE" ~doc:"Load an XML document into the node's store")

let events_arg =
  Arg.(value & opt (some file) None & info [ "events" ] ~docv:"FILE" ~doc:"Events to inject")

let until_arg =
  Arg.(value & opt int 10_000 & info [ "until" ] ~docv:"MS" ~doc:"Simulated run time (ms)")

let host_arg =
  Arg.(value & opt string "node.example" & info [ "host" ] ~docv:"HOST" ~doc:"Node host name")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print errors and final documents")

let load_arg =
  Arg.(value & opt (some file) None & info [ "load" ] ~docv:"FILE" ~doc:"Restore a store snapshot before running")

let save_arg =
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc:"Save the final store snapshot")

let messages_arg =
  Arg.(value & flag & info [ "messages" ] ~doc:"Print every message on the wire")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable causal span tracing and write a Chrome trace_event JSON to $(docv) \
           (open in chrome://tracing or Perfetto); also prints a compact span tree")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the whole-system metrics snapshot as JSON")

let run_t =
  Term.(
    const run_cmd $ program_arg $ docs_arg $ events_arg $ until_arg $ host_arg $ verbose_arg
    $ load_arg $ save_arg $ messages_arg $ trace_arg $ metrics_arg)
let run_info = Cmd.info "run" ~doc:"Run a program on a simulated one-node Web"

let main =
  Cmd.group
    (Cmd.info "xchange-run" ~version:"1.0.0"
       ~doc:"Reactive ECA rules for the Web (Bry & Eckert, EDBT 2006) — reference implementation")
    [
      Cmd.v check_info check_t;
      Cmd.v print_info print_t;
      Cmd.v reify_info reify_t;
      Cmd.v run_info run_t;
    ]

let () = exit (Cmd.eval' main)
