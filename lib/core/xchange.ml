(** XChange-OCaml: reactive Event-Condition-Action rules for a (simulated)
    Web — a full reproduction of the system specified by Bry & Eckert,
    "Twelve Theses on Reactive Rules for the Web" (EDBT 2006).

    This façade re-exports every sub-library under short names and adds
    the small amount of wiring that crosses layer boundaries (installing
    the {!Lang} rule decoder on {!Web} nodes).  See DESIGN.md for the
    thesis-by-thesis inventory and EXPERIMENTS.md for the evaluation.

    {1 Layers}

    - {!Term}, {!Path}, {!Xml}, {!Rdf}, {!Identity} — the data substrate
    - {!Qterm}, {!Simulate}, {!Construct}, {!Condition}, {!Deductive},
      {!Subst}, {!Builtin} — the embedded Web query language (Thesis 7)
    - {!Clock}, {!Event}, {!Event_query}, {!Incremental}, {!Backward},
      {!History}, {!Instance}, {!Istore}, {!Deductive_event} — events and composite
      event queries (Theses 4-6)
    - {!Action}, {!Eca}, {!Production}, {!Derive}, {!Ruleset}, {!Engine}
      — reactive rules (Theses 1, 8, 9)
    - {!Uri}, {!Message}, {!Store}, {!Sched}, {!Transport}, {!Node},
      {!Network}, {!Poll}, {!Cookie} — the Web substrate (Theses 2, 3,
      10), all sharing one discrete-event timeline ({!Sched})
    - {!Lexer}, {!Parser}, {!Printer}, {!Meta} — the surface language
      and meta-programming (Thesis 11)
    - {!Auth}, {!Authz}, {!Accounting}, {!Trust} — AAA (Theses 11, 12)
*)

(* base *)
module Escape = Xchange_core.Escape

(* observability *)
module Obs = Xchange_obs.Obs
module Json = Xchange_obs.Json

(* data *)
module Term = Xchange_data.Term
module Path = Xchange_data.Path
module Xml = Xchange_data.Xml
module Rdf = Xchange_data.Rdf
module Identity = Xchange_data.Identity
module Term_index = Xchange_data.Term_index
module Topic_map = Xchange_data.Topic_map

(* query *)
module Lru = Xchange_query.Lru
module Subst = Xchange_query.Subst
module Qterm = Xchange_query.Qterm
module Simulate = Xchange_query.Simulate
module Plan = Xchange_query.Plan
module Sub_index = Xchange_query.Sub_index
module Builtin = Xchange_query.Builtin
module Construct = Xchange_query.Construct
module Condition = Xchange_query.Condition
module Deductive = Xchange_query.Deductive

(* events *)
module Clock = Xchange_event.Clock
module Event = Xchange_event.Event
module Instance = Xchange_event.Instance
module Istore = Xchange_event.Istore
module Event_query = Xchange_event.Event_query
module History = Xchange_event.History
module Backward = Xchange_event.Backward
module Incremental = Xchange_event.Incremental
module Deductive_event = Xchange_event.Deductive_event

(* rules *)
module Action = Xchange_rules.Action
module Alpha = Xchange_rules.Alpha
module Beta = Xchange_rules.Beta
module Eca = Xchange_rules.Eca
module Production = Xchange_rules.Production
module Derive = Xchange_rules.Derive
module Ruleset = Xchange_rules.Ruleset
module Engine = Xchange_rules.Engine

(* web *)
module Uri = Xchange_web.Uri
module Message = Xchange_web.Message
module Store = Xchange_web.Store
module Wal = Xchange_web.Wal
module Sched = Xchange_web.Sched
module Partition = Xchange_web.Partition
module Transport = Xchange_web.Transport
module Node = Xchange_web.Node
module Network = Xchange_web.Network
module Poll = Xchange_web.Poll
module Cookie = Xchange_web.Cookie
module Pubsub = Xchange_web.Pubsub

(* language *)
module Lexer = Xchange_lang.Lexer
module Parser = Xchange_lang.Parser
module Printer = Xchange_lang.Printer
module Meta = Xchange_lang.Meta

(* aaa *)
module Auth = Xchange_aaa.Auth
module Authz = Xchange_aaa.Authz
module Accounting = Xchange_aaa.Accounting
module Trust = Xchange_aaa.Trust

(** Create a node with the {!Meta} rule decoder installed, so that rule
    sets received as [xchange:rules] events are loaded (Thesis 11). *)
let node ?horizon ?accept_rules ?accept_updates ?durable ?snapshot_every ~host ruleset =
  match Node.create ?horizon ?accept_rules ?accept_updates ?durable ?snapshot_every ~host ruleset with
  | Error _ as e -> e
  | Ok n ->
      Node.set_rule_decoder n Meta.ruleset_of_term;
      Ok n

let node_exn ?horizon ?accept_rules ?accept_updates ?durable ?snapshot_every ~host ruleset =
  match node ?horizon ?accept_rules ?accept_updates ?durable ?snapshot_every ~host ruleset with
  | Ok n -> n
  | Error e -> invalid_arg ("Xchange.node: " ^ e)

(** Create a node from surface-syntax program text. *)
let node_of_program ?horizon ?accept_rules ?accept_updates ?durable ?snapshot_every ~host src =
  match Parser.parse_program src with
  | Error e -> Error ("parse error: " ^ e)
  | Ok ruleset -> node ?horizon ?accept_rules ?accept_updates ?durable ?snapshot_every ~host ruleset

(** {1 EDSL shorthands} — concise builders used by the examples and
    benches; everything they produce can equally be written in surface
    syntax and parsed. *)
module Edsl = struct
  let t_el = Term.elem
  let t_txt = Term.text
  let t_num = Term.num
  let t_int = Term.int

  let q_el = Qterm.el
  let q_var = Qterm.var
  let q_txt = Qterm.txt
  let q_pos = Qterm.pos

  (** [q_child label inner] — the ubiquitous [label\[inner\]] pattern. *)
  let q_child label inner = Qterm.el label [ Qterm.pos inner ]

  (** [q_kv label v] — [label\[var v\]]. *)
  let q_kv label v = q_child label (Qterm.var v)

  let c_el = Construct.cel
  let c_var = Construct.cvar
  let c_txt = Construct.ctext
  let c_kv label v = Construct.cel label [ Construct.cvar v ]

  let on = Event_query.on
  let rule = Eca.make
end
