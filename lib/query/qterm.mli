(** Query terms: patterns over data terms, in the style of Xcerpt.

    A query term describes the shape of the data it matches and binds
    variables to the pieces it extracts (Thesis 5's "data extraction"
    dimension, Thesis 7's embedded Web query language).  Matching
    ({!Simulate}) is rooted simulation of the query term in a {e ground}
    data term.

    Incompleteness dimensions, as in Xcerpt:
    - {b breadth}: [Total] children patterns must account for {e all}
      children of the data element; [Partial] ones may leave data
      children unmatched.
    - {b order}: an [Ordered] pattern requires its children patterns to
      match in document order; an [Unordered] one matches children in
      any order.  Matching against [Unordered] data is always
      order-insensitive, whatever the pattern says.
    - {b depth}: [Desc q] matches [q] at the root or at any depth below
      it.

    [Without q] inside a children list is negation as failure on the
    element's children: no child may match [q] (given the bindings of
    the positive siblings). *)

open Xchange_data

type label_pat =
  | L of string  (** exact label *)
  | L_var of string  (** binds the label (as a [Text] term) *)
  | L_any

type leaf_pat =
  | Leaf_any  (** any scalar leaf *)
  | Text_is of string
  | Num_is of float
  | Bool_is of bool
  | Regex of string  (** PCRE, must match the full text of the leaf *)

type attr_pat = A_is of string | A_var of string | A_any

type spec = Total | Partial

type t =
  | Var of string  (** matches any term; binds it *)
  | As of string * t  (** matches [t]; also binds the matched term *)
  | Leaf of leaf_pat
  | El of elem_pat
  | Desc of t  (** matches at the root or any descendant *)

and elem_pat = {
  label : label_pat;
  attrs : (string * attr_pat) list;  (** required attributes (extra data attributes always allowed) *)
  ord : Term.ordering;
  spec : spec;
  children : child list;
}

and child =
  | Pos of t
  | Without of t
  | Opt of t
      (** optional subterm: binds its variables when a consistent match
          exists; answers that could bind more optional variables
          subsume those that bind fewer (Xcerpt's [optional]) *)

(** {1 Convenience constructors} *)

val var : string -> t
val ( @: ) : string -> t -> t
(** [x @: q] is [As (x, q)]. *)

val txt : string -> t
val numq : float -> t
val regex : string -> t
val anyleaf : t

val el :
  ?ord:Term.ordering ->
  ?spec:spec ->
  ?attrs:(string * attr_pat) list ->
  string ->
  child list ->
  t
(** Element pattern with an exact label.  [ord] defaults to [Unordered]
    and [spec] to [Partial] — the common case for Web queries. *)

val pos : t -> child
val without : t -> child
val opt : t -> child
val children_pos : t list -> child list
val desc : t -> t

(** {1 Analysis} *)

val vars : t -> string list
(** All variables a match {e can} bind (including label and attribute
    variables, those under [Desc], and those under [Opt], which may
    stay unbound), excluding variables occurring only under [Without]
    (which never export bindings).  Sorted, duplicate-free. *)

val map_vars : (string -> string) -> t -> t
(** Rename every variable occurrence ([Var], [As] binders, label and
    attribute variables — including those under [Without] and [Opt])
    through the function, preserving structure.  Traversal is syntactic
    (label, then attributes in list order, then children in order), so a
    renaming function that allocates names on first use yields a
    deterministic canonical form — the alpha-renaming the shared beta
    network ({!Xchange_rules.Beta}) keys composite sub-queries by. *)

val digest : t -> string
(** Canonical structural digest (hex, fixed width): equal query terms —
    up to attribute order, which has no matching semantics — yield equal
    digests, and distinct terms collide only with cryptographic-hash
    probability.  Variable {e names} are significant (they decide which
    bindings join), so alpha-equivalent patterns do {b not} share.  Used
    by the shared alpha network ({!Xchange_rules.Alpha}) to key atomic
    event matchers; consumers bucketing on it must still verify
    structural equality inside a bucket (collision safety).  Memoized in
    a domain-local LRU — hot registration/resync paths hit the cache
    after the first computation. *)

val validate : t -> (unit, string) result
(** Static sanity checks: regexes compile; [Without] patterns do not
    attempt to export variables that are not also bound positively. *)

val peel_desc : t -> t
(** Strip outer [Desc] wrappers.  Matching anywhere in a document is
    invariant under outer [Desc] (the unions over all subterms
    coincide), so anchor analysis peels them first. *)

val exact_label : t -> string option
(** The element label the query demands at its root (through [As]
    wrappers), if it demands exactly one. *)

type anchor =
  | A_label of string  (** roots only at elements with this label *)
  | A_leaf of string  (** roots only at leaves with this text *)
  | A_parent_label of string
      (** roots only at parents of elements with this label: an
          any-labelled element pattern with an exactly-labelled required
          child (the required child consumes one distinct data child in
          every matching mode) *)

val anchor : t -> anchor option
(** Where can [q] root-match?  [None] means anywhere (full traversal).
    Used by {!Simulate.matches_anywhere} and {!Plan} to prune matching
    through a {!Xchange_data.Term_index}.  Apply to a {!peel_desc}ed
    query. *)

val pp : t Fmt.t
