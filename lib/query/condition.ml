open Xchange_data

type resource = Local of string | Remote of string | View of string

type t =
  | True
  | False
  | In of resource * Qterm.t
  | In_rdf of resource * Rdf.triple_pattern list
  | And of t list
  | Or of t list
  | Not of t
  | Cmp of Builtin.cmp * Builtin.operand * Builtin.operand

type env = {
  fetch : resource -> Term.t list;
  fetch_rdf : resource -> Rdf.graph option;
  cached_match : resource -> seed:Subst.t -> Qterm.t -> Subst.set option;
}

let no_cached_match _ ~seed:_ _ = None

let env_of_docs docs =
  let fetch = function
    | Local name | Remote name -> (
        match List.assoc_opt name docs with Some d -> [ d ] | None -> [])
    | View _ -> []
  in
  { fetch; fetch_rdf = (fun _ -> None); cached_match = no_cached_match }

let rdf_binding_to_subst binding =
  List.fold_left
    (fun acc (v, node) ->
      Option.bind acc (fun s ->
          let term =
            match node with
            | Rdf.Iri i -> Term.elem "iri" [ Term.text i ]
            | Rdf.Blank b -> Term.elem "blank" [ Term.text b ]
            | Rdf.Lit l -> Term.text l
            | Rdf.Lit_num f -> Term.num f
          in
          Subst.add v term s))
    (Some Subst.empty) binding

(* Pre-bind pattern variables that the seed substitution already fixes,
   so event bindings constrain RDF queries too. *)
let seed_rdf_pattern subst (p : Rdf.triple_pattern) =
  let fix pat =
    match pat with
    | Rdf.Var v -> (
        match Subst.find v subst with
        | None -> pat
        | Some (Term.Elem { Term.label = "iri"; children = [ Term.Text i ]; _ }) ->
            Rdf.Exact (Rdf.Iri i)
        | Some (Term.Elem { Term.label = "blank"; children = [ Term.Text b ]; _ }) ->
            Rdf.Exact (Rdf.Blank b)
        | Some (Term.Text s) -> Rdf.Exact (Rdf.Lit s)
        | Some (Term.Num f) -> Rdf.Exact (Rdf.Lit_num f)
        | Some t -> Rdf.Exact (Rdf.Lit (Term.to_string t)))
    | Rdf.Exact _ -> pat
  in
  { Rdf.ps = fix p.Rdf.ps; pp = fix p.Rdf.pp; po = fix p.Rdf.po }

let rec eval env subst cond =
  match cond with
  | True -> Subst.set_single subst
  | False -> Subst.set_empty
  | In (res, q) -> (
      match env.cached_match res ~seed:subst q with
      | Some answers -> answers
      | None ->
          let docs = env.fetch res in
          Subst.dedup
            (List.concat_map (fun doc -> Simulate.matches_anywhere ~seed:subst q doc) docs))
  | In_rdf (res, patterns) -> (
      match env.fetch_rdf res with
      | None -> Subst.set_empty
      | Some g ->
          let patterns = List.map (seed_rdf_pattern subst) patterns in
          Rdf.query g patterns
          |> List.filter_map rdf_binding_to_subst
          |> List.filter_map (fun s -> Subst.merge subst s)
          |> Subst.dedup)
  | And conds ->
      List.fold_left
        (fun substs c -> Subst.dedup (List.concat_map (fun s -> eval env s c) substs))
        (Subst.set_single subst) conds
  | Or conds -> Subst.dedup (List.concat_map (eval env subst) conds)
  | Not c -> if eval env subst c = [] then Subst.set_single subst else Subst.set_empty
  | Cmp (cmp, a, b) -> (
      match Builtin.test subst cmp a b with
      | Ok true -> Subst.set_single subst
      | Ok false | Error _ -> Subst.set_empty)

let holds env subst cond = eval env subst cond <> []

let rec vars = function
  | True | False | Not _ -> []
  | In (_, q) -> Qterm.vars q
  | In_rdf (_, patterns) ->
      List.concat_map
        (fun (p : Rdf.triple_pattern) ->
          List.filter_map
            (function Rdf.Var v -> Some v | Rdf.Exact _ -> None)
            [ p.Rdf.ps; p.Rdf.pp; p.Rdf.po ])
        patterns
  | And cs | Or cs -> List.concat_map vars cs
  | Cmp (_, a, b) -> Builtin.operand_vars a @ Builtin.operand_vars b

let vars c = List.sort_uniq String.compare (vars c)

let rec resources = function
  | True | False | Cmp _ -> []
  | In (r, _) -> [ (`Doc, r) ]
  | In_rdf (r, _) -> [ (`Rdf, r) ]
  | And cs | Or cs -> List.concat_map resources cs
  | Not c -> resources c

let resources c = List.sort_uniq Stdlib.compare (resources c)

let pp_resource ppf = function
  | Local s -> Fmt.pf ppf "doc(%S)" s
  | Remote s -> Fmt.pf ppf "uri(%S)" s
  | View s -> Fmt.pf ppf "view(%S)" s

let pp_rdf_pat ppf (p : Rdf.triple_pattern) =
  let pp_pat ppf = function
    | Rdf.Exact n -> Rdf.pp_node ppf n
    | Rdf.Var v -> Fmt.pf ppf "?%s" v
  in
  Fmt.pf ppf "(%a %a %a)" pp_pat p.Rdf.ps pp_pat p.Rdf.pp pp_pat p.Rdf.po

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | In (r, q) -> Fmt.pf ppf "in %a %a" pp_resource r Qterm.pp q
  | In_rdf (r, ps) -> Fmt.pf ppf "rdf %a %a" pp_resource r Fmt.(list ~sep:sp pp_rdf_pat) ps
  | And cs -> Fmt.pf ppf "(@[and %a@])" Fmt.(list ~sep:sp pp) cs
  | Or cs -> Fmt.pf ppf "(@[or %a@])" Fmt.(list ~sep:sp pp) cs
  | Not c -> Fmt.pf ppf "(not %a)" pp c
  | Cmp (c, a, b) -> Fmt.pf ppf "%a %a %a" Builtin.pp_operand a Builtin.pp_cmp c Builtin.pp_operand b
