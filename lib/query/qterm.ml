open Xchange_data

type label_pat = L of string | L_var of string | L_any

type leaf_pat =
  | Leaf_any
  | Text_is of string
  | Num_is of float
  | Bool_is of bool
  | Regex of string

type attr_pat = A_is of string | A_var of string | A_any

type spec = Total | Partial

type t =
  | Var of string
  | As of string * t
  | Leaf of leaf_pat
  | El of elem_pat
  | Desc of t

and elem_pat = {
  label : label_pat;
  attrs : (string * attr_pat) list;
  ord : Term.ordering;
  spec : spec;
  children : child list;
}

and child = Pos of t | Without of t | Opt of t

let var v = Var v
let ( @: ) v q = As (v, q)
let txt s = Leaf (Text_is s)
let numq f = Leaf (Num_is f)
let regex r = Leaf (Regex r)
let anyleaf = Leaf Leaf_any

let el ?(ord = Term.Unordered) ?(spec = Partial) ?(attrs = []) label children =
  El { label = L label; attrs; ord; spec; children }

let pos q = Pos q
let without q = Without q
let opt q = Opt q
let children_pos qs = List.map pos qs
let desc q = Desc q

let rec vars_acc ~positive acc = function
  | Var v -> if positive then v :: acc else acc
  | As (v, q) -> vars_acc ~positive (if positive then v :: acc else acc) q
  | Leaf _ -> acc
  | Desc q -> vars_acc ~positive acc q
  | El e ->
      let acc =
        match e.label with
        | L_var v when positive -> v :: acc
        | L_var _ | L _ | L_any -> acc
      in
      let acc =
        List.fold_left
          (fun acc (_, ap) ->
            match ap with A_var v when positive -> v :: acc | A_var _ | A_is _ | A_any -> acc)
          acc e.attrs
      in
      List.fold_left
        (fun acc child ->
          match child with
          | Pos q | Opt q -> vars_acc ~positive acc q
          | Without q -> vars_acc ~positive:false acc q)
        acc e.children

let vars q = List.sort_uniq String.compare (vars_acc ~positive:true [] q)

(* Rename every variable occurrence — [Var], [As] binders, label and
   attribute variables, including those under [Without]/[Opt] — through
   [f], preserving structure.  Traversal is syntactic (label, then
   attributes in list order, then children in order), so a renaming
   function allocating names on first use produces a deterministic
   canonical form (the beta network's alpha-renaming). *)
let rec map_vars f = function
  | Var v -> Var (f v)
  | As (v, q) -> As (f v, map_vars f q)
  | Leaf _ as q -> q
  | Desc q -> Desc (map_vars f q)
  | El e ->
      let label =
        match e.label with L_var v -> L_var (f v) | (L _ | L_any) as l -> l
      in
      let attrs =
        List.map
          (fun (k, ap) ->
            (k, match ap with A_var v -> A_var (f v) | (A_is _ | A_any) as a -> a))
          e.attrs
      in
      let children =
        List.map
          (function
            | Pos q -> Pos (map_vars f q)
            | Without q -> Without (map_vars f q)
            | Opt q -> Opt (map_vars f q))
          e.children
      in
      El { e with label; attrs; children }

(* [matches_anywhere (Desc q)] and [matches_anywhere q] deliver the same
   answer set (the unions over all subterms coincide), so outer [Desc]
   wrappers can be peeled before looking for an anchor. *)
let rec peel_desc = function Desc q -> peel_desc q | q -> q

let rec exact_label = function
  | El { label = L l; _ } -> Some l
  | As (_, q) -> exact_label q
  | Var _ | Leaf _ | El _ | Desc _ -> None

type anchor = A_label of string | A_leaf of string | A_parent_label of string

(* Which nodes can root-match [q]: elements with one exact label, scalar
   leaves with one exact text, or — seeing through one level of
   any-labelled element — parents of an exactly-labelled required child.
   These are the shapes a {!Xchange_data.Term_index} can enumerate
   (directly, or via the parents of an enumerated label).  [As] binds
   the node [q'] matches, so it keeps its anchor; anything else ([Var],
   [L_var], inner [Desc]...) can sit on arbitrary nodes. *)
let rec anchor = function
  | El { label = L l; _ } -> Some (A_label l)
  | Leaf (Text_is s) -> Some (A_leaf s)
  | As (_, q) -> anchor q
  | El { label = L_any; children; _ } ->
      (* an any-labelled element with an exactly-labelled required child
         can only root at parents of that child label: every matching
         mode makes a required child consume one distinct data child *)
      List.find_map
        (function Pos q -> exact_label q | Opt _ | Without _ -> None)
        children
      |> Option.map (fun l -> A_parent_label l)
  | Var _ | Leaf _ | El _ | Desc _ -> None

(* ---- canonical digest ------------------------------------------------ *)

(* Unambiguous serialization: every string is length-prefixed, every
   constructor tagged, so distinct terms yield distinct encodings.
   Attributes are sorted by name — their list order carries no matching
   semantics, so reordered-but-equal patterns must share a digest.
   Children keep their order (it matters under [Ordered], and sorting
   [Unordered] children would cost more than the extra alpha nodes it
   would merge). *)
let encode buf q =
  let c ch = Buffer.add_char buf ch in
  let s str =
    Buffer.add_string buf (string_of_int (String.length str));
    c ':';
    Buffer.add_string buf str
  in
  let leaf = function
    | Leaf_any -> c '_'
    | Text_is t ->
        c 't';
        s t
    | Num_is f ->
        c 'n';
        s (Printf.sprintf "%h" f)
    | Bool_is b -> c (if b then 'T' else 'F')
    | Regex r ->
        c 'r';
        s r
  in
  let rec go = function
    | Var v ->
        c 'V';
        s v
    | As (v, q) ->
        c 'A';
        s v;
        go q
    | Leaf p ->
        c 'L';
        leaf p
    | Desc q ->
        c 'D';
        go q
    | El e ->
        c 'E';
        (match e.label with
        | L l ->
            c 'l';
            s l
        | L_var v ->
            c 'v';
            s v
        | L_any -> c '*');
        c (match e.ord with Term.Ordered -> 'o' | Term.Unordered -> 'u');
        c (match e.spec with Total -> 'T' | Partial -> 'P');
        let attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) e.attrs in
        c '[';
        List.iter
          (fun (name, ap) ->
            s name;
            match ap with
            | A_is v ->
                c '=';
                s v
            | A_var v ->
                c '?';
                s v
            | A_any -> c '*')
          attrs;
        c ']';
        c '(';
        List.iter
          (fun child ->
            match child with
            | Pos q ->
                c '+';
                go q
            | Without q ->
                c '-';
                go q
            | Opt q ->
                c '?';
                go q)
          e.children;
        c ')'
  in
  go q

let digest_uncached q =
  let buf = Buffer.create 128 in
  encode buf q;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Digests are recomputed per alpha/beta registration and per Sub_index
   resync for the same handful of hot patterns; memoize the first
   computation.  Domain-local LRUs (the Simulate plan-cache idiom) so
   sharded schedulers never contend on a shared table. *)
let digest_caches : (t, string) Lru.t Xchange_core.Domain_local.t =
  Xchange_core.Domain_local.create (fun () -> Lru.create ~cap:512)

let digest q =
  let cache = Xchange_core.Domain_local.get digest_caches in
  match Lru.find cache q with
  | Some d -> d
  | None ->
      let d = digest_uncached q in
      Lru.add cache q d;
      d

let validate q =
  let problems = ref [] in
  let note msg = problems := msg :: !problems in
  let rec go in_without = function
    | Var _ | As (_, Leaf _) -> ()
    | As (_, q) -> go in_without q
    | Leaf (Regex r) -> (
        match Re.Pcre.re r with
        | (_ : Re.t) -> ()
        | exception _ -> note (Fmt.str "invalid regex %S" r))
    | Leaf (Leaf_any | Text_is _ | Num_is _ | Bool_is _) -> ()
    | Desc q -> go in_without q
    | El e ->
        List.iter
          (fun child ->
            match child with
            | Pos q | Opt q -> go in_without q
            | Without q -> go true q)
          e.children
  in
  go false q;
  (* Variables under Without must also occur positively somewhere, else
     they could never receive a binding. *)
  let positive = vars q in
  let rec collect_neg acc = function
    | Var _ | Leaf _ -> acc
    | As (_, q) | Desc q -> collect_neg acc q
    | El e ->
        List.fold_left
          (fun acc child ->
            match child with
            | Pos q | Opt q -> collect_neg acc q
            | Without q -> vars_acc ~positive:true acc q)
          acc e.children
  in
  let neg_vars = List.sort_uniq String.compare (collect_neg [] q) in
  List.iter
    (fun v ->
      if not (List.mem v positive) then
        note (Fmt.str "variable %s occurs only under 'without'" v))
    neg_vars;
  match !problems with [] -> Ok () | p :: _ -> Error p

let pp_label ppf = function
  | L s -> Fmt.string ppf s
  | L_var v -> Fmt.pf ppf "var %s~" v
  | L_any -> Fmt.string ppf "*"

let pp_attr ppf (k, ap) =
  match ap with
  | A_is v -> Fmt.pf ppf "@%s=%S" k v
  | A_var v -> Fmt.pf ppf "@%s=var %s" k v
  | A_any -> Fmt.pf ppf "@%s" k

let rec pp ppf = function
  | Var v -> Fmt.pf ppf "var %s" v
  | As (v, q) -> Fmt.pf ppf "var %s -> %a" v pp q
  | Leaf Leaf_any -> Fmt.string ppf "_"
  | Leaf (Text_is s) -> Fmt.pf ppf "%S" s
  | Leaf (Num_is f) -> Fmt.float ppf f
  | Leaf (Bool_is b) -> Fmt.bool ppf b
  | Leaf (Regex r) -> Fmt.pf ppf "/%s/" r
  | Desc q -> Fmt.pf ppf "desc %a" pp q
  | El e ->
      let o, c =
        match (e.spec, e.ord) with
        | Total, Term.Ordered -> ("[", "]")
        | Total, Term.Unordered -> ("{", "}")
        | Partial, Term.Ordered -> ("[[", "]]")
        | Partial, Term.Unordered -> ("{{", "}}")
      in
      let items =
        List.map (fun (k, ap) -> Fmt.str "%a" pp_attr (k, ap)) e.attrs
        @ List.map
            (fun child ->
              match child with
              | Pos q -> Fmt.str "%a" pp q
              | Without q -> Fmt.str "without %a" pp q
              | Opt q -> Fmt.str "optional %a" pp q)
            e.children
      in
      Fmt.pf ppf "@[<hv 2>%a%s%a%s@]" pp_label e.label o
        Fmt.(list ~sep:comma string)
        items c
