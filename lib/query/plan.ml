open Xchange_data

(* A compiled matcher: the term to match against and the substitution to
   extend, returning all extensions.  Same contract as
   [Simulate.match_term], with every per-call query analysis hoisted
   into the closure's environment at compile time. *)
type code = Term.t -> Subst.t -> Subst.set

type kind = Required | Optional

(* ---- work counters (deterministic; sampled by Simulate.metrics) ----
   Domain-local with merge-on-read: each domain bumps its own cell, so
   rule evaluation sharded across domains never races; [total] is exact
   whenever no worker domain is mid-window (the only time harnesses
   sample). *)

module Counter = Xchange_core.Domain_local.Counter

let c_compiled = Counter.create ()
let c_fingerprint_pruned = Counter.create ()
let c_arity_pruned = Counter.create ()

let compiled_count () = Counter.total c_compiled
let fingerprint_pruned () = Counter.total c_fingerprint_pruned
let arity_pruned () = Counter.total c_arity_pruned

let reset_counters () =
  Counter.reset c_compiled;
  Counter.reset c_fingerprint_pruned;
  Counter.reset c_arity_pruned

(* ---- compile-time analysis ---------------------------------------- *)

(* Selectivity of a child pattern, for most-selective-first ordering in
   the unordered assignment search: patterns that can only match few
   data children fail (or commit) early, cutting the branching factor
   near the root of the search tree.  Lower = more selective. *)
let rec selectivity = function
  | Qterm.Leaf (Qterm.Text_is _ | Qterm.Num_is _ | Qterm.Bool_is _) -> 0
  | Qterm.El { Qterm.label = Qterm.L _; _ } -> 1
  | Qterm.Leaf (Qterm.Regex _) -> 2
  | Qterm.Leaf Qterm.Leaf_any -> 3
  | Qterm.El _ -> 4
  | Qterm.As (_, q) -> selectivity q
  | Qterm.Desc _ -> 5
  | Qterm.Var _ -> 6

(* Required-label fingerprint: the multiset of exact element labels the
   required children demand, run-length encoded as a sorted
   (label, count) list. *)
let label_fingerprint required =
  let labels = List.filter_map Qterm.exact_label required in
  let sorted = List.sort String.compare labels in
  let rec rle = function
    | [] -> []
    | l :: rest ->
        let same, rest' = List.partition (String.equal l) rest in
        (l, 1 + List.length same) :: rle rest'
  in
  rle sorted

(* One pass over the data children, then one lookup per demanded label.
   Only called when the fingerprint is non-empty. *)
let fingerprint_ok fp data =
  let counts = Hashtbl.create 8 in
  List.iter
    (function
      | Term.Elem e ->
          let k = e.Term.label in
          Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
      | Term.Text _ | Term.Num _ | Term.Bool _ -> ())
    data;
  List.for_all
    (fun (l, need) ->
      match Hashtbl.find_opt counts l with Some n -> n >= need | None -> false)
    fp

(* ---- children matching (same alternatives as Simulate) ------------- *)

let match_children ~unordered ~total (patterns : (code * kind) list) data subst =
  match (unordered, total) with
  | false, true ->
      (* ordered, total: alignment covering every data child; optional
         patterns may be skipped *)
      let rec go ps ds subst =
        match (ps, ds) with
        | [], [] -> [ subst ]
        | (p, kind) :: ps', d :: ds' ->
            let used = List.concat_map (fun s -> go ps' ds' s) (p d subst) in
            let skipped = match kind with Optional -> go ps' ds subst | Required -> [] in
            used @ skipped
        | ((_, Optional) :: ps'), [] -> go ps' [] subst
        | ((_, Required) :: _), [] | [], _ :: _ -> []
      in
      go patterns data subst
  | false, false ->
      (* ordered, partial: order-preserving injection (subsequence);
         optional patterns may additionally be skipped outright *)
      let rec go ps ds subst =
        match (ps, ds) with
        | [], _ -> [ subst ]
        | ((_, Optional) :: ps'), [] -> go ps' [] subst
        | ((_, Required) :: _), [] -> []
        | ((p, kind) :: ps'), (d :: ds') ->
            let used = List.concat_map (fun s -> go ps' ds' s) (p d subst) in
            let skipped_data = go ps ds' subst in
            let skipped_pattern =
              match kind with Optional -> go ps' (d :: ds') subst | Required -> []
            in
            used @ skipped_data @ skipped_pattern
      in
      go patterns data subst
  | true, _ ->
      (* unordered: injective assignment; total additionally requires the
         assignment (with skipped optionals) to consume every data child *)
      let rec go ps ds subst =
        match ps with
        | [] -> if total && ds <> [] then [] else [ subst ]
        | (p, kind) :: ps' ->
            let rec pick before after acc =
              match after with
              | [] -> acc
              | d :: after' ->
                  let solutions =
                    List.concat_map
                      (fun s -> go ps' (List.rev_append before after') s)
                      (p d subst)
                  in
                  pick (d :: before) after' (solutions @ acc)
            in
            let used = pick [] ds [] in
            let skipped = match kind with Optional -> go ps' ds subst | Required -> [] in
            used @ skipped
      in
      go patterns data subst

(* ---- compilation --------------------------------------------------- *)

let rec compile_code (q : Qterm.t) : code =
  match q with
  | Qterm.Var v -> (
      fun t s ->
        match Subst.add v (Term.strip_ids t) s with Some s -> [ s ] | None -> [])
  | Qterm.As (v, q') ->
      let k = compile_code q' in
      fun t s ->
        (match Subst.add v (Term.strip_ids t) s with Some s -> k t s | None -> [])
  | Qterm.Leaf pat -> compile_leaf pat
  | Qterm.Desc q' ->
      let k = compile_code q' in
      fun t s ->
        (* accumulate over the whole subtree, dedup once at the top:
           per-level dedup + append is O(depth * n^2) on deep documents *)
        let rec go acc t =
          let acc = List.rev_append (k t s) acc in
          List.fold_left go acc (Term.children t)
        in
        Subst.dedup (go [] t)
  | Qterm.El ep -> compile_elem ep

and compile_leaf pat : code =
  match pat with
  | Qterm.Leaf_any -> (
      fun t s ->
        match t with
        | Term.Text _ | Term.Num _ | Term.Bool _ -> [ s ]
        | Term.Elem _ -> [])
  | Qterm.Text_is x -> (
      fun t s ->
        match Term.as_text t with
        | Some y when String.equal x y -> [ s ]
        | Some _ | None -> [])
  | Qterm.Num_is f -> (
      fun t s ->
        match Term.as_num t with
        | Some f' when Float.equal f f' -> [ s ]
        | Some _ | None -> [])
  | Qterm.Bool_is b -> (
      fun t s ->
        match t with
        | Term.Bool b' when Bool.equal b b' -> [ s ]
        | Term.Bool _ | Term.Text _ | Term.Num _ | Term.Elem _ -> [])
  | Qterm.Regex r ->
      (* compiled once per plan, anchored so a match must span the whole
         leaf text; lazy so an invalid regex in a never-visited branch
         raises exactly where the interpreter would (first leaf visit) *)
      let re = lazy (Re.compile (Re.whole_string (Re.Pcre.re r))) in
      fun t s ->
        (match Term.as_text t with
        | Some x when Re.execp (Lazy.force re) x -> [ s ]
        | Some _ | None -> [])

and compile_elem (ep : Qterm.elem_pat) : code =
  let label_code : string -> Subst.t -> Subst.set =
    match ep.Qterm.label with
    | Qterm.L l -> fun label s -> if String.equal l label then [ s ] else []
    | Qterm.L_any -> fun _ s -> [ s ]
    | Qterm.L_var v -> (
        fun label s ->
          match Subst.add v (Term.text label) s with Some s -> [ s ] | None -> [])
  in
  let attr_codes =
    List.map
      (fun (key, pat) ->
        match pat with
        | Qterm.A_any ->
            fun attrs s -> if List.mem_assoc key attrs then [ s ] else []
        | Qterm.A_is x -> (
            fun attrs s ->
              match List.assoc_opt key attrs with
              | Some y when String.equal x y -> [ s ]
              | Some _ | None -> [])
        | Qterm.A_var v -> (
            fun attrs s ->
              match List.assoc_opt key attrs with
              | Some y -> (
                  match Subst.add v (Term.text y) s with Some s -> [ s ] | None -> [])
              | None -> []))
      ep.Qterm.attrs
  in
  (* children pre-split once: positives (with kind) in source order,
     negatives compiled separately *)
  let pats_src =
    List.filter_map
      (function
        | Qterm.Pos q -> Some (q, Required)
        | Qterm.Opt q -> Some (q, Optional)
        | Qterm.Without _ -> None)
      ep.Qterm.children
  in
  let negatives =
    List.filter_map
      (function Qterm.Without q -> Some (compile_code q) | Qterm.Pos _ | Qterm.Opt _ -> None)
      ep.Qterm.children
  in
  let compiled = List.map (fun (q, k) -> (compile_code q, k, selectivity q)) pats_src in
  let ordered_pats = List.map (fun (c, k, _) -> (c, k)) compiled in
  (* unordered matching is invariant under pattern permutation (injective
     assignment; dedup'd set semantics), so search most-selective-first *)
  let unordered_pats =
    List.stable_sort (fun (_, _, a) (_, _, b) -> Int.compare a b) compiled
    |> List.map (fun (c, k, _) -> (c, k))
  in
  (* label-partitioned unordered strategy: when every positive child
     pattern is required and demands an exact element label, a pattern
     can only consume children carrying its label — so the global
     injective-assignment search decomposes into independent per-label
     searches (substitutions threaded across groups for shared
     variables).  Decided here, once, from the pattern shape alone. *)
  let label_groups : (string * (code * kind) list) list option =
    let exact_labels =
      List.map (fun (q, k) -> (Qterm.exact_label q, k)) pats_src
    in
    if
      pats_src = []
      || List.exists (fun (l, k) -> l = None || k = Optional) exact_labels
    then None
    else
      let tagged =
        List.map2
          (fun (l, _) (c, k, _) -> (Option.get l, (c, k)))
          exact_labels compiled
      in
      let rec group = function
        | [] -> []
        | (l, c) :: rest ->
            let same, other = List.partition (fun (l', _) -> String.equal l l') rest in
            (l, c :: List.map snd same) :: group other
      in
      Some (group tagged)
  in
  let has_optionals = List.exists (fun (_, k) -> k = Optional) ordered_pats in
  let n_patterns = List.length ordered_pats in
  let n_required = List.length (List.filter (fun (_, k) -> k = Required) ordered_pats) in
  let pat_unordered = ep.Qterm.ord = Term.Unordered in
  let total = ep.Qterm.spec = Qterm.Total in
  let fingerprint =
    label_fingerprint (List.filter_map (fun (q, k) -> if k = Required then Some q else None) pats_src)
  in
  fun t subst ->
    match t with
    | Term.Text _ | Term.Num _ | Term.Bool _ -> []
    | Term.Elem e -> (
        match label_code e.Term.label subst with
        | [] -> []
        | after_label -> (
            let after_attrs =
              List.fold_left
                (fun substs ac -> List.concat_map (ac e.Term.attrs) substs)
                after_label attr_codes
            in
            match after_attrs with
            | [] -> []
            | _ ->
                let data = e.Term.children in
                (* arity bounds: each required pattern consumes a distinct
                   data child in every mode; under Total every data child
                   must be consumed by some pattern *)
                let ndata = List.length data in
                if n_required > ndata || (total && ndata > n_patterns) then begin
                  Counter.incr c_arity_pruned;
                  []
                end
                else if fingerprint <> [] && not (fingerprint_ok fingerprint data) then begin
                  Counter.incr c_fingerprint_pruned;
                  []
                end
                else
                  let unordered = pat_unordered || e.Term.ord = Term.Unordered in
                  let after_children =
                    match (unordered, label_groups) with
                    | true, Some groups ->
                        (* bucket children by label; element children only —
                           leaves can match no exact-labelled pattern, so
                           under Total any leaf child refutes outright *)
                        let buckets = Hashtbl.create 8 in
                        let nleaves = ref 0 in
                        List.iter
                          (fun d ->
                            match d with
                            | Term.Elem e' ->
                                let k = e'.Term.label in
                                Hashtbl.replace buckets k
                                  (d :: Option.value ~default:[] (Hashtbl.find_opt buckets k))
                            | Term.Text _ | Term.Num _ | Term.Bool _ -> incr nleaves)
                          data;
                        if total && !nleaves > 0 then []
                        else
                          (* thread substitutions through the per-label
                             searches; a group that cannot be satisfied
                             (count mismatch) refutes the whole element *)
                          let rec across groups substs =
                            match (groups, substs) with
                            | _, [] -> []
                            | [], _ -> substs
                            | (l, pats) :: rest, _ ->
                                let ds =
                                  List.rev
                                    (Option.value ~default:[] (Hashtbl.find_opt buckets l))
                                in
                                let np = List.length pats and nd = List.length ds in
                                if (if total then nd <> np else nd < np) then []
                                else
                                  across rest
                                    (List.concat_map
                                       (fun s ->
                                         match_children ~unordered:true ~total pats ds s)
                                       substs)
                          in
                          (* Total coverage: the arity prune above left
                             [ndata = n_patterns] (no optionals here), so
                             per-group count equality forces every bucket to
                             belong to some group; assert the invariant
                             rather than assume it *)
                          if total && ndata <> n_patterns then []
                          else across groups after_attrs
                    | true, None ->
                        List.concat_map
                          (fun s -> match_children ~unordered:true ~total unordered_pats data s)
                          after_attrs
                    | false, _ ->
                        List.concat_map
                          (fun s -> match_children ~unordered:false ~total ordered_pats data s)
                          after_attrs
                  in
                  let answers =
                    match negatives with
                    | [] -> after_children
                    | _ ->
                        List.filter
                          (fun s ->
                            List.for_all
                              (fun nc -> not (List.exists (fun c -> nc c s <> []) data))
                              negatives)
                          after_children
                  in
                  if has_optionals then Subst.maximal_only (Subst.dedup answers)
                  else answers))

(* ---- plans ---------------------------------------------------------- *)

type t = {
  source : Qterm.t;
  root : code;  (** the query matched at a node *)
  inner : code;  (** the desc-peeled query, for anywhere-matching *)
  anchor : Qterm.anchor option;  (** of the peeled query *)
}

let compile q =
  Counter.incr c_compiled;
  let peeled = Qterm.peel_desc q in
  let root = compile_code q in
  let inner = if peeled == q then root else compile_code peeled in
  { source = q; root; inner; anchor = Qterm.anchor peeled }

let source p = p.source
let digest p = Qterm.digest p.source

let matches ?(seed = Subst.empty) p t = Subst.dedup (p.root t seed)

(* parents of the indexed label's occurrences, deduplicated (the root
   path [] has no parent and is dropped) *)
let parent_paths paths =
  List.filter_map
    (fun p -> match List.rev p with [] -> None | _ :: rev -> Some (List.rev rev))
    paths
  |> List.sort_uniq Stdlib.compare

let matches_anywhere ?index ?(seed = Subst.empty) p t =
  let traverse () =
    let rec go acc t =
      let acc = List.rev_append (p.inner t seed) acc in
      List.fold_left go acc (Term.children t)
    in
    Subst.dedup (go [] t)
  in
  match (index, p.anchor) with
  | None, _ | _, None -> traverse ()
  | Some idx, Some a ->
      let paths =
        match a with
        | Qterm.A_label l -> Term_index.paths_with_label idx l
        | Qterm.A_leaf s -> Term_index.paths_with_leaf idx s
        | Qterm.A_parent_label l -> parent_paths (Term_index.paths_with_label idx l)
      in
      Subst.dedup
        (List.concat_map
           (fun path ->
             match Path.get t path with
             | Some node -> p.inner node seed
             | None -> [])
           paths)

let holds ?seed p t = matches ?seed p t <> []
