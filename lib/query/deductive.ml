open Xchange_data

type rule = { view : string; head : Construct.t; body : Condition.t }
type program = rule list

let rule ~view ~head ~body = { view; head; body }

let rec referenced_views cond =
  match cond with
  | Condition.In (Condition.View v, _) | Condition.In_rdf (Condition.View v, _) -> [ v ]
  | Condition.In (_, _) | Condition.In_rdf (_, _) -> []
  | Condition.And cs | Condition.Or cs -> List.concat_map referenced_views cs
  | Condition.Not c -> referenced_views c
  | Condition.True | Condition.False | Condition.Cmp _ -> []

let dependencies program =
  let names = List.sort_uniq String.compare (List.map (fun r -> r.view) program) in
  List.map
    (fun name ->
      let deps =
        List.concat_map
          (fun r -> if String.equal r.view name then referenced_views r.body else [])
          program
        |> List.sort_uniq String.compare
      in
      (name, deps))
    names

(* view references with the polarity of their occurrence *)
let rec polar_refs ~neg cond =
  match cond with
  | Condition.In (Condition.View v, _) | Condition.In_rdf (Condition.View v, _) -> [ (v, neg) ]
  | Condition.In (_, _) | Condition.In_rdf (_, _) -> []
  | Condition.And cs | Condition.Or cs -> List.concat_map (polar_refs ~neg) cs
  | Condition.Not c -> polar_refs ~neg:true c
  | Condition.True | Condition.False | Condition.Cmp _ -> []

let check_stratified program =
  (* edge (v -> w, negated?) when a rule for v references w *)
  let edges =
    List.concat_map (fun r -> List.map (fun (w, neg) -> (r.view, w, neg)) (polar_refs ~neg:false r.body)) program
  in
  (* v is unstratified if v reaches itself along a path with >= 1
     negative edge *)
  let names = List.sort_uniq String.compare (List.map (fun r -> r.view) program) in
  let reaches_self_negatively start =
    (* states: (node, seen_negative) *)
    let visited = Hashtbl.create 16 in
    let rec go node seen_neg =
      List.exists
        (fun (v, w, neg) ->
          if not (String.equal v node) then false
          else
            let seen' = seen_neg || neg in
            if String.equal w start && seen' then true
            else if Hashtbl.mem visited (w, seen') then false
            else begin
              Hashtbl.add visited (w, seen') ();
              go w seen'
            end)
        edges
    in
    go start false
  in
  match List.filter reaches_self_negatively names with
  | [] -> Ok ()
  | bad ->
      Error
        (Fmt.str "unstratified negation through view(s): %s" (String.concat ", " bad))

let recursive_views program =
  let deps = dependencies program in
  let edges name = match List.assoc_opt name deps with Some d -> d | None -> [] in
  (* a view is recursive iff it can reach itself *)
  let reaches_self start =
    let visited = Hashtbl.create 8 in
    let rec go name =
      List.exists
        (fun next ->
          String.equal next start
          ||
          if Hashtbl.mem visited next then false
          else begin
            Hashtbl.add visited next ();
            go next
          end)
        (edges name)
    in
    go start
  in
  List.filter_map (fun (name, _) -> if reaches_self name then Some name else None) deps

let reachable program roots =
  let deps = dependencies program in
  let edges name = match List.assoc_opt name deps with Some d -> d | None -> [] in
  let visited = Hashtbl.create 8 in
  let rec go name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      List.iter go (edges name)
    end
  in
  List.iter go roots;
  Hashtbl.fold (fun name () acc -> name :: acc) visited []
  |> List.sort String.compare

module Term_set = Set.Make (struct
  type t = Term.t

  let compare = Term.compare
end)

let materialize ?roots base_env program =
  let program =
    match roots with
    | None -> program
    | Some roots ->
        let wanted = reachable program roots in
        List.filter (fun r -> List.mem r.view wanted) program
  in
  let tables : (string, Term_set.t) Hashtbl.t = Hashtbl.create 8 in
  let get name = Option.value ~default:Term_set.empty (Hashtbl.find_opt tables name) in
  let env =
    {
      Condition.fetch =
        (fun res ->
          match res with
          | Condition.View v -> Term_set.elements (get v)
          | Condition.Local _ | Condition.Remote _ -> base_env.Condition.fetch res);
      fetch_rdf =
        (fun res ->
          match res with
          | Condition.View _ -> None
          | Condition.Local _ | Condition.Remote _ -> base_env.Condition.fetch_rdf res);
      cached_match =
        (fun res ~seed q ->
          match res with
          | Condition.View _ -> None
          | Condition.Local _ | Condition.Remote _ ->
              base_env.Condition.cached_match res ~seed q);
    }
  in
  let round () =
    List.fold_left
      (fun changed r ->
        let answers = Condition.eval env Subst.empty r.body in
        match Construct.instantiate_all r.head answers with
        | Error _ -> changed
        | Ok instances ->
            let table = get r.view in
            let table' = List.fold_left (fun t i -> Term_set.add i t) table instances in
            if Term_set.cardinal table' > Term_set.cardinal table then begin
              Hashtbl.replace tables r.view table';
              true
            end
            else changed)
      false program
  in
  let rec fixpoint () = if round () then fixpoint () in
  fixpoint ();
  let result = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if not (Hashtbl.mem result r.view) then
        Hashtbl.replace result r.view (Term_set.elements (get r.view)))
    program;
  result

let extend_env base_env program =
  let fetch res =
    match res with
    | Condition.View v -> (
        let tables = materialize ~roots:[ v ] base_env program in
        match Hashtbl.find_opt tables v with Some ts -> ts | None -> [])
    | Condition.Local _ | Condition.Remote _ -> base_env.Condition.fetch res
  in
  let cached_match res ~seed q =
    match res with
    | Condition.View _ -> None
    | Condition.Local _ | Condition.Remote _ -> base_env.Condition.cached_match res ~seed q
  in
  { Condition.fetch; fetch_rdf = base_env.Condition.fetch_rdf; cached_match }
