(** Subscription index: shared discrimination over a dynamic set of
    registered queries (Thesis 3 at scale).

    A publish/subscribe producer with a million subscribers — or a rule
    engine with thousands of rules — must not test every registered
    query against every published term.  This module keys each
    registered query by what any matching term {e must} contain
    (necessary conditions extracted once at registration, reusing
    {!Plan}'s required-label analysis) and stores it in a label-anchored
    trie:

    - an optional {b event-label} level (for engines whose occurrences
      carry a label besides the payload);
    - a {b root-label} level ({!Qterm.exact_label} of the query, with a
      wildcard branch for queries that accept any root);
    - a {b pivot-leaf} level: the first required leaf text of the query
      (e.g. the topic literal of a subscription), with an unpivoted
      bucket for queries demanding no leaf.

    Lookup of a term walks only the branches the term's own labels and
    leaf texts can satisfy and then refutes surviving entries against
    their full required-label/leaf {e fingerprints} (multiset inclusion,
    computed from one traversal of the term) — so the candidates
    returned are a superset of the true matches that is typically
    orders of magnitude smaller than the registration set, and publish
    cost grows with {e matches}, not registrations.  {!matching}
    confirms candidates with compiled {!Plan} execution (rooted, like
    {!Plan.matches}).

    Registration and removal are incremental: no rebuild on churn.
    Queries that expose nothing to discriminate on ([Var _], unlabelled
    elements without required leaves) land in the wildcard buckets and
    are candidates for every lookup — exactly the linear scan they
    would have received anyway.

    Soundness of the extracted fingerprints (a registered query is
    {e never} dropped from the candidates of a term it matches) is
    property-tested against the linear-scan oracle in
    [test/test_subindex.ml]. *)

open Xchange_data
open Xchange_obs

type 'a t
(** A dynamic index of queries, each carrying a payload of type ['a]
    (a subscriber host, a rule number, ...). *)

val enabled : unit -> bool
(** [false] when [XCHANGE_NO_SUBINDEX=1] is set in the environment
    (read once at startup) — consumers ({!Xchange_rules.Engine},
    {!Xchange_web.Pubsub}) then fall back to their linear reference
    paths, mirroring the [XCHANGE_NO_PLAN] escape hatch. *)

val create : ?metrics:Obs.Metrics.t -> unit -> 'a t
(** [metrics] registers the index's [subindex.*] cells in an existing
    registry (e.g. the owning engine's) instead of a private one. *)

val register : 'a t -> ?label:string -> Qterm.t -> 'a -> int
(** Add a query; returns its registration id.  A registration made
    with [~label:l] is only a candidate for lookups carrying the same
    [~label:l]; a registration without a label is a candidate for
    every lookup.  Queries are analysed (and their plans compiled)
    once per distinct query term — re-registrations share the
    analysis. *)

val remove : 'a t -> int -> bool
(** Remove a registration by id; [false] if unknown.  O(1) bucket
    surgery, no rebuild. *)

val size : 'a t -> int
(** Live registrations. *)

val trie_nodes : 'a t -> int
(** Structural nodes of the trie (branches and buckets) — the memory
    shape [BENCH_pubsub.json] reports. *)

val lookup : 'a t -> ?label:string -> Term.t -> (int * 'a) list
(** Candidate registrations for the term: every registered query that
    matches the term (rooted, in the sense of {!Plan.matches}) is
    included; queries whose fingerprints the term cannot satisfy are
    refuted without being visited.  Sorted by registration id,
    duplicate-free. *)

val matching : 'a t -> ?label:string -> ?seed:Subst.t -> Term.t -> (int * 'a * Subst.set) list
(** Candidates confirmed by compiled-plan execution: exactly the
    registrations [r] with [Plan.matches ?seed plan_r term <> []],
    with their answer sets.  Sorted by registration id. *)

type stats = {
  registrations : int;  (** registrations since creation *)
  removals : int;
  lookups : int;
  candidates : int;  (** candidates returned across all lookups *)
  refuted : int;
      (** bucket entries refuted by the full fingerprint check, i.e.
          visited but skipped before any matcher ran *)
  confirmed : int;  (** candidates confirmed by {!matching} *)
  entries : int;  (** live registrations (= {!size}) *)
  nodes : int;  (** current {!trie_nodes} *)
}

val stats : 'a t -> stats

val metrics : 'a t -> Obs.Metrics.t
(** The registry the [subindex.*] cells live in (the one passed to
    {!create}, or the private one). *)
