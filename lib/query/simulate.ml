open Xchange_data

(* Regexes are referenced by their source text in query terms; compile
   once per distinct pattern.  The cache is bounded (rule programs are
   finite but adversarial or generated query streams are not) — least
   recently used patterns are recompiled if they come back. *)
let regex_cache : (string, Re.re) Lru.t = Lru.create ~cap:256

let compiled_regex r =
  match Lru.find regex_cache r with
  | Some re -> re
  | None ->
      let re = Re.compile (Re.Pcre.re r) in
      Lru.add regex_cache r re;
      re

let match_leaf_pat pat t =
  match (pat, t) with
  | Qterm.Leaf_any, (Term.Text _ | Term.Num _ | Term.Bool _) -> true
  | Qterm.Text_is s, _ -> (
      match Term.as_text t with Some s' -> String.equal s s' | None -> false)
  | Qterm.Num_is f, _ -> (
      match Term.as_num t with Some f' -> Float.equal f f' | None -> false)
  | Qterm.Bool_is b, Term.Bool b' -> Bool.equal b b'
  | Qterm.Regex r, _ -> (
      match Term.as_text t with
      | Some s -> (
          match Re.exec_opt (compiled_regex r) s with
          | Some g -> String.equal (Re.Group.get g 0) s
          | None -> false)
      | None -> false)
  | Qterm.Leaf_any, Term.Elem _ -> false
  | Qterm.Bool_is _, (Term.Text _ | Term.Num _ | Term.Elem _) -> false

let match_label pat label subst =
  match pat with
  | Qterm.L s -> if String.equal s label then [ subst ] else []
  | Qterm.L_any -> [ subst ]
  | Qterm.L_var v -> (
      match Subst.add v (Term.text label) subst with Some s -> [ s ] | None -> [])

let match_attr attrs (key, pat) subst =
  match List.assoc_opt key attrs with
  | None -> []
  | Some value -> (
      match pat with
      | Qterm.A_any -> [ subst ]
      | Qterm.A_is s -> if String.equal s value then [ subst ] else []
      | Qterm.A_var v -> (
          match Subst.add v (Term.text value) subst with Some s -> [ s ] | None -> []))

(* The matcher threads a single substitution and returns the list of
   extended substitutions (all alternatives). *)
let rec match_term q t subst =
  match q with
  | Qterm.Var v -> (
      match Subst.add v (Term.strip_ids t) subst with Some s -> [ s ] | None -> [])
  | Qterm.As (v, q') -> (
      match Subst.add v (Term.strip_ids t) subst with
      | Some s -> match_term q' t s
      | None -> [])
  | Qterm.Leaf pat -> if match_leaf_pat pat t then [ subst ] else []
  | Qterm.Desc q' -> match_desc q' t subst
  | Qterm.El ep -> (
      match t with
      | Term.Elem e -> match_elem ep e subst
      | Term.Text _ | Term.Num _ | Term.Bool _ -> [])

and match_desc q t subst =
  let here = match_term q t subst in
  let below = List.concat_map (fun c -> match_desc q c subst) (Term.children t) in
  Subst.dedup (here @ below)

and match_elem ep e subst =
  let after_label = match_label ep.Qterm.label e.Term.label subst in
  let after_attrs =
    List.fold_left
      (fun substs attr_pat -> List.concat_map (match_attr e.Term.attrs attr_pat) substs)
      after_label ep.Qterm.attrs
  in
  (* children patterns in order, with their kind: required or optional *)
  let patterns =
    List.filter_map
      (function
        | Qterm.Pos q -> Some (q, `Required)
        | Qterm.Opt q -> Some (q, `Optional)
        | Qterm.Without _ -> None)
      ep.Qterm.children
  in
  let negatives =
    List.filter_map
      (function Qterm.Without q -> Some q | Qterm.Pos _ | Qterm.Opt _ -> None)
      ep.Qterm.children
  in
  let has_optionals = List.exists (fun (_, kind) -> kind = `Optional) patterns in
  let unordered = ep.Qterm.ord = Term.Unordered || e.Term.ord = Term.Unordered in
  let total = ep.Qterm.spec = Qterm.Total in
  let data = e.Term.children in
  let after_children =
    List.concat_map (fun s -> match_children ~unordered ~total patterns data s) after_attrs
  in
  let passes_negatives s =
    List.for_all
      (fun nq -> not (List.exists (fun c -> match_term nq c s <> []) data))
      negatives
  in
  let answers = Subst.dedup (List.filter passes_negatives after_children) in
  if has_optionals then maximal_only answers else answers

(* Optional subterms bind "when possible": an answer that is a strict
   sub-binding of another answer only exists because an optional pattern
   was skipped although it could match — drop it. *)
and maximal_only answers =
  match answers with
  | [] | [ _ ] -> answers
  | _ ->
      (* when every answer binds the same number of variables no answer
         can be a strict sub-binding of another — skip the O(n^2) scan *)
      let cards = List.map Subst.cardinal answers in
      let mn = List.fold_left min max_int cards and mx = List.fold_left max 0 cards in
      if mn = mx then answers
      else
        let subsumed_by bigger smaller =
          (not (Subst.equal bigger smaller))
          && Subst.cardinal smaller < Subst.cardinal bigger
          && Subst.equal (Subst.restrict (Subst.domain smaller) bigger) smaller
        in
        List.filter
          (fun s -> not (List.exists (fun s' -> subsumed_by s' s) answers))
          answers

and match_children ~unordered ~total patterns data subst =
  match (unordered, total) with
  | false, true ->
      (* ordered, total: alignment covering every data child; optional
         patterns may be skipped *)
      let rec go ps ds subst =
        match (ps, ds) with
        | [], [] -> [ subst ]
        | (p, kind) :: ps', d :: ds' ->
            let used = List.concat_map (fun s -> go ps' ds' s) (match_term p d subst) in
            let skipped = match kind with `Optional -> go ps' ds subst | `Required -> [] in
            used @ skipped
        | ((_, `Optional) :: ps'), [] -> go ps' [] subst
        | ((_, `Required) :: _), [] | [], _ :: _ -> []
      in
      go patterns data subst
  | false, false ->
      (* ordered, partial: order-preserving injection (subsequence);
         optional patterns may additionally be skipped outright *)
      let rec go ps ds subst =
        match (ps, ds) with
        | [], _ -> [ subst ]
        | ((_, `Optional) :: ps'), [] -> go ps' [] subst
        | ((_, `Required) :: _), [] -> []
        | ((p, kind) :: ps'), (d :: ds') ->
            let used = List.concat_map (fun s -> go ps' ds' s) (match_term p d subst) in
            let skipped_data = go ps ds' subst in
            let skipped_pattern =
              match kind with `Optional -> go ps' (d :: ds') subst | `Required -> []
            in
            used @ skipped_data @ skipped_pattern
      in
      go patterns data subst
  | true, _ ->
      (* unordered: injective assignment; total additionally requires the
         assignment (with skipped optionals) to consume every data child *)
      let rec go ps ds subst =
        match ps with
        | [] -> if total && ds <> [] then [] else [ subst ]
        | (p, kind) :: ps' ->
            let rec pick before after acc =
              match after with
              | [] -> acc
              | d :: after' ->
                  let solutions =
                    List.concat_map
                      (fun s -> go ps' (List.rev_append before after') s)
                      (match_term p d subst)
                  in
                  pick (d :: before) after' (solutions @ acc)
            in
            let used = pick [] ds [] in
            let skipped = match kind with `Optional -> go ps' ds subst | `Required -> [] in
            used @ skipped
      in
      go patterns data subst

let matches ?(seed = Subst.empty) q t = Subst.dedup (match_term q t seed)

(* [matches_anywhere (Desc q)] and [matches_anywhere q] deliver the same
   answer set (the unions over all subterms coincide), so outer [Desc]
   wrappers can be peeled before looking for an anchor. *)
let rec peel_desc = function Qterm.Desc q -> peel_desc q | q -> q

(* Which nodes can root-match [q]: elements with one exact label, or
   scalar leaves with one exact text — the two shapes a {!Term_index}
   can enumerate directly.  [As] binds the node [q'] matches, so it
   keeps its anchor; anything else ([Var], [L_var], [L_any], inner
   [Desc]...) can sit on arbitrary nodes. *)
let rec anchor = function
  | Qterm.El { Qterm.label = Qterm.L l; _ } -> Some (`Label l)
  | Qterm.Leaf (Qterm.Text_is s) -> Some (`Leaf s)
  | Qterm.As (_, q) -> anchor q
  | Qterm.Var _ | Qterm.Leaf _ | Qterm.El _ | Qterm.Desc _ -> None

let matches_anywhere ?index ?(seed = Subst.empty) q t =
  match index with
  | None -> Subst.dedup (match_desc q t seed)
  | Some idx -> (
      let q' = peel_desc q in
      match anchor q' with
      | None -> Subst.dedup (match_desc q t seed)
      | Some a ->
          let paths =
            match a with
            | `Label l -> Term_index.paths_with_label idx l
            | `Leaf s -> Term_index.paths_with_leaf idx s
          in
          Subst.dedup
            (List.concat_map
               (fun p ->
                 match Path.get t p with
                 | Some node -> match_term q' node seed
                 | None -> [])
               paths))

let holds ?seed q t = matches ?seed q t <> []
