open Xchange_data
open Xchange_obs

(* Regexes are referenced by their source text in query terms; compile
   once per distinct pattern.  The cache is bounded (rule programs are
   finite but adversarial or generated query streams are not) — least
   recently used patterns are recompiled if they come back.  Compiled
   plans embed their own regexes; this cache only serves the
   interpreter path.  Patterns are [Re.whole_string]-anchored at
   compile time, so a leaf visit is a single [Re.execp] instead of an
   unanchored search plus a group-0 / full-input comparison. *)
(* Domain-local: compiled regexes are cheap to rebuild, racing domains
   are not.  Each domain grows its own cache; the metrics fold sums all
   of them. *)
let regex_caches : (string, Re.re) Lru.t Xchange_core.Domain_local.t =
  Xchange_core.Domain_local.create (fun () -> Lru.create ~cap:256)

let compiled_regex r =
  let regex_cache = Xchange_core.Domain_local.get regex_caches in
  match Lru.find regex_cache r with
  | Some re -> re
  | None ->
      let re = Re.compile (Re.whole_string (Re.Pcre.re r)) in
      Lru.add regex_cache r re;
      re

let match_leaf_pat pat t =
  match (pat, t) with
  | Qterm.Leaf_any, (Term.Text _ | Term.Num _ | Term.Bool _) -> true
  | Qterm.Text_is s, _ -> (
      match Term.as_text t with Some s' -> String.equal s s' | None -> false)
  | Qterm.Num_is f, _ -> (
      match Term.as_num t with Some f' -> Float.equal f f' | None -> false)
  | Qterm.Bool_is b, Term.Bool b' -> Bool.equal b b'
  | Qterm.Regex r, _ -> (
      match Term.as_text t with
      | Some s -> Re.execp (compiled_regex r) s
      | None -> false)
  | Qterm.Leaf_any, Term.Elem _ -> false
  | Qterm.Bool_is _, (Term.Text _ | Term.Num _ | Term.Elem _) -> false

let match_label pat label subst =
  match pat with
  | Qterm.L s -> if String.equal s label then [ subst ] else []
  | Qterm.L_any -> [ subst ]
  | Qterm.L_var v -> (
      match Subst.add v (Term.text label) subst with Some s -> [ s ] | None -> [])

let match_attr attrs (key, pat) subst =
  match List.assoc_opt key attrs with
  | None -> []
  | Some value -> (
      match pat with
      | Qterm.A_any -> [ subst ]
      | Qterm.A_is s -> if String.equal s value then [ subst ] else []
      | Qterm.A_var v -> (
          match Subst.add v (Term.text value) subst with Some s -> [ s ] | None -> []))

(* The matcher threads a single substitution and returns the list of
   extended substitutions (all alternatives). *)
let rec match_term q t subst =
  match q with
  | Qterm.Var v -> (
      match Subst.add v (Term.strip_ids t) subst with Some s -> [ s ] | None -> [])
  | Qterm.As (v, q') -> (
      match Subst.add v (Term.strip_ids t) subst with
      | Some s -> match_term q' t s
      | None -> [])
  | Qterm.Leaf pat -> if match_leaf_pat pat t then [ subst ] else []
  | Qterm.Desc q' -> match_desc q' t subst
  | Qterm.El ep -> (
      match t with
      | Term.Elem e -> match_elem ep e subst
      | Term.Text _ | Term.Num _ | Term.Bool _ -> [])

(* Accumulate over the whole subtree and dedup once at the top: the old
   per-level [Subst.dedup (here @ below)] was O(depth * n^2) on deep
   documents and allocated a fresh list per level. *)
and match_desc q t subst =
  let rec go acc t =
    let acc = List.rev_append (match_term q t subst) acc in
    List.fold_left go acc (Term.children t)
  in
  Subst.dedup (go [] t)

and match_elem ep e subst =
  let after_label = match_label ep.Qterm.label e.Term.label subst in
  let after_attrs =
    List.fold_left
      (fun substs attr_pat -> List.concat_map (match_attr e.Term.attrs attr_pat) substs)
      after_label ep.Qterm.attrs
  in
  (* children patterns in order, with their kind: required or optional *)
  let patterns =
    List.filter_map
      (function
        | Qterm.Pos q -> Some (q, `Required)
        | Qterm.Opt q -> Some (q, `Optional)
        | Qterm.Without _ -> None)
      ep.Qterm.children
  in
  let negatives =
    List.filter_map
      (function Qterm.Without q -> Some q | Qterm.Pos _ | Qterm.Opt _ -> None)
      ep.Qterm.children
  in
  let has_optionals = List.exists (fun (_, kind) -> kind = `Optional) patterns in
  let unordered = ep.Qterm.ord = Term.Unordered || e.Term.ord = Term.Unordered in
  let total = ep.Qterm.spec = Qterm.Total in
  let data = e.Term.children in
  let after_children =
    List.concat_map (fun s -> match_children ~unordered ~total patterns data s) after_attrs
  in
  let passes_negatives s =
    List.for_all
      (fun nq -> not (List.exists (fun c -> match_term nq c s <> []) data))
      negatives
  in
  let answers = Subst.dedup (List.filter passes_negatives after_children) in
  if has_optionals then Subst.maximal_only answers else answers

and match_children ~unordered ~total patterns data subst =
  match (unordered, total) with
  | false, true ->
      (* ordered, total: alignment covering every data child; optional
         patterns may be skipped *)
      let rec go ps ds subst =
        match (ps, ds) with
        | [], [] -> [ subst ]
        | (p, kind) :: ps', d :: ds' ->
            let used = List.concat_map (fun s -> go ps' ds' s) (match_term p d subst) in
            let skipped = match kind with `Optional -> go ps' ds subst | `Required -> [] in
            used @ skipped
        | ((_, `Optional) :: ps'), [] -> go ps' [] subst
        | ((_, `Required) :: _), [] | [], _ :: _ -> []
      in
      go patterns data subst
  | false, false ->
      (* ordered, partial: order-preserving injection (subsequence);
         optional patterns may additionally be skipped outright *)
      let rec go ps ds subst =
        match (ps, ds) with
        | [], _ -> [ subst ]
        | ((_, `Optional) :: ps'), [] -> go ps' [] subst
        | ((_, `Required) :: _), [] -> []
        | ((p, kind) :: ps'), (d :: ds') ->
            let used = List.concat_map (fun s -> go ps' ds' s) (match_term p d subst) in
            let skipped_data = go ps ds' subst in
            let skipped_pattern =
              match kind with `Optional -> go ps' (d :: ds') subst | `Required -> []
            in
            used @ skipped_data @ skipped_pattern
      in
      go patterns data subst
  | true, _ ->
      (* unordered: injective assignment; total additionally requires the
         assignment (with skipped optionals) to consume every data child *)
      let rec go ps ds subst =
        match ps with
        | [] -> if total && ds <> [] then [] else [ subst ]
        | (p, kind) :: ps' ->
            let rec pick before after acc =
              match after with
              | [] -> acc
              | d :: after' ->
                  let solutions =
                    List.concat_map
                      (fun s -> go ps' (List.rev_append before after') s)
                      (match_term p d subst)
                  in
                  pick (d :: before) after' (solutions @ acc)
            in
            let used = pick [] ds [] in
            let skipped = match kind with `Optional -> go ps' ds subst | `Required -> [] in
            used @ skipped
      in
      go patterns data subst

(* ---- compiled-plan routing ------------------------------------------ *)

(* The interpreter above stays the reference implementation; by default
   every entry point routes through a compiled {!Plan}, fetched from a
   bounded structural-keyed cache (rule programs evaluate the same
   finite query set over and over).  [XCHANGE_NO_PLAN=1] (read once at
   startup) or [~plan:false] per call restores the interpreter — the
   escape hatch the differential property suite drives. *)

(* Domain-local like the regex cache: plans are pure values compiled
   from pure values, so per-domain duplication costs only memory and
   recompilation, never correctness. *)
let plan_caches : (Qterm.t, Plan.t) Lru.t Xchange_core.Domain_local.t =
  Xchange_core.Domain_local.create (fun () -> Lru.create ~cap:512)

let plan_default = not Xchange_core.Escape.no_plan

let plan_enabled () = plan_default

let plan_of q =
  let plan_cache = Xchange_core.Domain_local.get plan_caches in
  match Lru.find plan_cache q with
  | Some p -> p
  | None ->
      let p = Plan.compile q in
      Lru.add plan_cache q p;
      p

let plan q = if plan_default then Some (plan_of q) else None

(* Query-layer observability: the plan cache and the plan work counters
   are process-global (queries are values, not component instances), so
   one module-level registry carries them; benches and harnesses
   snapshot it directly. *)
let metrics =
  let sum caches stat =
    Xchange_core.Domain_local.fold caches ~init:0 ~f:(fun acc c -> acc + stat c)
  in
  let m = Obs.Metrics.create () in
  Obs.Metrics.counter_fn m "query.plan_cache_hits" (fun () -> sum plan_caches Lru.hits);
  Obs.Metrics.counter_fn m "query.plan_cache_misses" (fun () -> sum plan_caches Lru.misses);
  Obs.Metrics.counter_fn m "query.plan_cache_evictions" (fun () ->
      sum plan_caches Lru.evictions);
  Obs.Metrics.counter_fn m "query.plans_compiled" (fun () -> Plan.compiled_count ());
  Obs.Metrics.counter_fn m "query.fingerprint_pruned" (fun () -> Plan.fingerprint_pruned ());
  Obs.Metrics.counter_fn m "query.arity_pruned" (fun () -> Plan.arity_pruned ());
  Obs.Metrics.counter_fn m "query.regex_cache_hits" (fun () -> sum regex_caches Lru.hits);
  Obs.Metrics.counter_fn m "query.regex_cache_misses" (fun () -> sum regex_caches Lru.misses);
  m

let matches ?(plan = plan_default) ?(seed = Subst.empty) q t =
  if plan then Plan.matches ~seed (plan_of q) t
  else Subst.dedup (match_term q t seed)

(* parents of the indexed label's occurrences, deduplicated (the root
   path [] has no parent and is dropped) *)
let parent_paths paths =
  List.filter_map
    (fun p -> match List.rev p with [] -> None | _ :: rev -> Some (List.rev rev))
    paths
  |> List.sort_uniq Stdlib.compare

let matches_anywhere ?(plan = plan_default) ?index ?(seed = Subst.empty) q t =
  if plan then Plan.matches_anywhere ?index ~seed (plan_of q) t
  else
    match index with
    | None -> match_desc q t seed
    | Some idx -> (
        let q' = Qterm.peel_desc q in
        match Qterm.anchor q' with
        | None -> match_desc q t seed
        | Some a ->
            let paths =
              match a with
              | Qterm.A_label l -> Term_index.paths_with_label idx l
              | Qterm.A_leaf s -> Term_index.paths_with_leaf idx s
              | Qterm.A_parent_label l -> parent_paths (Term_index.paths_with_label idx l)
            in
            Subst.dedup
              (List.concat_map
                 (fun p ->
                   match Path.get t p with
                   | Some node -> match_term q' node seed
                   | None -> [])
                 paths))

let holds ?plan ?seed q t = matches ?plan ?seed q t <> []
