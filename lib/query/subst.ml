open Xchange_data

module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty
let cardinal = M.cardinal
let domain s = List.map fst (M.bindings s)
let find v s = M.find_opt v s

let add v term s =
  match M.find_opt v s with
  | Some existing -> if Term.equal existing term then Some s else None
  | None -> Some (M.add v term s)

(* Rebuild so the tree shape is a function of the content alone: a
   balanced map's internal shape depends on the operation sequence that
   produced it, and merge order varies between evaluators (the indexed
   join grows tuples pivot-outward, the backward one left-to-right).
   Folding the ascending bindings into an empty map makes extensionally
   equal substitutions structurally identical, so polymorphic
   equality/hashing on values containing substitutions stays honest. *)
let canonical s = M.fold M.add s M.empty

let merge a b =
  let exception Conflict in
  try
    Some
      (canonical
         (M.union
            (fun _ x y -> if Term.equal x y then Some x else raise Conflict)
            a b))
  with Conflict -> None

let of_list l =
  List.fold_left
    (fun acc (v, t) -> Option.bind acc (add v t))
    (Some empty) l

let to_list s = M.bindings s
let restrict vars s = M.filter (fun v _ -> List.mem v vars) s
let compare a b = M.compare Term.compare a b
let equal a b = compare a b = 0

let pp ppf s =
  let pp_binding ppf (v, t) = Fmt.pf ppf "%s=%a" v Term.pp t in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp_binding) (to_list s)

type set = t list

let set_empty = []
let set_single s = [ s ]

(* Deduplication is the inner loop of matching ([Simulate.match_desc]
   calls it at every node).  Full [Term.compare]-based sorting of a
   duplicate-heavy list does O(n log n) deep comparisons; instead,
   bucket by a cheap canonical fingerprint (variable names + extensional
   term digests), keep one representative per distinct substitution
   (verified by [equal] within a bucket, so digest collisions cannot
   drop answers), and sort only the survivors.  Small lists keep the
   direct sort — fewer allocations. *)
let hash s =
  M.fold
    (fun v t acc -> (acc * 31) + Hashtbl.hash v + Int64.to_int (Term.digest t))
    s 17

let fingerprint = hash

let dedup set =
  match set with
  | [] | [ _ ] -> set
  | _ when List.compare_length_with set 16 <= 0 -> List.sort_uniq compare set
  | _ ->
      let buckets = Hashtbl.create 64 in
      let uniq =
        List.fold_left
          (fun acc s ->
            let k = fingerprint s in
            let bucket =
              match Hashtbl.find_opt buckets k with Some b -> b | None -> []
            in
            if List.exists (fun s' -> equal s s') bucket then acc
            else begin
              Hashtbl.replace buckets k (s :: bucket);
              s :: acc
            end)
          [] set
      in
      List.sort compare uniq

let union a b = dedup (a @ b)

(* Optional subterms bind "when possible": an answer that is a strict
   sub-binding of another answer only exists because an optional pattern
   was skipped although it could match — drop it. *)
let maximal_only answers =
  match answers with
  | [] | [ _ ] -> answers
  | _ ->
      (* when every answer binds the same number of variables no answer
         can be a strict sub-binding of another — skip the O(n^2) scan *)
      let cards = List.map cardinal answers in
      let mn = List.fold_left min max_int cards and mx = List.fold_left max 0 cards in
      if mn = mx then answers
      else
        let subsumed_by bigger smaller =
          (not (equal bigger smaller))
          && cardinal smaller < cardinal bigger
          && equal (restrict (domain smaller) bigger) smaller
        in
        List.filter
          (fun s -> not (List.exists (fun s' -> subsumed_by s' s) answers))
          answers

let join a b =
  List.concat_map (fun sa -> List.filter_map (fun sb -> merge sa sb) b) a |> dedup

let pp_set ppf set = Fmt.pf ppf "[%a]" Fmt.(list ~sep:semi pp) set
