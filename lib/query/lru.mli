(** A small bounded cache with least-recently-used eviction.

    Keys are compared and hashed structurally (polymorphic [Hashtbl]);
    keep them to plain data.  Recency is a monotonic use counter;
    eviction scans the (capacity-bounded) table, which keeps the
    implementation trivial and is amortized by the cost of producing the
    value being inserted (a regex compilation, a full document match).

    Hit/miss/eviction counters are exposed for the observability hooks
    ({!Xchange_web.Store.stats}, experiment harnesses). *)

type ('k, 'v) t

val create : cap:int -> ('k, 'v) t
(** [cap >= 1] is the maximum number of entries. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Bumps recency on hit; counts a hit or a miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts (or refreshes) a binding, evicting the least recently used
    entry when full. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not bump recency or counters. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit
(** Drops all entries; counters are kept. *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
