(** Compiled query plans: one-pass Xcerpt matcher compilation.

    {!Simulate.match_term} is fully interpretive: every visit of every
    element re-splits child patterns into required/optional/negative
    lists, recomputes the [unordered]/[total]/[has_optionals] flags, and
    the unordered case runs a blind factorial assignment search with no
    pruning.  [compile] performs that analysis {e once} per query and
    produces a closure tree in which all per-call analysis is hoisted to
    compile time:

    - children pre-split into required / optional / negative lists, the
      mode flags precomputed;
    - per-element {b required-label fingerprints}: the multiset of exact
      child labels a node must contain, checked against a cheap
      one-level label count of the data children {e before} any
      recursive descent (every matching mode makes a required child
      pattern consume one distinct data child, so a missing label count
      refutes the whole subtree);
    - arity pruning: more required patterns than data children (or, under
      [Total], more data children than patterns) fails without search;
    - child patterns reordered most-selective-first in the unordered
      case (exact leaf > exact label > regex > variable), shrinking the
      assignment search's branching near the root of the search tree —
      sound because unordered matching is invariant under pattern
      permutation;
    - regexes compiled ([Re.whole_string]-anchored) into the plan
      instead of going through the global LRU on every leaf visit.

    A plan is equivalent to the interpreter by construction and by the
    differential property suite ([test/test_plan.ml]); {!Simulate}
    routes through a plan cache by default and keeps the interpreter as
    the reference implementation ([XCHANGE_NO_PLAN=1] / [~plan:false]).

    Plans are pure functions of the query alone — document mutation
    never invalidates them (the {!Xchange_web.Store}'s answer cache is
    digest-keyed per document version; plans sit below it). *)

open Xchange_data

type t

val compile : Qterm.t -> t
(** One pass over the query term.  Regex compilation inside the plan is
    lazy (forced on first use), so an invalid regex in a branch that is
    never visited raises exactly where the interpreter would. *)

val source : t -> Qterm.t
(** The query the plan was compiled from. *)

val digest : t -> string
(** {!Qterm.digest} of {!source} — the structural plan key the shared
    alpha network deduplicates matchers on. *)

val matches : ?seed:Subst.t -> t -> Term.t -> Subst.set
(** All solutions of matching the plan's query at the root of the term —
    byte-for-byte {!Simulate.matches} of {!source}. *)

val matches_anywhere : ?index:Term_index.t -> ?seed:Subst.t -> t -> Term.t -> Subst.set
(** All solutions at the root or any descendant.  [index] (built from
    this exact document value) prunes through the plan's precomputed
    {!Qterm.anchor} when the query has one; answers are identical either
    way. *)

val holds : ?seed:Subst.t -> t -> Term.t -> bool

(** {1 Work counters}

    Deterministic (same queries x same documents yield the same counts;
    no timing involved), surfaced through {!Simulate.metrics} and the
    [BENCH_query.json] metrics section so benchmarks show {e why} the
    compiled path is faster. *)

val compiled_count : unit -> int
(** Plans compiled since start (or the last reset). *)

val fingerprint_pruned : unit -> int
(** Subtrees refuted by the required-label fingerprint check alone —
    candidate elements whose label and attributes matched but whose
    children could not contain the required labels, skipped before any
    recursive descent. *)

val arity_pruned : unit -> int
(** Subtrees refuted by the required/total child-count bounds. *)

val reset_counters : unit -> unit
