(** Substitutions (variable bindings) and binding sets.

    Query answers are delivered as bindings for variables (Thesis 7's
    "notion of answers"): a {!t} maps variable names to data terms, and a
    query produces a {!set} — one substitution per answer.  Bindings flow
    between the event, condition, and action parts of a rule by
    {!merge}-joining the substitution produced by each part. *)

open Xchange_data

type t
(** An immutable finite map from variable names to terms. *)

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** Number of bound variables. *)

val domain : t -> string list
val find : string -> t -> Term.t option

val add : string -> Term.t -> t -> t option
(** [None] if the variable is already bound to a different term
    (extensional comparison). *)

val merge : t -> t -> t option
(** Join of two substitutions; [None] on conflicting bindings. *)

val of_list : (string * Term.t) list -> t option
val to_list : t -> (string * Term.t) list
(** Sorted by variable name. *)

val restrict : string list -> t -> t
(** Keep only the listed variables. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Extensional hash, consistent with {!equal} (built on {!Term.digest},
    so surrogate ids and unordered-children ordering do not leak in).
    Suitable for [Hashtbl.Make]-style functors — e.g. the event engine's
    hash-partitioned join buckets keyed by {!restrict}ed substitutions. *)

val pp : t Fmt.t

type set = t list
(** A set of alternative substitutions (all answers of a query).  The
    operations below maintain set semantics (sorted, duplicate-free). *)

val set_empty : set
val set_single : t -> set
val dedup : set -> set
val union : set -> set -> set

val join : set -> set -> set
(** All pairwise merges that succeed. *)

val maximal_only : set -> set
(** Drop answers that are strict sub-bindings of another answer —
    Xcerpt's "optional binds when possible": an answer binding strictly
    fewer variables than a consistent superset answer only exists
    because an optional pattern was skipped although it could match.
    Shared by the interpreting matcher ({!Simulate}) and compiled plans
    ({!Plan}). *)

val pp_set : set Fmt.t
