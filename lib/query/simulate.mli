(** Simulation matching of query terms against ground data terms.

    [matches q t] computes all ways the query term [q] simulates into
    the data term [t], each as a substitution.  Matching can be seeded
    with an initial substitution so that variables already bound (e.g.
    by the event part of a rule) constrain the condition query —
    Thesis 7's "parameterize further queries with delivered answers".

    Complexity: children matching is backtracking search; unordered /
    partial specifications are combinatorial in the worst case, which is
    acceptable for the document sizes of Web rule programs (benchmarked
    in E7). *)

open Xchange_data

val matches : ?seed:Subst.t -> Qterm.t -> Term.t -> Subst.set
(** All solutions of matching [q] at the root of [t]. *)

val matches_anywhere :
  ?index:Term_index.t -> ?seed:Subst.t -> Qterm.t -> Term.t -> Subst.set
(** All solutions of matching [q] at the root or at any descendant —
    equivalent to [matches (Desc q) t].

    [index] must be a {!Term_index.t} built from this exact document
    value (the store maintains that invariant).  Queries whose root
    requires one exact element label or leaf text then only visit the
    candidate nodes the index lists instead of every subterm; all other
    queries fall back to the full traversal.  Results are identical
    either way ({!Subst.set}s are canonically sorted). *)

val holds : ?seed:Subst.t -> Qterm.t -> Term.t -> bool
(** [matches] is non-empty. *)
