(** Simulation matching of query terms against ground data terms.

    [matches q t] computes all ways the query term [q] simulates into
    the data term [t], each as a substitution.  Matching can be seeded
    with an initial substitution so that variables already bound (e.g.
    by the event part of a rule) constrain the condition query —
    Thesis 7's "parameterize further queries with delivered answers".

    {b Two execution paths.}  The module contains a direct interpreter
    of the query AST (the reference implementation) and, by default,
    routes every entry point through a compiled {!Plan} fetched from a
    bounded plan cache — same answers, with all per-visit query analysis
    hoisted to compile time plus fingerprint/arity pruning (see
    {!Plan}).  Set [XCHANGE_NO_PLAN=1] in the environment (read once at
    startup) or pass [~plan:false] to force the interpreter; the
    differential property suite ([test/test_plan.ml]) runs both paths
    against each other.

    Complexity: children matching is backtracking search; unordered /
    partial specifications are combinatorial in the worst case, which is
    acceptable for the document sizes of Web rule programs (benchmarked
    in E7 and [BENCH_query.json]). *)

open Xchange_data
open Xchange_obs

val matches : ?plan:bool -> ?seed:Subst.t -> Qterm.t -> Term.t -> Subst.set
(** All solutions of matching [q] at the root of [t]. *)

val matches_anywhere :
  ?plan:bool -> ?index:Term_index.t -> ?seed:Subst.t -> Qterm.t -> Term.t -> Subst.set
(** All solutions of matching [q] at the root or at any descendant —
    equivalent to [matches (Desc q) t].

    [index] must be a {!Term_index.t} built from this exact document
    value (the store maintains that invariant).  Queries with a
    {!Qterm.anchor} (an exact root label or leaf text, or an
    any-labelled root with an exactly-labelled required child) then only
    visit the candidate nodes the index lists instead of every subterm;
    all other queries fall back to the full traversal.  Results are
    identical either way ({!Subst.set}s are canonically sorted). *)

val holds : ?plan:bool -> ?seed:Subst.t -> Qterm.t -> Term.t -> bool
(** [matches] is non-empty. *)

(** {1 Compiled plans} *)

val plan_enabled : unit -> bool
(** Is compiled-plan routing on (i.e. [XCHANGE_NO_PLAN] unset)? *)

val plan : Qterm.t -> Plan.t option
(** The cached compiled plan for [q], or [None] when plan routing is
    disabled.  Engines with a build phase (e.g.
    {!Xchange_event.Incremental}) fetch the plan once at compile time
    and skip the per-call cache lookup on their hot path. *)

val plan_of : Qterm.t -> Plan.t
(** The cached compiled plan, regardless of the enable flag (ablation
    and benchmarking). *)

val metrics : Obs.Metrics.t
(** Process-global query-layer registry: plan-cache hits / misses /
    evictions, plans compiled, fingerprint- and arity-pruned subtree
    counters (see {!Plan}), and interpreter regex-cache traffic.  The
    prune counters are deterministic — [BENCH_query.json] embeds a
    snapshot so the numbers explain the speedup. *)
