(* Subscription index: a label-anchored discrimination trie over a
   dynamic set of compiled query plans.  See sub_index.mli for the
   layout; the invariant everything below maintains is that every live
   registration sits in exactly one bucket, addressable from its shape
   alone — so removal is O(1) bucket surgery and lookup never sees the
   same entry twice. *)

open Xchange_data
open Xchange_obs

let enabled_default = not Xchange_core.Escape.no_subindex
let enabled () = enabled_default

(* ---- required-presence analysis ------------------------------------- *)

(* What must any term matched by [q] (rooted, in the sense of
   Plan.matches) contain?  Sound necessary conditions only:

   - [El {label = L l}] consumes an element labelled [l]; its required
     ([Pos]) children each consume one distinct data child in every
     matching mode (the same invariant Plan's per-element fingerprints
     rest on), so sibling requirements add as multisets.
   - [Leaf (Text_is s)] consumes a scalar whose [Term.as_text] is [s].
     [Num_is]/[Bool_is] are NOT collected: [Term.as_num] parses textual
     leaves, so [Num_is 5.] also matches [Text "5."] and a numeric key
     would unsoundly refute it.
   - [Desc q] matches [q] somewhere inside the term, so [q]'s
     requirements still appear within it (at unknown depth — which is
     fine, the lookup side counts the whole term).
   - [Var], [Leaf_any], [Regex], attributes, [Opt] and [Without]
     children, label variables/wildcards: no requirement. *)

type shape = {
  plan : Plan.t;
  root : string option;  (* exact element label demanded at the term root *)
  scalar_only : bool;  (* the term root must be a scalar leaf *)
  labels : (string * int) list;  (* required element-label multiset, sorted *)
  leaves : (string * int) list;  (* required leaf-text multiset, sorted *)
  pivot : string option;  (* first required leaf text = trie discriminator *)
}

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let required q =
  let labels = Hashtbl.create 8 and leaves = Hashtbl.create 8 in
  let rec go q =
    match q with
    | Qterm.Var _ | Qterm.Leaf (Qterm.Leaf_any | Qterm.Num_is _ | Qterm.Bool_is _ | Qterm.Regex _)
      ->
        ()
    | Qterm.Leaf (Qterm.Text_is s) -> bump leaves s
    | Qterm.As (_, q) | Qterm.Desc q -> go q
    | Qterm.El e ->
        (match e.label with Qterm.L l -> bump labels l | Qterm.L_var _ | Qterm.L_any -> ());
        List.iter
          (function Qterm.Pos q -> go q | Qterm.Without _ | Qterm.Opt _ -> ())
          e.children
  in
  go q;
  let dump tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  (dump labels, dump leaves)

(* Root constraints hold only when the query (through [As] wrappers, but
   not through [Desc], which relocates the match) pins the root. *)
let rec root_info q =
  match q with
  | Qterm.As (_, q) -> root_info q
  | Qterm.El { label = Qterm.L l; _ } -> (Some l, false)
  | Qterm.Leaf _ -> (None, true)
  | Qterm.Var _ | Qterm.El _ | Qterm.Desc _ -> (None, false)

let analyse q =
  let labels, leaves = required q in
  let root, scalar_only = root_info q in
  {
    plan = Plan.compile q;
    root;
    scalar_only;
    labels;
    leaves;
    pivot = (match leaves with (s, _) :: _ -> Some s | [] -> None);
  }

(* ---- trie ------------------------------------------------------------ *)

type 'a entry = { id : int; payload : 'a; elabel : string option; shape : shape }

type 'a bucket = (int, 'a entry) Hashtbl.t

(* per root-label (or any-root / scalar-root) *)
type 'a branch = {
  by_pivot : (string, 'a bucket) Hashtbl.t;
  unpivoted : 'a bucket;  (* entries demanding no leaf text *)
}

(* per event-label (or unlabelled) *)
type 'a node = {
  by_root : (string, 'a branch) Hashtbl.t;
  any_root : 'a branch;  (* entries accepting any root element or leaf *)
  scalar_root : 'a branch;  (* entries demanding a scalar root *)
}

type 'a t = {
  by_elabel : (string, 'a node) Hashtbl.t;
  any_elabel : 'a node;
  entries : (int, 'a entry) Hashtbl.t;
  shapes : (Qterm.t, shape) Hashtbl.t;  (* analysis deduped per query *)
  mutable next_id : int;
  registry : Obs.Metrics.t;
  c_reg : Obs.Metrics.Counter.t;
  c_rem : Obs.Metrics.Counter.t;
  c_lookup : Obs.Metrics.Counter.t;
  c_cand : Obs.Metrics.Counter.t;
  c_refuted : Obs.Metrics.Counter.t;
  c_confirmed : Obs.Metrics.Counter.t;
}

let new_branch () = { by_pivot = Hashtbl.create 4; unpivoted = Hashtbl.create 4 }

let new_node () =
  { by_root = Hashtbl.create 8; any_root = new_branch (); scalar_root = new_branch () }

let create ?metrics () =
  let registry = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  let t =
    {
      by_elabel = Hashtbl.create 16;
      any_elabel = new_node ();
      entries = Hashtbl.create 64;
      shapes = Hashtbl.create 64;
      next_id = 0;
      registry;
      c_reg = Obs.Metrics.counter registry "subindex.registrations";
      c_rem = Obs.Metrics.counter registry "subindex.removals";
      c_lookup = Obs.Metrics.counter registry "subindex.lookups";
      c_cand = Obs.Metrics.counter registry "subindex.candidates";
      c_refuted = Obs.Metrics.counter registry "subindex.refuted";
      c_confirmed = Obs.Metrics.counter registry "subindex.confirmed";
    }
  in
  Obs.Metrics.gauge_fn registry "subindex.entries" (fun () ->
      float_of_int (Hashtbl.length t.entries));
  t

let size t = Hashtbl.length t.entries

let branch_nodes b = 1 + Hashtbl.length b.by_pivot + 1 (* buckets incl. unpivoted *)

let node_nodes n =
  1 + branch_nodes n.any_root + branch_nodes n.scalar_root
  + Hashtbl.fold (fun _ b acc -> acc + branch_nodes b) n.by_root 0

let trie_nodes t =
  node_nodes t.any_elabel + Hashtbl.fold (fun _ n acc -> acc + node_nodes n) t.by_elabel 0

(* ---- registration / removal ------------------------------------------ *)

let node_of t elabel ~create =
  match elabel with
  | None -> Some t.any_elabel
  | Some l -> (
      match Hashtbl.find_opt t.by_elabel l with
      | Some n -> Some n
      | None ->
          if create then (
            let n = new_node () in
            Hashtbl.replace t.by_elabel l n;
            Some n)
          else None)

let branch_of node shape ~create =
  if shape.scalar_only then Some node.scalar_root
  else
    match shape.root with
    | None -> Some node.any_root
    | Some l -> (
        match Hashtbl.find_opt node.by_root l with
        | Some b -> Some b
        | None ->
            if create then (
              let b = new_branch () in
              Hashtbl.replace node.by_root l b;
              Some b)
            else None)

let bucket_of branch shape ~create =
  match shape.pivot with
  | None -> Some branch.unpivoted
  | Some s -> (
      match Hashtbl.find_opt branch.by_pivot s with
      | Some b -> Some b
      | None ->
          if create then (
            let b = Hashtbl.create 4 in
            Hashtbl.replace branch.by_pivot s b;
            Some b)
          else None)

let register t ?label q payload =
  let shape =
    match Hashtbl.find_opt t.shapes q with
    | Some s -> s
    | None ->
        let s = analyse q in
        Hashtbl.replace t.shapes q s;
        s
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  let entry = { id; payload; elabel = label; shape } in
  let node = Option.get (node_of t label ~create:true) in
  let branch = Option.get (branch_of node shape ~create:true) in
  let bucket = Option.get (bucket_of branch shape ~create:true) in
  Hashtbl.replace bucket id entry;
  Hashtbl.replace t.entries id entry;
  Obs.Metrics.Counter.incr t.c_reg;
  id

let branch_empty b = Hashtbl.length b.by_pivot = 0 && Hashtbl.length b.unpivoted = 0

let node_empty n =
  Hashtbl.length n.by_root = 0 && branch_empty n.any_root && branch_empty n.scalar_root

let remove t id =
  match Hashtbl.find_opt t.entries id with
  | None -> false
  | Some entry ->
      Hashtbl.remove t.entries id;
      (match node_of t entry.elabel ~create:false with
      | None -> ()
      | Some node -> (
          match branch_of node entry.shape ~create:false with
          | None -> ()
          | Some branch ->
              (match bucket_of branch entry.shape ~create:false with
              | None -> ()
              | Some bucket -> (
                  Hashtbl.remove bucket id;
                  (* shed empty structure so churn does not grow the trie *)
                  match entry.shape.pivot with
                  | Some s when Hashtbl.length bucket = 0 ->
                      Hashtbl.remove branch.by_pivot s
                  | _ -> ()));
              (match entry.shape.root with
              | Some l when (not entry.shape.scalar_only) && branch_empty branch ->
                  Hashtbl.remove node.by_root l
              | _ -> ());
              (match entry.elabel with
              | Some l when node_empty node -> Hashtbl.remove t.by_elabel l
              | _ -> ())));
      Obs.Metrics.Counter.incr t.c_rem;
      true

(* ---- lookup ---------------------------------------------------------- *)

(* One traversal of the published term: element-label counts and
   scalar-leaf-text counts — the term-side halves of the fingerprint. *)
let term_counts term =
  let labels = Hashtbl.create 16 and leaves = Hashtbl.create 16 in
  let rec go t =
    match t with
    | Term.Elem e ->
        bump labels e.label;
        List.iter go e.children
    | t -> ( match Term.as_text t with Some s -> bump leaves s | None -> ())
  in
  go term;
  (labels, leaves)

let count tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k)

let fp_ok shape ~root_label ~is_elem labels leaves =
  (match shape.root with Some l -> is_elem && String.equal l root_label | None -> true)
  && ((not shape.scalar_only) || not is_elem)
  && List.for_all (fun (l, n) -> count labels l >= n) shape.labels
  && List.for_all (fun (s, n) -> count leaves s >= n) shape.leaves

(* Every entry lives in exactly one bucket and the buckets visited below
   are pairwise disjoint, so [fold] sees each candidate at most once. *)
let fold_candidates t ?label term f acc =
  Obs.Metrics.Counter.incr t.c_lookup;
  let labels, leaves = term_counts term in
  let root_label, is_elem =
    match term with Term.Elem e -> (e.label, true) | _ -> ("", false)
  in
  let refuted = ref 0 in
  let scan_bucket acc bucket =
    Hashtbl.fold
      (fun _ entry acc ->
        if fp_ok entry.shape ~root_label ~is_elem labels leaves then f acc entry
        else (
          incr refuted;
          acc))
      bucket acc
  in
  let scan_branch acc branch =
    let acc = scan_bucket acc branch.unpivoted in
    Hashtbl.fold
      (fun s _ acc ->
        match Hashtbl.find_opt branch.by_pivot s with
        | Some bucket -> scan_bucket acc bucket
        | None -> acc)
      leaves acc
  in
  let scan_node acc node =
    let acc = scan_branch acc node.any_root in
    if is_elem then
      match Hashtbl.find_opt node.by_root root_label with
      | Some branch -> scan_branch acc branch
      | None -> acc
    else scan_branch acc node.scalar_root
  in
  let acc = scan_node acc t.any_elabel in
  let acc =
    match label with
    | None -> acc
    | Some l -> (
        match Hashtbl.find_opt t.by_elabel l with
        | Some node -> scan_node acc node
        | None -> acc)
  in
  Obs.Metrics.Counter.incr t.c_refuted ~by:!refuted;
  acc

let by_id (i, _) (j, _) = Int.compare i j

let lookup t ?label term =
  let cands =
    fold_candidates t ?label term (fun acc e -> (e.id, e.payload) :: acc) []
  in
  Obs.Metrics.Counter.incr t.c_cand ~by:(List.length cands);
  List.sort by_id cands

let matching t ?label ?seed term =
  let cands = ref 0 in
  let confirmed =
    fold_candidates t ?label term
      (fun acc e ->
        incr cands;
        match Plan.matches ?seed e.shape.plan term with
        | [] -> acc
        | answers -> (e.id, e.payload, answers) :: acc)
      []
  in
  Obs.Metrics.Counter.incr t.c_cand ~by:!cands;
  Obs.Metrics.Counter.incr t.c_confirmed ~by:(List.length confirmed);
  List.sort (fun (i, _, _) (j, _, _) -> Int.compare i j) confirmed

(* ---- stats ----------------------------------------------------------- *)

type stats = {
  registrations : int;
  removals : int;
  lookups : int;
  candidates : int;
  refuted : int;
  confirmed : int;
  entries : int;
  nodes : int;
}

let stats t =
  {
    registrations = Obs.Metrics.Counter.value t.c_reg;
    removals = Obs.Metrics.Counter.value t.c_rem;
    lookups = Obs.Metrics.Counter.value t.c_lookup;
    candidates = Obs.Metrics.Counter.value t.c_cand;
    refuted = Obs.Metrics.Counter.value t.c_refuted;
    confirmed = Obs.Metrics.Counter.value t.c_confirmed;
    entries = size t;
    nodes = trie_nodes t;
  }

let metrics t = t.registry
