(** Conditions: Web queries over persistent data (Thesis 7).

    The condition part of an ECA rule queries persistent resources —
    local or remote XML documents, RDF graphs, and deductive views —
    combines queries with boolean connectives, and tests computed
    comparisons.  Evaluation is seeded with the bindings the event part
    delivered and produces the joined binding set handed to the action
    part. *)

open Xchange_data

type resource =
  | Local of string  (** document by local name/path *)
  | Remote of string  (** document by absolute URI (fetched through the Web substrate) *)
  | View of string  (** deductive view (Thesis 9) *)

type t =
  | True
  | False
  | In of resource * Qterm.t  (** some match of the query in the resource *)
  | In_rdf of resource * Rdf.triple_pattern list  (** BGP over an RDF resource *)
  | And of t list
  | Or of t list
  | Not of t  (** negation as failure; exports no bindings *)
  | Cmp of Builtin.cmp * Builtin.operand * Builtin.operand

(** Environment: how conditions reach data.  The Web substrate and the
    engine provide an implementation; tests can use {!env_of_docs}. *)
type env = {
  fetch : resource -> Term.t list;
      (** instances of a resource; [] when absent or unreachable *)
  fetch_rdf : resource -> Rdf.graph option;
  cached_match : resource -> seed:Subst.t -> Qterm.t -> Subst.set option;
      (** fast path for [In]: when the provider can answer "all matches
          of this query in this resource under this seed" itself
          (typically memoized and index-pruned, see
          {!Xchange_web.Store}), it returns [Some answers] and [fetch] +
          {!Simulate} are bypassed; [None] falls back to fetching and
          matching.  Must deliver exactly the answers the fallback
          would.  Use {!no_cached_match} when there is no fast path. *)
}

val no_cached_match : resource -> seed:Subst.t -> Qterm.t -> Subst.set option
(** Always [None] — the trivial {!env.cached_match}. *)

val env_of_docs : (string * Term.t) list -> env
(** A closed environment over named documents (no RDF, no views beyond
    the listed docs); [Local]/[Remote] both look up by name. *)

val eval : env -> Subst.t -> t -> Subst.set
(** All answers of the condition under the seed substitution.  An
    evaluation error inside [Cmp] (unbound variable, type error) makes
    that comparison false rather than aborting rule processing. *)

val holds : env -> Subst.t -> t -> bool

val vars : t -> string list
(** Variables the condition can bind (negated subconditions excluded). *)

val resources : t -> ([ `Doc | `Rdf ] * resource) list
(** Every resource the condition can touch, tagged with the kind of
    fetch ([`Doc] for [In], [`Rdf] for [In_rdf]), deduplicated.  Being a
    static property of the condition (resources are literals, never
    computed), this is what lets the Web substrate prefetch remote
    documents before evaluation. *)

val pp : t Fmt.t
