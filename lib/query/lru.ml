type 'v slot = { value : 'v; mutable used : int }

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, 'v slot) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { cap; tbl = Hashtbl.create (min cap 64); tick = 0; hits = 0; misses = 0; evictions = 0 }

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some s ->
      t.tick <- t.tick + 1;
      s.used <- t.tick;
      t.hits <- t.hits + 1;
      Some s.value
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k s acc ->
        match acc with Some (_, u) when u <= s.used -> acc | _ -> Some (k, s.used))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t k v =
  if not (Hashtbl.mem t.tbl k) && Hashtbl.length t.tbl >= t.cap then evict_lru t;
  t.tick <- t.tick + 1;
  Hashtbl.replace t.tbl k { value = v; used = t.tick }

let mem t k = Hashtbl.mem t.tbl k
let length t = Hashtbl.length t.tbl
let capacity t = t.cap
let clear t = Hashtbl.reset t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
