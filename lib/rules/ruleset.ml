open Xchange_query

type t = {
  name : string;
  rules : Eca.t list;
  procedures : (string * Action.proc) list;
  views : Deductive.program;
  event_rules : Xchange_event.Deductive_event.program;
  children : t list;
}

let make ?(rules = []) ?(procedures = []) ?(views = []) ?(event_rules = []) ?(children = [])
    name =
  { name; rules; procedures; views; event_rules; children }

type scope = t list
(** innermost set first *)

let rec scoped_rules_acc prefix chain set acc =
  let qualified = if prefix = "" then set.name else prefix ^ "." ^ set.name in
  let chain = set :: chain in
  let acc =
    List.fold_left
      (fun acc rule -> (qualified ^ "." ^ rule.Eca.name, chain, rule) :: acc)
      acc set.rules
  in
  List.fold_left (fun acc child -> scoped_rules_acc qualified chain child acc) acc set.children

let scoped_rules set = List.rev (scoped_rules_acc "" [] set [])

let lookup_procedure scope name =
  List.find_map (fun set -> List.assoc_opt name set.procedures) scope

let views_in_scope scope = List.concat_map (fun set -> set.views) scope

let rec all_event_rules set =
  set.event_rules @ List.concat_map all_event_rules set.children

let rec all_procedures_acc prefix set acc =
  let qualified = if prefix = "" then set.name else prefix ^ "." ^ set.name in
  let acc =
    List.fold_left (fun acc (n, p) -> (qualified ^ "." ^ n, p) :: acc) acc set.procedures
  in
  List.fold_left (fun acc child -> all_procedures_acc qualified child acc) acc set.children

let all_procedures set = List.rev (all_procedures_acc "" set [])

let find_rule set qualified_name =
  List.find_map
    (fun (qn, _, rule) -> if String.equal qn qualified_name then Some rule else None)
    (scoped_rules set)

let rule_count set = List.length (scoped_rules set)

let rec called_procedures action =
  match action with
  | Action.Call (name, _) -> [ name ]
  | Action.Seq actions | Action.Atomic actions | Action.Alt actions ->
      List.concat_map called_procedures actions
  | Action.If (_, a, b) -> called_procedures a @ called_procedures b
  | Action.Nop | Action.Fail _ | Action.Log _ | Action.Insert _ | Action.Delete _
  | Action.Replace _ | Action.Create_doc _ | Action.Delete_doc _ | Action.Rdf_assert _
  | Action.Rdf_retract _ | Action.Raise _ ->
      []

let rule_actions rule =
  List.map (fun b -> b.Eca.action) rule.Eca.branches
  @ Option.to_list rule.Eca.else_action

let dup_names names =
  let sorted = List.sort String.compare names in
  let rec find = function
    | a :: (b :: _ as rest) -> if String.equal a b then Some a else find rest
    | [ _ ] | [] -> None
  in
  find sorted

(* Mirrors the Web layer's [Uri.host] (this library sits below it in
   the stack): an update target addresses a remote store iff it has a
   host part — everything up to the first '/' after an optional
   scheme. *)
let host_of target =
  let stripped =
    match String.index_opt target ':' with
    | Some i
      when i + 2 < String.length target
           && target.[i + 1] = '/'
           && target.[i + 2] = '/' ->
        String.sub target (i + 3) (String.length target - i - 3)
    | _ -> target
  in
  match String.index_opt stripped '/' with
  | Some i -> String.sub stripped 0 i
  | None -> stripped

let check_atomic_hosts ~where ~resolve ~note action =
  List.iter
    (fun block ->
      let hosts =
        Action.update_targets ~resolve block
        |> List.map host_of
        |> List.filter (fun h -> h <> "")
        |> List.sort_uniq String.compare
      in
      match hosts with
      | _ :: _ :: _ ->
          note
            (Fmt.str
               "%s: transactional block updates stores on several nodes (%s) — \
                cross-node atomicity is not available"
               where
               (String.concat ", " hosts))
      | _ -> ())
    (Action.atomic_blocks action)

let validate set =
  let problems = ref [] in
  let note msg = problems := msg :: !problems in
  let rec check chain set =
    let chain = set :: chain in
    (match dup_names (List.map (fun r -> r.Eca.name) set.rules) with
    | Some n -> note (Fmt.str "duplicate rule name %S in rule set %s" n set.name)
    | None -> ());
    (match dup_names (List.map fst set.procedures) with
    | Some n -> note (Fmt.str "duplicate procedure name %S in rule set %s" n set.name)
    | None -> ());
    let resolve = lookup_procedure chain in
    List.iter
      (fun rule ->
        List.iter
          (fun action ->
            List.iter
              (fun proc ->
                if Option.is_none (lookup_procedure chain proc) then
                  note
                    (Fmt.str "rule %s in set %s calls unknown procedure %s" rule.Eca.name
                       set.name proc))
              (called_procedures action);
            check_atomic_hosts
              ~where:(Fmt.str "rule %s in set %s" rule.Eca.name set.name)
              ~resolve ~note action)
          (rule_actions rule))
      set.rules;
    (* procedure bodies may call procedures too *)
    List.iter
      (fun (pname, proc) ->
        List.iter
          (fun callee ->
            if Option.is_none (lookup_procedure chain callee) then
              note
                (Fmt.str "procedure %s in set %s calls unknown procedure %s" pname set.name
                   callee))
          (called_procedures proc.Action.body);
        check_atomic_hosts
          ~where:(Fmt.str "procedure %s in set %s" pname set.name)
          ~resolve ~note proc.Action.body)
      set.procedures;
    List.iter (check chain) set.children
  in
  check [] set;
  (* Qualified ids must be unique across the whole tree: sibling sets
     with the same name would otherwise make their rules shadow each
     other silently — find_rule, removal, and stats all address rules
     by qualified name. *)
  (match dup_names (List.map (fun (qn, _, _) -> qn) (scoped_rules set)) with
  | Some qn -> note (Fmt.str "duplicate qualified rule id %S across rule sets" qn)
  | None -> ());
  match !problems with [] -> Ok () | p :: _ -> Error p
