(** Digest-bucketed, refcounted node registry — the bookkeeping shared
    by {!Alpha} (atomic matchers) and {!Beta} (composite join
    pipelines).

    Nodes are keyed by a digest of their registration key; structural
    equality ([NODE.equal]) decides reuse {e within} a bucket, so
    digest collisions only cost duplicated nodes, never wrong answers.
    Refcounts track live handles: a node is shed the moment its last
    handle is released, and its bucket with it when it empties — rule
    removal must not leak matchers or join state. *)

module type NODE = sig
  type t
  (** A shared node.  Carries its own refcount and bucket digest so the
      registry stays a pure container. *)

  type key
  (** What rules register: the atom or (sub-query, window context)
      pair a node is built from. *)

  val equal : key -> t -> bool
  (** Structural equality of a registration key against an existing
      node — the in-bucket collision guard. *)

  val bucket : t -> string
  (** The digest the node was registered under. *)

  val refs : t -> int
  val set_refs : t -> int -> unit
end

module Make (N : NODE) : sig
  type t

  val create : name:string -> digest:(N.key -> string) -> t
  (** [name] prefixes error messages ("Alpha", "Beta"); [digest] is the
      bucket key function (overridable for collision tests). *)

  val register : t -> N.key -> build:(digest:string -> N.t) -> N.t * bool
  (** Reuses the node of a structurally-equal key registered before
      (bumping its refcount), else calls [build] — which must record
      [digest] as the node's bucket — and adopts the result with one
      reference.  The boolean is [true] when the node is fresh. *)

  val release : t -> N.t -> unit
  (** Drop one reference; sheds the node (and its bucket, when empty)
      at zero.  Raises [Invalid_argument "<name>.release: handle
      already released"] on a dead handle. *)

  val distinct : t -> int
  (** Live nodes across all buckets. *)

  val registrations : t -> int
  (** Live handles; [/ distinct] = sharing factor. *)

  val fold : (N.t -> 'a -> 'a) -> t -> 'a -> 'a
end
