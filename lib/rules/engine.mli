(** The local reactive rule engine (Thesis 2).

    One engine per Web site: "each Web site manages its own rule base
    and determines locally which of the rules fire."  The engine owns
    the compiled event-query state of every ECA rule and the node's
    event derivation network; it acts on the world only through the
    capability records it is handed ([env] for reading, [ops] for
    writing), so global behaviour arises exclusively from event-based
    communication and Web data access.

    Expired events (Thesis 4) are dropped on arrival, before any rule
    sees them. *)

open Xchange_query
open Xchange_event
open Xchange_obs

type t

val create :
  ?horizon:Clock.span ->
  ?index:bool ->
  ?subindex:bool ->
  ?share:bool ->
  ?fresh_event_id:(unit -> int) ->
  Ruleset.t ->
  (t, string) result
(** Validates the rule set (duplicate names, unresolved procedure
    calls), every rule's event query, and the (non-recursive) event
    derivation program, then compiles one incremental engine per rule.

    [index] (default true) dispatches events through a precomputed
    [label -> rules] hash table (plus a wildcard bucket for rules
    without a label constraint): an event only touches rules that can
    react to it, instead of scanning the whole rule base.  A rule whose
    query names only other labels is not fed the event (its absence
    timers are still advanced, preserving semantics — a separate
    clock-observer bucket).

    [subindex] (default: on unless [XCHANGE_NO_SUBINDEX=1]; only
    meaningful with [index]) replaces the flat label buckets with a
    shared {!Sub_index} over every rule atom: an event reaches only
    rules with an atom whose label {e and} payload fingerprint it can
    satisfy, so rules refuted by the published term's shape are never
    visited.  Outcomes are identical across all three modes
    (property-tested); disable them only for that comparison.

    [share] (default: on unless [XCHANGE_NO_SHARE=1]) deduplicates
    rule evaluation across the whole rule base through two shared
    networks.  The {!Alpha} network dedupes atomic event matchers:
    structurally-identical atoms — in ECA rules and event-derivation
    rules alike — evaluate a given occurrence once and fan the
    substitutions out to every subscribing rule, so large rule sets
    with overlapping patterns pay per {e distinct} pattern, not per
    rule.  The {!Beta} network dedupes composite join state: rules
    whose (alpha-renamed) And/Seq/Times subtrees coincide share one
    join pipeline and one instance store, each event joined once per
    distinct subtree — per-rule state shrinks to a thin projection
    (variable renaming, selection, consumption, firing).  Shared and
    unshared outcomes are identical (property-tested, [test_alpha] /
    [test_beta]). *)

(** [fresh_event_id] allocates ids for events derived by the engine's
    derivation network (typically the owning node's origin lane, see
    {!Event.scoped_id}); preserved across {!load_ruleset}.  Defaults to
    the global [Event] counter. *)

val create_exn :
  ?horizon:Clock.span ->
  ?index:bool ->
  ?subindex:bool ->
  ?share:bool ->
  ?fresh_event_id:(unit -> int) ->
  Ruleset.t ->
  t

type outcome = {
  firings : Eca.firing list;
  derived_events : Event.t list;
  errors : (string * string) list;  (** (qualified rule name, message) *)
}

val handle_event : t -> env:Condition.env -> ops:Action.ops -> Event.t -> outcome
(** Feeds the event (and the events it derives) to every rule. *)

val advance : t -> env:Condition.env -> ops:Action.ops -> Clock.time -> outcome
(** Moves the engine clock: absence deadlines can fire rules. *)

val load_ruleset : t -> Ruleset.t -> (t, string) result
(** Meta-programming support (Thesis 11): a new rule set received as a
    message is merged as a child of the engine's root rule set; the
    result is a fresh engine sharing no event state with [t].  Existing
    compiled state of [t] is unaffected. *)

val ruleset : t -> Ruleset.t
val rule_names : t -> string list
val stats : t -> (string * Eca.stats) list
val total_condition_evaluations : t -> int
val live_instances : t -> int
(** Stored partial matches across all rules plus the shared beta
    pipelines (Thesis 4 memory proxy). *)

val events_seen : t -> int

(** {1 Scheduler integration (Theses 2-3, 10)}

    The engine never talks to the network itself, but the Web substrate
    needs two static facts to drive it from a discrete-event scheduler:
    which remote resources rule processing can read (prefetched through
    real Get/Response round-trips before the engine runs), and when the
    next rule timer is due (scheduled as an occurrence instead of
    relying on heartbeat polling). *)

val remote_resources : t -> ([ `Doc | `Rdf ] * string) list
(** Remote URIs any rule condition, embedded action condition, visible
    view body, or procedure body can touch.  Sorted, deduplicated;
    recomputed by {!load_ruleset}. *)

val clocked_remote_resources : t -> ([ `Doc | `Rdf ] * string) list
(** Same, restricted to timer-bearing rules — the prefetch set for
    engine {!advance}.  Empty when no rule has absence timers. *)

val next_deadline : t -> Clock.time option
(** Earliest pending absence deadline across all rules ([None] when no
    timer is armed).  Event-derivation timers are not included; a
    periodic heartbeat still covers those. *)

(** {1 Dispatch observability} *)

type index_stats = {
  mutable dispatch_lookups : int;  (** event batches routed through the table *)
  mutable rules_fed : int;  (** (rule, event) feeds that passed dispatch *)
  mutable rules_skipped : int;  (** rules not even visited for a batch *)
  mutable clock_advances : int;
      (** timer-only advances of skipped absence rules *)
}

val index_stats : t -> index_stats
(** Counters since [create]; all zero when [index] is false.  A legacy
    view built from the engine's {!Obs.Metrics} registry cells at call
    time (a snapshot, not a live reference). *)

val metrics : t -> Obs.Metrics.t
(** The engine's registry: the [engine.*] dispatch counters and
    [engine.events_seen], plus pull cells sampling the per-rule and
    join-level aggregates ([engine.live_instances],
    [engine.condition_evaluations], [engine.join.*]).  When tracing is
    on ({!Obs.set_enabled}), {!handle_event} also emits an [event] span
    with nested [detect] / [firing] spans per reacting rule. *)

val join_stats : t -> Incremental.join_stats
(** Join-level counters summed over every compiled rule engine, the
    event-derivation network and the shared beta pipelines:
    hash-partition probes, candidate pairs enumerated vs skipped,
    instances pruned by window/horizon retention.  [index] also selects
    the storage mode of these inner engines (hash-partitioned vs
    nested-loop joins), so comparing [join_stats] across the two modes
    measures the composite-event hot path in isolation — and comparing
    [pairs_probed] across [~share] modes measures the cross-rule join
    sharing (BENCH_rules' composite sweep). *)

val dispatch_labels : t -> int
(** Distinct labels in the dispatch table. *)

val subindex_stats : t -> Sub_index.stats option
(** Counters of the rule-atom sub-index ([None] when dispatch runs on
    label buckets or a full scan).  Its cells also live in {!metrics}
    under [subindex.*]. *)

val alpha_stats : t -> Alpha.stats option
(** Counters of the shared alpha network ([None] under [~share:false]):
    distinct nodes vs registrations (the sharing factor), real
    evaluations vs memo hits (the shared-node hit rate), and fanout.
    Its cells also live in {!metrics} under [alpha.*]. *)

val beta_stats : t -> Beta.stats option
(** Counters of the shared beta network ([None] under [~share:false]):
    distinct pipelines vs registrations, real pipeline steps vs memo
    hits, fanout, and join pairs probed inside shared pipelines.  Its
    cells also live in {!metrics} under [beta.*]. *)

val beta_join_stats : t -> Incremental.join_stats option
(** The shared-pipeline share of {!join_stats}, on its own. *)
