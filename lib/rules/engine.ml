open Xchange_query
open Xchange_event
open Xchange_obs

type compiled = {
  qualified : string;
  rule : Eca.t;
  scope : Ruleset.scope;
  engine : Incremental.t;
  stats : Eca.stats;
  labels : string list option;
      (** event labels the rule's query can react to; [None] = any
          (some atomic sub-query has no label constraint) *)
  needs_clock : bool;  (** the query contains absence operators *)
}

type index_stats = {
  mutable dispatch_lookups : int;
  mutable rules_fed : int;
  mutable rules_skipped : int;
  mutable clock_advances : int;
}

type cells = {
  c_lookups : Obs.Metrics.Counter.t;
  c_fed : Obs.Metrics.Counter.t;
  c_skipped : Obs.Metrics.Counter.t;
  c_clock : Obs.Metrics.Counter.t;
  c_seen : Obs.Metrics.Counter.t;
}

type t = {
  root : Ruleset.t;
  compiled : compiled array;  (** in declaration order *)
  by_label : (string, int list) Hashtbl.t;
      (** event label -> indices of rules that can react, ascending *)
  wildcard : int list;  (** rules reacting to any label ([labels = None]) *)
  clocked : int list;  (** rules with absence timers to advance when skipped *)
  always_bucket : int list;
      (** wildcard + clocked merged once at build time: the rules every
          batch visits under label dispatch *)
  sub : int Sub_index.t option;
      (** every rule atom registered by (label, payload fingerprint);
          [Some] iff [index] and the sub-index is enabled — dispatch then
          refutes rules whose atom patterns cannot match the payload,
          not just label mismatches *)
  alpha : Alpha.t option;
      (** the shared alpha network every rule's atomic matchers (and the
          derivation network's) are registered in; [None] under
          [~share:false] / [XCHANGE_NO_SHARE=1] *)
  beta : Beta.t option;
      (** the shared beta network every rule's composite subtrees (and
          the derivation network's) register in; same lifecycle and
          hatch as [alpha] *)
  derivation : Deductive_event.t;
  index : bool;
  subindex : bool;  (** as requested at [create] (kept for {!load_ruleset}) *)
  share : bool;  (** as requested at [create] (kept for {!load_ruleset}) *)
  fresh_event_id : (unit -> int) option;
      (** derived-event id allocator (kept for {!load_ruleset}) *)
  remote_deps : ([ `Doc | `Rdf ] * string) list;
      (** remote URIs any rule/view/procedure condition can touch *)
  clocked_remote_deps : ([ `Doc | `Rdf ] * string) list;
      (** remote URIs reachable from timer-bearing rules only *)
  m : Obs.Metrics.t;
  c : cells;
}

let join_stats t =
  Incremental.sum_join_stats
    (Deductive_event.join_stats t.derivation
    :: (match t.beta with Some b -> Beta.join_stats b | None -> Incremental.zero_join_stats)
    :: Array.to_list (Array.map (fun cr -> Incremental.join_stats cr.engine) t.compiled))

let total_condition_evaluations t =
  Array.fold_left (fun acc cr -> acc + cr.stats.Eca.condition_evaluations) 0 t.compiled

let live_instances t =
  Array.fold_left (fun acc cr -> acc + Incremental.live_instances cr.engine) 0 t.compiled
  + match t.beta with Some b -> Beta.live_instances b | None -> 0

let rule_labels rule =
  let atoms = Xchange_event.Event_query.atoms rule.Eca.event in
  let rec collect acc = function
    | [] -> Some (List.sort_uniq String.compare acc)
    | (a : Xchange_event.Event_query.atomic) :: rest -> (
        match a.Xchange_event.Event_query.label with
        | None -> None
        | Some l -> collect (l :: acc) rest)
  in
  collect [] atoms

let ( let* ) = Result.bind

(* Static remote-resource analysis: every condition a compiled rule can
   evaluate — its branches, conditions embedded in its actions, and the
   bodies of the views visible from its scope.  Resources are literals
   in the condition language, so this is complete: the Web substrate
   prefetches exactly these URIs through real round-trips before
   handing an event to the engine. *)
let rule_conditions cr =
  let branch_conds = List.map (fun b -> b.Eca.condition) cr.rule.Eca.branches in
  let action_conds =
    List.concat_map Action.conditions
      (List.map (fun b -> b.Eca.action) cr.rule.Eca.branches
      @ Option.to_list cr.rule.Eca.else_action)
  in
  let view_conds =
    List.map (fun (r : Deductive.rule) -> r.Deductive.body) (Ruleset.views_in_scope cr.scope)
  in
  branch_conds @ action_conds @ view_conds

let remote_of conds =
  List.concat_map Condition.resources conds
  |> List.filter_map (function
       | kind, Condition.Remote uri -> Some (kind, uri)
       | _, (Condition.Local _ | Condition.View _) -> None)
  |> List.sort_uniq Stdlib.compare

(* merge two ascending duplicate-free int lists *)
let merge_sorted a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a', y :: b' ->
        if x < y then go a' b (x :: acc)
        else if y < x then go a b' (y :: acc)
        else go a' b' (x :: acc)
  in
  go a b []

let create ?horizon ?(index = true) ?(subindex = Sub_index.enabled ())
    ?(share = Alpha.enabled ()) ?fresh_event_id root =
  let* () = Ruleset.validate root in
  let m = Obs.Metrics.create () in
  (* One alpha network per engine: every rule's atomic matchers — and
     the event-derivation network's — register in it, so an occurrence
     is evaluated once per distinct pattern whatever the rule count. *)
  let alpha = if share then Some (Alpha.create ~metrics:m ()) else None in
  let share_hook = Option.map Alpha.subscribe alpha in
  (* One beta network per engine: every rule's composite subtrees — and
     the derivation network's — register in it, so an event is joined
     once per distinct subtree whatever the rule count.  Its pipelines
     share atoms through the same alpha network. *)
  let beta =
    if share then
      Some (Beta.create ~metrics:m ?horizon ~index ?share_atoms:share_hook ())
    else None
  in
  let share_sub_hook = Option.map Beta.subscribe beta in
  let* compiled =
    List.fold_left
      (fun acc (qualified, scope, rule) ->
        let* acc = acc in
        match
          Incremental.create ~consume:rule.Eca.consume ~selection:rule.Eca.selection ?horizon
            ~index ?share:share_hook ?share_sub:share_sub_hook rule.Eca.event
        with
        | Error e -> Error (Fmt.str "rule %s: %s" qualified e)
        | Ok engine ->
            Ok
              ({
                 qualified;
                 rule;
                 scope;
                 engine;
                 stats = Eca.fresh_stats ();
                 labels = rule_labels rule;
                 needs_clock = Event_query.has_timers rule.Eca.event;
               }
              :: acc))
      (Ok []) (Ruleset.scoped_rules root)
  in
  (* every scope's visible views must be stratified *)
  let* () =
    List.fold_left
      (fun acc (qualified, scope, _) ->
        let* () = acc in
        match Deductive.check_stratified (Ruleset.views_in_scope scope) with
        | Ok () -> Ok ()
        | Error e -> Error (Fmt.str "rule %s: %s" qualified e))
      (Ok ()) (Ruleset.scoped_rules root)
  in
  let* derivation =
    Deductive_event.compile ?horizon ~index ?share:share_hook
      ?share_sub:share_sub_hook ?fresh_id:fresh_event_id
      (Ruleset.all_event_rules root)
  in
  let compiled = Array.of_list (List.rev compiled) in
  (* Discrimination structures: one hash lookup per event replaces the
     per-event scan over all rules (Thesis 7: never re-scan). *)
  let by_label = Hashtbl.create (max 16 (Array.length compiled)) in
  let wildcard = ref [] and clocked = ref [] in
  Array.iteri
    (fun i cr ->
      (match cr.labels with
      | None -> wildcard := i :: !wildcard
      | Some ls ->
          List.iter
            (fun l ->
              let bucket =
                match Hashtbl.find_opt by_label l with Some b -> b | None -> []
              in
              Hashtbl.replace by_label l (i :: bucket))
            ls);
      if cr.needs_clock then clocked := i :: !clocked)
    compiled;
  Hashtbl.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) by_label;
  let proc_conds =
    List.concat_map
      (fun (_, (p : Action.proc)) -> Action.conditions p.Action.body)
      (Ruleset.all_procedures root)
  in
  let deps_of crs =
    remote_of (List.concat_map rule_conditions crs @ proc_conds)
  in
  let all_crs = Array.to_list compiled in
  let remote_deps = deps_of all_crs in
  let clocked_remote_deps =
    match List.filter (fun cr -> cr.needs_clock) all_crs with
    | [] -> []  (* no timer can fire, so advancing needs no prefetch *)
    | clocked_crs -> deps_of clocked_crs
  in
  let wildcard = List.rev !wildcard and clocked = List.rev !clocked in
  (* The finer discrimination level: every atomic sub-query of every
     rule, keyed by its event label and what its payload pattern
     requires.  Feeding a refuted (rule, event) pair would be a no-op —
     the atom's plan cannot match — so candidate selection is exact in
     the same sense as the label buckets, just sharper. *)
  let sub =
    if index && subindex then begin
      let s = Sub_index.create ~metrics:m () in
      Array.iteri
        (fun i cr ->
          List.iter
            (fun (a : Event_query.atomic) ->
              ignore (Sub_index.register s ?label:a.Event_query.label a.Event_query.pattern i))
            (Event_query.atoms cr.rule.Eca.event))
        compiled;
      Some s
    end
    else None
  in
  let t =
    {
      root;
      compiled;
      by_label;
      wildcard;
      clocked;
      always_bucket = merge_sorted wildcard clocked;
      sub;
      alpha;
      beta;
      derivation;
      index;
      subindex;
      share;
      fresh_event_id;
      remote_deps;
      clocked_remote_deps;
      m;
      c =
        {
          c_lookups = Obs.Metrics.counter m "engine.dispatch_lookups";
          c_fed = Obs.Metrics.counter m "engine.rules_fed";
          c_skipped = Obs.Metrics.counter m "engine.rules_skipped";
          c_clock = Obs.Metrics.counter m "engine.clock_advances";
          c_seen = Obs.Metrics.counter m "engine.events_seen";
        };
    }
  in
  (* aggregates something else already owns (per-rule Eca stats, the
     inner incremental engines): pull cells, sampled at snapshot time *)
  Obs.Metrics.gauge_fn m "engine.live_instances" (fun () -> float_of_int (live_instances t));
  Obs.Metrics.counter_fn m "engine.condition_evaluations" (fun () ->
      total_condition_evaluations t);
  Obs.Metrics.gauge_fn m "engine.dispatch_labels" (fun () ->
      float_of_int (Hashtbl.length t.by_label));
  Obs.Metrics.counter_fn m "engine.join.probes" (fun () ->
      (join_stats t).Incremental.probes);
  Obs.Metrics.counter_fn m "engine.join.pairs_probed" (fun () ->
      (join_stats t).Incremental.pairs_probed);
  Obs.Metrics.counter_fn m "engine.join.pairs_skipped" (fun () ->
      (join_stats t).Incremental.pairs_skipped);
  Obs.Metrics.counter_fn m "engine.join.instances_pruned" (fun () ->
      (join_stats t).Incremental.instances_pruned);
  Ok t

let create_exn ?horizon ?index ?subindex ?share ?fresh_event_id root =
  match create ?horizon ?index ?subindex ?share ?fresh_event_id root with
  | Ok t -> t
  | Error e -> invalid_arg ("Engine.create: " ^ e)

type outcome = {
  firings : Eca.firing list;
  derived_events : Event.t list;
  errors : (string * string) list;
}

let empty_outcome = { firings = []; derived_events = []; errors = [] }

(* Outcomes are accumulated with [firings] and [errors] reversed (cons /
   rev_append instead of the quadratic [acc @ new]); [finish] restores
   processing order once per entry point. *)
let finish acc = { acc with firings = List.rev acc.firings; errors = List.rev acc.errors }

let fire_detections ~env ~ops cr detections acc =
  List.fold_left
    (fun acc detection ->
      let span =
        if Obs.enabled () then
          Obs.Trace.begin_span ~cat:"rule"
            ~args:[ ("rule", cr.qualified) ]
            ~name:"firing" ~vt:(ops.Action.now ()) ()
        else 0
      in
      let scoped_env = Deductive.extend_env env (Ruleset.views_in_scope cr.scope) in
      let procs name = Ruleset.lookup_procedure cr.scope name in
      let results =
        Eca.fire ~stats:cr.stats ~env:scoped_env ~ops ~procs cr.rule detection
      in
      let acc =
        List.fold_left
          (fun acc result ->
            match result with
            | Ok firings -> { acc with firings = List.rev_append firings acc.firings }
            | Error e -> { acc with errors = (cr.qualified, e) :: acc.errors })
          acc results
      in
      Obs.Trace.end_span span ~vt:(ops.Action.now ());
      acc)
    acc detections

(* Per-event candidate rules from the sub-index, ascending: rules with
   an atom whose label and payload fingerprint the event satisfies.
   Refuted rules would be no-op feeds (no atom plan can match), exactly
   like label misses — and like those, skipped clocked rules still get
   their timers advanced. *)
let event_candidates sub all_events =
  List.map
    (fun ev ->
      ( ev,
        List.sort_uniq Int.compare
          (List.map snd (Sub_index.lookup sub ~label:ev.Event.label ev.Event.payload)) ))
    all_events

(* Rule indices that must see this event batch, ascending (= declaration
   order, so firings come out exactly as the full scan produced them).
   With the sub-index: the union of the batch's per-event candidates
   plus the clock observers.  With label dispatch: the buckets of the
   batch's labels, rules without a label constraint, and — because
   skipped rules still observe time — every rule with absence timers.
   All other rules would be no-ops: their atoms cannot match and they
   have no deadlines to resolve. *)
let dispatch t candidates all_events =
  if not t.index then List.init (Array.length t.compiled) Fun.id
  else begin
    Obs.Metrics.Counter.incr t.c.c_lookups;
    let visit =
      match candidates with
      | Some per_event ->
          List.fold_left (fun acc (_, cands) -> merge_sorted acc cands) t.clocked per_event
      | None ->
          let buckets =
            List.concat_map
              (fun ev ->
                match Hashtbl.find_opt t.by_label ev.Event.label with
                | Some bucket -> bucket
                | None -> [])
              all_events
          in
          merge_sorted t.always_bucket (List.sort_uniq Int.compare buckets)
    in
    Obs.Metrics.Counter.incr ~by:(Array.length t.compiled - List.length visit)
      t.c.c_skipped;
    visit
  end

let handle_event t ~env ~ops event =
  Obs.Metrics.Counter.incr t.c.c_seen;
  if Event.expired event (ops.Action.now ()) then empty_outcome
  else begin
    let span =
      if Obs.enabled () then
        Obs.Trace.begin_span ~cat:"engine"
          ~args:[ ("label", event.Event.label) ]
          ~name:"event" ~vt:(ops.Action.now ()) ()
      else 0
    in
    (* one beta memo generation per batch: the first subscriber an
       event reaches steps the shared pipeline, the rest hit the memo *)
    Option.iter Beta.begin_batch t.beta;
    let derived = Deductive_event.feed t.derivation event in
    let all_events = event :: derived in
    let candidates = Option.map (fun sub -> event_candidates sub all_events) t.sub in
    let acc =
      List.fold_left
        (fun acc i ->
          let cr = t.compiled.(i) in
          List.fold_left
            (fun acc ev ->
              let relevant =
                (not t.index)
                ||
                match candidates with
                | Some per_event -> List.mem i (List.assq ev per_event)
                | None -> (
                    match cr.labels with
                    | None -> true
                    | Some labels -> List.mem ev.Event.label labels)
              in
              if relevant then begin
                if t.index then Obs.Metrics.Counter.incr t.c.c_fed;
                let detections = Incremental.feed cr.engine ev in
                if Obs.enabled () && detections <> [] then
                  ignore
                    (Obs.Trace.instant ~cat:"rule"
                       ~args:
                         [
                           ("rule", cr.qualified);
                           ("count", string_of_int (List.length detections));
                         ]
                       ~name:"detect" ~vt:(ops.Action.now ()) ());
                fire_detections ~env ~ops cr detections acc
              end
              else if cr.needs_clock then begin
                (* skipped rules still observe time: resolve absence
                   deadlines strictly before the event, exactly as a
                   non-matching feed would *)
                Obs.Metrics.Counter.incr t.c.c_clock;
                fire_detections ~env ~ops cr
                  (Incremental.advance_to cr.engine (Event.time ev - 1))
                  acc
              end
              else acc)
            acc all_events)
        { empty_outcome with derived_events = derived }
        (dispatch t candidates all_events)
    in
    let out = finish acc in
    (if span <> 0 then
       Obs.Trace.end_span span ~vt:(ops.Action.now ())
         ~args:
           [
             ("firings", string_of_int (List.length out.firings));
             ("derived", string_of_int (List.length out.derived_events));
           ]);
    out
  end

let advance t ~env ~ops time =
  Option.iter Beta.begin_batch t.beta;
  let derived = Deductive_event.advance_to t.derivation time in
  let acc =
    Array.fold_left
      (fun acc cr ->
        let detections =
          Incremental.advance_to cr.engine time
          @ List.concat_map (fun ev -> Incremental.feed cr.engine ev) derived
        in
        fire_detections ~env ~ops cr detections acc)
      { empty_outcome with derived_events = derived }
      t.compiled
  in
  finish acc

let load_ruleset t incoming =
  let merged = { t.root with Ruleset.children = t.root.Ruleset.children @ [ incoming ] } in
  create ~index:t.index ~subindex:t.subindex ~share:t.share
    ?fresh_event_id:t.fresh_event_id merged

let ruleset t = t.root
let rule_names t = Array.to_list (Array.map (fun cr -> cr.qualified) t.compiled)
let stats t = Array.to_list (Array.map (fun cr -> (cr.qualified, cr.stats)) t.compiled)
let events_seen t = Obs.Metrics.Counter.value t.c.c_seen
let metrics t = t.m

let index_stats t =
  {
    dispatch_lookups = Obs.Metrics.Counter.value t.c.c_lookups;
    rules_fed = Obs.Metrics.Counter.value t.c.c_fed;
    rules_skipped = Obs.Metrics.Counter.value t.c.c_skipped;
    clock_advances = Obs.Metrics.Counter.value t.c.c_clock;
  }

let dispatch_labels t = Hashtbl.length t.by_label
let subindex_stats t = Option.map Sub_index.stats t.sub
let alpha_stats t = Option.map Alpha.stats t.alpha
let beta_stats t = Option.map Beta.stats t.beta
let beta_join_stats t = Option.map Beta.join_stats t.beta
let remote_resources t = t.remote_deps
let clocked_remote_resources t = t.clocked_remote_deps

let min_opt a b =
  match (a, b) with None, x | x, None -> x | Some x, Some y -> Some (min x y)

let next_deadline t =
  Array.fold_left
    (fun acc cr -> min_opt acc (Incremental.next_deadline cr.engine))
    None t.compiled
