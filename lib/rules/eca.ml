open Xchange_query
open Xchange_event
open Xchange_obs

type branch = { condition : Condition.t; action : Action.t }

type t = {
  name : string;
  event : Event_query.t;
  branches : branch list;
  else_action : Action.t option;
  consume : bool;
  selection : Incremental.selection;
}

let make ?(consume = false) ?(selection = Incremental.Each) ?else_ ~name ~on
    ?(if_ = Condition.True) action =
  {
    name;
    event = on;
    branches = [ { condition = if_; action } ];
    else_action = else_;
    consume;
    selection;
  }

let make_ecnan ?(consume = false) ?(selection = Incremental.Each) ?else_ ~name ~on branches =
  { name; event = on; branches; else_action = else_; consume; selection }

type firing = {
  rule : string;
  branch : int option;
  bindings : Subst.t;
  outcome : Action.outcome;
}

type stats = {
  mutable detections : int;
  mutable condition_evaluations : int;
  mutable firings : int;
  mutable errors : int;
}

let fresh_stats () = { detections = 0; condition_evaluations = 0; firings = 0; errors = 0 }

let fire ?stats ~env ~ops ~procs rule (detection : Instance.t) =
  let bump f = match stats with Some s -> f s | None -> () in
  bump (fun s -> s.detections <- s.detections + 1);
  let subst = detection.Instance.subst in
  let run_action ~branch ~answer_subst ~answers action =
    (* sends the action performs emit their spans under this one, so the
       trace tree runs detection -> action -> outbound messages *)
    let span =
      if Obs.enabled () then
        Obs.Trace.begin_span ~cat:"action"
          ~args:[ ("rule", rule.name) ]
          ~name:"action" ~vt:(ops.Action.now ()) ()
      else 0
    in
    let result = Action.exec ~env ~ops ~procs ~subst:answer_subst ~answers action in
    Obs.Trace.end_span span ~vt:(ops.Action.now ());
    match result with
    | Ok outcome ->
        bump (fun s -> s.firings <- s.firings + 1);
        Ok [ { rule = rule.name; branch; bindings = answer_subst; outcome } ]
    | Error e ->
        bump (fun s -> s.errors <- s.errors + 1);
        Error e
  in
  let rec try_branches i = function
    | [] -> (
        match rule.else_action with
        | Some action -> [ run_action ~branch:None ~answer_subst:subst ~answers:[ subst ] action ]
        | None -> [])
    | b :: rest -> (
        bump (fun s -> s.condition_evaluations <- s.condition_evaluations + 1);
        match Condition.eval env subst b.condition with
        | [] -> try_branches (i + 1) rest
        | answers ->
            List.map
              (fun answer_subst -> run_action ~branch:(Some i) ~answer_subst ~answers b.action)
              answers)
  in
  try_branches 0 rule.branches

let pp_branch ppf (i, b) =
  Fmt.pf ppf "if[%d] %a do %a" i Condition.pp b.condition Action.pp b.action

let pp ppf rule =
  Fmt.pf ppf "@[<v 2>rule %s:@ on %a@ %a%a@]" rule.name Event_query.pp rule.event
    Fmt.(list ~sep:cut pp_branch)
    (List.mapi (fun i b -> (i, b)) rule.branches)
    Fmt.(option (any "@ else do " ++ Action.pp))
    rule.else_action
