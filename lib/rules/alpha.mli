(** Shared alpha network: cross-rule deduplication of atomic event
    matchers (the Rete "alpha memory" idea, recast for event queries).

    Thesis 7's "never re-scan" is honoured {e per rule} by
    {!Xchange_event.Incremental}; with thousands of ECA / production
    rules over overlapping patterns the engines still ran one atomic
    matcher per rule per event — 10k rules with the same
    [order{{var X}}] atom evaluated the same pattern against the same
    payload 10k times.  {!Xchange_query.Sub_index} (PR 6) shares
    candidate {e selection}; this module shares the {e evaluation}
    behind it.

    An [Alpha.t] holds one node per {b distinct} atomic event query,
    keyed by its structural digest ({!Xchange_event.Event_query.atomic_digest},
    collision-safe: digest buckets verify structural equality).  A node
    owns the compiled payload matcher and a small per-occurrence memo:
    the first subscribing rule an event reaches evaluates the pattern
    once, every other rule's beta network is handed the memoized
    substitution set.  Per-rule state — partial matches, joins, windows,
    consumption — stays entirely inside each rule's engine; the network
    shares only pure (pattern, payload) evaluation, which is why shared
    and unshared runs are detection-for-detection identical
    (property-tested, [test/test_alpha.ml]).

    Plumbing: {!Xchange_rules.Engine} creates one network per engine
    and threads {!subscribe} into every rule's
    {!Xchange_event.Incremental.create} and the event-derivation
    network's {!Xchange_event.Deductive_event.compile} as [~share].
    [XCHANGE_NO_SHARE=1] (see {!Xchange_core.Escape}) keeps the
    per-rule matchers as the differential oracle. *)

open Xchange_event
open Xchange_obs

type t

type handle
(** One live subscription of one rule atom to a shared node. *)

val create : ?metrics:Obs.Metrics.t -> ?digest:(Event_query.atomic -> string) -> unit -> t
(** [metrics] registers the [alpha.*] cells below on the given
    registry.  [digest] overrides the structural key function — only
    for tests that force digest collisions to exercise the in-bucket
    structural-equality verification; production callers use the
    default ({!Event_query.atomic_digest}). *)

val enabled : unit -> bool
(** [false] when [XCHANGE_NO_SHARE=1] is set — the escape hatch
    restoring per-rule matchers ({!Xchange_core.Escape.no_share}). *)

val register : t -> Event_query.atomic -> handle
(** Subscribe an atom: reuses the node of a structurally-equal atom
    registered before, else compiles a fresh one. *)

val matcher : t -> handle -> Incremental.atom_matcher
(** The shared matcher behind a handle: envelope gate, then memoized
    payload evaluation.  Behaves exactly like the per-rule default
    matcher (same substitution sets, same
    {!Incremental.atomic_matcher_runs} accounting on real runs). *)

val release : t -> handle -> unit
(** Drop one subscription; the shared node (and its digest bucket) is
    shed when its last subscriber releases.  Releasing an
    already-released handle is an error ([Invalid_argument]). *)

val subscribe : t -> Event_query.atomic -> Incremental.atom_matcher
(** [register] + [matcher] — the [~share] hook engines pass to
    {!Incremental.create} / {!Deductive_event.compile} when the handle
    is not needed (the network lives and dies with the engine). *)

(** {1 Observability}

    Also exported as [alpha.nodes], [alpha.registrations],
    [alpha.evaluations], [alpha.hits] and [alpha.fanout] cells when
    [create] was given a metrics registry. *)

type stats = {
  distinct_nodes : int;  (** live shared nodes = distinct atomic patterns *)
  registrations : int;  (** live subscriptions; [/ distinct_nodes] = sharing factor *)
  evaluations : int;  (** real payload-matcher runs (memo misses) *)
  hits : int;  (** matcher calls served from the memo *)
  fanout : int;  (** substitutions delivered to subscribers, fresh + memoized *)
}

val stats : t -> stats
(** Counters since [create]; the shared-node hit rate is
    [hits /. (hits + evaluations)]. *)
