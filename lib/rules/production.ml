open Xchange_query
open Xchange_obs

type rule = { name : string; condition : Condition.t; action : Action.t }

type stats = {
  mutable cycles : int;
  mutable condition_evaluations : int;
  mutable condition_hits : int;
  mutable firings : int;
  mutable errors : int;
}

(* Shared-condition group: rules with structurally equal conditions
   evaluate once per cycle *generation* — any action execution bumps
   the generation, because an action may mutate the data a shared
   condition reads and a later rule must observe the post-action
   answers exactly as it would evaluating privately. *)
type group = {
  g_condition : Condition.t;
  mutable g_gen : int;  (* generation the cache was filled at; -1 = never *)
  mutable g_answers : Subst.set;
}

type state = { rule : rule; group : group option; mutable previous : Subst.set }

type t = {
  rules : state list;
  mutable gen : int;  (* bumped per cycle and after every action *)
  m : Obs.Metrics.t;
  c_cycles : Obs.Metrics.Counter.t;
  c_evals : Obs.Metrics.Counter.t;
  c_hits : Obs.Metrics.Counter.t;
  c_firings : Obs.Metrics.Counter.t;
  c_errors : Obs.Metrics.Counter.t;
}

let create ?(share = Alpha.enabled ()) rules =
  let m = Obs.Metrics.create () in
  let groups = ref [] in
  let group_of condition =
    match List.find_opt (fun g -> g.g_condition = condition) !groups with
    | Some g -> g
    | None ->
        let g = { g_condition = condition; g_gen = -1; g_answers = [] } in
        groups := g :: !groups;
        g
  in
  {
    rules =
      List.map
        (fun rule ->
          {
            rule;
            group = (if share then Some (group_of rule.condition) else None);
            previous = [];
          })
        rules;
    gen = 0;
    m;
    c_cycles = Obs.Metrics.counter m "production.cycles";
    c_evals = Obs.Metrics.counter m "production.condition_evaluations";
    c_hits = Obs.Metrics.counter m "production.condition_hits";
    c_firings = Obs.Metrics.counter m "production.firings";
    c_errors = Obs.Metrics.counter m "production.errors";
  }

let metrics t = t.m

let stats t =
  {
    cycles = Obs.Metrics.Counter.value t.c_cycles;
    condition_evaluations = Obs.Metrics.Counter.value t.c_evals;
    condition_hits = Obs.Metrics.Counter.value t.c_hits;
    firings = Obs.Metrics.Counter.value t.c_firings;
    errors = Obs.Metrics.Counter.value t.c_errors;
  }

let poll ~env ~ops ~procs t =
  Obs.Metrics.Counter.incr t.c_cycles;
  t.gen <- t.gen + 1;
  List.concat_map
    (fun st ->
      let evaluate () =
        Obs.Metrics.Counter.incr t.c_evals;
        Condition.eval env Subst.empty st.rule.condition
      in
      let answers =
        match st.group with
        | None -> evaluate ()
        | Some g ->
            if g.g_gen = t.gen then begin
              Obs.Metrics.Counter.incr t.c_hits;
              g.g_answers
            end
            else begin
              let a = evaluate () in
              g.g_gen <- t.gen;
              g.g_answers <- a;
              a
            end
      in
      let fresh =
        List.filter (fun a -> not (List.exists (Subst.equal a) st.previous)) answers
      in
      st.previous <- answers;
      List.filter_map
        (fun subst ->
          let result = Action.exec ~env ~ops ~procs ~subst ~answers st.rule.action in
          (* the action may have written what a shared condition reads:
             invalidate every group cache filled this generation *)
          t.gen <- t.gen + 1;
          match result with
          | Ok _ ->
              Obs.Metrics.Counter.incr t.c_firings;
              Some (st.rule.name, subst)
          | Error _ ->
              Obs.Metrics.Counter.incr t.c_errors;
              None)
        fresh)
    t.rules
