open Xchange_query
open Xchange_obs

type rule = { name : string; condition : Condition.t; action : Action.t }

type stats = {
  mutable cycles : int;
  mutable condition_evaluations : int;
  mutable firings : int;
  mutable errors : int;
}

type state = { rule : rule; mutable previous : Subst.set }

type t = {
  rules : state list;
  m : Obs.Metrics.t;
  c_cycles : Obs.Metrics.Counter.t;
  c_evals : Obs.Metrics.Counter.t;
  c_firings : Obs.Metrics.Counter.t;
  c_errors : Obs.Metrics.Counter.t;
}

let create rules =
  let m = Obs.Metrics.create () in
  {
    rules = List.map (fun rule -> { rule; previous = [] }) rules;
    m;
    c_cycles = Obs.Metrics.counter m "production.cycles";
    c_evals = Obs.Metrics.counter m "production.condition_evaluations";
    c_firings = Obs.Metrics.counter m "production.firings";
    c_errors = Obs.Metrics.counter m "production.errors";
  }

let metrics t = t.m

let stats t =
  {
    cycles = Obs.Metrics.Counter.value t.c_cycles;
    condition_evaluations = Obs.Metrics.Counter.value t.c_evals;
    firings = Obs.Metrics.Counter.value t.c_firings;
    errors = Obs.Metrics.Counter.value t.c_errors;
  }

let poll ~env ~ops ~procs t =
  Obs.Metrics.Counter.incr t.c_cycles;
  List.concat_map
    (fun st ->
      Obs.Metrics.Counter.incr t.c_evals;
      let answers = Condition.eval env Subst.empty st.rule.condition in
      let fresh =
        List.filter (fun a -> not (List.exists (Subst.equal a) st.previous)) answers
      in
      st.previous <- answers;
      List.filter_map
        (fun subst ->
          match Action.exec ~env ~ops ~procs ~subst ~answers st.rule.action with
          | Ok _ ->
              Obs.Metrics.Counter.incr t.c_firings;
              Some (st.rule.name, subst)
          | Error _ ->
              Obs.Metrics.Counter.incr t.c_errors;
              None)
        fresh)
    t.rules
