(** Production (Condition-Action) rules — the baseline of Thesis 1.

    A production rule ["if condition do action"] fires when the
    condition {e becomes} true.  Footnote 4 of the paper is normative
    here: the production rule "fires only once, when the condition
    becomes true", unlike the ECA rule [on true if C do A] which would
    fire on every event while C holds.  We implement transition
    semantics at answer granularity: each polling cycle evaluates the
    condition and fires the action for every answer that was {e not} in
    the previous cycle's answer set; an answer that disappears and later
    reappears fires again.

    Production engines must be {e polled} — they have no events to react
    to — which is exactly the cost E1 measures against ECA rules. *)

open Xchange_query
open Xchange_obs

type rule = { name : string; condition : Condition.t; action : Action.t }

type t

val create : ?share:bool -> rule list -> t
(** [share] (default: on unless [XCHANGE_NO_SHARE=1]) groups rules with
    structurally equal conditions so each distinct condition is
    evaluated once per polling generation and the answers served to
    every member.  Any action execution starts a new generation —
    actions can mutate what a condition reads, so a rule polled after a
    firing re-evaluates instead of reading a stale cache; shared and
    unshared firings are therefore identical.  Per-rule [previous]
    answer sets (the transition semantics) stay private. *)

type stats = {
  mutable cycles : int;
  mutable condition_evaluations : int;
  mutable condition_hits : int;
      (** evaluations served from a shared-condition group cache *)
  mutable firings : int;
  mutable errors : int;
}

val stats : t -> stats
(** Legacy view built from the engine's {!Obs.Metrics} registry cells
    at call time (a snapshot, not a live reference). *)

val metrics : t -> Obs.Metrics.t
(** The engine's registry: [production.cycles],
    [production.condition_evaluations], [production.condition_hits],
    [production.firings], [production.errors]. *)

val poll :
  env:Condition.env ->
  ops:Action.ops ->
  procs:(string -> Action.proc option) ->
  t ->
  (string * Subst.t) list
(** One polling cycle: evaluates every rule's condition against the
    current store state and fires actions for newly-true answers.
    Returns the (rule name, answer) pairs that fired. *)
