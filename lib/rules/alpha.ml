(* Shared alpha network: one memoizing matcher per distinct atomic
   event query, fanned out to every subscribing rule.  See alpha.mli
   for the contract; the invariants maintained here:

   - a node is reachable from exactly one digest bucket, and a bucket
     holds only nodes with that digest (structural equality decides
     within the bucket, so digest collisions cost duplication of work,
     never wrong answers);
   - [refs] counts live handles; a node is shed the moment the count
     reaches zero, and its bucket with it when it empties (rule removal
     must not leak matchers — pinned by test_alpha);
   - the memo caches pure (pattern, payload) results keyed by event id,
     so serving from it is indistinguishable from re-evaluating. *)

open Xchange_query
open Xchange_event
open Xchange_obs

(* Bounded per-node memo: within one engine batch an event reaches its
   subscribers back to back, so a handful of entries suffice; the cap
   only matters when event derivation interleaves many fresh ids.
   Resetting (not evicting) on overflow is fine — the memo is a pure
   cache. *)
let memo_cap = 64

type node = {
  atom : Event_query.atomic;
  key : string;  (* digest, = the bucket this node lives in *)
  payload_matches : Xchange_data.Term.t -> Subst.set;
  memo : (int, Subst.set) Hashtbl.t;  (* event id -> substitutions *)
  mutable refs : int;  (* live handles; 0 = released, node is dead *)
}

type handle = node

type t = {
  buckets : (string, node list) Hashtbl.t;
  digest : Event_query.atomic -> string;
  mutable registrations : int;
  mutable evaluations : int;
  mutable hits : int;
  mutable fanout : int;
}

let enabled () = not Xchange_core.Escape.no_share

let distinct_nodes t = Hashtbl.fold (fun _ ns acc -> acc + List.length ns) t.buckets 0

let create ?metrics ?(digest = Event_query.atomic_digest) () =
  let t =
    {
      buckets = Hashtbl.create 64;
      digest;
      registrations = 0;
      evaluations = 0;
      hits = 0;
      fanout = 0;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.gauge_fn m "alpha.nodes" (fun () -> float_of_int (distinct_nodes t));
      Obs.Metrics.gauge_fn m "alpha.registrations" (fun () ->
          float_of_int t.registrations);
      Obs.Metrics.counter_fn m "alpha.evaluations" (fun () -> t.evaluations);
      Obs.Metrics.counter_fn m "alpha.hits" (fun () -> t.hits);
      Obs.Metrics.counter_fn m "alpha.fanout" (fun () -> t.fanout));
  t

let compile_payload (a : Event_query.atomic) =
  match Simulate.plan a.Event_query.pattern with
  | Some p -> Plan.matches p
  | None -> fun payload -> Simulate.matches a.Event_query.pattern payload

let register t atom =
  let key = t.digest atom in
  let nodes = Option.value ~default:[] (Hashtbl.find_opt t.buckets key) in
  t.registrations <- t.registrations + 1;
  match List.find_opt (fun n -> n.atom = atom) nodes with
  | Some n ->
      n.refs <- n.refs + 1;
      n
  | None ->
      let n =
        {
          atom;
          key;
          payload_matches = compile_payload atom;
          memo = Hashtbl.create 8;
          refs = 1;
        }
      in
      Hashtbl.replace t.buckets key (n :: nodes);
      n

let release t node =
  if node.refs <= 0 then invalid_arg "Alpha.release: handle already released";
  node.refs <- node.refs - 1;
  t.registrations <- t.registrations - 1;
  if node.refs = 0 then begin
    let nodes = Option.value ~default:[] (Hashtbl.find_opt t.buckets node.key) in
    match List.filter (fun n -> n != node) nodes with
    | [] -> Hashtbl.remove t.buckets node.key
    | rest -> Hashtbl.replace t.buckets node.key rest
  end

let matcher t node : Incremental.atom_matcher =
 fun e ->
  if not (Incremental.envelope_ok node.atom e) then []
  else begin
    let substs =
      match Hashtbl.find_opt node.memo e.Event.id with
      | Some r ->
          t.hits <- t.hits + 1;
          r
      | None ->
          t.evaluations <- t.evaluations + 1;
          Incremental.note_atomic_run ();
          let r = node.payload_matches e.Event.payload in
          if Hashtbl.length node.memo >= memo_cap then Hashtbl.reset node.memo;
          Hashtbl.add node.memo e.Event.id r;
          r
    in
    t.fanout <- t.fanout + List.length substs;
    substs
  end

let subscribe t atom = matcher t (register t atom)

type stats = {
  distinct_nodes : int;
  registrations : int;
  evaluations : int;
  hits : int;
  fanout : int;
}

let stats t =
  {
    distinct_nodes = distinct_nodes t;
    registrations = t.registrations;
    evaluations = t.evaluations;
    hits = t.hits;
    fanout = t.fanout;
  }
