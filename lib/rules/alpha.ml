(* Shared alpha network: one memoizing matcher per distinct atomic
   event query, fanned out to every subscribing rule.  See alpha.mli
   for the contract.  Bucketing, refcounts and shedding live in
   {!Node_bucket} (shared with the beta network); the invariants kept
   here:

   - the memo caches pure (pattern, payload) results keyed by event id,
     so serving from it is indistinguishable from re-evaluating;
   - the memo is a bounded LRU: a burst of fresh event ids past the cap
     evicts only the coldest entries, so the warm ids of an engine
     batch keep hitting (pinned by test_alpha's retention test — the
     old reset-on-cap wipe discarded them all). *)

open Xchange_query
open Xchange_event
open Xchange_obs

(* Within one engine batch an event reaches its subscribers back to
   back, so a handful of entries suffice; the cap only matters when
   event derivation interleaves many fresh ids. *)
let memo_cap = 64

type node = {
  atom : Event_query.atomic;
  key : string;  (* digest, = the bucket this node lives in *)
  payload_matches : Xchange_data.Term.t -> Subst.set;
  memo : (int, Subst.set) Lru.t;  (* event id -> substitutions *)
  mutable refs : int;  (* live handles; 0 = released, node is dead *)
}

type handle = node

module Net = Node_bucket.Make (struct
  type t = node
  type key = Event_query.atomic

  let equal atom n = n.atom = atom
  let bucket n = n.key
  let refs n = n.refs
  let set_refs n r = n.refs <- r
end)

type t = {
  net : Net.t;
  mutable evaluations : int;
  mutable hits : int;
  mutable fanout : int;
}

let enabled () = not Xchange_core.Escape.no_share

let distinct_nodes t = Net.distinct t.net

let create ?metrics ?(digest = Event_query.atomic_digest) () =
  let t =
    { net = Net.create ~name:"Alpha" ~digest; evaluations = 0; hits = 0; fanout = 0 }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.gauge_fn m "alpha.nodes" (fun () -> float_of_int (distinct_nodes t));
      Obs.Metrics.gauge_fn m "alpha.registrations" (fun () ->
          float_of_int (Net.registrations t.net));
      Obs.Metrics.counter_fn m "alpha.evaluations" (fun () -> t.evaluations);
      Obs.Metrics.counter_fn m "alpha.hits" (fun () -> t.hits);
      Obs.Metrics.counter_fn m "alpha.fanout" (fun () -> t.fanout));
  t

let compile_payload (a : Event_query.atomic) =
  match Simulate.plan a.Event_query.pattern with
  | Some p -> Plan.matches p
  | None -> fun payload -> Simulate.matches a.Event_query.pattern payload

let register t atom =
  fst
    (Net.register t.net atom ~build:(fun ~digest ->
         {
           atom;
           key = digest;
           payload_matches = compile_payload atom;
           memo = Lru.create ~cap:memo_cap;
           refs = 0;  (* Net.register sets the first reference *)
         }))

let release t node = Net.release t.net node

let matcher t node : Incremental.atom_matcher =
 fun e ->
  if not (Incremental.envelope_ok node.atom e) then []
  else begin
    let substs =
      match Lru.find node.memo e.Event.id with
      | Some r ->
          t.hits <- t.hits + 1;
          r
      | None ->
          t.evaluations <- t.evaluations + 1;
          Incremental.note_atomic_run ();
          let r = node.payload_matches e.Event.payload in
          Lru.add node.memo e.Event.id r;
          r
    in
    t.fanout <- t.fanout + List.length substs;
    substs
  end

let subscribe t atom = matcher t (register t atom)

type stats = {
  distinct_nodes : int;
  registrations : int;
  evaluations : int;
  hits : int;
  fanout : int;
}

let stats t =
  {
    distinct_nodes = distinct_nodes t;
    registrations = Net.registrations t.net;
    evaluations = t.evaluations;
    hits = t.hits;
    fanout = t.fanout;
  }
