open Xchange_data
open Xchange_event
open Xchange_query

type update =
  | U_insert of { doc : string; selector : Path.selector; at : int option; content : Term.t }
  | U_delete of { doc : string; selector : Path.selector; pattern : Qterm.t option }
  | U_replace of { doc : string; selector : Path.selector; content : Term.t }
  | U_create_doc of { doc : string; content : Term.t }
  | U_delete_doc of { doc : string }
  | U_rdf_assert of { doc : string; triple : Rdf.triple }
  | U_rdf_retract of { doc : string; triple : Rdf.triple }

let update_doc = function
  | U_insert { doc; _ }
  | U_delete { doc; _ }
  | U_replace { doc; _ }
  | U_create_doc { doc; _ }
  | U_delete_doc { doc }
  | U_rdf_assert { doc; _ }
  | U_rdf_retract { doc; _ } ->
      doc

let with_update_doc u doc =
  match u with
  | U_insert r -> U_insert { r with doc }
  | U_delete r -> U_delete { r with doc }
  | U_replace r -> U_replace { r with doc }
  | U_create_doc r -> U_create_doc { r with doc }
  | U_delete_doc _ -> U_delete_doc { doc }
  | U_rdf_assert r -> U_rdf_assert { r with doc }
  | U_rdf_retract r -> U_rdf_retract { r with doc }

type ops = {
  update : update -> (int, string) result;
  txn_update : update -> (int, string) result;
  send :
    recipient:string -> label:string -> ttl:Clock.span option -> delay:Clock.span option ->
    Term.t -> unit;
  log : string -> unit;
  now : unit -> Clock.time;
  checkpoint : unit -> unit -> unit;
}

type triple_c = { cs : Builtin.operand; cp : Builtin.operand; co : Builtin.operand }

type t =
  | Nop
  | Fail of string
  | Log of string * Builtin.operand list
  | Insert of { doc : Builtin.operand; selector : Path.selector; at : int option; content : Construct.t }
  | Delete of { doc : Builtin.operand; selector : Path.selector; pattern : Qterm.t option }
  | Replace of { doc : Builtin.operand; selector : Path.selector; content : Construct.t }
  | Create_doc of { doc : Builtin.operand; content : Construct.t }
  | Delete_doc of { doc : Builtin.operand }
  | Rdf_assert of { doc : Builtin.operand; triple : triple_c }
  | Rdf_retract of { doc : Builtin.operand; triple : triple_c }
  | Raise of {
      recipient : Builtin.operand;
      label : string;
      payload : Construct.t;
      ttl : Clock.span option;
      delay : Clock.span option;
    }
  | Seq of t list
  | Atomic of t list
  | Alt of t list
  | If of Condition.t * t * t
  | Call of string * Builtin.operand list

type proc = { params : string list; body : t }

let docop s = Builtin.ostr s

let insert ?at ~doc ?(selector = []) content =
  Insert { doc = docop doc; selector; at; content }

let delete ~doc ?(selector = []) ?pattern () = Delete { doc = docop doc; selector; pattern }
let replace ~doc ~selector content = Replace { doc = docop doc; selector; content }
let create_doc ~doc content = Create_doc { doc = docop doc; content }

let raise_event ?ttl ?delay ~to_ ~label payload =
  Raise { recipient = docop to_; label; payload; ttl; delay }

let raise_event_to ?ttl ?delay ~to_ ~label payload =
  Raise { recipient = to_; label; payload; ttl; delay }

let make_persistent ~doc v = Create_doc { doc = docop doc; content = Construct.cvar v }

let seq actions = Seq actions
let atomic actions = Atomic actions
let alt actions = Alt actions
let call name args = Call (name, args)
let log fmt args = Log (fmt, args)

let rec conditions = function
  | If (c, then_, else_) -> (c :: conditions then_) @ conditions else_
  | Seq ts | Atomic ts | Alt ts -> List.concat_map conditions ts
  | Nop | Fail _ | Log _ | Insert _ | Delete _ | Replace _ | Create_doc _ | Delete_doc _
  | Rdf_assert _ | Rdf_retract _ | Raise _ | Call _ ->
      []

let rec atomic_blocks = function
  | Atomic ts as a -> a :: List.concat_map atomic_blocks ts
  | Seq ts | Alt ts -> List.concat_map atomic_blocks ts
  | If (_, a, b) -> atomic_blocks a @ atomic_blocks b
  | Nop | Fail _ | Log _ | Insert _ | Delete _ | Replace _ | Create_doc _ | Delete_doc _
  | Rdf_assert _ | Rdf_retract _ | Raise _ | Call _ ->
      []

let const_doc = function Builtin.O_const (Term.Text s) -> Some s | _ -> None

let update_targets ?resolve action =
  let visited = ref [] in
  let rec go acc = function
    | Insert { doc; _ }
    | Delete { doc; _ }
    | Replace { doc; _ }
    | Create_doc { doc; _ }
    | Delete_doc { doc }
    | Rdf_assert { doc; _ }
    | Rdf_retract { doc; _ } -> (
        match const_doc doc with Some d -> d :: acc | None -> acc)
    | Seq ts | Atomic ts | Alt ts -> List.fold_left go acc ts
    | If (_, a, b) -> go (go acc a) b
    | Call (name, _) -> (
        match resolve with
        | None -> acc
        | Some resolve ->
            if List.mem name !visited then acc
            else begin
              visited := name :: !visited;
              match resolve name with None -> acc | Some proc -> go acc proc.body
            end)
    | Nop | Fail _ | Log _ | Raise _ -> acc
  in
  List.rev (go [] action)

type outcome = { updates : int; events_sent : int }

let no_outcome = { updates = 0; events_sent = 0 }
let ( ++ ) a b = { updates = a.updates + b.updates; events_sent = a.events_sent + b.events_sent }

let ( let* ) = Result.bind

let eval_text subst operand =
  let* t = Builtin.eval subst operand in
  match Term.as_text t with
  | Some s -> Ok s
  | None -> Error (Fmt.str "expected a textual value, got %a" Term.pp t)

let eval_node subst operand =
  let* t = Builtin.eval subst operand in
  match t with
  | Term.Elem { Term.label = "iri"; children = [ Term.Text i ]; _ } -> Ok (Rdf.Iri i)
  | Term.Elem { Term.label = "blank"; children = [ Term.Text b ]; _ } -> Ok (Rdf.Blank b)
  | Term.Text s -> Ok (Rdf.Lit s)
  | Term.Num f -> Ok (Rdf.Lit_num f)
  | Term.Bool b -> Ok (Rdf.Lit (string_of_bool b))
  | Term.Elem _ -> Error (Fmt.str "not an RDF node: %a" Term.pp t)

let eval_triple subst tc =
  let* s = eval_node subst tc.cs in
  let* p = eval_text subst tc.cp in
  let* o = eval_node subst tc.co in
  Ok { Rdf.s; p; o }

(* [%s] holes in log templates are filled left to right.  IRI node
   terms render as <iri> for readability. *)
let render_log subst fmt args =
  let display t =
    match t with
    | Term.Elem { Term.label = "iri"; children = [ Term.Text i ]; _ } -> "<" ^ i ^ ">"
    | t -> Option.value ~default:(Term.to_string t) (Term.as_text t)
  in
  let* values =
    List.fold_left
      (fun acc op ->
        let* acc = acc in
        let* t = Builtin.eval subst op in
        Ok (acc @ [ display t ]))
      (Ok []) args
  in
  let buf = Buffer.create (String.length fmt) in
  let rec go i values =
    if i >= String.length fmt then Ok (Buffer.contents buf)
    else if i + 1 < String.length fmt && fmt.[i] = '%' && fmt.[i + 1] = 's' then
      match values with
      | v :: rest ->
          Buffer.add_string buf v;
          go (i + 2) rest
      | [] -> Error "log: more %s holes than arguments"
    else begin
      Buffer.add_char buf fmt.[i];
      go (i + 1) values
    end
  in
  go 0 values

let rec exec ~env ~ops ~procs ~subst ~answers action =
  match action with
  | Nop -> Ok no_outcome
  | Fail msg -> Error msg
  | Log (fmt, args) ->
      let* line = render_log subst fmt args in
      ops.log line;
      Ok no_outcome
  | Insert { doc; selector; at; content } ->
      let* doc = eval_text subst doc in
      let* content = Construct.instantiate content subst answers in
      let* n = ops.update (U_insert { doc; selector; at; content }) in
      Ok { no_outcome with updates = n }
  | Delete { doc; selector; pattern } ->
      let* doc = eval_text subst doc in
      let pattern = Option.map (fun p -> seed_pattern subst p) pattern in
      let* n = ops.update (U_delete { doc; selector; pattern }) in
      Ok { no_outcome with updates = n }
  | Replace { doc; selector; content } ->
      let* doc = eval_text subst doc in
      let* content = Construct.instantiate content subst answers in
      let* n = ops.update (U_replace { doc; selector; content }) in
      Ok { no_outcome with updates = n }
  | Create_doc { doc; content } ->
      let* doc = eval_text subst doc in
      let* content = Construct.instantiate content subst answers in
      let* n = ops.update (U_create_doc { doc; content }) in
      Ok { no_outcome with updates = n }
  | Delete_doc { doc } ->
      let* doc = eval_text subst doc in
      let* n = ops.update (U_delete_doc { doc }) in
      Ok { no_outcome with updates = n }
  | Rdf_assert { doc; triple } ->
      let* doc = eval_text subst doc in
      let* triple = eval_triple subst triple in
      let* n = ops.update (U_rdf_assert { doc; triple }) in
      Ok { no_outcome with updates = n }
  | Rdf_retract { doc; triple } ->
      let* doc = eval_text subst doc in
      let* triple = eval_triple subst triple in
      let* n = ops.update (U_rdf_retract { doc; triple }) in
      Ok { no_outcome with updates = n }
  | Raise { recipient; label; payload; ttl; delay } ->
      let* recipient = eval_text subst recipient in
      let* payload = Construct.instantiate payload subst answers in
      ops.send ~recipient ~label ~ttl ~delay payload;
      Ok { no_outcome with events_sent = 1 }
  | Seq actions ->
      List.fold_left
        (fun acc a ->
          let* acc = acc in
          let* o = exec ~env ~ops ~procs ~subst ~answers a in
          Ok (acc ++ o))
        (Ok no_outcome) actions
  | Atomic actions -> (
      (* optimistic execution: sends are buffered, the store is
         checkpointed; failure restores the checkpoint and drops the
         buffered sends *)
      let rollback = ops.checkpoint () in
      let buffered = ref [] in
      let tx_ops =
        {
          ops with
          (* inside the transaction, mutations go through the host's
             transactional capability — which may reject targets it
             cannot roll back (a remote node's store) — and sends are
             buffered until commit *)
          update = ops.txn_update;
          send =
            (fun ~recipient ~label ~ttl ~delay payload ->
              buffered := (recipient, label, ttl, delay, payload) :: !buffered);
        }
      in
      match
        List.fold_left
          (fun acc a ->
            let* acc = acc in
            let* o = exec ~env ~ops:tx_ops ~procs ~subst ~answers a in
            Ok (acc ++ o))
          (Ok no_outcome) actions
      with
      | Ok outcome ->
          List.iter
            (fun (recipient, label, ttl, delay, payload) ->
              ops.send ~recipient ~label ~ttl ~delay payload)
            (List.rev !buffered);
          Ok outcome
      | Error e ->
          rollback ();
          Error (Fmt.str "transaction rolled back: %s" e))
  | Alt actions ->
      let rec try_each errors = function
        | [] ->
            Error
              (Fmt.str "all alternatives failed: %s" (String.concat "; " (List.rev errors)))
        | a :: rest -> (
            match exec ~env ~ops ~procs ~subst ~answers a with
            | Ok o -> Ok o
            | Error e -> try_each (e :: errors) rest)
      in
      try_each [] actions
  | If (cond, then_, else_) ->
      if Condition.holds env subst cond then exec ~env ~ops ~procs ~subst ~answers then_
      else exec ~env ~ops ~procs ~subst ~answers else_
  | Call (name, args) -> (
      match procs name with
      | None -> Error (Fmt.str "unknown procedure %s" name)
      | Some { params; body } ->
          if List.length params <> List.length args then
            Error
              (Fmt.str "procedure %s expects %d argument(s), got %d" name (List.length params)
                 (List.length args))
          else
            let* call_subst =
              List.fold_left2
                (fun acc param arg ->
                  let* acc = acc in
                  let* value = Builtin.eval subst arg in
                  match Subst.add param value acc with
                  | Some s -> Ok s
                  | None -> Error (Fmt.str "duplicate parameter %s" param))
                (Ok Subst.empty) params args
            in
            exec ~env ~ops ~procs ~subst:call_subst ~answers:[ call_subst ] body)

(* Ground a delete pattern with the current bindings so that
   "delete the order of THIS customer" works as expected. *)
and seed_pattern subst pattern =
  let ground v = Option.map (fun t -> t) (Subst.find v subst) in
  let rec go q =
    match q with
    | Qterm.Var v -> (
        match ground v with
        | Some (Term.Text s) -> Qterm.Leaf (Qterm.Text_is s)
        | Some (Term.Num f) -> Qterm.Leaf (Qterm.Num_is f)
        | Some (Term.Bool b) -> Qterm.Leaf (Qterm.Bool_is b)
        | Some (Term.Elem _) | None -> q)
    | Qterm.As (v, inner) -> Qterm.As (v, go inner)
    | Qterm.Leaf _ -> q
    | Qterm.Desc inner -> Qterm.Desc (go inner)
    | Qterm.El e ->
        Qterm.El
          {
            e with
            Qterm.children =
              List.map
                (function
                  | Qterm.Pos p -> Qterm.Pos (go p)
                  | Qterm.Without p -> Qterm.Without (go p)
                  | Qterm.Opt p -> Qterm.Opt (go p))
                e.Qterm.children;
          }
  in
  go pattern

let rec pp ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Fail m -> Fmt.pf ppf "fail(%S)" m
  | Log (f, args) -> Fmt.pf ppf "log(%S%a)" f Fmt.(list (any ", " ++ Builtin.pp_operand)) args
  | Insert { doc; selector; content; _ } ->
      Fmt.pf ppf "insert into %a%a %a" Builtin.pp_operand doc Path.pp_selector selector
        Construct.pp content
  | Delete { doc; selector; pattern } ->
      Fmt.pf ppf "delete from %a%a%a" Builtin.pp_operand doc Path.pp_selector selector
        Fmt.(option (any " matching " ++ Qterm.pp))
        pattern
  | Replace { doc; selector; content } ->
      Fmt.pf ppf "replace in %a%a with %a" Builtin.pp_operand doc Path.pp_selector selector
        Construct.pp content
  | Create_doc { doc; content } ->
      Fmt.pf ppf "create %a = %a" Builtin.pp_operand doc Construct.pp content
  | Delete_doc { doc } -> Fmt.pf ppf "drop %a" Builtin.pp_operand doc
  | Rdf_assert { doc; _ } -> Fmt.pf ppf "assert triple into %a" Builtin.pp_operand doc
  | Rdf_retract { doc; _ } -> Fmt.pf ppf "retract triple from %a" Builtin.pp_operand doc
  | Raise { recipient; label; payload; _ } ->
      Fmt.pf ppf "raise %s to %a %a" label Builtin.pp_operand recipient Construct.pp payload
  | Seq actions -> Fmt.pf ppf "(@[%a@])" Fmt.(list ~sep:(any ";@ ") pp) actions
  | Atomic actions -> Fmt.pf ppf "atomic (@[%a@])" Fmt.(list ~sep:(any ";@ ") pp) actions
  | Alt actions -> Fmt.pf ppf "(@[%a@])" Fmt.(list ~sep:(any "@ else-try@ ") pp) actions
  | If (c, a, b) -> Fmt.pf ppf "if %a then %a else %a" Condition.pp c pp a pp b
  | Call (name, args) ->
      Fmt.pf ppf "call %s(%a)" name Fmt.(list ~sep:comma Builtin.pp_operand) args
