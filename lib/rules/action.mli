(** State-changing actions (Thesis 8).

    "The most important actions are updating persistent data on the Web
    and communicating with other Web sites (through raising new
    events)."  Primitive actions are insertions, deletions, and
    replacements of XML elements and RDF triples, event raising, and
    logging; compound actions are sequences, alternatives ("other
    compounds such as the specification of alternative actions are
    needed, too"), conditionals, and procedure calls (Thesis 9).

    Actions are interpreted against two capability records: the
    {!Xchange_query.Condition.env} used to evaluate embedded conditions,
    and an {!ops} record through which the host (a Web node, or a test
    harness) exposes its store and its outbox.  Execution never touches
    global state directly, which keeps rule processing local (Thesis 2). *)

open Xchange_data
open Xchange_event
open Xchange_query

(** A single store mutation, already instantiated (no variables). *)
type update =
  | U_insert of { doc : string; selector : Path.selector; at : int option; content : Term.t }
      (** insert [content] as a child of every node selected *)
  | U_delete of { doc : string; selector : Path.selector; pattern : Qterm.t option }
      (** delete the selected nodes, or — with [pattern] — their children matching it *)
  | U_replace of { doc : string; selector : Path.selector; content : Term.t }
      (** replace every selected node *)
  | U_create_doc of { doc : string; content : Term.t }
  | U_delete_doc of { doc : string }
  | U_rdf_assert of { doc : string; triple : Rdf.triple }
  | U_rdf_retract of { doc : string; triple : Rdf.triple }

val update_doc : update -> string
(** The document a mutation targets. *)

val with_update_doc : update -> string -> update
(** The same mutation retargeted (used by the Web layer to strip the
    host part when shipping an update to a remote node). *)

(** Capabilities the host grants to actions. *)
type ops = {
  update : update -> (int, string) result;
      (** apply a mutation; returns the number of nodes affected *)
  txn_update : update -> (int, string) result;
      (** apply a mutation {e inside} an [Atomic] block.  Hosts that can
          undo everything this touches may reuse [update]; hosts that
          cannot — a Web node asked to mutate a {e remote} store — must
          reject here, failing the transaction instead of committing an
          un-rollbackable effect. *)
  send :
    recipient:string -> label:string -> ttl:Clock.span option -> delay:Clock.span option ->
    Term.t -> unit;
      (** raise an event towards a (possibly remote) node; [delay]
          postpones its departure (scheduled events for time-dependent
          services) *)
  log : string -> unit;
  now : unit -> Clock.time;
  checkpoint : unit -> unit -> unit;
      (** [checkpoint ()] captures the store state and returns the
          rollback thunk; used by transactional compounds.  Hosts that
          cannot roll back may supply [fun () -> fun () -> ()], turning
          [Atomic] into a plain sequence. *)
}

(** An RDF triple with variables, instantiated at execution time. *)
type triple_c = { cs : Builtin.operand; cp : Builtin.operand; co : Builtin.operand }

type t =
  | Nop
  | Fail of string  (** always fails (for alternatives and tests) *)
  | Log of string * Builtin.operand list  (** Fmt-style [%s] holes filled with operands *)
  | Insert of { doc : Builtin.operand; selector : Path.selector; at : int option; content : Construct.t }
  | Delete of { doc : Builtin.operand; selector : Path.selector; pattern : Qterm.t option }
  | Replace of { doc : Builtin.operand; selector : Path.selector; content : Construct.t }
  | Create_doc of { doc : Builtin.operand; content : Construct.t }
  | Delete_doc of { doc : Builtin.operand }
  | Rdf_assert of { doc : Builtin.operand; triple : triple_c }
  | Rdf_retract of { doc : Builtin.operand; triple : triple_c }
  | Raise of {
      recipient : Builtin.operand;
      label : string;
      payload : Construct.t;
      ttl : Clock.span option;
      delay : Clock.span option;
    }
  | Seq of t list  (** all in order; fails at the first failure (no rollback) *)
  | Atomic of t list
      (** all-or-nothing sequence: on failure the store is rolled back
          to the checkpoint and no raised event leaves the node.
          Within the transaction, reads {e do} see earlier writes
          (execution is optimistic; rollback restores the
          checkpoint). *)
  | Alt of t list  (** try in order until one succeeds *)
  | If of Condition.t * t * t  (** branch on the condition holding under the current bindings *)
  | Call of string * Builtin.operand list  (** procedure invocation (Thesis 9) *)

type proc = { params : string list; body : t }
(** A procedural abstraction: the body executes with {e only} its
    parameters bound (lexical isolation). *)

(** {1 Constructors} *)

val insert : ?at:int -> doc:string -> ?selector:Path.selector -> Construct.t -> t
val delete : doc:string -> ?selector:Path.selector -> ?pattern:Qterm.t -> unit -> t
val replace : doc:string -> selector:Path.selector -> Construct.t -> t
val create_doc : doc:string -> Construct.t -> t
val raise_event : ?ttl:Clock.span -> ?delay:Clock.span -> to_:string -> label:string -> Construct.t -> t
val raise_event_to :
  ?ttl:Clock.span -> ?delay:Clock.span -> to_:Builtin.operand -> label:string -> Construct.t -> t
val make_persistent : doc:string -> string -> t
(** [make_persistent ~doc v] stores the term bound to variable [v] as
    document [doc] — the explicit volatile-to-persistent bridge of
    Thesis 4. *)

val seq : t list -> t
val atomic : t list -> t
val alt : t list -> t

val call : string -> Builtin.operand list -> t
val log : string -> Builtin.operand list -> t

val conditions : t -> Condition.t list
(** Every condition embedded in the action ([If] branches, recursively
    through compounds) — the static inputs the Web substrate must be
    able to prefetch for. *)

val atomic_blocks : t -> t list
(** Every [Atomic] sub-term, recursively (nested blocks are listed on
    their own as well as inside their parent). *)

val update_targets : ?resolve:(string -> proc option) -> t -> string list
(** The constant document operands of every update primitive in the
    action, in syntactic order.  With [resolve], [Call]s are followed
    into procedure bodies (each procedure at most once, so mutual
    recursion terminates).  Variable targets are not — cannot be —
    reported; this is the static half of transaction validation
    ({!Xchange_rules}' ruleset check), the dynamic half being
    {!ops.txn_update}. *)

(** {1 Execution} *)

type outcome = { updates : int; events_sent : int }

val exec :
  env:Condition.env ->
  ops:ops ->
  procs:(string -> proc option) ->
  subst:Subst.t ->
  answers:Subst.set ->
  t ->
  (outcome, string) result
(** Runs the action under the substitution chosen for this firing;
    [answers] is the full answer set, consulted by grouping constructs
    ([C_all], [C_agg]) in payloads. *)

val pp : t Fmt.t
