(* Digest-bucketed, refcounted node registry — the bookkeeping shared
   by the alpha (atomic matchers) and beta (composite join pipelines)
   networks.  Invariants (pinned by test_alpha / test_beta):

   - a node is reachable from exactly one digest bucket, and a bucket
     holds only nodes registered under that digest; structural equality
     ([N.equal]) decides reuse WITHIN a bucket, so digest collisions
     cost duplicated work, never wrong answers;
   - [refs] counts live handles; a node is shed the moment the count
     reaches zero, and its bucket with it when it empties (rule removal
     must not leak matchers or join state);
   - releasing an already-released handle raises, with the owning
     network's name in the message. *)

module type NODE = sig
  type t
  type key

  val equal : key -> t -> bool
  val bucket : t -> string
  val refs : t -> int
  val set_refs : t -> int -> unit
end

module Make (N : NODE) = struct
  type t = {
    name : string;
    digest : N.key -> string;
    buckets : (string, N.t list) Hashtbl.t;
    mutable registrations : int;
  }

  let create ~name ~digest =
    { name; digest; buckets = Hashtbl.create 64; registrations = 0 }

  let register t key ~build =
    let d = t.digest key in
    let nodes = Option.value ~default:[] (Hashtbl.find_opt t.buckets d) in
    t.registrations <- t.registrations + 1;
    match List.find_opt (N.equal key) nodes with
    | Some n ->
        N.set_refs n (N.refs n + 1);
        (n, false)
    | None ->
        let n = build ~digest:d in
        N.set_refs n 1;
        Hashtbl.replace t.buckets d (n :: nodes);
        (n, true)

  let release t node =
    if N.refs node <= 0 then
      invalid_arg (t.name ^ ".release: handle already released");
    N.set_refs node (N.refs node - 1);
    t.registrations <- t.registrations - 1;
    if N.refs node = 0 then begin
      let d = N.bucket node in
      let nodes = Option.value ~default:[] (Hashtbl.find_opt t.buckets d) in
      match List.filter (fun n -> n != node) nodes with
      | [] -> Hashtbl.remove t.buckets d
      | rest -> Hashtbl.replace t.buckets d rest
    end

  let distinct t = Hashtbl.fold (fun _ ns acc -> acc + List.length ns) t.buckets 0
  let registrations t = t.registrations

  let fold f t acc =
    Hashtbl.fold (fun _ ns acc -> List.fold_left (fun acc n -> f n acc) acc ns) t.buckets acc
end
