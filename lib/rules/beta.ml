(* Shared beta network: one join pipeline per distinct composite
   sub-query, fanned out to every subscribing rule.  See beta.mli for
   the contract.  Bucketing, refcounts and shedding live in
   {!Node_bucket} (shared with the alpha network); the invariants kept
   here:

   - nodes are keyed by {!Event_query.composite_digest} of the
     canonicalized (alpha-renamed) subtree plus its enclosing-window
     context; structural equality of (canonical query, context) decides
     within a bucket, so digest collisions cost duplicated pipelines,
     never wrong answers;
   - a node's pipeline is stepped {e exactly once} per event per engine
     batch, whichever subscriber asks first; later subscribers in the
     same batch are served from the generation memo.  [begin_batch]
     opens a new generation — the memo must NOT be a bounded cache
     (re-stepping a stateful pipeline would double-apply the event);
   - subscribers get instances renamed back into their own variable
     names through the canonicalization bijection (identity for rules
     already in canonical form — the common case in generated rulesets
     is skipped without allocation);
   - only subtrees whose shared evaluation is observationally identical
     to the private compilation are accepted: no timers (absence
     deadlines fire on clock advances the shared pipeline never sees),
     no accumulators (their group buffers cannot be consumption-
     filtered by event ids), and — when the engine has a horizon —
     only window-bounded subtrees (horizon pruning of unbounded state
     is semantics-bearing; window-derived pruning is not, because every
     window is also enforced by span checks at detection time). *)

open Xchange_event
open Xchange_obs

type pnode = {
  p_q : Event_query.t;  (* canonical form — the sharing identity *)
  p_ctx : Clock.span option;  (* enclosing-window context, part of the key *)
  p_key : string;  (* digest, = the bucket this node lives in *)
  pipe : Incremental.t;  (* the one pipeline all subscribers share *)
  memo : (int, Instance.t list) Hashtbl.t;
      (* event id -> canonical detections, valid for [gen] only *)
  mutable gen : int;  (* generation the memo belongs to; -1 = never stepped *)
  mutable refs : int;  (* live handles; 0 = released, node is dead *)
}

type handle = pnode

module Net = Node_bucket.Make (struct
  type t = pnode
  type key = Event_query.t * Clock.span option

  let equal (q, ctx) n = n.p_q = q && n.p_ctx = ctx
  let bucket n = n.p_key
  let refs n = n.refs
  let set_refs n r = n.refs <- r
end)

type t = {
  net : Net.t;
  horizon : Clock.span option;
  index : bool;
  share_atoms : (Event_query.atomic -> Incremental.atom_matcher) option;
  mutable generation : int;
  mutable steps : int;
  mutable hits : int;
  mutable fanout : int;
}

let enabled () = not Xchange_core.Escape.no_share

let distinct_nodes t = Net.distinct t.net
let registrations t = Net.registrations t.net

let node_join_stats t =
  Net.fold
    (fun n acc -> Incremental.sum_join_stats [ acc; Incremental.join_stats n.pipe ])
    t.net Incremental.zero_join_stats

let join_stats = node_join_stats

let live_instances t =
  Net.fold (fun n acc -> acc + Incremental.live_instances n.pipe) t.net 0

let default_digest (q, ctx) = Event_query.composite_digest ~ctx q

let create ?metrics ?(digest = default_digest) ?horizon ?(index = true) ?share_atoms ()
    =
  let t =
    {
      net = Net.create ~name:"Beta" ~digest;
      horizon;
      index;
      share_atoms;
      generation = 0;
      steps = 0;
      hits = 0;
      fanout = 0;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.gauge_fn m "beta.nodes" (fun () -> float_of_int (distinct_nodes t));
      Obs.Metrics.gauge_fn m "beta.registrations" (fun () ->
          float_of_int (registrations t));
      Obs.Metrics.counter_fn m "beta.steps" (fun () -> t.steps);
      Obs.Metrics.counter_fn m "beta.hits" (fun () -> t.hits);
      Obs.Metrics.counter_fn m "beta.fanout" (fun () -> t.fanout);
      Obs.Metrics.counter_fn m "beta.pairs_probed" (fun () ->
          (node_join_stats t).Incremental.pairs_probed);
      Obs.Metrics.gauge_fn m "beta.live_instances" (fun () ->
          float_of_int (live_instances t)));
  t

let begin_batch t = t.generation <- t.generation + 1

(* Shared evaluation must be observationally identical to the private
   compilation it replaces; decline anything where it is not:
   - [Atomic]: the alpha network's job, nothing to join;
   - timers: absence deadlines resolve on per-rule clock advances the
     shared pipeline never observes;
   - accumulators: Agg/Rises group buffers are not reconstructible from
     detection ids, so consumption cannot be replayed as an id filter;
   - horizon without a window bound: pruning unbounded join state at
     the horizon changes answers, so sharing across rules (whose
     private clocks advance at different moments) could skew them;
     window-bounded subtrees are safe because every window is also
     enforced by span checks at detection time — pruning timing only
     affects memory, never answers. *)
let shareable t (q : Event_query.t) =
  match q with
  | Event_query.Atomic _ -> false
  | _ ->
      (not (Event_query.has_timers q))
      && (not (Event_query.has_accumulators q))
      && (match t.horizon with
         | None -> true
         | Some h -> (
             match Event_query.max_window q with Some w -> w <= h | None -> false))

let register t ~ctx q =
  if not (shareable t q) then None
  else
    let cq, _ = Event_query.canonicalize q in
    let node, _fresh =
      Net.register t.net (cq, ctx) ~build:(fun ~digest ->
          {
            p_q = cq;
            p_ctx = ctx;
            p_key = digest;
            pipe =
              Incremental.create_sub ?horizon:t.horizon ~index:t.index
                ?share:t.share_atoms ~ctx cq;
            memo = Hashtbl.create 8;
            gen = -1;
            refs = 0;  (* Net.register sets the first reference *)
          })
    in
    Some node

let release t node = Net.release t.net node

(* Step the shared pipeline once per event per generation; every other
   subscriber is served the memoized canonical detections. *)
let step_memo t node (e : Event.t) =
  if node.gen <> t.generation then begin
    Hashtbl.reset node.memo;
    node.gen <- t.generation
  end;
  match Hashtbl.find_opt node.memo e.Event.id with
  | Some r ->
      t.hits <- t.hits + 1;
      r
  | None ->
      t.steps <- t.steps + 1;
      let r = Incremental.feed node.pipe e in
      Hashtbl.add node.memo e.Event.id r;
      r

let matcher t node ~rename : Incremental.subtree_matcher =
  let identity = List.for_all (fun (c, o) -> String.equal c o) rename in
  let project =
    if identity then fun i -> i
    else fun (i : Instance.t) ->
      let bindings =
        List.map
          (fun (v, tm) ->
            match List.assoc_opt v rename with Some o -> (o, tm) | None -> (v, tm))
          (Xchange_query.Subst.to_list i.Instance.subst)
      in
      match Xchange_query.Subst.of_list bindings with
      | Some subst -> { i with Instance.subst }
      | None ->
          (* the canonicalization mapping is a bijection, so renaming
             cannot merge two bindings into a conflict *)
          assert false
  in
  fun e ->
    let out = step_memo t node e in
    t.fanout <- t.fanout + List.length out;
    if identity then out
    else
      (* [Instance.compare] tie-breaks on the substitution, and every
         node's fresh list is emitted [Instance.dedup]-sorted — so the
         private compilation orders same-span detections by the rule's
         OWN variable names.  The shared pipeline sorted in canonical
         name space; re-sort after renaming or firing order diverges. *)
      List.sort Instance.compare (List.map project out)

let subscribe t ~ctx q =
  if not (shareable t q) then None
  else
    let _, rename = Event_query.canonicalize q in
    register t ~ctx q |> Option.map (fun node -> matcher t node ~rename)

type stats = {
  distinct_nodes : int;
  registrations : int;
  steps : int;
  hits : int;
  fanout : int;
  pairs_probed : int;
}

let stats t =
  {
    distinct_nodes = distinct_nodes t;
    registrations = registrations t;
    steps = t.steps;
    hits = t.hits;
    fanout = t.fanout;
    pairs_probed = (node_join_stats t).Incremental.pairs_probed;
  }
