(** Shared beta network: cross-rule deduplication of composite-event
    join state (the Rete "beta memory" idea, recast for event queries).

    {!Alpha} (PR 7) shares atomic {e evaluation}; the expensive part —
    the And/Seq/Times join pipelines and their {!Xchange_event.Istore}
    partial-match stores — remained private to each rule, so 10^4 rules
    watching overlapping composite patterns each maintained their own
    copy of identical join state and re-joined every event once per
    rule.  A [Beta.t] holds one {e pipeline} per distinct composite
    sub-query: each event is joined once per distinct subtree, whatever
    the rule count, and subscribers receive the detections through a
    thin projection.

    {b Sharing key.}  Nodes are keyed by
    {!Xchange_event.Event_query.composite_digest} of the
    {!Xchange_event.Event_query.canonicalize}d subtree together with
    its enclosing-window context — rules share exactly when detection
    semantics are identical, including across different variable names
    (subscribers rename answers back through the canonicalization
    bijection).  Digest buckets verify structural equality, so
    collisions cost duplicated pipelines, never wrong answers.

    {b What stays per rule.}  Selection, consumption and firing:
    consuming rules filter the shared output against their consumed
    event ids instead of purging the shared stores (equivalent for the
    subtrees the network accepts — see below), and the parent-facing
    projection store lives in the subscribing rule's engine.

    {b What is declined} ([subscribe] returns [None], the subtree
    compiles privately): atomic sub-queries (the alpha network's job);
    subtrees with absence timers (deadlines resolve on per-rule clock
    advances the shared pipeline never observes); subtrees with
    [Agg]/[Rises] accumulators (group buffers cannot be
    consumption-filtered by event ids); and, when the engine has a
    [horizon], subtrees without a window bound (horizon pruning of
    unbounded join state is semantics-bearing and per-rule clocks skew;
    window-bounded pruning only affects memory because windows are also
    enforced by span checks at detection time).

    {b Batches.}  {!Xchange_rules.Engine} calls {!begin_batch} at each
    entry point; within a batch a node's pipeline is stepped exactly
    once per event (whichever subscriber asks first), later subscribers
    are served from the generation memo.  An event that reaches {e any}
    subscriber of a node reaches {e all} of them (dispatch refutes
    per-rule, and every subscriber contains the subtree's atoms), so
    the pipeline observes every relevant event exactly once, in batch
    order — this is what makes the memo sound.

    A rule registered after events have flowed adopts the shared node's
    accumulated partial matches (a fresh private pipeline would start
    cold) — deliberately so: composite events exist in the stream
    independent of subscribers (Thesis 5), and WAL recovery relies on
    replay priming each shared store once, not once per rule.

    [XCHANGE_NO_SHARE=1] (see {!Xchange_core.Escape}) disables beta and
    alpha sharing together, keeping the per-rule pipelines as the
    differential oracle ([test/test_beta.ml]). *)

open Xchange_event
open Xchange_obs

type t

type handle
(** One live subscription of one rule's subtree to a shared node. *)

val create :
  ?metrics:Obs.Metrics.t ->
  ?digest:(Event_query.t * Clock.span option -> string) ->
  ?horizon:Clock.span ->
  ?index:bool ->
  ?share_atoms:(Event_query.atomic -> Incremental.atom_matcher) ->
  unit ->
  t
(** [metrics] registers the [beta.*] cells below.  [digest] overrides
    the structural key function — only for tests that force digest
    collisions to exercise the in-bucket structural-equality
    verification; production callers use the default
    ({!Event_query.composite_digest} over the canonical query and
    context).  [horizon] and [index] must match the subscribing
    engines' settings (they shape the pipelines); [share_atoms] is the
    alpha network's {!Alpha.subscribe}, so shared pipelines share
    atomic evaluation too. *)

val enabled : unit -> bool
(** [false] when [XCHANGE_NO_SHARE=1] is set ({!Xchange_core.Escape.no_share})
    — the same hatch that disables the alpha network. *)

val begin_batch : t -> unit
(** Open a new memo generation.  Must be called once per engine entry
    point (event batch or clock advance) before any subscriber matcher
    runs; stale memo entries from the previous batch are invalidated
    lazily per node. *)

val register : t -> ctx:Clock.span option -> Event_query.t -> handle option
(** Subscribe a composite subtree occurring under enclosing-window
    context [ctx]: reuses the node of a semantically-identical subtree
    registered before, else compiles a fresh shared pipeline.  [None]
    when the subtree is not shareable (see above). *)

val matcher : t -> handle -> rename:(string * string) list -> Incremental.subtree_matcher
(** The shared matcher behind a handle: memoized pipeline step, then
    projection through [rename] (the canonical -> original variable
    mapping from {!Event_query.canonicalize} of the subscriber's own
    subtree).  Behaves exactly like the private compilation it replaces
    (same instances — property-tested). *)

val release : t -> handle -> unit
(** Drop one subscription; the shared node — pipeline, stores, memo —
    is shed when its last subscriber releases.  Releasing an
    already-released handle is an error ([Invalid_argument]). *)

val subscribe : t -> ctx:Clock.span option -> Event_query.t -> Incremental.subtree_matcher option
(** [register] + [matcher] with the subscriber's own canonicalization
    mapping — the [~share_sub] hook engines pass to
    {!Incremental.create} / {!Deductive_event.compile} when the handle
    is not needed (the network lives and dies with the engine). *)

(** {1 Observability}

    Also exported as [beta.nodes], [beta.registrations], [beta.steps],
    [beta.hits], [beta.fanout], [beta.pairs_probed] and
    [beta.live_instances] cells when [create] was given a metrics
    registry. *)

type stats = {
  distinct_nodes : int;  (** live shared pipelines = distinct subtrees *)
  registrations : int;  (** live subscriptions; [/ distinct_nodes] = sharing factor *)
  steps : int;  (** real pipeline steps (memo misses) *)
  hits : int;  (** matcher calls served from the generation memo *)
  fanout : int;  (** instances delivered to subscribers, fresh + memoized *)
  pairs_probed : int;  (** join candidates enumerated inside shared pipelines *)
}

val stats : t -> stats
(** Counters since [create]; the shared-step hit rate is
    [hits /. (hits + steps)]. *)

val join_stats : t -> Incremental.join_stats
(** Aggregated {!Xchange_event.Istore} counters across all shared
    pipelines — add to {!Xchange_rules.Engine.join_stats} for the
    whole-engine join picture (the private projections' stores are
    already counted there). *)

val live_instances : t -> int
(** Stored partial matches across all shared pipelines. *)
