(** Grouping of rules into named, hierarchical rule sets (Thesis 9).

    "Grouping rules into separate, named rule sets and possibly also
    building hierarchies of rule sets exposes the structure of a rule
    program [...].  Also, rule sets could introduce scopes for
    identifiers."

    A rule set carries ECA rules, procedures, deductive views, and event
    derivation rules, plus child rule sets.  Identifier resolution is
    lexical: a rule in set [s] sees the procedures and views of [s] and
    of its ancestors, with inner definitions shadowing outer ones —
    name clashes between unrelated sets are thereby harmless. *)

open Xchange_query

type t = {
  name : string;
  rules : Eca.t list;
  procedures : (string * Action.proc) list;
  views : Deductive.program;
  event_rules : Xchange_event.Deductive_event.program;
  children : t list;
}

val make :
  ?rules:Eca.t list ->
  ?procedures:(string * Action.proc) list ->
  ?views:Deductive.program ->
  ?event_rules:Xchange_event.Deductive_event.program ->
  ?children:t list ->
  string ->
  t

type scope
(** A rule's resolution context: its rule set and the ancestor chain. *)

val scoped_rules : t -> (string * scope * Eca.t) list
(** All rules of the hierarchy, each with its qualified name
    ([set.subset.rule]) and resolution scope, in declaration order. *)

val lookup_procedure : scope -> string -> Action.proc option
(** Innermost-first resolution through the scope chain. *)

val views_in_scope : scope -> Deductive.program
(** Views visible from a scope (innermost definitions first). *)

val all_event_rules : t -> Xchange_event.Deductive_event.program
(** Event derivation rules of the whole hierarchy (they are global to
    the node's event stream). *)

val all_procedures : t -> (string * Action.proc) list
(** Qualified names of every procedure in the hierarchy. *)

val find_rule : t -> string -> Eca.t option
(** By qualified name. *)

val rule_count : t -> int

val validate : t -> (unit, string) result
(** Rejects duplicate rule names within one set, duplicate procedure
    names within one set, calls to procedures that resolve nowhere,
    and transactional ([Atomic]) blocks whose constant update targets
    name stores on more than one host (following procedure calls
    through the block's scope) — a transaction spanning nodes cannot
    be made atomic, so it is a static error rather than a silent
    at-most-partial commit.  Variable targets escape this check and
    are caught at run time by {!Action.ops.txn_update}. *)
