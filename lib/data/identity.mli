(** Identity of data items (Thesis 10).

    Two notions of identity for monitoring Web data items:

    - {b Extensional} identity: an item is identified by its value
      ({!Term.digest}).  When the value changes, identity is lost — the
      item can no longer be found.  This is what plain XML/RDF resources
      offer.
    - {b Surrogate} identity: an item is identified by an external
      surrogate (an integer oid attached to element nodes), independent
      of its value, so it survives value changes.

    Stores assign surrogate ids when documents are loaded and maintain
    them across updates; this module provides the id allocation and the
    lookup primitives. *)

val fresh : unit -> int
(** A fresh, strictly positive surrogate id.  Unique process-wide:
    each domain allocates from its own lane (domain id in the high
    bits), so sharded schedulers never contend; the main domain's lane
    is 0, keeping sequential runs' ids the familiar small integers. *)

val assign : Term.t -> Term.t
(** Gives a fresh surrogate id to every element that has none
    ([Term.no_id]).  Existing ids are preserved. *)

val find_by_id : Term.t -> int -> Path.t option
(** Path of the element with the given surrogate id, if present. *)

val oids : Term.t -> (int * Path.t) list
(** All (surrogate id, path) pairs in pre-order; elements without an id
    are skipped. *)

val find_equal : Term.t -> Term.t -> Path.t list
(** Extensional lookup: paths of all subterms extensionally equal to the
    given value (Thesis 10's "identity = value" mode). *)

val digest_index : Term.t -> (int64 * Path.t) list
(** Digest of every subterm with its path, pre-order.  Basis for
    extensional watch tables. *)
