(* One allocation lane per domain: ids carry the allocating domain's id
   in the high bits, so concurrent stores on sharded schedulers never
   race or collide.  The orchestrating (main) domain has id 0, which
   makes its ids plain small integers — sequential runs are untouched.
   Surrogate ids are identity handles, not values: anything comparing
   documents across runs strips them ({!Term.strip_ids}). *)
let lane_shift = 40

let counters : int ref Xchange_core.Domain_local.t =
  Xchange_core.Domain_local.create (fun () -> ref 0)

let fresh () =
  let c = Xchange_core.Domain_local.get counters in
  incr c;
  let lane = (Stdlib.Domain.self () :> int) in
  if lane = 0 then !c else (lane lsl lane_shift) lor !c

let assign t =
  Term.map_elements
    (fun e -> if e.Term.id = Term.no_id then { e with Term.id = fresh () } else e)
    t

(* Pre-order traversal carrying the reversed path. *)
let fold_with_paths f acc t =
  let rec go acc rpath t =
    let acc = f acc (List.rev rpath) t in
    List.fold_left
      (fun (i, acc) c -> (i + 1, go acc (i :: rpath) c))
      (0, acc) (Term.children t)
    |> snd
  in
  go acc [] t

let find_by_id t oid =
  let exception Found of Path.t in
  try
    fold_with_paths
      (fun () path sub -> if Term.elem_id sub = oid then raise (Found path))
      () t;
    None
  with Found p -> Some p

let oids t =
  fold_with_paths
    (fun acc path sub ->
      let i = Term.elem_id sub in
      if i <> Term.no_id then (i, path) :: acc else acc)
    [] t
  |> List.rev

let find_equal t value =
  fold_with_paths
    (fun acc path sub -> if Term.equal sub value then path :: acc else acc)
    [] t
  |> List.rev

let digest_index t =
  fold_with_paths (fun acc path sub -> (Term.digest sub, path) :: acc) [] t |> List.rev
