type t = int list
type axis = Child | Descendant
type step = Any | Tag of string
type selector = (axis * step) list

let root = []

let pp ppf p = Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ";") int) p

let pp_step ppf = function Any -> Fmt.string ppf "*" | Tag s -> Fmt.string ppf s

let pp_selector ppf sel =
  List.iter
    (fun (axis, step) ->
      Fmt.string ppf (match axis with Child -> "/" | Descendant -> "//");
      pp_step ppf step)
    sel

let parse_selector s =
  let n = String.length s in
  let rec steps i acc =
    if i >= n then Ok (List.rev acc)
    else if s.[i] <> '/' then Error (Fmt.str "expected '/' at position %d in %S" i s)
    else
      let axis, i = if i + 1 < n && s.[i + 1] = '/' then (Descendant, i + 2) else (Child, i + 1) in
      let j = ref i in
      while !j < n && s.[!j] <> '/' do incr j done;
      let name = String.sub s i (!j - i) in
      if name = "" then Error (Fmt.str "empty step at position %d in %S" i s)
      else
        let step = if name = "*" then Any else Tag name in
        steps !j ((axis, step) :: acc)
  in
  if s = "" || s = "/" then Ok [] else steps 0 []

let step_matches step t =
  match (step, t) with
  | Any, _ -> true
  | Tag name, Term.Elem e -> String.equal name e.Term.label
  | Tag _, (Term.Text _ | Term.Num _ | Term.Bool _) -> false

let get doc path =
  let rec go t = function
    | [] -> Some t
    | i :: rest -> (
        match List.nth_opt (Term.children t) i with
        | Some c -> go c rest
        | None -> None)
  in
  go doc path

(* [b] strictly extends [a]. *)
let rec strict_prefix a b =
  match (a, b) with
  | [], _ :: _ -> true
  | x :: a', y :: b' -> Int.equal x y && strict_prefix a' b'
  | _, [] -> false

let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let select ?label_paths doc selector =
  (* Work on reversed paths internally; restore order at the end. *)
  let rec descend_all rpath t acc =
    (* all (rpath', subterm) pairs including t itself *)
    let acc = (rpath, t) :: acc in
    List.fold_left
      (fun (i, acc) c -> (i + 1, descend_all (i :: rpath) c acc))
      (0, acc) (Term.children t)
    |> snd
  in
  let apply (axis, step) (rpath, t) =
    match axis with
    | Child ->
        List.fold_left
          (fun (i, acc) c ->
            (i + 1, if step_matches step c then (i :: rpath, c) :: acc else acc))
          (0, []) (Term.children t)
        |> snd |> List.rev
    | Descendant -> (
        match (label_paths, step) with
        | Some paths, Tag name ->
            (* prune through the index: only label-[name] elements below
               this node can match, and the index knows their paths *)
            let here = List.rev rpath in
            let depth = List.length here in
            List.filter_map
              (fun p ->
                if strict_prefix here p then
                  match get t (drop depth p) with
                  | Some node -> Some (List.rev p, node)
                  | None -> None
                else None)
              (paths name)
        | _, _ ->
            descend_all rpath t []
            |> List.rev
            |> List.filter (fun (rp, c) -> rp != rpath && step_matches step c))
  in
  let rec go frontier = function
    | [] -> frontier
    | s :: rest -> go (List.concat_map (apply s) frontier) rest
  in
  go [ ([], doc) ] selector
  |> List.map (fun (rp, t) -> (List.rev rp, t))
  |> List.sort_uniq Stdlib.compare

let update_children t f =
  match t with
  | Term.Elem e -> Option.map (fun cs -> Term.Elem { e with Term.children = cs }) (f e.Term.children)
  | Term.Text _ | Term.Num _ | Term.Bool _ -> None

let rec replace doc path replacement =
  match path with
  | [] -> Some replacement
  | i :: rest ->
      update_children doc (fun cs ->
          match List.nth_opt cs i with
          | None -> None
          | Some c -> (
              match replace c rest replacement with
              | None -> None
              | Some c' -> Some (List.mapi (fun j x -> if j = i then c' else x) cs)))

let rec delete doc path =
  match path with
  | [] -> None
  | [ i ] ->
      update_children doc (fun cs ->
          if i < 0 || i >= List.length cs then None
          else Some (List.filteri (fun j _ -> j <> i) cs))
  | i :: rest ->
      update_children doc (fun cs ->
          match List.nth_opt cs i with
          | None -> None
          | Some c -> (
              match delete c rest with
              | None -> None
              | Some c' -> Some (List.mapi (fun j x -> if j = i then c' else x) cs)))

let insert_child ?at doc path child =
  match get doc path with
  | None | Some (Term.Text _ | Term.Num _ | Term.Bool _) -> None
  | Some (Term.Elem e) ->
      let cs = e.Term.children in
      let pos = match at with None -> List.length cs | Some p -> max 0 (min p (List.length cs)) in
      let before = List.filteri (fun j _ -> j < pos) cs in
      let after = List.filteri (fun j _ -> j >= pos) cs in
      replace doc path (Term.Elem { e with Term.children = before @ (child :: after) })
