type t = {
  digest : int64;
  nodes : int;
  by_label : (string, Path.t list) Hashtbl.t;  (* document order *)
  by_leaf : (string, Path.t list) Hashtbl.t;
}

let push tbl key path =
  Hashtbl.replace tbl key
    (path :: (match Hashtbl.find_opt tbl key with Some ps -> ps | None -> []))

let build doc =
  let by_label = Hashtbl.create 32 in
  let by_leaf = Hashtbl.create 32 in
  let nodes = ref 0 in
  (* Paths are accumulated reversed (both the path itself and each
     bucket) and flipped once at the end. *)
  let rec go rpath t =
    incr nodes;
    match t with
    | Term.Elem e ->
        push by_label e.Term.label rpath;
        List.fold_left (fun i c -> go (i :: rpath) c; i + 1) 0 e.Term.children
        |> ignore
    | (Term.Text _ | Term.Num _ | Term.Bool _) as leaf -> (
        match Term.as_text leaf with
        | Some s -> push by_leaf s rpath
        | None -> ())
  in
  go [] doc;
  let flip tbl = Hashtbl.filter_map_inplace (fun _ ps -> Some (List.rev_map List.rev ps)) tbl in
  flip by_label;
  flip by_leaf;
  { digest = Term.digest doc; nodes = !nodes; by_label; by_leaf }

let digest t = t.digest
let nodes t = t.nodes
let distinct_labels t = Hashtbl.length t.by_label

let paths_with_label t l =
  match Hashtbl.find_opt t.by_label l with Some ps -> ps | None -> []

let paths_with_leaf t s =
  match Hashtbl.find_opt t.by_leaf s with Some ps -> ps | None -> []
