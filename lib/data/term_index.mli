(** Per-document term index: element labels and leaf texts to node paths.

    The hot paths of the system repeatedly ask "where in this document
    can a pattern with root label [l] (or a leaf with text [s]) possibly
    match?" — {!Xchange_query.Simulate.matches_anywhere} and
    {!Path.select} answer it today by traversing the whole document.  A
    {!t} is a one-pass inverted index over a single document answering
    both questions in O(1) + output size, so matching only visits
    candidate subtrees.

    An index is a snapshot of one document version: it records the
    document's extensional {!Term.digest} at build time, and the paths
    it returns are positional, so any mutation of the document
    invalidates it.  {!Xchange_web.Store} owns the lifecycle — it builds
    indexes lazily per document and drops them on every update; the
    digest doubles as the memoization key for the store's query cache. *)

type t

val build : Term.t -> t
(** One pre-order traversal of the document. *)

val digest : t -> int64
(** [Term.digest] of the indexed document, computed at build time. *)

val nodes : t -> int
(** Number of indexed nodes (elements and leaves). *)

val distinct_labels : t -> int

val paths_with_label : t -> string -> Path.t list
(** Paths of all elements carrying the label, in document (pre-)order.
    Includes the root when it matches. *)

val paths_with_leaf : t -> string -> Path.t list
(** Paths of all scalar leaves whose {!Term.as_text} rendering equals
    the string, in document order. *)
