(** Positional paths and simple selectors over {!Term.t}.

    A {!t} is a sequence of 0-based child indices addressing a subterm.
    A {!selector} is a small XPath-like language ([/a//b/*]) used by
    update actions (Thesis 8) to designate update targets. *)

type t = int list
(** Root is [[]]; [\[i; j\]] is the j-th child of the i-th child. *)

type axis = Child | Descendant
type step = Any | Tag of string

type selector = (axis * step) list

val root : t

val pp : t Fmt.t
val pp_selector : selector Fmt.t

val parse_selector : string -> (selector, string) result
(** Parses ["/a/b"], ["//news"], ["/a/*//b"].  A leading [/] is a child
    step from the root; [//] is a descendant step. *)

val get : Term.t -> t -> Term.t option
(** Subterm at a path, if the path is valid. *)

val select : ?label_paths:(string -> t list) -> Term.t -> selector -> (t * Term.t) list
(** All subterms matched by a selector, with their paths, in document
    order.  The empty selector matches the root.

    [label_paths], when given, must map an element label to the paths of
    {e all} elements carrying it (from the root of [doc], document
    order — e.g. {!Term_index.paths_with_label} of an index built from
    this exact document value).  Descendant/tag steps ([//name]) then
    prune through it instead of traversing the subtree; results are
    identical to the unindexed evaluation. *)

val replace : Term.t -> t -> Term.t -> Term.t option
(** Functional update of the subterm at a path.  [None] if the path is
    invalid.  Replacing the root returns the replacement. *)

val delete : Term.t -> t -> Term.t option
(** Removes the child addressed by the path from its parent.  [None] if
    the path is invalid or empty (the root cannot be deleted). *)

val insert_child : ?at:int -> Term.t -> t -> Term.t -> Term.t option
(** [insert_child ?at doc path child] inserts [child] into the children
    of the element at [path] ([at] defaults to the end).  [None] if the
    path is invalid or does not address an element. *)
