(** Minimal JSON values — just enough for the observability layer.

    The metrics registry and the span tracer serialize snapshots to
    JSON ({!to_string}), and the bench regression gate
    ([bench/check_regression.ml]) reads the committed baseline files
    back ({!parse}).  Hand-rolled so [lib/obs] stays zero-dependency:
    numbers are [float]s (integral values print without a decimal
    point), strings are escaped per RFC 8259, and the parser accepts
    exactly the subset this repository emits (no unicode escapes beyond
    [\uXXXX] pass-through). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
val str : string -> t

val to_string : ?pretty:bool -> t -> string
(** [pretty] indents objects and arrays (default [false]). *)

val parse : string -> (t, string) result
(** Errors carry a character offset and a short description. *)

(** {2 Accessors} — all total; [None]/default on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_list : t -> t list
