(* Observability substrate.  See obs.mli for the contract; the code
   here keeps two invariants:

   - metrics cells are single mutable fields behind handles, so the
     accounting cost equals the ad-hoc record fields they replaced;
   - nothing below allocates when tracing is disabled — every tracing
     entry point starts with one load of [tracing]. *)

let wallclock = ref Sys.time
let set_wallclock f = wallclock := f

(* ---- metrics -------------------------------------------------------- *)

module Metrics = struct
  type kind = Counter | Gauge | Histogram

  module Counter = struct
    type t = { mutable c : int }

    let incr ?(by = 1) t = t.c <- t.c + by
    let value t = t.c
  end

  module Gauge = struct
    type t = { mutable g : float }

    let set t v = t.g <- v
    let set_max t v = if v > t.g then t.g <- v
    let value t = t.g
  end

  module Histogram = struct
    type t = { mutable n : int; mutable sum : float; mutable lo : float; mutable hi : float }

    let observe t v =
      if t.n = 0 then begin
        t.lo <- v;
        t.hi <- v
      end
      else begin
        if v < t.lo then t.lo <- v;
        if v > t.hi then t.hi <- v
      end;
      t.n <- t.n + 1;
      t.sum <- t.sum +. v

    let count t = t.n
    let sum t = t.sum
    let max t = if t.n = 0 then 0. else t.hi
    let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
  end

  type cell =
    | Owned_counter of Counter.t
    | Owned_gauge of Gauge.t
    | Owned_hist of Histogram.t
    | Pull_counter of (unit -> int)
    | Pull_gauge of (unit -> float)

  type key = string * (string * string) list

  type t = {
    cells : (key, cell) Hashtbl.t;
    mutable order : key list;  (** newest first *)
  }

  let create () = { cells = Hashtbl.create 16; order = [] }

  let norm_labels labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels

  let kind_of_cell = function
    | Owned_counter _ | Pull_counter _ -> Counter
    | Owned_gauge _ | Pull_gauge _ -> Gauge
    | Owned_hist _ -> Histogram

  let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

  let intern t ?(labels = []) name fresh want =
    let key = (name, norm_labels labels) in
    match Hashtbl.find_opt t.cells key with
    | Some cell when kind_of_cell cell = want -> cell
    | Some cell ->
        invalid_arg
          (Printf.sprintf "Obs.Metrics: %s already registered as a %s, requested as a %s" name
             (kind_name (kind_of_cell cell))
             (kind_name want))
    | None ->
        let cell = fresh () in
        Hashtbl.replace t.cells key cell;
        t.order <- key :: t.order;
        cell

  let counter t ?labels name =
    match intern t ?labels name (fun () -> Owned_counter { Counter.c = 0 }) Counter with
    | Owned_counter c -> c
    | _ -> invalid_arg (Printf.sprintf "Obs.Metrics: %s is a pull cell" name)

  let gauge t ?labels name =
    match intern t ?labels name (fun () -> Owned_gauge { Gauge.g = 0. }) Gauge with
    | Owned_gauge g -> g
    | _ -> invalid_arg (Printf.sprintf "Obs.Metrics: %s is a pull cell" name)

  let histogram t ?labels name =
    match
      intern t ?labels name
        (fun () -> Owned_hist { Histogram.n = 0; sum = 0.; lo = 0.; hi = 0. })
        Histogram
    with
    | Owned_hist h -> h
    | _ -> assert false

  let counter_fn t ?labels name f = ignore (intern t ?labels name (fun () -> Pull_counter f) Counter)
  let gauge_fn t ?labels name f = ignore (intern t ?labels name (fun () -> Pull_gauge f) Gauge)

  type value =
    | Int of int
    | Float of float
    | Summary of { count : int; sum : float; min : float; max : float }

  type sample = { name : string; labels : (string * string) list; kind : kind; value : value }

  let compare_sample a b =
    match String.compare a.name b.name with
    | 0 -> Stdlib.compare a.labels b.labels
    | c -> c

  let snapshot ?(labels = []) t =
    let extra = norm_labels labels in
    List.rev_map
      (fun ((name, own) as key) ->
        let cell = Hashtbl.find t.cells key in
        let value =
          match cell with
          | Owned_counter c -> Int (Counter.value c)
          | Pull_counter f -> Int (f ())
          | Owned_gauge g -> Float (Gauge.value g)
          | Pull_gauge f -> Float (f ())
          | Owned_hist h ->
              Summary { count = h.Histogram.n; sum = h.Histogram.sum; min = h.Histogram.lo; max = h.Histogram.hi }
        in
        { name; labels = norm_labels (own @ extra); kind = kind_of_cell cell; value })
      t.order
    |> List.sort compare_sample

  let combine a b =
    match (a, b) with
    | Int x, Int y -> Int (x + y)
    | Float x, Float y -> Float (x +. y)
    | Int x, Float y | Float y, Int x -> Float (float_of_int x +. y)
    | Summary x, Summary y ->
        if x.count = 0 then Summary y
        else if y.count = 0 then Summary x
        else
          Summary
            {
              count = x.count + y.count;
              sum = x.sum +. y.sum;
              min = Float.min x.min y.min;
              max = Float.max x.max y.max;
            }
    | (Summary _ as s), _ | _, (Summary _ as s) -> s

  let merge snaps =
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (List.iter (fun s ->
           let key = (s.name, s.labels) in
           match Hashtbl.find_opt tbl key with
           | Some prev -> Hashtbl.replace tbl key { prev with value = combine prev.value s.value }
           | None ->
               Hashtbl.replace tbl key s;
               order := key :: !order))
      snaps;
    List.rev_map (Hashtbl.find tbl) !order |> List.sort compare_sample

  let float_of_value = function
    | Int n -> float_of_int n
    | Float x -> x
    | Summary s -> s.sum

  let total samples name =
    List.fold_left
      (fun acc s -> if String.equal s.name name then acc +. float_of_value s.value else acc)
      0. samples

  let find samples ?labels name =
    let labels = Option.map norm_labels labels in
    List.find_map
      (fun s ->
        if
          String.equal s.name name
          && match labels with None -> true | Some ls -> s.labels = ls
        then Some s.value
        else None)
      samples

  let to_json samples =
    Json.List
      (List.map
         (fun s ->
           let value =
             match s.value with
             | Int n -> Json.int n
             | Float x -> Json.Num x
             | Summary { count; sum; min; max } ->
                 Json.Obj
                   [
                     ("count", Json.int count);
                     ("sum", Json.Num sum);
                     ("min", Json.Num min);
                     ("max", Json.Num max);
                   ]
           in
           Json.Obj
             (("name", Json.str s.name)
             :: (if s.labels = [] then []
                 else [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.str v)) s.labels)) ])
             @ [ ("kind", Json.str (kind_name s.kind)); ("value", value) ]))
         samples)
end

(* ---- tracing -------------------------------------------------------- *)

let tracing = ref false

let enabled () = !tracing
let set_enabled b = tracing := b

module Trace = struct
  type span = {
    id : int;
    parent : int;
    name : string;
    cat : string;
    args : (string * string) list;
    vt_begin : int;
    vt_end : int;
    wall_ms : float;
  }

  (* an open span: mutable while on the stack *)
  type open_span = {
    o_id : int;
    o_parent : int;
    o_name : string;
    o_cat : string;
    mutable o_args : (string * string) list;
    o_vt : int;
    o_wall : float;
  }

  let cap = ref 4096
  let ring : span Queue.t = Queue.create ()
  let dropped_count = ref 0
  let opens : (int, open_span) Hashtbl.t = Hashtbl.create 32
  let stack : int list ref = ref []
  let next_id = ref 0

  let set_capacity n =
    cap := max 1 n;
    while Queue.length ring > !cap do
      ignore (Queue.pop ring);
      incr dropped_count
    done

  let clear () =
    Queue.clear ring;
    Hashtbl.reset opens;
    stack := [];
    dropped_count := 0;
    next_id := 0

  let current () = match !stack with [] -> 0 | id :: _ -> id

  let retain sp =
    Queue.push sp ring;
    if Queue.length ring > !cap then begin
      ignore (Queue.pop ring);
      incr dropped_count
    end

  let begin_span ?parent ?(cat = "app") ?(args = []) ~name ~vt () =
    if not !tracing then 0
    else begin
      incr next_id;
      let id = !next_id in
      let parent = match parent with Some p -> p | None -> current () in
      Hashtbl.replace opens id
        { o_id = id; o_parent = parent; o_name = name; o_cat = cat; o_args = args; o_vt = vt;
          o_wall = !wallclock () };
      stack := id :: !stack;
      id
    end

  let end_span ?(args = []) id ~vt =
    if id <> 0 then
      match Hashtbl.find_opt opens id with
      | None -> ()
      | Some o ->
          Hashtbl.remove opens id;
          (* pop the stack down to (and including) this span; children a
             caller forgot to close are abandoned rather than corrupting
             the ambient parent *)
          let rec pop = function
            | [] -> []
            | top :: rest -> if top = id then rest else pop rest
          in
          if List.mem id !stack then stack := pop !stack;
          retain
            {
              id = o.o_id;
              parent = o.o_parent;
              name = o.o_name;
              cat = o.o_cat;
              args = o.o_args @ args;
              vt_begin = o.o_vt;
              vt_end = (if vt > o.o_vt then vt else o.o_vt);
              wall_ms = (!wallclock () -. o.o_wall) *. 1000.;
            }

  let instant ?(cat = "app") ?(args = []) ~name ~vt () =
    if not !tracing then 0
    else begin
      incr next_id;
      let id = !next_id in
      retain { id; parent = current (); name; cat; args; vt_begin = vt; vt_end = vt; wall_ms = 0. };
      id
    end

  let run_under id f =
    if id = 0 || not !tracing then f ()
    else begin
      stack := id :: !stack;
      Fun.protect
        ~finally:(fun () ->
          match !stack with
          | top :: rest when top = id -> stack := rest
          | s -> stack := List.filter (fun x -> x <> id) s)
        f
    end

  let spans () =
    Queue.fold (fun acc sp -> sp :: acc) [] ring
    |> List.sort (fun a b ->
           match compare a.vt_begin b.vt_begin with 0 -> compare a.id b.id | c -> c)

  let dropped () = !dropped_count

  let to_chrome_json () =
    let all = spans () in
    let retained = Hashtbl.create (List.length all) in
    List.iter (fun sp -> Hashtbl.replace retained sp.id sp) all;
    let complete sp =
      Json.Obj
        [
          ("name", Json.str sp.name);
          ("cat", Json.str sp.cat);
          ("ph", Json.str "X");
          ("ts", Json.int (sp.vt_begin * 1000));
          ("dur", Json.int ((sp.vt_end - sp.vt_begin) * 1000));
          ("pid", Json.int 1);
          ("tid", Json.int 1);
          ( "args",
            Json.Obj
              (("span_id", Json.int sp.id)
              :: ("parent", Json.int sp.parent)
              :: ("wall_ms", Json.Num sp.wall_ms)
              :: List.map (fun (k, v) -> (k, Json.str v)) sp.args) );
        ]
    in
    (* flow arrows for parent links Chrome's time-nesting cannot show:
       the child begins after its parent ended (a message in flight) *)
    let flows sp =
      match Hashtbl.find_opt retained sp.parent with
      | Some parent when sp.vt_begin > parent.vt_end ->
          let base name ph ts extra =
            Json.Obj
              ([
                 ("name", Json.str name);
                 ("cat", Json.str "causal");
                 ("ph", Json.str ph);
                 ("id", Json.int sp.id);
                 ("ts", Json.int (ts * 1000));
                 ("pid", Json.int 1);
                 ("tid", Json.int 1);
               ]
              @ extra)
          in
          [ base sp.name "s" parent.vt_end []; base sp.name "f" sp.vt_begin [ ("bp", Json.str "e") ] ]
      | _ -> []
    in
    Json.List (List.map complete all @ List.concat_map flows all)

  let pp_tree ?(max_spans = 200) ppf () =
    let all = spans () in
    let shown = ref 0 in
    let retained = Hashtbl.create (List.length all) in
    List.iter (fun sp -> Hashtbl.replace retained sp.id sp) all;
    let children = Hashtbl.create (List.length all) in
    let roots =
      List.filter
        (fun sp ->
          if sp.parent <> 0 && Hashtbl.mem retained sp.parent then begin
            let prev = Option.value ~default:[] (Hashtbl.find_opt children sp.parent) in
            Hashtbl.replace children sp.parent (prev @ [ sp ]);
            false
          end
          else true)
        all
    in
    let rec print depth sp =
      if !shown < max_spans then begin
        incr shown;
        let args =
          String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) sp.args)
        in
        Format.fprintf ppf "@[<h>%6dms %s%s [%s] +%dms%s%s@]@."
          sp.vt_begin
          (String.make (2 * depth) ' ')
          sp.name sp.cat
          (sp.vt_end - sp.vt_begin)
          (if args = "" then "" else " ")
          args;
        List.iter (print (depth + 1)) (Option.value ~default:[] (Hashtbl.find_opt children sp.id))
      end
    in
    List.iter (print 0) roots;
    if !shown >= max_spans then
      Format.fprintf ppf "... (%d more spans; %d evicted by the ring)@."
        (List.length all - !shown) (dropped ())
    else if dropped () > 0 then Format.fprintf ppf "... (%d spans evicted by the ring)@." (dropped ())
end

(* ---- phase profiling ------------------------------------------------ *)

module Profile = struct
  type entry = { pname : string; wall_ms : float; vt_span : int; runs : int }

  (* tiny and rebuilt per bench run: an assoc list keeps first-use order *)
  let entries_ref : entry list ref = ref []

  let reset () = entries_ref := []

  let record ?(vt_span = 0) ~name ~wall_ms () =
    let rec upd = function
      | [] -> [ { pname = name; wall_ms; vt_span; runs = 1 } ]
      | e :: rest when String.equal e.pname name ->
          { e with wall_ms = e.wall_ms +. wall_ms; vt_span = e.vt_span + vt_span; runs = e.runs + 1 }
          :: rest
      | e :: rest -> e :: upd rest
    in
    entries_ref := upd !entries_ref

  let phase ?vt name f =
    let vt0 = match vt with Some now -> now () | None -> 0 in
    let w0 = !wallclock () in
    Fun.protect
      ~finally:(fun () ->
        let wall_ms = (!wallclock () -. w0) *. 1000. in
        let vt_span = match vt with Some now -> now () - vt0 | None -> 0 in
        record ~vt_span ~name ~wall_ms ())
      f

  let entries () = !entries_ref

  let to_json () =
    Json.Obj
      [
        ("schema", Json.int 1);
        ( "phases",
          Json.List
            (List.map
               (fun e ->
                 Json.Obj
                   [
                     ("name", Json.str e.pname);
                     ("wall_ms", Json.Num e.wall_ms);
                     ("vt_ms", Json.int e.vt_span);
                     ("runs", Json.int e.runs);
                   ])
               !entries_ref) );
      ]
end
