(** Unified observability: metrics registry, causal span tracer, and
    phase profiler.

    Every layer of the system (scheduler, transport, stores, event
    engine, rule engines) records what it does through this module
    instead of ad-hoc mutable counters, and the same snapshot schema
    surfaces in tests, [bench/] JSON artifacts, and
    [bin/xchange_run.ml].

    {b Cost discipline.}  Metrics cells are plain mutable fields behind
    a handle — incrementing one costs the same as the ad-hoc record
    fields they replaced, so metrics are always on.  Tracing allocates
    (span records, argument lists) and is therefore {e off by default}:
    hot paths must guard span construction with {!enabled} so the
    disabled path stays a single load ([if Obs.enabled () then ...]).

    {b Retention.}  Completed spans live in a bounded ring buffer
    (Thesis 4: volatile data is disposed of incrementally); once full,
    the oldest span is dropped and counted in {!Trace.dropped}. *)

val enabled : unit -> bool
(** Is span tracing on?  (Metrics are unconditional.) *)

val set_enabled : bool -> unit
(** Toggle tracing.  Turning it off leaves retained spans readable. *)

val set_wallclock : (unit -> float) -> unit
(** Clock used for wall-time accounting, in seconds.  Defaults to
    [Sys.time] (process CPU time — deterministic-ish and dependency
    free); a harness linking Unix may install [Unix.gettimeofday]. *)

(** {1 Metrics} *)

module Metrics : sig
  type t
  (** A registry: a set of named, labelled cells.  Registries are
      per-component (a scheduler, a transport, a store each own one) so
      instances never share counts; {!merge} combines snapshots for
      whole-system export. *)

  type kind = Counter | Gauge | Histogram

  module Counter : sig
    type t

    val incr : ?by:int -> t -> unit
    val value : t -> int
  end

  module Gauge : sig
    type t

    val set : t -> float -> unit
    val set_max : t -> float -> unit
    (** Keep the running maximum: [set_max g v] is
        [set g (max v (value g))]. *)

    val value : t -> float
  end

  module Histogram : sig
    type t
    (** Summary histogram: count / sum / min / max of observations. *)

    val observe : t -> float -> unit
    val count : t -> int
    val sum : t -> float

    val max : t -> float
    (** 0 when empty. *)

    val mean : t -> float
    (** 0 when empty. *)
  end

  val create : unit -> t

  val counter : t -> ?labels:(string * string) list -> string -> Counter.t
  (** Get or create.  The same (name, labels) always returns the same
      cell; requesting it with a different kind raises
      [Invalid_argument]. *)

  val gauge : t -> ?labels:(string * string) list -> string -> Gauge.t
  val histogram : t -> ?labels:(string * string) list -> string -> Histogram.t

  val counter_fn : t -> ?labels:(string * string) list -> string -> (unit -> int) -> unit
  (** Pull cell: the callback is sampled at {!snapshot} time.  For
      values something else already owns (a cache's hit count, a queue's
      length) — registering is idempotent per (name, labels). *)

  val gauge_fn : t -> ?labels:(string * string) list -> string -> (unit -> float) -> unit

  (** {2 Snapshots} *)

  type value =
    | Int of int
    | Float of float
    | Summary of { count : int; sum : float; min : float; max : float }

  type sample = {
    name : string;
    labels : (string * string) list;  (** sorted by label key *)
    kind : kind;
    value : value;
  }

  val snapshot : ?labels:(string * string) list -> t -> sample list
  (** Current value of every cell, sorted by (name, labels).  [labels]
      are appended to each sample — callers stamp a snapshot with its
      origin (host, component) before merging. *)

  val merge : sample list list -> sample list
  (** Combine snapshots: samples agreeing on (name, labels) are folded
      (counters and floats sum, summaries merge), result sorted. *)

  val total : sample list -> string -> float
  (** Sum of every sample carrying [name], across all label sets — the
      label-aggregation view. *)

  val find : sample list -> ?labels:(string * string) list -> string -> value option

  val to_json : sample list -> Json.t
end

(** {1 Causal span tracing} *)

module Trace : sig
  type span = {
    id : int;  (** > 0; 0 is the null span *)
    parent : int;  (** 0 = root; may refer to an evicted span *)
    name : string;
    cat : string;
    args : (string * string) list;
    vt_begin : int;  (** virtual (scheduler) time, ms *)
    vt_end : int;
    wall_ms : float;
  }

  val set_capacity : int -> unit
  (** Ring-buffer bound on retained completed spans (default 4096). *)

  val clear : unit -> unit
  (** Drop retained spans, open spans, and the ambient stack. *)

  val current : unit -> int
  (** The ambient parent: innermost open span (or one installed by
      {!run_under}); 0 when none or tracing is off. *)

  val begin_span :
    ?parent:int ->
    ?cat:string ->
    ?args:(string * string) list ->
    name:string ->
    vt:int ->
    unit ->
    int
  (** Open a span and make it the ambient parent.  Returns 0 (and does
      nothing) when tracing is off — callers must treat 0 as "no span"
      and should build [args] only when {!Obs.enabled}[ () ] to keep the
      disabled path allocation-free.  [parent] overrides the ambient
      parent (cross-time causality: a delivery parented by its send). *)

  val end_span : ?args:(string * string) list -> int -> vt:int -> unit
  (** Close the span, pop it from the ambient stack, retain it in the
      ring.  No-op on 0 or unknown ids.  [args] are appended (results
      discovered at completion: detection counts, bytes). *)

  val instant : ?cat:string -> ?args:(string * string) list -> name:string -> vt:int -> unit -> int
  (** A zero-duration completed span (never becomes ambient parent).
      Returns its id so later work can be parented on it. *)

  val run_under : int -> (unit -> 'a) -> 'a
  (** Run with the ambient parent forced to the given span id — the
      cross-occurrence link: a message delivery runs under the span
      that sent it.  Exception-safe; identity on 0 or when off. *)

  val spans : unit -> span list
  (** Retained completed spans, ordered by (vt_begin, id). *)

  val dropped : unit -> int
  (** Spans evicted by the ring bound since the last {!clear}. *)

  val to_chrome_json : unit -> Json.t
  (** Chrome [trace_event] array: one ["ph": "X"] complete event per
      span ([ts]/[dur] in µs of virtual time) plus ["s"]/["f"] flow
      events binding cross-time parent links, loadable in
      [chrome://tracing] or Perfetto. *)

  val pp_tree : ?max_spans:int -> Format.formatter -> unit -> unit
  (** Compact text rendering of the span forest (default cap 200
      spans): one line per span — virtual begin time, duration, name,
      args — indented under its parent. *)
end

(** {1 Phase profiling} *)

module Profile : sig
  type entry = {
    pname : string;
    wall_ms : float;  (** accumulated across runs *)
    vt_span : int;  (** accumulated virtual-time delta (0 without [vt]) *)
    runs : int;
  }

  val reset : unit -> unit

  val phase : ?vt:(unit -> int) -> string -> (unit -> 'a) -> 'a
  (** Run the thunk, accounting its wall time (and virtual-time delta
      when [vt] is given) against [name]; re-entries accumulate. *)

  val record : ?vt_span:int -> name:string -> wall_ms:float -> unit -> unit
  (** Account an externally-timed phase. *)

  val entries : unit -> entry list
  (** First-use order. *)

  val to_json : unit -> Json.t
  (** Stable shape: [{"schema": 1, "phases": [{"name", "wall_ms",
      "vt_ms", "runs"}, ...]}] — the ["metrics"] section every
      [BENCH_*.json] embeds. *)
end
